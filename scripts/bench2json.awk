# Convert `go test -bench` output to a JSON object mapping benchmark name to
# its metrics, e.g. {"BenchmarkRunnerParallelReduce": {"ns/op": ..., ...}}.
# Every value/unit pair on a benchmark line is recorded generically, so with
# -benchmem the allocation metrics ("B/op", "allocs/op") land in the JSON
# alongside ns/op and the custom ReportMetric ratios ("speedup" etc).
# Usage: go test -short -run '^$' -bench . -benchtime=1x -benchmem ./... | awk -f scripts/bench2json.awk
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
    if (n++) printf ",\n"
    printf "  \"%s\": {", name
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) printf ", "
        printf "\"%s\": %s", $(i + 1), $i
    }
    printf "}"
}
END { if (n) printf "\n"; print "}" }
