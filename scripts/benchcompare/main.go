// Command benchcompare guards benchmark regressions: it compares a current
// benchmark-metrics JSON (as produced by scripts/bench2json.awk) against a
// committed baseline and exits nonzero if any tracked metric falls below the
// allowed fraction of its baseline value.
//
// Usage:
//
//	go test -short -run '^$' -bench . -benchtime=1x ./... \
//	    | awk -f scripts/bench2json.awk > /tmp/bench.json
//	go run ./scripts/benchcompare -baseline BENCH_pr3.json -current /tmp/bench.json
//
// By default every benchmark that reports a "speedup" metric is checked —
// today the reduction benchmarks (BenchmarkRunnerParallelReduce and
// BenchmarkReplayPrefixCache) and the daemon-resume benchmark
// (BenchmarkServiceResumeCampaign), automatically covering future ones. The
// tolerance absorbs machine noise; a genuine regression (for example the
// replay cache silently disabled, or a resume that re-runs journaled work,
// dropping speedup to ~1.0) fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type metrics map[string]map[string]float64

func load(path string) (metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_pr3.json", "committed baseline metrics JSON")
	currentPath := flag.String("current", "", "current metrics JSON (required)")
	metric := flag.String("metric", "speedup", "metric to guard across benchmarks")
	tolerance := flag.Float64("tolerance", 0.75, "minimum allowed current/baseline ratio")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -current is required")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}

	var names []string
	for name, ms := range baseline {
		if _, ok := ms[*metric]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: baseline %s has no %q metrics\n", *baselinePath, *metric)
		os.Exit(2)
	}

	failed := false
	tol := *tolerance
	for _, name := range names {
		base := baseline[name][*metric]
		cur, ok := current[name][*metric]
		switch {
		case !ok:
			fmt.Printf("FAIL %s: %s missing from current run (baseline %.3f)\n", name, *metric, base)
			failed = true
		case base > 0 && cur < base*tol:
			fmt.Printf("FAIL %s: %s %.3f < %.2f x baseline %.3f\n", name, *metric, cur, tol, base)
			failed = true
		default:
			fmt.Printf("ok   %s: %s %.3f (baseline %.3f)\n", name, *metric, cur, base)
		}
	}
	if failed {
		os.Exit(1)
	}
}
