// Command benchcompare guards benchmark regressions: it compares a current
// benchmark-metrics JSON (as produced by scripts/bench2json.awk) against a
// committed baseline and exits nonzero if any tracked metric falls below the
// allowed fraction of its baseline value.
//
// Usage:
//
//	go test -short -run '^$' -bench . -benchtime=1x ./... \
//	    | awk -f scripts/bench2json.awk > /tmp/bench.json
//	go run ./scripts/benchcompare -baseline BENCH_pr4.json -current /tmp/bench.json
//
// By default every benchmark that reports a "speedup" metric is checked —
// today the reduction benchmarks (BenchmarkRunnerParallelReduce and
// BenchmarkReplayPrefixCache), the batched multi-target benchmark
// (BenchmarkEngineRunAll) and the daemon-resume benchmark
// (BenchmarkServiceResumeCampaign), automatically covering future ones. The
// tolerance absorbs machine noise; a genuine regression (for example the
// replay cache silently disabled, a resume that re-runs journaled work, or
// compile sharing gone, dropping speedup to ~1.0) fails loudly.
//
// -mode selects the guard direction: "min" (the default) requires
// current >= baseline*tolerance and suits bigger-is-better ratios like
// speedup; "max" requires current <= baseline*tolerance and suits
// smaller-is-better absolutes like ns/op. -only restricts the check to a
// comma-separated benchmark list — absolute times are machine-dependent, so
// they are guarded per-benchmark with generous tolerances rather than
// wholesale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type metrics map[string]map[string]float64

func load(path string) (metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_pr4.json", "committed baseline metrics JSON")
	currentPath := flag.String("current", "", "current metrics JSON (required)")
	metric := flag.String("metric", "speedup", "metric to guard across benchmarks")
	tolerance := flag.Float64("tolerance", 0.75, "allowed current/baseline ratio bound (minimum in -mode min, maximum in -mode max)")
	mode := flag.String("mode", "min", `guard direction: "min" (current must stay above baseline*tolerance) or "max" (below)`)
	only := flag.String("only", "", "comma-separated benchmark names to check (default: all with the metric)")
	flag.Parse()
	if *mode != "min" && *mode != "max" {
		fmt.Fprintf(os.Stderr, "benchcompare: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -current is required")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}

	keep := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name != "" {
			keep[name] = true
		}
	}
	var names []string
	for name, ms := range baseline {
		if _, ok := ms[*metric]; ok && (len(keep) == 0 || keep[name]) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: baseline %s has no %q metrics\n", *baselinePath, *metric)
		os.Exit(2)
	}

	failed := false
	tol := *tolerance
	for _, name := range names {
		base := baseline[name][*metric]
		cur, ok := current[name][*metric]
		switch {
		case !ok:
			fmt.Printf("FAIL %s: %s missing from current run (baseline %.3f)\n", name, *metric, base)
			failed = true
		case *mode == "min" && base > 0 && cur < base*tol:
			fmt.Printf("FAIL %s: %s %.3f < %.2f x baseline %.3f\n", name, *metric, cur, tol, base)
			failed = true
		case *mode == "max" && base > 0 && cur > base*tol:
			fmt.Printf("FAIL %s: %s %.3f > %.2f x baseline %.3f\n", name, *metric, cur, tol, base)
			failed = true
		default:
			fmt.Printf("ok   %s: %s %.3f (baseline %.3f)\n", name, *metric, cur, base)
		}
	}
	if failed {
		os.Exit(1)
	}
}
