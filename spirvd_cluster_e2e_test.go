// End-to-end test of the distributed deployment: a coordinator process plus
// real worker processes over HTTP must converge on buckets bitwise-identical
// to a standalone daemon running the same campaign — including when one
// worker is SIGKILLed mid-reduction and a cold replacement node joins, and
// when pipelined and legacy-protocol workers share one cluster — with the
// hash-negotiated blob sync deduplicating most referenced bytes and the
// transport counters (round trips, wire/raw bytes, prefetches, adaptive
// sizing) surfaced through /metrics.
package spirvfuzz_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"spirvfuzz/internal/cluster"
	"spirvfuzz/internal/service"
)

var clusterSpecArgs = []string{"-tests", "12", "-reduce-slowdown-ms", "25"}

// startCoordinator launches spirvd -role coordinator and returns the process
// and its bound address.
func startCoordinator(t *testing.T, bin, storeDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	portFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-role", "coordinator", "-store", storeDir, "-addr", "127.0.0.1:0",
		"-portfile", portFile, "-lease-ttl", "500ms",
		"-shard-tests", "2", "-shard-cases", "1",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, err := os.ReadFile(portFile)
		if err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("coordinator never wrote its portfile")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startWorker launches a spirvd -role worker process against the coordinator.
func startWorker(t *testing.T, bin, coordAddr, node, storeDir string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{
		"-role", "worker", "-join", "http://" + coordAddr,
		"-node", node, "-store", storeDir, "-workers", "2",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// legacyProtoArgs runs a worker on the pre-pipeline wire protocol: no shard
// prefetch, no gzip, per-endpoint requests instead of batched /cluster/sync.
// Mixing it with pipelined workers in one cluster proves the two protocols
// interoperate against the same coordinator with identical results.
var legacyProtoArgs = []string{"-prefetch=false", "-compress=false", "-batch=false"}

func clusterMetrics(t *testing.T, bin, addr string) cluster.Metrics {
	t.Helper()
	var m cluster.Metrics
	if err := json.Unmarshal(client(t, bin, addr, "metrics"), &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpirvdClusterKillRejoinBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster end-to-end skipped in -short mode")
	}
	bin := buildSpirvd(t)

	// Uninterrupted standalone reference run.
	refCmd, refAddr := startDaemon(t, bin, filepath.Join(t.TempDir(), "store-ref"))
	defer refCmd.Process.Kill()
	var refStatus service.CampaignStatus
	if err := json.Unmarshal(client(t, bin, refAddr, append([]string{"submit", "-wait"}, clusterSpecArgs...)...), &refStatus); err != nil {
		t.Fatal(err)
	}
	if refStatus.State != service.StateDone || refStatus.Buckets == 0 || refStatus.Reduced < 4 {
		t.Fatalf("reference campaign too small to shard meaningfully: %+v", refStatus)
	}
	refBuckets := client(t, bin, refAddr, "buckets", "-campaign", refStatus.ID)
	refCmd.Process.Signal(syscall.SIGTERM)
	refCmd.Wait()

	// Coordinator plus two real worker processes.
	coord, addr := startCoordinator(t, bin, filepath.Join(t.TempDir(), "store-coord"))
	defer func() {
		coord.Process.Signal(syscall.SIGTERM)
		coord.Wait()
	}()
	workDir := t.TempDir()
	w1 := startWorker(t, bin, addr, "w1", filepath.Join(workDir, "w1"))
	defer w1.Process.Kill()
	// w2 speaks the legacy protocol: a mixed-protocol cluster must still
	// converge on the same buckets.
	w2 := startWorker(t, bin, addr, "w2", filepath.Join(workDir, "w2"), legacyProtoArgs...)
	defer w2.Process.Kill()

	var status service.CampaignStatus
	if err := json.Unmarshal(client(t, bin, addr, append([]string{"submit"}, clusterSpecArgs...)...), &status); err != nil {
		t.Fatal(err)
	}

	// Wait for mid-reduction — with one case per shard and paced queries,
	// both workers hold reduce leases nearly the whole phase — then SIGKILL
	// one worker and join a cold replacement node.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := campaignStatus(t, bin, addr, status.ID)
		if st.State == service.StateReducing && st.Reduced >= 1 {
			break
		}
		if st.State == service.StateDone || st.State == service.StateFailed {
			t.Fatalf("campaign finished before the kill landed (raise -reduce-slowdown-ms): %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached mid-reduction: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	w1.Process.Kill()
	w1.Wait()
	w3 := startWorker(t, bin, addr, "w3", filepath.Join(workDir, "w3"))
	defer w3.Process.Kill()

	done := waitDone(t, bin, addr, status.ID, 3*time.Minute)
	if done.State != service.StateDone {
		t.Fatalf("cluster campaign: %+v", done)
	}

	// The merged bucket set must be bitwise-identical to the standalone run.
	gotBuckets := client(t, bin, addr, "buckets", "-campaign", status.ID)
	if string(gotBuckets) != string(refBuckets) {
		t.Fatalf("cluster buckets diverged from standalone:\n%s\nvs\n%s", gotBuckets, refBuckets)
	}

	m := clusterMetrics(t, bin, addr)
	if m.CampaignsDone != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Cluster.ShardsCompleted == 0 {
		t.Fatalf("no shards completed: %+v", m.Cluster)
	}
	if m.Cluster.ShardsRequeued == 0 {
		t.Fatalf("SIGKILLed a mid-shard worker but nothing was requeued: %+v", m.Cluster)
	}
	if m.Cluster.BlobDedupFraction < 0.5 {
		t.Fatalf("blob sync dedup %.2f too low: %+v", m.Cluster.BlobDedupFraction, m.Cluster.Sync)
	}
	// Transport telemetry merged from both protocols: round trips and wire
	// bytes were counted, gzip never inflated a body past its raw size, and
	// the pipelined workers actually prefetched shards behind execution.
	s := m.Cluster.Sync
	if s.RoundTrips == 0 {
		t.Fatalf("no transport round trips counted: %+v", s)
	}
	if s.WireBytesOut == 0 || s.WireBytesIn == 0 {
		t.Fatalf("wire byte counters missing: %+v", s)
	}
	if s.RawBytesOut < s.WireBytesOut || s.RawBytesIn < s.WireBytesIn {
		t.Fatalf("wire bytes exceed raw bytes: %+v", s)
	}
	if s.Prefetched == 0 {
		t.Fatalf("pipelined workers never prefetched a shard: %+v", s)
	}
	// The adaptive sizer observed service/sync time for each executed phase.
	if len(m.Cluster.Sizing) == 0 {
		t.Fatalf("no adaptive sizing snapshot in /metrics: %+v", m.Cluster)
	}
	for _, sz := range m.Cluster.Sizing {
		if sz.Size < 1 || sz.Size > sz.MaxSize {
			t.Fatalf("sizing target out of bounds: %+v", sz)
		}
	}
	// Merged worker telemetry crossed the wire: the workers executed
	// toolchains and compiled modules; the coordinator itself ran nothing.
	if m.Runner.Misses == 0 || m.Runner.CompileMisses == 0 {
		t.Fatalf("merged runner stats missing worker work: %+v", m.Runner)
	}
}

// TestSpirvdCoordinatorLocalNodes covers the -nodes flag: a coordinator that
// spawns its own in-process worker nodes is a self-contained single-machine
// cluster and must reproduce the standalone buckets too.
func TestSpirvdCoordinatorLocalNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster end-to-end skipped in -short mode")
	}
	bin := buildSpirvd(t)

	refCmd, refAddr := startDaemon(t, bin, filepath.Join(t.TempDir(), "store-ref"))
	defer refCmd.Process.Kill()
	var refStatus service.CampaignStatus
	if err := json.Unmarshal(client(t, bin, refAddr, "submit", "-wait", "-tests", "12"), &refStatus); err != nil {
		t.Fatal(err)
	}
	refBuckets := client(t, bin, refAddr, "buckets", "-campaign", refStatus.ID)
	refCmd.Process.Signal(syscall.SIGTERM)
	refCmd.Wait()

	coord, addr := startCoordinator(t, bin, filepath.Join(t.TempDir(), "store-coord"), "-nodes", "3")
	defer func() {
		coord.Process.Signal(syscall.SIGTERM)
		coord.Wait()
	}()
	var status service.CampaignStatus
	if err := json.Unmarshal(client(t, bin, addr, "submit", "-wait", "-tests", "12"), &status); err != nil {
		t.Fatal(err)
	}
	if status.State != service.StateDone {
		t.Fatalf("campaign: %+v", status)
	}
	gotBuckets := client(t, bin, addr, "buckets", "-campaign", status.ID)
	if string(gotBuckets) != string(refBuckets) {
		t.Fatalf("-nodes buckets diverged from standalone:\n%s\nvs\n%s", gotBuckets, refBuckets)
	}
}
