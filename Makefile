GO ?= go

.PHONY: ci fmt vet build test test-bisect test-daemon test-cluster test-memo test-transport bench baseline bench-compare profile

# Everything CI runs, in order; fails fast.
ci: fmt vet build test test-bisect test-daemon test-cluster test-memo test-transport bench

# The bisection oracle gets its own race pass: the determinism property
# (FirstBad identical at any worker count, lane width, or cache temperature)
# plus the torn-journal /bisect resume and the cluster-sharded bisect merge.
test-bisect:
	$(GO) test -race -shuffle=on ./internal/bisect/... ./internal/dedup/...
	$(GO) test -race -count=1 -run 'Bisect|Precheck' ./internal/service/... ./internal/cluster/...

# The daemon's durability layers get a dedicated race pass on top of the
# repo-wide one: -shuffle varies the journal/queue interleavings between
# runs, which is where torn-tail and drain races would hide.
test-daemon:
	$(GO) vet ./...
	$(GO) test -race -shuffle=on ./internal/service/... ./internal/store/...

# The distributed layer gets the same treatment, plus the real-process
# cluster e2e: a coordinator with worker processes (one SIGKILLed and
# replaced mid-campaign) must merge to buckets bitwise-identical to a
# standalone daemon's.
test-cluster:
	$(GO) test -race -shuffle=on ./internal/cluster/...
	$(GO) test -count=1 -run 'TestSpirvdCluster|TestSpirvdCoordinatorLocalNodes' .

# The pipelined transport gets a dedicated race pass: the bitwise-identity
# matrix (prefetch × compression × batching × node count must all merge the
# same buckets), lease-steal and kill-mid-prefetch fault injection with the
# duplicate-report guard, the gzip wire accounting round trip, and the
# jittered idle backoff ladder.
test-transport:
	$(GO) test -race -count=1 -run 'Pipeline|Prefetch|LeaseSteal|Transport|Backoff' ./internal/cluster/...
	$(GO) test -count=1 -run 'TestSpirvdClusterKillRejoin' .

# The persistent memo tier gets its own race pass: the segment/index/
# checkpoint durability suite (with -shuffle varying the spill/evict/
# compact interleavings), the runner's key-derivation and payload codecs,
# the service-level memo temperature identity, and the cluster warm-sync
# handshake.
test-memo:
	$(GO) test -race -shuffle=on ./internal/memostore/...
	$(GO) test -race -count=1 -run 'Memo' ./internal/runner/... ./internal/service/... ./internal/cluster/...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over every benchmark as a smoke test; the table/figure benches
# assert the paper's comparative shape even at -short scale. -benchmem
# records allocs/op and B/op so allocation regressions are visible in the
# same trajectory JSONs as the timing ratios. -p 1 serializes the package
# binaries: without it, go test builds and runs sibling packages while the
# root package's benchmarks execute, and the contention skews every
# cold/warm ratio the guards below care about.
bench:
	$(GO) test -short -run '^$$' -bench . -benchtime=1x -benchmem -p 1 ./...

# Regenerate BENCH_baseline.json from a fresh -short benchmark pass so perf
# regressions can be diffed against a committed reference.
baseline:
	$(GO) test -short -run '^$$' -bench . -benchtime=1x -benchmem -p 1 ./... \
		| awk -f scripts/bench2json.awk > BENCH_baseline.json
	@echo wrote BENCH_baseline.json

# Run the reduction/resume/batching/interpreter benchmarks and fail if any
# speedup metric (parallel reduction over serial; prefix-snapshot replay over
# fresh replay; journal resume over a fresh campaign; batched RunAll over a
# per-target compile loop; the register VM over the tree-walker; lane-mode
# rendering over the scalar VM; a warm memo repeat campaign over cold)
# regresses below 0.75x its value in the committed BENCH_pr10.json
# trajectory point — loose enough for machine noise, tight enough to catch
# a disabled cache, a resume that silently re-runs journaled work, compile
# sharing gone, the VM degenerating to tree-walker speed, or lane mode
# losing its amortization (speedup ~1.0). A second pass guards absolute
# parallel-reduction time: ns/op must not blow past 1.5x the recorded
# value. A third guards lane-render allocations: allocs/op above 1.5x
# baseline means the lane buffer reuse across tiles broke. The ratio
# metrics are the tight guards (they cancel machine speed); the absolute
# bounds are backstops against wholesale regressions that leave the
# internal ratios intact. Two final passes guard hit fractions: the cold
# cache-hit fraction of BenchmarkBisectCampaign falling below 0.95x
# baseline means bisect probes stopped reusing compile keys, and the
# warm-hit-frac of BenchmarkMemoWarmCampaign falling below 0.95x means the
# persistent memo tier stopped serving a warm repeat from disk. The last
# pass guards the pipelined transport's wire economy in max mode: the
# wire-frac of BenchmarkClusterPipeline (batched+gzipped bytes over the
# legacy protocol's) blowing past 1.5x baseline means batching or
# compression silently stopped shrinking the protocol — its speedup floor
# rides in the default min-mode speedup pass like every other ratio.
bench-compare:
	$(GO) test -short -run '^$$' -bench 'Reduce|Replay|Resume|RunAll|InterpVM|Cluster|Bisect|Memo' -benchtime=1x -benchmem . \
		| tee /dev/stderr | awk -f scripts/bench2json.awk > /tmp/bench-current.json
	$(GO) run ./scripts/benchcompare -baseline BENCH_pr10.json \
		-current /tmp/bench-current.json
	$(GO) run ./scripts/benchcompare -baseline BENCH_pr10.json \
		-current /tmp/bench-current.json -metric ns/op -mode max -tolerance 1.5 \
		-only BenchmarkRunnerParallelReduce
	$(GO) run ./scripts/benchcompare -baseline BENCH_pr10.json \
		-current /tmp/bench-current.json -metric allocs/op -mode max -tolerance 1.5 \
		-only BenchmarkInterpVMLanes/uniform/l8
	$(GO) run ./scripts/benchcompare -baseline BENCH_pr10.json \
		-current /tmp/bench-current.json -metric dedup-frac -mode min -tolerance 0.95 \
		-only BenchmarkClusterCampaign
	$(GO) run ./scripts/benchcompare -baseline BENCH_pr10.json \
		-current /tmp/bench-current.json -metric hit-frac -mode min -tolerance 0.95 \
		-only BenchmarkBisectCampaign
	$(GO) run ./scripts/benchcompare -baseline BENCH_pr10.json \
		-current /tmp/bench-current.json -metric warm-hit-frac -mode min -tolerance 0.95 \
		-only BenchmarkMemoWarmCampaign
	$(GO) run ./scripts/benchcompare -baseline BENCH_pr10.json \
		-current /tmp/bench-current.json -metric wire-frac -mode max -tolerance 1.5 \
		-only BenchmarkClusterPipeline

# CPU-profile the parallel-reduction campaign benchmark and print the top-10
# functions by flat time — the quick answer to "where do campaign cycles go".
profile:
	$(GO) test -short -run '^$$' -bench 'RunnerParallelReduce' -benchtime=1x \
		-cpuprofile /tmp/spirvfuzz-cpu.pprof -o /tmp/spirvfuzz-bench.test .
	$(GO) tool pprof -top -nodecount=10 /tmp/spirvfuzz-bench.test /tmp/spirvfuzz-cpu.pprof
