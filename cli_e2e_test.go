// End-to-end tests of the command-line tools: build the binaries once, then
// drive the full fuzz → detect → reduce → dedup → report workflow through
// their public interfaces, exactly as README documents it.
package spirvfuzz_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
)

var cliTools = []string{
	"spirv-fuzz", "spirv-reduce", "spirv-dedup", "spirv-as", "spirv-dis",
	"spirv-val", "spirv-run", "gfauto",
}

// buildTools compiles every cmd binary into a temp dir and returns it.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	args := []string{"build", "-o", dir + string(os.PathSeparator)}
	for _, tool := range cliTools {
		args = append(args, "./cmd/"+tool)
	}
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

func run(t *testing.T, bin string, wantExit int, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	exit := 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	if exit != wantExit {
		t.Fatalf("%s %v: exit %d, want %d\n%s", bin, args, exit, wantExit, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	tool := func(name string) string { return filepath.Join(bin, name) }
	in := func(name string) string { return filepath.Join(work, name) }

	// 1. Fuzz a corpus reference until SwiftShader crashes.
	var crashed bool
	var seqPath, sig string
	for seed := 1; seed <= 40 && !crashed; seed++ {
		seqPath = in("seq.json")
		run(t, tool("spirv-fuzz"), 0,
			"-in", "corpus:calls2", "-seed", itoa(seed),
			"-o", in("variant.spvasm"), "-transformations", seqPath)
		cmd := exec.Command(tool("spirv-run"), "-in", in("variant.spvasm"), "-target", "SwiftShader")
		outBytes, _ := cmd.CombinedOutput()
		out := string(outBytes)
		if strings.Contains(out, "crashed") {
			if cmd.ProcessState.ExitCode() != 3 {
				t.Fatalf("crash must exit 3, got %d", cmd.ProcessState.ExitCode())
			}
			crashed = true
			sig = strings.TrimSpace(strings.SplitN(out, "crashed:", 2)[1])
		}
	}
	if !crashed {
		t.Fatal("no crash in 40 seeds")
	}

	// 2. Reduce with a bug-report bundle.
	out := run(t, tool("spirv-reduce"), 0,
		"-in", "corpus:calls2", "-transformations", seqPath,
		"-target", "SwiftShader",
		"-o", in("reduced.spvasm"), "-reduced-transformations", in("reduced.json"),
		"-report-dir", in("report"))
	if !strings.Contains(out, "detected signature") {
		t.Fatalf("reduce output: %s", out)
	}

	// 3. The reduced variant still crashes with the same signature; the
	// original does not.
	out = run(t, tool("spirv-run"), 3, "-in", in("reduced.spvasm"), "-target", "SwiftShader")
	if !strings.Contains(out, sig) {
		t.Fatalf("reduced crash %q does not mention %q", out, sig)
	}
	run(t, tool("spirv-run"), 0, "-in", "corpus:calls2", "-target", "SwiftShader")

	// 4. Regression mode: original and reduced agree on the reference
	// interpreter.
	out = run(t, tool("spirv-run"), 0,
		"-in", filepath.Join(in("report"), "original.spvasm"),
		"-inputs", filepath.Join(in("report"), "inputs.json"),
		"-compare", filepath.Join(in("report"), "reduced_variant.spvasm"))
	if !strings.Contains(out, "identical") {
		t.Fatalf("compare output: %s", out)
	}

	// 5. Assemble/disassemble/validate round trip.
	run(t, tool("spirv-as"), 0, "-in", in("reduced.spvasm"), "-o", in("reduced.spv"), "-validate")
	dis := run(t, tool("spirv-dis"), 0, "-in", in("reduced.spv"))
	if !strings.Contains(dis, "OpEntryPoint") {
		t.Fatal("disassembly incomplete")
	}
	run(t, tool("spirv-val"), 0, "-in", in("reduced.spv"))

	// 6. Dedup over the reduced case.
	caseDir := in("cases")
	if err := os.MkdirAll(caseDir, 0o755); err != nil {
		t.Fatal(err)
	}
	seqData, err := os.ReadFile(in("reduced.json"))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(map[string]any{
		"signature":       sig,
		"transformations": json.RawMessage(seqData),
	})
	if err := os.WriteFile(filepath.Join(caseDir, "case1.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, tool("spirv-dedup"), 0, "-dir", caseDir, "-types")
	if !strings.Contains(out, "1 recommended") {
		t.Fatalf("dedup output: %s", out)
	}

	// 6b. Machine-readable mode: -json emits the bucket-set shape spirvd
	// serves, with the case file's content hash as the report address.
	out = run(t, tool("spirv-dedup"), 0, "-dir", caseDir, "-json")
	var set service.BucketSet
	if err := json.Unmarshal([]byte(out), &set); err != nil {
		t.Fatalf("dedup -json: %v\n%s", err, out)
	}
	if len(set.Buckets) != 1 || set.Buckets[0].Case != "case1.json" ||
		set.Buckets[0].Signature != sig || len(set.Buckets[0].Types) == 0 ||
		set.Buckets[0].SequenceLen == 0 || len(set.Buckets[0].ReportHash) != 64 {
		t.Fatalf("dedup -json buckets: %s", out)
	}

	// 7. gfauto quick sanity (list modes only; campaigns are benchmarked
	// elsewhere).
	out = run(t, tool("gfauto"), 0, "-list-targets")
	if !strings.Contains(out, "SwiftShader") {
		t.Fatal("gfauto -list-targets incomplete")
	}
	out = run(t, tool("gfauto"), 0, "-list-references")
	if !strings.Contains(out, "diamond2") {
		t.Fatal("gfauto -list-references incomplete")
	}

	// 8. gfauto -json: per-tool campaign summaries in the spirvd status
	// shape plus the execution-engine counters, and nothing else on stdout.
	out = run(t, tool("gfauto"), 0, "-json", "-tests", "25")
	var report struct {
		Campaigns []service.CampaignStatus `json:"campaigns"`
		Runner    runner.Stats             `json:"runner"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("gfauto -json: %v\n%s", err, out)
	}
	summaries := report.Campaigns
	if len(summaries) != 3 {
		t.Fatalf("gfauto -json: %d summaries, want 3\n%s", len(summaries), out)
	}
	tools := map[string]bool{}
	for _, st := range summaries {
		tools[st.ID] = true
		if st.State != service.StateDone || st.TestsDone != 25 || st.Spec.Tests != 25 {
			t.Fatalf("gfauto -json summary: %+v", st)
		}
		if len(st.Spec.Targets) == 0 {
			t.Fatalf("gfauto -json summary missing targets: %+v", st)
		}
	}
	if !tools["spirv-fuzz"] || !tools["spirv-fuzz-simple"] || !tools["glsl-fuzz"] {
		t.Fatalf("gfauto -json tools: %v", tools)
	}
	// The runner block must show the compile-sharing and per-pass optimizer
	// counters: three campaigns over nine targets share compiles constantly,
	// and every compile runs the standard pass pipeline.
	if report.Runner.CompileMisses == 0 || report.Runner.CompileHits == 0 {
		t.Fatalf("gfauto -json runner: no compile sharing recorded: %+v", report.Runner)
	}
	if len(report.Runner.OptPasses) == 0 {
		t.Fatalf("gfauto -json runner: no per-pass optimizer stats: %+v", report.Runner)
	}
	for _, p := range report.Runner.OptPasses {
		if p.Name == "" || p.Runs == 0 || p.Nanos <= 0 {
			t.Fatalf("gfauto -json runner: degenerate pass stat %+v", p)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
