package target_test

import (
	"strings"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

// Table 2 invariants: nine targets, fixed order, render capabilities.
func TestRegistryShape(t *testing.T) {
	all := target.All()
	wantOrder := []string{
		"AMD-LLPC", "Mesa", "Mesa-Old", "NVIDIA", "Pixel-5", "Pixel-4",
		"spirv-opt", "spirv-opt-old", "SwiftShader",
	}
	if len(all) != len(wantOrder) {
		t.Fatalf("got %d targets, want %d", len(all), len(wantOrder))
	}
	noRender := map[string]bool{"AMD-LLPC": true, "spirv-opt": true, "spirv-opt-old": true}
	for i, tg := range all {
		if tg.Name != wantOrder[i] {
			t.Errorf("target %d = %q, want %q", i, tg.Name, wantOrder[i])
		}
		if tg.CanRender == noRender[tg.Name] {
			t.Errorf("%s: CanRender = %v", tg.Name, tg.CanRender)
		}
		if tg.Version == "" || tg.GPUType == "" {
			t.Errorf("%s: missing version/GPU metadata", tg.Name)
		}
		if target.ByName(tg.Name) != tg {
			t.Errorf("ByName(%q) does not round-trip", tg.Name)
		}
	}
	if target.ByName("no-such-target") != nil {
		t.Error("ByName of unknown target should be nil")
	}
}

// The load-bearing invariant of the whole harness: no reference program
// crashes any target, and every render-capable target renders references to
// the same image as the reference interpreter (optimization plus injected
// defects must be invisible on clean inputs).
func TestOriginalsAreCleanOnAllTargets(t *testing.T) {
	mods := make(map[string]struct {
		m  *spirv.Module
		in interp.Inputs
	})
	for _, item := range corpus.References() {
		mods["corpus:"+item.Name] = struct {
			m  *spirv.Module
			in interp.Inputs
		}{item.Mod, item.Inputs}
	}
	for name, m := range testmod.All() {
		mods["testmod:"+name] = struct {
			m  *spirv.Module
			in interp.Inputs
		}{m, interp.Inputs{}}
	}
	for name, tc := range mods {
		ref, err := interp.Render(tc.m, tc.in)
		if err != nil {
			t.Fatalf("%s: reference render failed: %v", name, err)
		}
		for _, tg := range target.All() {
			img, crash := tg.Run(tc.m, tc.in)
			if crash != nil {
				t.Errorf("%s crashes on %s: %v", name, tg.Name, crash)
				continue
			}
			if !tg.CanRender {
				if img != nil {
					t.Errorf("%s: %s cannot render but returned an image", name, tg.Name)
				}
				continue
			}
			if img == nil {
				t.Errorf("%s: %s returned no image", name, tg.Name)
				continue
			}
			if !img.Equal(ref) {
				t.Errorf("%s miscompiles on %s: %d pixels differ", name, tg.Name, ref.DiffCount(img))
			}
		}
	}
}

// Figure 3's SwiftShader bug: DontInline on a called function crashes, and
// the crash clears when the control mask is reset.
func TestSwiftShaderDontInlineCrash(t *testing.T) {
	tg := target.ByName("SwiftShader")
	m := testmod.Caller()
	m.Functions[0].SetControl(spirv.FunctionControlDontInline)
	_, crash := tg.Run(m, interp.Inputs{})
	if crash == nil {
		t.Fatal("DontInline on a called function should crash SwiftShader")
	}
	if !strings.Contains(crash.Signature, "SwiftShader") {
		t.Errorf("signature %q should name the target", crash.Signature)
	}
	m.Functions[0].SetControl(spirv.FunctionControlNone)
	if _, crash := tg.Run(m, interp.Inputs{}); crash != nil {
		t.Fatalf("clean module crashed: %v", crash)
	}
	// The same module must not crash a target without the defect.
	if _, crash := tg.Run(testmod.Caller(), interp.Inputs{}); crash != nil {
		t.Fatalf("original crashed: %v", crash)
	}
}

// The Mesa defect of Figure 8a: a comparison hoisted into the loop header
// (using the header's own ϕ against a constant bound) silently drops the
// final iteration, changing the image without crashing.
func TestMesaHoistedLoopBoundMiscompilation(t *testing.T) {
	m := testmod.Loop()
	fn := m.EntryPointFunction()
	header, check := fn.Blocks[1], fn.Blocks[2]
	cmp := check.Body[0]
	check.Body = nil
	header.Body = append(header.Body, cmp)
	freshPhi := spirv.NewInstr(spirv.OpPhi, cmp.Type, m.FreshID(),
		uint32(cmp.Result), uint32(header.Label))
	check.Phis = append(check.Phis, freshPhi)
	check.Term.Operands[0] = uint32(freshPhi.Result)

	ref, err := interp.Render(m, interp.Inputs{})
	if err != nil {
		t.Fatal(err)
	}
	img, crash := target.ByName("Mesa").Run(m, interp.Inputs{})
	if crash != nil {
		t.Fatalf("Mesa should miscompile, not crash: %v", crash)
	}
	if img.Equal(ref) {
		t.Fatal("Mesa image matches reference; expected dropped final iteration")
	}
	// spirv-opt crashes on the same variant's single-arm ϕ (Figure 2's
	// different-targets-different-bugs story).
	if _, crash := target.ByName("spirv-opt").Run(m, interp.Inputs{}); crash == nil {
		t.Fatal("spirv-opt should crash on the single-arm phi")
	}
}

// The Pixel defect of Figure 8b: moving a conditional arm below its sibling
// makes the simulated backend drop the displaced arm's fragments.
func TestPixelLayoutMiscompilation(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	fn.Blocks[1], fn.Blocks[2] = fn.Blocks[2], fn.Blocks[1]

	ref, err := interp.Render(m, interp.Inputs{})
	if err != nil {
		t.Fatal(err)
	}
	img, crash := target.ByName("Pixel-5").Run(m, interp.Inputs{})
	if crash != nil {
		t.Fatalf("Pixel-5 should miscompile, not crash: %v", crash)
	}
	if img.Equal(ref) {
		t.Fatal("Pixel-5 image matches reference; expected dropped fragments")
	}
	holes := 0
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if img.At(x, y)[3] == 0 {
				holes++
			}
		}
	}
	if holes == 0 {
		t.Fatal("expected transparent holes where fragments were dropped")
	}
}

// Offline tools accept clean modules, reject their trigger shapes, and
// never render.
func TestOfflineToolDefects(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	merge := fn.Blocks[3]
	// Prune the ϕ to a single arm, as PropagateInstructionUp does.
	phi := merge.Phis[0]
	phi.Operands = phi.Operands[:2]
	for _, name := range []string{"spirv-opt", "spirv-opt-old"} {
		img, crash := target.ByName(name).Run(m, interp.Inputs{})
		if crash == nil {
			t.Errorf("%s: single-arm phi should crash", name)
		}
		if img != nil {
			t.Errorf("%s: offline tool returned an image", name)
		}
	}
	// The fixed spirv-opt no longer fails on constant-false selections, the
	// old version does, with an invalid-SPIR-V emission signature.
	m2 := testmod.Diamond()
	f2 := m2.EntryPointFunction()
	f2.Blocks[0].Term.Operands[0] = uint32(m2.EnsureConstantBool(false))
	if _, crash := target.ByName("spirv-opt").Run(m2, interp.Inputs{}); crash != nil {
		t.Errorf("spirv-opt: constant-false selection should compile: %v", crash)
	}
	_, crash := target.ByName("spirv-opt-old").Run(m2, interp.Inputs{})
	if crash == nil {
		t.Fatal("spirv-opt-old: constant-false selection should crash")
	}
	if !strings.Contains(crash.Signature, "invalid SPIR-V") {
		t.Errorf("signature %q should mention invalid SPIR-V", crash.Signature)
	}
}

// AMD-LLPC crashes on Private-storage globals — the feature both fuzzers
// can introduce (glsl-fuzz via dead-code scratch variables).
func TestAMDPrivateGlobalCrash(t *testing.T) {
	m := testmod.Diamond()
	f32 := m.EnsureTypeFloat(32)
	ptr := m.EnsureTypePointer(spirv.StoragePrivate, f32)
	m.TypesGlobals = append(m.TypesGlobals,
		spirv.NewInstr(spirv.OpVariable, ptr, m.FreshID(), spirv.StoragePrivate))
	_, crash := target.ByName("AMD-LLPC").Run(m, interp.Inputs{})
	if crash == nil {
		t.Fatal("private global should crash AMD-LLPC")
	}
	if !strings.Contains(crash.Signature, "private segment") {
		t.Errorf("unexpected signature %q", crash.Signature)
	}
}

// Crash values format usefully.
func TestCrashFormatting(t *testing.T) {
	c := &target.Crash{Signature: "X: boom"}
	if c.Error() != "X: boom" || c.String() != "X: boom" {
		t.Errorf("crash formatting: %q / %q", c.Error(), c.String())
	}
}
