// Package target simulates the nine compiler toolchains of the paper's
// Table 2. A Target is a deterministic stand-in for a real compiler: it
// clones the input module, checks a set of injected defect predicates (the
// simulated compiler bugs), applies any miscompiling rewrites, and then runs
// the shared optimization pipeline from internal/opt. Render-capable targets
// additionally execute the compiled module with the reference interpreter to
// produce an image.
//
// Every defect predicate is keyed on a structural feature that fuzzer
// transformations introduce but that no corpus reference program contains,
// so original programs never crash and never miscompile — exactly the
// invariant the test harness relies on when classifying variant outcomes.
package target

import (
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/opt"
	"spirvfuzz/internal/spirv"
)

// Crash describes a simulated compiler or device failure. The signature is
// the deduplication key used throughout the harness and experiments; two
// crashes of the same underlying defect share a signature.
type Crash struct {
	Signature string
}

// Error renders the crash like an error value for %v-style printing.
func (c *Crash) Error() string { return c.Signature }

// String implements fmt.Stringer.
func (c *Crash) String() string { return c.Signature }

// MiscompilationSignature is the pseudo-signature the harness assigns to
// wrong-image outcomes, which have no crash text of their own.
const MiscompilationSignature = "miscompilation (image differs from reference)"

// crashDefect is an injected compiler bug that aborts compilation when its
// structural trigger is present in the input module.
type crashDefect struct {
	sig   string
	fires func(m *spirv.Module) bool
}

// mutateDefect is an injected compiler bug that silently miscompiles. It is
// one scan function with an apply switch: scan(m, false) reports whether the
// rewrite would change m (pure predicate, no clone), scan(m, true) performs
// the semantics-changing rewrite in place. One implementation serving both
// modes keeps the predicate and the rewrite coherent, which the compile-
// sharing contract below depends on.
type mutateDefect struct {
	name string
	scan func(m *spirv.Module, apply bool) bool
}

// Mutation is one miscompiling rewrite a target will apply to a module,
// as selected by Target.Mutations. It is opaque outside the package; the
// execution engine treats a mutation list plus its fingerprint as the key
// that decides which targets may share a compile.
type Mutation struct {
	d *mutateDefect
}

// Name returns the defect's name, the unit of the mutation fingerprint.
func (mu Mutation) Name() string { return mu.d.name }

// Target is one simulated toolchain from Table 2.
type Target struct {
	Name      string
	Version   string
	GPUType   string
	CanRender bool // false for offline tools: crash/validity bugs only

	crashes   []crashDefect
	mutations []mutateDefect
}

// CheckCrashes scans m against the target's injected crash defects — a pure
// predicate walk, no clone, no optimization — and returns the first firing
// defect's Crash (deterministic order, first trigger wins), or nil.
func (t *Target) CheckCrashes(m *spirv.Module) *Crash {
	for _, d := range t.crashes {
		if d.fires(m) {
			return &Crash{Signature: t.Name + ": " + d.sig}
		}
	}
	return nil
}

// Mutations returns the target's miscompiling rewrites that fire on m, in
// application order. Predicates are evaluated against the unmutated input
// module; every current target carries at most one mutation, so the firing
// set fully determines the rewrite sequence.
func (t *Target) Mutations(m *spirv.Module) []Mutation {
	var out []Mutation
	for i := range t.mutations {
		if t.mutations[i].scan(m, false) {
			out = append(out, Mutation{d: &t.mutations[i]})
		}
	}
	return out
}

// MutationFingerprint canonically encodes which of the target's mutate
// defects fire on m: defect names in application order, newline-joined. Two
// targets with equal fingerprints for a module produce bitwise-identical
// compiled modules from SharedCompile, so they may share one compile; the
// common fingerprint is "" (no mutation fires), which all nine targets share
// on defect-free modules.
func (t *Target) MutationFingerprint(m *spirv.Module) string {
	return FingerprintMutations(t.Mutations(m))
}

// FingerprintMutations is MutationFingerprint over an already-selected
// mutation list.
func FingerprintMutations(muts []Mutation) string {
	if len(muts) == 0 {
		return ""
	}
	fp := muts[0].d.name
	for _, mu := range muts[1:] {
		fp += "\n" + mu.d.name
	}
	return fp
}

// SharedCompile is the target-independent tail of the toolchain: clone m,
// apply the given miscompiling rewrites in order, and run the shared
// optimization pipeline. A pipeline failure is returned as an error with no
// target prefix — callers wrap it in their own Crash signature. Because the
// only target-specific compile step is the mutation set, any two targets
// whose mutation fingerprints match share one SharedCompile result.
func SharedCompile(m *spirv.Module, muts []Mutation) (*spirv.Module, error) {
	c := m.Clone()
	for _, mu := range muts {
		mu.d.scan(c, true)
	}
	if err := opt.Pipeline(c, opt.Standard(), 0); err != nil {
		return nil, err
	}
	return c, nil
}

// Compile pushes m through the simulated toolchain: injected crash defects
// first, then the shared clone + mutate + optimize tail. It returns the
// compiled module, or a Crash if the toolchain failed.
func (t *Target) Compile(m *spirv.Module) (*spirv.Module, *Crash) {
	if crash := t.CheckCrashes(m); crash != nil {
		return nil, crash
	}
	compiled, err := SharedCompile(m, t.Mutations(m))
	if err != nil {
		return nil, &Crash{Signature: t.Name + ": internal compiler error: " + err.Error()}
	}
	return compiled, nil
}

// Run compiles m and, for render-capable targets, executes the compiled
// module on the given inputs. A nil image with a nil crash means the target
// compiled the module but cannot render (offline tools).
func (t *Target) Run(m *spirv.Module, in interp.Inputs) (*interp.Image, *Crash) {
	compiled, crash := t.Compile(m)
	if crash != nil {
		return nil, crash
	}
	if !t.CanRender {
		return nil, nil
	}
	img, err := interp.Render(compiled, in)
	if err != nil {
		return nil, &Crash{Signature: t.Name + ": device fault: " + err.Error()}
	}
	return img, nil
}

// registry holds the targets in Table 2 order; byName indexes them for the
// lookups every campaign spec, CLI flag and journal record resolves through.
var registry, byName = buildRegistry()

// All returns the targets in Table 2 order. The returned slice is fresh but
// the targets themselves are shared; they are immutable after init.
func All() []*Target {
	out := make([]*Target, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the target with the given name, or nil.
func ByName(name string) *Target {
	return byName[name]
}

func buildRegistry() ([]*Target, map[string]*Target) {
	all := []*Target{
		{
			Name: "AMD-LLPC", Version: "llpc 8.0-dev", GPUType: "Radeon RX 5700 XT", CanRender: false,
			crashes: []crashDefect{
				{"LLVM ERROR: isel: unfolded algebraic identity in shader body", hasIdentityArithmetic},
				{"LLVM ERROR: cannot allocate private segment for module-scope variable", hasPrivateGlobal},
				{"PAL pipeline assert: subroutine with control flow requires inline expansion", hasMultiBlockHelperWithControl},
				{"PAL pipeline assert: unexpected function control mask", hasNonzeroFunctionControl},
			},
		},
		{
			Name: "Mesa", Version: "20.1.0", GPUType: "Intel HD 630", CanRender: true,
			mutations: []mutateDefect{
				{"hoisted loop-bound off-by-one", scanHoistedLoopBound},
			},
		},
		{
			Name: "Mesa-Old", Version: "19.2.8", GPUType: "Intel HD 630", CanRender: true,
			crashes: []crashDefect{
				{"NIR validation failed: vec lowering assert on OpVectorShuffle", hasVectorShuffle},
			},
			mutations: []mutateDefect{
				{"hoisted loop-bound off-by-one", scanHoistedLoopBound},
			},
		},
		{
			Name: "NVIDIA", Version: "440.100", GPUType: "GeForce GTX 1060", CanRender: true,
			crashes: []crashDefect{
				{"scheduler fault: subroutine with internal control flow", hasMultiBlockHelper},
			},
		},
		{
			Name: "Pixel-5", Version: "Adreno V@0502", GPUType: "Qualcomm Adreno 620", CanRender: true,
			crashes: []crashDefect{
				{"compiler hang: store/discard combination in eliminated region", hasDeadStoreAndKill},
			},
			mutations: []mutateDefect{
				{"block-layout fragment drop", scanLayoutKill},
			},
		},
		{
			Name: "Pixel-4", Version: "Adreno V@0415", GPUType: "Qualcomm Adreno 640", CanRender: true,
			crashes: []crashDefect{
				{"shader compiler assert: nested statically-dead discard region", hasNestedDeadKill},
				{"shader compiler assert: discard in statically-taken branch", hasKillBehindConstantBranch},
			},
			mutations: []mutateDefect{
				{"block-layout fragment drop", scanLayoutKill},
			},
		},
		{
			Name: "spirv-opt", Version: "v2020.2", GPUType: "n/a (offline optimizer)", CanRender: false,
			crashes: []crashDefect{
				{"inline pass assert: argument copy-in overflow for widened signature", hasManyParams},
				{"ssa-rewrite assert: phi with a single predecessor after CFG cleanup", hasSingleArmPhi},
			},
		},
		{
			Name: "spirv-opt-old", Version: "v2019.5", GPUType: "n/a (offline optimizer)", CanRender: false,
			crashes: []crashDefect{
				{"ssa-rewrite assert: phi with a single predecessor after CFG cleanup", hasSingleArmPhi},
				{"emitted invalid SPIR-V: constant-false selection leaves orphan edge", hasConstantFalseBranch},
			},
		},
		{
			Name: "SwiftShader", Version: "4.1 (LLVM 7)", GPUType: "CPU (software renderer)", CanRender: true,
			crashes: []crashDefect{
				{"Reactor assertion failed: mustInline(callee) in Optimizer::inlineAll", hasDontInlineCallee},
			},
		},
	}
	index := make(map[string]*Target, len(all))
	for _, t := range all {
		index[t.Name] = t
	}
	return all, index
}
