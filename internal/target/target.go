// Package target simulates the nine compiler toolchains of the paper's
// Table 2. A Target is a deterministic stand-in for a real compiler: it
// clones the input module, checks a set of injected defect predicates (the
// simulated compiler bugs), applies any miscompiling rewrites, and then runs
// the shared optimization pipeline from internal/opt. Render-capable targets
// additionally execute the compiled module with the reference interpreter to
// produce an image.
//
// Every defect predicate is keyed on a structural feature that fuzzer
// transformations introduce but that no corpus reference program contains,
// so original programs never crash and never miscompile — exactly the
// invariant the test harness relies on when classifying variant outcomes.
package target

import (
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/opt"
	"spirvfuzz/internal/spirv"
)

// Crash describes a simulated compiler or device failure. The signature is
// the deduplication key used throughout the harness and experiments; two
// crashes of the same underlying defect share a signature.
type Crash struct {
	Signature string
}

// Error renders the crash like an error value for %v-style printing.
func (c *Crash) Error() string { return c.Signature }

// String implements fmt.Stringer.
func (c *Crash) String() string { return c.Signature }

// MiscompilationSignature is the pseudo-signature the harness assigns to
// wrong-image outcomes, which have no crash text of their own.
const MiscompilationSignature = "miscompilation (image differs from reference)"

// crashDefect is an injected compiler bug that aborts compilation when its
// structural trigger is present in the input module.
type crashDefect struct {
	sig   string
	fires func(m *spirv.Module) bool
}

// mutateDefect is an injected compiler bug that silently miscompiles: it
// rewrites the cloned module in a semantics-changing way and compilation
// continues normally.
type mutateDefect struct {
	name  string
	apply func(m *spirv.Module) bool
}

// Target is one simulated toolchain from Table 2.
type Target struct {
	Name      string
	Version   string
	GPUType   string
	CanRender bool // false for offline tools: crash/validity bugs only

	crashes   []crashDefect
	mutations []mutateDefect
}

// Compile clones m and pushes the clone through the simulated toolchain:
// injected crash defects first (deterministic order, first trigger wins),
// then miscompiling rewrites, then the shared optimization pipeline. It
// returns the compiled module, or a Crash if the toolchain failed.
func (t *Target) Compile(m *spirv.Module) (*spirv.Module, *Crash) {
	for _, d := range t.crashes {
		if d.fires(m) {
			return nil, &Crash{Signature: t.Name + ": " + d.sig}
		}
	}
	c := m.Clone()
	for _, d := range t.mutations {
		d.apply(c)
	}
	if err := opt.Pipeline(c, opt.Standard(), 0); err != nil {
		return nil, &Crash{Signature: t.Name + ": internal compiler error: " + err.Error()}
	}
	return c, nil
}

// Run compiles m and, for render-capable targets, executes the compiled
// module on the given inputs. A nil image with a nil crash means the target
// compiled the module but cannot render (offline tools).
func (t *Target) Run(m *spirv.Module, in interp.Inputs) (*interp.Image, *Crash) {
	compiled, crash := t.Compile(m)
	if crash != nil {
		return nil, crash
	}
	if !t.CanRender {
		return nil, nil
	}
	img, err := interp.Render(compiled, in)
	if err != nil {
		return nil, &Crash{Signature: t.Name + ": device fault: " + err.Error()}
	}
	return img, nil
}

// registry holds the targets in Table 2 order.
var registry = buildRegistry()

// All returns the targets in Table 2 order. The returned slice is fresh but
// the targets themselves are shared; they are immutable after init.
func All() []*Target {
	out := make([]*Target, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the target with the given name, or nil.
func ByName(name string) *Target {
	for _, t := range registry {
		if t.Name == name {
			return t
		}
	}
	return nil
}

func buildRegistry() []*Target {
	return []*Target{
		{
			Name: "AMD-LLPC", Version: "llpc 8.0-dev", GPUType: "Radeon RX 5700 XT", CanRender: false,
			crashes: []crashDefect{
				{"LLVM ERROR: isel: unfolded algebraic identity in shader body", hasIdentityArithmetic},
				{"LLVM ERROR: cannot allocate private segment for module-scope variable", hasPrivateGlobal},
				{"PAL pipeline assert: subroutine with control flow requires inline expansion", hasMultiBlockHelperWithControl},
				{"PAL pipeline assert: unexpected function control mask", hasNonzeroFunctionControl},
			},
		},
		{
			Name: "Mesa", Version: "20.1.0", GPUType: "Intel HD 630", CanRender: true,
			mutations: []mutateDefect{
				{"hoisted loop-bound off-by-one", mutateHoistedLoopBound},
			},
		},
		{
			Name: "Mesa-Old", Version: "19.2.8", GPUType: "Intel HD 630", CanRender: true,
			crashes: []crashDefect{
				{"NIR validation failed: vec lowering assert on OpVectorShuffle", hasVectorShuffle},
			},
			mutations: []mutateDefect{
				{"hoisted loop-bound off-by-one", mutateHoistedLoopBound},
			},
		},
		{
			Name: "NVIDIA", Version: "440.100", GPUType: "GeForce GTX 1060", CanRender: true,
			crashes: []crashDefect{
				{"scheduler fault: subroutine with internal control flow", hasMultiBlockHelper},
			},
		},
		{
			Name: "Pixel-5", Version: "Adreno V@0502", GPUType: "Qualcomm Adreno 620", CanRender: true,
			crashes: []crashDefect{
				{"compiler hang: store/discard combination in eliminated region", hasDeadStoreAndKill},
			},
			mutations: []mutateDefect{
				{"block-layout fragment drop", mutateLayoutKill},
			},
		},
		{
			Name: "Pixel-4", Version: "Adreno V@0415", GPUType: "Qualcomm Adreno 640", CanRender: true,
			crashes: []crashDefect{
				{"shader compiler assert: nested statically-dead discard region", hasNestedDeadKill},
				{"shader compiler assert: discard in statically-taken branch", hasKillBehindConstantBranch},
			},
			mutations: []mutateDefect{
				{"block-layout fragment drop", mutateLayoutKill},
			},
		},
		{
			Name: "spirv-opt", Version: "v2020.2", GPUType: "n/a (offline optimizer)", CanRender: false,
			crashes: []crashDefect{
				{"inline pass assert: argument copy-in overflow for widened signature", hasManyParams},
				{"ssa-rewrite assert: phi with a single predecessor after CFG cleanup", hasSingleArmPhi},
			},
		},
		{
			Name: "spirv-opt-old", Version: "v2019.5", GPUType: "n/a (offline optimizer)", CanRender: false,
			crashes: []crashDefect{
				{"ssa-rewrite assert: phi with a single predecessor after CFG cleanup", hasSingleArmPhi},
				{"emitted invalid SPIR-V: constant-false selection leaves orphan edge", hasConstantFalseBranch},
			},
		},
		{
			Name: "SwiftShader", Version: "4.1 (LLVM 7)", GPUType: "CPU (software renderer)", CanRender: true,
			crashes: []crashDefect{
				{"Reactor assertion failed: mustInline(callee) in Optimizer::inlineAll", hasDontInlineCallee},
			},
		},
	}
}
