// Package target simulates the nine compiler toolchains of the paper's
// Table 2. A Target is a deterministic stand-in for a real compiler: it
// clones the input module, checks a set of injected defect predicates (the
// simulated compiler bugs), applies any miscompiling rewrites, and then runs
// the shared optimization pipeline from internal/opt. Render-capable targets
// additionally execute the compiled module with the reference interpreter to
// produce an image.
//
// Every defect predicate is keyed on a structural feature that fuzzer
// transformations introduce but that no corpus reference program contains,
// so original programs never crash and never miscompile — exactly the
// invariant the test harness relies on when classifying variant outcomes.
package target

import (
	"fmt"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/opt"
	"spirvfuzz/internal/spirv"
)

// Crash describes a simulated compiler or device failure. The signature is
// the deduplication key used throughout the harness and experiments; two
// crashes of the same underlying defect share a signature.
type Crash struct {
	Signature string
}

// Error renders the crash like an error value for %v-style printing.
func (c *Crash) Error() string { return c.Signature }

// String implements fmt.Stringer.
func (c *Crash) String() string { return c.Signature }

// MiscompilationSignature is the pseudo-signature the harness assigns to
// wrong-image outcomes, which have no crash text of their own.
const MiscompilationSignature = "miscompilation (image differs from reference)"

// crashDefect is an injected compiler bug that aborts compilation when its
// structural trigger is present in the input module. The introduced/fixed
// pair places the defect in the target's release history: it is live at
// release i (1-based) iff introduced <= i and (fixed == 0 or fixed > i).
// fixed == 0 means the defect is still live at the latest release.
type crashDefect struct {
	sig        string
	fires      func(m *spirv.Module) bool
	introduced int
	fixed      int
}

// mutateDefect is an injected compiler bug that silently miscompiles. It is
// one scan function with an apply switch: scan(m, false) reports whether the
// rewrite would change m (pure predicate, no clone), scan(m, true) performs
// the semantics-changing rewrite in place. One implementation serving both
// modes keeps the predicate and the rewrite coherent, which the compile-
// sharing contract below depends on.
type mutateDefect struct {
	name       string
	scan       func(m *spirv.Module, apply bool) bool
	introduced int
	fixed      int
}

// Mutation is one miscompiling rewrite a target will apply to a module,
// as selected by Target.Mutations. It is opaque outside the package; the
// execution engine treats a mutation list plus its fingerprint as the key
// that decides which targets may share a compile.
type Mutation struct {
	d *mutateDefect
}

// Name returns the defect's name, the unit of the mutation fingerprint.
func (mu Mutation) Name() string { return mu.d.name }

// Target is one simulated toolchain from Table 2, or a historical release
// view of one. The canonical target returned by All()/ByName() is the latest
// release; At() resolves earlier releases to views that see only the defects
// live at that point in the target's history. Views share the canonical
// target's Name (crash signatures are version-independent, so one bug keeps
// one signature across releases) and carry the release name in Version.
type Target struct {
	Name      string
	Version   string
	GPUType   string
	CanRender bool // false for offline tools: crash/validity bugs only

	crashes   []crashDefect
	mutations []mutateDefect

	releases []string           // ordered release names, oldest first
	views    map[string]*Target // release name -> view; latest maps to the canonical target
}

// CheckCrashes scans m against the target's injected crash defects — a pure
// predicate walk, no clone, no optimization — and returns the first firing
// defect's Crash (deterministic order, first trigger wins), or nil.
func (t *Target) CheckCrashes(m *spirv.Module) *Crash {
	for _, d := range t.crashes {
		if d.fires(m) {
			return &Crash{Signature: t.Name + ": " + d.sig}
		}
	}
	return nil
}

// Mutations returns the target's miscompiling rewrites that fire on m, in
// application order. Predicates are evaluated against the unmutated input
// module; every current target carries at most one mutation, so the firing
// set fully determines the rewrite sequence.
func (t *Target) Mutations(m *spirv.Module) []Mutation {
	var out []Mutation
	for i := range t.mutations {
		if t.mutations[i].scan(m, false) {
			out = append(out, Mutation{d: &t.mutations[i]})
		}
	}
	return out
}

// MutationFingerprint canonically encodes which of the target's mutate
// defects fire on m: defect names in application order, newline-joined. Two
// targets with equal fingerprints for a module produce bitwise-identical
// compiled modules from SharedCompile, so they may share one compile; the
// common fingerprint is "" (no mutation fires), which all nine targets share
// on defect-free modules.
func (t *Target) MutationFingerprint(m *spirv.Module) string {
	return FingerprintMutations(t.Mutations(m))
}

// FingerprintMutations is MutationFingerprint over an already-selected
// mutation list.
func FingerprintMutations(muts []Mutation) string {
	if len(muts) == 0 {
		return ""
	}
	fp := muts[0].d.name
	for _, mu := range muts[1:] {
		fp += "\n" + mu.d.name
	}
	return fp
}

// SharedCompile is the target-independent tail of the toolchain: clone m,
// apply the given miscompiling rewrites in order, and run the shared
// optimization pipeline. A pipeline failure is returned as an error with no
// target prefix — callers wrap it in their own Crash signature. Because the
// only target-specific compile step is the mutation set, any two targets
// whose mutation fingerprints match share one SharedCompile result.
func SharedCompile(m *spirv.Module, muts []Mutation) (*spirv.Module, error) {
	c := m.Clone()
	for _, mu := range muts {
		mu.d.scan(c, true)
	}
	if err := opt.Pipeline(c, opt.Standard(), 0); err != nil {
		return nil, err
	}
	return c, nil
}

// Compile pushes m through the simulated toolchain: injected crash defects
// first, then the shared clone + mutate + optimize tail. It returns the
// compiled module, or a Crash if the toolchain failed.
func (t *Target) Compile(m *spirv.Module) (*spirv.Module, *Crash) {
	if crash := t.CheckCrashes(m); crash != nil {
		return nil, crash
	}
	compiled, err := SharedCompile(m, t.Mutations(m))
	if err != nil {
		return nil, &Crash{Signature: t.Name + ": internal compiler error: " + err.Error()}
	}
	return compiled, nil
}

// Run compiles m and, for render-capable targets, executes the compiled
// module on the given inputs. A nil image with a nil crash means the target
// compiled the module but cannot render (offline tools).
func (t *Target) Run(m *spirv.Module, in interp.Inputs) (*interp.Image, *Crash) {
	compiled, crash := t.Compile(m)
	if crash != nil {
		return nil, crash
	}
	if !t.CanRender {
		return nil, nil
	}
	img, err := interp.Render(compiled, in)
	if err != nil {
		return nil, &Crash{Signature: t.Name + ": device fault: " + err.Error()}
	}
	return img, nil
}

// registry holds the targets in Table 2 order; byName indexes them for the
// lookups every campaign spec, CLI flag and journal record resolves through.
var registry, byName = buildRegistry()

// All returns the targets in Table 2 order. The returned slice is fresh but
// the targets themselves are shared; they are immutable after init.
func All() []*Target {
	out := make([]*Target, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the target with the given name, or nil.
func ByName(name string) *Target {
	return byName[name]
}

// Releases returns the ordered release names of the named target, oldest
// first; the last entry is the release All()/ByName() serve. The returned
// slice is fresh. Unknown targets return nil.
func Releases(name string) []string {
	t := byName[name]
	if t == nil {
		return nil
	}
	out := make([]string, len(t.releases))
	copy(out, t.releases)
	return out
}

// At returns the view of the named target at the given release: a Target
// whose CheckCrashes/Mutations see only the defects live at that release.
// The latest release resolves to the canonical *Target pointer itself, so
// probes against it share every cache entry with the default path. Unknown
// names or releases return nil. Views are immutable after init.
func At(name, version string) *Target {
	t := byName[name]
	if t == nil {
		return nil
	}
	return t.views[version]
}

// IntroductionOf is the defect-set ground truth for evaluating bisection:
// it returns the release that introduced the named target's live defect
// identified by key — either a full crash signature ("Target: assert text")
// or a mutate-defect name (the unit of the mutation fingerprint). Unknown
// keys and fixed defects return "".
func IntroductionOf(name, key string) string {
	t := byName[name]
	if t == nil {
		return ""
	}
	for _, d := range t.crashes {
		if t.Name+": "+d.sig == key {
			return t.releases[d.introduced-1]
		}
	}
	for _, d := range t.mutations {
		if d.name == key {
			return t.releases[d.introduced-1]
		}
	}
	return ""
}

// targetDef is the registry's construction shape: the full defect history of
// one toolchain (live and fixed defects interleaved in check order) plus the
// length of its release sequence ("v1".."vN").
type targetDef struct {
	name, version, gpu string
	canRender          bool
	nReleases          int
	crashes            []crashDefect
	mutations          []mutateDefect
}

// liveAt reports whether a defect with the given span is present at the
// 1-based release index i.
func liveAt(introduced, fixed, i int) bool {
	return introduced <= i && (fixed == 0 || fixed > i)
}

func buildRegistry() ([]*Target, map[string]*Target) {
	// Each target's history assigns every Table 2 defect an introducing
	// release and adds a few defects that were fixed before the latest
	// release. Historical defects reuse the same fuzzer-feature predicates
	// as live ones (several deliberately mirror a sibling target's live
	// defect, fixed in the newer lineage), so the package invariant — no
	// corpus reference program ever crashes or miscompiles — holds at every
	// release, not just the latest.
	defs := []targetDef{
		{
			name: "AMD-LLPC", version: "llpc 8.0-dev", gpu: "Radeon RX 5700 XT", canRender: false, nReleases: 12,
			crashes: []crashDefect{
				{"LLVM ERROR: legacy lowering assert on OpVectorShuffle", hasVectorShuffle, 1, 4},
				{"LLVM ERROR: isel: unfolded algebraic identity in shader body", hasIdentityArithmetic, 3, 0},
				{"LLVM ERROR: cannot allocate private segment for module-scope variable", hasPrivateGlobal, 5, 0},
				{"PAL pipeline assert: subroutine with control flow requires inline expansion", hasMultiBlockHelperWithControl, 8, 0},
				{"PAL pipeline assert: unexpected function control mask", hasNonzeroFunctionControl, 10, 0},
			},
		},
		{
			name: "Mesa", version: "20.1.0", gpu: "Intel HD 630", canRender: true, nReleases: 8,
			crashes: []crashDefect{
				{"NIR validation failed: vec lowering assert on OpVectorShuffle", hasVectorShuffle, 1, 5},
			},
			mutations: []mutateDefect{
				{"hoisted loop-bound off-by-one", scanHoistedLoopBound, 6, 0},
			},
		},
		{
			name: "Mesa-Old", version: "19.2.8", gpu: "Intel HD 630", canRender: true, nReleases: 6,
			crashes: []crashDefect{
				{"NIR validation failed: vec lowering assert on OpVectorShuffle", hasVectorShuffle, 2, 0},
			},
			mutations: []mutateDefect{
				{"hoisted loop-bound off-by-one", scanHoistedLoopBound, 4, 0},
			},
		},
		{
			name: "NVIDIA", version: "440.100", gpu: "GeForce GTX 1060", canRender: true, nReleases: 10,
			crashes: []crashDefect{
				{"scheduler fault: unexpected function control mask", hasNonzeroFunctionControl, 2, 5},
				{"scheduler fault: subroutine with internal control flow", hasMultiBlockHelper, 7, 0},
			},
		},
		{
			name: "Pixel-5", version: "Adreno V@0502", gpu: "Qualcomm Adreno 620", canRender: true, nReleases: 7,
			crashes: []crashDefect{
				{"compiler hang: store/discard combination in eliminated region", hasDeadStoreAndKill, 4, 0},
			},
			mutations: []mutateDefect{
				{"block-layout fragment drop", scanLayoutKill, 2, 0},
			},
		},
		{
			name: "Pixel-4", version: "Adreno V@0415", gpu: "Qualcomm Adreno 640", canRender: true, nReleases: 9,
			crashes: []crashDefect{
				{"shader compiler assert: nested statically-dead discard region", hasNestedDeadKill, 3, 0},
				{"shader compiler assert: discard in statically-taken branch", hasKillBehindConstantBranch, 6, 0},
			},
			mutations: []mutateDefect{
				{"block-layout fragment drop", scanLayoutKill, 2, 0},
			},
		},
		{
			name: "spirv-opt", version: "v2020.2", gpu: "n/a (offline optimizer)", canRender: false, nReleases: 11,
			crashes: []crashDefect{
				{"emitted invalid SPIR-V: constant-false selection leaves orphan edge", hasConstantFalseBranch, 2, 7},
				{"inline pass assert: argument copy-in overflow for widened signature", hasManyParams, 9, 0},
				{"ssa-rewrite assert: phi with a single predecessor after CFG cleanup", hasSingleArmPhi, 4, 0},
			},
		},
		{
			name: "spirv-opt-old", version: "v2019.5", gpu: "n/a (offline optimizer)", canRender: false, nReleases: 6,
			crashes: []crashDefect{
				{"ssa-rewrite assert: phi with a single predecessor after CFG cleanup", hasSingleArmPhi, 3, 0},
				{"emitted invalid SPIR-V: constant-false selection leaves orphan edge", hasConstantFalseBranch, 1, 0},
			},
		},
		{
			name: "SwiftShader", version: "4.1 (LLVM 7)", gpu: "CPU (software renderer)", canRender: true, nReleases: 8,
			crashes: []crashDefect{
				{"Reactor assertion failed: private allocation at module scope", hasPrivateGlobal, 1, 3},
				{"Reactor assertion failed: mustInline(callee) in Optimizer::inlineAll", hasDontInlineCallee, 5, 0},
			},
		},
	}

	all := make([]*Target, 0, len(defs))
	index := make(map[string]*Target, len(defs))
	for _, def := range defs {
		all = append(all, buildTarget(def))
	}
	for _, t := range all {
		index[t.Name] = t
	}
	return all, index
}

// buildTarget materializes one toolchain and every release view from its
// defect history. The canonical target (the def's latest release) carries
// exactly the defects live at release nReleases, in history order, which
// preserves the pre-versioning CheckCrashes/Mutations behavior byte for
// byte. A registry with an inconsistent span is a programming error and
// panics at init.
func buildTarget(def targetDef) *Target {
	n := def.nReleases
	for _, d := range def.crashes {
		checkSpan(def.name, d.sig, d.introduced, d.fixed, n)
	}
	for _, d := range def.mutations {
		checkSpan(def.name, d.name, d.introduced, d.fixed, n)
	}
	releases := make([]string, n)
	for i := range releases {
		releases[i] = fmt.Sprintf("v%d", i+1)
	}
	views := make(map[string]*Target, n)
	canonical := &Target{
		Name: def.name, Version: def.version, GPUType: def.gpu, CanRender: def.canRender,
		releases: releases, views: views,
	}
	for i := 1; i <= n; i++ {
		t := canonical
		if i < n {
			t = &Target{
				Name: def.name, Version: releases[i-1], GPUType: def.gpu, CanRender: def.canRender,
				releases: releases, views: views,
			}
		}
		for _, d := range def.crashes {
			if liveAt(d.introduced, d.fixed, i) {
				t.crashes = append(t.crashes, d)
			}
		}
		for _, d := range def.mutations {
			if liveAt(d.introduced, d.fixed, i) {
				t.mutations = append(t.mutations, d)
			}
		}
		views[releases[i-1]] = t
	}
	return canonical
}

// checkSpan validates one defect's release span against the target's
// release count.
func checkSpan(target, defect string, introduced, fixed, n int) {
	if introduced < 1 || introduced > n || (fixed != 0 && (fixed <= introduced || fixed > n)) {
		panic(fmt.Sprintf("target %s: defect %q has inconsistent release span [%d, %d) over %d releases",
			target, defect, introduced, fixed, n))
	}
}
