package target

import (
	"bytes"
	"testing"

	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/testmod"
)

// scanShapes returns modules spanning both sides of every mutate defect:
// the full testmod set (no defect fires), the hoisted-loop-bound shape
// (Mesa's mutation fires) and the swapped-diamond shape (the Pixel
// mutation fires).
func scanShapes() map[string]*spirv.Module {
	shapes := map[string]*spirv.Module{}
	for name, m := range testmod.All() {
		shapes[name] = m
	}

	hoisted := testmod.Loop()
	fn := hoisted.EntryPointFunction()
	header, check := fn.Blocks[1], fn.Blocks[2]
	cmp := check.Body[0]
	check.Body = nil
	header.Body = append(header.Body, cmp)
	freshPhi := spirv.NewInstr(spirv.OpPhi, cmp.Type, hoisted.FreshID(),
		uint32(cmp.Result), uint32(header.Label))
	check.Phis = append(check.Phis, freshPhi)
	check.Term.Operands[0] = uint32(freshPhi.Result)
	shapes["hoisted-loop-bound"] = hoisted

	swapped := testmod.Diamond()
	sfn := swapped.EntryPointFunction()
	sfn.Blocks[1], sfn.Blocks[2] = sfn.Blocks[2], sfn.Blocks[1]
	shapes["swapped-diamond"] = swapped

	return shapes
}

// TestScanPredicateMatchesApply pins the coherence the compile-sharing
// contract rests on: for every mutate defect of every target, scan(m, false)
// must report true exactly when scan(clone, true) changes the module's
// encoding — the fingerprint of firing mutations then fully determines the
// compiled output — and the predicate mode must never mutate.
func TestScanPredicateMatchesApply(t *testing.T) {
	fired := 0
	for name, m := range scanShapes() {
		before := m.EncodeBytes()
		for _, tg := range registry {
			for i := range tg.mutations {
				d := &tg.mutations[i]
				predicts := d.scan(m, false)
				if after := m.EncodeBytes(); !bytes.Equal(before, after) {
					t.Fatalf("%s/%s on %s: predicate scan mutated the module", tg.Name, d.name, name)
				}
				c := m.Clone()
				reported := d.scan(c, true)
				changed := !bytes.Equal(before, c.EncodeBytes())
				if predicts != changed {
					t.Errorf("%s/%s on %s: scan(false)=%v but apply changed=%v", tg.Name, d.name, name, predicts, changed)
				}
				if reported != changed {
					t.Errorf("%s/%s on %s: apply reported %v but changed=%v", tg.Name, d.name, name, reported, changed)
				}
				if changed {
					fired++
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("no mutation fired on any shape; the coherence check is vacuous")
	}
}

// TestSharedCompileSharesAcrossTargets pins the sharing equivalence at the
// target layer: targets whose mutation fingerprints agree on a module must
// produce bitwise-identical compiled modules through SharedCompile, and
// SharedCompile must equal what Target.Compile produces.
func TestSharedCompileSharesAcrossTargets(t *testing.T) {
	for name, m := range scanShapes() {
		byFP := map[string][]byte{}
		for _, tg := range registry {
			if tg.CheckCrashes(m) != nil {
				continue
			}
			muts := tg.Mutations(m)
			fp := FingerprintMutations(muts)
			shared, err := SharedCompile(m, muts)
			if err != nil {
				t.Fatalf("%s on %s: %v", tg.Name, name, err)
			}
			direct, crash := tg.Compile(m)
			if crash != nil {
				t.Fatalf("%s on %s: Compile crashed after CheckCrashes passed: %v", tg.Name, name, crash)
			}
			enc := shared.EncodeBytes()
			if !bytes.Equal(enc, direct.EncodeBytes()) {
				t.Fatalf("%s on %s: SharedCompile differs from Compile", tg.Name, name)
			}
			if prev, ok := byFP[fp]; ok {
				if !bytes.Equal(prev, enc) {
					t.Fatalf("%s on %s: fingerprint %q compiled differently across targets", tg.Name, name, fp)
				}
			} else {
				byFP[fp] = enc
			}
		}
	}
}
