package target

import "spirvfuzz/internal/spirv"

// The injected defect predicates below are the simulated compiler bugs.
// Each one keys on a structural feature that no corpus reference program
// contains (the target_test originals-are-clean guard enforces this), so a
// defect can only be exposed by fuzzer transformations.

// hasPrivateGlobal fires on any module-scope OpVariable with Private
// storage. spirv-fuzz's AddGlobalVariable and glsl-fuzz's dead-code scratch
// variable both introduce one; reference shaders only use interface and
// Function storage.
func hasPrivateGlobal(m *spirv.Module) bool {
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpVariable && len(ins.Operands) >= 1 && ins.Operands[0] == spirv.StoragePrivate {
			return true
		}
	}
	return false
}

// hasNonzeroFunctionControl fires when any function carries a non-default
// function control mask (Inline or DontInline), which only
// SetFunctionControl transformations produce.
func hasNonzeroFunctionControl(m *spirv.Module) bool {
	for _, f := range m.Functions {
		if f.Control() != spirv.FunctionControlNone {
			return true
		}
	}
	return false
}

// hasVectorShuffle fires on any OpVectorShuffle. Only glsl-fuzz's
// swizzle-round-trip feature emits the instruction; spirv-fuzz synonyms use
// CompositeExtract/Construct instead, so this is a glsl-fuzz-only bug.
func hasVectorShuffle(m *spirv.Module) bool {
	found := false
	m.ForEachInstruction(func(ins *spirv.Instruction) {
		if ins.Op == spirv.OpVectorShuffle {
			found = true
		}
	})
	return found
}

// hasMultiBlockHelper fires when a non-entry function has internal control
// flow (two or more blocks): donated loop helpers, split helper blocks, or
// a single-iteration loop wrapped inside a helper. Reference helpers are
// all straight-line single-block functions.
func hasMultiBlockHelper(m *spirv.Module) bool {
	entry := m.EntryPointFunction()
	for _, f := range m.Functions {
		if f == entry {
			continue
		}
		if len(f.Blocks) >= 2 {
			return true
		}
	}
	return false
}

// hasKillBehindConstantBranch fires when an OpKill block is an arm of a
// conditional branch on a constant boolean — the AddDeadBlock +
// ReplaceBranchWithKill shape. Reference kills (e.g. the killhalf shader)
// sit behind dynamic conditions.
func hasKillBehindConstantBranch(m *spirv.Module) bool {
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			if b.Term == nil || b.Term.Op != spirv.OpBranchConditional {
				continue
			}
			if _, isConst := m.ConstantBoolValue(b.Term.IDOperand(0)); !isConst {
				continue
			}
			for _, arm := range []spirv.ID{b.Term.IDOperand(1), b.Term.IDOperand(2)} {
				if ab := f.Block(arm); ab != nil && ab.Term != nil && ab.Term.Op == spirv.OpKill {
					return true
				}
			}
		}
	}
	return false
}

// hasSingleArmPhi fires on any ϕ with exactly one incoming (value, parent)
// pair. PropagateInstructionUp creates these directly when the rewritten
// block has a single predecessor; reference ϕs always merge two or more
// edges, and glsl-fuzz never produces the single-arm form.
func hasSingleArmPhi(m *spirv.Module) bool {
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			for _, p := range b.Phis {
				if p.Op == spirv.OpPhi && len(p.Operands) == 2 {
					return true
				}
			}
		}
	}
	return false
}

// hasConstantFalseBranch fires on a conditional branch whose condition is a
// constant false — the else-form of WrapRegionInSelection, which only
// spirv-fuzz generates.
func hasConstantFalseBranch(m *spirv.Module) bool {
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			if b.Term == nil || b.Term.Op != spirv.OpBranchConditional {
				continue
			}
			if v, isConst := m.ConstantBoolValue(b.Term.IDOperand(0)); isConst && !v {
				return true
			}
		}
	}
	return false
}

// hasDontInlineCallee fires when any called function carries the
// DontInline control mask (Figure 3's SwiftShader bug: the Reactor backend
// assumes every call can be inlined).
func hasDontInlineCallee(m *spirv.Module) bool {
	callees := make(map[spirv.ID]bool)
	m.ForEachInstruction(func(ins *spirv.Instruction) {
		if ins.Op == spirv.OpFunctionCall {
			callees[ins.IDOperand(0)] = true
		}
	})
	for _, f := range m.Functions {
		if callees[f.ID()] && f.Control()&spirv.FunctionControlDontInline != 0 {
			return true
		}
	}
	return false
}

// hasIdentityArithmetic fires on integer arithmetic no-ops: x+0, x-0, x*1,
// x|0, x^0 and x&x. Both fuzzers emit these — spirv-fuzz via
// AddNoOpArithmetic synonyms, glsl-fuzz via integer identity chains — while
// reference shaders never combine a value with a literal identity element.
// (Float identities like x*1.0 are deliberately excluded: reference shaders
// legitimately scale by constant 1.0.)
func hasIdentityArithmetic(m *spirv.Module) bool {
	found := false
	m.ForEachInstruction(func(ins *spirv.Instruction) {
		if found || len(ins.Operands) != 2 {
			return
		}
		a, b := ins.IDOperand(0), ins.IDOperand(1)
		switch ins.Op {
		case spirv.OpIAdd, spirv.OpBitwiseOr, spirv.OpBitwiseXor:
			found = isConstIntWord(m, a, 0) || isConstIntWord(m, b, 0)
		case spirv.OpISub:
			found = isConstIntWord(m, b, 0)
		case spirv.OpIMul:
			found = isConstIntWord(m, a, 1) || isConstIntWord(m, b, 1)
		case spirv.OpBitwiseAnd:
			found = a == b
		}
	})
	return found
}

func isConstIntWord(m *spirv.Module, id spirv.ID, word uint32) bool {
	def := m.Def(id)
	return def != nil && def.Op == spirv.OpConstant && m.IsIntType(def.Type) &&
		len(def.Operands) == 1 && def.Operands[0] == word
}

// deadBlockSet returns, per function, the labels of statically-dead blocks:
// untaken arms of conditional branches on constant conditions. Only fuzzer
// transformations (AddDeadBlock, WrapRegionInSelection) create these.
func deadBlockSet(m *spirv.Module, f *spirv.Function) map[spirv.ID]bool {
	dead := make(map[spirv.ID]bool)
	for _, b := range f.Blocks {
		if b.Term == nil || b.Term.Op != spirv.OpBranchConditional {
			continue
		}
		v, ok := m.ConstantBoolValue(b.Term.IDOperand(0))
		if !ok {
			continue
		}
		if v {
			dead[b.Term.IDOperand(2)] = true
		} else {
			dead[b.Term.IDOperand(1)] = true
		}
	}
	return dead
}

// hasNestedDeadKill fires when an OpKill block hangs off a constant
// conditional branch whose own block is itself statically dead — dead code
// stacked inside dead code. Reaching the shape takes a chain of block
// transformations (SplitBlocks/AddDeadBlocks feeding further AddDeadBlocks
// and ReplaceBranchesWithKill), which in practice only the recommendation
// strategy lines up within one campaign's pass budget.
func hasNestedDeadKill(m *spirv.Module) bool {
	for _, f := range m.Functions {
		dead := deadBlockSet(m, f)
		for _, b := range f.Blocks {
			if !dead[b.Label] || b.Term == nil || b.Term.Op != spirv.OpBranchConditional {
				continue
			}
			if _, ok := m.ConstantBoolValue(b.Term.IDOperand(0)); !ok {
				continue
			}
			for _, arm := range []spirv.ID{b.Term.IDOperand(1), b.Term.IDOperand(2)} {
				if ab := f.Block(arm); ab != nil && ab.Term != nil && ab.Term.Op == spirv.OpKill {
					return true
				}
			}
		}
	}
	return false
}

// hasDeadStoreAndKill fires when statically-dead blocks contain both an
// OpStore and an OpKill terminator — the AddDeadBlocks → AddLoadsStores +
// ReplaceBranchesWithKill recommendation fan-out.
func hasDeadStoreAndKill(m *spirv.Module) bool {
	store, kill := false, false
	for _, f := range m.Functions {
		dead := deadBlockSet(m, f)
		for _, b := range f.Blocks {
			if !dead[b.Label] {
				continue
			}
			for _, ins := range b.Body {
				if ins.Op == spirv.OpStore {
					store = true
				}
			}
			if b.Term != nil && b.Term.Op == spirv.OpKill {
				kill = true
			}
		}
	}
	return store && kill
}

// hasManyParams fires on a function with three or more parameters.
// Reference helpers take at most two; the shape needs repeated AddParameter
// applications, which the AddFunctionCalls → AddParameters recommendation
// drives.
func hasManyParams(m *spirv.Module) bool {
	for _, f := range m.Functions {
		if len(f.Params) >= 3 {
			return true
		}
	}
	return false
}

// hasMultiBlockHelperWithControl fires when a non-entry function has both
// internal control flow and a non-default function control mask — a donated
// loop helper that later picked up an inline hint via the AddFunctionCalls →
// SetFunctionControls recommendation.
func hasMultiBlockHelperWithControl(m *spirv.Module) bool {
	entry := m.EntryPointFunction()
	for _, f := range m.Functions {
		if f != entry && len(f.Blocks) >= 2 && f.Control() != spirv.FunctionControlNone {
			return true
		}
	}
	return false
}

// intCompare reports whether op is an ordered integer comparison.
func intCompare(op spirv.Opcode) bool {
	switch op {
	case spirv.OpSLessThan, spirv.OpSLessThanEqual, spirv.OpSGreaterThan, spirv.OpSGreaterThanEqual:
		return true
	}
	return false
}

// The mutate defects below are implemented as a single scan with an apply
// switch: scanX(m, false) reports whether the rewrite would change m without
// touching it, and scanX(m, true) performs it. Sharing one walk makes the
// fires/apply pair coherent by construction — the phase-split compile path
// (Target.Mutations + SharedCompile) depends on the predicate and the
// rewrite never diverging.

// scanHoistedLoopBound is the Mesa miscompilation of Figure 8a: when a
// loop-header body instruction is an integer comparison between a ϕ of that
// same header and a constant bound (the shape PropagateInstructionUp
// produces by hoisting the exit check into the header), the simulated
// loop-invariant hoisting pass decrements the bound by one, skipping the
// final loop iteration. Reference loop headers keep their exit checks in a
// separate block, so the rewrite never applies to originals.
func scanHoistedLoopBound(m *spirv.Module, apply bool) bool {
	changed := false
	for _, f := range m.Functions {
		for _, b := range f.Blocks {
			if b.Merge == nil || b.Merge.Op != spirv.OpLoopMerge {
				continue
			}
			headerPhis := make(map[spirv.ID]bool)
			for _, p := range b.Phis {
				if p.Result != 0 {
					headerPhis[p.Result] = true
				}
			}
			if len(headerPhis) == 0 {
				continue
			}
			for _, ins := range b.Body {
				if !intCompare(ins.Op) || len(ins.Operands) != 2 {
					continue
				}
				switch {
				case headerPhis[ins.IDOperand(0)]:
					changed = decrementConstOperand(m, ins, 1, apply) || changed
				case headerPhis[ins.IDOperand(1)]:
					changed = decrementConstOperand(m, ins, 0, apply) || changed
				}
				if changed && !apply {
					return true // predicate mode: first match decides
				}
			}
		}
	}
	return changed
}

// decrementConstOperand replaces the integer constant at operand index i
// with a constant one less, when the operand is a plain single-word
// OpConstant of integer type. With apply false it only reports whether the
// replacement would happen.
func decrementConstOperand(m *spirv.Module, ins *spirv.Instruction, i int, apply bool) bool {
	def := m.Def(ins.IDOperand(i))
	if def == nil || def.Op != spirv.OpConstant || len(def.Operands) != 1 || !m.IsIntType(def.Type) {
		return false
	}
	if apply {
		ins.Operands[i] = uint32(m.EnsureConstantWord(def.Type, def.Operands[0]-1))
	}
	return true
}

// scanLayoutKill is the Pixel driver miscompilation of Figure 8b: when a
// dynamically-conditioned branch in the entry function has its false arm
// laid out before its true arm (the MoveBlockDown shape — natural layout
// always places the then-arm first), the simulated backend's block-layout
// pass drops the displaced arm's fragments by routing the true edge to a
// discard. Only the first violating branch is rewritten.
func scanLayoutKill(m *spirv.Module, apply bool) bool {
	f := m.EntryPointFunction()
	if f == nil {
		return false
	}
	idx := make(map[spirv.ID]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b.Label] = i
	}
	for _, b := range f.Blocks {
		if b.Term == nil || b.Term.Op != spirv.OpBranchConditional {
			continue
		}
		if _, isConst := m.ConstantBoolValue(b.Term.IDOperand(0)); isConst {
			continue
		}
		tArm, fArm := b.Term.IDOperand(1), b.Term.IDOperand(2)
		ti, tOK := idx[tArm]
		fi, fOK := idx[fArm]
		if !tOK || !fOK || tArm == fArm || fi >= ti {
			continue
		}
		if apply {
			kill := &spirv.Block{Label: m.FreshID(), Term: spirv.NewInstr(spirv.OpKill, 0, 0)}
			f.Blocks = append(f.Blocks, kill)
			b.Term.Operands[1] = uint32(kill.Label)
		}
		return true
	}
	return false
}
