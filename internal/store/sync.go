package store

import (
	"fmt"
	"os"
)

// Batch blob-sync primitives. A cluster worker negotiates transfers by hash:
// it asks which of a shard's referenced blobs the peer already has
// (HasBatch), then ships only the missing ones (PutBatch) or pulls them
// (GetBatch). Content addressing makes the negotiation trivially sound —
// equal hash means equal bytes — and the Sync* counters in Stats record the
// store-side view of that traffic so dedup savings are measurable.

// HasBatch reports, element-wise, whether each hash is stored. Malformed
// hashes report false rather than erroring, matching HasBlob.
func (s *Store) HasBatch(hashes []string) []bool {
	out := make([]bool, len(hashes))
	for i, h := range hashes {
		out[i] = s.HasBlob(h)
	}
	s.syncHasQueries.Add(uint64(len(hashes)))
	return out
}

// PutBatch stores each blob under its content address and returns the hashes
// in order. Blobs arriving over the sync protocol count as SyncBlobsIn /
// SyncBytesIn on top of the usual PutBlob accounting.
func (s *Store) PutBatch(blobs [][]byte) ([]string, error) {
	hashes := make([]string, len(blobs))
	for i, b := range blobs {
		h, err := s.PutBlob(b)
		if err != nil {
			return nil, fmt.Errorf("store: put batch blob %d: %w", i, err)
		}
		hashes[i] = h
		s.syncBlobsIn.Add(1)
		s.syncBytesIn.Add(uint64(len(b)))
	}
	return hashes, nil
}

// GetBatch returns the blobs stored under hashes, in order. Blobs leaving
// over the sync protocol count as SyncBlobsOut / SyncBytesOut.
func (s *Store) GetBatch(hashes []string) ([][]byte, error) {
	out := make([][]byte, len(hashes))
	for i, h := range hashes {
		b, err := s.GetBlob(h)
		if err != nil {
			return nil, err
		}
		out[i] = b
		s.syncBlobsOut.Add(1)
		s.syncBytesOut.Add(uint64(len(b)))
	}
	return out, nil
}

// StatBlob returns the stored size of a blob without reading it, and whether
// it exists. Sync manifests carry (hash, size) pairs so referenced bytes can
// be accounted without transferring anything.
func (s *Store) StatBlob(hash string) (int64, bool) {
	path, err := s.blobPath(hash)
	if err != nil {
		return 0, false
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, false
	}
	return fi.Size(), true
}
