package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// checkpointPath validates name (a flat file name, no separators) and maps
// it into the checkpoints directory.
func (s *Store) checkpointPath(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("store: invalid checkpoint name %q", name)
	}
	return filepath.Join(s.root, "checkpoints", name+".json"), nil
}

// SaveCheckpoint atomically replaces the named checkpoint with the JSON
// encoding of v: the bytes are written to a temp file, fsynced, and renamed
// over the old checkpoint, so readers (and a daemon restarted after a kill)
// observe either the previous complete checkpoint or the new complete one,
// never a torn mix.
func (s *Store) SaveCheckpoint(name string, v any) error {
	path, err := s.checkpointPath(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	s.checkpoints.Add(1)
	return nil
}

// LoadCheckpoint decodes the named checkpoint into v, reporting whether it
// exists.
func (s *Store) LoadCheckpoint(name string, v any) (bool, error) {
	path, err := s.checkpointPath(name)
	if err != nil {
		return false, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("store: checkpoint %s: %w", name, err)
	}
	return true, nil
}
