// Package store is the durable state layer behind the spirvd campaign
// daemon: a content-addressed blob store for campaign artifacts (module
// binaries, transformation sequences, reduced bug reports), a write-ahead
// journal of campaign events, and atomically-replaced checkpoint files.
//
// Everything the pipeline produces is deterministic, so durability is
// expressed as content addressing plus an event log: artifacts are keyed by
// the SHA-256 of their bytes (identical artifacts from different campaigns
// or from a re-run of the same campaign occupy one blob), and the journal
// records which pipeline steps completed, referencing artifacts by hash. A
// daemon killed at any point — including SIGKILL mid-write — reopens the
// store, replays the journal, and resumes without re-running completed work;
// a torn trailing journal record is discarded (its step simply re-runs).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Store is an on-disk campaign store rooted at one directory:
//
//	root/
//	  blobs/ab/abcdef...        content-addressed artifacts (SHA-256 hex)
//	  journal.jsonl             append-only campaign event log
//	  checkpoints/<name>.json   atomically-replaced derived state
//
// Store is safe for concurrent use.
type Store struct {
	root    string
	journal *Journal

	blobsWritten atomic.Uint64
	blobBytes    atomic.Uint64
	blobDedup    atomic.Uint64
	checkpoints  atomic.Uint64

	syncHasQueries atomic.Uint64
	syncBlobsIn    atomic.Uint64
	syncBytesIn    atomic.Uint64
	syncBlobsOut   atomic.Uint64
	syncBytesOut   atomic.Uint64
}

// Stats is a point-in-time snapshot of store counters, following the
// internal/runner Stats pattern.
type Stats struct {
	BlobsWritten   uint64 `json:"blobs_written"` // new blobs materialized on disk
	BlobBytes      uint64 `json:"blob_bytes"`    // bytes of those blobs
	BlobDedupHits  uint64 `json:"blob_dedup_hits"`
	JournalRecords uint64 `json:"journal_records"` // records appended this process
	Checkpoints    uint64 `json:"checkpoints"`     // checkpoint saves this process

	// Blob-sync protocol traffic (HasBatch/PutBatch/GetBatch), the
	// store-side view of cluster transfers.
	SyncHasQueries uint64 `json:"sync_has_queries"` // hashes probed via HasBatch
	SyncBlobsIn    uint64 `json:"sync_blobs_in"`    // blobs received via PutBatch
	SyncBytesIn    uint64 `json:"sync_bytes_in"`
	SyncBlobsOut   uint64 `json:"sync_blobs_out"` // blobs served via GetBatch
	SyncBytesOut   uint64 `json:"sync_bytes_out"`
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"", "blobs", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	j, err := openJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	return &Store{root: dir, journal: j}, nil
}

// Close releases the journal file handle.
func (s *Store) Close() error { return s.journal.Close() }

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Journal returns the store's write-ahead journal.
func (s *Store) Journal() *Journal { return s.journal }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		BlobsWritten:   s.blobsWritten.Load(),
		BlobBytes:      s.blobBytes.Load(),
		BlobDedupHits:  s.blobDedup.Load(),
		JournalRecords: s.journal.appended.Load(),
		Checkpoints:    s.checkpoints.Load(),
		SyncHasQueries: s.syncHasQueries.Load(),
		SyncBlobsIn:    s.syncBlobsIn.Load(),
		SyncBytesIn:    s.syncBytesIn.Load(),
		SyncBlobsOut:   s.syncBlobsOut.Load(),
		SyncBytesOut:   s.syncBytesOut.Load(),
	}
}

// HashBytes returns the store's content address for data: lowercase SHA-256
// hex.
func HashBytes(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// blobPath maps a hash to its on-disk location, fanned out over 256
// two-hex-digit directories so no single directory grows unbounded.
func (s *Store) blobPath(hash string) (string, error) {
	if len(hash) != 2*sha256.Size {
		return "", fmt.Errorf("store: malformed blob hash %q", hash)
	}
	if _, err := hex.DecodeString(hash); err != nil {
		return "", fmt.Errorf("store: malformed blob hash %q", hash)
	}
	return filepath.Join(s.root, "blobs", hash[:2], hash), nil
}

// PutBlob stores data under its content address and returns the hash. An
// existing blob with the same content is reused (a dedup hit), which is what
// makes re-submitted campaigns and restarted daemons idempotent: writing the
// same artifact twice is a no-op.
func (s *Store) PutBlob(data []byte) (string, error) {
	hash := HashBytes(data)
	path, err := s.blobPath(hash)
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(path); err == nil {
		s.blobDedup.Add(1)
		return hash, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	// Write-temp-then-rename: a crash mid-write leaves a stray temp file,
	// never a truncated blob under a valid content address.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".blob-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	s.blobsWritten.Add(1)
	s.blobBytes.Add(uint64(len(data)))
	return hash, nil
}

// GetBlob returns the blob stored under hash.
func (s *Store) GetBlob(hash string) ([]byte, error) {
	path, err := s.blobPath(hash)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", hash, err)
	}
	if got := HashBytes(data); got != hash {
		return nil, fmt.Errorf("store: blob %s corrupted (content hashes to %s)", hash, got)
	}
	return data, nil
}

// HasBlob reports whether a blob is stored under hash.
func (s *Store) HasBlob(hash string) bool {
	path, err := s.blobPath(hash)
	if err != nil {
		return false
	}
	_, statErr := os.Stat(path)
	return statErr == nil
}
