package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestBlobRoundTripAndDedup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := []byte("transformation sequence payload")
	h1, err := s.PutBlob(data)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasBlob(h1) {
		t.Fatalf("HasBlob(%s) = false after Put", h1)
	}
	got, err := s.GetBlob(h1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("GetBlob = %q, want %q", got, data)
	}
	// Second put of identical content is a dedup hit, not a new blob.
	h2, err := s.PutBlob(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("content address changed: %s vs %s", h1, h2)
	}
	st := s.Stats()
	if st.BlobsWritten != 1 || st.BlobDedupHits != 1 {
		t.Fatalf("stats = %+v, want 1 written / 1 dedup", st)
	}
	if st.BlobBytes != uint64(len(data)) {
		t.Fatalf("BlobBytes = %d, want %d", st.BlobBytes, len(data))
	}
	if s.HasBlob("deadbeef") { // malformed hash
		t.Fatal("HasBlob accepted malformed hash")
	}
	if _, err := s.GetBlob(HashBytes([]byte("absent"))); err == nil {
		t.Fatal("GetBlob of absent blob succeeded")
	}
}

func TestBlobConcurrentPut(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				data := []byte(fmt.Sprintf("blob-%d", i)) // shared across goroutines
				h, err := s.PutBlob(data)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := s.GetBlob(h)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("round trip %s: %v", h, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct{ N int }
	for i := 0; i < 5; i++ {
		if _, err := s.Journal().Append("c1", "test_done", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Reopen: sequence numbers continue, replay sees everything in order.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Journal().Append("c1", "done", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 6 {
		t.Fatalf("resumed seq = %d, want 6", rec.Seq)
	}
	var seqs []uint64
	var types []string
	err = s2.Journal().Replay(func(r Record) error {
		seqs = append(seqs, r.Seq)
		types = append(types, r.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 6 || seqs[0] != 1 || seqs[5] != 6 || types[5] != "done" {
		t.Fatalf("replay = %v / %v", seqs, types)
	}
}

func TestJournalTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Journal().Append("c1", "complete", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a process killed mid-append: a half-written trailing record.
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"type":"torn","da`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	var n int
	if err := s2.Journal().Replay(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1 (torn tail discarded)", n)
	}
	// The torn tail was truncated on open, so the next append starts on a
	// clean line boundary and the log replays completely.
	if _, err := s2.Journal().Append("c1", "after", nil); err != nil {
		t.Fatal(err)
	}
	var types []string
	if err := s2.Journal().Replay(func(r Record) error { types = append(types, r.Type); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != "complete" || types[1] != "after" {
		t.Fatalf("post-truncate replay = %v, want [complete after]", types)
	}
}

func TestJournalCorruptionMidFileIsError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Journal().Append("c1", "a", nil)
	s.Close()
	path := filepath.Join(dir, "journal.jsonl")
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("NOT JSON\n")
	f.WriteString(`{"seq":3,"type":"b"}` + "\n")
	f.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("mid-file corruption not detected")
	}
}

func TestCheckpointAtomicReplace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	type buckets struct{ Names []string }
	if ok, err := s.LoadCheckpoint("missing", &buckets{}); err != nil || ok {
		t.Fatalf("LoadCheckpoint(missing) = %v, %v", ok, err)
	}
	if err := s.SaveCheckpoint("c1-buckets", buckets{Names: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint("c1-buckets", buckets{Names: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	var got buckets
	ok, err := s.LoadCheckpoint("c1-buckets", &got)
	if err != nil || !ok {
		t.Fatalf("load: %v %v", ok, err)
	}
	if len(got.Names) != 2 || got.Names[1] != "b" {
		t.Fatalf("checkpoint = %+v, want latest version", got)
	}
	// No stray temp files once saves complete.
	entries, err := os.ReadDir(filepath.Join(s.Root(), "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoints dir has %d entries, want 1", len(entries))
	}
	if err := s.SaveCheckpoint("../escape", 1); err == nil {
		t.Fatal("path-traversal checkpoint name accepted")
	}
}
