package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Record is one journal entry: a campaign event. Data carries the
// event-specific payload; the journal itself is schema-agnostic so the
// service layer can evolve event shapes without store changes.
type Record struct {
	Seq      uint64          `json:"seq"`
	Campaign string          `json:"campaign,omitempty"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data,omitempty"`
}

// Journal is an append-only, line-delimited JSON event log — the write-ahead
// journal of campaign progress. Appends are serialized and each record is a
// single O_APPEND write of one line, so records from a killed process are
// either fully present or torn exactly at the tail; Replay tolerates a torn
// tail by discarding it (the corresponding pipeline step re-runs, which is
// safe because every step is deterministic and idempotent against the blob
// store). Safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	nextSeq  uint64
	appended atomic.Uint64
}

// openJournal opens (creating if needed) the journal at path and seeds the
// sequence counter from the existing records. A torn trailing record (from a
// writer killed mid-append) is truncated away so the next append starts on a
// clean line boundary.
func openJournal(path string) (*Journal, error) {
	j := &Journal{path: path, nextSeq: 1}
	valid, err := j.replay(func(r Record) error {
		if r.Seq >= j.nextSeq {
			j.nextSeq = r.Seq + 1
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	if info, err := f.Stat(); err == nil && info.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Append journals one event, assigning its sequence number, and returns the
// record as written.
func (j *Journal) Append(campaign, typ string, data any) (Record, error) {
	var raw json.RawMessage
	if data != nil {
		enc, err := json.Marshal(data)
		if err != nil {
			return Record{}, fmt.Errorf("store: journal: marshal %s: %w", typ, err)
		}
		raw = enc
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := Record{Seq: j.nextSeq, Campaign: campaign, Type: typ, Data: raw}
	line, err := json.Marshal(rec)
	if err != nil {
		return Record{}, fmt.Errorf("store: journal: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return Record{}, fmt.Errorf("store: journal: %w", err)
	}
	j.nextSeq++
	j.appended.Add(1)
	return rec, nil
}

// Sync flushes journal writes to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Replay reads every complete record in order and calls fn on each. A torn
// trailing line — the signature of a process killed mid-append — is
// discarded; a malformed record anywhere else is corruption and an error.
func (j *Journal) Replay(fn func(Record) error) error {
	_, err := j.replay(fn)
	return err
}

// replay is Replay returning the byte offset just past the last complete
// record, which openJournal uses to truncate a torn tail.
func (j *Journal) replay(fn func(Record) error) (int64, error) {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("store: journal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var valid int64
	for {
		line, err := r.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return valid, fmt.Errorf("store: journal: %w", err)
		}
		read := int64(len(line))
		line = bytes.TrimSuffix(line, []byte("\n"))
		if len(bytes.TrimSpace(line)) > 0 {
			if atEOF {
				// No trailing newline: the record (or at least its newline)
				// was torn by a kill mid-append. Discard it — the pipeline
				// step it recorded simply re-runs.
				return valid, nil
			}
			var rec Record
			if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil {
				return valid, fmt.Errorf("store: journal corrupted: %v", jsonErr)
			}
			if err := fn(rec); err != nil {
				return valid, err
			}
		}
		valid += read
		if atEOF {
			return valid, nil
		}
	}
}
