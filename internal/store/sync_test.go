package store

import (
	"bytes"
	"testing"
)

// TestBatchSync covers the blob-sync surface the cluster negotiates over:
// HasBatch answers membership, PutBatch/GetBatch move blobs in bulk, and
// the transfer counters account every byte that actually crossed.
func TestBatchSync(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	blobs := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma")}
	hashes, err := st.PutBatch(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hashes) != len(blobs) {
		t.Fatalf("PutBatch returned %d hashes for %d blobs", len(hashes), len(blobs))
	}
	for i, h := range hashes {
		want, err := st.PutBlob(blobs[i])
		if err != nil {
			t.Fatal(err)
		}
		if h != want {
			t.Fatalf("blob %d: PutBatch hash %s != PutBlob hash %s", i, h, want)
		}
	}

	has := st.HasBatch([]string{hashes[0], "0000deadbeef", hashes[2]})
	if !has[0] || has[1] || !has[2] {
		t.Fatalf("HasBatch = %v, want [true false true]", has)
	}

	got, err := st.GetBatch(hashes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blobs {
		if !bytes.Equal(got[i], blobs[i]) {
			t.Fatalf("GetBatch blob %d mismatch", i)
		}
	}
	if _, err := st.GetBatch([]string{"0000deadbeef"}); err == nil {
		t.Fatal("GetBatch of a missing hash did not error")
	}

	if size, ok := st.StatBlob(hashes[1]); !ok || size != int64(len(blobs[1])) {
		t.Fatalf("StatBlob = (%d, %v), want (%d, true)", size, ok, len(blobs[1]))
	}
	if _, ok := st.StatBlob("0000deadbeef"); ok {
		t.Fatal("StatBlob found a missing blob")
	}

	var total uint64
	for _, b := range blobs {
		total += uint64(len(b))
	}
	stats := st.Stats()
	if stats.SyncHasQueries != 3 {
		t.Fatalf("SyncHasQueries = %d, want 3", stats.SyncHasQueries)
	}
	if stats.SyncBlobsIn != 3 || stats.SyncBytesIn != total {
		t.Fatalf("inbound sync counters = (%d, %d), want (3, %d)", stats.SyncBlobsIn, stats.SyncBytesIn, total)
	}
	if stats.SyncBlobsOut != 3 || stats.SyncBytesOut != total {
		t.Fatalf("outbound sync counters = (%d, %d), want (3, %d)", stats.SyncBlobsOut, stats.SyncBytesOut, total)
	}
}
