// Package replay is the incremental replay engine behind delta debugging.
//
// Reduction per Section 3.4 asks many interestingness queries, and each query
// replays a subsequence of the bug-inducing transformation sequence on a
// fresh copy of the original context (Definition 2.5). Successive ddmin
// candidates differ only by one removed chunk, so consecutive queries share
// long applied prefixes — yet a naive replay re-applies every kept
// transformation from scratch, making an n-transformation reduction cost
// O(n²) transformation applications.
//
// This package amortizes that cost with a bounded, concurrency-safe store of
// context snapshots keyed by the applied prefix of a keep-set. A query for
// keep-set K finds the deepest cached snapshot whose key is a prefix of K,
// clones only that snapshot, and applies the remaining suffix, recording
// fresh snapshots at geometrically spaced depths on the way so that memory
// stays logarithmic in the sequence length. Transformation application is
// deterministic and snapshots are immutable (every hit clones), so a replay
// served from the cache is bitwise-identical to a fresh replay — property
// tests in this package verify that via the binary encoding.
package replay

import (
	"container/list"
	"sync"
	"sync/atomic"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
)

// DefaultBudget is the default snapshot-store size: large enough that a
// single reduction rarely evicts, small next to campaign-scale memory.
const DefaultBudget int64 = 64 << 20

// snapGrainShift controls snapshot spacing: within each power-of-two octave
// of depths, 2^snapGrainShift snapshots are recorded (evenly spaced), so a
// prefix probe wastes at most ~1/2^snapGrainShift of its depth re-applying
// transformations below the deepest snapshot.
const snapGrainShift = 3

// maxRecordsPerQuery caps how many snapshots one query may record. Each
// record is a full context clone, so uncapped recording along a long suffix
// would cost more than the applies the snapshots later save; shallow grid
// points are recorded first and deeper ones by the subsequent queries that
// hit them.
const maxRecordsPerQuery = 3

// maxSeenKeys bounds the second-touch bookkeeping set. Entries are bare
// 16-byte keys, so the bound is generous; overflowing resets the set, which
// merely delays re-recording by one touch.
const maxSeenKeys = 1 << 20

// key identifies the context reached by applying one exact keep-prefix of
// one session's sequence. Two independently mixed 64-bit chains make
// accidental collisions (which would be a correctness bug, not a perf bug)
// vanishingly unlikely.
type key struct{ a, b uint64 }

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// step extends the prefix chain by one word.
func (k key) step(x uint64) key {
	return key{
		a: mix64(k.a ^ x),
		b: mix64(k.b + x*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9),
	}
}

// snapshot is one cached context. Immutable once stored: Replay clones it
// before applying anything.
type snapshot struct {
	key     key
	ctx     *fuzz.Context
	applied []int // indices (into the session sequence) applied so far
	bytes   int64
}

// Stats is a point-in-time snapshot of engine counters, following the
// internal/runner Stats pattern.
type Stats struct {
	Queries   uint64 // Replay/ReplayOverride calls
	Hits      uint64 // queries resumed from a snapshot (prefix depth >= 1)
	FullHits  uint64 // hits whose snapshot already covered the whole keep-set
	Misses    uint64 // queries replayed from the original context
	Applied   uint64 // transformations iterated while replaying (suffix work)
	Requested uint64 // transformations selected across all queries (Σ|keep|)
	Snapshots int    // snapshots currently cached
	Bytes     int64  // estimated bytes of cached snapshots
	Evictions uint64 // snapshots discarded to stay under the budget
	Sessions  uint64 // sessions opened
}

// HitRate returns the fraction of queries that resumed from a snapshot.
func (s Stats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Queries)
}

// MeanSuffix returns the mean number of transformations applied per query —
// the replay cost the cache could not avoid. A fresh replay of keep-set K
// costs |K|; the gap to MeanRequested is the amortization.
func (s Stats) MeanSuffix() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Applied) / float64(s.Queries)
}

// MeanRequested returns the mean keep-set size per query.
func (s Stats) MeanRequested() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Requested) / float64(s.Queries)
}

// SavedFraction is the fraction of requested transformation applications the
// cache avoided; 0 with caching disabled.
func (s Stats) SavedFraction() float64 {
	if s.Requested == 0 {
		return 0
	}
	return 1 - float64(s.Applied)/float64(s.Requested)
}

// Engine is a concurrency-safe prefix-snapshot store shared by any number of
// replay sessions. The zero value is not valid; use NewEngine. A nil *Engine
// is tolerated by NewSession and behaves as "caching disabled".
type Engine struct {
	mu      sync.Mutex
	budget  int64 // bytes; <= 0 disables caching
	used    int64
	byKey   map[key]*list.Element
	lru     *list.List       // front = most recently used
	seen    map[key]struct{} // prefix keys requested once; second touch records
	session atomic.Uint64

	queries   atomic.Uint64
	hits      atomic.Uint64
	fullHits  atomic.Uint64
	misses    atomic.Uint64
	applied   atomic.Uint64
	requested atomic.Uint64
	evictions atomic.Uint64
}

// NewEngine returns an engine whose snapshots occupy at most budget bytes
// (estimated); budget <= 0 disables caching entirely, so every Replay is a
// fresh full replay — the pre-engine baseline, mirroring the runner engine's
// SetCacheCap(0).
func NewEngine(budget int64) *Engine {
	return &Engine{
		budget: budget,
		byKey:  make(map[key]*list.Element),
		lru:    list.New(),
		seen:   make(map[key]struct{}),
	}
}

// Enabled reports whether the engine caches snapshots.
func (e *Engine) Enabled() bool { return e != nil && e.budget > 0 }

// Stats returns a snapshot of the engine's counters. Safe on a nil engine.
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	st := Stats{
		Queries:   e.queries.Load(),
		Hits:      e.hits.Load(),
		FullHits:  e.fullHits.Load(),
		Misses:    e.misses.Load(),
		Applied:   e.applied.Load(),
		Requested: e.requested.Load(),
		Evictions: e.evictions.Load(),
		Sessions:  e.session.Load(),
	}
	e.mu.Lock()
	st.Snapshots = e.lru.Len()
	st.Bytes = e.used
	e.mu.Unlock()
	return st
}

// lookup returns the snapshot stored under k, refreshing its LRU position.
func (e *Engine) lookup(k key) *snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.byKey[k]
	if !ok {
		return nil
	}
	e.lru.MoveToFront(el)
	return el.Value.(*snapshot)
}

// shouldRecord reports whether a snapshot is worth recording at prefix key
// k, and marks k as requested. Only the second touch of a key records: a
// ddmin candidate's prefixes beyond its removal point are unique to that
// candidate and caching them wastes a context clone each, while the
// surviving keep-set's prefixes recur in every subsequent candidate and pay
// for their snapshot almost immediately. The seen set stores bare keys (no
// contexts); it is reset wholesale if it ever grows pathological.
func (e *Engine) shouldRecord(k key) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.byKey[k]; ok {
		return false
	}
	if _, ok := e.seen[k]; ok {
		return true
	}
	if len(e.seen) >= maxSeenKeys {
		clear(e.seen)
	}
	e.seen[k] = struct{}{}
	return false
}

// insert stores snap, evicting least-recently-used snapshots to stay under
// the byte budget. Duplicate keys (two goroutines racing to record the same
// prefix) keep the existing entry.
func (e *Engine) insert(snap *snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.byKey[snap.key]; ok {
		return
	}
	e.byKey[snap.key] = e.lru.PushFront(snap)
	e.used += snap.bytes
	for e.used > e.budget && e.lru.Len() > 1 {
		el := e.lru.Back()
		old := el.Value.(*snapshot)
		e.lru.Remove(el)
		delete(e.byKey, old.key)
		e.used -= old.bytes
		e.evictions.Add(1)
	}
	// A single snapshot larger than the whole budget is not worth keeping.
	if e.used > e.budget {
		el := e.lru.Back()
		old := el.Value.(*snapshot)
		e.lru.Remove(el)
		delete(e.byKey, old.key)
		e.used -= old.bytes
		e.evictions.Add(1)
	}
}

// Session binds an engine to one (original module, inputs, transformation
// sequence) triple — one reduction. The sequence is copied, so Commit never
// mutates the caller's slice. Replay and ReplayOverride are safe for
// concurrent use; Commit must not race with them (the reducer commits only
// between ddmin waves / shrink probes, which is exactly that discipline).
type Session struct {
	eng      *Engine
	original *spirv.Module
	inputs   interp.Inputs
	ts       []fuzz.Transformation
	versions []uint32 // bumped by Commit; mixed into prefix keys
	base     key
}

// NewSession opens a replay session. eng may be nil (caching disabled).
func (e *Engine) NewSession(original *spirv.Module, in interp.Inputs, ts []fuzz.Transformation) *Session {
	s := &Session{
		original: original,
		inputs:   in,
		ts:       append([]fuzz.Transformation(nil), ts...),
		versions: make([]uint32, len(ts)),
	}
	if e != nil {
		s.eng = e
		id := e.session.Add(1)
		s.base = key{a: mix64(id), b: mix64(id ^ 0xa5a5a5a5a5a5a5a5)}
	}
	return s
}

// NewSession on a nil engine still yields a working (uncached) session.
func NewSession(original *spirv.Module, in interp.Inputs, ts []fuzz.Transformation) *Session {
	return (*Engine)(nil).NewSession(original, in, ts)
}

// Len returns the sequence length.
func (s *Session) Len() int { return len(s.ts) }

// At returns the transformation currently at slot i (reflecting Commits).
func (s *Session) At(i int) fuzz.Transformation { return s.ts[i] }

// Sequence returns the transformations at the given slots, reflecting
// committed overrides — the minimized sequence a reduction reports.
func (s *Session) Sequence(keep []int) []fuzz.Transformation {
	out := make([]fuzz.Transformation, len(keep))
	for i, k := range keep {
		out[i] = s.ts[k]
	}
	return out
}

// Commit replaces the transformation at slot with t and bumps the slot's
// version, so prefixes that include the slot key differently from now on
// while snapshots below it stay valid. Must not race with Replay.
func (s *Session) Commit(slot int, t fuzz.Transformation) {
	s.ts[slot] = t
	s.versions[slot]++
}

// Replay replays the subsequence of the session's transformations selected
// by keep (sorted indices), resuming from the deepest cached prefix
// snapshot. It returns the resulting context — owned by the caller, never
// shared with the cache — and the indices actually applied, exactly as
// fuzz.ReplaySubsequenceContext would.
func (s *Session) Replay(keep []int) (*fuzz.Context, []int) {
	return s.replay(keep, len(keep), nil)
}

// ReplayOverride is Replay with the transformation at the given slot
// replaced by t for this query only. Cached prefixes are used (and fresh
// snapshots recorded) only below the override's position in keep; the
// override and everything after it are always applied live. A slot absent
// from keep degrades to a plain Replay.
func (s *Session) ReplayOverride(keep []int, slot int, t fuzz.Transformation) (*fuzz.Context, []int) {
	limit := len(keep)
	for i, k := range keep {
		if k == slot {
			limit = i
			break
		}
	}
	override := func(i int) fuzz.Transformation {
		if keep[i] == slot {
			return t
		}
		return s.ts[keep[i]]
	}
	return s.replay(keep, limit, override)
}

// replay is the engine room: resume from the deepest cached prefix of
// keep[:limit], apply the rest (through override when given), recording
// snapshots at geometrically spaced depths <= limit.
func (s *Session) replay(keep []int, limit int, override func(i int) fuzz.Transformation) (*fuzz.Context, []int) {
	e := s.eng
	cached := e.Enabled()
	if cached {
		e.queries.Add(1)
		e.requested.Add(uint64(len(keep)))
	}

	var ctx *fuzz.Context
	var applied []int
	depth := 0
	var keys []key
	if cached {
		// Chain the prefix keys once, then probe from deepest to shallowest.
		keys = make([]key, limit+1)
		keys[0] = s.base
		for i := 0; i < limit; i++ {
			k := keep[i]
			keys[i+1] = keys[i].step(uint64(k)).step(uint64(s.versions[k]))
		}
		for d := limit; d >= 1; d-- {
			if snap := e.lookup(keys[d]); snap != nil {
				ctx = snap.ctx.Clone()
				applied = append(make([]int, 0, len(keep)), snap.applied...)
				depth = d
				break
			}
		}
	}
	if ctx == nil {
		ctx = fuzz.NewContext(s.original.Clone(), s.inputs)
		applied = make([]int, 0, len(keep))
		if cached {
			e.misses.Add(1)
		}
	} else {
		e.hits.Add(1)
		if depth == len(keep) {
			e.fullHits.Add(1)
			return ctx, applied
		}
	}

	// Snapshot recording is capped per query: each snapshot costs a full
	// context clone, and recording every grid depth along a long suffix
	// would make the cache slower than fresh replay. shouldRecord further
	// restricts recording to prefixes that a second query has actually
	// requested; together the two rules keep per-query overhead at most
	// maxRecordsPerQuery clones, all of them spent on reused prefixes.
	// Shallow grid points are recorded first; the next query sharing the
	// prefix hits the new snapshot and records the ones beyond it.
	records := 0
	for i := depth; i < len(keep); i++ {
		t := s.ts[keep[i]]
		if override != nil && i >= limit {
			t = override(i)
		}
		if t.Precondition(ctx) {
			t.Apply(ctx)
			applied = append(applied, keep[i])
		}
		if cached && records < maxRecordsPerQuery && i+1 <= limit &&
			recordAt(i+1, len(keep), limit) && e.shouldRecord(keys[i+1]) {
			records++
			e.insert(&snapshot{
				key:     keys[i+1],
				ctx:     ctx.Clone(),
				applied: append([]int(nil), applied...),
				bytes:   contextBytes(ctx),
			})
		}
	}
	if cached {
		e.applied.Add(uint64(len(keep) - depth))
	}
	return ctx, applied
}

// recordAt reports whether a snapshot should be recorded at the given prefix
// depth: always at the full (or override-bounded) depth, else at depths that
// are multiples of a grain growing geometrically with depth, giving
// O(2^snapGrainShift · log n) snapshots per distinct prefix chain.
func recordAt(depth, full, limit int) bool {
	if depth == full || depth == limit {
		return true
	}
	grain := 1
	for g := depth >> snapGrainShift; g > 1; g >>= 1 {
		grain <<= 1
	}
	return depth%grain == 0
}

// contextBytes estimates the retained size of a context snapshot: the module
// instruction payload plus inputs and facts. Estimates only steer eviction;
// they need to be cheap and roughly proportional, not exact.
func contextBytes(c *fuzz.Context) int64 {
	n := int64(512)
	c.Mod.ForEachInstruction(func(ins *spirv.Instruction) {
		n += 56 + 4*int64(cap(ins.Operands))
	})
	for _, fn := range c.Mod.Functions {
		n += 128 + 96*int64(len(fn.Blocks))
	}
	for _, v := range c.Inputs.Uniforms {
		n += 48 + 16*int64(len(v.Elems))
	}
	n += int64(c.Facts.ApproxBytes())
	return n
}

// Verify replays keep both through the session and freshly, and reports
// whether the two contexts agree bitwise (module binary encoding, applied
// indices, and inputs). It exists for tests and debugging assertions.
func (s *Session) Verify(keep []int) bool {
	got, gotApplied := s.Replay(keep)
	want := fuzz.NewContext(s.original.Clone(), s.inputs)
	wantApplied := core.ApplySubsequence(want, s.Sequence(keep), seqIdx(keep))
	if len(gotApplied) != len(wantApplied) {
		return false
	}
	for i := range gotApplied {
		if gotApplied[i] != keep[wantApplied[i]] {
			return false
		}
	}
	return string(got.Mod.EncodeBytes()) == string(want.Mod.EncodeBytes())
}

// seqIdx returns [0, 1, ..., len(keep)-1]: the keep-set of a re-indexed
// subsequence.
func seqIdx(keep []int) []int {
	out := make([]int, len(keep))
	for i := range out {
		out[i] = i
	}
	return out
}
