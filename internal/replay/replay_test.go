package replay_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/spirv"
)

// sequences fuzzes a few corpus references into transformation sequences the
// tests replay. Built once: generation is the slow part.
var (
	seqOnce sync.Once
	seqs    []seqCase
)

type seqCase struct {
	mod    *spirv.Module
	inputs interp.Inputs
	ts     []fuzz.Transformation
}

func sequences(t *testing.T) []seqCase {
	t.Helper()
	seqOnce.Do(func() {
		donors := corpus.Donors()
		refs := corpus.References()
		for seed := int64(1); seed <= 4; seed++ {
			item := refs[int(seed)%len(refs)]
			res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
				Seed: seed, Donors: donors, EnableRecommendations: true,
				MinPasses: 20, MaxPasses: 30,
			})
			if err != nil {
				continue
			}
			if len(res.Transformations) >= 8 {
				seqs = append(seqs, seqCase{item.Mod, item.Inputs, res.Transformations})
			}
		}
	})
	if len(seqs) == 0 {
		t.Fatal("fuzzing produced no usable sequences")
	}
	return seqs
}

// randomKeep draws a sorted random subset of [0, n).
func randomKeep(rng *rand.Rand, n int) []int {
	var keep []int
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 {
			keep = append(keep, i)
		}
	}
	return keep
}

// mustMatchFresh replays keep through the session and freshly and fails the
// test on any divergence: applied indices, module binary encoding, or inputs.
func mustMatchFresh(t *testing.T, sc seqCase, sess *replay.Session, keep []int) {
	t.Helper()
	got, gotApplied := sess.Replay(keep)
	// The fresh replay uses the session's current transformations so the
	// check also holds after Commit.
	cur := make([]fuzz.Transformation, sess.Len())
	for i := range cur {
		cur[i] = sess.At(i)
	}
	want, wantApplied := fuzz.ReplaySubsequenceContext(sc.mod, sc.inputs, cur, keep)
	if len(gotApplied) != len(wantApplied) {
		t.Fatalf("applied %v, want %v (keep %v)", gotApplied, wantApplied, keep)
	}
	for i := range gotApplied {
		if gotApplied[i] != wantApplied[i] {
			t.Fatalf("applied %v, want %v (keep %v)", gotApplied, wantApplied, keep)
		}
	}
	if !bytes.Equal(got.Mod.EncodeBytes(), want.Mod.EncodeBytes()) {
		t.Fatalf("module diverged for keep %v", keep)
	}
	ge, err1 := interp.EncodeInputs(got.Inputs)
	we, err2 := interp.EncodeInputs(want.Inputs)
	if err1 != nil || err2 != nil || !bytes.Equal(ge, we) {
		t.Fatalf("inputs diverged for keep %v (%v, %v)", keep, err1, err2)
	}
}

// TestReplayMatchesFreshRandomSubsets is the core bitwise-identity property:
// for random transformation sequences and random keep-subsets, prefix-cached
// replay equals fresh ReplaySubsequenceContext exactly, at every budget —
// default, snapshot-thrashing tiny, and disabled.
func TestReplayMatchesFreshRandomSubsets(t *testing.T) {
	budgets := []struct {
		name   string
		budget int64
	}{
		{"default", replay.DefaultBudget},
		{"tiny", 64 << 10},
		{"disabled", 0},
	}
	for _, b := range budgets {
		t.Run(b.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			eng := replay.NewEngine(b.budget)
			for _, sc := range sequences(t) {
				sess := eng.NewSession(sc.mod, sc.inputs, sc.ts)
				for trial := 0; trial < 25; trial++ {
					mustMatchFresh(t, sc, sess, randomKeep(rng, len(sc.ts)))
				}
				// Repeating a keep-set exactly must hit the full-depth
				// snapshot and still agree.
				keep := randomKeep(rng, len(sc.ts))
				mustMatchFresh(t, sc, sess, keep)
				mustMatchFresh(t, sc, sess, keep)
			}
			if b.budget == 0 {
				if st := eng.Stats(); st.Snapshots != 0 {
					t.Fatalf("disabled engine cached %d snapshots", st.Snapshots)
				}
			}
		})
	}
}

// TestReplayConcurrentMatchesFresh hammers one shared session from many
// goroutines (run under -race) and checks every result against a fresh
// replay computed in the same goroutine.
func TestReplayConcurrentMatchesFresh(t *testing.T) {
	sc := sequences(t)[0]
	eng := replay.NewEngine(replay.DefaultBudget)
	sess := eng.NewSession(sc.mod, sc.inputs, sc.ts)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for trial := 0; trial < 15; trial++ {
				keep := randomKeep(rng, len(sc.ts))
				got, _ := sess.Replay(keep)
				want, _ := fuzz.ReplaySubsequenceContext(sc.mod, sc.inputs, sc.ts, keep)
				if !bytes.Equal(got.Mod.EncodeBytes(), want.Mod.EncodeBytes()) {
					errs <- "module diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if st := eng.Stats(); st.Hits == 0 {
		t.Fatal("concurrent replays never hit the cache; test is vacuous")
	}
}

// TestReplayOverrideAndCommit checks the shrink-probe path: overriding one
// slot for a query equals a fresh replay of the modified sequence, the
// override does not leak into subsequent plain replays, and Commit makes it
// permanent while older prefix snapshots stay valid.
func TestReplayOverrideAndCommit(t *testing.T) {
	sc := sequences(t)[0]
	eng := replay.NewEngine(replay.DefaultBudget)
	sess := eng.NewSession(sc.mod, sc.inputs, sc.ts)
	rng := rand.New(rand.NewSource(7))

	keep := make([]int, len(sc.ts))
	for i := range keep {
		keep[i] = i
	}
	// Warm the cache with full and partial replays.
	mustMatchFresh(t, sc, sess, keep)
	mustMatchFresh(t, sc, sess, randomKeep(rng, len(sc.ts)))

	slot := len(sc.ts) / 2
	override := &fuzz.AddConstantBoolean{Fresh: sc.mod.Bound + 7000, Value: true}

	// Probe with the override: equals fresh replay of the modified sequence.
	got, _ := sess.ReplayOverride(keep, slot, override)
	mod := append([]fuzz.Transformation(nil), sc.ts...)
	mod[slot] = override
	want, _ := fuzz.ReplaySubsequenceContext(sc.mod, sc.inputs, mod, keep)
	if !bytes.Equal(got.Mod.EncodeBytes(), want.Mod.EncodeBytes()) {
		t.Fatal("override probe diverged from fresh replay of modified sequence")
	}

	// The probe must not have contaminated the unmodified sequence's cache.
	mustMatchFresh(t, sc, sess, keep)

	// Commit, then plain replays must reflect the new transformation.
	sess.Commit(slot, override)
	got2, _ := sess.Replay(keep)
	if !bytes.Equal(got2.Mod.EncodeBytes(), want.Mod.EncodeBytes()) {
		t.Fatal("post-commit replay does not reflect the committed override")
	}
	mustMatchFresh(t, sc, sess, randomKeep(rng, len(sc.ts)))

	// An override at a slot absent from keep degrades to a plain replay.
	partial := keep[:slot]
	got3, _ := sess.ReplayOverride(partial, len(sc.ts)-1, override)
	want3, _ := sess.Replay(partial)
	if !bytes.Equal(got3.Mod.EncodeBytes(), want3.Mod.EncodeBytes()) {
		t.Fatal("override outside keep changed the result")
	}
}

// TestReplayStatsAndEviction exercises the counters and the byte budget: a
// tiny engine must evict and keep total bytes bounded; hits must accumulate
// on repeated overlapping queries.
func TestReplayStatsAndEviction(t *testing.T) {
	sc := sequences(t)[0]
	eng := replay.NewEngine(96 << 10)
	sess := eng.NewSession(sc.mod, sc.inputs, sc.ts)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		sess.Replay(randomKeep(rng, len(sc.ts)))
	}
	st := eng.Stats()
	if st.Queries != 40 {
		t.Fatalf("queries %d, want 40", st.Queries)
	}
	if st.Hits+st.Misses != st.Queries {
		t.Fatalf("hits %d + misses %d != queries %d", st.Hits, st.Misses, st.Queries)
	}
	if st.Evictions == 0 {
		t.Fatal("tiny budget never evicted; sizing is off")
	}
	if st.Bytes > 2*(96<<10) {
		t.Fatalf("cached bytes %d far exceed budget", st.Bytes)
	}
	if st.Applied > st.Requested {
		t.Fatalf("applied %d > requested %d", st.Applied, st.Requested)
	}
	if st.MeanSuffix() > st.MeanRequested() {
		t.Fatal("mean suffix exceeds mean request size")
	}
}

// TestSessionVerify covers the Verify debugging helper.
func TestSessionVerify(t *testing.T) {
	sc := sequences(t)[0]
	sess := replay.NewEngine(replay.DefaultBudget).NewSession(sc.mod, sc.inputs, sc.ts)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		if !sess.Verify(randomKeep(rng, len(sc.ts))) {
			t.Fatal("Verify reported divergence on an honest session")
		}
	}
}
