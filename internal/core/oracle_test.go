package core_test

import (
	"testing"

	"spirvfuzz/internal/core"
)

func TestOracleVerdicts(t *testing.T) {
	eq := func(a, b int) bool { return a == b }
	ok := core.Execution[int]{Result: 7}
	fault := core.Execution[int]{Faulted: true}
	other := core.Execution[int]{Result: 8}

	cases := []struct {
		name      string
		o, v      core.Execution[int]
		want      core.Verdict
		incorrect bool
	}{
		{"agree", ok, ok, core.VerdictAgree, false},
		{"variant faults", ok, fault, core.VerdictVariantFaulted, true},
		{"mismatch", ok, other, core.VerdictMismatch, true},
		{"original faults", fault, ok, core.VerdictOriginalFaulted, false},
		{"both fault", fault, fault, core.VerdictOriginalFaulted, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := core.Oracle(tc.o, tc.v, eq)
			if got != tc.want {
				t.Fatalf("verdict = %v, want %v", got, tc.want)
			}
			if got.IncorrectByTheorem26() != tc.incorrect {
				t.Fatalf("IncorrectByTheorem26 = %t", !tc.incorrect)
			}
			if got.String() == "?" {
				t.Fatal("missing String case")
			}
		})
	}
}
