package core_test

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"spirvfuzz/internal/core"
)

// counter is a trivial context: a slice of applied labels.
type counter struct{ applied []string }

// labelT appends its label when its guard passes.
type labelT struct {
	label string
	guard func(*counter) bool
}

func (t labelT) Type() string { return t.label }
func (t labelT) Precondition(c *counter) bool {
	if t.guard == nil {
		return true
	}
	return t.guard(c)
}
func (t labelT) Apply(c *counter) { c.applied = append(c.applied, t.label) }

func always(label string) core.Transformation[*counter] { return labelT{label: label} }

// after returns a transformation applicable only once dep has been applied,
// modelling a precondition that depends on an earlier transformation.
func after(label, dep string) core.Transformation[*counter] {
	return labelT{label: label, guard: func(c *counter) bool {
		for _, l := range c.applied {
			if l == dep {
				return true
			}
		}
		return false
	}}
}

func TestApplySequenceAppliesAll(t *testing.T) {
	c := &counter{}
	ts := []core.Transformation[*counter]{always("a"), always("b"), always("c")}
	applied := core.ApplySequence(c, ts)
	if !reflect.DeepEqual(applied, []int{0, 1, 2}) {
		t.Fatalf("applied = %v, want [0 1 2]", applied)
	}
	if !reflect.DeepEqual(c.applied, []string{"a", "b", "c"}) {
		t.Fatalf("labels = %v", c.applied)
	}
}

func TestApplySequenceSkipsFailedPreconditions(t *testing.T) {
	// Definition 2.5: transformations whose preconditions fail are skipped,
	// not errors. "b after z" can never fire since z never appears.
	c := &counter{}
	ts := []core.Transformation[*counter]{always("a"), after("b", "z"), after("d", "a")}
	applied := core.ApplySequence(c, ts)
	if !reflect.DeepEqual(applied, []int{0, 2}) {
		t.Fatalf("applied = %v, want [0 2]", applied)
	}
}

func TestApplySubsequenceRespectsDependencies(t *testing.T) {
	// The Section 2.1 reducer example: applying the subsequence T1,T3,T4,T5
	// leads to only T1 and T4 being applied when T3 and T5 depend on T2.
	ts := []core.Transformation[*counter]{
		always("T1"),
		after("T2", "T1"),
		after("T3", "T2"),
		after("T4", "T1"),
		after("T5", "T2"),
	}
	c := &counter{}
	applied := core.ApplySubsequence(c, ts, []int{0, 2, 3, 4})
	if !reflect.DeepEqual(applied, []int{0, 3}) {
		t.Fatalf("applied = %v, want [0 3]", applied)
	}
}

func TestCheckedApply(t *testing.T) {
	c := &counter{}
	if err := core.CheckedApply(c, always("a")); err != nil {
		t.Fatalf("CheckedApply(always) = %v", err)
	}
	if err := core.CheckedApply(c, after("b", "zzz")); err == nil {
		t.Fatal("CheckedApply on failed precondition: want error, got nil")
	}
}

func TestTypeSet(t *testing.T) {
	ts := []core.Transformation[*counter]{always("a"), always("b"), always("a"), always("c")}
	got := core.TypeSet(ts, map[string]bool{"c": true})
	want := map[string]bool{"a": true, "b": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TypeSet = %v, want %v", got, want)
	}
}

func TestReduceFindsMinimalSubset(t *testing.T) {
	// Bug triggers iff indices 3, 82 and 105 are all present (the Figure 2
	// example). Reduce must return exactly those.
	needed := []int{3, 82, 105}
	test := func(keep []int) bool {
		found := 0
		for _, k := range keep {
			for _, n := range needed {
				if k == n {
					found++
				}
			}
		}
		return found == len(needed)
	}
	got, stats := core.Reduce(120, test)
	if !reflect.DeepEqual(got, needed) {
		t.Fatalf("Reduce = %v, want %v", got, needed)
	}
	if stats.Initial != 120 || stats.Final != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Queries == 0 {
		t.Fatal("stats.Queries = 0")
	}
}

func TestReduceEmptyAndSingleton(t *testing.T) {
	got, _ := core.Reduce(0, func(keep []int) bool { return true })
	if len(got) != 0 {
		t.Fatalf("Reduce(0) = %v", got)
	}
	// A single necessary transformation is kept.
	got, _ = core.Reduce(1, func(keep []int) bool { return len(keep) == 1 })
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Reduce(1) = %v", got)
	}
	// A single unnecessary transformation is removed.
	got, _ = core.Reduce(1, func(keep []int) bool { return true })
	if len(got) != 0 {
		t.Fatalf("Reduce(1, always) = %v", got)
	}
}

func TestReducePanicsOnUninterestingInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	core.Reduce(4, func(keep []int) bool { return false })
}

func TestReduceOneMinimalProperty(t *testing.T) {
	// Property: for a monotone interestingness test (a random required
	// subset), the result equals the required subset and is 1-minimal.
	prop := func(seed uint32, size uint8) bool {
		n := int(size%50) + 1
		req := map[int]bool{}
		s := seed
		for i := 0; i < n; i++ {
			s = s*1664525 + 1013904223
			if s%4 == 0 {
				req[i] = true
			}
		}
		test := func(keep []int) bool {
			have := map[int]bool{}
			for _, k := range keep {
				have[k] = true
			}
			for r := range req {
				if !have[r] {
					return false
				}
			}
			return true
		}
		got, _ := core.Reduce(n, test)
		if len(got) != len(req) {
			return false
		}
		for _, g := range got {
			if !req[g] {
				return false
			}
		}
		// 1-minimality: removing any single kept index breaks the test.
		for i := range got {
			cand := append(append([]int{}, got[:i]...), got[i+1:]...)
			if test(cand) {
				return false
			}
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceNonMonotone(t *testing.T) {
	// A non-monotone test (parity) must still terminate with a 1-minimal
	// result, even though it is not globally minimal.
	test := func(keep []int) bool { return len(keep)%2 == 1 }
	got, _ := core.Reduce(7, test)
	if len(got)%2 != 1 {
		t.Fatalf("result %v does not satisfy the test", got)
	}
	for i := range got {
		cand := append(append([]int{}, got[:i]...), got[i+1:]...)
		if test(cand) {
			t.Fatalf("result %v is not 1-minimal: removing %d still passes", got, got[i])
		}
	}
}
