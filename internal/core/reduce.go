package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// Interestingness reports whether the subsequence of an implicit
// transformation sequence selected by keep (sorted indices into the original
// sequence) still triggers the bug under investigation. Implementations
// replay the subsequence from the original context per Definition 2.5 and
// re-run the interestingness test of Section 3.4 (crash-signature match or
// image mismatch).
type Interestingness func(keep []int) bool

// ReduceStats records the work performed by a reduction.
type ReduceStats struct {
	// Queries is the serial-equivalent number of interestingness-test
	// invocations: the candidates a serial scan would have evaluated. It is
	// deterministic for a given (n, test) at every worker count, which lets
	// reports embed it and still hash identically across runs and nodes.
	Queries int
	// Speculative counts extra queries the parallel scan actually issued past
	// a committed removal before noticing it was superseded. Scheduling-
	// dependent; kept out of Queries so Queries stays deterministic.
	Speculative int
	// Initial and Final are the sequence lengths before and after reduction.
	Initial int
	Final   int
}

// Reduce runs the delta-debugging loop of Section 3.4 over a transformation
// sequence of length n, returning a 1-minimal list of kept indices: removing
// any single remaining transformation makes the interestingness test fail.
//
// The algorithm maintains a chunk size c initialised to ⌊n/2⌋. The sequence
// is divided into chunks of size c starting from the last transformation and
// working backwards (so the chunk at the start is smaller than c when c does
// not divide the length). Each chunk is considered in turn and removed if the
// test still passes without it. When no chunk of size c can be removed, c is
// halved; reduction terminates when no chunk of size 1 can be removed.
//
// test must hold for the full sequence; Reduce panics otherwise since a
// reduction of an uninteresting sequence indicates a harness bug.
func Reduce(n int, test Interestingness) ([]int, ReduceStats) {
	return ReduceParallel(n, test, 1)
}

// ReduceParallel is Reduce with speculative chunk evaluation: within one
// backwards scan, up to workers candidate chunks are tested concurrently,
// and the successful removal earliest in scan order is committed. Later
// speculative results were computed against a sequence that the commit just
// changed, so they are discarded and the scan resumes exactly where serial
// Reduce would — the kept indices are therefore bitwise-identical to serial
// Reduce for every worker count. test must be safe for concurrent calls when
// workers > 1. At most workers-1 extra queries are spent per committed
// removal; a speculative candidate whose wave already holds a success earlier
// in scan order is skipped without a query, since its result would be
// discarded either way.
func ReduceParallel(n int, test Interestingness, workers int) ([]int, ReduceStats) {
	keep, stats, _ := ReduceParallelCtx(context.Background(), n, test, workers)
	return keep, stats
}

// ReduceParallelCtx is ReduceParallel with cancellation: once ctx is done,
// no further interestingness query is issued — speculative wave goroutines
// that have not started skip their query — and the reduction returns the
// keep-set as reduced so far together with ctx.Err(). A partial keep-set is
// still a valid (merely non-minimal) interesting sequence, so callers may
// either discard it or report it as a best-effort reduction. With a
// never-canceled ctx the result is bitwise-identical to ReduceParallel.
func ReduceParallelCtx(ctx context.Context, n int, test Interestingness, workers int) ([]int, ReduceStats, error) {
	if workers < 1 {
		workers = 1
	}
	stats := ReduceStats{Initial: n}
	keep := make([]int, n)
	for i := range keep {
		keep[i] = i
	}
	if n == 0 {
		return keep, stats, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		stats.Final = len(keep)
		return keep, stats, err
	}
	stats.Queries++
	if !test(keep) {
		panic("core: Reduce invoked on a sequence that does not pass the interestingness test")
	}
	first := n / 2
	if first < 1 {
		first = 1
	}
	for c := first; c >= 1; c /= 2 {
		for removedAny := true; removedAny; {
			removedAny = false
			// Chunks are laid out backwards from the end of the current
			// sequence; the leading chunk may be short. end is the exclusive
			// upper bound of the next chunk to consider, in the coordinates
			// of the current keep slice.
			for end := len(keep); end > 0; {
				if err := ctx.Err(); err != nil {
					stats.Final = len(keep)
					return keep, stats, err
				}
				ends := waveEnds(end, c, workers)
				cands := make([][]int, len(ends))
				okay := make([]bool, len(ends))
				issued := runWave(ctx, keep, ends, c, test, cands, okay)
				committed := -1
				for i, ok := range okay {
					if ok {
						committed = i
						break
					}
				}
				// Queries counts the serial-equivalent wave cost: candidates
				// up to and including the committed success are always fully
				// evaluated (a skip requires a strictly earlier success), so
				// this count is deterministic at every worker count and equal
				// to what serial Reduce would have spent. Queries issued past
				// the commit depend on goroutine scheduling — a later
				// candidate may or may not observe the success in time to
				// skip — so they are tracked separately as Speculative and
				// must never leak into results that are compared bitwise
				// across runs or nodes.
				det := len(ends)
				if committed >= 0 {
					det = committed + 1
				}
				stats.Queries += det
				if issued > det {
					stats.Speculative += issued - det
				}
				if committed >= 0 {
					// Speculative results past the commit were computed
					// against a sequence the commit just changed; their
					// outcomes are discarded (their queries still count).
					keep = cands[committed]
					removedAny = true
					// Resume scanning below the removed chunk: indices before
					// its start are unchanged in the new keep.
					end = chunkStart(ends[committed], c)
				} else {
					end = chunkStart(ends[len(ends)-1], c)
				}
			}
		}
	}
	stats.Final = len(keep)
	return keep, stats, ctx.Err()
}

// waveEnds lists the exclusive upper bounds of the next chunks in scan order
// (decreasing), at most workers of them.
func waveEnds(end, c, workers int) []int {
	ends := make([]int, 0, workers)
	for e := end; e > 0 && len(ends) < workers; e = chunkStart(e, c) {
		ends = append(ends, e)
	}
	return ends
}

// chunkStart is the inclusive lower bound of the chunk ending at end.
func chunkStart(end, c int) int {
	if end < c {
		return 0
	}
	return end - c
}

// runWave evaluates the candidate for each chunk bound concurrently (serially
// when there is only one) and returns the number of queries issued.
//
// The committed removal is the success earliest in scan order, so once some
// position succeeds, every candidate later in the wave is doomed to be
// discarded; goroutines that have not started their query yet observe this
// and skip it. Positions before the eventual commit are never skipped — a
// skip requires a strictly earlier success, and the commit is the earliest —
// so the candidates that decide the outcome are always fully evaluated,
// exactly as in serial Reduce. A done ctx likewise skips queries that have
// not started (the caller returns ctx.Err() right after the wave).
func runWave(ctx context.Context, keep []int, ends []int, c int, test Interestingness, cands [][]int, okay []bool) int {
	eval := func(i int) {
		end := ends[i]
		start := chunkStart(end, c)
		candidate := make([]int, 0, len(keep)-(end-start))
		candidate = append(candidate, keep[:start]...)
		candidate = append(candidate, keep[end:]...)
		cands[i] = candidate
		okay[i] = test(candidate)
	}
	if len(ends) == 1 {
		if ctx.Err() != nil {
			return 0
		}
		eval(0)
		return 1
	}
	var wg sync.WaitGroup
	var queries atomic.Int64
	var firstOK atomic.Int64 // lowest successful wave position so far
	firstOK.Store(int64(len(ends)))
	for i := range ends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if firstOK.Load() < int64(i) {
				return // superseded: an earlier candidate already succeeded
			}
			if ctx.Err() != nil {
				return // canceled before the query started
			}
			queries.Add(1)
			eval(i)
			if okay[i] {
				for {
					cur := firstOK.Load()
					if int64(i) >= cur || firstOK.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	return int(queries.Load())
}
