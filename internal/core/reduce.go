package core

// Interestingness reports whether the subsequence of an implicit
// transformation sequence selected by keep (sorted indices into the original
// sequence) still triggers the bug under investigation. Implementations
// replay the subsequence from the original context per Definition 2.5 and
// re-run the interestingness test of Section 3.4 (crash-signature match or
// image mismatch).
type Interestingness func(keep []int) bool

// ReduceStats records the work performed by a reduction.
type ReduceStats struct {
	// Queries is the number of interestingness-test invocations.
	Queries int
	// Initial and Final are the sequence lengths before and after reduction.
	Initial int
	Final   int
}

// Reduce runs the delta-debugging loop of Section 3.4 over a transformation
// sequence of length n, returning a 1-minimal list of kept indices: removing
// any single remaining transformation makes the interestingness test fail.
//
// The algorithm maintains a chunk size c initialised to ⌊n/2⌋. The sequence
// is divided into chunks of size c starting from the last transformation and
// working backwards (so the chunk at the start is smaller than c when c does
// not divide the length). Each chunk is considered in turn and removed if the
// test still passes without it. When no chunk of size c can be removed, c is
// halved; reduction terminates when no chunk of size 1 can be removed.
//
// test must hold for the full sequence; Reduce panics otherwise since a
// reduction of an uninteresting sequence indicates a harness bug.
func Reduce(n int, test Interestingness) ([]int, ReduceStats) {
	stats := ReduceStats{Initial: n}
	keep := make([]int, n)
	for i := range keep {
		keep[i] = i
	}
	if n == 0 {
		return keep, stats
	}
	stats.Queries++
	if !test(keep) {
		panic("core: Reduce invoked on a sequence that does not pass the interestingness test")
	}
	first := n / 2
	if first < 1 {
		first = 1
	}
	for c := first; c >= 1; c /= 2 {
		for removedAny := true; removedAny; {
			removedAny = false
			// Chunks are laid out backwards from the end of the current
			// sequence; the leading chunk may be short.
			for end := len(keep); end > 0; end -= c {
				start := end - c
				if start < 0 {
					start = 0
				}
				candidate := make([]int, 0, len(keep)-(end-start))
				candidate = append(candidate, keep[:start]...)
				candidate = append(candidate, keep[end:]...)
				stats.Queries++
				if test(candidate) {
					keep = candidate
					removedAny = true
					// Continue scanning from where the removed chunk began.
					end = start + c
				}
			}
		}
	}
	stats.Final = len(keep)
	return keep, stats
}
