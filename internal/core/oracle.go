package core

// This file states Theorem 2.6 as an executable oracle: if applying a
// transformation sequence to a well-defined (program, input) pair yields a
// pair on which an implementation faults or disagrees with its own result
// for the original pair, the implementation is incorrect.

// Verdict is the outcome of an oracle comparison.
type Verdict int

// Verdicts.
const (
	// VerdictAgree: no evidence of incorrectness.
	VerdictAgree Verdict = iota
	// VerdictVariantFaulted: the implementation faulted on the variant but
	// not the original — incorrect by Theorem 2.6.
	VerdictVariantFaulted
	// VerdictMismatch: both executions succeeded with different results —
	// incorrect by Theorem 2.6.
	VerdictMismatch
	// VerdictOriginalFaulted: the implementation faulted on the original
	// pair, so the precondition of Theorem 2.6 (the original is handled) is
	// not established; no conclusion is drawn and the test is discarded.
	VerdictOriginalFaulted
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAgree:
		return "agree"
	case VerdictVariantFaulted:
		return "variant-faulted"
	case VerdictMismatch:
		return "mismatch"
	case VerdictOriginalFaulted:
		return "original-faulted"
	}
	return "?"
}

// IncorrectByTheorem26 reports whether the verdict proves the implementation
// incorrect.
func (v Verdict) IncorrectByTheorem26() bool {
	return v == VerdictVariantFaulted || v == VerdictMismatch
}

// Execution is one run of an implementation on a (program, input) pair:
// either a fault (Faulted true, Result ignored) or a comparable result.
type Execution[R any] struct {
	Faulted bool
	Result  R
}

// Oracle applies Theorem 2.6 to the executions of an original pair and a
// transformed variant pair, using equal to compare results.
func Oracle[R any](original, variant Execution[R], equal func(a, b R) bool) Verdict {
	if original.Faulted {
		return VerdictOriginalFaulted
	}
	if variant.Faulted {
		return VerdictVariantFaulted
	}
	if !equal(original.Result, variant.Result) {
		return VerdictMismatch
	}
	return VerdictAgree
}
