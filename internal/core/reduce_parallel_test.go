package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// contains reports whether sorted keep contains all of want.
func containsAll(keep, want []int) bool {
	set := map[int]bool{}
	for _, k := range keep {
		set[k] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

// TestReduceExactQueryCounts pins the chunk-scan query schedule on crafted
// interestingness functions, guarding the rescan restructure: a successful
// removal must resume the backwards scan directly below the removed chunk,
// neither re-testing the removed region nor skipping the chunk before it.
func TestReduceExactQueryCounts(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		keep    []int // test passes iff candidate contains all of these
		queries int
		final   int
	}{
		// Everything removable, n=4, want={}: initial(1). c=2 removes [2,4)
		// (2) and, resuming directly below the removed chunk, [0,2) (3);
		// keep is empty so the rescan and the c=1 pass issue no queries.
		{"all-removable", 4, nil, 3, 0},
		// Nothing removable: initial(1). c=2: [2,4) and [0,2) fail (3).
		// c=1: four singletons fail (7); no removal, so no rescans.
		{"none-removable", 4, []int{0, 1, 2, 3}, 7, 4},
		// Single needed element at the front, n=4, want={0}:
		// initial(1). c=2: [2,4) passes (2), scan resumes below the removed
		// chunk, [0,2) fails (3); rescan fails (4). c=1 on {0,1}: [1,2)
		// passes (5), [0,1) fails (6); rescan fails (7). final {0}.
		{"front-singleton", 4, []int{0}, 7, 1},
		// want={3}: initial(1). c=2: [2,4) fails (2), [0,2) passes (3);
		// rescan on {2,3} fails (4). c=1: [1,2)={2} fails (5), [0,1)
		// passes (6); rescan fails (7). final {3}.
		{"back-singleton", 4, []int{3}, 7, 1},
		// Odd length with a short leading chunk: n=5, c starts at 2, leading
		// chunk is [0,1).
		{"odd-none-removable", 5, []int{0, 1, 2, 3, 4}, 9, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			queries := 0
			test := func(keep []int) bool {
				queries++
				return containsAll(keep, tc.keep)
			}
			kept, st := Reduce(tc.n, test)
			if len(kept) != tc.final {
				t.Errorf("final length %d, want %d (kept %v)", len(kept), tc.final, kept)
			}
			if st.Queries != queries {
				t.Errorf("stats.Queries=%d but test ran %d times", st.Queries, queries)
			}
			if queries != tc.queries {
				t.Errorf("queries=%d, want %d", queries, tc.queries)
			}
			if !containsAll(kept, tc.keep) {
				t.Errorf("kept %v lost required %v", kept, tc.keep)
			}
		})
	}
}

// TestReduceRescanReachesOneMinimality reduces against randomized required
// subsets and checks the fixed-point property directly: removing any single
// kept element breaks the test.
func TestReduceRescanReachesOneMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(24)
		var want []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				want = append(want, i)
			}
		}
		test := func(keep []int) bool { return containsAll(keep, want) }
		kept, st := Reduce(n, test)
		if !reflect.DeepEqual(kept, append([]int{}, want...)) && len(kept) != len(want) {
			t.Fatalf("n=%d want %v got %v", n, want, kept)
		}
		for drop := range kept {
			cand := append(append([]int{}, kept[:drop]...), kept[drop+1:]...)
			if test(cand) {
				t.Fatalf("n=%d: not 1-minimal, index %d removable from %v", n, kept[drop], kept)
			}
		}
		if st.Initial != n || st.Final != len(kept) {
			t.Fatalf("stats mismatch: %+v vs n=%d kept=%d", st, n, len(kept))
		}
	}
}

// TestReduceParallelMatchesSerial is the determinism guarantee of the
// speculative mode: for every worker count the kept indices are
// bitwise-identical to serial Reduce, including on non-monotone tests where
// speculative evaluation observes states serial reduction never visits.
func TestReduceParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tests := []func(n int) Interestingness{
		// Random required subset (monotone).
		func(n int) Interestingness {
			var want []int
			for i := 0; i < n; i++ {
				if rng.Intn(4) == 0 {
					want = append(want, i)
				}
			}
			return func(keep []int) bool { return containsAll(keep, want) }
		},
		// Non-monotone: passes when the kept sum is even and element 0
		// present (supersets of a passing set can fail).
		func(n int) Interestingness {
			return func(keep []int) bool {
				if len(keep) == 0 || keep[0] != 0 {
					return false
				}
				sum := 0
				for _, k := range keep {
					sum += k
				}
				return sum%2 == 0
			}
		},
		// Size-threshold with parity: keeps an awkward plateau shape.
		func(n int) Interestingness {
			return func(keep []int) bool { return len(keep)%3 != 1 || len(keep) >= n-1 }
		},
	}
	for ti, mk := range tests {
		for _, n := range []int{1, 2, 5, 13, 24, 40} {
			test := mk(n)
			if !test(initial(n)) {
				continue
			}
			serialKept, _ := Reduce(n, test)
			for _, workers := range []int{1, 4, 16} {
				var mu sync.Mutex // the crafted tests share no state, but be explicit
				concTest := func(keep []int) bool {
					mu.Lock()
					defer mu.Unlock()
					return test(keep)
				}
				kept, st := ReduceParallel(n, concTest, workers)
				if !reflect.DeepEqual(kept, serialKept) {
					t.Fatalf("test %d n=%d workers=%d: kept %v, serial %v", ti, n, workers, kept, serialKept)
				}
				if st.Final != len(kept) || st.Initial != n {
					t.Fatalf("stats mismatch %+v", st)
				}
			}
		}
	}
}

// TestReduceParallelQueryOverhead pins the reported-count determinism and
// bounds the speculative waste: Queries is exactly the serial count at every
// worker count (reports embed it, so it must not depend on scheduling), and
// the scheduling-dependent extras land in Speculative, at most workers-1 per
// committed removal.
func TestReduceParallelQueryOverhead(t *testing.T) {
	n := 32
	want := []int{3, 17}
	test := func(keep []int) bool { return containsAll(keep, want) }
	_, serial := Reduce(n, test)
	if serial.Speculative != 0 {
		t.Fatalf("serial reduction reported %d speculative queries", serial.Speculative)
	}
	for _, workers := range []int{4, 16} {
		kept, par := ReduceParallel(n, test, workers)
		if len(kept) != len(want) {
			t.Fatalf("workers=%d kept %v", workers, kept)
		}
		if par.Queries != serial.Queries {
			t.Fatalf("workers=%d: parallel reported %d queries, serial %d — report hashes would diverge",
				workers, par.Queries, serial.Queries)
		}
		removals := n - len(want) // upper bound on committed removals
		if par.Speculative > removals*(workers-1) {
			t.Fatalf("workers=%d: %d speculative queries exceeds bound %d",
				workers, par.Speculative, removals*(workers-1))
		}
	}
}

func initial(n int) []int {
	keep := make([]int, n)
	for i := range keep {
		keep[i] = i
	}
	return keep
}

// TestReduceParallelCtxCancellation: a canceled context stops the reduction
// between waves, the returned keep-set is still interesting (best-effort,
// not 1-minimal), and a background context reproduces ReduceParallel
// bitwise.
func TestReduceParallelCtxCancellation(t *testing.T) {
	needed := []int{2, 17, 40, 77}
	test := func(keep []int) bool { return containsAll(keep, needed) }

	// Uncanceled: identical to the ctx-less API.
	want, wantSt := ReduceParallel(100, test, 3)
	got, gotSt, err := ReduceParallelCtx(context.Background(), 100, test, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Query counts are timing-dependent with workers > 1 (speculative skip
	// races); the kept indices are the determinism contract.
	if !reflect.DeepEqual(want, got) || gotSt.Final != wantSt.Final {
		t.Fatalf("ctx variant diverged: %v vs %v", got, want)
	}

	// Cancel after a fixed query budget: the reduction must stop issuing
	// queries almost immediately and return a still-interesting keep-set.
	ctx, cancel := context.WithCancel(context.Background())
	var queries atomic.Int64
	budget := int64(wantSt.Queries / 3)
	kept, st, err := ReduceParallelCtx(ctx, 100, func(keep []int) bool {
		if queries.Add(1) == budget {
			cancel()
		}
		return containsAll(keep, needed)
	}, 3)
	if err == nil {
		t.Fatal("cancellation not reported")
	}
	if !containsAll(kept, needed) {
		t.Fatalf("best-effort keep-set %v lost needed indices", kept)
	}
	// At most one in-flight wave (workers queries) may land after cancel.
	if int64(st.Queries) > budget+3 {
		t.Fatalf("%d queries issued for a budget of %d", st.Queries, budget)
	}

	// Canceled before the start: full keep-set, error, no queries.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	kept, st, err = ReduceParallelCtx(pre, 10, func(keep []int) bool { return true }, 2)
	if err == nil || len(kept) != 10 || st.Queries != 0 {
		t.Fatalf("pre-canceled: kept=%v queries=%d err=%v", kept, st.Queries, err)
	}
}
