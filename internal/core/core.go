// Package core implements the language-agnostic formulation of
// transformation-based compiler testing from "Test-Case Reduction and
// Deduplication Almost for Free with Transformation-Based Compiler Testing"
// (PLDI 2021), Section 2.2.
//
// A transformation context (Definition 2.3) bundles a program, an input for
// which the program is well-defined, and a set of facts about the pair. A
// transformation (Definition 2.4) has a type identifier, a precondition over
// contexts, and an effect that — when the precondition holds — yields an
// equivalent context. Sequences of transformations are applied with Apply
// (Definition 2.5), silently skipping transformations whose preconditions
// fail; this skip rule is what lets delta debugging explore arbitrary
// subsequences during reduction.
//
// The package is generic over the context type C so that it can be
// instantiated both by the didactic "basic blocks" language of Section 2.1
// (package bblang) and by the SPIR-V subset (package fuzz).
package core

import "fmt"

// Transformation is a semantics-preserving rewrite of a context
// (Definition 2.4). Implementations must guarantee that whenever
// Precondition(c) holds, Apply(c) mutates c into a context whose program
// computes the same result on its input, and that Apply is never invoked on
// a context for which Precondition is false.
type Transformation[C any] interface {
	// Type identifies the transformation's template. It is the unit of
	// comparison for the deduplication heuristic (Figure 6).
	Type() string
	// Precondition reports whether the transformation can be applied to c.
	Precondition(c C) bool
	// Apply performs the transformation's effect on c. It must only be
	// called when Precondition(c) holds.
	Apply(c C)
}

// ApplySequence applies ts to c in order per Definition 2.5: each
// transformation whose precondition holds is applied, the rest are skipped.
// It returns the indices (into ts) of the transformations that were applied.
func ApplySequence[C any](c C, ts []Transformation[C]) []int {
	applied := make([]int, 0, len(ts))
	for i, t := range ts {
		if t.Precondition(c) {
			t.Apply(c)
			applied = append(applied, i)
		}
	}
	return applied
}

// ApplySubsequence applies the transformations of ts selected by keep (a
// sorted list of indices into ts), again skipping failed preconditions.
// It returns the indices of ts that were actually applied.
func ApplySubsequence[C any](c C, ts []Transformation[C], keep []int) []int {
	applied := make([]int, 0, len(keep))
	for _, i := range keep {
		if ts[i].Precondition(c) {
			ts[i].Apply(c)
			applied = append(applied, i)
		}
	}
	return applied
}

// CheckedApply applies t to c, first verifying the precondition. It returns
// an error naming the transformation type if the precondition fails. This is
// the entry point fuzzer passes should use, so that a pass that constructs an
// inapplicable transformation is caught immediately rather than producing a
// silently wrong variant.
func CheckedApply[C any](c C, t Transformation[C]) error {
	if !t.Precondition(c) {
		return fmt.Errorf("core: precondition of %s does not hold", t.Type())
	}
	t.Apply(c)
	return nil
}

// TypeSet returns the duplicate-free set of transformation types appearing
// in ts, excluding any type present in ignore. This is types(t) in Figure 6,
// refined per Section 3.5 to ignore supporting transformations.
func TypeSet[C any](ts []Transformation[C], ignore map[string]bool) map[string]bool {
	set := make(map[string]bool)
	for _, t := range ts {
		if !ignore[t.Type()] {
			set[t.Type()] = true
		}
	}
	return set
}
