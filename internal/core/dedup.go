package core

import "sort"

// ReducedTest is a reduced test case as consumed by the deduplication
// algorithm of Figure 6: all that matters is the set of transformation types
// in its minimized sequence, and an identifier for reporting.
type ReducedTest struct {
	// Name identifies the test case (e.g. a file path or seed).
	Name string
	// Types is the duplicate-free set of transformation types appearing in
	// the test's minimized transformation sequence, after removing any types
	// on the deduplicator's ignore list (Section 3.5).
	Types map[string]bool
}

// Deduplicate implements the algorithm of Figure 6. It returns a subset of
// tests — the recommended bug reports — such that no two selected tests share
// a transformation type. The hypothesis (Section 2.1) is that tests built
// from disjoint transformation types have a good chance of triggering bugs
// with distinct root causes.
//
// The loop considers candidate tests in order of increasing type-set size i:
// whenever a test with exactly i types exists it is selected, and every test
// sharing a type with it (including itself) is discarded. Tests whose type
// set is empty after ignoring supporting types can never be selected nor
// discarded by the paper's loop; they are dropped up front, mirroring the
// accompanying spirv-fuzz script.
//
// Selection is deterministic: among tests of size i, the one earliest in the
// input order is taken.
func Deduplicate(tests []ReducedTest) []ReducedTest {
	pending := make([]ReducedTest, 0, len(tests))
	for _, t := range tests {
		if len(t.Types) > 0 {
			pending = append(pending, t)
		}
	}
	var toInvestigate []ReducedTest
	maxSize := 0
	for _, t := range pending {
		if len(t.Types) > maxSize {
			maxSize = len(t.Types)
		}
	}
	for i := 1; i <= maxSize && len(pending) > 0; {
		idx := -1
		for j, t := range pending {
			if len(t.Types) == i {
				idx = j
				break
			}
		}
		if idx < 0 {
			i++
			continue
		}
		chosen := pending[idx]
		toInvestigate = append(toInvestigate, chosen)
		next := pending[:0]
		for _, t := range pending {
			if !intersects(chosen.Types, t.Types) {
				next = append(next, t)
			}
		}
		pending = next
		// Discarding tests may remove every remaining test of size i, but
		// smaller sizes can never (re)appear, so i is left unchanged and the
		// next iteration re-scans at the current size, exactly as in Figure 6.
	}
	return toInvestigate
}

func intersects(a, b map[string]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// SortedTypes returns the elements of a type set in lexicographic order, for
// stable display in reports and tests.
func SortedTypes(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
