package core_test

import (
	"testing"
	"testing/quick"

	"spirvfuzz/internal/core"
)

func types(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestDeduplicateSectionTwoExample(t *testing.T) {
	// The Section 2.1 scenario: set A uses {SplitBlock, AddDeadBlock,
	// ChangeRHS}, set B uses {AddStore, AddLoad}, and the rest use at least
	// four of the five types. Exactly one report from A and one from B should
	// be recommended, and nothing else (every remaining test shares a type
	// with one of the two).
	var tests []core.ReducedTest
	for i := 0; i < 35; i++ {
		tests = append(tests, core.ReducedTest{Name: "A", Types: types("SplitBlock", "AddDeadBlock", "ChangeRHS")})
	}
	for i := 0; i < 42; i++ {
		tests = append(tests, core.ReducedTest{Name: "B", Types: types("AddStore", "AddLoad")})
	}
	for i := 0; i < 23; i++ {
		tests = append(tests, core.ReducedTest{Name: "C", Types: types("SplitBlock", "AddDeadBlock", "ChangeRHS", "AddLoad")})
	}
	got := core.Deduplicate(tests)
	if len(got) != 2 {
		t.Fatalf("Deduplicate returned %d reports, want 2: %v", len(got), got)
	}
	if got[0].Name != "B" || got[1].Name != "A" {
		// B has the smaller type set (2 < 3) so it is selected first.
		t.Fatalf("reports = %s, %s; want B then A", got[0].Name, got[1].Name)
	}
}

func TestDeduplicateEmptyTypeSetsDropped(t *testing.T) {
	tests := []core.ReducedTest{
		{Name: "empty", Types: types()},
		{Name: "x", Types: types("T")},
	}
	got := core.Deduplicate(tests)
	if len(got) != 1 || got[0].Name != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestDeduplicateNoTests(t *testing.T) {
	if got := core.Deduplicate(nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestDeduplicateDisjointAllKept(t *testing.T) {
	tests := []core.ReducedTest{
		{Name: "a", Types: types("T1")},
		{Name: "b", Types: types("T2")},
		{Name: "c", Types: types("T3", "T4")},
	}
	got := core.Deduplicate(tests)
	if len(got) != 3 {
		t.Fatalf("got %d reports, want 3", len(got))
	}
}

func TestDeduplicatePairwiseDisjointProperty(t *testing.T) {
	// Property: the recommended set is always pairwise type-disjoint, and
	// every non-selected test shares a type with some selected test.
	prop := func(seed uint32, n uint8) bool {
		count := int(n%20) + 1
		s := seed
		rnd := func(mod uint32) uint32 { s = s*1664525 + 1013904223; return s % mod }
		var tests []core.ReducedTest
		for i := 0; i < count; i++ {
			tc := core.ReducedTest{Name: string(rune('a' + i)), Types: map[string]bool{}}
			k := int(rnd(4)) + 1
			for j := 0; j < k; j++ {
				tc.Types[string(rune('A'+rnd(8)))] = true
			}
			tests = append(tests, tc)
		}
		selected := core.Deduplicate(tests)
		for i := range selected {
			for j := i + 1; j < len(selected); j++ {
				for k := range selected[i].Types {
					if selected[j].Types[k] {
						return false
					}
				}
			}
		}
		// Coverage: each input test shares a type with some selected test.
		for _, tc := range tests {
			covered := false
			for _, sel := range selected {
				for k := range sel.Types {
					if tc.Types[k] {
						covered = true
					}
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedTypes(t *testing.T) {
	got := core.SortedTypes(types("c", "a", "b"))
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}
