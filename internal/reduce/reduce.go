// Package reduce implements the spirv-fuzz reducer of Section 3.4: delta
// debugging over the bug-inducing transformation sequence against an
// interestingness test, followed by the spirv-reduce-style shrinking of any
// remaining AddFunction bodies. It also provides the hand-off that turns a
// reduced outcome into reduction-quality measurements (Section 4.2).
package reduce

import (
	"context"

	"spirvfuzz/internal/core"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

// Interestingness is the Section 3.4 interestingness test: given a variant
// module and the inputs it executes on (input-modifying transformations may
// have changed them in sync with the module), it reports whether the bug
// still appears to be triggered. Tests built by the *On constructors are safe
// for concurrent calls, which ReduceParallel relies on.
type Interestingness func(variant *spirv.Module, in interp.Inputs) bool

// Runner abstracts target execution so reductions can route through a shared
// memoizing engine (runner.Engine satisfies this); ddmin probes many
// overlapping candidate subsets whose replays collapse to identical modules.
type Runner interface {
	Run(tg *target.Target, m *spirv.Module, in interp.Inputs) (*interp.Image, *target.Crash)
}

// directRunner executes targets with no pooling or caching.
type directRunner struct{}

func (directRunner) Run(tg *target.Target, m *spirv.Module, in interp.Inputs) (*interp.Image, *target.Crash) {
	return tg.Run(m, in)
}

// CrashInterestingness builds the interestingness test for a crash bug: the
// target must crash with the same signature.
func CrashInterestingness(tg *target.Target, in interp.Inputs, signature string) Interestingness {
	return CrashInterestingnessOn(directRunner{}, tg, in, signature)
}

// CrashInterestingnessOn is CrashInterestingness with target runs routed
// through r.
func CrashInterestingnessOn(r Runner, tg *target.Target, _ interp.Inputs, signature string) Interestingness {
	return func(variant *spirv.Module, in interp.Inputs) bool {
		_, crash := r.Run(tg, variant, in)
		return crash != nil && crash.Signature == signature
	}
}

// MiscompilationInterestingness builds the test for a miscompilation: the
// image rendered via the variant (on its inputs) must still differ from the
// image rendered via the original on the original inputs (Section 3.4's
// image-pair comparison).
func MiscompilationInterestingness(tg *target.Target, origIn interp.Inputs, original *spirv.Module) Interestingness {
	return MiscompilationInterestingnessOn(directRunner{}, tg, origIn, original)
}

// MiscompilationInterestingnessOn is MiscompilationInterestingness with
// target runs routed through r.
func MiscompilationInterestingnessOn(r Runner, tg *target.Target, origIn interp.Inputs, original *spirv.Module) Interestingness {
	origImg, origCrash := r.Run(tg, original, origIn)
	return func(variant *spirv.Module, in interp.Inputs) bool {
		if origCrash != nil {
			return false
		}
		img, crash := r.Run(tg, variant, in)
		return crash == nil && img != nil && !img.Equal(origImg)
	}
}

// ForOutcome builds the appropriate interestingness test for a bug outcome.
func ForOutcome(tg *target.Target, original *spirv.Module, in interp.Inputs, signature string) Interestingness {
	return ForOutcomeOn(directRunner{}, tg, original, in, signature)
}

// ForOutcomeOn is ForOutcome with target runs routed through r.
func ForOutcomeOn(r Runner, tg *target.Target, original *spirv.Module, in interp.Inputs, signature string) Interestingness {
	if signature == target.MiscompilationSignature {
		return MiscompilationInterestingnessOn(r, tg, in, original)
	}
	return CrashInterestingnessOn(r, tg, in, signature)
}

// Result is the outcome of a reduction.
type Result struct {
	// Kept are the indices of the original sequence that remain.
	Kept []int
	// Sequence is the minimized transformation sequence.
	Sequence []fuzz.Transformation
	// Variant is the reduced variant module.
	Variant *spirv.Module
	// Inputs are the inputs the reduced variant executes on.
	Inputs interp.Inputs
	// Delta is the size of the final delta: the difference in instruction
	// counts between the original module and the reduced variant — the
	// reduction-quality measure of Section 4.2.
	Delta int
	// Queries counts interestingness-test invocations.
	Queries int
}

// Reduce minimizes the transformation sequence of a bug-inducing variant.
// It runs delta debugging to 1-minimality, then applies the spirv-reduce
// analogue to shrink remaining AddFunction bodies.
func Reduce(original *spirv.Module, in interp.Inputs, ts []fuzz.Transformation, interesting Interestingness) *Result {
	return ReduceParallel(original, in, ts, interesting, 1)
}

// ReduceParallel is Reduce with speculative parallel delta debugging
// (core.ReduceParallel): chunk candidates of one ddmin pass are replayed and
// tested on up to workers goroutines, and the earliest interesting removal in
// scan order is committed, so the kept indices — and therefore the reduced
// sequence and variant — are bitwise-identical to serial Reduce for every
// worker count. interesting must be safe for concurrent calls when
// workers > 1 (tests built by the *On constructors over a runner.Engine are).
//
// Replays run through a private prefix-snapshot cache (internal/replay) with
// the default byte budget; use ReduceParallelReplay to share one engine — and
// its statistics — across reductions.
func ReduceParallel(original *spirv.Module, in interp.Inputs, ts []fuzz.Transformation, interesting Interestingness, workers int) *Result {
	return ReduceParallelReplay(original, in, ts, interesting, workers, replay.NewEngine(replay.DefaultBudget))
}

// ReduceParallelReplay is ReduceParallel with replays routed through reng's
// prefix-snapshot cache (nil or zero-budget disables caching: every query
// replays from scratch). Snapshots are shared across the speculative workers
// of one ddmin wave and across reductions sharing the engine; caching changes
// replay cost only, never replay results, so kept indices stay
// bitwise-identical to serial fresh-replay reduction.
func ReduceParallelReplay(original *spirv.Module, in interp.Inputs, ts []fuzz.Transformation, interesting Interestingness, workers int, reng *replay.Engine) *Result {
	res, _ := ReduceParallelReplayCtx(context.Background(), original, in, ts, interesting, workers, reng)
	return res
}

// ReduceParallelReplayCtx is ReduceParallelReplay with cancellation: a done
// ctx aborts the ddmin waves and the shrink probes promptly (in-flight
// interestingness queries finish; no new ones start) and returns ctx.Err()
// alongside a best-effort Result — the sequence as minimized so far, which
// is still interesting, merely not 1-minimal. Callers that need all-or-
// nothing semantics (the spirvd job pipeline) discard the Result on error;
// interactive callers (spirv-reduce under Ctrl-C) may keep it.
func ReduceParallelReplayCtx(ctx context.Context, original *spirv.Module, in interp.Inputs, ts []fuzz.Transformation, interesting Interestingness, workers int, reng *replay.Engine) (*Result, error) {
	sess := reng.NewSession(original, in, ts)
	test := func(keep []int) bool {
		c, _ := sess.Replay(keep)
		return interesting(c.Mod, c.Inputs)
	}
	kept, st, err := core.ReduceParallelCtx(ctx, len(ts), test, workers)
	queries := st.Queries
	if err == nil {
		var shrinkQueries int
		shrinkQueries, err = shrinkAddFunctions(ctx, sess, kept, interesting)
		queries += shrinkQueries
	}
	// The minimized keep-set was already replayed by the last successful
	// query (and the shrink probes recorded its prefix snapshots), so this
	// final replay is served from the cache instead of re-applying the whole
	// sequence.
	c, _ := sess.Replay(kept)
	return &Result{
		Kept:     kept,
		Sequence: sess.Sequence(kept),
		Variant:  c.Mod,
		Inputs:   c.Inputs,
		Delta:    c.Mod.InstructionCount() - original.InstructionCount(),
		Queries:  queries,
	}, err
}

// shrinkAddFunctions is the spirv-reduce post-pass (Section 3.4): donated
// functions sometimes carry more instructions than the bug needs, and
// AddFunction is the one transformation that could not be split into smaller
// transformations. For each remaining AddFunction, try deleting body
// instructions whose results nothing in the encoded function uses.
//
// Each probe overrides the AddFunction's slot in the replay session rather
// than copying the whole candidate sequence: the prefix before the slot is
// served from the snapshot cache and only the AddFunction and its suffix are
// re-applied. Accepted shrinks are committed into the session, which keeps
// prefix snapshots below the slot valid.
//
// Slots are processed in descending order: a probe re-applies every kept
// transformation after its slot, so shrinking the later AddFunctions first
// means earlier slots' probes replay already-shrunk (cheaper) versions of
// them instead of the full originals.
func shrinkAddFunctions(ctx context.Context, sess *replay.Session, kept []int, interesting Interestingness) (int, error) {
	queries := 0
	for ki := len(kept) - 1; ki >= 0; ki-- {
		slot := kept[ki]
		af, ok := sess.At(slot).(*fuzz.AddFunction)
		if !ok {
			continue
		}
		for {
			if err := ctx.Err(); err != nil {
				return queries, err
			}
			shrunk, changed := dropOneDeadInstr(af)
			if !changed {
				break
			}
			c, _ := sess.ReplayOverride(kept, slot, shrunk)
			queries++
			if !interesting(c.Mod, c.Inputs) {
				break
			}
			af = shrunk
			sess.Commit(slot, shrunk)
		}
	}
	return queries, nil
}

// dropOneDeadInstr returns a copy of af with one unused-result body
// instruction removed, or (af, false) if none can be removed.
func dropOneDeadInstr(af *fuzz.AddFunction) (*fuzz.AddFunction, bool) {
	used := map[spirv.ID]bool{}
	scan := func(e fuzz.EncodedInstr) {
		ins, ok := e.Decode()
		if !ok {
			return
		}
		ins.Uses(func(id spirv.ID) { used[id] = true })
	}
	scan(af.Def)
	for _, p := range af.Params {
		scan(p)
	}
	for _, b := range af.Blocks {
		for _, p := range b.Phis {
			scan(p)
		}
		for _, ins := range b.Body {
			scan(ins)
		}
		if b.Merge != nil {
			scan(*b.Merge)
		}
		scan(b.Term)
	}
	for bi, b := range af.Blocks {
		for ii, e := range b.Body {
			ins, ok := e.Decode()
			if !ok || ins.Result == 0 || used[ins.Result] || ins.Op.HasSideEffects() || ins.Op == spirv.OpVariable {
				continue
			}
			clone := *af
			clone.Blocks = append([]fuzz.EncodedBlock{}, af.Blocks...)
			nb := clone.Blocks[bi]
			nb.Body = append(append([]fuzz.EncodedInstr{}, b.Body[:ii]...), b.Body[ii+1:]...)
			clone.Blocks[bi] = nb
			return &clone, true
		}
	}
	return af, false
}

// ShrinkAddFunctionsForTest exposes shrinkAddFunctions to benchmarks.
func ShrinkAddFunctionsForTest(sess *replay.Session, kept []int, interesting Interestingness) int {
	queries, _ := shrinkAddFunctions(context.Background(), sess, kept, interesting)
	return queries
}
