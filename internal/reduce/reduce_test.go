package reduce_test

import (
	"bytes"
	"reflect"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

func TestCrashInterestingness(t *testing.T) {
	sw := target.ByName("SwiftShader")
	in := interp.Inputs{W: 2, H: 2}
	original := testmod.Caller()
	variant := original.Clone()
	variant.Functions[0].SetControl(spirv.FunctionControlDontInline)
	_, crash := sw.Run(variant, in)
	if crash == nil {
		t.Fatal("setup: variant should crash")
	}
	interesting := reduce.CrashInterestingness(sw, in, crash.Signature)
	if !interesting(variant, in) {
		t.Fatal("crashing variant must be interesting")
	}
	if interesting(original, in) {
		t.Fatal("healthy original must not be interesting")
	}
	other := reduce.CrashInterestingness(sw, in, "some other signature")
	if other(variant, in) {
		t.Fatal("signature mismatch must not be interesting")
	}
}

func TestMiscompilationInterestingness(t *testing.T) {
	mesa := target.ByName("Mesa")
	in := interp.Inputs{W: 4, H: 4}
	original := testmod.Loop()
	ctx := fuzz.NewContext(original.Clone(), in)
	fn := ctx.Mod.EntryPointFunction()
	cmp := fn.Blocks[2].Body[0]
	tr := &fuzz.PropagateInstructionUp{
		Instr:    cmp.Result,
		FreshIDs: map[spirv.ID]spirv.ID{fn.Blocks[1].Label: ctx.Mod.Bound},
	}
	if !tr.Precondition(ctx) {
		t.Fatal("setup precondition")
	}
	tr.Apply(ctx)
	interesting := reduce.MiscompilationInterestingness(mesa, in, original)
	if !interesting(ctx.Mod, ctx.Inputs) {
		t.Fatal("miscompiling variant must be interesting")
	}
	if interesting(original, in) {
		t.Fatal("original must not differ from itself")
	}
}

// TestShrinkAddFunctions exercises the spirv-reduce post-pass: a donated
// function larger than the bug requires loses its unused instructions.
func TestShrinkAddFunctions(t *testing.T) {
	item := corpus.References()[0] // gradient1
	c := fuzz.NewContext(item.Mod.Clone(), item.Inputs)

	// Donate a function with several pure instructions, then pad the
	// encoding with extra dead arithmetic so the shrinker has work.
	var donated []fuzz.Transformation
	for _, d := range corpus.Donors() {
		donated = fuzz.Donate(c, d, d.Functions[0], true)
		if donated != nil {
			break
		}
	}
	if donated == nil {
		t.Fatal("no donatable function")
	}
	af, ok := donated[len(donated)-1].(*fuzz.AddFunction)
	if !ok {
		t.Fatalf("last donation transformation is %T", donated[len(donated)-1])
	}
	// Pad: duplicate the first body instruction with fresh result ids; the
	// copies are unused by anything.
	blk := &af.Blocks[len(af.Blocks)-1]
	var pad []fuzz.EncodedInstr
	next := spirv.ID(5000)
	for i := 0; i < 4; i++ {
		var template fuzz.EncodedInstr
		for _, e := range blk.Body {
			if e.Result != 0 {
				template = e
				break
			}
		}
		if template.Op == "" {
			t.Skip("donor body has no result-producing instructions")
		}
		dup := template
		dup.Operands = append([]uint32(nil), template.Operands...)
		dup.Result = next
		next++
		pad = append(pad, dup)
	}
	blk.Body = append(pad, blk.Body...)

	for _, tr := range donated {
		if !tr.Precondition(c) {
			t.Fatalf("%s precondition", tr.Type())
		}
		tr.Apply(c)
	}
	if err := validate.Module(c.Mod); err != nil {
		t.Fatalf("padded donation invalid: %v\n%s", err, c.Mod)
	}
	beforeCount := c.Mod.InstructionCount()

	// The "bug": the module has at least 2 functions (i.e. the donation is
	// present at all) — every padded instruction is unnecessary.
	interesting := func(m *spirv.Module, _ interp.Inputs) bool {
		return len(m.Functions) >= 2
	}
	r := reduce.Reduce(item.Mod, item.Inputs, donated, interesting)
	if !interesting(r.Variant, r.Inputs) {
		t.Fatal("reduced variant lost the donation")
	}
	if err := validate.Module(r.Variant); err != nil {
		t.Fatalf("reduced variant invalid: %v", err)
	}
	if r.Variant.InstructionCount() >= beforeCount {
		t.Fatalf("shrinker removed nothing: %d -> %d", beforeCount, r.Variant.InstructionCount())
	}
	// All four pads must be gone (they are unused pure instructions).
	var kept *fuzz.AddFunction
	for _, tr := range r.Sequence {
		if a, ok := tr.(*fuzz.AddFunction); ok {
			kept = a
		}
	}
	if kept == nil {
		t.Fatal("AddFunction missing from reduced sequence")
	}
	for _, b := range kept.Blocks {
		for _, e := range b.Body {
			if e.Result >= 5000 {
				t.Fatalf("pad instruction %d survived shrinking", e.Result)
			}
		}
	}
}

func TestForOutcomeDispatch(t *testing.T) {
	sw := target.ByName("SwiftShader")
	in := interp.Inputs{W: 2, H: 2}
	m := testmod.Caller()
	if got := reduce.ForOutcome(sw, m, in, target.MiscompilationSignature); got == nil {
		t.Fatal("nil miscompilation test")
	}
	if got := reduce.ForOutcome(sw, m, in, "some crash"); got == nil {
		t.Fatal("nil crash test")
	}
}

// TestReduceReplayDeterministicGrid reduces a real crash outcome across every
// combination of worker count and replay-cache budget and requires the kept
// indices to be bitwise-identical to the serial fresh-replay baseline
// (workers=1, caching disabled). The prefix cache must change replay cost
// only, never results.
func TestReduceReplayDeterministicGrid(t *testing.T) {
	res, err := harness.CampaignEngine(runner.New(4), harness.ToolSpirvFuzz, 40, 2,
		corpus.References(), target.All(), corpus.Donors())
	if err != nil {
		t.Fatal(err)
	}
	var outcome *harness.Outcome
	for _, o := range res.BugOutcomes {
		if o.Signature != target.MiscompilationSignature && len(o.Transformations) > 4 {
			outcome = o
			break
		}
	}
	if outcome == nil {
		t.Fatal("no crash outcome with a nontrivial sequence")
	}
	tg := target.ByName(outcome.Target)

	baselineEng := runner.New(1)
	interesting := reduce.ForOutcomeOn(baselineEng, tg, outcome.Original, outcome.Inputs, outcome.Signature)
	baseline := reduce.ReduceParallelReplay(outcome.Original, outcome.Inputs,
		outcome.Transformations, interesting, 1, replay.NewEngine(0))

	for _, workers := range []int{1, 4, 16} {
		for _, budget := range []int64{0, 32 << 10, replay.DefaultBudget} {
			e := runner.New(workers)
			it := reduce.ForOutcomeOn(e, tg, outcome.Original, outcome.Inputs, outcome.Signature)
			reng := replay.NewEngine(budget)
			r := reduce.ReduceParallelReplay(outcome.Original, outcome.Inputs,
				outcome.Transformations, it, workers, reng)
			if !reflect.DeepEqual(r.Kept, baseline.Kept) {
				t.Fatalf("workers=%d budget=%d: kept %v, baseline %v", workers, budget, r.Kept, baseline.Kept)
			}
			if !bytes.Equal(r.Variant.EncodeBytes(), baseline.Variant.EncodeBytes()) {
				t.Fatalf("workers=%d budget=%d: reduced variant diverged from baseline", workers, budget)
			}
			if r.Delta != baseline.Delta || len(r.Sequence) != len(baseline.Sequence) {
				t.Fatalf("workers=%d budget=%d: result metadata diverged", workers, budget)
			}
			st := reng.Stats()
			if budget == 0 && st.Snapshots != 0 {
				t.Fatalf("disabled cache recorded %d snapshots", st.Snapshots)
			}
			if budget == replay.DefaultBudget && st.Hits == 0 {
				t.Fatal("default-budget reduction never hit the prefix cache")
			}
		}
	}
}
