package harness_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/target"
)

func smallCampaign(t *testing.T, tool harness.Tool, tests int) *harness.CampaignResult {
	t.Helper()
	res, err := harness.Campaign(tool, tests, 4, corpus.References(), target.All(), corpus.Donors())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCampaignFindsBugs(t *testing.T) {
	res := smallCampaign(t, harness.ToolSpirvFuzz, 30)
	totalSigs := 0
	for _, sigs := range res.Signatures {
		totalSigs += len(sigs)
	}
	if totalSigs < 5 {
		t.Fatalf("campaign of 30 tests found only %d signatures across all targets", totalSigs)
	}
	if len(res.BugOutcomes) == 0 {
		t.Fatal("no bug outcomes recorded")
	}
	// Group counts must partition sensibly.
	for tgt, groups := range res.GroupSignatures {
		if len(groups) != 4 {
			t.Fatalf("%s: %d groups, want 4", tgt, len(groups))
		}
	}
}

func TestCampaignOutcomesReplay(t *testing.T) {
	res := smallCampaign(t, harness.ToolSpirvFuzz, 15)
	for _, o := range res.BugOutcomes[:min(len(res.BugOutcomes), 5)] {
		replayed, _ := fuzz.Replay(o.Original, o.Inputs, o.Transformations)
		if replayed.String() != o.Variant.String() {
			t.Fatalf("outcome %s/%d does not replay", o.Target, o.Seed)
		}
	}
}

func TestGlslFuzzCampaignRuns(t *testing.T) {
	res := smallCampaign(t, harness.ToolGlslFuzz, 30)
	// The baseline must find *some* bugs (it shares several defect triggers)
	// but must find nothing on the spirv-opt targets (its features never
	// reach the optimizer-only defects) — the Table 3 shape.
	total := 0
	for _, sigs := range res.Signatures {
		total += len(sigs)
	}
	if total == 0 {
		t.Fatal("baseline found nothing at all")
	}
	if n := len(res.Signatures["spirv-opt"]); n > 0 {
		t.Errorf("glsl-fuzz found %d spirv-opt signatures; expected 0 (Table 3 shape)", n)
	}
}

func TestReduceCrashOutcome(t *testing.T) {
	res := smallCampaign(t, harness.ToolSpirvFuzz, 20)
	var crashOutcome *harnessOutcome
	for _, o := range res.BugOutcomes {
		if o.Signature != target.MiscompilationSignature && len(o.Transformations) > 3 {
			crashOutcome = &harnessOutcome{o}
			break
		}
	}
	if crashOutcome == nil {
		t.Skip("no crash outcome in small campaign")
	}
	o := crashOutcome.o
	tg := target.ByName(o.Target)
	interesting := reduce.ForOutcome(tg, o.Original, o.Inputs, o.Signature)
	if !interesting(o.Variant, o.VariantInputs) {
		t.Fatal("unreduced variant not interesting")
	}
	r := reduce.Reduce(o.Original, o.Inputs, o.Transformations, interesting)
	if len(r.Sequence) > len(o.Transformations) {
		t.Fatal("reduction grew the sequence")
	}
	if !interesting(r.Variant, r.Inputs) {
		t.Fatal("reduced variant no longer triggers the bug")
	}
	unreducedDelta := o.Variant.InstructionCount() - o.Original.InstructionCount()
	if r.Delta > unreducedDelta {
		t.Fatalf("reduced delta %d exceeds unreduced delta %d", r.Delta, unreducedDelta)
	}
	// 1-minimality of the delta-debugged core (AddFunction shrinking aside):
	// dropping any single kept transformation must break the bug... this is
	// guaranteed by core.Reduce, so just sanity-check a couple.
	for i := 0; i < len(r.Kept) && i < 3; i++ {
		keep := append(append([]int{}, r.Kept[:i]...), r.Kept[i+1:]...)
		ctx, _ := fuzz.ReplaySubsequenceContext(o.Original, o.Inputs, o.Transformations, keep)
		if interesting(ctx.Mod, ctx.Inputs) && len(r.Sequence) == len(r.Kept) {
			t.Fatalf("sequence not 1-minimal: index %d removable", r.Kept[i])
		}
	}
}

type harnessOutcome struct{ o *harness.Outcome }

func TestReduceMiscompilationOutcome(t *testing.T) {
	res := smallCampaign(t, harness.ToolSpirvFuzz, 40)
	var mis *harness.Outcome
	for _, o := range res.BugOutcomes {
		if o.Signature == target.MiscompilationSignature {
			mis = o
			break
		}
	}
	if mis == nil {
		t.Skip("no miscompilation in small campaign")
	}
	tg := target.ByName(mis.Target)
	interesting := reduce.ForOutcome(tg, mis.Original, mis.Inputs, mis.Signature)
	if !interesting(mis.Variant, mis.VariantInputs) {
		t.Fatal("unreduced miscompiling variant not interesting")
	}
	r := reduce.Reduce(mis.Original, mis.Inputs, mis.Transformations, interesting)
	if !interesting(r.Variant, r.Inputs) {
		t.Fatal("reduced variant no longer miscompiles")
	}
	if len(r.Sequence) == 0 {
		t.Fatal("empty sequence cannot miscompile")
	}
}

func TestDedupOnReducedCases(t *testing.T) {
	res := smallCampaign(t, harness.ToolSpirvFuzz, 40)
	var cases []dedup.Case
	for i, o := range res.BugOutcomes {
		if o.Signature == target.MiscompilationSignature || len(o.Transformations) == 0 {
			continue
		}
		tg := target.ByName(o.Target)
		interesting := reduce.ForOutcome(tg, o.Original, o.Inputs, o.Signature)
		r := reduce.Reduce(o.Original, o.Inputs, o.Transformations, interesting)
		cases = append(cases, dedup.Case{
			Name:      o.Target + "/" + itoa(i),
			Sequence:  r.Sequence,
			Signature: o.Signature,
		})
		if len(cases) >= 12 {
			break
		}
	}
	if len(cases) < 4 {
		t.Skipf("only %d reduced cases", len(cases))
	}
	recommended := dedup.Recommend(cases)
	if len(recommended) == 0 {
		t.Fatal("nothing recommended")
	}
	if len(recommended) > len(cases) {
		t.Fatal("recommended more than submitted")
	}
	distinct, dups := dedup.Score(recommended)
	if distinct+dups != len(recommended) {
		t.Fatal("score accounting broken")
	}
	if got := dedup.SignatureCount(cases); got == 0 {
		t.Fatal("no ground-truth signatures")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCampaignDeterministic: the parallel campaign must produce identical
// results across runs (merging is by test index).
func TestCampaignDeterministic(t *testing.T) {
	a := smallCampaign(t, harness.ToolSpirvFuzz, 20)
	b := smallCampaign(t, harness.ToolSpirvFuzz, 20)
	if len(a.BugOutcomes) != len(b.BugOutcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.BugOutcomes), len(b.BugOutcomes))
	}
	for i := range a.BugOutcomes {
		x, y := a.BugOutcomes[i], b.BugOutcomes[i]
		if x.Target != y.Target || x.Seed != y.Seed || x.Signature != y.Signature {
			t.Fatalf("outcome %d differs: %s/%d/%q vs %s/%d/%q",
				i, x.Target, x.Seed, x.Signature, y.Target, y.Seed, y.Signature)
		}
	}
	for tgt, sigs := range a.Signatures {
		if len(sigs) != len(b.Signatures[tgt]) {
			t.Fatalf("%s: signature sets differ", tgt)
		}
		for s := range sigs {
			if !b.Signatures[tgt][s] {
				t.Fatalf("%s: signature %q missing in second run", tgt, s)
			}
		}
	}
}
