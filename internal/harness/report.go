package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/asm"
)

// ExportBugReport writes a self-contained bug-report bundle for a reduced
// bug (Section 2.1, "Bug reports and regression tests"): given the 1-minimal
// sequence T1..Tn, the pairs most useful for reporting are (P0, Pn) — the
// complete delta against the well-understood original — and (Pn-1, Pn) — the
// smallest delta, demonstrating only the final transformation. The bundle
// contains all three programs, the inputs, the minimized sequence, and a
// README with the (Pn-1, Pn) delta inline. Executing any two of the programs
// on the inputs and checking that their results agree is the natural
// regression test.
func ExportBugReport(dir string, o *Outcome, r *reduce.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, m *spirv.Module) error {
		return asm.SaveModule(m, filepath.Join(dir, name))
	}
	if err := write("original.spvasm", o.Original); err != nil {
		return err
	}
	if err := write("reduced_variant.spvasm", r.Variant); err != nil {
		return err
	}
	// Pn-1: everything but the last transformation of the minimized
	// sequence.
	penult, _ := fuzz.Replay(o.Original, o.Inputs, r.Sequence[:max(0, len(r.Sequence)-1)])
	if err := write("penultimate.spvasm", penult); err != nil {
		return err
	}
	inputsJSON, err := interp.EncodeInputs(o.Inputs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "inputs.json"), inputsJSON, 0o644); err != nil {
		return err
	}
	// Input-modifying transformations give the variant its own inputs.
	variantInputsJSON, err := interp.EncodeInputs(r.Inputs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "variant_inputs.json"), variantInputsJSON, 0o644); err != nil {
		return err
	}
	seqJSON, err := fuzz.MarshalSequence(r.Sequence)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "transformations.json"), seqJSON, 0o644); err != nil {
		return err
	}
	readme := buildReportReadme(o, r, penult)
	return os.WriteFile(filepath.Join(dir, "README.md"), []byte(readme), 0o644)
}

func buildReportReadme(o *Outcome, r *reduce.Result, penult *spirv.Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Bug report: %s\n\n", o.Target)
	fmt.Fprintf(&sb, "- signature: `%s`\n", o.Signature)
	fmt.Fprintf(&sb, "- reference: %s, seed %d, tool %s\n", o.Reference, o.Seed, o.Tool)
	fmt.Fprintf(&sb, "- minimized sequence: %d transformation(s)\n", len(r.Sequence))
	for i, t := range r.Sequence {
		fmt.Fprintf(&sb, "  - T%d: %s\n", i+1, t.Type())
	}
	fmt.Fprintf(&sb, "- instruction delta vs original: %d\n\n", r.Delta)
	sb.WriteString("All three programs compute identical results on inputs.json; the target\n")
	sb.WriteString("treats reduced_variant differently. Reproduce with:\n\n")
	fmt.Fprintf(&sb, "    spirv-run -in reduced_variant.spvasm -inputs variant_inputs.json -target %s\n\n", o.Target)
	sb.WriteString("Regression test: both commands below must produce identical images once\n")
	sb.WriteString("the bug is fixed:\n\n")
	sb.WriteString("    spirv-run -in original.spvasm        -inputs inputs.json -target " + o.Target + "\n")
	sb.WriteString("    spirv-run -in reduced_variant.spvasm -inputs variant_inputs.json -target " + o.Target + "\n\n")
	sb.WriteString("## Smallest delta (penultimate vs reduced variant)\n\n")
	sb.WriteString("```diff\n")
	sb.WriteString(lineDiff(penult.String(), r.Variant.String(), 40))
	sb.WriteString("```\n")
	return sb.String()
}

// lineDiff renders a minimal +/- line diff between two listings, capped at
// maxLines output lines. It aligns on the longest common prefix and suffix,
// which is exact for the single-edit deltas reduction produces.
func lineDiff(a, b string, maxLines int) string {
	al := strings.Split(strings.TrimRight(a, "\n"), "\n")
	bl := strings.Split(strings.TrimRight(b, "\n"), "\n")
	pre := 0
	for pre < len(al) && pre < len(bl) && al[pre] == bl[pre] {
		pre++
	}
	suf := 0
	for suf < len(al)-pre && suf < len(bl)-pre && al[len(al)-1-suf] == bl[len(bl)-1-suf] {
		suf++
	}
	var sb strings.Builder
	emitted := 0
	for _, line := range al[pre : len(al)-suf] {
		if emitted >= maxLines {
			sb.WriteString("...\n")
			return sb.String()
		}
		fmt.Fprintf(&sb, "- %s\n", line)
		emitted++
	}
	for _, line := range bl[pre : len(bl)-suf] {
		if emitted >= maxLines {
			sb.WriteString("...\n")
			return sb.String()
		}
		fmt.Fprintf(&sb, "+ %s\n", line)
		emitted++
	}
	if emitted == 0 {
		sb.WriteString("(listings identical)\n")
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
