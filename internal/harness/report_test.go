package harness_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/spirv/asm"
	"spirvfuzz/internal/target"
)

func TestExportBugReport(t *testing.T) {
	res := smallCampaign(t, harness.ToolSpirvFuzz, 25)
	var o *harness.Outcome
	for _, cand := range res.BugOutcomes {
		if cand.Signature != target.MiscompilationSignature && len(cand.Transformations) > 2 {
			o = cand
			break
		}
	}
	if o == nil {
		t.Skip("no crash outcome")
	}
	tg := target.ByName(o.Target)
	interesting := reduce.ForOutcome(tg, o.Original, o.Inputs, o.Signature)
	r := reduce.Reduce(o.Original, o.Inputs, o.Transformations, interesting)

	dir := t.TempDir()
	if err := harness.ExportBugReport(dir, o, r); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"original.spvasm", "reduced_variant.spvasm", "penultimate.spvasm", "inputs.json", "transformations.json", "README.md"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	// The exported artifacts round-trip and reproduce the bug.
	orig, err := asm.LoadModule(filepath.Join(dir, "original.spvasm"))
	if err != nil {
		t.Fatal(err)
	}
	variant, err := asm.LoadModule(filepath.Join(dir, "reduced_variant.spvasm"))
	if err != nil {
		t.Fatal(err)
	}
	inputsData, _ := os.ReadFile(filepath.Join(dir, "inputs.json"))
	in, err := interp.ParseInputs(inputsData)
	if err != nil {
		t.Fatal(err)
	}
	if _, crash := tg.Run(orig, in); crash != nil {
		t.Fatalf("exported original crashes: %v", crash)
	}
	_, crash := tg.Run(variant, in)
	if crash == nil || crash.Signature != o.Signature {
		t.Fatalf("exported variant does not reproduce %q: %v", o.Signature, crash)
	}

	// Replaying the exported sequence on the exported original rebuilds the
	// exported variant (self-containedness).
	seqData, _ := os.ReadFile(filepath.Join(dir, "transformations.json"))
	seq, err := fuzz.UnmarshalSequence(seqData)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, _ := fuzz.Replay(orig, in, seq)
	if rebuilt.String() != variant.String() {
		t.Fatal("exported sequence does not rebuild the exported variant")
	}

	readme, _ := os.ReadFile(filepath.Join(dir, "README.md"))
	for _, want := range []string{o.Signature, "Regression test", "```diff"} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README missing %q", want)
		}
	}
	// Both the penultimate and the variant render identically under the
	// reference interpreter (the regression-test property).
	penult, err := asm.LoadModule(filepath.Join(dir, "penultimate.spvasm"))
	if err != nil {
		t.Fatal(err)
	}
	img1, err := interp.Render(penult, in)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := interp.Render(variant, in)
	if err != nil {
		t.Fatal(err)
	}
	if !img1.Equal(img2) {
		t.Fatal("penultimate and reduced variant must agree under the reference semantics")
	}
}
