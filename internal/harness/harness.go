// Package harness is the gfauto analogue (Section 3.2): it runs fuzzing
// campaigns against the simulated targets, classifies outcomes into crash
// signatures and miscompilations, drives reduction, and aggregates the
// statistics the paper's tables report.
package harness

import (
	"context"
	"fmt"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/glslfuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

// Tool identifies a fuzzer configuration under evaluation (Section 4.1).
type Tool string

// The three tool configurations of Table 3.
const (
	ToolSpirvFuzz       Tool = "spirv-fuzz"
	ToolSpirvFuzzSimple Tool = "spirv-fuzz-simple" // recommendations disabled
	ToolGlslFuzz        Tool = "glsl-fuzz"
)

// Outcome is the result of running one generated test on one target.
type Outcome struct {
	Tool      Tool
	Target    string
	Reference string
	Seed      int64
	// Signature is empty when no bug was found; otherwise a crash signature
	// or target.MiscompilationSignature.
	Signature string
	// Variant and the original inputs, kept for reduction experiments.
	Original *spirv.Module
	Variant  *spirv.Module
	Inputs   interp.Inputs
	// VariantInputs are the inputs the variant executes on; they differ from
	// Inputs when input-modifying transformations were applied.
	VariantInputs interp.Inputs
	// Transformations is the spirv-fuzz sequence (nil for glsl-fuzz).
	Transformations []fuzz.Transformation
	// Instances is the glsl-fuzz instance list (nil for spirv-fuzz).
	Instances []glslfuzz.Instance
}

// Bug reports whether the outcome found a bug.
func (o *Outcome) Bug() bool { return o.Signature != "" }

// classify compares the behaviour of the original and the variant on the
// target per Figure 1 / Theorem 2.6 and returns the bug signature, or "".
// Target runs route through eng, so the per-test original executions — the
// same (reference, target) pair for every test that drew that reference —
// are answered from the engine's cache after the first.
func classify(eng *runner.Engine, tg *target.Target, original, variant *spirv.Module, origIn, varIn interp.Inputs) (string, error) {
	return ClassifyCtx(context.Background(), eng, tg, original, variant, origIn, varIn)
}

// ClassifyCtx compares the behaviour of an original and a variant on a
// target per Figure 1 / Theorem 2.6 and returns the bug signature, or "".
// It is the classification primitive behind campaigns, exported for the
// spirvd job pipeline; a canceled ctx aborts between (not within) the two
// target runs and returns ctx.Err().
func ClassifyCtx(ctx context.Context, eng *runner.Engine, tg *target.Target, original, variant *spirv.Module, origIn, varIn interp.Inputs) (string, error) {
	origImg, origCrash, err := eng.RunCtx(ctx, tg, original, origIn)
	if err != nil {
		return "", err
	}
	if origCrash != nil {
		return "", fmt.Errorf("harness: original crashes on %s: %s", tg.Name, origCrash.Signature)
	}
	varImg, varCrash, err := eng.RunCtx(ctx, tg, variant, varIn)
	if err != nil {
		return "", err
	}
	return decide(tg, origImg, varImg, varCrash), nil
}

// decide turns one target's original/variant observations into a signature.
func decide(tg *target.Target, origImg, varImg *interp.Image, varCrash *target.Crash) string {
	if varCrash != nil {
		return varCrash.Signature
	}
	if tg.CanRender && varImg != nil && origImg != nil && !varImg.Equal(origImg) {
		return target.MiscompilationSignature
	}
	return ""
}

// ClassifyAllCtx classifies one original/variant pair against every target
// in one batch: the original runs through eng.RunAllCtx, then the variant,
// so the engine hashes each module once and compiles and renders each
// distinct compiled-module class once for the whole target set. The returned
// signatures are indexed like targets and bitwise identical to calling
// ClassifyCtx once per target. An original that crashes is an error, as in
// ClassifyCtx, reporting the first crashing target in target order.
func ClassifyAllCtx(ctx context.Context, eng *runner.Engine, targets []*target.Target, original, variant *spirv.Module, origIn, varIn interp.Inputs) ([]string, error) {
	orig, err := eng.RunAllCtx(ctx, targets, original, origIn)
	if err != nil {
		return nil, err
	}
	for i, tg := range targets {
		if orig[i].Crash != nil {
			return nil, fmt.Errorf("harness: original crashes on %s: %s", tg.Name, orig[i].Crash.Signature)
		}
	}
	vars, err := eng.RunAllCtx(ctx, targets, variant, varIn)
	if err != nil {
		return nil, err
	}
	sigs := make([]string, len(targets))
	for i, tg := range targets {
		sigs[i] = decide(tg, orig[i].Img, vars[i].Img, vars[i].Crash)
	}
	return sigs, nil
}

// RunOne generates one test with the given tool and seed from the reference
// item, runs it on the target, and classifies the outcome.
func RunOne(tool Tool, item corpus.Item, seed int64, tg *target.Target, donors []*spirv.Module) (*Outcome, error) {
	return RunOneEngine(runner.New(1), tool, item, seed, tg, donors)
}

// RunOneEngine is RunOne with target executions routed through eng.
func RunOneEngine(eng *runner.Engine, tool Tool, item corpus.Item, seed int64, tg *target.Target, donors []*spirv.Module) (*Outcome, error) {
	out, err := generate(tool, item, seed, donors)
	if err != nil {
		return nil, err
	}
	out.Target = tg.Name
	sig, err := classify(eng, tg, item.Mod, out.Variant, item.Inputs, out.VariantInputs)
	if err != nil {
		return nil, err
	}
	out.Signature = sig
	return out, nil
}

// generate runs the tool once and returns the unclassified outcome (Target
// and Signature unset): the variant does not depend on the target, so one
// generation serves a whole multi-target classification.
func generate(tool Tool, item corpus.Item, seed int64, donors []*spirv.Module) (*Outcome, error) {
	out := &Outcome{
		Tool:      tool,
		Reference: item.Name,
		Seed:      seed,
		Original:  item.Mod,
		Inputs:    item.Inputs,
	}
	switch tool {
	case ToolSpirvFuzz, ToolSpirvFuzzSimple:
		// Campaigns are throughput-bound, so each test gets a moderate pass
		// budget — the regime where the recommendations strategy pays off
		// (with an unbounded budget both configurations saturate the same
		// opportunities).
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:                  seed,
			Donors:                donors,
			EnableRecommendations: tool == ToolSpirvFuzz,
			MinPasses:             5,
			MaxPasses:             14,
		})
		if err != nil {
			return nil, err
		}
		out.Variant = res.Variant
		out.VariantInputs = res.Inputs
		out.Transformations = res.Transformations
	case ToolGlslFuzz:
		res := glslfuzz.Fuzz(item.Mod, item.Inputs, glslfuzz.Options{Seed: seed})
		out.Variant = res.Variant
		out.VariantInputs = item.Inputs
		out.Instances = res.Instances
	default:
		return nil, fmt.Errorf("harness: unknown tool %q", tool)
	}
	return out, nil
}

// CampaignResult aggregates one tool's campaign over all targets.
type CampaignResult struct {
	Tool Tool
	// Signatures[target] is the set of distinct bug signatures observed.
	Signatures map[string]map[string]bool
	// GroupSignatures[target][g] is the distinct-signature count within
	// disjoint test group g (Table 3's median/MWU populations).
	GroupSignatures map[string][]int
	// BugOutcomes holds every bug-finding outcome, for reduction and
	// deduplication experiments.
	BugOutcomes []*Outcome
	// Tests is the number of generated tests.
	Tests int
}

// Campaign runs tests tests with the tool, each executed against every
// target, splitting the tests into groups disjoint groups for statistics.
// Each test uses reference refs[seed mod len(refs)] with a distinct seed
// offset by the tool's hash so tool configurations use disjoint seeds, as in
// the paper. Work is spread over a private GOMAXPROCS-sized engine; use
// CampaignEngine to share one engine (and its result cache) across
// campaigns.
func Campaign(tool Tool, tests, groups int, refs []corpus.Item, targets []*target.Target, donors []*spirv.Module) (*CampaignResult, error) {
	return CampaignEngine(runner.New(0), tool, tests, groups, refs, targets, donors)
}

// CampaignEngine is Campaign with generation and classification fanned out
// on eng's worker pool and every target execution memoized by eng: each
// reference module is compiled and rendered once per target for the whole
// campaign instead of once per generated test. Results are identical to the
// serial path for any worker count — tests are merged in index order and
// target execution is deterministic.
func CampaignEngine(eng *runner.Engine, tool Tool, tests, groups int, refs []corpus.Item, targets []*target.Target, donors []*spirv.Module) (*CampaignResult, error) {
	return CampaignEngineCtx(context.Background(), eng, tool, tests, groups, refs, targets, donors)
}

// CampaignEngineCtx is CampaignEngine with cancellation: a done ctx stops
// dispatching tests onto the worker pool and returns ctx.Err() once in-
// flight tests finish, rather than draining the whole campaign.
func CampaignEngineCtx(ctx context.Context, eng *runner.Engine, tool Tool, tests, groups int, refs []corpus.Item, targets []*target.Target, donors []*spirv.Module) (*CampaignResult, error) {
	if groups <= 0 {
		groups = 1
	}
	res := &CampaignResult{
		Tool:            tool,
		Signatures:      make(map[string]map[string]bool),
		GroupSignatures: make(map[string][]int),
		Tests:           tests,
	}
	groupSets := make(map[string][]map[string]bool)
	for _, tg := range targets {
		res.Signatures[tg.Name] = make(map[string]bool)
		groupSets[tg.Name] = make([]map[string]bool, groups)
		for g := range groupSets[tg.Name] {
			groupSets[tg.Name][g] = make(map[string]bool)
		}
	}
	seedBase := int64(0)
	switch tool {
	case ToolSpirvFuzzSimple:
		seedBase = 1 << 32
	case ToolGlslFuzz:
		seedBase = 2 << 32
	}
	groupSize := (tests + groups - 1) / groups

	// Tests are independent — generate and classify them on the engine's
	// worker pool, then merge in index order so results stay deterministic.
	perTest := make([][]*Outcome, tests)
	errs := make([]error, tests)
	doErr := eng.DoCtx(ctx, tests, func(i int) {
		item := refs[i%len(refs)]
		seed := seedBase + int64(i)
		// Generate once, classify against every target in one batch (the
		// variant does not depend on the target, and the batch compiles
		// and renders each distinct compiled module once).
		gen, err := generate(tool, item, seed, donors)
		if err != nil {
			errs[i] = err
			return
		}
		sigs, err := ClassifyAllCtx(ctx, eng, targets, gen.Original, gen.Variant, gen.Inputs, gen.VariantInputs)
		if err != nil {
			errs[i] = err
			return
		}
		for j, tg := range targets {
			if sigs[j] == "" {
				continue
			}
			perTest[i] = append(perTest[i], &Outcome{
				Tool: tool, Target: tg.Name, Reference: item.Name, Seed: seed,
				Original: gen.Original, Variant: gen.Variant,
				Inputs: gen.Inputs, VariantInputs: gen.VariantInputs,
				Transformations: gen.Transformations,
				Instances:       gen.Instances,
				Signature:       sigs[j],
			})
		}
	})
	if doErr != nil {
		return nil, doErr
	}
	for i := 0; i < tests; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		g := i / groupSize
		if g >= groups {
			g = groups - 1
		}
		for _, o := range perTest[i] {
			res.Signatures[o.Target][o.Signature] = true
			groupSets[o.Target][g][o.Signature] = true
			res.BugOutcomes = append(res.BugOutcomes, o)
		}
	}
	for _, tg := range targets {
		counts := make([]int, groups)
		for g, set := range groupSets[tg.Name] {
			counts[g] = len(set)
		}
		res.GroupSignatures[tg.Name] = counts
	}
	return res, nil
}
