package interp_test

// Targeted lane-VM tests: divergence accounting, the scalar-fallback
// contract, the SetLanes process-wide dispatch, and a worker hammer meant to
// run under -race. The bitwise differential property itself lives in
// vm_diff_test.go, which sweeps every module corpus over lanes 1/4/8/16.

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/testmod"
)

// TestLaneUniformNoFallback pins the uniform fast path: a shader whose
// control flow is identical for every pixel must never diverge and never
// retire a lane — the whole image renders in lane groups.
func TestLaneUniformNoFallback(t *testing.T) {
	prog, err := interp.Compile(testmod.LoopAccum(16))
	if err != nil {
		t.Fatal(err)
	}
	in := interp.Inputs{W: 16, H: 16}
	ref, err := interp.RenderTree(testmod.LoopAccum(16), in)
	if err != nil {
		t.Fatal(err)
	}
	img, stats, err := prog.RenderParallelLanes(in, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(img) {
		t.Fatal("lane image differs from tree reference")
	}
	if want := uint64(16 * 16 / 8); stats.Groups != want {
		t.Fatalf("Groups = %d, want %d", stats.Groups, want)
	}
	if stats.Divergences != 0 || stats.Fallbacks != 0 {
		t.Fatalf("uniform shader diverged: %+v", stats)
	}
}

// TestLaneDivergenceForcesFallback pins the other extreme: a shader that
// branches on pixel-column parity makes every multi-lane group diverge, so
// the minority lanes of every group must retire to the scalar VM — and the
// image must still be bitwise-identical to the reference.
func TestLaneDivergenceForcesFallback(t *testing.T) {
	m := testmod.ParityStripes(16)
	prog, err := interp.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.Inputs{W: 16, H: 16}
	ref, err := interp.RenderTree(m, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{2, 4, 8, 16} {
		img, stats, err := prog.RenderParallelLanes(in, 1, lanes)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if !ref.Equal(img) {
			t.Fatalf("lanes=%d: image differs from tree reference", lanes)
		}
		groups := uint64(16 * 16 / lanes)
		if stats.Groups != groups {
			t.Fatalf("lanes=%d: Groups = %d, want %d", lanes, stats.Groups, groups)
		}
		// Every group splits half/half on the parity branch, so every group
		// diverges exactly once and retires half its lanes. At lanes=2 the
		// "majority" is a single lane, which the bail-to-scalar early-out
		// retires as well — a one-lane warp amortizes nothing — so every
		// pixel falls back.
		if stats.Divergences != groups {
			t.Fatalf("lanes=%d: Divergences = %d, want %d", lanes, stats.Divergences, groups)
		}
		want := groups * uint64(lanes) / 2
		if lanes == 2 {
			want = groups * uint64(lanes)
		}
		if stats.Fallbacks != want {
			t.Fatalf("lanes=%d: Fallbacks = %d, want %d", lanes, stats.Fallbacks, want)
		}
	}
}

// TestLaneSetLanesDispatch pins the process-wide switch: with SetLanes
// active, plain RenderParallel must route through the lane VM (observable
// via the process totals) and still produce the scalar image.
func TestLaneSetLanesDispatch(t *testing.T) {
	prog, err := interp.Compile(testmod.Diamond())
	if err != nil {
		t.Fatal(err)
	}
	in := interp.Inputs{W: 8, H: 8}
	ref, err := prog.RenderParallel(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := interp.LaneTotals()
	interp.SetLanes(8)
	defer interp.SetLanes(0)
	img, err := prog.RenderParallel(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(img) {
		t.Fatal("lane-dispatched render differs from scalar render")
	}
	if after := interp.LaneTotals(); after.Groups <= before.Groups {
		t.Fatalf("LaneTotals.Groups did not advance: before %d, after %d", before.Groups, after.Groups)
	}
}

// TestLaneClamp pins the SetLanes bounds: negative values clear lane mode
// and oversized values clamp to MaxLanes.
func TestLaneClamp(t *testing.T) {
	interp.SetLanes(-3)
	if got := interp.Lanes(); got != 0 {
		t.Fatalf("Lanes() after SetLanes(-3) = %d, want 0", got)
	}
	interp.SetLanes(1000)
	if got := interp.Lanes(); got != interp.MaxLanes {
		t.Fatalf("Lanes() after SetLanes(1000) = %d, want %d", got, interp.MaxLanes)
	}
	interp.SetLanes(0)
}

// TestLaneHammerWorkers cross-checks lane renders against the scalar VM over
// the corpus references at aggressive worker counts; under `go test -race`
// this doubles as the data-race hammer for the per-band lane machines and
// the shared stats counters.
func TestLaneHammerWorkers(t *testing.T) {
	mods := []struct {
		name string
		in   interp.Inputs
		prog *interp.Program
	}{}
	for _, item := range corpus.References() {
		prog, err := interp.Compile(item.Mod)
		if err != nil {
			t.Fatalf("%s: %v", item.Name, err)
		}
		mods = append(mods, struct {
			name string
			in   interp.Inputs
			prog *interp.Program
		}{item.Name, item.Inputs, prog})
	}
	// The high-divergence module rides along to hammer the fallback path.
	stripes := testmod.ParityStripes(16)
	sprog, err := interp.Compile(stripes)
	if err != nil {
		t.Fatal(err)
	}
	mods = append(mods, struct {
		name string
		in   interp.Inputs
		prog *interp.Program
	}{"stripes", interp.Inputs{W: 16, H: 16}, sprog})

	for _, mod := range mods {
		ref, err := mod.prog.RenderParallel(mod.in, 1)
		if err != nil {
			t.Fatalf("%s: scalar render: %v", mod.name, err)
		}
		for _, workers := range []int{1, 2, 16, 64} {
			for _, lanes := range []int{4, 16} {
				img, _, err := mod.prog.RenderParallelLanes(mod.in, workers, lanes)
				if err != nil {
					t.Fatalf("%s lanes=%d workers=%d: %v", mod.name, lanes, workers, err)
				}
				if !ref.Equal(img) {
					t.Fatalf("%s lanes=%d workers=%d: image differs from scalar render", mod.name, lanes, workers)
				}
			}
		}
	}
}
