package interp_test

import (
	"math"
	"testing"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
)

// shaderEval builds a 1×1 shader whose body is produced by build, which must
// return a float id in [0,1]; the test reads the quantized red channel.
func shaderEval(t *testing.T, build func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID) uint8 {
	t.Helper()
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	r := build(b, s)
	one := b.Mod.EnsureConstantFloat(1)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, r, r, r, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	if err := validate.Module(b.Mod); err != nil {
		t.Fatalf("shader invalid: %v\n%s", err, b.Mod)
	}
	img, err := interp.Render(b.Mod, interp.Inputs{W: 1, H: 1})
	if err != nil {
		t.Fatalf("render: %v\n%s", err, b.Mod)
	}
	return img.At(0, 0)[0]
}

// boolToFloat converts a boolean id to 1.0/0.0 via OpSelect.
func boolToFloat(b *spirv.Builder, s *spirv.FragmentShell, cond spirv.ID) spirv.ID {
	one := b.Mod.EnsureConstantFloat(1)
	zero := b.Mod.EnsureConstantFloat(0)
	return b.Emit(spirv.OpSelect, s.Float, cond, one, zero)
}

func expectTrue(t *testing.T, name string, build func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID) {
	t.Helper()
	if got := shaderEval(t, build); got != 255 {
		t.Errorf("%s: channel = %d, want 255 (true)", name, got)
	}
}

func TestCompositeInsertSemantics(t *testing.T) {
	expectTrue(t, "insert", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		q := m.EnsureConstantFloat(0.25)
		h := m.EnsureConstantFloat(0.5)
		base := m.EnsureConstantComposite(s.Vec4, q, q, q, q)
		// Insert 0.5 at index 2; component 2 becomes 0.5, others stay 0.25.
		ins := b.EmitWords(spirv.OpCompositeInsert, s.Vec4, uint32(h), uint32(base), 2)
		e2 := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(ins), 2)
		e1 := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(ins), 1)
		c1 := b.Emit(spirv.OpFOrdEqual, s.Bool, e2, h)
		c2 := b.Emit(spirv.OpFOrdEqual, s.Bool, e1, q)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		// The base must be unmodified (value semantics).
		b0 := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(base), 2)
		c3 := b.Emit(spirv.OpFOrdEqual, s.Bool, b0, q)
		all := b.Emit(spirv.OpLogicalAnd, s.Bool, both, c3)
		return boolToFloat(b, s, all)
	})
}

func TestVectorShuffleSemantics(t *testing.T) {
	expectTrue(t, "shuffle", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		a := m.EnsureConstantFloat(0.1)
		c := m.EnsureConstantFloat(0.2)
		d := m.EnsureConstantFloat(0.3)
		e := m.EnsureConstantFloat(0.4)
		v1 := m.EnsureConstantComposite(s.Vec2, a, c)
		v2 := m.EnsureConstantComposite(s.Vec2, d, e)
		// shuffle(v1, v2, [3, 0]) = (v2.y, v1.x) = (0.4, 0.1)
		sh := b.EmitWords(spirv.OpVectorShuffle, s.Vec2, uint32(v1), uint32(v2), 3, 0)
		x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(sh), 0)
		y := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(sh), 1)
		c1 := b.Emit(spirv.OpFOrdEqual, s.Bool, x, e)
		c2 := b.Emit(spirv.OpFOrdEqual, s.Bool, y, a)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		return boolToFloat(b, s, both)
	})
}

func TestConversionSemantics(t *testing.T) {
	expectTrue(t, "convert", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		cNeg := m.EnsureConstantFloat(-3.7)
		i := b.Emit(spirv.OpConvertFToS, s.Int, cNeg) // trunc toward zero: -3
		want := m.EnsureConstantInt(-3)
		c1 := b.Emit(spirv.OpIEqual, s.Bool, i, want)
		f := b.Emit(spirv.OpConvertSToF, s.Float, want)
		wantF := m.EnsureConstantFloat(-3)
		c2 := b.Emit(spirv.OpFOrdEqual, s.Bool, f, wantF)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		return boolToFloat(b, s, both)
	})
}

func TestBitcastSemantics(t *testing.T) {
	expectTrue(t, "bitcast", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		f := m.EnsureConstantFloat(1.0)
		asInt := b.Emit(spirv.OpBitcast, s.Int, f)
		want := m.EnsureConstantInt(int32(math.Float32bits(1.0)))
		c1 := b.Emit(spirv.OpIEqual, s.Bool, asInt, want)
		back := b.Emit(spirv.OpBitcast, s.Float, asInt)
		c2 := b.Emit(spirv.OpFOrdEqual, s.Bool, back, f)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		return boolToFloat(b, s, both)
	})
}

func TestNegationsAndNot(t *testing.T) {
	expectTrue(t, "negate", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		five := m.EnsureConstantInt(5)
		negFive := m.EnsureConstantInt(-5)
		sn := b.Emit(spirv.OpSNegate, s.Int, five)
		c1 := b.Emit(spirv.OpIEqual, s.Bool, sn, negFive)
		fq := m.EnsureConstantFloat(0.25)
		fneg := b.Emit(spirv.OpFNegate, s.Float, fq)
		fneg2 := b.Emit(spirv.OpFNegate, s.Float, fneg)
		c2 := b.Emit(spirv.OpFOrdEqual, s.Bool, fneg2, fq)
		not5 := b.Emit(spirv.OpNot, s.Int, five)
		wantNot := m.EnsureConstantInt(^int32(5))
		c3 := b.Emit(spirv.OpIEqual, s.Bool, not5, wantNot)
		ln := b.Emit(spirv.OpLogicalNot, s.Bool, c3)
		lnn := b.Emit(spirv.OpLogicalNot, s.Bool, ln)
		a1 := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		all := b.Emit(spirv.OpLogicalAnd, s.Bool, a1, lnn)
		return boolToFloat(b, s, all)
	})
}

func TestUnsignedOps(t *testing.T) {
	expectTrue(t, "unsigned", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		u32 := m.EnsureTypeInt(32, false)
		// 0xFFFFFFFE / 3 = 0x55555554; 0xFFFFFFFE % 3 = 2 (unsigned).
		big := m.EnsureConstantWord(u32, 0xFFFFFFFE)
		three := m.EnsureConstantWord(u32, 3)
		q := b.Emit(spirv.OpUDiv, u32, big, three)
		r := b.Emit(spirv.OpUMod, u32, big, three)
		wantQ := m.EnsureConstantWord(u32, 0x55555554)
		wantR := m.EnsureConstantWord(u32, 2)
		c1 := b.Emit(spirv.OpIEqual, s.Bool, q, wantQ)
		c2 := b.Emit(spirv.OpIEqual, s.Bool, r, wantR)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		return boolToFloat(b, s, both)
	})
}

func TestSRemVsSMod(t *testing.T) {
	expectTrue(t, "srem-smod", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		negSeven := m.EnsureConstantInt(-7)
		three := m.EnsureConstantInt(3)
		// SRem: sign follows dividend: -7 rem 3 = -1. SMod: sign follows
		// divisor: -7 mod 3 = 2.
		rem := b.Emit(spirv.OpSRem, s.Int, negSeven, three)
		mod := b.Emit(spirv.OpSMod, s.Int, negSeven, three)
		wantRem := m.EnsureConstantInt(-1)
		wantMod := m.EnsureConstantInt(2)
		c1 := b.Emit(spirv.OpIEqual, s.Bool, rem, wantRem)
		c2 := b.Emit(spirv.OpIEqual, s.Bool, mod, wantMod)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		return boolToFloat(b, s, both)
	})
}

func TestFloatComparisonsOrdered(t *testing.T) {
	expectTrue(t, "ford", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		a := m.EnsureConstantFloat(0.5)
		c := m.EnsureConstantFloat(0.75)
		lt := b.Emit(spirv.OpFOrdLessThan, s.Bool, a, c)
		ge := b.Emit(spirv.OpFOrdGreaterThanEqual, s.Bool, c, a)
		le := b.Emit(spirv.OpFOrdLessThanEqual, s.Bool, a, a)
		ne := b.Emit(spirv.OpFOrdNotEqual, s.Bool, a, c)
		gt := b.Emit(spirv.OpFOrdGreaterThan, s.Bool, c, a)
		x1 := b.Emit(spirv.OpLogicalAnd, s.Bool, lt, ge)
		x2 := b.Emit(spirv.OpLogicalAnd, s.Bool, le, ne)
		x3 := b.Emit(spirv.OpLogicalAnd, s.Bool, x1, x2)
		all := b.Emit(spirv.OpLogicalAnd, s.Bool, x3, gt)
		return boolToFloat(b, s, all)
	})
}

func TestVectorTimesScalarAndDot(t *testing.T) {
	expectTrue(t, "vts-dot", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		a := m.EnsureConstantFloat(0.25)
		c := m.EnsureConstantFloat(0.5)
		two := m.EnsureConstantFloat(2)
		v := m.EnsureConstantComposite(s.Vec2, a, c)
		scaled := b.Emit(spirv.OpVectorTimesScalar, s.Vec2, v, two) // (0.5, 1.0)
		d := b.Emit(spirv.OpDot, s.Float, scaled, v)                // 0.5*0.25 + 1*0.5 = 0.625
		want := m.EnsureConstantFloat(0.625)
		eq := b.Emit(spirv.OpFOrdEqual, s.Bool, d, want)
		return boolToFloat(b, s, eq)
	})
}

func TestMatrixTimesVectorSemantics(t *testing.T) {
	expectTrue(t, "mtv", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		one := m.EnsureConstantFloat(1)
		zero := m.EnsureConstantFloat(0)
		two := m.EnsureConstantFloat(2)
		half := m.EnsureConstantFloat(0.5)
		mat2 := m.EnsureTypeMatrix(s.Vec2, 2)
		// Columns (1,0) and (0,2): M × (0.5, 0.5) = (0.5, 1.0).
		col0 := m.EnsureConstantComposite(s.Vec2, one, zero)
		col1 := m.EnsureConstantComposite(s.Vec2, zero, two)
		mat := m.EnsureConstantComposite(mat2, col0, col1)
		v := m.EnsureConstantComposite(s.Vec2, half, half)
		r := b.Emit(spirv.OpMatrixTimesVector, s.Vec2, mat, v)
		x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(r), 0)
		y := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(r), 1)
		c1 := b.Emit(spirv.OpFOrdEqual, s.Bool, x, half)
		c2 := b.Emit(spirv.OpFOrdEqual, s.Bool, y, one)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, c1, c2)
		return boolToFloat(b, s, both)
	})
}

func TestVectorwiseArithmetic(t *testing.T) {
	expectTrue(t, "lanewise", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		a := m.EnsureConstantFloat(0.25)
		c := m.EnsureConstantFloat(0.5)
		v1 := m.EnsureConstantComposite(s.Vec2, a, c)
		v2 := m.EnsureConstantComposite(s.Vec2, c, a)
		sum := b.Emit(spirv.OpFAdd, s.Vec2, v1, v2) // (0.75, 0.75)
		x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(sum), 0)
		y := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(sum), 1)
		eqXY := b.Emit(spirv.OpFOrdEqual, s.Bool, x, y)
		want := m.EnsureConstantFloat(0.75)
		eqW := b.Emit(spirv.OpFOrdEqual, s.Bool, x, want)
		both := b.Emit(spirv.OpLogicalAnd, s.Bool, eqXY, eqW)
		return boolToFloat(b, s, both)
	})
}

func TestUndefAndConstantNull(t *testing.T) {
	expectTrue(t, "null-undef", func(b *spirv.Builder, s *spirv.FragmentShell) spirv.ID {
		m := b.Mod
		nul := m.EnsureConstantNull(s.Float)
		zero := m.EnsureConstantFloat(0)
		eq := b.Emit(spirv.OpFOrdEqual, s.Bool, nul, zero)
		return boolToFloat(b, s, eq)
	})
}
