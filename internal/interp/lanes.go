package interp

import (
	"math/bits"
	"sync"
)

// This file is the lane VM: warp-style execution of a compiled Program over
// groups of up to MaxLanes pixels at once. One decoded instruction is
// dispatched per group, amortizing dispatch, block bookkeeping, ϕ staging and
// step accounting across the lanes the way a GPU warp does, while the actual
// scalar fast paths run as tight loops over contiguous memory.
//
// Layout is struct-of-arrays: a frame for a function with S slots is a
// []Value of length S*G where slot s of lane k lives at fr[s*G+k] — the G
// lanes of a slot are adjacent, so the per-instruction inner loop walks
// consecutive memory.
//
// Control flow is uniform per group. Branches, switch jump tables and ϕ
// parallel moves execute once while every active lane agrees on the edge.
// When lanes disagree — or a lane hits anything the uniform path cannot
// express (a fault instruction, an unset-slot read with no fallback, a
// step-limit or call-depth overrun, an operand shape the shared semantic
// helpers reject) — the affected lanes are retired: their bits leave the
// active mask and their pixels are re-rendered from scratch on the scalar
// VM, which remains the bitwise reference. The lane VM therefore never
// constructs a fault message of its own; every fault a render reports was
// produced by the scalar machine, so messages are identical by construction.
//
// Like RenderParallel's band split, lane mode gives each lane its own global
// cells (G interleaved pixel streams instead of one): modules whose output
// is independent of cross-pixel global-state history — the same property the
// existing parallel renderer relies on — render byte-identically.

// laneVM executes a compiled Program over a group of G pixel lanes.
type laneVM struct {
	p     *Program
	G     int
	fixed [][]Value   // per lane: constants + that lane's global pointers
	cells [][]Cell    // per lane: global cells
	arena [][][]Value // per function: stack of reusable SoA frames (nslots*G)
	valArena
	scratch []Value // ϕ parallel-move staging, moves-major: [move*G+lane]
	argbuf  []Value // call-argument staging, args-major: [arg*G+lane]
	retbuf  []Value // per-lane return values of the innermost call
	steps   int     // shared: the uniform path costs every lane the same steps
	depth   int
	bailMin int // bail to scalar when a group's live mask drops below this
	stats   LaneStats
}

// newLaneVM builds a lane machine with G lanes. All staging buffers are
// sized from the Program's compile-time maxima, so the uniform path
// allocates nothing per pixel or per group.
func (p *Program) newLaneVM(in Inputs, G int) *laneVM {
	lv := &laneVM{p: p, G: G}
	lv.cells = make([][]Cell, G)
	lv.fixed = make([][]Value, G)
	for k := 0; k < G; k++ {
		lv.cells[k], lv.fixed[k] = p.newState(in)
	}
	lv.arena = make([][][]Value, len(p.funcs))
	lv.scratch = make([]Value, p.maxPhiMoves*G)
	lv.argbuf = make([]Value, p.maxCallArgs*G)
	lv.retbuf = make([]Value, G)
	if G >= 2 {
		// A warp whittled down to one live lane pays full uniform-path
		// bookkeeping for zero amortization — strictly slower than the
		// scalar VM. Retire such stragglers early (exec's bail-out); their
		// pixels re-render on the scalar machine, so only time moves.
		lv.bailMin = 2
	}
	return lv
}

// acquire returns a cleared SoA frame for function f.
func (lv *laneVM) acquire(f int32) []Value {
	pool := lv.arena[f]
	if n := len(pool); n > 0 {
		fr := pool[n-1]
		lv.arena[f] = pool[:n-1]
		clear(fr)
		return fr
	}
	return make([]Value, lv.p.funcs[f].nslots*lv.G)
}

func (lv *laneVM) release(f int32, fr []Value) {
	lv.arena[f] = append(lv.arena[f], fr)
}

// setCoord updates lane k's coordinate input cell in place when possible,
// mirroring vmachine.setCoord.
func (lv *laneVM) setCoord(k int, cx, cy float32) {
	v := &lv.cells[k][lv.p.coord].V
	if v.Kind == KindComposite && len(v.Elems) == 2 &&
		v.Elems[0].Kind == KindFloat && v.Elems[1].Kind == KindFloat {
		v.Elems[0].F = cx
		v.Elems[1].F = cy
		return
	}
	*v = Vec2(cx, cy)
}

// resetColor writes the output zero into lane k's color cell.
func (lv *laneVM) resetColor(k int) {
	resetValue(&lv.cells[k][lv.p.color].V, lv.p.colorZero)
}

// readLane resolves an operand ref for lane k. ok=false means the read
// faults on the scalar machine; the caller retires the lane.
func (lv *laneVM) readLane(pf *pfunc, fr []Value, ref int32, k int) (Value, bool) {
	if ref >= 0 {
		if v := fr[int(ref)*lv.G+k]; v.Kind != KindUnset {
			return v, true
		}
		if fb := pf.fallback[ref]; fb != refNone {
			return lv.fixed[k][-fb-1], true
		}
		return Value{}, false
	}
	return lv.fixed[k][-ref-1], true
}

// laneOperand is readLane returning a pointer instead of a copy, with the
// slot offset and fallback hoisted by the caller (off = ref*G, fb =
// pf.fallback[ref] when ref >= 0; both ignored otherwise). nil means the
// read faults on the scalar machine. Small enough to inline into the hot
// loops, where the 48-byte Value copy readLane returns would dominate.
func (lv *laneVM) laneOperand(fr []Value, ref int32, off int, fb int32, k int) *Value {
	if ref < 0 {
		return &lv.fixed[k][-ref-1]
	}
	if v := &fr[off+k]; v.Kind != KindUnset {
		return v
	}
	if fb != refNone {
		return &lv.fixed[k][-fb-1]
	}
	return nil
}

// storeLane copies *v into slot *o. Scalar values land as field writes that
// skip the GC write barrier; this is sound only when the slot's Elems/Ptr
// are nil, which the dynamic check guarantees (a stale pointer is never
// left behind, because there is no pointer to begin with).
func storeLane(o, v *Value) {
	if v.Kind < KindComposite && o.Elems == nil && o.Ptr == nil {
		o.Kind, o.B, o.Bits, o.F = v.Kind, v.B, v.Bits, v.F
		return
	}
	*o = *v
}

// call runs funcs[fidx] across the lanes in mask. args is SoA
// ([arg*G+lane], valid only for mask lanes); per-lane return values land in
// ret. The three result masks partition mask: lanes that completed normally,
// lanes retired to the scalar VM, and lanes discarded by OpKill. Faults the
// scalar machine raises before entering the body (depth, arity, empty body)
// are uniform, so they retire the whole group.
func (lv *laneVM) call(fidx int32, args []Value, nargs int, mask uint32, ret []Value) (alive, retired, killed uint32) {
	pf := &lv.p.funcs[fidx]
	lv.depth++
	defer func() { lv.depth-- }()
	if lv.depth > maxCallDepth || nargs != pf.nparams || pf.noBlocks != nil {
		return 0, mask, 0
	}
	fr := lv.acquire(fidx)
	G := lv.G
	for i, s := range pf.paramSlots {
		copy(fr[int(s)*G:(int(s)+1)*G], args[i*G:(i+1)*G])
	}
	alive, retired, killed = lv.exec(pf, fr, mask, ret)
	lv.release(fidx, fr)
	return alive, retired, killed
}

// exec interprets one activation of pf for every lane in mask at once.
func (lv *laneVM) exec(pf *pfunc, fr []Value, mask uint32, ret []Value) (alive, retired, killed uint32) {
	G := lv.G
	act := mask
	bi := int32(0)
	first := true
	var moves []pmove
	direct := false
	for {
		b := &pf.blocks[bi]
		lv.steps++
		if lv.steps > MaxSteps {
			return 0, retired | act, killed
		}
		if first {
			first = false
			if pf.entryPhiFault != nil {
				return 0, retired | act, killed
			}
		} else if len(moves) > 0 {
			if direct {
				// The plan proved no destination doubles as a source, so
				// sequential copies observe the same values the staged
				// parallel moves would, at half the Value traffic. A lane
				// whose read faults retires; its half-moved frame is
				// irrelevant, the pixel re-renders from scratch.
				for i := range moves {
					mv := &moves[i]
					d := int(mv.dst) * G
					dvm := fr[d : d+G : d+G]
					src := mv.src
					if src >= 0 {
						sOff := int(src) * G
						sv := fr[sOff : sOff+G : sOff+G][:len(dvm)]
						fb := pf.fallback[src]
						for k := range dvm {
							if act>>k&1 == 0 {
								continue
							}
							v := &sv[k]
							if v.Kind == KindUnset {
								if v = lv.laneOperand(fr, src, sOff, fb, k); v == nil {
									act &^= 1 << k
									retired |= 1 << k
									continue
								}
							}
							storeLane(&dvm[k], v)
						}
					} else {
						for k := range dvm {
							if act>>k&1 == 0 {
								continue
							}
							storeLane(&dvm[k], &lv.fixed[k][-src-1])
						}
					}
				}
				if act == 0 {
					return 0, retired, killed
				}
			} else {
				// ϕ moves read simultaneously: stage every source for every
				// lane, then write. A lane whose source read faults retires;
				// a stage fault is uniform and retires the group.
				st := lv.scratch[:len(moves)*G]
				for i := range moves {
					mv := &moves[i]
					if mv.fault != nil {
						return 0, retired | act, killed
					}
					off := i * G
					for m := act; m != 0; {
						k := bits.TrailingZeros32(m)
						m &= m - 1
						v, ok := lv.readLane(pf, fr, mv.src, k)
						if !ok {
							act &^= 1 << k
							retired |= 1 << k
							continue
						}
						st[off+k] = v
					}
				}
				if act == 0 {
					return 0, retired, killed
				}
				for i := range moves {
					d := int(moves[i].dst) * G
					off := i * G
					for m := act; m != 0; {
						k := bits.TrailingZeros32(m)
						m &= m - 1
						fr[d+k] = st[off+k]
					}
				}
			}
		}

		for ii := range b.code {
			lv.steps++
			if lv.steps > MaxSteps {
				return 0, retired | act, killed
			}
			ins := &b.code[ii]
			switch ins.op {
			case popFault:
				return 0, retired | act, killed

			case popBin:
				// The hot case. Operand reads and the primitive fast paths
				// are inlined per lane with the slot offsets hoisted; slot
				// lanes are adjacent, so the loop walks contiguous memory.
				d := int(ins.dst) * G
				aOff, bOff := int(ins.a)*G, int(ins.b)*G
				slow := act
				if ins.prim != bpNone {
					// Unboxed prim loops: operands resolve to pointers, the
					// arithmetic is a Go expression on the payload fields,
					// and the result is written in place as Kind+payload. A
					// popBin result is always a scalar and its dst slot is
					// written by no other instruction (slots are per result
					// id), so the destination's Elems/Ptr fields are nil for
					// the frame's whole lifetime — in-place writes never
					// leave a stale pointer and never take a write barrier.
					//
					// Anything else — operand kinds that don't match the
					// prim's class, unset slots (fallback or retire), faults —
					// drops to the general loop below, which produces the
					// canonical behaviour. Fixed lane-invariant operands were
					// resolved to aConst/bConst at plan time; per-lane global
					// pointers cleared prim, so they never reach this path.
					//
					// The lane walk is dense with a mask test, not a
					// TrailingZeros scan: uniform groups have every bit set,
					// so the test never mispredicts, and the pre-sliced
					// operand windows let the compiler drop the per-lane
					// bounds checks.
					dv := fr[d : d+G : d+G]
					av, bs := dv, dv // placeholders; only read when the ref is a slot
					if ins.a >= 0 {
						av = fr[aOff : aOff+G : aOff+G]
					}
					if ins.b >= 0 {
						bs = fr[bOff : bOff+G : bOff+G]
					}
					// Equal-length re-slices: the conditional assignments
					// above hide the common length G from the prover, and
					// these put it back so av[k]/bs[k] need no bounds checks.
					av, bs = av[:len(dv)], bs[:len(dv)]
					aConst, bConst := ins.aConst, ins.bConst
					slow = 0
					// The prim switch sits outside the lane walk — one
					// dispatch per group, and each arm is a loop whose body
					// is a single expression on the payload fields.
					switch ins.fclass {
					case fcFloat:
						switch ins.prim {
						case bpFAdd:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.F = KindFloat, a.F+bv.F
							}
						case bpFSub:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.F = KindFloat, a.F-bv.F
							}
						case bpFMul:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.F = KindFloat, a.F*bv.F
							}
						default: // bpFDiv; x/0 is IEEE ±Inf, defined
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.F = KindFloat, a.F/bv.F
							}
						}
					case fcInt:
						switch ins.prim {
						case bpIAdd:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.Bits = KindInt, a.Bits+bv.Bits
							}
						case bpISub:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.Bits = KindInt, a.Bits-bv.Bits
							}
						case bpIMul:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.Bits = KindInt, a.Bits*bv.Bits
							}
						case bpAnd:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.Bits = KindInt, a.Bits&bv.Bits
							}
						case bpOr:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.Bits = KindInt, a.Bits|bv.Bits
							}
						default: // bpXor
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.Bits = KindInt, a.Bits^bv.Bits
							}
						}
					case fcFloatCmp:
						switch ins.prim {
						case bpFEq:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.F == bv.F
							}
						case bpFNe: // ordered: NaN compares not-equal to everything, excluded
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.F != bv.F && a.F == a.F && bv.F == bv.F
							}
						case bpFLt:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.F < bv.F
							}
						case bpFGt:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.F > bv.F
							}
						case bpFLe:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.F <= bv.F
							}
						default: // bpFGe
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindFloat || bv.Kind != KindFloat {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.F >= bv.F
							}
						}
					case fcIntCmp:
						switch ins.prim {
						case bpIEq:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.Bits == bv.Bits
							}
						case bpINe:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, a.Bits != bv.Bits
							}
						case bpSLt:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, int32(a.Bits) < int32(bv.Bits)
							}
						case bpSLe:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, int32(a.Bits) <= int32(bv.Bits)
							}
						case bpSGt:
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, int32(a.Bits) > int32(bv.Bits)
							}
						default: // bpSGe
							for k := range dv {
								if act>>k&1 == 0 {
									continue
								}
								a, bv := aConst, bConst
								if a == nil {
									a = &av[k]
								}
								if bv == nil {
									bv = &bs[k]
								}
								if a.Kind != KindInt || bv.Kind != KindInt {
									slow |= 1 << k
									continue
								}
								o := &dv[k]
								o.Kind, o.B = KindBool, int32(a.Bits) >= int32(bv.Bits)
							}
						}
					}
				}
				for m := slow; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					var a, bv Value
					if r := ins.a; r < 0 {
						a = lv.fixed[k][-r-1]
					} else if a = fr[aOff+k]; a.Kind == KindUnset {
						if fb := pf.fallback[r]; fb != refNone {
							a = lv.fixed[k][-fb-1]
						} else {
							act &^= 1 << k
							retired |= 1 << k
							continue
						}
					}
					if r := ins.b; r < 0 {
						bv = lv.fixed[k][-r-1]
					} else if bv = fr[bOff+k]; bv.Kind == KindUnset {
						if fb := pf.fallback[r]; fb != refNone {
							bv = lv.fixed[k][-fb-1]
						} else {
							act &^= 1 << k
							retired |= 1 << k
							continue
						}
					}
					switch {
					case ins.fclass == fcFloat && a.Kind == KindFloat && bv.Kind == KindFloat:
						fr[d+k] = Value{Kind: KindFloat, F: ins.binF(a.F, bv.F)}
					case ins.fclass == fcFloatCmp && a.Kind == KindFloat && bv.Kind == KindFloat:
						fr[d+k] = Value{Kind: KindBool, B: ins.cmpF(a.F, bv.F)}
					case ins.fclass == fcInt && a.Kind == KindInt && bv.Kind == KindInt:
						fr[d+k] = Value{Kind: KindInt, Bits: ins.binI(a.Bits, bv.Bits)}
					case ins.fclass == fcIntCmp && a.Kind == KindInt && bv.Kind == KindInt:
						fr[d+k] = Value{Kind: KindBool, B: ins.cmpI(a.Bits, bv.Bits)}
					default:
						v, err := lv.evalBin(ins, a, bv)
						if err != nil {
							act &^= 1 << k
							retired |= 1 << k
							continue
						}
						fr[d+k] = v
					}
				}

			case popUn:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					a, ok := lv.readLane(pf, fr, ins.a, k)
					if !ok {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					v, err := lv.lanes1(a, ins.un)
					if err != nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = v
				}

			case popSelect:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					c, ok1 := lv.readLane(pf, fr, ins.a, k)
					a, ok2 := lv.readLane(pf, fr, ins.b, k)
					bv, ok3 := lv.readLane(pf, fr, ins.c, k)
					if !ok1 || !ok2 || !ok3 {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					v, err := selectValue(c, a, bv)
					if err != nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = v
				}

			case popVecScalar:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					vec, ok1 := lv.readLane(pf, fr, ins.a, k)
					s, ok2 := lv.readLane(pf, fr, ins.b, k)
					if !ok1 || !ok2 {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = vectorTimesScalar(vec, s)
				}

			case popMatVec:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					mat, ok1 := lv.readLane(pf, fr, ins.a, k)
					vec, ok2 := lv.readLane(pf, fr, ins.b, k)
					if !ok1 || !ok2 {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					v, err := matrixTimesVector(mat, vec)
					if err != nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = v
				}

			case popDot:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					a, ok1 := lv.readLane(pf, fr, ins.a, k)
					bv, ok2 := lv.readLane(pf, fr, ins.b, k)
					if !ok1 || !ok2 {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = dot(a, bv)
				}

			case popConstruct:
				d := int(ins.dst) * G
			construct:
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					elems := lv.allocElems(len(ins.args))
					for i, r := range ins.args {
						var fb int32 = refNone
						if r >= 0 {
							fb = pf.fallback[r]
						}
						v := lv.laneOperand(fr, r, int(r)*G, fb, k)
						if v == nil {
							act &^= 1 << k
							retired |= 1 << k
							continue construct
						}
						elems[i] = *v
					}
					fr[d+k] = Value{Kind: KindComposite, Elems: elems}
				}

			case popExtract:
				d := int(ins.dst) * G
				aOff := int(ins.a) * G
				aFb := refNone
				if ins.a >= 0 {
					aFb = pf.fallback[ins.a]
				}
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					v := lv.laneOperand(fr, ins.a, aOff, aFb, k)
					if v == nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					if len(ins.lits) == 1 && v.Kind == KindComposite && int(ins.lits[0]) < len(v.Elems) {
						storeLane(&fr[d+k], &v.Elems[ins.lits[0]])
						continue
					}
					w, err := compositeExtract(*v, ins.lits)
					if err != nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = w
				}

			case popInsert:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					obj, ok1 := lv.readLane(pf, fr, ins.a, k)
					base, ok2 := lv.readLane(pf, fr, ins.b, k)
					if !ok1 || !ok2 {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					v, err := compositeInsert(obj, base, ins.lits)
					if err != nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = v
				}

			case popShuffle:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					a, ok1 := lv.readLane(pf, fr, ins.a, k)
					bv, ok2 := lv.readLane(pf, fr, ins.b, k)
					if !ok1 || !ok2 {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					v, err := vectorShuffle(a, bv, ins.lits)
					if err != nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = v
				}

			case popCopy:
				d := int(ins.dst) * G
				aOff := int(ins.a) * G
				aFb := refNone
				if ins.a >= 0 {
					aFb = pf.fallback[ins.a]
				}
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					v := lv.laneOperand(fr, ins.a, aOff, aFb, k)
					if v == nil {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					storeLane(&fr[d+k], v)
				}

			case popZero:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					fr[d+k] = lv.arenaClone(ins.zero)
				}

			case popVariable:
				d := int(ins.dst) * G
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					var init Value
					if ins.a != refNone {
						v, ok := lv.readLane(pf, fr, ins.a, k)
						if !ok {
							act &^= 1 << k
							retired |= 1 << k
							continue
						}
						init = v.Clone()
					} else {
						init = ins.zero.Clone()
					}
					// A fresh cell per lane per execution, as in the scalar
					// VM: escaped pointers from earlier activations stay
					// valid, and lanes never share mutable storage.
					fr[d+k] = Value{Kind: KindPointer, Ptr: &Pointer{Cell: &Cell{V: init}}}
				}

			case popLoad:
				d := int(ins.dst) * G
				aOff := int(ins.a) * G
				aFb := refNone
				if ins.a >= 0 {
					aFb = pf.fallback[ins.a]
				}
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					pv := lv.laneOperand(fr, ins.a, aOff, aFb, k)
					if pv == nil || pv.Kind != KindPointer {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					fr[d+k] = lv.loadLanePtr(pv.Ptr)
				}

			case popStore:
				aOff, bOff := int(ins.a)*G, int(ins.b)*G
				aFb, bFb := refNone, refNone
				if ins.a >= 0 {
					aFb = pf.fallback[ins.a]
				}
				if ins.b >= 0 {
					bFb = pf.fallback[ins.b]
				}
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					pv := lv.laneOperand(fr, ins.a, aOff, aFb, k)
					v := lv.laneOperand(fr, ins.b, bOff, bFb, k)
					if pv == nil || v == nil || pv.Kind != KindPointer {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					storeLanePtr(pv.Ptr, *v)
				}

			case popAccessChain:
				d := int(ins.dst) * G
			chain:
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					base, ok := lv.readLane(pf, fr, ins.a, k)
					if !ok || base.Kind != KindPointer {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					ptr := base.Ptr
					for _, r := range ins.args {
						idx, ok := lv.readLane(pf, fr, r, k)
						if !ok {
							act &^= 1 << k
							retired |= 1 << k
							continue chain
						}
						ptr = ptr.Elem(int(int32(idx.Bits)))
					}
					fr[d+k] = Value{Kind: KindPointer, Ptr: ptr}
				}

			case popCall:
				na := len(ins.args)
				args := lv.argbuf[:na*G]
				for i, r := range ins.args {
					off := i * G
					for m := act; m != 0; {
						k := bits.TrailingZeros32(m)
						m &= m - 1
						v, ok := lv.readLane(pf, fr, r, k)
						if !ok {
							act &^= 1 << k
							retired |= 1 << k
							continue
						}
						args[off+k] = v
					}
				}
				if act == 0 {
					return 0, retired, killed
				}
				// argbuf is consumed (copied into the callee frame) before
				// the callee body runs, and retbuf is written only at the
				// callee's return and copied out immediately below — so one
				// shared buffer each suffices across nested calls.
				a2, r2, k2 := lv.call(ins.callee, args, na, act, lv.retbuf)
				act, retired, killed = a2, retired|r2, killed|k2
				if ins.dst != refNone {
					d := int(ins.dst) * G
					for m := act; m != 0; {
						k := bits.TrailingZeros32(m)
						m &= m - 1
						fr[d+k] = lv.retbuf[k]
					}
				}

			case popNop:
				// costs a step, like the scalar VM's popNop
			}
			if act == 0 {
				return 0, retired, killed
			}
		}

		t := &b.term
		var e *pedge
		switch t.kind {
		case tkBranch:
			e = &t.edges[0]
		case tkCondBr:
			var tMask, fMask uint32
			sel := t.sel
			selOff := int(sel) * G
			selFb := refNone
			if sel >= 0 {
				selFb = pf.fallback[sel]
			}
			if sel >= 0 {
				sv := fr[selOff : selOff+G : selOff+G]
				for k := range sv {
					if act>>k&1 == 0 {
						continue
					}
					c := &sv[k]
					if c.Kind != KindBool {
						if c = lv.laneOperand(fr, sel, selOff, selFb, k); c == nil || c.Kind != KindBool {
							act &^= 1 << k
							retired |= 1 << k
							continue
						}
					}
					if c.B {
						tMask |= 1 << k
					} else {
						fMask |= 1 << k
					}
				}
			} else {
				for m := act; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					c := lv.laneOperand(fr, sel, selOff, selFb, k)
					if c == nil || c.Kind != KindBool {
						act &^= 1 << k
						retired |= 1 << k
						continue
					}
					if c.B {
						tMask |= 1 << k
					} else {
						fMask |= 1 << k
					}
				}
			}
			switch {
			case tMask != 0 && fMask != 0:
				// Divergence: the majority keeps the warp, the minority
				// retires to the scalar VM (ties take the true edge).
				lv.stats.Divergences++
				if bits.OnesCount32(tMask) >= bits.OnesCount32(fMask) {
					act, retired = tMask, retired|fMask
					e = &t.edges[0]
				} else {
					act, retired = fMask, retired|tMask
					e = &t.edges[1]
				}
			case tMask != 0:
				act, e = tMask, &t.edges[0]
			case fMask != 0:
				act, e = fMask, &t.edges[1]
			default:
				return 0, retired, killed
			}
		case tkSwitch:
			// Per-lane edge via the jump table; the most popular edge keeps
			// the warp (ties break to the lowest edge index, which is
			// deterministic and semantics-neutral — losers retire).
			var votes [32]uint32 // votes[e]: mask of lanes choosing edge e
			for m := act; m != 0; {
				k := bits.TrailingZeros32(m)
				m &= m - 1
				sel, ok := lv.readLane(pf, fr, t.sel, k)
				if !ok || sel.Kind != KindInt {
					act &^= 1 << k
					retired |= 1 << k
					continue
				}
				ei := int32(0) // default edge
				if j, ok := t.jump[sel.Bits]; ok {
					ei = j
				}
				if int(ei) < len(votes) {
					votes[ei] |= 1 << k
				} else {
					// An edge index beyond the vote array (a pathological
					// switch with >32 cases): retire the lane rather than
					// complicate the uniform path.
					act &^= 1 << k
					retired |= 1 << k
				}
			}
			if act == 0 {
				return 0, retired, killed
			}
			best, bestN := 0, 0
			for ei := range votes {
				if n := bits.OnesCount32(votes[ei]); n > bestN {
					best, bestN = ei, n
				}
			}
			if win := votes[best]; win != act {
				lv.stats.Divergences++
				retired |= act &^ win
				act = win
			}
			e = &t.edges[best]
		case tkReturn:
			for m := act; m != 0; {
				k := bits.TrailingZeros32(m)
				m &= m - 1
				ret[k] = Value{}
			}
			return act, retired, killed
		case tkReturnValue:
			rOff := int(t.ret) * G
			rFb := refNone
			if t.ret >= 0 {
				rFb = pf.fallback[t.ret]
			}
			for m := act; m != 0; {
				k := bits.TrailingZeros32(m)
				m &= m - 1
				v := lv.laneOperand(fr, t.ret, rOff, rFb, k)
				if v == nil {
					act &^= 1 << k
					retired |= 1 << k
					continue
				}
				ret[k] = *v
			}
			return act, retired, killed
		case tkKill:
			return 0, retired, killed | act
		default: // tkFault
			return 0, retired | act, killed
		}
		if e.fault != nil {
			return 0, retired | act, killed
		}
		if bits.OnesCount32(act) < lv.bailMin {
			// Bail-to-scalar early-out: divergence has whittled the warp
			// below two live lanes, so every further uniform dispatch costs
			// more here than on the scalar VM. Retire the stragglers now.
			return 0, retired | act, killed
		}
		moves, direct = e.moves, e.direct
		bi = e.target
	}
}

// storeLanePtr is Pointer.Store for the lane VM: resetValue reuses the
// destination's storage when it already holds a same-shaped composite,
// instead of allocating a fresh deep clone per store. Cells never share
// structure with frames or the arena — every load out of a cell copies — so
// overwriting in place is indistinguishable from the scalar machine's
// replace-with-clone.
func storeLanePtr(p *Pointer, val Value) {
	v := &p.Cell.V
	for _, i := range p.Path {
		v = &v.Elems[i]
	}
	resetValue(v, val)
}

// loadLanePtr is vmachine.loadPtr for the lane VM: a pointer load whose copy
// comes from the shared group arena.
func (lv *laneVM) loadLanePtr(p *Pointer) Value {
	v := &p.Cell.V
	for _, i := range p.Path {
		v = &v.Elems[i]
	}
	return lv.arenaClone(*v)
}

// Adaptive width selection probes the first row at this width; its group
// count (w/8 groups on the default 64-wide grid) gives the divergence rate
// enough samples to be meaningful at the cost of 1/h of the render.
const autoProbeLanes = 8

// autoDivergenceMax is the divergence-plus-fallback rate (events per group)
// above which lane mode stops paying for itself and the adaptive policy
// drops to the scalar VM; below it, 8 lanes win, and a perfectly uniform
// probe (no divergence, no fallback) escalates to the full 16.
const autoDivergenceMax = 0.25

// laneRejectFallbackRate is the probe's retired-pixel fraction above which
// the predicted speedup is below 1x at every width: each retired pixel is
// paid for twice (the abandoned lane work plus a full scalar re-render), so
// even if the surviving majority amortized perfectly, a retire rate this
// high makes the lane render slower than going straight to the scalar VM —
// exactly the divergent-stripe shape BenchmarkInterpVMLanes pins at ~0.5x.
const laneRejectFallbackRate = 0.2

// pickLanes is the adaptive lane-width policy behind SetLanesAuto: render
// the first row in lane groups of autoProbeLanes into a throwaway row
// buffer, then pick the width the observed control-flow behavior earns.
// Pure policy — every width produces byte-identical images and faults
// (pinned by the differential suite), so the choice only moves time. A
// faulting probe picks scalar: the fault is the render's result and the
// scalar VM reaches it most cheaply. Probe stats stay out of LaneTotals
// (only RenderParallelLanes accumulates there).
func (p *Program) pickLanes(in Inputs) int {
	w, h := in.W, in.H
	if w == 0 {
		w = DefaultGrid
	}
	if h == 0 {
		h = DefaultGrid
	}
	// Full W/H keep the coordinate math exact; only row 0 is backed.
	probe := &Image{W: w, H: h, Pix: make([]uint8, 4*w)}
	lv := p.newLaneVM(in, autoProbeLanes)
	_, err := p.renderRowsLanes(lv, in, probe, 0, 1)
	pick := 0
	switch st := lv.stats; {
	case err != nil:
		pick = 0
	case float64(st.Fallbacks) >= laneRejectFallbackRate*float64(w):
		// The probe rendered w pixels; this many of them retired to the
		// scalar VM. The measured retire rate predicts a sub-1x speedup at
		// any width (see laneRejectFallbackRate), so reject lane mode
		// outright rather than letting the per-group divergence heuristic
		// weigh in.
		pick = 0
	case st.Divergences == 0 && st.Fallbacks == 0:
		pick = MaxLanes
	case float64(st.Divergences+st.Fallbacks) <= autoDivergenceMax*float64(st.Groups):
		pick = autoProbeLanes
	}
	switch pick {
	case 0:
		autoPickTotals[0].Add(1)
	case autoProbeLanes:
		autoPickTotals[1].Add(1)
	default:
		autoPickTotals[2].Add(1)
	}
	return pick
}

// RenderParallelLanes renders with up to workers goroutines over disjoint
// row bands, each executing groups of `lanes` pixels on a laneVM with
// scalar-VM fallback for divergent or faulting lanes. The output contract is
// identical to RenderParallel: images are byte-equal to the scalar render
// for any lane and worker count, and a faulting module reports the fault of
// the scan-order-first pixel. The returned LaneStats aggregate all bands;
// the same numbers accumulate into the process-wide LaneTotals.
func (p *Program) RenderParallelLanes(in Inputs, workers, lanes int) (*Image, LaneStats, error) {
	if lanes < 1 {
		lanes = 1
	}
	if lanes > MaxLanes {
		lanes = MaxLanes
	}
	w, h := in.W, in.H
	if w == 0 {
		w = DefaultGrid
	}
	if h == 0 {
		h = DefaultGrid
	}
	img := &Image{W: w, H: h, Pix: make([]uint8, 4*w*h)}
	if workers > h {
		workers = h
	}
	if workers <= 1 {
		lv := p.newLaneVM(in, lanes)
		_, err := p.renderRowsLanes(lv, in, img, 0, h)
		addLaneTotals(lv.stats)
		if err != nil {
			return nil, lv.stats, err
		}
		return img, lv.stats, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstPix int
		firstErr error
		total    LaneStats
	)
	for b := 0; b < workers; b++ {
		y0, y1 := b*h/workers, (b+1)*h/workers
		wg.Add(1)
		go func(y0, y1 int) {
			defer wg.Done()
			lv := p.newLaneVM(in, lanes)
			pix, err := p.renderRowsLanes(lv, in, img, y0, y1)
			mu.Lock()
			total.add(lv.stats)
			if err != nil && (firstErr == nil || pix < firstPix) {
				firstPix, firstErr = pix, err
			}
			mu.Unlock()
		}(y0, y1)
	}
	wg.Wait()
	addLaneTotals(total)
	if firstErr != nil {
		return nil, total, firstErr
	}
	return img, total, nil
}

// renderRowsLanes renders rows [y0, y1) in lane groups along x. Retired
// lanes are re-rendered immediately — in ascending lane order, before the
// next group starts — on a lazily created scalar machine, so the first fault
// encountered is the fault a serial scalar scan of the band would hit first
// (lane-completed pixels never fault). On a fault it returns the pixel's
// scan-order index, like renderRows.
func (p *Program) renderRowsLanes(lv *laneVM, in Inputs, img *Image, y0, y1 int) (int, error) {
	w, h := img.W, img.H
	G := lv.G
	var svm *vmachine // scalar fallback machine, created on first retire
	for y := y0; y < y1; y++ {
		for x0 := 0; x0 < w; x0 += G {
			g := min(G, w-x0)
			for k := 0; k < g; k++ {
				if p.coord >= 0 {
					cx := (float32(x0+k) + 0.5) / float32(w)
					cy := (float32(y) + 0.5) / float32(h)
					lv.setCoord(k, cx, cy)
				}
				lv.resetColor(k)
			}
			// Per-group (not per-instruction, not per-pixel) resets: the
			// shared step budget and the element arena recycle once per
			// group; frames and staging buffers are reused across tiles.
			lv.steps = 0
			lv.eoff = 0
			lv.stats.Groups++
			alive, retiredM, killed := lv.call(p.entry, nil, 0, uint32(1)<<g-1, lv.retbuf)
			for m := alive; m != 0; {
				k := bits.TrailingZeros32(m)
				m &= m - 1
				pi := 4 * (y*w + x0 + k)
				writePixel(img.Pix[pi:pi+4:pi+4], lv.cells[k][p.color].V)
			}
			for m := killed; m != 0; {
				k := bits.TrailingZeros32(m)
				m &= m - 1
				pi := 4 * (y*w + x0 + k)
				img.Pix[pi], img.Pix[pi+1], img.Pix[pi+2], img.Pix[pi+3] = 0, 0, 0, 0
			}
			if retiredM != 0 {
				lv.stats.Fallbacks += uint64(bits.OnesCount32(retiredM))
				if svm == nil {
					svm = p.newVM(in)
				}
				for m := retiredM; m != 0; {
					k := bits.TrailingZeros32(m)
					m &= m - 1
					if pix, err := p.renderPixel(svm, img, x0+k, y); err != nil {
						return pix, err
					}
				}
			}
		}
	}
	return 0, nil
}
