package interp

import (
	"math"

	"spirvfuzz/internal/spirv"
)

// The scalar semantics of the lanewise binary opcodes live in primitive
// tables, one per operand class. binOps below is derived from them, and the
// plan compiler reads them directly to bake closure-free fast paths into
// compiled programs — both engines therefore share one definition of every
// arithmetic rule and cannot drift.

// binIntPrims: integer ops on raw bits, signedness per opcode.
var binIntPrims = map[spirv.Opcode]func(a, b uint32) uint32{
	spirv.OpIAdd: func(a, b uint32) uint32 { return a + b },
	spirv.OpISub: func(a, b uint32) uint32 { return a - b },
	spirv.OpIMul: func(a, b uint32) uint32 { return a * b },
	spirv.OpUDiv: func(a, b uint32) uint32 {
		if b == 0 {
			return 0 // division by zero is defined as zero in this dialect
		}
		return a / b
	},
	spirv.OpSDiv: func(a, b uint32) uint32 {
		if b == 0 {
			return 0
		}
		sa, sb := int32(a), int32(b)
		if sa == math.MinInt32 && sb == -1 {
			return a // wraps, defined
		}
		return uint32(sa / sb)
	},
	spirv.OpUMod: func(a, b uint32) uint32 {
		if b == 0 {
			return 0
		}
		return a % b
	},
	spirv.OpSRem: func(a, b uint32) uint32 {
		if b == 0 || (int32(a) == math.MinInt32 && int32(b) == -1) {
			return 0
		}
		return uint32(int32(a) % int32(b))
	},
	spirv.OpSMod: func(a, b uint32) uint32 {
		if b == 0 || (int32(a) == math.MinInt32 && int32(b) == -1) {
			return 0
		}
		r := int32(a) % int32(b)
		if r != 0 && (r < 0) != (int32(b) < 0) {
			r += int32(b)
		}
		return uint32(r)
	},
	spirv.OpBitwiseOr:  func(a, b uint32) uint32 { return a | b },
	spirv.OpBitwiseXor: func(a, b uint32) uint32 { return a ^ b },
	spirv.OpBitwiseAnd: func(a, b uint32) uint32 { return a & b },
}

// binFloatPrims: float arithmetic; x/0 is IEEE ±Inf, defined.
var binFloatPrims = map[spirv.Opcode]func(a, b float32) float32{
	spirv.OpFAdd: func(a, b float32) float32 { return a + b },
	spirv.OpFSub: func(a, b float32) float32 { return a - b },
	spirv.OpFMul: func(a, b float32) float32 { return a * b },
	spirv.OpFDiv: func(a, b float32) float32 { return a / b },
	spirv.OpFMod: func(a, b float32) float32 {
		r := float32(math.Mod(float64(a), float64(b)))
		if r != 0 && (r < 0) != (b < 0) {
			r += b
		}
		return r
	},
}

var binBoolPrims = map[spirv.Opcode]func(a, b bool) bool{
	spirv.OpLogicalOr:  func(a, b bool) bool { return a || b },
	spirv.OpLogicalAnd: func(a, b bool) bool { return a && b },
}

var binIntCmpPrims = map[spirv.Opcode]func(a, b uint32) bool{
	spirv.OpIEqual:            func(a, b uint32) bool { return a == b },
	spirv.OpINotEqual:         func(a, b uint32) bool { return a != b },
	spirv.OpSGreaterThan:      func(a, b uint32) bool { return int32(a) > int32(b) },
	spirv.OpSGreaterThanEqual: func(a, b uint32) bool { return int32(a) >= int32(b) },
	spirv.OpSLessThan:         func(a, b uint32) bool { return int32(a) < int32(b) },
	spirv.OpSLessThanEqual:    func(a, b uint32) bool { return int32(a) <= int32(b) },
}

var binFloatCmpPrims = map[spirv.Opcode]func(a, b float32) bool{
	spirv.OpFOrdEqual:            func(a, b float32) bool { return a == b },
	spirv.OpFOrdNotEqual:         func(a, b float32) bool { return a != b && a == a && b == b },
	spirv.OpFOrdLessThan:         func(a, b float32) bool { return a < b },
	spirv.OpFOrdGreaterThan:      func(a, b float32) bool { return a > b },
	spirv.OpFOrdLessThanEqual:    func(a, b float32) bool { return a <= b },
	spirv.OpFOrdGreaterThanEqual: func(a, b float32) bool { return a >= b },
}

// binOps maps each lanewise binary opcode to its boxed scalar semantics,
// assembled from the primitive tables above.
var binOps = func() map[spirv.Opcode]func(a, b Value) (Value, error) {
	t := make(map[spirv.Opcode]func(a, b Value) (Value, error))
	for op, f := range binIntPrims {
		t[op] = intOp(f)
	}
	for op, f := range binFloatPrims {
		t[op] = floatOp(f)
	}
	for op, f := range binBoolPrims {
		t[op] = boolOp(f)
	}
	for op, f := range binIntCmpPrims {
		t[op] = intCmp(f)
	}
	for op, f := range binFloatCmpPrims {
		t[op] = floatCmp(f)
	}
	return t
}()

// unOps is the lanewise unary companion of binOps, likewise shared between
// both engines.
var unOps = map[spirv.Opcode]func(a Value) (Value, error){
	spirv.OpSNegate: intOp1(func(a uint32) uint32 { return -a }),
	spirv.OpNot:     intOp1(func(a uint32) uint32 { return ^a }),
	spirv.OpFNegate: floatOp1(func(a float32) float32 { return -a }),
	spirv.OpLogicalNot: func(a Value) (Value, error) {
		if a.Kind != KindBool {
			return Value{}, faultf("LogicalNot of non-boolean")
		}
		return BoolVal(!a.B), nil
	},
	spirv.OpConvertFToS: func(a Value) (Value, error) {
		if a.Kind != KindFloat {
			return Value{}, faultf("ConvertFToS of non-float")
		}
		f := float64(a.F)
		switch {
		case math.IsNaN(f):
			return IntVal(0), nil
		case f > math.MaxInt32:
			return IntVal(math.MaxInt32), nil
		case f < math.MinInt32:
			return IntVal(math.MinInt32), nil
		}
		return IntVal(int32(f)), nil
	},
	spirv.OpConvertSToF: func(a Value) (Value, error) {
		if a.Kind != KindInt {
			return Value{}, faultf("ConvertSToF of non-int")
		}
		return FloatVal(float32(int32(a.Bits))), nil
	},
}

// bitcastFn builds the lanewise reinterpret function for OpBitcast to result
// type t. The direction depends only on the static type, so the plan
// compiler bakes the returned closure into the instruction stream.
func bitcastFn(m *spirv.Module, t spirv.ID) func(Value) (Value, error) {
	toFloat := m.IsFloatType(t)
	if elem, _, ok := m.VectorInfo(t); ok {
		toFloat = m.IsFloatType(elem)
	}
	return func(x Value) (Value, error) {
		switch {
		case x.Kind == KindFloat && !toFloat:
			return UintVal(math.Float32bits(x.F)), nil
		case x.Kind == KindInt && toFloat:
			return FloatVal(math.Float32frombits(x.Bits)), nil
		}
		return x, nil
	}
}

// evalInstr executes one non-ϕ, non-terminator instruction.
func (mc *machine) evalInstr(fr *frame, ins *spirv.Instruction) error {
	get := func(i int) (Value, error) { return mc.get(fr, ins.IDOperand(i)) }
	set := func(v Value) { fr.vals[ins.Result] = v }

	bin := func(f func(a, b Value) (Value, error)) error {
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		v, err := mapLanes2(a, b, f)
		if err != nil {
			return err
		}
		set(v)
		return nil
	}
	un := func(f func(a Value) (Value, error)) error {
		a, err := get(0)
		if err != nil {
			return err
		}
		v, err := mapLanes1(a, f)
		if err != nil {
			return err
		}
		set(v)
		return nil
	}

	if f, ok := binOps[ins.Op]; ok {
		return bin(f)
	}
	if f, ok := unOps[ins.Op]; ok {
		return un(f)
	}

	switch ins.Op {
	case spirv.OpSelect:
		c, err := get(0)
		if err != nil {
			return err
		}
		a, err := get(1)
		if err != nil {
			return err
		}
		b, err := get(2)
		if err != nil {
			return err
		}
		v, err := selectValue(c, a, b)
		if err != nil {
			return err
		}
		set(v)
		return nil

	case spirv.OpBitcast:
		return un(bitcastFn(mc.m, ins.Type))

	case spirv.OpVectorTimesScalar:
		vec, err := get(0)
		if err != nil {
			return err
		}
		s, err := get(1)
		if err != nil {
			return err
		}
		set(vectorTimesScalar(vec, s))
		return nil

	case spirv.OpMatrixTimesVector:
		mat, err := get(0)
		if err != nil {
			return err
		}
		vec, err := get(1)
		if err != nil {
			return err
		}
		v, err := matrixTimesVector(mat, vec)
		if err != nil {
			return err
		}
		set(v)
		return nil

	case spirv.OpDot:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		set(dot(a, b))
		return nil

	case spirv.OpCompositeConstruct:
		elems := make([]Value, len(ins.Operands))
		for i := range ins.Operands {
			v, err := get(i)
			if err != nil {
				return err
			}
			elems[i] = v
		}
		set(Composite(elems...))
		return nil

	case spirv.OpCompositeExtract:
		v, err := get(0)
		if err != nil {
			return err
		}
		v, err = compositeExtract(v, ins.Operands[1:])
		if err != nil {
			return err
		}
		set(v)
		return nil

	case spirv.OpCompositeInsert:
		obj, err := get(0)
		if err != nil {
			return err
		}
		base, err := get(1)
		if err != nil {
			return err
		}
		v, err := compositeInsert(obj, base, ins.Operands[2:])
		if err != nil {
			return err
		}
		set(v)
		return nil

	case spirv.OpVectorShuffle:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		v, err := vectorShuffle(a, b, ins.Operands[2:])
		if err != nil {
			return err
		}
		set(v)
		return nil

	case spirv.OpCopyObject, spirv.OpUndef:
		if ins.Op == spirv.OpUndef {
			z, err := ZeroValue(mc.m, ins.Type)
			if err != nil {
				return err
			}
			set(z)
			return nil
		}
		v, err := get(0)
		if err != nil {
			return err
		}
		set(v)
		return nil

	case spirv.OpVariable:
		_, pointee, ok := mc.m.PointerInfo(ins.Type)
		if !ok {
			return faultf("OpVariable %%%d with non-pointer type", ins.Result)
		}
		var init Value
		if len(ins.Operands) > 1 {
			v, err := get(1)
			if err != nil {
				return err
			}
			init = v.Clone()
		} else {
			z, err := ZeroValue(mc.m, pointee)
			if err != nil {
				return err
			}
			init = z
		}
		cell := &Cell{V: init}
		fr.locals[ins.Result] = cell
		set(Value{Kind: KindPointer, Ptr: &Pointer{Cell: cell}})
		return nil

	case spirv.OpLoad:
		p, err := get(0)
		if err != nil {
			return err
		}
		if p.Kind != KindPointer {
			return faultf("OpLoad of non-pointer %%%d", ins.IDOperand(0))
		}
		set(p.Ptr.Load())
		return nil

	case spirv.OpStore:
		p, err := get(0)
		if err != nil {
			return err
		}
		v, err := get(1)
		if err != nil {
			return err
		}
		if p.Kind != KindPointer {
			return faultf("OpStore to non-pointer %%%d", ins.IDOperand(0))
		}
		p.Ptr.Store(v)
		return nil

	case spirv.OpAccessChain:
		base, err := get(0)
		if err != nil {
			return err
		}
		if base.Kind != KindPointer {
			return faultf("OpAccessChain on non-pointer %%%d", ins.IDOperand(0))
		}
		p := base.Ptr
		for i := 1; i < len(ins.Operands); i++ {
			idx, err := get(i)
			if err != nil {
				return err
			}
			p = p.Elem(int(int32(idx.Bits)))
		}
		set(Value{Kind: KindPointer, Ptr: p})
		return nil

	case spirv.OpFunctionCall:
		callee := mc.m.Function(ins.IDOperand(0))
		if callee == nil {
			return faultf("call to missing function %%%d", ins.IDOperand(0))
		}
		args := make([]Value, len(ins.Operands)-1)
		for i := 1; i < len(ins.Operands); i++ {
			v, err := get(i)
			if err != nil {
				return err
			}
			args[i-1] = v
		}
		ret, err := mc.callFunction(callee, args)
		if err != nil {
			return err
		}
		if mc.m.TypeOp(ins.Type) != spirv.OpTypeVoid {
			set(ret)
		}
		return nil

	case spirv.OpNop:
		return nil
	}
	return faultf("unsupported instruction %s", ins.Op)
}

// --- op semantics shared by both engines ---

func selectValue(c, a, b Value) (Value, error) {
	if c.Kind == KindBool {
		if c.B {
			return a, nil
		}
		return b, nil
	}
	if c.Kind == KindComposite && len(c.Elems) == len(a.Elems) {
		elems := make([]Value, len(c.Elems))
		for i := range c.Elems {
			if c.Elems[i].B {
				elems[i] = a.Elems[i]
			} else {
				elems[i] = b.Elems[i]
			}
		}
		return Composite(elems...), nil
	}
	return Value{}, faultf("OpSelect with malformed condition")
}

func vectorTimesScalar(vec, s Value) Value {
	elems := make([]Value, len(vec.Elems))
	for i, e := range vec.Elems {
		elems[i] = FloatVal(e.F * s.F)
	}
	return Composite(elems...)
}

func matrixTimesVector(mat, vec Value) (Value, error) {
	if len(mat.Elems) == 0 || len(vec.Elems) != len(mat.Elems) {
		return Value{}, faultf("MatrixTimesVector shape mismatch")
	}
	rows := len(mat.Elems[0].Elems)
	elems := make([]Value, rows)
	for r := 0; r < rows; r++ {
		var sum float32
		for c := range mat.Elems {
			sum += mat.Elems[c].Elems[r].F * vec.Elems[c].F
		}
		elems[r] = FloatVal(sum)
	}
	return Composite(elems...), nil
}

func dot(a, b Value) Value {
	var sum float32
	for i := range a.Elems {
		sum += a.Elems[i].F * b.Elems[i].F
	}
	return FloatVal(sum)
}

func compositeExtract(v Value, path []uint32) (Value, error) {
	for _, idx := range path {
		if v.Kind != KindComposite || int(idx) >= len(v.Elems) {
			return Value{}, faultf("CompositeExtract index %d out of range", idx)
		}
		v = v.Elems[idx]
	}
	return v, nil
}

func compositeInsert(obj, base Value, path []uint32) (Value, error) {
	result := base.Clone()
	target := &result
	for _, idx := range path {
		if target.Kind != KindComposite || int(idx) >= len(target.Elems) {
			return Value{}, faultf("CompositeInsert index %d out of range", idx)
		}
		target = &target.Elems[idx]
	}
	*target = obj.Clone()
	return result, nil
}

func vectorShuffle(a, b Value, sel []uint32) (Value, error) {
	pool := append(append([]Value(nil), a.Elems...), b.Elems...)
	elems := make([]Value, 0, len(sel))
	for _, idx := range sel {
		if int(idx) >= len(pool) {
			return Value{}, faultf("VectorShuffle component %d out of range", idx)
		}
		elems = append(elems, pool[idx])
	}
	return Composite(elems...), nil
}

// --- lanewise helpers ---

func mapLanes2(a, b Value, f func(x, y Value) (Value, error)) (Value, error) {
	if a.Kind == KindComposite && b.Kind == KindComposite {
		if len(a.Elems) != len(b.Elems) {
			return Value{}, faultf("lane count mismatch")
		}
		elems := make([]Value, len(a.Elems))
		for i := range a.Elems {
			v, err := f(a.Elems[i], b.Elems[i])
			if err != nil {
				return Value{}, err
			}
			elems[i] = v
		}
		return Composite(elems...), nil
	}
	return f(a, b)
}

func mapLanes1(a Value, f func(x Value) (Value, error)) (Value, error) {
	if a.Kind == KindComposite {
		elems := make([]Value, len(a.Elems))
		for i := range a.Elems {
			v, err := f(a.Elems[i])
			if err != nil {
				return Value{}, err
			}
			elems[i] = v
		}
		return Composite(elems...), nil
	}
	return f(a)
}

func intOp(f func(a, b uint32) uint32) func(Value, Value) (Value, error) {
	return func(a, b Value) (Value, error) {
		if a.Kind != KindInt || b.Kind != KindInt {
			return Value{}, faultf("integer op on non-integers")
		}
		return UintVal(f(a.Bits, b.Bits)), nil
	}
}

func intOp1(f func(a uint32) uint32) func(Value) (Value, error) {
	return func(a Value) (Value, error) {
		if a.Kind != KindInt {
			return Value{}, faultf("integer op on non-integer")
		}
		return UintVal(f(a.Bits)), nil
	}
}

func floatOp(f func(a, b float32) float32) func(Value, Value) (Value, error) {
	return func(a, b Value) (Value, error) {
		if a.Kind != KindFloat || b.Kind != KindFloat {
			return Value{}, faultf("float op on non-floats")
		}
		return FloatVal(f(a.F, b.F)), nil
	}
}

func floatOp1(f func(a float32) float32) func(Value) (Value, error) {
	return func(a Value) (Value, error) {
		if a.Kind != KindFloat {
			return Value{}, faultf("float op on non-float")
		}
		return FloatVal(f(a.F)), nil
	}
}

func boolOp(f func(a, b bool) bool) func(Value, Value) (Value, error) {
	return func(a, b Value) (Value, error) {
		if a.Kind != KindBool || b.Kind != KindBool {
			return Value{}, faultf("logical op on non-booleans")
		}
		return BoolVal(f(a.B, b.B)), nil
	}
}

func intCmp(f func(a, b uint32) bool) func(Value, Value) (Value, error) {
	return func(a, b Value) (Value, error) {
		if a.Kind != KindInt || b.Kind != KindInt {
			return Value{}, faultf("integer comparison on non-integers")
		}
		return BoolVal(f(a.Bits, b.Bits)), nil
	}
}

func floatCmp(f func(a, b float32) bool) func(Value, Value) (Value, error) {
	return func(a, b Value) (Value, error) {
		if a.Kind != KindFloat || b.Kind != KindFloat {
			return Value{}, faultf("float comparison on non-floats")
		}
		return BoolVal(f(a.F, b.F)), nil
	}
}
