package interp

import (
	"math"

	"spirvfuzz/internal/spirv"
)

// This file is the plan compiler: it lowers a module once into a flat
// register-based Program so that executing a pixel costs zero map
// operations. Lowering performs, ahead of time, all the work the
// tree-walker repeats per instruction per pixel:
//
//   - every function gets a dense slot numbering for its SSA results, so a
//     frame is a []Value slice instead of a map[spirv.ID]Value;
//   - every operand is pre-resolved to a slot ref (>= 0) or a fixed-pool
//     ref (< 0) covering module-level constants and global pointers;
//   - every instruction is dispatched on a compact internal opcode (pop),
//     with the scalar semantics taken from the same binOps/unOps tables the
//     tree-walker uses, so the engines cannot drift;
//   - ϕ nodes become per-CFG-edge parallel-move lists, OpSwitch becomes a
//     prebuilt jump table, and statically-detectable errors (unsupported
//     ops, missing callees, missing blocks, missing ϕ inputs) become
//     instructions that fault only when executed — dead broken code stays
//     dead, exactly as in the tree-walker.
//
// Compile itself fails only for errors the tree-walker reports before
// executing any pixel (module-level constant/global errors, no entry point,
// no output variable), in the same order, with the same messages.

// refNone marks an absent operand ref (e.g. an OpVariable without an
// initializer, or the dst of an instruction that writes no result).
const refNone int32 = math.MinInt32

// pop is the VM's compact internal opcode.
type pop uint8

const (
	popFault       pop = iota // always faults with a precomputed error
	popBin                    // dst = mapLanes2(a, b, bin)
	popUn                     // dst = mapLanes1(a, un)
	popSelect                 // dst = selectValue(a, b, c)
	popVecScalar              // dst = vectorTimesScalar(a, b)
	popMatVec                 // dst = matrixTimesVector(a, b)
	popDot                    // dst = dot(a, b)
	popConstruct              // dst = Composite(args...)
	popExtract                // dst = compositeExtract(a, lits)
	popInsert                 // dst = compositeInsert(a, b, lits)
	popShuffle                // dst = vectorShuffle(a, b, lits)
	popCopy                   // dst = a
	popZero                   // dst = zero.Clone() (OpUndef)
	popVariable               // dst = pointer to a fresh cell (init a or zero)
	popLoad                   // dst = *a
	popStore                  // *a = b
	popAccessChain            // dst = a narrowed by args indices
	popCall                   // dst = funcs[callee](args...)
	popNop                    // costs a step, does nothing
)

// pinstr is one lowered instruction: pre-resolved operand refs, shared
// semantic function values, and precomputed faults. A ref >= 0 indexes the
// frame's slot slice; a negative ref r (other than refNone) indexes the
// machine's fixed pool at -r-1.
type pinstr struct {
	op      pop
	fclass  fastClass // popBin: operand class for the closure-free fast path
	prim    binPrim   // popBin: unboxed lane-VM primitive, bpNone if uncommon
	dst     int32
	a, b, c int32
	// aConst/bConst point into fixedProto when the operand is a
	// lane-invariant constant, resolved once after lowering (the pool has
	// stopped growing by then, so the pointers are stable). prim is
	// cleared when a fixed operand is a per-lane global pointer, which
	// only the general loop handles.
	aConst, bConst *Value
	args           []int32  // construct elements / call arguments / chain indices
	lits           []uint32 // extract/insert paths, shuffle selectors
	bin            func(Value, Value) (Value, error)
	un             func(Value) (Value, error)
	binF           func(float32, float32) float32 // fcFloat primitive
	binI           func(uint32, uint32) uint32    // fcInt primitive
	cmpF           func(float32, float32) bool    // fcFloatCmp primitive
	cmpI           func(uint32, uint32) bool      // fcIntCmp primitive
	zero           Value                          // prototype for popZero and uninitialised popVariable
	callee         int32                          // popCall: index into Program.funcs
	fault          error                          // popFault
	msgID          spirv.ID                       // operand id quoted by pointer-op fault messages
}

// fastClass selects a VM fast path for popBin when the runtime operand kinds
// match the primitive's class; any other shape falls back to the boxed
// semantic function, which produces the canonical faults.
type fastClass uint8

const (
	fcNone fastClass = iota
	fcInt
	fcFloat
	fcIntCmp
	fcFloatCmp
)

// binPrim names the binary opcodes whose scalar semantics are a single Go
// expression. The lane VM bakes these into unboxed per-group loops — no
// function value, no Value copies — while every other opcode keeps going
// through the shared primitive tables in instr.go. Each case in the lane
// VM's prim switch must compute exactly what the table entry of the same
// opcode computes; the differential tests exercise both engines over the
// same modules, so any drift shows up as an image mismatch.
type binPrim uint8

const (
	bpNone binPrim = iota
	bpFAdd
	bpFSub
	bpFMul
	bpFDiv
	bpIAdd
	bpISub
	bpIMul
	bpAnd
	bpOr
	bpXor
	bpFEq
	bpFNe
	bpFLt
	bpFGt
	bpFLe
	bpFGe
	bpIEq
	bpINe
	bpSLt
	bpSLe
	bpSGt
	bpSGe
)

// binPrimOps: which opcodes get an unboxed lane loop. Division and modulo
// ops with defined-zero edge cases stay on the shared table functions.
var binPrimOps = map[spirv.Opcode]binPrim{
	spirv.OpFAdd:                 bpFAdd,
	spirv.OpFSub:                 bpFSub,
	spirv.OpFMul:                 bpFMul,
	spirv.OpFDiv:                 bpFDiv,
	spirv.OpIAdd:                 bpIAdd,
	spirv.OpISub:                 bpISub,
	spirv.OpIMul:                 bpIMul,
	spirv.OpBitwiseAnd:           bpAnd,
	spirv.OpBitwiseOr:            bpOr,
	spirv.OpBitwiseXor:           bpXor,
	spirv.OpFOrdEqual:            bpFEq,
	spirv.OpFOrdNotEqual:         bpFNe,
	spirv.OpFOrdLessThan:         bpFLt,
	spirv.OpFOrdGreaterThan:      bpFGt,
	spirv.OpFOrdLessThanEqual:    bpFLe,
	spirv.OpFOrdGreaterThanEqual: bpFGe,
	spirv.OpIEqual:               bpIEq,
	spirv.OpINotEqual:            bpINe,
	spirv.OpSLessThan:            bpSLt,
	spirv.OpSLessThanEqual:       bpSLe,
	spirv.OpSGreaterThan:         bpSGt,
	spirv.OpSGreaterThanEqual:    bpSGe,
}

// pmove is one ϕ parallel move staged on block entry; a non-nil fault
// reproduces the tree-walker's missing-incoming-value fault at the same
// stage position.
type pmove struct {
	dst   int32
	src   int32
	fault error
}

// pedge is one CFG edge: the target block plus the ϕ moves the transition
// performs. A non-nil fault is a branch to a missing block. direct means no
// move's destination is any move's source (or another destination) and no
// move faults, so the lane VM may copy sources straight to destinations
// without the parallel-move staging pass.
type pedge struct {
	target int32
	fault  error
	direct bool
	moves  []pmove
}

type ptermKind uint8

const (
	tkFault ptermKind = iota // terminator faults (OpUnreachable, invalid)
	tkBranch
	tkCondBr
	tkSwitch
	tkReturn
	tkReturnValue
	tkKill
)

// pterm is a lowered block terminator.
type pterm struct {
	kind  ptermKind
	sel   int32            // condition / switch selector ref
	ret   int32            // OpReturnValue ref
	edges []pedge          // branch: [then]; cond: [then, else]; switch: [default, cases...]
	jump  map[uint32]int32 // switch literal -> edge index
	label spirv.ID         // for fault messages
	fault error            // tkFault
}

// pblock is one lowered basic block: a contiguous instruction array plus
// the terminator.
type pblock struct {
	label spirv.ID
	code  []pinstr
	term  pterm
}

// pfunc is one lowered function.
type pfunc struct {
	id            spirv.ID
	nparams       int
	paramSlots    []int32
	nslots        int
	slotIDs       []spirv.ID // slot -> SSA id, for fault messages
	fallback      []int32    // slot -> fixed ref if the id is also module-level
	blocks        []pblock
	entryPhiFault error // ϕ in the entry block faults on first entry
	noBlocks      error // function body is empty
}

// globalSlot is one module-level variable; init is the prototype each
// machine clones into its own cell.
type globalSlot struct {
	id   spirv.ID
	init Value
}

// uniformSlot binds a uniform-storage global to its OpName debug name, the
// key Inputs.Uniforms uses.
type uniformSlot struct {
	global int32
	name   string
}

// Program is a module lowered for the register VM: flat functions over slot
// frames, a fixed pool of pre-decoded constants and global pointers, and
// the render plumbing (coordinate input, color output, output zero)
// resolved once. A Program is immutable and safe for concurrent use; each
// rendering goroutine instantiates its own machine over it.
type Program struct {
	fixedProto  []Value // constants verbatim; global entries are placeholders
	fixedGlobal []int32 // fixedGlobal[i] >= 0: pool entry i is that global's pointer
	globals     []globalSlot
	uniforms    []uniformSlot
	funcs       []pfunc
	entry       int32
	coord       int32 // globals index of the coordinate Input, or -1
	color       int32 // globals index of the color Output
	colorZero   Value

	// Lane-aware lowering metadata: module-wide maxima computed once at
	// compile time so the lane VM can presize its SoA staging buffers
	// (ϕ moves, call arguments) and never allocates in the uniform path.
	maxPhiMoves int // widest ϕ parallel-move list on any edge
	maxCallArgs int // widest argument list of any popCall
}

type planner struct {
	m       *spirv.Module
	prog    *Program
	refs    map[spirv.ID]int32 // module-level id -> fixed ref (negative)
	fnIndex map[spirv.ID]int32
	consts  map[spirv.ID]Value
	globals map[spirv.ID]int32
}

// Compile lowers a module into a Program. It fails exactly when (and how)
// RenderTree would fail before executing the first pixel; all other errors
// are lowered into the instruction stream and surface only if executed.
func Compile(m *spirv.Module) (*Program, error) {
	entry := m.EntryPointFunction()
	if entry == nil {
		return nil, faultf("module has no entry point")
	}
	p := &planner{
		m:       m,
		prog:    &Program{coord: -1, color: -1},
		refs:    make(map[spirv.ID]int32),
		fnIndex: make(map[spirv.ID]int32),
		consts:  make(map[spirv.ID]Value),
		globals: make(map[spirv.ID]int32),
	}
	names := make(map[spirv.ID]string)
	for _, n := range m.Names {
		if n.Op == spirv.OpName {
			s, _ := spirv.DecodeString(n.Operands[1:])
			names[spirv.ID(n.Operands[0])] = s
		}
	}

	// Module-level pass: pre-decode constants and globals into the fixed
	// pool, mirroring newMachine's errors and their order.
	for _, ins := range m.TypesGlobals {
		switch ins.Op {
		case spirv.OpConstantTrue:
			p.addConst(ins.Result, BoolVal(true))
		case spirv.OpConstantFalse:
			p.addConst(ins.Result, BoolVal(false))
		case spirv.OpConstant:
			if m.IsFloatType(ins.Type) {
				p.addConst(ins.Result, FloatVal(math.Float32frombits(ins.Operands[0])))
			} else {
				p.addConst(ins.Result, UintVal(ins.Operands[0]))
			}
		case spirv.OpConstantComposite:
			elems := make([]Value, len(ins.Operands))
			for i, w := range ins.Operands {
				v, ok := p.consts[spirv.ID(w)]
				if !ok {
					return nil, faultf("constant composite %%%d uses non-constant %%%d", ins.Result, w)
				}
				elems[i] = v
			}
			p.addConst(ins.Result, Composite(elems...))
		case spirv.OpConstantNull, spirv.OpUndef:
			z, err := ZeroValue(m, ins.Type)
			if err != nil {
				return nil, err
			}
			p.addConst(ins.Result, z)
		case spirv.OpVariable:
			_, pointee, ok := m.PointerInfo(ins.Type)
			if !ok {
				return nil, faultf("global %%%d has non-pointer type", ins.Result)
			}
			var init Value
			if len(ins.Operands) > 1 {
				iv, ok := p.consts[spirv.ID(ins.Operands[1])]
				if !ok {
					return nil, faultf("global %%%d initializer is not a constant", ins.Result)
				}
				init = iv.Clone()
			} else {
				z, err := ZeroValue(m, pointee)
				if err != nil {
					return nil, err
				}
				init = z
			}
			g := int32(len(p.prog.globals))
			p.prog.globals = append(p.prog.globals, globalSlot{id: ins.Result, init: init})
			p.globals[ins.Result] = g
			p.addFixed(ins.Result, Value{}, g)
		}
	}

	// Locate the coordinate input and color output, as RenderTree does.
	var coordVar, colorVar spirv.ID
	for _, ins := range m.TypesGlobals {
		if ins.Op != spirv.OpVariable {
			continue
		}
		switch ins.Operands[0] {
		case spirv.StorageInput:
			if coordVar == 0 {
				coordVar = ins.Result
			}
		case spirv.StorageOutput:
			if colorVar == 0 {
				colorVar = ins.Result
			}
		}
	}
	if colorVar == 0 {
		return nil, faultf("module has no Output variable")
	}
	colorZero, err := ZeroValue(m, mustPointee(m, colorVar))
	if err != nil {
		return nil, err
	}
	p.prog.colorZero = colorZero
	p.prog.color = p.globals[colorVar]
	if coordVar != 0 {
		p.prog.coord = p.globals[coordVar]
	}

	// Uniform bindings, in TypesGlobals order like setUniforms.
	for _, ins := range m.TypesGlobals {
		if ins.Op != spirv.OpVariable {
			continue
		}
		if sc := ins.Operands[0]; sc != spirv.StorageUniformConstant && sc != spirv.StorageUniform {
			continue
		}
		p.prog.uniforms = append(p.prog.uniforms, uniformSlot{global: p.globals[ins.Result], name: names[ins.Result]})
	}

	// Functions: first-wins index (the Module.Function lookup rule), then
	// lower each body.
	for i := range m.Functions {
		if _, ok := p.fnIndex[m.Functions[i].ID()]; !ok {
			p.fnIndex[m.Functions[i].ID()] = int32(i)
		}
	}
	p.prog.funcs = make([]pfunc, len(m.Functions))
	for i, fn := range m.Functions {
		p.prog.funcs[i] = p.compileFunc(fn)
	}
	p.prog.entry = p.fnIndex[entry.ID()]
	for i, fn := range m.Functions {
		if fn == entry {
			p.prog.entry = int32(i)
			break
		}
	}

	// Lane staging maxima and prim const-operand resolution, over every
	// lowered function. The fixed pool is complete here, so pointers into
	// fixedProto taken now stay valid for the program's lifetime.
	for fi := range p.prog.funcs {
		pf := &p.prog.funcs[fi]
		for bi := range pf.blocks {
			b := &pf.blocks[bi]
			for ii := range b.code {
				if b.code[ii].op == popCall {
					p.prog.maxCallArgs = max(p.prog.maxCallArgs, len(b.code[ii].args))
				}
				p.resolvePrimConsts(&b.code[ii])
			}
			for ei := range b.term.edges {
				p.prog.maxPhiMoves = max(p.prog.maxPhiMoves, len(b.term.edges[ei].moves))
			}
		}
	}
	return p.prog, nil
}

// resolvePrimConsts fills a popBin instruction's aConst/bConst pointers for
// fixed lane-invariant operands, and demotes the instruction to the general
// lane loop (prim = bpNone) when a fixed operand is a per-lane global
// pointer or missing: the unboxed loops only ever see plain scalar values.
func (p *planner) resolvePrimConsts(ins *pinstr) {
	if ins.op != popBin || ins.prim == bpNone {
		return
	}
	for _, ref := range [2]int32{ins.a, ins.b} {
		if ref >= 0 {
			continue
		}
		if ref == refNone || p.prog.fixedGlobal[-ref-1] >= 0 {
			ins.prim = bpNone
			return
		}
	}
	if ins.a < 0 {
		ins.aConst = &p.prog.fixedProto[-ins.a-1]
	}
	if ins.b < 0 {
		ins.bConst = &p.prog.fixedProto[-ins.b-1]
	}
}

func (p *planner) addConst(id spirv.ID, v Value) {
	p.consts[id] = v
	p.addFixed(id, v, -1)
}

func (p *planner) addFixed(id spirv.ID, v Value, global int32) {
	p.refs[id] = -int32(len(p.prog.fixedProto)) - 1
	p.prog.fixedProto = append(p.prog.fixedProto, v)
	p.prog.fixedGlobal = append(p.prog.fixedGlobal, global)
}

// fctx is the per-function slot-numbering state.
type fctx struct {
	p     *planner
	pf    *pfunc
	slots map[spirv.ID]int32
}

func (fx *fctx) addSlot(id spirv.ID) int32 {
	if s, ok := fx.slots[id]; ok {
		return s
	}
	s := int32(len(fx.pf.slotIDs))
	fx.slots[id] = s
	fx.pf.slotIDs = append(fx.pf.slotIDs, id)
	return s
}

// ref resolves an operand id. Frame slots shadow the module environment,
// like the tree-walker's frame-then-consts-then-globals lookup; a slot that
// is unset at runtime falls back through pfunc.fallback. Ids known nowhere
// get a fresh never-written slot, so reading them faults with the
// tree-walker's message at the tree-walker's point in evaluation order.
func (fx *fctx) ref(id spirv.ID) int32 {
	if s, ok := fx.slots[id]; ok {
		return s
	}
	if r, ok := fx.p.refs[id]; ok {
		return r
	}
	return fx.addSlot(id)
}

func (fx *fctx) operand(ins *spirv.Instruction, i int) int32 {
	return fx.ref(ins.IDOperand(i))
}

// writesResult reports whether the tree-walker's evalInstr would store a
// frame value for this instruction (so its Result needs a slot).
func (p *planner) writesResult(ins *spirv.Instruction) bool {
	if _, ok := binOps[ins.Op]; ok {
		return true
	}
	if _, ok := unOps[ins.Op]; ok {
		return true
	}
	switch ins.Op {
	case spirv.OpSelect, spirv.OpBitcast, spirv.OpVectorTimesScalar,
		spirv.OpMatrixTimesVector, spirv.OpDot, spirv.OpCompositeConstruct,
		spirv.OpCompositeExtract, spirv.OpCompositeInsert, spirv.OpVectorShuffle,
		spirv.OpCopyObject, spirv.OpUndef, spirv.OpVariable, spirv.OpLoad,
		spirv.OpAccessChain:
		return true
	case spirv.OpFunctionCall:
		return p.m.TypeOp(ins.Type) != spirv.OpTypeVoid
	}
	return false
}

func (p *planner) compileFunc(fn *spirv.Function) pfunc {
	pf := pfunc{id: fn.ID(), nparams: len(fn.Params)}
	fx := &fctx{p: p, pf: &pf, slots: make(map[spirv.ID]int32)}
	pf.paramSlots = make([]int32, len(fn.Params))
	for i, prm := range fn.Params {
		pf.paramSlots[i] = fx.addSlot(prm.Result)
	}
	for _, b := range fn.Blocks {
		for _, phi := range b.Phis {
			fx.addSlot(phi.Result)
		}
		for _, ins := range b.Body {
			if p.writesResult(ins) {
				fx.addSlot(ins.Result)
			}
		}
	}
	if len(fn.Blocks) == 0 {
		pf.noBlocks = faultf("function %%%d has no blocks", fn.ID())
	} else {
		blockIdx := make(map[spirv.ID]int32)
		for i, b := range fn.Blocks {
			if _, ok := blockIdx[b.Label]; !ok {
				blockIdx[b.Label] = int32(i)
			}
		}
		pf.blocks = make([]pblock, len(fn.Blocks))
		for i, b := range fn.Blocks {
			pf.blocks[i] = pblock{label: b.Label}
			pf.blocks[i].code = make([]pinstr, len(b.Body))
			for j, ins := range b.Body {
				pf.blocks[i].code[j] = p.lowerInstr(fx, ins)
			}
			pf.blocks[i].term = p.lowerTerm(fx, fn, blockIdx, b)
		}
		if len(fn.Blocks[0].Phis) > 0 {
			pf.entryPhiFault = faultf("ϕ in entry block %%%d", fn.Blocks[0].Label)
		}
	}
	pf.nslots = len(pf.slotIDs)
	pf.fallback = make([]int32, pf.nslots)
	for s, id := range pf.slotIDs {
		if r, ok := p.refs[id]; ok {
			pf.fallback[s] = r
		} else {
			pf.fallback[s] = refNone
		}
	}
	return pf
}

// lowerInstr lowers one body instruction 1:1 (every source instruction
// costs exactly one VM instruction and one step, keeping step budgets
// identical to the tree-walker's).
func (p *planner) lowerInstr(fx *fctx, ins *spirv.Instruction) pinstr {
	dst := refNone
	if p.writesResult(ins) {
		dst = fx.slots[ins.Result]
	}
	if f, ok := binOps[ins.Op]; ok {
		pi := pinstr{op: popBin, dst: dst, a: fx.operand(ins, 0), b: fx.operand(ins, 1), bin: f, prim: binPrimOps[ins.Op]}
		switch {
		case binFloatPrims[ins.Op] != nil:
			pi.fclass, pi.binF = fcFloat, binFloatPrims[ins.Op]
		case binIntPrims[ins.Op] != nil:
			pi.fclass, pi.binI = fcInt, binIntPrims[ins.Op]
		case binFloatCmpPrims[ins.Op] != nil:
			pi.fclass, pi.cmpF = fcFloatCmp, binFloatCmpPrims[ins.Op]
		case binIntCmpPrims[ins.Op] != nil:
			pi.fclass, pi.cmpI = fcIntCmp, binIntCmpPrims[ins.Op]
		}
		return pi
	}
	if f, ok := unOps[ins.Op]; ok {
		return pinstr{op: popUn, dst: dst, a: fx.operand(ins, 0), un: f}
	}
	switch ins.Op {
	case spirv.OpSelect:
		return pinstr{op: popSelect, dst: dst, a: fx.operand(ins, 0), b: fx.operand(ins, 1), c: fx.operand(ins, 2)}
	case spirv.OpBitcast:
		return pinstr{op: popUn, dst: dst, a: fx.operand(ins, 0), un: bitcastFn(p.m, ins.Type)}
	case spirv.OpVectorTimesScalar:
		return pinstr{op: popVecScalar, dst: dst, a: fx.operand(ins, 0), b: fx.operand(ins, 1)}
	case spirv.OpMatrixTimesVector:
		return pinstr{op: popMatVec, dst: dst, a: fx.operand(ins, 0), b: fx.operand(ins, 1)}
	case spirv.OpDot:
		return pinstr{op: popDot, dst: dst, a: fx.operand(ins, 0), b: fx.operand(ins, 1)}
	case spirv.OpCompositeConstruct:
		args := make([]int32, len(ins.Operands))
		for i := range ins.Operands {
			args[i] = fx.operand(ins, i)
		}
		return pinstr{op: popConstruct, dst: dst, args: args}
	case spirv.OpCompositeExtract:
		return pinstr{op: popExtract, dst: dst, a: fx.operand(ins, 0), lits: ins.Operands[1:]}
	case spirv.OpCompositeInsert:
		return pinstr{op: popInsert, dst: dst, a: fx.operand(ins, 0), b: fx.operand(ins, 1), lits: ins.Operands[2:]}
	case spirv.OpVectorShuffle:
		return pinstr{op: popShuffle, dst: dst, a: fx.operand(ins, 0), b: fx.operand(ins, 1), lits: ins.Operands[2:]}
	case spirv.OpCopyObject:
		return pinstr{op: popCopy, dst: dst, a: fx.operand(ins, 0)}
	case spirv.OpUndef:
		z, err := ZeroValue(p.m, ins.Type)
		if err != nil {
			return pinstr{op: popFault, fault: err}
		}
		return pinstr{op: popZero, dst: dst, zero: z}
	case spirv.OpVariable:
		_, pointee, ok := p.m.PointerInfo(ins.Type)
		if !ok {
			return pinstr{op: popFault, fault: faultf("OpVariable %%%d with non-pointer type", ins.Result)}
		}
		if len(ins.Operands) > 1 {
			return pinstr{op: popVariable, dst: dst, a: fx.operand(ins, 1)}
		}
		z, err := ZeroValue(p.m, pointee)
		if err != nil {
			return pinstr{op: popFault, fault: err}
		}
		return pinstr{op: popVariable, dst: dst, a: refNone, zero: z}
	case spirv.OpLoad:
		return pinstr{op: popLoad, dst: dst, a: fx.operand(ins, 0), msgID: ins.IDOperand(0)}
	case spirv.OpStore:
		return pinstr{op: popStore, a: fx.operand(ins, 0), b: fx.operand(ins, 1), msgID: ins.IDOperand(0)}
	case spirv.OpAccessChain:
		args := make([]int32, len(ins.Operands)-1)
		base := fx.operand(ins, 0)
		for i := 1; i < len(ins.Operands); i++ {
			args[i-1] = fx.operand(ins, i)
		}
		return pinstr{op: popAccessChain, dst: dst, a: base, args: args, msgID: ins.IDOperand(0)}
	case spirv.OpFunctionCall:
		calleeID := ins.IDOperand(0)
		fi, ok := p.fnIndex[calleeID]
		if !ok {
			return pinstr{op: popFault, fault: faultf("call to missing function %%%d", calleeID)}
		}
		args := make([]int32, len(ins.Operands)-1)
		for i := 1; i < len(ins.Operands); i++ {
			args[i-1] = fx.operand(ins, i)
		}
		return pinstr{op: popCall, dst: dst, callee: fi, args: args}
	case spirv.OpNop:
		return pinstr{op: popNop}
	}
	return pinstr{op: popFault, fault: faultf("unsupported instruction %s", ins.Op)}
}

func (p *planner) lowerTerm(fx *fctx, fn *spirv.Function, blockIdx map[spirv.ID]int32, b *spirv.Block) pterm {
	term := b.Term
	if term == nil {
		return pterm{kind: tkFault, fault: faultf("block %%%d has no valid terminator", b.Label)}
	}
	switch term.Op {
	case spirv.OpBranch:
		return pterm{kind: tkBranch, edges: []pedge{p.lowerEdge(fx, fn, blockIdx, b, term.IDOperand(0))}}
	case spirv.OpBranchConditional:
		return pterm{kind: tkCondBr, sel: fx.ref(term.IDOperand(0)), label: b.Label, edges: []pedge{
			p.lowerEdge(fx, fn, blockIdx, b, term.IDOperand(1)),
			p.lowerEdge(fx, fn, blockIdx, b, term.IDOperand(2)),
		}}
	case spirv.OpSwitch:
		t := pterm{kind: tkSwitch, sel: fx.ref(term.IDOperand(0)), label: b.Label, jump: make(map[uint32]int32)}
		t.edges = append(t.edges, p.lowerEdge(fx, fn, blockIdx, b, term.IDOperand(1)))
		for i := 2; i+1 < len(term.Operands); i += 2 {
			lit := term.Operands[i]
			if _, ok := t.jump[lit]; ok {
				continue // first matching literal wins, like the linear scan
			}
			t.jump[lit] = int32(len(t.edges))
			t.edges = append(t.edges, p.lowerEdge(fx, fn, blockIdx, b, spirv.ID(term.Operands[i+1])))
		}
		return t
	case spirv.OpReturn:
		return pterm{kind: tkReturn}
	case spirv.OpReturnValue:
		return pterm{kind: tkReturnValue, ret: fx.ref(term.IDOperand(0))}
	case spirv.OpKill:
		return pterm{kind: tkKill}
	case spirv.OpUnreachable:
		return pterm{kind: tkFault, fault: faultf("reached OpUnreachable in block %%%d", b.Label)}
	}
	return pterm{kind: tkFault, fault: faultf("block %%%d has no valid terminator", b.Label)}
}

// lowerEdge precomputes the ϕ parallel-move list for the from→to CFG edge.
func (p *planner) lowerEdge(fx *fctx, fn *spirv.Function, blockIdx map[spirv.ID]int32, from *spirv.Block, to spirv.ID) pedge {
	ti, ok := blockIdx[to]
	if !ok {
		return pedge{fault: faultf("branch to missing block %%%d", to)}
	}
	e := pedge{target: ti}
	for _, phi := range fn.Blocks[ti].Phis {
		found := false
		for j := 0; j+1 < len(phi.Operands); j += 2 {
			if spirv.ID(phi.Operands[j+1]) == from.Label {
				e.moves = append(e.moves, pmove{dst: fx.slots[phi.Result], src: fx.ref(spirv.ID(phi.Operands[j]))})
				found = true
				break
			}
		}
		if !found {
			// Stage faults stop the ϕ read loop, so no later move runs.
			e.moves = append(e.moves, pmove{fault: faultf("ϕ %%%d has no incoming value for predecessor %%%d", phi.Result, from.Label)})
			break
		}
	}
	e.direct = edgeDirect(e.moves)
	return e
}

// edgeDirect reports whether the edge's ϕ moves may run as sequential
// copies: staging is observable only when a destination slot doubles as a
// source (a swap-shaped move set) or is written twice, and a faulting move
// needs the staged path's stop-at-first-fault order.
func edgeDirect(moves []pmove) bool {
	for i := range moves {
		if moves[i].fault != nil {
			return false
		}
		for j := range moves {
			if moves[i].dst == moves[j].src || (i != j && moves[i].dst == moves[j].dst) {
				return false
			}
		}
	}
	return true
}
