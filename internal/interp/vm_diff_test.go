package interp_test

// Differential tests pinning the compiled register VM to the tree-walking
// reference evaluator: for every module — canonical, corpus, fuzzed,
// optimizer-shaped or deliberately broken — both engines must produce
// byte-identical images, or faults with identical messages, at any worker
// count. This is the executable statement of the "two engines, one
// semantics" contract Render relies on.

import (
	"fmt"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

// laneWidths are the lane-group widths every differential test sweeps; 1 is
// the degenerate group (pure lane machinery, no sharing), 16 is MaxLanes.
var laneWidths = []int{1, 4, 8, 16}

// assertEnginesAgree renders m under the tree walker, under the scalar VM at
// 1 and 4 workers, and under the lane VM at every lane width × worker count,
// requiring bitwise-equal images and string-equal faults throughout.
func assertEnginesAgree(t *testing.T, name string, m *spirv.Module, in interp.Inputs) {
	t.Helper()
	treeImg, treeErr := interp.RenderTree(m, in)
	prog, compileErr := interp.Compile(m)
	if compileErr != nil {
		// Compile rejects exactly the modules the tree walker rejects
		// before rendering the first pixel, with the same message.
		if treeErr == nil {
			t.Fatalf("%s: Compile failed (%v) but tree walker rendered fine", name, compileErr)
		}
		if treeErr.Error() != compileErr.Error() {
			t.Fatalf("%s: Compile error %q != tree error %q", name, compileErr, treeErr)
		}
		return
	}
	check := func(engine string, vmImg *interp.Image, vmErr error) {
		t.Helper()
		switch {
		case treeErr == nil && vmErr == nil:
			if !treeImg.Equal(vmImg) {
				t.Fatalf("%s: images differ under %s (%d pixels)\ntree:\n%svm:\n%s",
					name, engine, treeImg.DiffCount(vmImg), treeImg.ASCII(), vmImg.ASCII())
			}
		case treeErr != nil && vmErr != nil:
			if treeErr.Error() != vmErr.Error() {
				t.Fatalf("%s: fault mismatch under %s: tree %q, vm %q", name, engine, treeErr, vmErr)
			}
		default:
			t.Fatalf("%s: outcome mismatch under %s: tree err %v, vm err %v", name, engine, treeErr, vmErr)
		}
	}
	for _, workers := range []int{1, 4} {
		vmImg, vmErr := prog.RenderParallel(in, workers)
		check(fmt.Sprintf("vm/workers=%d", workers), vmImg, vmErr)
		for _, lanes := range laneWidths {
			laneImg, _, laneErr := prog.RenderParallelLanes(in, workers, lanes)
			check(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), laneImg, laneErr)
		}
	}
}

func TestVMDiffCanonicalModules(t *testing.T) {
	in := interp.Inputs{W: 8, H: 8, Uniforms: map[string]interp.Value{"scale": interp.FloatVal(0.5)}}
	for name, m := range testmod.All() {
		assertEnginesAgree(t, name, m, in)
	}
}

func TestVMDiffCorpusReferences(t *testing.T) {
	for _, item := range corpus.References() {
		assertEnginesAgree(t, item.Name, item.Mod, item.Inputs)
	}
}

// TestVMDiffFuzzedModules runs the fuzzer over every corpus reference with
// donors enabled, producing 60 structurally diverse variants (dead blocks,
// donated functions, obfuscated constants, wrapped regions...), and checks
// engine agreement on each.
func TestVMDiffFuzzedModules(t *testing.T) {
	refs := corpus.References()
	var donors []*spirv.Module
	for _, item := range refs[:3] {
		donors = append(donors, item.Mod)
	}
	const variants = 60
	for i := 0; i < variants; i++ {
		item := refs[i%len(refs)]
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:                  int64(7000 + i),
			Donors:                donors,
			EnableRecommendations: i%2 == 0,
		})
		if err != nil {
			t.Fatalf("fuzz %s seed %d: %v", item.Name, 7000+i, err)
		}
		assertEnginesAgree(t, item.Name, res.Variant, res.Inputs)
	}
}

// TestVMDiffOptimizedModules pushes corpus references and a few fuzzed
// variants through the shared optimizer pipeline, exercising the VM on
// optimizer-shaped control flow (merged blocks, folded constants).
func TestVMDiffOptimizedModules(t *testing.T) {
	for _, item := range corpus.References() {
		opt, err := target.SharedCompile(item.Mod, nil)
		if err != nil {
			t.Fatalf("SharedCompile %s: %v", item.Name, err)
		}
		assertEnginesAgree(t, item.Name+"/opt", opt, item.Inputs)
	}
	refs := corpus.References()
	for i := 0; i < 8; i++ {
		item := refs[i%len(refs)]
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: int64(9000 + i)})
		if err != nil {
			t.Fatalf("fuzz %s: %v", item.Name, err)
		}
		opt, err := target.SharedCompile(res.Variant, nil)
		if err != nil {
			t.Fatalf("SharedCompile fuzzed %s: %v", item.Name, err)
		}
		assertEnginesAgree(t, item.Name+"/fuzz+opt", opt, res.Inputs)
	}
}

// TestVMDiffFaultModules crafts modules that fault or discard in every way
// the interpreter knows, and checks the VM reproduces each fault verbatim
// (message and all) at 1 and 4 workers.
func TestVMDiffFaultModules(t *testing.T) {
	in := interp.Inputs{W: 8, H: 8}
	cases := map[string]*spirv.Module{}

	{ // Step-limit fault: a block branching to itself.
		m := testmod.Diamond()
		fn := m.EntryPointFunction()
		fn.Blocks[1].Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(fn.Blocks[1].Label))
		cases["step-limit"] = m
	}
	{ // OpUnreachable executed.
		m := testmod.Diamond()
		m.EntryPointFunction().Blocks[1].Term = spirv.NewInstr(spirv.OpUnreachable, 0, 0)
		cases["unreachable"] = m
	}
	{ // Block with no terminator at all.
		m := testmod.Diamond()
		m.EntryPointFunction().Blocks[1].Term = nil
		cases["no-terminator"] = m
	}
	{ // Branch to a block that does not exist.
		m := testmod.Diamond()
		m.EntryPointFunction().Blocks[1].Term = spirv.NewInstr(spirv.OpBranch, 0, 0, 9999)
		cases["missing-block"] = m
	}
	{ // ϕ whose incoming predecessors never match the actual edge.
		m := testmod.Diamond()
		phi := m.EntryPointFunction().Blocks[3].Phis[0]
		phi.Operands[1], phi.Operands[3] = 9999, 9999
		cases["phi-missing-pred"] = m
	}
	{ // ϕ in the entry block, which has no predecessors.
		m := testmod.Diamond()
		fn := m.EntryPointFunction()
		fn.Blocks[0].Phis = append(fn.Blocks[0].Phis, fn.Blocks[3].Phis...)
		cases["entry-phi"] = m
	}
	{ // Read of an id with no definition anywhere.
		b := spirv.NewBuilder()
		s := b.BeginFragmentShell()
		one := b.Mod.EnsureConstantFloat(1)
		v := b.Emit(spirv.OpFAdd, s.Float, spirv.ID(9990), spirv.ID(9990))
		col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, v, v, v, one)
		b.Store(s.Color, col)
		b.FinishFragmentShell(s)
		cases["undefined-id"] = b.Mod
	}
	{ // Call to a function that does not exist.
		b := spirv.NewBuilder()
		s := b.BeginFragmentShell()
		one := b.Mod.EnsureConstantFloat(1)
		v := b.Emit(spirv.OpFunctionCall, s.Float, spirv.ID(9999))
		col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, v, v, v, one)
		b.Store(s.Color, col)
		b.FinishFragmentShell(s)
		cases["missing-function"] = b.Mod
	}
	{ // Call with the wrong number of arguments.
		m := testmod.Caller()
		for _, blk := range m.EntryPointFunction().Blocks {
			for _, ins := range blk.Body {
				if ins.Op == spirv.OpFunctionCall {
					ins.Operands = ins.Operands[:1] // drop the argument
				}
			}
		}
		cases["bad-arity"] = m
	}
	{ // OpSwitch on a float selector.
		b := spirv.NewBuilder()
		s := b.BeginFragmentShell()
		m := b.Mod
		selC := m.EnsureConstantFloat(1.5)
		one := m.EnsureConstantFloat(1)
		def, merge := b.NewLabel(), b.NewLabel()
		b.SelectionMerge(merge)
		b.Blk.Term = spirv.NewInstr(spirv.OpSwitch, 0, 0, uint32(selC), uint32(def))
		b.Blk = nil
		b.Begin(def)
		b.Branch(merge)
		b.Begin(merge)
		col := m.EnsureConstantComposite(s.Vec4, one, one, one, one)
		colv := b.Emit(spirv.OpCopyObject, s.Vec4, col)
		b.Store(s.Color, colv)
		b.FinishFragmentShell(s)
		cases["switch-float-selector"] = m
	}
	{ // Unbounded recursion: exceeds the call-depth limit.
		m := testmod.Caller()
		var helper *spirv.Function
		for _, fn := range m.Functions {
			if fn != m.EntryPointFunction() {
				helper = fn
			}
		}
		// Rewrite the helper body to call itself.
		callee := helper.ID()
		body := helper.Blocks[0].Body
		for _, ins := range body {
			if ins.Op == spirv.OpFAdd {
				ins.Op = spirv.OpFunctionCall
				ins.Operands = []uint32{uint32(callee), uint32(helper.Params[0].Result)}
			}
		}
		cases["call-depth"] = m
	}

	for name, m := range cases {
		assertEnginesAgree(t, name, m, in)
	}
}

// TestVMDiffKillParallel pins the discard path specifically: killed
// fragments must leave identical transparent holes under row-parallel
// rendering.
func TestVMDiffKillParallel(t *testing.T) {
	m := testmod.KillHalf()
	prog, err := interp.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.Inputs{W: 16, H: 16}
	ref, err := interp.RenderTree(m, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16, 64} {
		img, err := prog.RenderParallel(in, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !ref.Equal(img) {
			t.Fatalf("workers=%d: image differs from tree reference", workers)
		}
		for _, lanes := range laneWidths {
			img, _, err := prog.RenderParallelLanes(in, workers, lanes)
			if err != nil {
				t.Fatalf("lanes=%d workers=%d: %v", lanes, workers, err)
			}
			if !ref.Equal(img) {
				t.Fatalf("lanes=%d workers=%d: image differs from tree reference", lanes, workers)
			}
		}
	}
}

// TestVMDiffFirstFaultWins pins the parallel renderer's fault selection:
// when several rows fault, the reported fault must be the one the serial
// scan order hits first, so error messages are worker-count independent.
func TestVMDiffFirstFaultWins(t *testing.T) {
	// Faults on the right half of every row: pixel (4,0) faults first in
	// scan order regardless of which band's goroutine finishes first.
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	half := m.EnsureConstantFloat(0.5)
	one := m.EnsureConstantFloat(1)
	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
	cond := b.Emit(spirv.OpFOrdLessThan, s.Bool, x, half)
	bad, ok := b.NewLabel(), b.NewLabel()
	b.SelectionMerge(ok)
	b.BranchCond(cond, ok, bad)
	b.Begin(bad)
	b.Blk.Term = spirv.NewInstr(spirv.OpUnreachable, 0, 0)
	b.Blk = nil
	b.Begin(ok)
	col := m.EnsureConstantComposite(s.Vec4, one, one, one, one)
	colv := b.Emit(spirv.OpCopyObject, s.Vec4, col)
	b.Store(s.Color, colv)
	b.FinishFragmentShell(s)

	in := interp.Inputs{W: 8, H: 8}
	_, treeErr := interp.RenderTree(m, in)
	if treeErr == nil {
		t.Fatal("expected a fault")
	}
	prog, err := interp.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		_, vmErr := prog.RenderParallel(in, workers)
		if vmErr == nil || vmErr.Error() != treeErr.Error() {
			t.Fatalf("workers=%d: fault %v, want %v", workers, vmErr, treeErr)
		}
		for _, lanes := range laneWidths {
			_, _, laneErr := prog.RenderParallelLanes(in, workers, lanes)
			if laneErr == nil || laneErr.Error() != treeErr.Error() {
				t.Fatalf("lanes=%d workers=%d: fault %v, want %v", lanes, workers, laneErr, treeErr)
			}
		}
	}
}
