package interp

import (
	"fmt"
	"math"

	"spirvfuzz/internal/spirv"
)

// Inputs describes the execution environment of a module: the image grid
// size and the values of the module's uniform inputs (keyed by the OpName
// debug name of the uniform variable). Inputs play the role of the paper's
// input I in (P, I) pairs.
type Inputs struct {
	W, H     int
	Uniforms map[string]Value
}

// Clone deep-copies the inputs, so that transformations that modify the
// module and its input in sync can mutate their copy freely.
func (in Inputs) Clone() Inputs {
	out := Inputs{W: in.W, H: in.H}
	if in.Uniforms != nil {
		out.Uniforms = make(map[string]Value, len(in.Uniforms))
		for k, v := range in.Uniforms {
			out.Uniforms[k] = v.Clone()
		}
	}
	return out
}

// DefaultGrid is the image size used when Inputs leaves W/H zero. A small
// grid keeps whole-image comparison cheap while still exercising
// coordinate-dependent control flow.
const DefaultGrid = 8

// MaxSteps bounds one shader invocation; exceeding it is a fault.
const MaxSteps = 200000

// maxCallDepth bounds recursion (the subset's programs are non-recursive;
// this guards against broken transformations).
const maxCallDepth = 64

// Fault is an execution fault: the analogue of a crash or hang of the
// compiled program.
type Fault struct{ Msg string }

// Error renders the fault message.
func (f *Fault) Error() string { return "interp: " + f.Msg }

func faultf(format string, args ...any) *Fault {
	return &Fault{Msg: fmt.Sprintf(format, args...)}
}

// machine executes one module.
type machine struct {
	m         *spirv.Module
	consts    map[spirv.ID]Value
	globals   map[spirv.ID]*Cell
	names     map[spirv.ID]string
	steps     int
	callDepth int
}

// errKill signals OpKill unwinding; it never escapes Render.
var errKill = &Fault{Msg: "kill"}

func newMachine(m *spirv.Module) (*machine, error) {
	mc := &machine{
		m:       m,
		consts:  make(map[spirv.ID]Value),
		globals: make(map[spirv.ID]*Cell),
		names:   make(map[spirv.ID]string),
	}
	for _, n := range m.Names {
		if n.Op == spirv.OpName {
			s, _ := spirv.DecodeString(n.Operands[1:])
			mc.names[spirv.ID(n.Operands[0])] = s
		}
	}
	for _, ins := range m.TypesGlobals {
		switch ins.Op {
		case spirv.OpConstantTrue:
			mc.consts[ins.Result] = BoolVal(true)
		case spirv.OpConstantFalse:
			mc.consts[ins.Result] = BoolVal(false)
		case spirv.OpConstant:
			if m.IsFloatType(ins.Type) {
				mc.consts[ins.Result] = FloatVal(math.Float32frombits(ins.Operands[0]))
			} else {
				mc.consts[ins.Result] = UintVal(ins.Operands[0])
			}
		case spirv.OpConstantComposite:
			elems := make([]Value, len(ins.Operands))
			for i, w := range ins.Operands {
				v, ok := mc.consts[spirv.ID(w)]
				if !ok {
					return nil, faultf("constant composite %%%d uses non-constant %%%d", ins.Result, w)
				}
				elems[i] = v
			}
			mc.consts[ins.Result] = Composite(elems...)
		case spirv.OpConstantNull, spirv.OpUndef:
			z, err := ZeroValue(m, ins.Type)
			if err != nil {
				return nil, err
			}
			mc.consts[ins.Result] = z
		case spirv.OpVariable:
			_, pointee, ok := m.PointerInfo(ins.Type)
			if !ok {
				return nil, faultf("global %%%d has non-pointer type", ins.Result)
			}
			var init Value
			if len(ins.Operands) > 1 {
				iv, ok := mc.consts[spirv.ID(ins.Operands[1])]
				if !ok {
					return nil, faultf("global %%%d initializer is not a constant", ins.Result)
				}
				init = iv.Clone()
			} else {
				z, err := ZeroValue(m, pointee)
				if err != nil {
					return nil, err
				}
				init = z
			}
			mc.globals[ins.Result] = &Cell{V: init}
		}
	}
	return mc, nil
}

// setUniforms initialises uniform-storage globals from the inputs.
func (mc *machine) setUniforms(in Inputs) {
	for _, ins := range mc.m.TypesGlobals {
		if ins.Op != spirv.OpVariable {
			continue
		}
		if sc := ins.Operands[0]; sc != spirv.StorageUniformConstant && sc != spirv.StorageUniform {
			continue
		}
		if v, ok := in.Uniforms[mc.names[ins.Result]]; ok {
			mc.globals[ins.Result].V = v.Clone()
		}
	}
}

// frame is one function activation.
type frame struct {
	vals   map[spirv.ID]Value
	locals map[spirv.ID]*Cell
}

func (mc *machine) get(fr *frame, id spirv.ID) (Value, error) {
	// An unset value in the frame (e.g. the result of a call to a function
	// that returned no value) reads through to the module-level environment,
	// exactly like an id the frame never saw. The VM mirrors this: an unset
	// slot falls back to its fixed-pool binding or faults.
	if v, ok := fr.vals[id]; ok && v.Kind != KindUnset {
		return v, nil
	}
	if v, ok := mc.consts[id]; ok {
		return v, nil
	}
	if c, ok := mc.globals[id]; ok {
		return Value{Kind: KindPointer, Ptr: &Pointer{Cell: c}}, nil
	}
	return Value{}, faultf("read of id %%%d with no value", id)
}

// callFunction runs fn with the given arguments to completion.
func (mc *machine) callFunction(fn *spirv.Function, args []Value) (Value, error) {
	mc.callDepth++
	defer func() { mc.callDepth-- }()
	if mc.callDepth > maxCallDepth {
		return Value{}, faultf("call depth limit exceeded in function %%%d", fn.ID())
	}
	if len(args) != len(fn.Params) {
		return Value{}, faultf("function %%%d called with %d args, wants %d", fn.ID(), len(args), len(fn.Params))
	}
	fr := &frame{vals: make(map[spirv.ID]Value), locals: make(map[spirv.ID]*Cell)}
	for i, p := range fn.Params {
		fr.vals[p.Result] = args[i]
	}
	cur := fn.Entry()
	var prev spirv.ID
	for {
		mc.steps++
		if mc.steps > MaxSteps {
			return Value{}, faultf("step limit exceeded")
		}
		// ϕ instructions read their inputs simultaneously on block entry.
		if len(cur.Phis) > 0 {
			if prev == 0 {
				return Value{}, faultf("ϕ in entry block %%%d", cur.Label)
			}
			staged := make([]Value, len(cur.Phis))
			for i, phi := range cur.Phis {
				found := false
				for j := 0; j+1 < len(phi.Operands); j += 2 {
					if spirv.ID(phi.Operands[j+1]) == prev {
						v, err := mc.get(fr, spirv.ID(phi.Operands[j]))
						if err != nil {
							return Value{}, err
						}
						staged[i] = v
						found = true
						break
					}
				}
				if !found {
					return Value{}, faultf("ϕ %%%d has no incoming value for predecessor %%%d", phi.Result, prev)
				}
			}
			for i, phi := range cur.Phis {
				fr.vals[phi.Result] = staged[i]
			}
		}
		for _, ins := range cur.Body {
			mc.steps++
			if mc.steps > MaxSteps {
				return Value{}, faultf("step limit exceeded")
			}
			if err := mc.evalInstr(fr, ins); err != nil {
				return Value{}, err
			}
		}
		term := cur.Term
		if term == nil {
			return Value{}, faultf("block %%%d has no valid terminator", cur.Label)
		}
		var next spirv.ID
		switch term.Op {
		case spirv.OpBranch:
			next = term.IDOperand(0)
		case spirv.OpBranchConditional:
			c, err := mc.get(fr, term.IDOperand(0))
			if err != nil {
				return Value{}, err
			}
			if c.Kind != KindBool {
				return Value{}, faultf("conditional branch on non-boolean in %%%d", cur.Label)
			}
			if c.B {
				next = term.IDOperand(1)
			} else {
				next = term.IDOperand(2)
			}
		case spirv.OpSwitch:
			sel, err := mc.get(fr, term.IDOperand(0))
			if err != nil {
				return Value{}, err
			}
			if sel.Kind != KindInt {
				return Value{}, faultf("switch on non-integer selector in block %%%d", cur.Label)
			}
			next = term.IDOperand(1)
			for i := 2; i+1 < len(term.Operands); i += 2 {
				if term.Operands[i] == sel.Bits {
					next = spirv.ID(term.Operands[i+1])
					break
				}
			}
		case spirv.OpReturn:
			return Value{}, nil
		case spirv.OpReturnValue:
			return mc.get(fr, term.IDOperand(0))
		case spirv.OpKill:
			return Value{}, errKill
		case spirv.OpUnreachable:
			return Value{}, faultf("reached OpUnreachable in block %%%d", cur.Label)
		default:
			return Value{}, faultf("block %%%d has no valid terminator", cur.Label)
		}
		nb := fn.Block(next)
		if nb == nil {
			return Value{}, faultf("branch to missing block %%%d", next)
		}
		prev = cur.Label
		cur = nb
	}
}
