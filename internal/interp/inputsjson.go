package interp

import (
	"encoding/json"
	"fmt"
)

// JSON encoding of Inputs, used by the command-line tools ("a file
// describing the inputs on which the module will be executed", Section 3.2).
//
// Format:
//
//	{
//	  "width": 8, "height": 8,
//	  "uniforms": {
//	    "u_one":  {"kind": "float", "value": 1.0},
//	    "u_ten":  {"kind": "int",   "value": 10},
//	    "u_flag": {"kind": "bool",  "value": true},
//	    "u_vec":  {"kind": "composite", "elems": [ ... ]}
//	  }
//	}

type inputsJSON struct {
	Width    int                    `json:"width"`
	Height   int                    `json:"height"`
	Uniforms map[string]uniformJSON `json:"uniforms,omitempty"`
}

type uniformJSON struct {
	Kind  string          `json:"kind"`
	Value json.RawMessage `json:"value,omitempty"`
	Elems []uniformJSON   `json:"elems,omitempty"`
}

func valueToJSON(v Value) (uniformJSON, error) {
	switch v.Kind {
	case KindBool:
		raw, _ := json.Marshal(v.B)
		return uniformJSON{Kind: "bool", Value: raw}, nil
	case KindInt:
		raw, _ := json.Marshal(int32(v.Bits))
		return uniformJSON{Kind: "int", Value: raw}, nil
	case KindFloat:
		raw, _ := json.Marshal(v.F)
		return uniformJSON{Kind: "float", Value: raw}, nil
	case KindComposite:
		var elems []uniformJSON
		for _, e := range v.Elems {
			ej, err := valueToJSON(e)
			if err != nil {
				return uniformJSON{}, err
			}
			elems = append(elems, ej)
		}
		return uniformJSON{Kind: "composite", Elems: elems}, nil
	}
	return uniformJSON{}, fmt.Errorf("interp: value kind %d not encodable", v.Kind)
}

func valueFromJSON(u uniformJSON) (Value, error) {
	switch u.Kind {
	case "bool":
		var b bool
		if err := json.Unmarshal(u.Value, &b); err != nil {
			return Value{}, err
		}
		return BoolVal(b), nil
	case "int":
		var n int32
		if err := json.Unmarshal(u.Value, &n); err != nil {
			return Value{}, err
		}
		return IntVal(n), nil
	case "uint":
		var n uint32
		if err := json.Unmarshal(u.Value, &n); err != nil {
			return Value{}, err
		}
		return UintVal(n), nil
	case "float":
		var f float32
		if err := json.Unmarshal(u.Value, &f); err != nil {
			return Value{}, err
		}
		return FloatVal(f), nil
	case "composite":
		var elems []Value
		for _, e := range u.Elems {
			v, err := valueFromJSON(e)
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, v)
		}
		return Composite(elems...), nil
	}
	return Value{}, fmt.Errorf("interp: unknown uniform kind %q", u.Kind)
}

// EncodeInputs serialises inputs to JSON.
func EncodeInputs(in Inputs) ([]byte, error) {
	out := inputsJSON{Width: in.W, Height: in.H}
	if len(in.Uniforms) > 0 {
		out.Uniforms = make(map[string]uniformJSON, len(in.Uniforms))
		for name, v := range in.Uniforms {
			uj, err := valueToJSON(v)
			if err != nil {
				return nil, err
			}
			out.Uniforms[name] = uj
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// ParseInputs parses the JSON inputs format.
func ParseInputs(data []byte) (Inputs, error) {
	var in inputsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return Inputs{}, fmt.Errorf("interp: parse inputs: %w", err)
	}
	out := Inputs{W: in.Width, H: in.Height}
	if len(in.Uniforms) > 0 {
		out.Uniforms = make(map[string]Value, len(in.Uniforms))
		for name, uj := range in.Uniforms {
			v, err := valueFromJSON(uj)
			if err != nil {
				return Inputs{}, fmt.Errorf("interp: uniform %q: %w", name, err)
			}
			out.Uniforms[name] = v
		}
	}
	return out, nil
}
