// Package interp is the reference executor for the SPIR-V subset: it
// defines Semantics(P, I) from Definition 2.1. A module is executed as a
// fragment shader over an N×M pixel grid; each invocation receives a
// coordinate input and writes a color output, and the resulting quantized
// image is the program's deterministic result. Result mismatches between a
// module and a transformed variant signal compiler bugs (Theorem 2.6).
//
// The dialect is UB-free by construction: integer division by zero yields
// zero, out-of-range dynamic indexing is clamped (as with Vulkan robustness
// features), and execution is bounded by a step budget — exceeding it is a
// fault, as is any structural error. This mirrors the paper's requirement
// that original programs and transformed variants are free from undefined
// behaviour, without needing external sanitizers.
package interp

import (
	"fmt"
	"math"

	"spirvfuzz/internal/spirv"
)

// Kind discriminates runtime values.
type Kind int

// Value kinds. The zero Kind is KindUnset, so a zero Value means "no value
// written yet": VM frames detect reads of never-written slots with a plain
// kind check, and a frame reset is a single clear() over the slot slice.
const (
	KindUnset Kind = iota
	KindBool
	KindInt // 32-bit integer, signedness from the static type
	KindFloat
	KindComposite
	KindPointer
)

// Value is a runtime value.
type Value struct {
	Kind  Kind
	B     bool
	Bits  uint32 // raw bits of an int value
	F     float32
	Elems []Value // composite members
	Ptr   *Pointer
}

// Pointer references (a path into) a memory cell.
type Pointer struct {
	Cell *Cell
	Path []int
}

// Cell is one memory location holding a (possibly composite) value.
type Cell struct{ V Value }

// BoolVal returns a boolean value.
func BoolVal(b bool) Value { return Value{Kind: KindBool, B: b} }

// IntVal returns an integer value from signed input.
func IntVal(v int32) Value { return Value{Kind: KindInt, Bits: uint32(v)} }

// UintVal returns an integer value from raw bits.
func UintVal(v uint32) Value { return Value{Kind: KindInt, Bits: v} }

// FloatVal returns a float value.
func FloatVal(f float32) Value { return Value{Kind: KindFloat, F: f} }

// Composite returns a composite value.
func Composite(elems ...Value) Value { return Value{Kind: KindComposite, Elems: elems} }

// Vec4 builds a 4-component float composite.
func Vec4(x, y, z, w float32) Value {
	return Composite(FloatVal(x), FloatVal(y), FloatVal(z), FloatVal(w))
}

// Vec2 builds a 2-component float composite.
func Vec2(x, y float32) Value { return Composite(FloatVal(x), FloatVal(y)) }

// Int returns the value as a signed integer.
func (v Value) Int() int32 { return int32(v.Bits) }

// Clone deep-copies the value (pointers are shared; they are references).
func (v Value) Clone() Value {
	if v.Kind != KindComposite {
		return v
	}
	c := v
	c.Elems = make([]Value, len(v.Elems))
	for i, e := range v.Elems {
		c.Elems[i] = e.Clone()
	}
	return c
}

// Equal reports deep equality of two values. Floats compare by bits, so the
// comparison is exact and deterministic.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindBool:
		return v.B == w.B
	case KindInt:
		return v.Bits == w.Bits
	case KindFloat:
		return math.Float32bits(v.F) == math.Float32bits(w.F)
	case KindComposite:
		if len(v.Elems) != len(w.Elems) {
			return false
		}
		for i := range v.Elems {
			if !v.Elems[i].Equal(w.Elems[i]) {
				return false
			}
		}
		return true
	case KindPointer:
		return v.Ptr == w.Ptr
	}
	return false
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	case KindInt:
		return fmt.Sprintf("%d", int32(v.Bits))
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindComposite:
		s := "{"
		for i, e := range v.Elems {
			if i > 0 {
				s += ", "
			}
			s += e.String()
		}
		return s + "}"
	case KindPointer:
		return fmt.Sprintf("ptr%v", v.Ptr.Path)
	}
	return "?"
}

// ZeroValue builds the zero value of type t in module m.
func ZeroValue(m *spirv.Module, t spirv.ID) (Value, error) {
	switch m.TypeOp(t) {
	case spirv.OpTypeBool:
		return BoolVal(false), nil
	case spirv.OpTypeInt:
		return UintVal(0), nil
	case spirv.OpTypeFloat:
		return FloatVal(0), nil
	case spirv.OpTypeVector, spirv.OpTypeMatrix, spirv.OpTypeArray, spirv.OpTypeStruct:
		n, ok := m.CompositeMemberCount(t)
		if !ok {
			return Value{}, fmt.Errorf("interp: cannot size composite type %%%d", t)
		}
		elems := make([]Value, n)
		for i := 0; i < n; i++ {
			mt, _ := m.CompositeMemberType(t, i)
			z, err := ZeroValue(m, mt)
			if err != nil {
				return Value{}, err
			}
			elems[i] = z
		}
		return Composite(elems...), nil
	}
	return Value{}, fmt.Errorf("interp: no zero value for type %%%d (%s)", t, m.TypeOp(t))
}

// Load reads through the pointer.
func (p *Pointer) Load() Value {
	v := &p.Cell.V
	for _, i := range p.Path {
		v = &v.Elems[i]
	}
	return v.Clone()
}

// Store writes through the pointer.
func (p *Pointer) Store(val Value) {
	v := &p.Cell.V
	for _, i := range p.Path {
		v = &v.Elems[i]
	}
	*v = val.Clone()
}

// Elem returns a pointer one level deeper, clamping idx into range (the
// robust-access rule of the dialect).
func (p *Pointer) Elem(idx int) *Pointer {
	v := &p.Cell.V
	for _, i := range p.Path {
		v = &v.Elems[i]
	}
	if len(v.Elems) == 0 {
		return p
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(v.Elems) {
		idx = len(v.Elems) - 1
	}
	path := append(append([]int(nil), p.Path...), idx)
	return &Pointer{Cell: p.Cell, Path: path}
}
