package interp

import (
	"testing"

	"spirvfuzz/internal/testmod"
)

// compileMod is a test helper around Compile for the canonical modules.
func compileMod(t *testing.T, name string) *Program {
	t.Helper()
	m, ok := testmod.All()[name]
	if !ok {
		t.Fatalf("no testmod %q", name)
	}
	p, err := Compile(m)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return p
}

// TestPickLanesPolicy pins the probe policy on the two extreme shapes:
// uniform control flow earns the widest groups, per-pixel divergence drops
// to the scalar VM.
func TestPickLanesPolicy(t *testing.T) {
	in := Inputs{W: 16, H: 16}

	uniform := compileMod(t, "loopaccum")
	if n := uniform.pickLanes(in); n != MaxLanes {
		t.Fatalf("uniform module picked %d lanes, want %d", n, MaxLanes)
	}

	divergent := compileMod(t, "stripes")
	if n := divergent.pickLanes(in); n != 0 {
		t.Fatalf("parity-striped module picked %d lanes, want scalar (0)", n)
	}
}

// TestPickLanesCountsPicks checks that every probe decision lands in exactly
// one AutoLanePicks bucket and that the probe itself stays out of the global
// lane totals (it renders a throwaway row, not campaign work).
func TestPickLanesCountsPicks(t *testing.T) {
	in := Inputs{W: 8, H: 8}
	p := compileMod(t, "loopaccum")

	lt0 := LaneTotals()
	s0, e0, w0 := AutoLanePicks()
	_ = p.pickLanes(in)
	s1, e1, w1 := AutoLanePicks()
	if got := (s1 - s0) + (e1 - e0) + (w1 - w0); got != 1 {
		t.Fatalf("one probe recorded %d picks", got)
	}
	if lt1 := LaneTotals(); lt1.Groups != lt0.Groups {
		t.Fatalf("probe leaked %d groups into LaneTotals", lt1.Groups-lt0.Groups)
	}
}

// TestLaneBailOut pins the bail-to-scalar early-out: a multi-lane group
// whose live mask is below two lanes retires at the next taken edge instead
// of dragging a one-lane warp through the uniform path, while a true
// single-lane machine (G=1, bailMin 0) runs the same lane to completion.
// The retired pixel re-renders on the scalar VM, so the early-out only
// moves time, never output — TestAutoLanesDifferential holds that side.
func TestLaneBailOut(t *testing.T) {
	p := compileMod(t, "diamond")
	in := Inputs{W: 8, H: 8}

	wide := p.newLaneVM(in, 4)
	if wide.bailMin != 2 {
		t.Fatalf("G=4 laneVM bailMin = %d, want 2", wide.bailMin)
	}
	alive, retired, killed := wide.call(p.entry, nil, 0, 1, wide.retbuf)
	if alive != 0 || retired != 1 || killed != 0 {
		t.Fatalf("single live lane in a 4-lane group: alive=%b retired=%b killed=%b, want bail to scalar", alive, retired, killed)
	}

	solo := p.newLaneVM(in, 1)
	if solo.bailMin != 0 {
		t.Fatalf("G=1 laneVM bailMin = %d, want 0", solo.bailMin)
	}
	alive, retired, killed = solo.call(p.entry, nil, 0, 1, solo.retbuf)
	if alive != 1 || retired != 0 || killed != 0 {
		t.Fatalf("G=1 lane must complete: alive=%b retired=%b killed=%b", alive, retired, killed)
	}
}

// TestSetLanesFlag covers the shared -lanes flag parser.
func TestSetLanesFlag(t *testing.T) {
	defer func() {
		SetLanesAuto(false)
		SetLanes(0)
	}()
	if err := SetLanesFlag("auto"); err != nil {
		t.Fatal(err)
	}
	if !LanesAuto() {
		t.Fatal(`SetLanesFlag("auto") did not enable auto mode`)
	}
	if err := SetLanesFlag("8"); err != nil {
		t.Fatal(err)
	}
	if LanesAuto() || Lanes() != 8 {
		t.Fatalf(`SetLanesFlag("8"): auto=%v lanes=%d`, LanesAuto(), Lanes())
	}
	if err := SetLanesFlag("0"); err != nil || Lanes() != 0 {
		t.Fatalf(`SetLanesFlag("0"): err=%v lanes=%d`, err, Lanes())
	}
	for _, bad := range []string{"", "-2", "fast", "8x"} {
		if err := SetLanesFlag(bad); err == nil {
			t.Fatalf("SetLanesFlag(%q) accepted", bad)
		}
	}
}

// TestAutoLanesDifferential is the pinning suite for the adaptive policy:
// whatever width the probe picks, the rendered image must be byte-identical
// to the scalar VM on every canonical module. The policy may only ever trade
// speed, never pixels.
func TestAutoLanesDifferential(t *testing.T) {
	in := Inputs{W: 16, H: 16}
	for name, m := range testmod.All() {
		p, err := Compile(m)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		SetLanesAuto(false)
		SetLanes(0)
		want, err := p.RenderParallel(in, 2)
		if err != nil {
			t.Fatalf("%s: scalar render: %v", name, err)
		}
		SetLanesAuto(true)
		got, err := p.RenderParallel(in, 2)
		SetLanesAuto(false)
		if err != nil {
			t.Fatalf("%s: auto render: %v", name, err)
		}
		if want.W != got.W || want.H != got.H || string(want.Pix) != string(got.Pix) {
			t.Fatalf("%s: auto-lane image differs from scalar", name)
		}
	}
}
