package interp_test

import (
	"strings"
	"testing"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/testmod"
)

func render(t *testing.T, m *spirv.Module, in interp.Inputs) *interp.Image {
	t.Helper()
	img, err := interp.Render(m, in)
	if err != nil {
		t.Fatalf("Render: %v\n%s", err, m)
	}
	return img
}

func TestDiamondImage(t *testing.T) {
	img := render(t, testmod.Diamond(), interp.Inputs{W: 8, H: 8})
	// Left half (x < 0.5): white-ish (1.0); right half: 0.25 gray.
	left, right := img.At(0, 3), img.At(7, 3)
	if left[0] != 255 || left[3] != 255 {
		t.Errorf("left pixel = %v, want r=255 a=255", left)
	}
	if right[0] != 64 {
		t.Errorf("right pixel = %v, want r=64 (0.25*255+0.5)", right)
	}
}

func TestLoopImage(t *testing.T) {
	img := render(t, testmod.Loop(), interp.Inputs{W: 4, H: 4})
	// sum(0..9)=45, 45/45=1.0 → white everywhere.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if p := img.At(x, y); p[0] != 255 || p[1] != 255 || p[2] != 255 {
				t.Fatalf("pixel (%d,%d) = %v, want white", x, y, p)
			}
		}
	}
}

func TestCallerImage(t *testing.T) {
	img := render(t, testmod.Caller(), interp.Inputs{W: 4, H: 1})
	// color = coord.x + 0.25; at x=0 coord.x = 0.125 → 0.375.
	want := uint8(96) // 0.375*255 + 0.5, truncated
	if p := img.At(0, 0); p[0] != want {
		t.Errorf("pixel = %v, want r=%d", p, want)
	}
}

func TestKillDiscardsFragments(t *testing.T) {
	img := render(t, testmod.KillHalf(), interp.Inputs{W: 8, H: 2})
	if p := img.At(0, 0); p[3] != 0 {
		t.Errorf("left pixel should be discarded, got %v", p)
	}
	if p := img.At(7, 0); p != [4]uint8{255, 255, 255, 255} {
		t.Errorf("right pixel should be white, got %v", p)
	}
	// ASCII view shows holes as spaces.
	art := img.ASCII()
	if !strings.Contains(art, " ") || !strings.Contains(art, "@") {
		t.Errorf("ASCII art unexpected:\n%s", art)
	}
}

func TestUniformsAffectOutput(t *testing.T) {
	m := testmod.Matrix()
	img1 := render(t, m, interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"scale": interp.FloatVal(1)}})
	img0 := render(t, m, interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"scale": interp.FloatVal(0)}})
	if img1.Equal(img0) {
		t.Fatal("scale uniform had no effect")
	}
	// Determinism: rendering twice gives identical images.
	img1b := render(t, m, interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"scale": interp.FloatVal(1)}})
	if !img1.Equal(img1b) {
		t.Fatal("rendering is not deterministic")
	}
	if img1.Hash() == img0.Hash() {
		t.Fatal("hashes should differ")
	}
	if n := img1.DiffCount(img0); n == 0 {
		t.Fatal("DiffCount should be nonzero")
	}
}

func TestLocalVariablesAndAccessChains(t *testing.T) {
	img := render(t, testmod.LocalVars(), interp.Inputs{W: 2, H: 2})
	// color = (coord.x, coord.x, coord.x, 1).
	if p := img.At(0, 0); p[3] != 255 {
		t.Errorf("alpha = %d, want 255", p[3])
	}
	p0, p1 := img.At(0, 0), img.At(1, 0)
	if p0[0] >= p1[0] {
		t.Errorf("x gradient missing: %v vs %v", p0, p1)
	}
}

func TestAllCanonicalModulesRender(t *testing.T) {
	for name, m := range testmod.All() {
		if _, err := interp.Render(m, interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"scale": interp.FloatVal(0.5)}}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestInfiniteLoopFaults(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	// Retarget the left block to itself: infinite loop.
	fn.Blocks[1].Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(fn.Blocks[1].Label))
	_, err := interp.Render(m, interp.Inputs{W: 2, H: 2})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit fault", err)
	}
}

func TestUnreachableFaults(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	fn.Blocks[1].Term = spirv.NewInstr(spirv.OpUnreachable, 0, 0)
	_, err := interp.Render(m, interp.Inputs{W: 2, H: 2})
	if err == nil || !strings.Contains(err.Error(), "OpUnreachable") {
		t.Fatalf("err = %v, want OpUnreachable fault", err)
	}
}

func TestDivisionByZeroIsDefined(t *testing.T) {
	// The dialect defines x/0 = 0 for integers so transformations can never
	// introduce UB; build a shader computing 7/0 and 7%0.
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	seven := m.EnsureConstantInt(7)
	zero := m.EnsureConstantInt(0)
	one := m.EnsureConstantFloat(1)
	d := b.Emit(spirv.OpSDiv, s.Int, seven, zero)
	r := b.Emit(spirv.OpSMod, s.Int, seven, zero)
	sum := b.Emit(spirv.OpIAdd, s.Int, d, r)
	f := b.Emit(spirv.OpConvertSToF, s.Float, sum)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, f, f, f, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	img := render(t, m, interp.Inputs{W: 1, H: 1})
	if p := img.At(0, 0); p[0] != 0 {
		t.Errorf("7/0 + 7%%0 should be 0, pixel = %v", p)
	}
}

func TestAccessChainClamping(t *testing.T) {
	// Dynamic out-of-range indexing clamps rather than faulting.
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	one := m.EnsureConstantFloat(1)
	n4 := m.EnsureConstantInt(4)
	arr := m.EnsureTypeArray(s.Float, n4)
	ptrF := m.EnsureTypePointer(spirv.StorageFunction, s.Float)
	big := m.EnsureConstantInt(99)
	local := b.LocalVariable(arr)
	// arr[3] = 1.0 (clamped from index 99), then read it back via index 99.
	p := b.AccessChain(ptrF, local, big)
	b.Store(p, one)
	p2 := b.AccessChain(ptrF, local, big)
	v := b.Emit(spirv.OpLoad, s.Float, p2)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, v, v, v, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	img := render(t, m, interp.Inputs{W: 1, H: 1})
	if p := img.At(0, 0); p[0] != 255 {
		t.Errorf("clamped access should read back 1.0, got %v", p)
	}
}

func TestValueHelpers(t *testing.T) {
	v := interp.Vec4(0.5, 0, 1, 1)
	if len(v.Elems) != 4 || v.Elems[2].F != 1 {
		t.Fatalf("Vec4 = %v", v)
	}
	if !v.Equal(v.Clone()) {
		t.Fatal("Clone must equal original")
	}
	c := v.Clone()
	c.Elems[0] = interp.FloatVal(0.9)
	if v.Equal(c) {
		t.Fatal("deep clone expected")
	}
	if interp.IntVal(-3).Int() != -3 {
		t.Fatal("IntVal round trip")
	}
	if interp.BoolVal(true).String() != "true" || interp.FloatVal(2).String() != "2" {
		t.Fatal("String rendering")
	}
}

func TestSwitchExecution(t *testing.T) {
	// switch(sel) { case 1: 0.25; case 2: 0.5; default: 1.0 } via OpSwitch.
	build := func(sel int32) *spirv.Module {
		b := spirv.NewBuilder()
		s := b.BeginFragmentShell()
		m := b.Mod
		selC := m.EnsureConstantInt(sel)
		one := m.EnsureConstantFloat(1)
		q := m.EnsureConstantFloat(0.25)
		h := m.EnsureConstantFloat(0.5)
		c1, c2, def, merge := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.SelectionMerge(merge)
		b.Blk.Term = spirv.NewInstr(spirv.OpSwitch, 0, 0, uint32(selC), uint32(def), 1, uint32(c1), 2, uint32(c2))
		b.Blk = nil
		b.Begin(c1)
		v1 := b.Emit(spirv.OpCopyObject, s.Float, q)
		b.Branch(merge)
		b.Begin(c2)
		v2 := b.Emit(spirv.OpCopyObject, s.Float, h)
		b.Branch(merge)
		b.Begin(def)
		v3 := b.Emit(spirv.OpCopyObject, s.Float, one)
		b.Branch(merge)
		b.Begin(merge)
		r := b.Phi(s.Float, v1, c1, v2, c2, v3, def)
		col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, r, r, r, one)
		b.Store(s.Color, col)
		b.FinishFragmentShell(s)
		return m
	}
	for _, tc := range []struct {
		sel  int32
		want uint8
	}{{1, 64}, {2, 128}, {7, 255}} {
		img := render(t, build(tc.sel), interp.Inputs{W: 1, H: 1})
		if p := img.At(0, 0); p[0] != tc.want {
			t.Errorf("switch(%d) pixel = %v, want %d", tc.sel, p, tc.want)
		}
	}
}
