package interp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync/atomic"

	"spirvfuzz/internal/spirv"
)

// Image is the rendered result of executing a module over the pixel grid:
// RGBA bytes, row-major. Quantization to 8 bits per channel gives the
// comparison the same tolerance a real framebuffer readback has, so
// numerically-stable modules compare equal across semantics-preserving
// transformations.
type Image struct {
	W, H int
	Pix  []uint8 // 4 bytes per pixel
}

// At returns the RGBA bytes of pixel (x, y).
func (img *Image) At(x, y int) [4]uint8 {
	i := 4 * (y*img.W + x)
	return [4]uint8{img.Pix[i], img.Pix[i+1], img.Pix[i+2], img.Pix[i+3]}
}

// Equal reports whether two images are identical.
func (img *Image) Equal(other *Image) bool {
	return img.W == other.W && img.H == other.H && bytes.Equal(img.Pix, other.Pix)
}

// DiffCount returns the number of differing pixels (for diagnostics).
func (img *Image) DiffCount(other *Image) int {
	if img.W != other.W || img.H != other.H {
		return img.W * img.H
	}
	n := 0
	for p := 0; p < len(img.Pix); p += 4 {
		for k := 0; k < 4; k++ {
			if img.Pix[p+k] != other.Pix[p+k] {
				n++
				break
			}
		}
	}
	return n
}

// Hash returns a short hex digest of the image contents.
func (img *Image) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%dx%d:", img.W, img.H)
	h.Write(img.Pix)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ASCII renders the image as text (one luminance character per pixel), used
// by examples to visualise bugs like Figure 8's.
func (img *Image) ASCII() string {
	const ramp = " .:-=+*#%@"
	out := make([]byte, 0, (img.W+1)*img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			p := img.At(x, y)
			if p[3] == 0 {
				out = append(out, ' ') // discarded fragment: hole
				continue
			}
			lum := (int(p[0]) + int(p[1]) + int(p[2])) / 3
			out = append(out, ramp[min(lum*len(ramp)/256, len(ramp)-1)])
		}
		out = append(out, '\n')
	}
	return string(out)
}

// treeMode selects the tree-walking reference evaluator for Render instead
// of the compiled register VM. Process-wide and atomic so CLIs can flip it
// once before spinning up worker pools.
var treeMode atomic.Bool

// SetTreeWalker selects the execution engine used by Render: the
// tree-walking reference evaluator (true) or the compiled register VM
// (false, the default).
func SetTreeWalker(on bool) { treeMode.Store(on) }

// TreeWalker reports whether Render currently uses the tree-walking
// reference evaluator.
func TreeWalker() bool { return treeMode.Load() }

// laneCount selects warp-style lane execution for compiled renders: groups
// of laneCount pixels advance through one decoded instruction stream
// together, with divergent or faulting lanes retired to the scalar VM.
// Process-wide and atomic, like treeMode, so CLIs flip it once up front.
var laneCount atomic.Int32

// MaxLanes is the widest supported lane group. Wider requests are clamped;
// the divergence mask is a uint32, so the architectural ceiling is 32.
const MaxLanes = 16

// SetLanes sets the lane-group width used by compiled renders. n <= 1
// selects the plain scalar VM (the default); 2..MaxLanes selects lane mode;
// larger values clamp to MaxLanes. The tree-walker engine is unaffected.
func SetLanes(n int) {
	if n < 0 {
		n = 0
	}
	if n > MaxLanes {
		n = MaxLanes
	}
	laneCount.Store(int32(n))
}

// Lanes returns the lane-group width selected by SetLanes (0 or 1 = scalar).
func Lanes() int { return int(laneCount.Load()) }

// laneAutoMode selects adaptive lane-width selection: each compiled render
// probes the first row at 8 lanes and picks scalar, 8, or 16 lanes from the
// observed divergence rate. Process-wide and atomic, like laneCount.
var laneAutoMode atomic.Bool

// SetLanesAuto enables or disables adaptive per-render lane-width selection.
// When enabled it takes precedence over the fixed width set by SetLanes.
func SetLanesAuto(on bool) { laneAutoMode.Store(on) }

// LanesAuto reports whether adaptive lane-width selection is enabled.
func LanesAuto() bool { return laneAutoMode.Load() }

// SetLanesFlag configures lane execution from a CLI flag value: "auto"
// enables adaptive per-render width selection, and a non-negative integer
// selects a fixed width as SetLanes does ("0" = scalar, the default).
func SetLanesFlag(v string) error {
	if v == "auto" {
		SetLanesAuto(true)
		SetLanes(0)
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return fmt.Errorf("interp: -lanes must be \"auto\" or a non-negative integer, got %q", v)
	}
	SetLanesAuto(false)
	SetLanes(n)
	return nil
}

// Process-wide tallies of adaptive width decisions, indexed scalar/8/16, for
// observability (gfauto prints them when -lanes auto is active).
var autoPickTotals [3]atomic.Uint64

// AutoLanePicks returns how many adaptive renders picked the scalar VM, 8
// lanes, and 16 lanes respectively.
func AutoLanePicks() (scalar, eight, sixteen uint64) {
	return autoPickTotals[0].Load(), autoPickTotals[1].Load(), autoPickTotals[2].Load()
}

// LaneStats counts lane-execution events for one render: groups launched,
// control-flow divergences observed (a group whose lanes disagreed on a
// branch or switch edge), and pixels retired to the scalar VM.
type LaneStats struct {
	Groups      uint64
	Divergences uint64
	Fallbacks   uint64
}

func (s *LaneStats) add(o LaneStats) {
	s.Groups += o.Groups
	s.Divergences += o.Divergences
	s.Fallbacks += o.Fallbacks
}

// Process-wide lane counters, mirroring the runner's OptPasses precedent:
// every lane render accumulates into these so long-lived processes (spirvd,
// gfauto) can report lane behavior without threading stats through every
// call site.
var (
	laneGroupsTotal      atomic.Uint64
	laneDivergencesTotal atomic.Uint64
	laneFallbacksTotal   atomic.Uint64
)

func addLaneTotals(s LaneStats) {
	if s.Groups != 0 {
		laneGroupsTotal.Add(s.Groups)
	}
	if s.Divergences != 0 {
		laneDivergencesTotal.Add(s.Divergences)
	}
	if s.Fallbacks != 0 {
		laneFallbacksTotal.Add(s.Fallbacks)
	}
}

// LaneTotals returns the process-wide accumulated lane statistics.
func LaneTotals() LaneStats {
	return LaneStats{
		Groups:      laneGroupsTotal.Load(),
		Divergences: laneDivergencesTotal.Load(),
		Fallbacks:   laneFallbacksTotal.Load(),
	}
}

// Render executes the module's entry point for every pixel of the grid and
// returns the resulting image. Any invocation fault aborts the render with
// that fault — the analogue of a crash or device loss. OpKill discards the
// fragment, leaving a fully transparent pixel.
//
// By default the module is lowered once by Compile and executed by the
// register VM; SetTreeWalker(true) switches to the tree-walking reference
// evaluator, and SetLanes(n) makes the compiled path execute n pixels per
// instruction with scalar fallback. All engines implement identical
// semantics — images are byte-equal and faults carry identical messages
// (pinned by the differential tests).
func Render(m *spirv.Module, in Inputs) (*Image, error) {
	if TreeWalker() {
		return RenderTree(m, in)
	}
	p, err := Compile(m)
	if err != nil {
		return nil, err
	}
	return p.Render(in)
}

// RenderTree is the tree-walking reference implementation of Render: it
// re-walks the instruction operands of the module for every pixel. It is
// the executable specification the VM is differentially tested against.
func RenderTree(m *spirv.Module, in Inputs) (*Image, error) {
	w, h := in.W, in.H
	if w == 0 {
		w = DefaultGrid
	}
	if h == 0 {
		h = DefaultGrid
	}
	entry := m.EntryPointFunction()
	if entry == nil {
		return nil, faultf("module has no entry point")
	}
	mc, err := newMachine(m)
	if err != nil {
		return nil, err
	}
	mc.setUniforms(in)
	// Locate the coordinate input and color output variables.
	var coordVar, colorVar spirv.ID
	for _, ins := range m.TypesGlobals {
		if ins.Op != spirv.OpVariable {
			continue
		}
		switch ins.Operands[0] {
		case spirv.StorageInput:
			if coordVar == 0 {
				coordVar = ins.Result
			}
		case spirv.StorageOutput:
			if colorVar == 0 {
				colorVar = ins.Result
			}
		}
	}
	if colorVar == 0 {
		return nil, faultf("module has no Output variable")
	}
	// The output zero depends only on the module, not the pixel: build it
	// once and clone per invocation.
	colorZero, err := ZeroValue(m, mustPointee(m, colorVar))
	if err != nil {
		return nil, err
	}
	img := &Image{W: w, H: h, Pix: make([]uint8, 4*w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if coordVar != 0 {
				cx := (float32(x) + 0.5) / float32(w)
				cy := (float32(y) + 0.5) / float32(h)
				mc.globals[coordVar].V = Vec2(cx, cy)
			}
			mc.globals[colorVar].V = colorZero.Clone()
			mc.steps = 0
			_, err = mc.callFunction(entry, nil)
			p := 4 * (y*w + x)
			if err == errKill {
				// Discarded fragment: transparent black.
				img.Pix[p], img.Pix[p+1], img.Pix[p+2], img.Pix[p+3] = 0, 0, 0, 0
				continue
			}
			if err != nil {
				return nil, err
			}
			out := mc.globals[colorVar].V
			var rgba [4]float32
			switch out.Kind {
			case KindComposite:
				for i := 0; i < 4 && i < len(out.Elems); i++ {
					rgba[i] = out.Elems[i].F
				}
			case KindFloat:
				rgba[0] = out.F
			}
			for i := 0; i < 4; i++ {
				img.Pix[p+i] = quantize(rgba[i])
			}
		}
	}
	return img, nil
}

func mustPointee(m *spirv.Module, varID spirv.ID) spirv.ID {
	def := m.Def(varID)
	_, pointee, _ := m.PointerInfo(def.Type)
	return pointee
}

// quantize clamps a channel to [0,1] and converts to 8 bits. NaN maps to 0.
func quantize(f float32) uint8 {
	if !(f > 0) { // handles NaN and negatives
		return 0
	}
	if f >= 1 {
		return 255
	}
	return uint8(f*255 + 0.5)
}
