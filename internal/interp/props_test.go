package interp_test

import (
	"math"
	"testing"
	"testing/quick"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
)

// TestIntOpsMatchGo checks the interpreter's integer semantics against Go's
// (two's-complement 32-bit), via direct machine evaluation using a shader
// that stores equality with the Go-computed expectation.
func TestIntOpsMatchGo(t *testing.T) {
	mkCheck := func(op spirv.Opcode, a, b, want int32) bool {
		bld := spirv.NewBuilder()
		s := bld.BeginFragmentShell()
		m := bld.Mod
		ca := m.EnsureConstantInt(a)
		cb := m.EnsureConstantInt(b)
		cw := m.EnsureConstantInt(want)
		r := bld.Emit(op, s.Int, ca, cb)
		eq := bld.Emit(spirv.OpIEqual, s.Bool, r, cw)
		one := m.EnsureConstantFloat(1)
		zero := m.EnsureConstantFloat(0)
		sel := bld.Emit(spirv.OpSelect, s.Float, eq, one, zero)
		col := bld.Emit(spirv.OpCompositeConstruct, s.Vec4, sel, sel, sel, one)
		bld.Store(s.Color, col)
		bld.FinishFragmentShell(s)
		img, err := interp.Render(m, interp.Inputs{W: 1, H: 1})
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", op, a, b, err)
		}
		return img.At(0, 0)[0] == 255
	}
	goSMod := func(a, b int32) int32 {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return 0
		}
		r := a % b
		if r != 0 && (r < 0) != (b < 0) {
			r += b
		}
		return r
	}
	prop := func(a, b int32) bool {
		div := int32(0)
		if b != 0 && !(a == math.MinInt32 && b == -1) {
			div = a / b
		} else if a == math.MinInt32 && b == -1 {
			div = a // wraps
		}
		return mkCheck(spirv.OpIAdd, a, b, a+b) &&
			mkCheck(spirv.OpISub, a, b, a-b) &&
			mkCheck(spirv.OpIMul, a, b, a*b) &&
			mkCheck(spirv.OpSDiv, a, b, div) &&
			mkCheck(spirv.OpSMod, a, b, goSMod(a, b)) &&
			mkCheck(spirv.OpBitwiseAnd, a, b, a&b) &&
			mkCheck(spirv.OpBitwiseOr, a, b, a|b) &&
			mkCheck(spirv.OpBitwiseXor, a, b, a^b)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
	// Edge cases the generator may miss.
	for _, pair := range [][2]int32{{math.MinInt32, -1}, {7, 0}, {-7, 3}, {7, -3}, {0, 0}} {
		if !prop(pair[0], pair[1]) {
			t.Fatalf("edge case %v failed", pair)
		}
	}
}

// TestFloatOpsAreIEEE checks a few float identities the transformations rely
// on: x*1 == x, x/1 == x, and that doubling-then-halving is exact.
func TestFloatOpsAreIEEE(t *testing.T) {
	check := func(build func(bld *spirv.Builder, s *spirv.FragmentShell, x spirv.ID) spirv.ID, x float32) bool {
		bld := spirv.NewBuilder()
		s := bld.BeginFragmentShell()
		m := bld.Mod
		cx := m.EnsureConstantFloat(x)
		r := build(bld, s, cx)
		eq := bld.Emit(spirv.OpFOrdEqual, s.Bool, r, cx)
		one := m.EnsureConstantFloat(1)
		zero := m.EnsureConstantFloat(0)
		sel := bld.Emit(spirv.OpSelect, s.Float, eq, one, zero)
		col := bld.Emit(spirv.OpCompositeConstruct, s.Vec4, sel, sel, sel, one)
		bld.Store(s.Color, col)
		bld.FinishFragmentShell(s)
		img, err := interp.Render(m, interp.Inputs{W: 1, H: 1})
		if err != nil {
			t.Fatal(err)
		}
		return img.At(0, 0)[0] == 255
	}
	mulOne := func(bld *spirv.Builder, s *spirv.FragmentShell, x spirv.ID) spirv.ID {
		one := bld.Mod.EnsureConstantFloat(1)
		return bld.Emit(spirv.OpFMul, s.Float, x, one)
	}
	divOne := func(bld *spirv.Builder, s *spirv.FragmentShell, x spirv.ID) spirv.ID {
		one := bld.Mod.EnsureConstantFloat(1)
		return bld.Emit(spirv.OpFDiv, s.Float, x, one)
	}
	doubleHalf := func(bld *spirv.Builder, s *spirv.FragmentShell, x spirv.ID) spirv.ID {
		two := bld.Mod.EnsureConstantFloat(2)
		half := bld.Mod.EnsureConstantFloat(0.5)
		d := bld.Emit(spirv.OpFMul, s.Float, x, two)
		return bld.Emit(spirv.OpFMul, s.Float, d, half)
	}
	prop := func(bits uint32) bool {
		x := math.Float32frombits(bits % 0x7F000000) // finite, positive range
		return check(mulOne, x) && check(divOne, x) && check(doubleHalf, x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float32{0, 1, 0.1, 1e-30, 3.40282e38 / 4} {
		if !check(mulOne, x) || !check(divOne, x) || !check(doubleHalf, x) {
			t.Fatalf("identity failed for %v", x)
		}
	}
}

// TestRenderIsPureFunctionOfModuleAndInputs: repeated renders with equal
// inputs give equal images; different uniforms give (generally) different
// hashes for a uniform-sensitive shader.
func TestRenderIsPureFunctionOfModuleAndInputs(t *testing.T) {
	prop := func(seed uint8) bool {
		v := float32(seed%8) / 8
		m := gradientUniformShader()
		in := interp.Inputs{W: 4, H: 4, Uniforms: map[string]interp.Value{"g": interp.FloatVal(v)}}
		a, err1 := interp.Render(m, in)
		b, err2 := interp.Render(m, in)
		return err1 == nil && err2 == nil && a.Equal(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func gradientUniformShader() *spirv.Module {
	bld := spirv.NewBuilder()
	m := bld.Mod
	f32 := m.EnsureTypeFloat(32)
	g := bld.Uniform("g", f32, 1)
	s := bld.BeginFragmentShell()
	one := m.EnsureConstantFloat(1)
	gv := bld.Emit(spirv.OpLoad, s.Float, g)
	col := bld.Emit(spirv.OpCompositeConstruct, s.Vec4, gv, gv, gv, one)
	bld.Store(s.Color, col)
	bld.FinishFragmentShell(s)
	return m
}
