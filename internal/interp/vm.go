package interp

import "sync"

// vmachine executes a compiled Program. A machine owns its mutable state —
// global cells, the fixed value pool (constants plus this machine's global
// pointers) and a per-function frame arena — so concurrent renders use one
// machine per goroutine over the same shared Program.
type vmachine struct {
	p     *Program
	fixed []Value
	cells []Cell
	arena [][][]Value // per function: stack of reusable frames
	valArena
	scratch   []Value // ϕ parallel-move staging
	argbuf    []Value // call-argument staging
	steps     int
	callDepth int
}

// valArena is the bump arena for frame-bound composite elements, shared by
// the scalar vmachine and the laneVM so both engines evaluate composites
// through the same allocation and semantic paths.
type valArena struct {
	earena []Value // bump arena for frame-bound composite elements
	eoff   int
}

// allocElems bump-allocates n element slots from the per-pixel arena. Values
// backed by the arena may only be stored in frame slots: frames die when the
// invocation returns, and everything that outlives the pixel (memory cells)
// is written through Clone, which copies to the heap. renderPixel (and the
// lane renderer, per group) resets the arena, so steady-state rendering
// allocates nothing.
func (ar *valArena) allocElems(n int) []Value {
	if ar.eoff+n > len(ar.earena) {
		// A new chunk; the old one stays alive while frame values reference
		// it and is collected afterwards.
		ar.earena = make([]Value, max(4096, n))
		ar.eoff = 0
	}
	s := ar.earena[ar.eoff : ar.eoff+n : ar.eoff+n]
	ar.eoff += n
	return s
}

// arenaClone is Value.Clone with element storage from the arena; the result
// is frame-bound only.
func (ar *valArena) arenaClone(v Value) Value {
	if v.Kind != KindComposite {
		return v
	}
	c := v
	c.Elems = ar.allocElems(len(v.Elems))
	for i, e := range v.Elems {
		c.Elems[i] = ar.arenaClone(e)
	}
	return c
}

// lanes2 is mapLanes2 with arena-backed element storage.
func (ar *valArena) lanes2(a, b Value, f func(x, y Value) (Value, error)) (Value, error) {
	if a.Kind == KindComposite && b.Kind == KindComposite {
		if len(a.Elems) != len(b.Elems) {
			return Value{}, faultf("lane count mismatch")
		}
		elems := ar.allocElems(len(a.Elems))
		for i := range a.Elems {
			v, err := f(a.Elems[i], b.Elems[i])
			if err != nil {
				return Value{}, err
			}
			elems[i] = v
		}
		return Value{Kind: KindComposite, Elems: elems}, nil
	}
	return f(a, b)
}

// evalBin executes one lanewise binary op. When the runtime operand kinds
// match the instruction's primitive class it computes directly from the
// unboxed primitive — no closure calls, element storage from the arena. Any
// shape the fast path does not cover (kind mismatches, lane count mismatch,
// scalar/vector mixes) falls back to the boxed semantic function, which is
// where the canonical fault messages live. The primitives are pure, so a
// partially-computed fast path can safely be recomputed by the fallback.
func (ar *valArena) evalBin(ins *pinstr, a, b Value) (Value, error) {
	switch ins.fclass {
	case fcFloat:
		if a.Kind == KindFloat && b.Kind == KindFloat {
			return FloatVal(ins.binF(a.F, b.F)), nil
		}
		if a.Kind == KindComposite && b.Kind == KindComposite && len(a.Elems) == len(b.Elems) {
			elems := ar.allocElems(len(a.Elems))
			for i := range a.Elems {
				x, y := &a.Elems[i], &b.Elems[i]
				if x.Kind != KindFloat || y.Kind != KindFloat {
					return ar.lanes2(a, b, ins.bin)
				}
				elems[i] = Value{Kind: KindFloat, F: ins.binF(x.F, y.F)}
			}
			return Value{Kind: KindComposite, Elems: elems}, nil
		}
	case fcInt:
		if a.Kind == KindInt && b.Kind == KindInt {
			return UintVal(ins.binI(a.Bits, b.Bits)), nil
		}
		if a.Kind == KindComposite && b.Kind == KindComposite && len(a.Elems) == len(b.Elems) {
			elems := ar.allocElems(len(a.Elems))
			for i := range a.Elems {
				x, y := &a.Elems[i], &b.Elems[i]
				if x.Kind != KindInt || y.Kind != KindInt {
					return ar.lanes2(a, b, ins.bin)
				}
				elems[i] = Value{Kind: KindInt, Bits: ins.binI(x.Bits, y.Bits)}
			}
			return Value{Kind: KindComposite, Elems: elems}, nil
		}
	case fcFloatCmp:
		if a.Kind == KindFloat && b.Kind == KindFloat {
			return BoolVal(ins.cmpF(a.F, b.F)), nil
		}
	case fcIntCmp:
		if a.Kind == KindInt && b.Kind == KindInt {
			return BoolVal(ins.cmpI(a.Bits, b.Bits)), nil
		}
	}
	return ar.lanes2(a, b, ins.bin)
}

// lanes1 is mapLanes1 with arena-backed element storage.
func (ar *valArena) lanes1(a Value, f func(x Value) (Value, error)) (Value, error) {
	if a.Kind == KindComposite {
		elems := ar.allocElems(len(a.Elems))
		for i := range a.Elems {
			v, err := f(a.Elems[i])
			if err != nil {
				return Value{}, err
			}
			elems[i] = v
		}
		return Value{Kind: KindComposite, Elems: elems}, nil
	}
	return f(a)
}

// newState builds one pixel-stream's worth of mutable module state: global
// cells cloned from their initializers (with uniforms applied) and a fixed
// pool whose global entries point at those cells. The scalar machine owns one
// such state; the lane VM owns one per lane.
func (p *Program) newState(in Inputs) ([]Cell, []Value) {
	cells := make([]Cell, len(p.globals))
	for i, g := range p.globals {
		cells[i].V = g.init.Clone()
	}
	fixed := make([]Value, len(p.fixedProto))
	copy(fixed, p.fixedProto)
	for i, g := range p.fixedGlobal {
		if g >= 0 {
			fixed[i] = Value{Kind: KindPointer, Ptr: &Pointer{Cell: &cells[g]}}
		}
	}
	for _, u := range p.uniforms {
		if v, ok := in.Uniforms[u.name]; ok {
			cells[u.global].V = v.Clone()
		}
	}
	return cells, fixed
}

func (p *Program) newVM(in Inputs) *vmachine {
	vm := &vmachine{p: p}
	vm.cells, vm.fixed = p.newState(in)
	vm.arena = make([][][]Value, len(p.funcs))
	return vm
}

// acquire returns a cleared frame for function f from the arena.
func (vm *vmachine) acquire(f int32) []Value {
	pool := vm.arena[f]
	if n := len(pool); n > 0 {
		fr := pool[n-1]
		vm.arena[f] = pool[:n-1]
		clear(fr)
		return fr
	}
	return make([]Value, vm.p.funcs[f].nslots)
}

func (vm *vmachine) release(f int32, fr []Value) {
	vm.arena[f] = append(vm.arena[f], fr)
}

// read resolves an operand ref. The two hot cases — a written frame slot and
// a fixed-pool constant — stay small enough to inline; unset slots take the
// readSlow path.
func (vm *vmachine) read(pf *pfunc, fr []Value, ref int32) (Value, error) {
	if ref >= 0 {
		if v := fr[ref]; v.Kind != KindUnset {
			return v, nil
		}
		return vm.readSlow(pf, ref)
	}
	return vm.fixed[-ref-1], nil
}

// readSlow handles an unset frame slot: fall back to the module-level
// binding of the same id, mirroring the tree-walker's
// frame-then-consts-then-globals lookup, and fault with its message.
func (vm *vmachine) readSlow(pf *pfunc, ref int32) (Value, error) {
	if fb := pf.fallback[ref]; fb != refNone {
		return vm.fixed[-fb-1], nil
	}
	return Value{}, faultf("read of id %%%d with no value", pf.slotIDs[ref])
}

// call runs funcs[fidx] to completion, mirroring callFunction's fault order
// (depth, then arity) and step accounting exactly.
func (vm *vmachine) call(fidx int32, args []Value) (Value, error) {
	pf := &vm.p.funcs[fidx]
	vm.callDepth++
	defer func() { vm.callDepth-- }()
	if vm.callDepth > maxCallDepth {
		return Value{}, faultf("call depth limit exceeded in function %%%d", pf.id)
	}
	if len(args) != pf.nparams {
		return Value{}, faultf("function %%%d called with %d args, wants %d", pf.id, len(args), pf.nparams)
	}
	if pf.noBlocks != nil {
		return Value{}, pf.noBlocks
	}
	fr := vm.acquire(fidx)
	for i, s := range pf.paramSlots {
		fr[s] = args[i]
	}
	ret, err := vm.exec(pf, fr)
	vm.release(fidx, fr)
	return ret, err
}

// exec interprets one activation of pf over frame fr.
func (vm *vmachine) exec(pf *pfunc, fr []Value) (Value, error) {
	bi := int32(0)
	first := true
	var moves []pmove
	for {
		b := &pf.blocks[bi]
		vm.steps++
		if vm.steps > MaxSteps {
			return Value{}, faultf("step limit exceeded")
		}
		if first {
			first = false
			if pf.entryPhiFault != nil {
				return Value{}, pf.entryPhiFault
			}
		} else if len(moves) > 0 {
			// ϕ moves read simultaneously: stage every source, then write.
			vm.scratch = vm.scratch[:0]
			for i := range moves {
				mv := &moves[i]
				if mv.fault != nil {
					return Value{}, mv.fault
				}
				var v Value
				if r := mv.src; r < 0 {
					v = vm.fixed[-r-1]
				} else if v = fr[r]; v.Kind == KindUnset {
					w, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					v = w
				}
				vm.scratch = append(vm.scratch, v)
			}
			for i := range moves {
				fr[moves[i].dst] = vm.scratch[i]
			}
		}

		for ii := range b.code {
			vm.steps++
			if vm.steps > MaxSteps {
				return Value{}, faultf("step limit exceeded")
			}
			ins := &b.code[ii]
			switch ins.op {
			case popFault:
				return Value{}, ins.fault

			case popBin:
				// Operand reads and the scalar fast paths are inlined by
				// hand: binary arithmetic dominates every real shader, and
				// read/evalBin exceed the compiler's inlining budget.
				var a, bv Value
				if r := ins.a; r < 0 {
					a = vm.fixed[-r-1]
				} else if a = fr[r]; a.Kind == KindUnset {
					v, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					a = v
				}
				if r := ins.b; r < 0 {
					bv = vm.fixed[-r-1]
				} else if bv = fr[r]; bv.Kind == KindUnset {
					v, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					bv = v
				}
				switch {
				case ins.fclass == fcFloat && a.Kind == KindFloat && bv.Kind == KindFloat:
					fr[ins.dst] = Value{Kind: KindFloat, F: ins.binF(a.F, bv.F)}
				case ins.fclass == fcFloatCmp && a.Kind == KindFloat && bv.Kind == KindFloat:
					fr[ins.dst] = Value{Kind: KindBool, B: ins.cmpF(a.F, bv.F)}
				case ins.fclass == fcInt && a.Kind == KindInt && bv.Kind == KindInt:
					fr[ins.dst] = Value{Kind: KindInt, Bits: ins.binI(a.Bits, bv.Bits)}
				case ins.fclass == fcIntCmp && a.Kind == KindInt && bv.Kind == KindInt:
					fr[ins.dst] = Value{Kind: KindBool, B: ins.cmpI(a.Bits, bv.Bits)}
				default:
					v, err := vm.evalBin(ins, a, bv)
					if err != nil {
						return Value{}, err
					}
					fr[ins.dst] = v
				}

			case popUn:
				a, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				v, err := vm.lanes1(a, ins.un)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = v

			case popSelect:
				c, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				a, err := vm.read(pf, fr, ins.b)
				if err != nil {
					return Value{}, err
				}
				bv, err := vm.read(pf, fr, ins.c)
				if err != nil {
					return Value{}, err
				}
				v, err := selectValue(c, a, bv)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = v

			case popVecScalar:
				vec, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				s, err := vm.read(pf, fr, ins.b)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = vectorTimesScalar(vec, s)

			case popMatVec:
				mat, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				vec, err := vm.read(pf, fr, ins.b)
				if err != nil {
					return Value{}, err
				}
				v, err := matrixTimesVector(mat, vec)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = v

			case popDot:
				a, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				bv, err := vm.read(pf, fr, ins.b)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = dot(a, bv)

			case popConstruct:
				elems := vm.allocElems(len(ins.args))
				for i, r := range ins.args {
					var v Value
					if r < 0 {
						v = vm.fixed[-r-1]
					} else if v = fr[r]; v.Kind == KindUnset {
						w, err := vm.readSlow(pf, r)
						if err != nil {
							return Value{}, err
						}
						v = w
					}
					elems[i] = v
				}
				fr[ins.dst] = Value{Kind: KindComposite, Elems: elems}

			case popExtract:
				var v Value
				if r := ins.a; r < 0 {
					v = vm.fixed[-r-1]
				} else if v = fr[r]; v.Kind == KindUnset {
					w, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					v = w
				}
				if len(ins.lits) == 1 && v.Kind == KindComposite && int(ins.lits[0]) < len(v.Elems) {
					fr[ins.dst] = v.Elems[ins.lits[0]]
					continue
				}
				v, err := compositeExtract(v, ins.lits)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = v

			case popInsert:
				obj, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				base, err := vm.read(pf, fr, ins.b)
				if err != nil {
					return Value{}, err
				}
				v, err := compositeInsert(obj, base, ins.lits)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = v

			case popShuffle:
				a, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				bv, err := vm.read(pf, fr, ins.b)
				if err != nil {
					return Value{}, err
				}
				v, err := vectorShuffle(a, bv, ins.lits)
				if err != nil {
					return Value{}, err
				}
				fr[ins.dst] = v

			case popCopy:
				var v Value
				if r := ins.a; r < 0 {
					v = vm.fixed[-r-1]
				} else if v = fr[r]; v.Kind == KindUnset {
					w, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					v = w
				}
				fr[ins.dst] = v

			case popZero:
				fr[ins.dst] = vm.arenaClone(ins.zero)

			case popVariable:
				var init Value
				if ins.a != refNone {
					v, err := vm.read(pf, fr, ins.a)
					if err != nil {
						return Value{}, err
					}
					init = v.Clone()
				} else {
					init = ins.zero.Clone()
				}
				// A fresh cell per execution: escaped pointers from earlier
				// activations stay valid, as with the tree-walker.
				cell := &Cell{V: init}
				fr[ins.dst] = Value{Kind: KindPointer, Ptr: &Pointer{Cell: cell}}

			case popLoad:
				var pv Value
				if r := ins.a; r < 0 {
					pv = vm.fixed[-r-1]
				} else if pv = fr[r]; pv.Kind == KindUnset {
					w, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					pv = w
				}
				if pv.Kind != KindPointer {
					return Value{}, faultf("OpLoad of non-pointer %%%d", ins.msgID)
				}
				fr[ins.dst] = vm.loadPtr(pv.Ptr)

			case popStore:
				var pv, v Value
				if r := ins.a; r < 0 {
					pv = vm.fixed[-r-1]
				} else if pv = fr[r]; pv.Kind == KindUnset {
					w, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					pv = w
				}
				if r := ins.b; r < 0 {
					v = vm.fixed[-r-1]
				} else if v = fr[r]; v.Kind == KindUnset {
					w, err := vm.readSlow(pf, r)
					if err != nil {
						return Value{}, err
					}
					v = w
				}
				if pv.Kind != KindPointer {
					return Value{}, faultf("OpStore to non-pointer %%%d", ins.msgID)
				}
				pv.Ptr.Store(v)

			case popAccessChain:
				base, err := vm.read(pf, fr, ins.a)
				if err != nil {
					return Value{}, err
				}
				if base.Kind != KindPointer {
					return Value{}, faultf("OpAccessChain on non-pointer %%%d", ins.msgID)
				}
				ptr := base.Ptr
				for _, r := range ins.args {
					idx, err := vm.read(pf, fr, r)
					if err != nil {
						return Value{}, err
					}
					ptr = ptr.Elem(int(int32(idx.Bits)))
				}
				fr[ins.dst] = Value{Kind: KindPointer, Ptr: ptr}

			case popCall:
				args := vm.argbuf[:0]
				for _, r := range ins.args {
					v, err := vm.read(pf, fr, r)
					if err != nil {
						return Value{}, err
					}
					args = append(args, v)
				}
				vm.argbuf = args // keep grown capacity for reuse
				ret, err := vm.call(ins.callee, args)
				if err != nil {
					return Value{}, err
				}
				if ins.dst != refNone {
					fr[ins.dst] = ret
				}

			case popNop:
				// costs a step, like the tree-walker's OpNop
			}
		}

		t := &b.term
		var e *pedge
		switch t.kind {
		case tkBranch:
			e = &t.edges[0]
		case tkCondBr:
			var c Value
			if r := t.sel; r < 0 {
				c = vm.fixed[-r-1]
			} else if c = fr[r]; c.Kind == KindUnset {
				w, err := vm.readSlow(pf, r)
				if err != nil {
					return Value{}, err
				}
				c = w
			}
			if c.Kind != KindBool {
				return Value{}, faultf("conditional branch on non-boolean in %%%d", t.label)
			}
			if c.B {
				e = &t.edges[0]
			} else {
				e = &t.edges[1]
			}
		case tkSwitch:
			sel, err := vm.read(pf, fr, t.sel)
			if err != nil {
				return Value{}, err
			}
			if sel.Kind != KindInt {
				return Value{}, faultf("switch on non-integer selector in block %%%d", t.label)
			}
			if ei, ok := t.jump[sel.Bits]; ok {
				e = &t.edges[ei]
			} else {
				e = &t.edges[0]
			}
		case tkReturn:
			return Value{}, nil
		case tkReturnValue:
			return vm.read(pf, fr, t.ret)
		case tkKill:
			return Value{}, errKill
		default: // tkFault
			return Value{}, t.fault
		}
		if e.fault != nil {
			return Value{}, e.fault
		}
		moves = e.moves
		bi = e.target
	}
}

// loadPtr is Pointer.Load with the copy taken from the arena: loaded values
// land in frame slots, and anything stored back into a cell goes through
// Pointer.Store's heap Clone.
func (vm *vmachine) loadPtr(p *Pointer) Value {
	v := &p.Cell.V
	for _, i := range p.Path {
		v = &v.Elems[i]
	}
	return vm.arenaClone(*v)
}

// resetColor writes the program's output zero into the color cell, reusing
// the cell's existing element storage when the shape still matches (the
// common case: OpStore replaces the whole value with a same-shaped clone, so
// after the first pixel no allocation is needed).
func (vm *vmachine) resetColor() {
	resetValue(&vm.cells[vm.p.color].V, vm.p.colorZero)
}

func resetValue(dst *Value, proto Value) {
	if proto.Kind == KindComposite && dst.Kind == KindComposite && len(dst.Elems) == len(proto.Elems) {
		elems := dst.Elems
		for i := range elems {
			resetValue(&elems[i], proto.Elems[i])
		}
		*dst = proto
		dst.Elems = elems
		return
	}
	*dst = proto.Clone()
}

// setCoord updates the coordinate input cell, in place when the cell still
// holds a two-float vector (the common case after the first pixel).
func (vm *vmachine) setCoord(cx, cy float32) {
	v := &vm.cells[vm.p.coord].V
	if v.Kind == KindComposite && len(v.Elems) == 2 &&
		v.Elems[0].Kind == KindFloat && v.Elems[1].Kind == KindFloat {
		v.Elems[0].F = cx
		v.Elems[1].F = cy
		return
	}
	*v = Vec2(cx, cy)
}

// Render executes the compiled program for every pixel of the grid
// serially; it is equivalent to RenderParallel with one worker.
func (p *Program) Render(in Inputs) (*Image, error) {
	return p.RenderParallel(in, 1)
}

// RenderParallel renders with up to workers goroutines over disjoint
// contiguous row bands, one VM instance per goroutine writing a disjoint
// Pix range. Output is byte-identical to the serial render for any worker
// count; when the module faults, the fault of the scan-order-first pixel is
// reported, matching what a serial render returns. When lane mode is enabled
// via SetLanes, rendering goes through the lane VM (with per-lane scalar
// fallback) instead — the output contract is identical. SetLanesAuto
// overrides the fixed width with a per-render probe of the first row
// (pickLanes); since every width is byte-identical, the policy only moves
// time, never output.
func (p *Program) RenderParallel(in Inputs, workers int) (*Image, error) {
	n := Lanes()
	if LanesAuto() {
		n = p.pickLanes(in)
	}
	if n > 1 {
		img, _, err := p.RenderParallelLanes(in, workers, n)
		return img, err
	}
	return p.renderParallelScalar(in, workers)
}

func (p *Program) renderParallelScalar(in Inputs, workers int) (*Image, error) {
	w, h := in.W, in.H
	if w == 0 {
		w = DefaultGrid
	}
	if h == 0 {
		h = DefaultGrid
	}
	img := &Image{W: w, H: h, Pix: make([]uint8, 4*w*h)}
	if workers > h {
		workers = h
	}
	if workers <= 1 {
		if _, err := p.renderRows(p.newVM(in), img, 0, h); err != nil {
			return nil, err
		}
		return img, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstPix int
		firstErr error
	)
	for b := 0; b < workers; b++ {
		y0, y1 := b*h/workers, (b+1)*h/workers
		wg.Add(1)
		go func(y0, y1 int) {
			defer wg.Done()
			pix, err := p.renderRows(p.newVM(in), img, y0, y1)
			if err != nil {
				mu.Lock()
				if firstErr == nil || pix < firstPix {
					firstPix, firstErr = pix, err
				}
				mu.Unlock()
			}
		}(y0, y1)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return img, nil
}

// renderRows renders rows [y0, y1) into img. On a fault it returns the
// scan-order index of the faulting pixel so parallel renders can report the
// first fault a serial scan would hit.
func (p *Program) renderRows(vm *vmachine, img *Image, y0, y1 int) (int, error) {
	w := img.W
	for y := y0; y < y1; y++ {
		for x := 0; x < w; x++ {
			if pix, err := p.renderPixel(vm, img, x, y); err != nil {
				return pix, err
			}
		}
	}
	return 0, nil
}

// renderPixel runs one full pixel on the scalar machine and writes its
// quantized color (or transparent black for a discarded fragment) into img.
// It is the unit of work shared by the scalar row renderer and the lane
// renderer's per-lane fallback. On a fault it returns the pixel's scan-order
// index and the error.
func (p *Program) renderPixel(vm *vmachine, img *Image, x, y int) (int, error) {
	w, h := img.W, img.H
	if p.coord >= 0 {
		cx := (float32(x) + 0.5) / float32(w)
		cy := (float32(y) + 0.5) / float32(h)
		vm.setCoord(cx, cy)
	}
	vm.resetColor()
	vm.steps = 0
	vm.eoff = 0 // recycle the element arena: frame values are dead
	_, err := vm.call(p.entry, nil)
	pi := 4 * (y*w + x)
	if err == errKill {
		// Discarded fragment: transparent black.
		img.Pix[pi], img.Pix[pi+1], img.Pix[pi+2], img.Pix[pi+3] = 0, 0, 0, 0
		return 0, nil
	}
	if err != nil {
		return y*w + x, err
	}
	writePixel(img.Pix[pi:pi+4:pi+4], vm.cells[p.color].V)
	return 0, nil
}

// writePixel quantizes an output color value into four Pix bytes.
func writePixel(dst []uint8, out Value) {
	var rgba [4]float32
	switch out.Kind {
	case KindComposite:
		for i := 0; i < 4 && i < len(out.Elems); i++ {
			rgba[i] = out.Elems[i].F
		}
	case KindFloat:
		rgba[0] = out.F
	}
	for i := 0; i < 4; i++ {
		dst[i] = quantize(rgba[i])
	}
}
