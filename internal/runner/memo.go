// The persistent memo tier. The engine's four in-memory layers die with
// the process; a memostore.Store attached via SetMemoStore survives it.
// Result-layer and compile-layer misses consult the store before running
// anything, completed executions spill back asynchronously, and a
// singleflight table on the store collapses duplicate in-flight
// executions across engines sharing it (campaign + bisect + precheck).
//
// Safety rests on the repo's house invariant: target execution is a
// deterministic function of content, so a memo payload keyed by content
// is exact — serving it instead of executing can change timings and
// counters, never results. Keys are SHA-256 over a versioned
// domain-separation prefix plus the same content the in-memory keys
// carry; bump the version strings if payload encodings ever change.
package runner

import (
	"crypto/sha256"
	"encoding/binary"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

const (
	memoKindResult  = 1 // payload: resultPayload (final img/crash pair)
	memoKindCompile = 2 // payload: compilePayload (compiled module bytes or error)
)

// SetMemoStore attaches a persistent memo store as the engine's fifth
// cache tier; nil detaches it. The store is consulted only on in-memory
// misses and only on the shared (phase-split) path: with compile sharing
// off the engine is deliberately the uncached baseline, and with the
// cache cap at 0 caching is disabled wholesale — the memo respects both.
// Not safe to call concurrently with Run. The engine never closes the
// store; the owner does.
func (e *Engine) SetMemoStore(ms *memostore.Store) { e.memo = ms }

// MemoStore returns the attached memo store, or nil.
func (e *Engine) MemoStore() *memostore.Store { return e.memo }

// resultMemoKey derives the persistent key for a result-layer execution
// from the in-memory key's content (target name+version, module
// fingerprint, grid, uniforms hash).
func resultMemoKey(k key) memostore.Key {
	h := sha256.New()
	h.Write([]byte("spirvfuzz/memo/result/v2\x00"))
	h.Write([]byte(k.target))
	h.Write([]byte{0})
	h.Write(k.mod[:])
	var wh [16]byte
	binary.LittleEndian.PutUint64(wh[:8], uint64(int64(k.w)))
	binary.LittleEndian.PutUint64(wh[8:], uint64(int64(k.h)))
	h.Write(wh[:])
	h.Write(k.uni[:])
	var out memostore.Key
	h.Sum(out[:0])
	return out
}

// compileMemoKey derives the persistent key for a compile-layer run from
// (module fingerprint, mutation fingerprint).
func compileMemoKey(ck ckey) memostore.Key {
	h := sha256.New()
	h.Write([]byte("spirvfuzz/memo/compile/v2\x00"))
	h.Write(ck.mod[:])
	h.Write([]byte(ck.mut))
	var out memostore.Key
	h.Sum(out[:0])
	return out
}

// Result payloads are compact binary, not JSON: a warm campaign decodes
// one payload per served execution, and image payloads carry kilobytes of
// pixels — JSON would base64 them inside the line's already-base64'd data
// field and dominate the memo hit path. Layout: a leading shape byte,
// then the shape's fields.
const (
	memoShapeOffline = 0 // no trailing bytes: the (nil, nil) offline shape
	memoShapeCrash   = 1 // trailing bytes: the crash signature, verbatim
	memoShapeImage   = 2 // uint32 LE w, uint32 LE h, then w*h*4 pixel bytes
)

func encodeResult(img *interp.Image, crash *target.Crash) ([]byte, bool) {
	switch {
	case crash != nil:
		out := make([]byte, 1+len(crash.Signature))
		out[0] = memoShapeCrash
		copy(out[1:], crash.Signature)
		return out, true
	case img != nil:
		if img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H*4 {
			return nil, false
		}
		out := make([]byte, 9+len(img.Pix))
		out[0] = memoShapeImage
		binary.LittleEndian.PutUint32(out[1:5], uint32(img.W))
		binary.LittleEndian.PutUint32(out[5:9], uint32(img.H))
		copy(out[9:], img.Pix)
		return out, true
	default:
		return []byte{memoShapeOffline}, true
	}
}

func decodeResult(data []byte) (*interp.Image, *target.Crash, bool) {
	if len(data) < 1 {
		return nil, nil, false
	}
	switch data[0] {
	case memoShapeOffline:
		if len(data) != 1 {
			return nil, nil, false
		}
		return nil, nil, true
	case memoShapeCrash:
		return nil, &target.Crash{Signature: string(data[1:])}, true
	case memoShapeImage:
		if len(data) < 9 {
			return nil, nil, false
		}
		w := int(binary.LittleEndian.Uint32(data[1:5]))
		h := int(binary.LittleEndian.Uint32(data[5:9]))
		if w <= 0 || h <= 0 || w > 1<<20 || h > 1<<20 || len(data)-9 != w*h*4 {
			return nil, nil, false
		}
		return &interp.Image{W: w, H: h, Pix: data[9:]}, nil, true
	default:
		return nil, nil, false
	}
}

// Compile payloads hold the compiled module's canonical encoding, or the
// pipeline error text, behind one tag byte. The fingerprint is not
// stored — it is recomputed on decode, which is only correct because the
// encoding round-trips exactly (pinned by TestMemoCompileRoundTrip).
const (
	memoCompileErr = 0 // trailing bytes: the pipeline error text, verbatim
	memoCompileMod = 1 // trailing bytes: the module's canonical encoding
)

func encodeCompile(compiled *spirv.Module, errMsg string) ([]byte, bool) {
	if errMsg != "" {
		out := make([]byte, 1+len(errMsg))
		out[0] = memoCompileErr
		copy(out[1:], errMsg)
		return out, true
	}
	if compiled == nil {
		return nil, false
	}
	enc := compiled.EncodeBytes()
	out := make([]byte, 1+len(enc))
	out[0] = memoCompileMod
	copy(out[1:], enc)
	return out, true
}

func decodeCompile(data []byte) (compiled *spirv.Module, fp [sha256.Size]byte, errMsg string, ok bool) {
	if len(data) < 1 {
		return nil, fp, "", false
	}
	switch data[0] {
	case memoCompileErr:
		if len(data) == 1 {
			return nil, fp, "", false
		}
		return nil, fp, string(data[1:]), true
	case memoCompileMod:
		m, err := spirv.DecodeBytes(data[1:])
		if err != nil {
			return nil, fp, "", false
		}
		return m, m.Fingerprint(), "", true
	default:
		return nil, fp, "", false
	}
}

// memoOutcome carries a finished execution through the singleflight.
type memoOutcome struct {
	img   *interp.Image
	crash *target.Crash
}

// memoActive reports whether the persistent tier participates: it stays
// out of the degraded baselines (cache disabled, sharing off) so they
// keep measuring what they exist to measure.
func (e *Engine) memoActive() bool {
	return e.memo != nil && e.sharing && e.maxPerShard > 0
}

// execute fills a result-layer miss: through the memo tier when one is
// attached, else by running the toolchain directly. Counter semantics:
// Misses counts toolchain executions only, MemoHits counts executions
// answered from disk, MemoMisses counts memo lookups that had to
// execute, and SingleflightHits counts executions answered by another
// engine's in-flight run.
func (e *Engine) execute(tg *target.Target, m *spirv.Module, in interp.Inputs, k key) (*interp.Image, *target.Crash) {
	if !e.memoActive() {
		e.misses.Add(1)
		return e.runUncached(tg, m, in, k)
	}
	mk := resultMemoKey(k)
	if kind, data, ok := e.memo.Get(mk); ok && kind == memoKindResult {
		if img, crash, ok := decodeResult(data); ok {
			e.memoHits.Add(1)
			return img, crash
		}
	}
	e.memoMisses.Add(1)
	v, shared := e.memo.Do(mk, func() any {
		e.misses.Add(1)
		img, crash := e.runUncached(tg, m, in, k)
		if data, ok := encodeResult(img, crash); ok {
			e.memoSpills.Add(1)
			e.memo.SpillAsync(mk, memoKindResult, data)
		}
		return memoOutcome{img: img, crash: crash}
	})
	if shared {
		e.singleflightHits.Add(1)
	}
	out := v.(memoOutcome)
	return out.img, out.crash
}

// compileMemoFill fills an in-memory compile-cache miss through the memo
// tier: disk first, then a singleflight-wrapped SharedCompile that
// spills back. Returns exactly one of compiled/errMsg set, like compile.
func (e *Engine) compileMemoFill(m *spirv.Module, muts []target.Mutation, ck ckey) (*spirv.Module, [sha256.Size]byte, string) {
	mk := compileMemoKey(ck)
	if kind, data, ok := e.memo.Get(mk); ok && kind == memoKindCompile {
		if compiled, fp, errMsg, ok := decodeCompile(data); ok {
			e.memoHits.Add(1)
			return compiled, fp, errMsg
		}
	}
	e.memoMisses.Add(1)
	type compileOutcome struct {
		compiled *spirv.Module
		fp       [sha256.Size]byte
		errMsg   string
	}
	v, shared := e.memo.Do(mk, func() any {
		e.compileMisses.Add(1)
		compiled, err := target.SharedCompile(m, muts)
		out := compileOutcome{compiled: compiled}
		if err != nil {
			out.compiled, out.errMsg = nil, err.Error()
		} else {
			out.fp = compiled.Fingerprint()
		}
		if data, ok := encodeCompile(out.compiled, out.errMsg); ok {
			e.memoSpills.Add(1)
			e.memo.SpillAsync(mk, memoKindCompile, data)
		}
		return out
	})
	if shared {
		e.singleflightHits.Add(1)
	}
	out := v.(compileOutcome)
	return out.compiled, out.fp, out.errMsg
}
