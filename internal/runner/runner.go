// Package runner is the concurrent execution engine behind campaigns and
// reduction. It provides two things the rest of the repo composes:
//
//   - a worker pool, sized by GOMAXPROCS unless overridden, that bounds how
//     many simulated-compiler invocations run at once no matter how many
//     goroutines fan work out; and
//
//   - a sharded, content-addressed result cache keyed by (target name, module
//     binary hash, inputs hash). Delta debugging probes many overlapping
//     subsets of one transformation sequence and re-probes them after every
//     successful removal, and campaigns run the same original module once per
//     generated test; both collapse to a single target execution per distinct
//     (target, module, inputs) triple.
//
// Target execution is deterministic, so cached results are exact and the
// engine never changes observable behaviour — only how often the simulated
// compilers actually run. Cache entries are deduplicated in flight: when two
// goroutines ask for the same triple concurrently, one executes and the other
// waits for its result.
package runner

import (
	"context"
	"crypto/sha256"
	"runtime"
	"sync"
	"sync/atomic"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

const (
	// shardCount spreads cache contention; must be a power of two.
	shardCount = 16
	// defaultCacheCap bounds total cached results across all shards.
	defaultCacheCap = 1 << 14
)

// key identifies one target execution by content, not identity: two
// structurally identical modules (e.g. the same ddmin candidate reached via
// different removal orders) hash to the same key. For the render layer the
// target field is empty — rendering depends only on the compiled module and
// the inputs, so targets whose simulated defects leave a module untouched
// share one render.
type key struct {
	target string
	mod    [sha256.Size]byte
	inputs [sha256.Size]byte
}

// entry is one cache slot. done is closed once the payload is populated, so
// concurrent requests for an in-flight key wait instead of re-executing.
// Result entries carry img/crash; render entries carry img/renderErr.
// canceled marks an entry whose executor was canceled before running — it
// has been removed from the map and waiters must retry the lookup.
type entry struct {
	done      chan struct{}
	img       *interp.Image
	crash     *target.Crash
	renderErr string
	canceled  bool
}

type shard struct {
	mu sync.Mutex
	m  map[key]*entry
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Result layer: full (target, module, inputs) executions.
	Hits   uint64 // Run calls answered from the cache (incl. in-flight waits)
	Misses uint64 // Run calls that executed the target toolchain
	// Render layer: (compiled module, inputs) interpreter runs, consulted on
	// result-layer misses and shared across targets.
	RenderHits   uint64
	RenderMisses uint64
	Evictions    uint64 // cache entries discarded to stay under the cap
	Entries      int    // entries currently cached (both layers)
	Workers      int    // worker-pool size
}

// HitRate returns the fraction of cache lookups served without executing
// anything, across both layers; 0 before any Run call.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.RenderHits + s.RenderMisses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.RenderHits) / float64(total)
}

// Engine is a memoizing, concurrency-bounded executor of target runs. It is
// safe for concurrent use; the zero value is not valid — use New.
type Engine struct {
	workers     int
	sem         chan struct{}
	maxPerShard int
	shards      [shardCount]shard // result layer: (target, module, inputs)
	renders     [shardCount]shard // render layer: ("", compiled module, inputs)

	hits         atomic.Uint64
	misses       atomic.Uint64
	renderHits   atomic.Uint64
	renderMisses atomic.Uint64
	evictions    atomic.Uint64
}

// New returns an engine whose worker pool admits workers concurrent target
// executions; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:     workers,
		sem:         make(chan struct{}, workers),
		maxPerShard: defaultCacheCap / shardCount,
	}
	for i := range e.shards {
		e.shards[i].m = make(map[key]*entry)
		e.renders[i].m = make(map[key]*entry)
	}
	return e
}

// SetCacheCap rebounds the total number of cached results; 0 disables
// caching entirely (every Run executes the full toolchain — the pre-engine
// baseline). It only affects future insertions and is not safe to call
// concurrently with Run.
func (e *Engine) SetCacheCap(total int) {
	if total <= 0 {
		e.maxPerShard = 0
		return
	}
	per := total / shardCount
	if per < 1 {
		per = 1
	}
	e.maxPerShard = per
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Run executes m on tg with the given inputs, memoized, with semantics
// identical to tg.Run. Results are shared between callers and must be
// treated as immutable (images and crashes are never mutated anywhere in the
// repo).
//
// Two cache layers serve a lookup. The result layer is keyed by (target,
// module, inputs) and memoizes whole executions. On a result-layer miss the
// module is compiled — cheap next to rendering — and the interpreter run is
// served from the render layer, keyed by the compiled module's content:
// targets whose injected defects leave a module untouched (most modules, for
// most targets) compile to bit-identical optimized modules and share one
// render, so a variant classified against all nine targets is typically
// rendered once, not six times.
func (e *Engine) Run(tg *target.Target, m *spirv.Module, in interp.Inputs) (*interp.Image, *target.Crash) {
	img, crash, _ := e.RunCtx(context.Background(), tg, m, in)
	return img, crash
}

// RunCtx is Run with cancellation: a canceled ctx aborts promptly — before
// executing, while queued for a worker slot, or while waiting on another
// goroutine's in-flight execution — returning ctx.Err(). Cancellation never
// poisons the cache: an aborted executor withdraws its in-flight entry so
// concurrent waiters retry, and an execution that already started runs to
// completion (target runs are short) and caches normally.
func (e *Engine) RunCtx(ctx context.Context, tg *target.Target, m *spirv.Module, in interp.Inputs) (*interp.Image, *target.Crash, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if e.maxPerShard == 0 {
		e.misses.Add(1)
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
		img, crash := tg.Run(m, in)
		<-e.sem
		return img, crash, nil
	}
	k := e.keyFor(tg, m, in)
	s := &e.shards[k.mod[0]&(shardCount-1)]

	for {
		s.mu.Lock()
		if ent, ok := s.m[k]; ok {
			s.mu.Unlock()
			e.hits.Add(1)
			select {
			case <-ent.done:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if ent.canceled {
				continue // executor withdrew before running; retry the lookup
			}
			return ent.img, ent.crash, nil
		}
		ent := &entry{done: make(chan struct{})}
		if len(s.m) >= e.maxPerShard {
			e.evictOneLocked(s)
		}
		s.m[k] = ent
		s.mu.Unlock()

		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			s.mu.Lock()
			delete(s.m, k)
			s.mu.Unlock()
			ent.canceled = true
			close(ent.done)
			return nil, nil, ctx.Err()
		}
		e.misses.Add(1)
		ent.img, ent.crash = e.runUncached(tg, m, k.inputs, in)
		<-e.sem
		close(ent.done)
		return ent.img, ent.crash, nil
	}
}

// runUncached mirrors target.Run — compile, then render for render-capable
// targets — with the render memoized by compiled-module content.
func (e *Engine) runUncached(tg *target.Target, m *spirv.Module, inHash [sha256.Size]byte, in interp.Inputs) (*interp.Image, *target.Crash) {
	compiled, crash := tg.Compile(m)
	if crash != nil {
		return nil, crash
	}
	if !tg.CanRender {
		return nil, nil
	}
	img, errMsg := e.render(compiled, inHash, in)
	if errMsg != "" {
		return nil, &target.Crash{Signature: tg.Name + ": device fault: " + errMsg}
	}
	return img, nil
}

// render executes the reference interpreter, memoized on (compiled module
// bytes, inputs). The error message is cached as text so each target can
// prefix its own name, exactly as target.Run does.
func (e *Engine) render(compiled *spirv.Module, inHash [sha256.Size]byte, in interp.Inputs) (*interp.Image, string) {
	if e.maxPerShard == 0 { // caching disabled; Run bypasses us, but stay safe
		e.renderMisses.Add(1)
		img, err := interp.Render(compiled, in)
		if err != nil {
			return nil, err.Error()
		}
		return img, ""
	}
	k := key{mod: sha256.Sum256(compiled.EncodeBytes()), inputs: inHash}
	s := &e.renders[k.mod[0]&(shardCount-1)]

	s.mu.Lock()
	if ent, ok := s.m[k]; ok {
		s.mu.Unlock()
		e.renderHits.Add(1)
		<-ent.done
		return ent.img, ent.renderErr
	}
	ent := &entry{done: make(chan struct{})}
	if len(s.m) >= e.maxPerShard {
		e.evictOneLocked(s)
	}
	s.m[k] = ent
	s.mu.Unlock()

	e.renderMisses.Add(1)
	img, err := interp.Render(compiled, in)
	if err != nil {
		ent.renderErr = err.Error()
	} else {
		ent.img = img
	}
	close(ent.done)
	return ent.img, ent.renderErr
}

// evictOneLocked discards one completed entry from s (any one: target runs
// are deterministic, so eviction affects only performance, never results).
// In-flight entries are never evicted — their waiters hold the pointer.
func (e *Engine) evictOneLocked(s *shard) {
	for k, ent := range s.m {
		select {
		case <-ent.done:
			delete(s.m, k)
			e.evictions.Add(1)
			return
		default:
		}
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Hits:         e.hits.Load(),
		Misses:       e.misses.Load(),
		RenderHits:   e.renderHits.Load(),
		RenderMisses: e.renderMisses.Load(),
		Evictions:    e.evictions.Load(),
		Workers:      e.workers,
	}
	for i := range e.shards {
		for _, s := range []*shard{&e.shards[i], &e.renders[i]} {
			s.mu.Lock()
			st.Entries += len(s.m)
			s.mu.Unlock()
		}
	}
	return st
}

// Do runs f(0) … f(n-1) on the worker pool and returns when all calls have
// finished. Iterations are distributed dynamically, so uneven work does not
// idle workers. f must be safe for concurrent invocation.
func (e *Engine) Do(n int, f func(i int)) {
	e.DoCtx(context.Background(), n, f)
}

// DoCtx is Do with cancellation: once ctx is done, no further iteration is
// dispatched and DoCtx returns ctx.Err() after in-flight iterations finish —
// the pool aborts promptly instead of draining the remaining n iterations.
// Iterations that were dispatched before cancellation run to completion; f
// that wants intra-iteration promptness should consult ctx itself.
func (e *Engine) DoCtx(ctx context.Context, n int, f func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				f(int(i))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// keyFor builds the content-addressed cache key.
func (e *Engine) keyFor(tg *target.Target, m *spirv.Module, in interp.Inputs) key {
	k := key{target: tg.Name, mod: sha256.Sum256(m.EncodeBytes())}
	// EncodeInputs is deterministic (encoding/json sorts map keys). Inputs
	// that fail to encode share a sentinel hash; they would fail identically
	// inside the interpreter anyway.
	if data, err := interp.EncodeInputs(in); err == nil {
		k.inputs = sha256.Sum256(data)
	}
	return k
}
