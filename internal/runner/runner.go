// Package runner is the concurrent execution engine behind campaigns and
// reduction. It provides three things the rest of the repo composes:
//
//   - a worker pool, sized by GOMAXPROCS unless overridden, that bounds how
//     many simulated-compiler invocations run at once no matter how many
//     goroutines fan work out;
//
//   - a sharded, content-addressed cache with four layers: whole results
//     keyed by (target name, module fingerprint, inputs), compiled modules
//     keyed by (module fingerprint, mutation fingerprint), register-VM plans
//     keyed by the compiled module's fingerprint, and renders keyed by
//     (compiled module fingerprint, inputs). Delta debugging probes many
//     overlapping subsets of one transformation sequence and re-probes them
//     after every successful removal, and campaigns run the same original
//     module once per generated test; both collapse to a single execution per
//     distinct key; and
//
//   - a batched multi-target entry point, RunAllCtx, that fans one module
//     across many targets with the module and inputs hashed once and the
//     phase-split target API (CheckCrashes / Mutations / SharedCompile) used
//     so that all targets whose injected mutations agree — commonly the empty
//     set, shared by all nine — compile and render the module exactly once.
//
// Target execution is deterministic, so cached results are exact and the
// engine never changes observable behaviour — only how often the simulated
// compilers actually run. Cache entries are deduplicated in flight: when two
// goroutines ask for the same key concurrently, one executes and the other
// waits for its result.
package runner

import (
	"context"
	"crypto/sha256"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/opt"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

const (
	// shardCount spreads cache contention; must be a power of two.
	shardCount = 16
	// defaultCacheCap bounds total cached results across all shards.
	defaultCacheCap = 1 << 14
	// maxUniformMemo bounds the uniforms-hash memo (entries pin their maps).
	maxUniformMemo = 4096
	// parallelRenderMinPixels gates row-parallel rendering: grids below it
	// render serially even when SetRenderWorkers enabled parallelism, because
	// goroutine fan-out costs more than the render itself on small grids.
	parallelRenderMinPixels = 4096
)

// key identifies one target execution by content, not identity: two
// structurally identical modules (e.g. the same ddmin candidate reached via
// different removal orders) hash to the same key. For the render layer the
// target field is empty and mod holds the compiled module's fingerprint —
// rendering depends only on the compiled module and the inputs, so targets
// that compile a module identically share one render.
type key struct {
	target string
	mod    [sha256.Size]byte
	w, h   int
	uni    [sha256.Size]byte
}

// ckey identifies one compile: module content plus which miscompiling
// rewrites the target applies to it (target.MutationFingerprint). Targets
// with equal mutation fingerprints share the clone + mutate + optimize work;
// the common fingerprint is "" (no injected mutation fires).
type ckey struct {
	mod [sha256.Size]byte
	mut string
}

// entry is one cache slot. done is closed once the payload is populated, so
// concurrent requests for an in-flight key wait instead of re-executing.
// Result entries carry img/crash; render entries carry img/renderErr.
// canceled marks an entry whose executor was canceled before running — it
// has been removed from the map and waiters must retry the lookup.
type entry struct {
	done      chan struct{}
	img       *interp.Image
	crash     *target.Crash
	renderErr string
	canceled  bool
}

// centry is one compile-cache slot: the shared compiled module, its cached
// fingerprint (the render-layer key, so renders never re-encode the module),
// or the pipeline error text, which each target wraps in its own signature.
type centry struct {
	done     chan struct{}
	compiled *spirv.Module
	fp       [sha256.Size]byte
	errMsg   string
}

type shard struct {
	mu sync.Mutex
	m  map[key]*entry
}

type cshard struct {
	mu sync.Mutex
	m  map[ckey]*centry
}

// pentry is one plan-cache slot: the compiled module lowered to a register
// Program, or the lowering error text. Programs are immutable and shared by
// every render of the same compiled module.
type pentry struct {
	done   chan struct{}
	prog   *interp.Program
	errMsg string
}

type pshard struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*pentry
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Result layer: full (target, module, inputs) executions.
	Hits   uint64 // Run calls answered from the cache (incl. in-flight waits)
	Misses uint64 // Run calls that executed the target toolchain
	// Compile layer: (module, mutation fingerprint) clone+mutate+optimize
	// runs, consulted on result-layer misses and shared across targets.
	CompileHits   uint64
	CompileMisses uint64
	// Render layer: (compiled module, inputs) interpreter runs, consulted on
	// result-layer misses and shared across targets.
	RenderHits   uint64
	RenderMisses uint64
	// Plan layer: compiled modules lowered once to register-VM Programs,
	// keyed by the compiled module's fingerprint and consulted on
	// render-layer misses — ddmin replays and cross-target shared compiles
	// reuse one lowering per distinct compiled module.
	PlanHits         uint64
	PlanMisses       uint64
	PlanCompileNanos int64  // total wall time spent lowering modules to plans
	Evictions        uint64 // cache entries discarded to stay under the cap
	Entries          int    // entries currently cached (all layers)
	Workers          int    // worker-pool size
	// OptPasses is the process-wide per-pass optimizer profile (runs,
	// changed, wall time) accumulated by opt.Pipeline.
	OptPasses []opt.PassStat
	// Lane-execution counters, process-wide like OptPasses: lane groups
	// launched, control-flow divergences, and pixels retired to the scalar
	// VM. All zero unless interp.SetLanes enabled warp-style rendering.
	LaneGroups      uint64
	LaneDivergences uint64
	ScalarFallbacks uint64
	// Memo tier: persistent result/compile lookups (see memo.go). All zero
	// unless SetMemoStore attached a store. MemoHits are executions served
	// from disk without running anything; MemoMisses are lookups that had
	// to execute; MemoSpills are outcomes queued for persistence; and
	// SingleflightHits are executions answered by another engine's
	// in-flight run on the shared store.
	MemoHits         uint64
	MemoMisses       uint64
	MemoSpills       uint64
	SingleflightHits uint64
}

// HitRate returns the fraction of cache lookups served without executing
// anything, across all layers — result, compile, render, plan, and the
// persistent memo tier; 0 before any Run call. A singleflight hit counts
// as served (its lookup is already in the denominator as a memo miss),
// so the rate never exceeds 1.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.CompileHits + s.CompileMisses +
		s.RenderHits + s.RenderMisses + s.PlanHits + s.PlanMisses +
		s.MemoHits + s.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.CompileHits+s.RenderHits+s.PlanHits+
		s.MemoHits+s.SingleflightHits) / float64(total)
}

// uniEntry memoizes the hash of one uniforms map. The map itself is retained
// so its address (the memo key) cannot be reused by a different map while the
// entry is alive.
type uniEntry struct {
	ref  map[string]interp.Value
	hash [sha256.Size]byte
}

// Engine is a memoizing, concurrency-bounded executor of target runs. It is
// safe for concurrent use; the zero value is not valid — use New.
type Engine struct {
	workers       int
	sem           chan struct{}
	maxPerShard   int
	sharing       bool
	renderWorkers int
	shards        [shardCount]shard  // result layer: (target, module, inputs)
	compiles      [shardCount]cshard // compile layer: (module, mutations)
	plans         [shardCount]pshard // plan layer: compiled module -> Program
	renders       [shardCount]shard  // render layer: ("", compiled module, inputs)

	uniMu   sync.Mutex
	uniMemo map[uintptr]uniEntry

	// memo is the optional persistent fifth tier (see memo.go); nil when
	// no store is attached.
	memo *memostore.Store

	hits             atomic.Uint64
	misses           atomic.Uint64
	compileHits      atomic.Uint64
	compileMisses    atomic.Uint64
	renderHits       atomic.Uint64
	renderMisses     atomic.Uint64
	planHits         atomic.Uint64
	planMisses       atomic.Uint64
	planNanos        atomic.Int64
	evictions        atomic.Uint64
	memoHits         atomic.Uint64
	memoMisses       atomic.Uint64
	memoSpills       atomic.Uint64
	singleflightHits atomic.Uint64
}

// New returns an engine whose worker pool admits workers concurrent target
// executions; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:     workers,
		sem:         make(chan struct{}, workers),
		maxPerShard: defaultCacheCap / shardCount,
		sharing:     true,
		uniMemo:     make(map[uintptr]uniEntry),
	}
	for i := range e.shards {
		e.shards[i].m = make(map[key]*entry)
		e.compiles[i].m = make(map[ckey]*centry)
		e.plans[i].m = make(map[[sha256.Size]byte]*pentry)
		e.renders[i].m = make(map[key]*entry)
	}
	return e
}

// SetRenderWorkers sets the row-parallelism used for render-layer misses on
// grids of at least parallelRenderMinPixels pixels; n <= 1 keeps renders
// serial (the default — campaign grids are small, and the engine already
// parallelises across runs, so intra-render parallelism only pays off for
// large single renders). Output is byte-identical at any setting. Not safe
// to call concurrently with Run.
func (e *Engine) SetRenderWorkers(n int) { e.renderWorkers = n }

// SetCacheCap rebounds the total number of cached results; 0 disables
// caching entirely (every Run executes the full toolchain — the pre-engine
// baseline). It only affects future insertions and is not safe to call
// concurrently with Run.
func (e *Engine) SetCacheCap(total int) {
	if total <= 0 {
		e.maxPerShard = 0
		return
	}
	per := total / shardCount
	if per < 1 {
		per = 1
	}
	e.maxPerShard = per
}

// SetCompileSharing toggles the phase-split execute path. Sharing is on by
// default; turning it off restores the monolithic per-target path — every
// result-layer miss runs target.Compile itself, module and inputs hashes are
// recomputed per call, and the compile layer is bypassed — which exists as
// the benchmark baseline for the sharing win. Results are bitwise identical
// either way. Not safe to call concurrently with Run.
func (e *Engine) SetCompileSharing(on bool) { e.sharing = on }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Run executes m on tg with the given inputs, memoized, with semantics
// identical to tg.Run. Results are shared between callers and must be
// treated as immutable (images and crashes are never mutated anywhere in the
// repo).
//
// Three cache layers serve a lookup. The result layer is keyed by (target,
// module, inputs) and memoizes whole executions. On a result-layer miss the
// target is phase-split: its crash predicates run directly (a pure scan, no
// clone), the clone + mutate + optimize tail is served from the compile
// layer keyed by (module, mutation fingerprint) — so targets whose injected
// defects agree on a module, most targets for most modules, compile it once
// — and the interpreter run is served from the render layer, keyed by the
// compiled module's content. A variant classified against all nine targets
// is typically compiled once and rendered once, not nine and six times.
func (e *Engine) Run(tg *target.Target, m *spirv.Module, in interp.Inputs) (*interp.Image, *target.Crash) {
	img, crash, _ := e.RunCtx(context.Background(), tg, m, in)
	return img, crash
}

// RunCtx is Run with cancellation: a canceled ctx aborts promptly — before
// executing, while queued for a worker slot, or while waiting on another
// goroutine's in-flight execution — returning ctx.Err(). Cancellation never
// poisons the cache: an aborted executor withdraws its in-flight entry so
// concurrent waiters retry, and an execution that already started runs to
// completion (target runs are short) and caches normally.
func (e *Engine) RunCtx(ctx context.Context, tg *target.Target, m *spirv.Module, in interp.Inputs) (*interp.Image, *target.Crash, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if e.maxPerShard == 0 {
		e.misses.Add(1)
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
		img, crash := tg.Run(m, in)
		<-e.sem
		return img, crash, nil
	}
	return e.runKeyed(ctx, tg, m, in, e.keyFor(tg, m, in))
}

// TargetResult is one target's slot in a RunAllCtx batch: the rendered image
// (nil for offline targets and crashes) and the crash, exactly as the
// corresponding RunCtx call would return them.
type TargetResult struct {
	Img   *interp.Image
	Crash *target.Crash
}

// RunAll is RunAllCtx without cancellation.
func (e *Engine) RunAll(targets []*target.Target, m *spirv.Module, in interp.Inputs) []TargetResult {
	out, _ := e.RunAllCtx(context.Background(), targets, m, in)
	return out
}

// RunAllCtx executes m on every target in one batch and returns the results
// indexed like targets. The module fingerprint and inputs hash are computed
// once for the whole batch, crash checks fan out on the worker pool, each
// distinct (module, mutation fingerprint) class is compiled once, and each
// distinct compiled module is rendered once per inputs. Per-slot results are
// bitwise identical to calling RunCtx once per target, at any worker count.
// A canceled ctx returns (nil, ctx.Err()).
func (e *Engine) RunAllCtx(ctx context.Context, targets []*target.Target, m *spirv.Module, in interp.Inputs) ([]TargetResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]TargetResult, len(targets))
	var run func(i int) error
	if e.maxPerShard == 0 || !e.sharing {
		// Degraded modes keep per-call hashing; RunCtx handles both.
		run = func(i int) error {
			img, crash, err := e.RunCtx(ctx, targets[i], m, in)
			out[i] = TargetResult{Img: img, Crash: crash}
			return err
		}
	} else {
		base := key{mod: m.Fingerprint(), w: in.W, h: in.H, uni: e.uniformsHash(in.Uniforms)}
		run = func(i int) error {
			k := base
			k.target = targetKey(targets[i])
			img, crash, err := e.runKeyed(ctx, targets[i], m, in, k)
			out[i] = TargetResult{Img: img, Crash: crash}
			return err
		}
	}
	if len(targets) == 1 {
		// Skip the pool for the degenerate batch (reduction's per-target
		// interestingness queries).
		if err := run(0); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := e.DoCtx(ctx, len(targets), func(i int) { _ = run(i) }); err != nil {
		return nil, err
	}
	return out, nil
}

// runKeyed is the common result-layer protocol behind RunCtx and RunAllCtx:
// look up k, wait on an in-flight executor, or execute and cache.
func (e *Engine) runKeyed(ctx context.Context, tg *target.Target, m *spirv.Module, in interp.Inputs, k key) (*interp.Image, *target.Crash, error) {
	s := &e.shards[k.mod[0]&(shardCount-1)]
	for {
		s.mu.Lock()
		if ent, ok := s.m[k]; ok {
			s.mu.Unlock()
			e.hits.Add(1)
			select {
			case <-ent.done:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if ent.canceled {
				continue // executor withdrew before running; retry the lookup
			}
			return ent.img, ent.crash, nil
		}
		ent := &entry{done: make(chan struct{})}
		if len(s.m) >= e.maxPerShard {
			e.evictOneLocked(s)
		}
		s.m[k] = ent
		s.mu.Unlock()

		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			s.mu.Lock()
			delete(s.m, k)
			s.mu.Unlock()
			ent.canceled = true
			close(ent.done)
			return nil, nil, ctx.Err()
		}
		ent.img, ent.crash = e.execute(tg, m, in, k)
		<-e.sem
		close(ent.done)
		return ent.img, ent.crash, nil
	}
}

// runUncached executes the toolchain for a result-layer miss. With sharing
// on it mirrors target.Run phase by phase — crash predicates directly, the
// compile tail through the compile cache, the render through the render
// cache keyed by the compiled module's fingerprint. With sharing off it is
// the monolithic baseline: tg.Compile plus a render memoized on a fresh
// hash of the compiled module's encoding.
func (e *Engine) runUncached(tg *target.Target, m *spirv.Module, in interp.Inputs, k key) (*interp.Image, *target.Crash) {
	var compiled *spirv.Module
	rk := key{w: k.w, h: k.h, uni: k.uni}
	if e.sharing {
		if crash := tg.CheckCrashes(m); crash != nil {
			return nil, crash
		}
		var errMsg string
		compiled, rk.mod, errMsg = e.compile(m, k.mod, tg.Mutations(m))
		if errMsg != "" {
			return nil, &target.Crash{Signature: tg.Name + ": internal compiler error: " + errMsg}
		}
	} else {
		var crash *target.Crash
		compiled, crash = tg.Compile(m)
		if crash != nil {
			return nil, crash
		}
		rk.mod = sha256.Sum256(compiled.EncodeBytes())
	}
	if !tg.CanRender {
		return nil, nil
	}
	img, errMsg := e.render(compiled, rk, in)
	if errMsg != "" {
		return nil, &target.Crash{Signature: tg.Name + ": device fault: " + errMsg}
	}
	return img, nil
}

// compile serves the clone + mutate + optimize tail from the compile cache,
// keyed by (module fingerprint, mutation fingerprint). It returns the shared
// compiled module (treat as immutable), its fingerprint (the render-layer
// key), and the pipeline error text, exactly one of module/error set.
// Executors hold a worker slot already, so waiters block without a ctx: the
// peer they wait on is running, not queued.
func (e *Engine) compile(m *spirv.Module, modHash [sha256.Size]byte, muts []target.Mutation) (*spirv.Module, [sha256.Size]byte, string) {
	ck := ckey{mod: modHash, mut: target.FingerprintMutations(muts)}
	s := &e.compiles[ck.mod[0]&(shardCount-1)]

	s.mu.Lock()
	if ent, ok := s.m[ck]; ok {
		s.mu.Unlock()
		e.compileHits.Add(1)
		<-ent.done
		return ent.compiled, ent.fp, ent.errMsg
	}
	ent := &centry{done: make(chan struct{})}
	if len(s.m) >= e.maxPerShard {
		e.evictCompileLocked(s)
	}
	s.m[ck] = ent
	s.mu.Unlock()

	if e.memoActive() {
		ent.compiled, ent.fp, ent.errMsg = e.compileMemoFill(m, muts, ck)
	} else {
		e.compileMisses.Add(1)
		compiled, err := target.SharedCompile(m, muts)
		if err != nil {
			ent.errMsg = err.Error()
		} else {
			ent.compiled = compiled
			ent.fp = compiled.Fingerprint()
		}
	}
	close(ent.done)
	return ent.compiled, ent.fp, ent.errMsg
}

// render executes the reference interpreter, memoized on rk (compiled module
// fingerprint plus inputs). The error message is cached as text so each
// target can prefix its own name, exactly as target.Run does.
func (e *Engine) render(compiled *spirv.Module, rk key, in interp.Inputs) (*interp.Image, string) {
	if e.maxPerShard == 0 { // caching disabled; Run bypasses us, but stay safe
		e.renderMisses.Add(1)
		img, err := interp.Render(compiled, in)
		if err != nil {
			return nil, err.Error()
		}
		return img, ""
	}
	s := &e.renders[rk.mod[0]&(shardCount-1)]

	s.mu.Lock()
	if ent, ok := s.m[rk]; ok {
		s.mu.Unlock()
		e.renderHits.Add(1)
		<-ent.done
		return ent.img, ent.renderErr
	}
	ent := &entry{done: make(chan struct{})}
	if len(s.m) >= e.maxPerShard {
		e.evictOneLocked(s)
	}
	s.m[rk] = ent
	s.mu.Unlock()

	e.renderMisses.Add(1)
	img, err := e.renderCompiled(compiled, rk, in)
	if err != nil {
		ent.renderErr = err.Error()
	} else {
		ent.img = img
	}
	close(ent.done)
	return ent.img, ent.renderErr
}

// renderCompiled executes the interpreter for a render-layer miss: the
// compiled module's register-VM plan comes from the plan cache (keyed by
// rk.mod, the compiled module's fingerprint) and runs row-parallel when
// SetRenderWorkers enabled it and the grid is large enough. When the
// tree-walker flag is set the plan layer is bypassed and the reference
// evaluator runs instead — same images, same faults, no lowering.
func (e *Engine) renderCompiled(compiled *spirv.Module, rk key, in interp.Inputs) (*interp.Image, error) {
	if interp.TreeWalker() {
		return interp.RenderTree(compiled, in)
	}
	prog, errMsg := e.plan(compiled, rk.mod)
	if errMsg != "" {
		return nil, errors.New(errMsg)
	}
	w, h := rk.w, rk.h
	if w == 0 {
		w = interp.DefaultGrid
	}
	if h == 0 {
		h = interp.DefaultGrid
	}
	workers := 1
	if e.renderWorkers > 1 && w*h >= parallelRenderMinPixels {
		workers = e.renderWorkers
	}
	return prog.RenderParallel(in, workers)
}

// plan serves module→Program lowering from the plan cache, keyed by the
// compiled module's fingerprint — the same identity the render layer keys
// on, so ddmin replays and cross-target shared compiles that converge on
// one compiled module lower it exactly once. Exactly one of prog/errMsg is
// set; lowering errors are precisely the errors RenderTree would report
// before its first pixel, cached as text like render errors.
func (e *Engine) plan(compiled *spirv.Module, fp [sha256.Size]byte) (*interp.Program, string) {
	s := &e.plans[fp[0]&(shardCount-1)]

	s.mu.Lock()
	if ent, ok := s.m[fp]; ok {
		s.mu.Unlock()
		e.planHits.Add(1)
		<-ent.done
		return ent.prog, ent.errMsg
	}
	ent := &pentry{done: make(chan struct{})}
	if len(s.m) >= e.maxPerShard {
		e.evictPlanLocked(s)
	}
	s.m[fp] = ent
	s.mu.Unlock()

	e.planMisses.Add(1)
	start := time.Now()
	prog, err := interp.Compile(compiled)
	e.planNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		ent.errMsg = err.Error()
	} else {
		ent.prog = prog
	}
	close(ent.done)
	return ent.prog, ent.errMsg
}

// evictOneLocked discards one completed entry from s (any one: target runs
// are deterministic, so eviction affects only performance, never results).
// In-flight entries are never evicted — their waiters hold the pointer.
func (e *Engine) evictOneLocked(s *shard) {
	for k, ent := range s.m {
		select {
		case <-ent.done:
			delete(s.m, k)
			e.evictions.Add(1)
			return
		default:
		}
	}
}

// evictCompileLocked is evictOneLocked for the compile layer.
func (e *Engine) evictCompileLocked(s *cshard) {
	for k, ent := range s.m {
		select {
		case <-ent.done:
			delete(s.m, k)
			e.evictions.Add(1)
			return
		default:
		}
	}
}

// evictPlanLocked is evictOneLocked for the plan layer.
func (e *Engine) evictPlanLocked(s *pshard) {
	for k, ent := range s.m {
		select {
		case <-ent.done:
			delete(s.m, k)
			e.evictions.Add(1)
			return
		default:
		}
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Hits:             e.hits.Load(),
		Misses:           e.misses.Load(),
		CompileHits:      e.compileHits.Load(),
		CompileMisses:    e.compileMisses.Load(),
		RenderHits:       e.renderHits.Load(),
		RenderMisses:     e.renderMisses.Load(),
		PlanHits:         e.planHits.Load(),
		PlanMisses:       e.planMisses.Load(),
		PlanCompileNanos: e.planNanos.Load(),
		Evictions:        e.evictions.Load(),
		Workers:          e.workers,
		OptPasses:        opt.PassStats(),
		MemoHits:         e.memoHits.Load(),
		MemoMisses:       e.memoMisses.Load(),
		MemoSpills:       e.memoSpills.Load(),
		SingleflightHits: e.singleflightHits.Load(),
	}
	lt := interp.LaneTotals()
	st.LaneGroups, st.LaneDivergences, st.ScalarFallbacks = lt.Groups, lt.Divergences, lt.Fallbacks
	for i := range e.shards {
		for _, s := range []*shard{&e.shards[i], &e.renders[i]} {
			s.mu.Lock()
			st.Entries += len(s.m)
			s.mu.Unlock()
		}
		cs := &e.compiles[i]
		cs.mu.Lock()
		st.Entries += len(cs.m)
		cs.mu.Unlock()
		ps := &e.plans[i]
		ps.mu.Lock()
		st.Entries += len(ps.m)
		ps.mu.Unlock()
	}
	return st
}

// Do runs f(0) … f(n-1) on the worker pool and returns when all calls have
// finished. Iterations are distributed dynamically, so uneven work does not
// idle workers. f must be safe for concurrent invocation.
func (e *Engine) Do(n int, f func(i int)) {
	e.DoCtx(context.Background(), n, f)
}

// DoCtx is Do with cancellation: once ctx is done, no further iteration is
// dispatched and DoCtx returns ctx.Err() after in-flight iterations finish —
// the pool aborts promptly instead of draining the remaining n iterations.
// Iterations that were dispatched before cancellation run to completion; f
// that wants intra-iteration promptness should consult ctx itself.
func (e *Engine) DoCtx(ctx context.Context, n int, f func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				f(int(i))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// targetKey names a target in the result-layer cache key. Historical release
// views share a Name with the canonical target but carry different defect
// sets, so the key qualifies the name with the version; the latest release is
// the canonical pointer itself and therefore keys identically whether reached
// through target.At or the default path. The compile layer is deliberately
// not version-qualified: a compile is fully determined by (module, mutation
// fingerprint), so releases with equal firing sets share one compile — the
// cache win bisection depends on.
func targetKey(tg *target.Target) string {
	return tg.Name + "\x00" + tg.Version
}

// keyFor builds the content-addressed cache key. With sharing on, the module
// hash is the memoized fingerprint and the inputs hash is the memoized
// uniforms hash (width and height travel as explicit key fields); with
// sharing off, both are recomputed from a fresh encoding on every call — the
// pre-phase-split behaviour the benchmarks baseline against.
func (e *Engine) keyFor(tg *target.Target, m *spirv.Module, in interp.Inputs) key {
	if e.sharing {
		return key{target: targetKey(tg), mod: m.Fingerprint(), w: in.W, h: in.H, uni: e.uniformsHash(in.Uniforms)}
	}
	k := key{target: targetKey(tg), mod: sha256.Sum256(m.EncodeBytes())}
	// EncodeInputs is deterministic (encoding/json sorts map keys). Inputs
	// that fail to encode share a sentinel hash; they would fail identically
	// inside the interpreter anyway.
	if data, err := interp.EncodeInputs(in); err == nil {
		k.uni = sha256.Sum256(data)
	}
	return k
}

// uniformsHash returns the hash of a uniforms map, memoized by the map's
// address: campaigns and reductions query thousands of runs against a
// handful of long-lived input maps, so the JSON encoding runs once per map
// instead of once per call. Entries retain the map they hashed, so an
// address cannot be recycled by a different live map; callers must not
// mutate a uniforms map after its first engine run (nothing in the repo
// does — inputs are cloned before fuzzing mutates them). Uniforms that fail
// to encode share a zero sentinel distinct from every real hash.
func (e *Engine) uniformsHash(u map[string]interp.Value) [sha256.Size]byte {
	p := reflect.ValueOf(u).Pointer()
	e.uniMu.Lock()
	if ent, ok := e.uniMemo[p]; ok {
		e.uniMu.Unlock()
		return ent.hash
	}
	e.uniMu.Unlock()

	var h [sha256.Size]byte
	if data, err := interp.EncodeInputs(interp.Inputs{Uniforms: u}); err == nil {
		h = sha256.Sum256(data)
	}

	e.uniMu.Lock()
	if len(e.uniMemo) >= maxUniformMemo {
		e.uniMemo = make(map[uintptr]uniEntry) // rare; drop pins and restart
	}
	e.uniMemo[p] = uniEntry{ref: u, hash: h}
	e.uniMu.Unlock()
	return h
}
