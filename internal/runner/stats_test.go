package runner_test

import (
	"testing"

	"spirvfuzz/internal/opt"
	"spirvfuzz/internal/runner"
)

// TestMergeStatsSharedProcess pins the double-counting fix: two engines in
// the same process (same token) each see the whole process-wide counters
// (OptPasses, lane counters), so within a group those merge by max, while
// per-engine cache counters — including plan-cache hits — genuinely sum.
func TestMergeStatsSharedProcess(t *testing.T) {
	a := runner.Stats{
		Hits: 10, Misses: 4, PlanHits: 6, PlanMisses: 2, Workers: 2,
		OptPasses:  []opt.PassStat{{Name: "dce", Runs: 30, Changed: 5, Nanos: 900}},
		LaneGroups: 100, LaneDivergences: 8, ScalarFallbacks: 3,
	}
	// Engine b read the process-wide counters later, so they are >= a's.
	b := runner.Stats{
		Hits: 1, Misses: 2, PlanHits: 3, PlanMisses: 1, Workers: 2,
		OptPasses:  []opt.PassStat{{Name: "dce", Runs: 40, Changed: 7, Nanos: 1200}},
		LaneGroups: 120, LaneDivergences: 9, ScalarFallbacks: 3,
	}
	m := runner.MergeStats(map[string][]runner.Stats{"proc": {a, b}})
	if m.Hits != 11 || m.Misses != 6 {
		t.Fatalf("per-engine counters must sum: got hits=%d misses=%d", m.Hits, m.Misses)
	}
	if m.PlanHits != 9 || m.PlanMisses != 3 {
		t.Fatalf("plan-cache counters must sum per engine: got %d/%d", m.PlanHits, m.PlanMisses)
	}
	if m.Workers != 4 {
		t.Fatalf("workers must sum: got %d", m.Workers)
	}
	// Process-wide counters: the max is the latest reading, not the sum.
	if m.LaneGroups != 120 || m.LaneDivergences != 9 || m.ScalarFallbacks != 3 {
		t.Fatalf("lane counters double-counted: %+v", m)
	}
	if len(m.OptPasses) != 1 || m.OptPasses[0].Runs != 40 || m.OptPasses[0].Nanos != 1200 {
		t.Fatalf("opt passes double-counted: %+v", m.OptPasses)
	}
}

// TestMergeStatsDistinctProcesses checks the cross-node half: different
// tokens are different processes, so everything sums, including the
// process-wide counters.
func TestMergeStatsDistinctProcesses(t *testing.T) {
	a := runner.Stats{
		PlanHits:   5,
		OptPasses:  []opt.PassStat{{Name: "dce", Runs: 10, Nanos: 100}, {Name: "cfg", Runs: 2, Nanos: 20}},
		LaneGroups: 50,
	}
	b := runner.Stats{
		PlanHits:   7,
		OptPasses:  []opt.PassStat{{Name: "dce", Runs: 4, Nanos: 40}},
		LaneGroups: 30,
	}
	m := runner.MergeStats(map[string][]runner.Stats{"p1": {a}, "p2": {b}})
	if m.PlanHits != 12 {
		t.Fatalf("plan hits across processes must sum: got %d", m.PlanHits)
	}
	if m.LaneGroups != 80 {
		t.Fatalf("lane groups across processes must sum: got %d", m.LaneGroups)
	}
	want := map[string]uint64{"cfg": 2, "dce": 14}
	if len(m.OptPasses) != 2 {
		t.Fatalf("opt passes: %+v", m.OptPasses)
	}
	for i := 1; i < len(m.OptPasses); i++ {
		if m.OptPasses[i-1].Name >= m.OptPasses[i].Name {
			t.Fatalf("merged opt passes not sorted by name: %+v", m.OptPasses)
		}
	}
	for _, ps := range m.OptPasses {
		if ps.Runs != want[ps.Name] {
			t.Fatalf("pass %s runs=%d, want %d", ps.Name, ps.Runs, want[ps.Name])
		}
	}
}

// TestMergeStatsMixed exercises the full shape at once: two same-process
// snapshots plus one remote process.
func TestMergeStatsMixed(t *testing.T) {
	m := runner.MergeStats(map[string][]runner.Stats{
		"local":  {{Misses: 3, LaneGroups: 10}, {Misses: 2, LaneGroups: 15}},
		"remote": {{Misses: 7, LaneGroups: 4}},
	})
	if m.Misses != 12 {
		t.Fatalf("misses: got %d, want 12", m.Misses)
	}
	if m.LaneGroups != 19 {
		t.Fatalf("lane groups: got %d, want 15+4", m.LaneGroups)
	}
}

func TestProcessTokenStable(t *testing.T) {
	tok := runner.ProcessToken()
	if tok == "" {
		t.Fatal("empty process token")
	}
	if runner.ProcessToken() != tok {
		t.Fatal("process token changed between calls")
	}
}
