package runner_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

func TestRunMemoizes(t *testing.T) {
	eng := runner.New(2)
	tg := target.ByName("Mesa")
	m := testmod.Diamond()
	in := interp.Inputs{}

	img1, crash1 := eng.Run(tg, m, in)
	if crash1 != nil {
		t.Fatalf("clean module crashed: %v", crash1)
	}
	st := eng.Stats()
	// One result entry, one compile entry, one plan entry, one render entry.
	if st.Hits != 0 || st.Misses != 1 || st.CompileMisses != 1 || st.PlanMisses != 1 || st.RenderMisses != 1 || st.Entries != 4 {
		t.Fatalf("after first run: %+v", st)
	}

	// The same module content — even via a different pointer — must hit.
	img2, crash2 := eng.Run(tg, m.Clone(), in)
	st = eng.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("clone did not hit the cache: %+v", st)
	}
	if crash2 != nil || img1 != img2 {
		t.Fatal("cached result differs from computed result")
	}

	// A different target is a distinct result key, but neither Mesa's nor
	// Pixel-5's defects touch the diamond module, so the two targets share
	// one compile (mutation fingerprint "") and therefore one plan and one
	// render.
	img3, _ := eng.Run(target.ByName("Pixel-5"), m, in)
	st = eng.Stats()
	if st.Misses != 2 || st.CompileHits != 1 || st.CompileMisses != 1 || st.RenderHits != 1 || st.RenderMisses != 1 || st.PlanMisses != 1 {
		t.Fatalf("cross-target compile/render was not shared: %+v", st)
	}
	if img3 != img1 {
		t.Fatal("shared render returned a different image")
	}

	// Different inputs are distinct result and render keys, but the compiled
	// module does not depend on the inputs, so the compile layer hits.
	eng.Run(tg, m, interp.Inputs{W: 3, H: 3})
	st = eng.Stats()
	if st.Misses != 3 || st.CompileHits != 2 || st.RenderMisses != 2 {
		t.Fatalf("distinct keys collided: %+v", st)
	}
	// The second render is of the same compiled module, so its plan is
	// served from the plan cache.
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Fatalf("second render did not reuse the plan: %+v", st)
	}
	// Combined rate: (1 result + 2 compile + 1 plan + 1 render hit) of
	// (4+3+2+3 lookups).
	if got := st.HitRate(); got != 5.0/12.0 {
		t.Fatalf("hit rate %v, want 5/12", got)
	}
	if st.Workers != 2 {
		t.Fatalf("workers %d, want 2", st.Workers)
	}
}

// TestRenderWorkersIdentical pins the engine's row-parallel render path:
// images must be byte-identical at any worker count, and identical to the
// tree-walking reference engine.
func TestRenderWorkersIdentical(t *testing.T) {
	tg := target.ByName("Mesa")
	m := testmod.Diamond()
	// Large enough to clear the parallel-render pixel threshold.
	in := interp.Inputs{W: 80, H: 80}

	serial := runner.New(1)
	base, crash := serial.Run(tg, m, in)
	if crash != nil {
		t.Fatalf("serial run crashed: %v", crash)
	}
	for _, workers := range []int{2, 4, 16} {
		eng := runner.New(1)
		eng.SetRenderWorkers(workers)
		img, crash := eng.Run(tg, m, in)
		if crash != nil {
			t.Fatalf("workers=%d: crashed: %v", workers, crash)
		}
		if !base.Equal(img) {
			t.Fatalf("workers=%d: image differs from serial render", workers)
		}
	}

	// The tree-walking engine must agree too, and must not touch the plan
	// cache at all.
	interp.SetTreeWalker(true)
	defer interp.SetTreeWalker(false)
	eng := runner.New(1)
	img, crash := eng.Run(tg, m, in)
	if crash != nil {
		t.Fatalf("tree-mode run crashed: %v", crash)
	}
	if !base.Equal(img) {
		t.Fatal("tree-walker image differs from VM render")
	}
	if st := eng.Stats(); st.PlanHits+st.PlanMisses != 0 {
		t.Fatalf("tree mode consulted the plan cache: %+v", st)
	}
}

// TestCacheCorrectness compares the memoized engine against direct target
// execution over every (testmod, target) pair, including crashing shapes.
func TestCacheCorrectness(t *testing.T) {
	eng := runner.New(4)
	mods := []*spirv.Module{}
	for _, m := range testmod.All() {
		mods = append(mods, m)
	}
	crasher := testmod.Caller()
	crasher.Functions[0].SetControl(spirv.FunctionControlDontInline)
	mods = append(mods, crasher)

	// Two passes so the second is served from the cache.
	for pass := 0; pass < 2; pass++ {
		for _, m := range mods {
			for _, tg := range target.All() {
				wantImg, wantCrash := tg.Run(m, interp.Inputs{})
				gotImg, gotCrash := eng.Run(tg, m, interp.Inputs{})
				switch {
				case (wantCrash == nil) != (gotCrash == nil):
					t.Fatalf("pass %d %s: crash mismatch: %v vs %v", pass, tg.Name, wantCrash, gotCrash)
				case wantCrash != nil && wantCrash.Signature != gotCrash.Signature:
					t.Fatalf("pass %d %s: signature %q vs %q", pass, tg.Name, wantCrash.Signature, gotCrash.Signature)
				case (wantImg == nil) != (gotImg == nil):
					t.Fatalf("pass %d %s: image presence mismatch", pass, tg.Name)
				case wantImg != nil && !wantImg.Equal(gotImg):
					t.Fatalf("pass %d %s: images differ", pass, tg.Name)
				}
			}
		}
	}
	st := eng.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses: %+v", st)
	}
}

// TestCampaignDeterministicAcrossWorkers runs the same small campaign at 1,
// 4 and 16 workers and requires identical outcomes: same bug signatures on
// the same (test, target) pairs in the same order.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	type bug struct {
		Target, Reference, Signature string
		Seed                         int64
	}
	var baseline []bug
	for _, workers := range []int{1, 4, 16} {
		eng := runner.New(workers)
		res, err := harness.CampaignEngine(eng, harness.ToolSpirvFuzz, 25, 2,
			corpus.References(), target.All(), corpus.Donors())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var bugs []bug
		for _, o := range res.BugOutcomes {
			bugs = append(bugs, bug{o.Target, o.Reference, o.Signature, o.Seed})
		}
		if baseline == nil {
			baseline = bugs
			if len(baseline) == 0 {
				t.Fatal("campaign found no bugs; determinism check is vacuous")
			}
			continue
		}
		if !reflect.DeepEqual(bugs, baseline) {
			t.Fatalf("workers=%d: outcomes differ from 1-worker baseline:\n%v\nvs\n%v", workers, bugs, baseline)
		}
	}
}

// TestReductionDeterministicAcrossWorkers reduces a real crash outcome at 1,
// 4 and 16 workers and requires bitwise-identical kept indices.
func TestReductionDeterministicAcrossWorkers(t *testing.T) {
	eng := runner.New(4)
	res, err := harness.CampaignEngine(eng, harness.ToolSpirvFuzz, 40, 2,
		corpus.References(), target.All(), corpus.Donors())
	if err != nil {
		t.Fatal(err)
	}
	var outcome *harness.Outcome
	for _, o := range res.BugOutcomes {
		if o.Signature != target.MiscompilationSignature && len(o.Transformations) > 4 {
			outcome = o
			break
		}
	}
	if outcome == nil {
		t.Fatal("no crash outcome with a nontrivial sequence")
	}
	tg := target.ByName(outcome.Target)
	var baseline []int
	for _, workers := range []int{1, 4, 16} {
		e := runner.New(workers)
		interesting := reduce.ForOutcomeOn(e, tg, outcome.Original, outcome.Inputs, outcome.Signature)
		r := reduce.ReduceParallel(outcome.Original, outcome.Inputs, outcome.Transformations, interesting, workers)
		if baseline == nil {
			baseline = r.Kept
			continue
		}
		if !reflect.DeepEqual(r.Kept, baseline) {
			t.Fatalf("workers=%d: kept %v, baseline %v", workers, r.Kept, baseline)
		}
	}
}

// TestCacheHammer drives the sharded cache from many goroutines with a small
// capacity so insertion, in-flight waiting and eviction all interleave; run
// with -race. Correctness of returned results is checked on every call.
func TestCacheHammer(t *testing.T) {
	eng := runner.New(8)
	eng.SetCacheCap(32) // force constant eviction
	tgs := target.All()

	// A pool of distinct modules: vary a constant so hashes differ.
	var mods []*spirv.Module
	for i := 0; i < 12; i++ {
		m := testmod.Diamond()
		m.EnsureConstantWord(m.EnsureTypeInt(32, true), uint32(1000+i))
		mods = append(mods, m)
	}
	want := make([]*interp.Image, len(mods))
	for i, m := range mods {
		var err error
		want[i], err = interp.Render(m, interp.Inputs{})
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				mi := (g*7 + i) % len(mods)
				tg := tgs[(g+i)%len(tgs)]
				img, crash := eng.Run(tg, mods[mi], interp.Inputs{})
				if crash != nil {
					errCh <- fmt.Errorf("%s crashed on clean module: %v", tg.Name, crash)
					return
				}
				if tg.CanRender && !img.Equal(want[mi]) {
					errCh <- fmt.Errorf("%s returned a wrong image under contention", tg.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Evictions == 0 {
		t.Fatalf("cap 32 with %d keys should evict: %+v", len(mods)*len(tgs), st)
	}
	// Soft cap per layer, plus at most one in-flight overshoot per shard.
	if st.Entries > 2*(32+16) {
		t.Fatalf("cache grew past its cap: %+v", st)
	}
}

func TestDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		eng := runner.New(workers)
		for _, n := range []int{0, 1, 7, 100} {
			seen := make([]bool, n)
			var mu sync.Mutex
			eng.Do(n, func(i int) {
				mu.Lock()
				defer mu.Unlock()
				if seen[i] {
					t.Fatalf("workers=%d n=%d: index %d ran twice", workers, n, i)
				}
				seen[i] = true
			})
			for i, s := range seen {
				if !s {
					t.Fatalf("workers=%d n=%d: index %d never ran", workers, n, i)
				}
			}
		}
	}
}

// TestRunCtxCancellation covers the engine's cancellation contract: a
// canceled context aborts before executing, aborts a waiter on someone
// else's in-flight execution, and never poisons the cache for later
// callers with live contexts.
func TestRunCtxCancellation(t *testing.T) {
	tg := target.ByName("Mesa")
	m := testmod.Diamond()
	in := interp.Inputs{}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	eng := runner.New(1)
	if _, _, err := eng.RunCtx(canceled, tg, m, in); err == nil {
		t.Fatal("RunCtx with canceled ctx did not error")
	}
	if st := eng.Stats(); st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("canceled RunCtx touched the engine: %+v", st)
	}

	// A later caller with a live context must execute normally — the
	// canceled attempt must not have left a poisoned in-flight entry.
	img, crash, err := eng.RunCtx(context.Background(), tg, m, in)
	if err != nil || crash != nil || img == nil {
		t.Fatalf("post-cancel run: img=%v crash=%v err=%v", img, crash, err)
	}

	// Caching disabled (pre-engine baseline path) honours cancellation too.
	raw := runner.New(1)
	raw.SetCacheCap(0)
	if _, _, err := raw.RunCtx(canceled, tg, m, in); err == nil {
		t.Fatal("uncached RunCtx with canceled ctx did not error")
	}
}

// TestDoCtxStopsDispatch checks that cancellation stops dispatching new
// iterations promptly instead of draining all n.
func TestDoCtxStopsDispatch(t *testing.T) {
	eng := runner.New(4)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := eng.DoCtx(ctx, 10000, func(i int) {
		if ran.Add(1) == 8 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("DoCtx did not report cancellation")
	}
	// In-flight iterations (at most one per worker) may still finish after
	// cancel; everything else must be skipped.
	if n := ran.Load(); n > 8+4 {
		t.Fatalf("DoCtx dispatched %d iterations after cancellation", n)
	}
	if err := eng.DoCtx(context.Background(), 100, func(i int) {}); err != nil {
		t.Fatalf("DoCtx without cancellation: %v", err)
	}
}
