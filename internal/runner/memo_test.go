package runner_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/target"
)

// outcome flattens a run for byte comparison across engines.
type outcome struct {
	crash string
	w, h  int
	pix   []byte
}

func runCorpus(t *testing.T, eng *runner.Engine) []outcome {
	t.Helper()
	targets := target.All()
	var out []outcome
	for _, item := range corpus.References() {
		for _, res := range eng.RunAll(targets, item.Mod, item.Inputs) {
			o := outcome{}
			if res.Crash != nil {
				o.crash = res.Crash.Signature
			}
			if res.Img != nil {
				o.w, o.h, o.pix = res.Img.W, res.Img.H, res.Img.Pix
			}
			out = append(out, o)
		}
	}
	return out
}

func sameOutcomes(a, b []outcome) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].crash != b[i].crash || a[i].w != b[i].w || a[i].h != b[i].h || !bytes.Equal(a[i].pix, b[i].pix) {
			return false
		}
	}
	return true
}

// A fresh engine over a warm memo store must serve every execution from
// disk — zero toolchain runs — with results bitwise-identical to the
// cold engine's.
func TestMemoWarmStartIdentical(t *testing.T) {
	dir := t.TempDir()
	ms, err := memostore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := runner.New(4)
	cold.SetMemoStore(ms)
	want := runCorpus(t, cold)
	coldStats := cold.Stats()
	if coldStats.MemoMisses == 0 || coldStats.MemoSpills == 0 {
		t.Fatalf("cold run never touched the memo: %+v", coldStats)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}

	ms2, err := memostore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ms2.Close()
	warm := runner.New(4)
	warm.SetMemoStore(ms2)
	got := runCorpus(t, warm)
	if !sameOutcomes(want, got) {
		t.Fatal("warm results differ from cold results")
	}
	st := warm.Stats()
	if st.Misses != 0 || st.CompileMisses != 0 {
		t.Fatalf("warm engine executed the toolchain: %+v", st)
	}
	if st.MemoHits == 0 || st.MemoMisses != 0 {
		t.Fatalf("warm engine missed the memo: %+v", st)
	}
	if st.HitRate() <= 0.99 {
		t.Fatalf("warm hit rate %v", st.HitRate())
	}
}

// The degraded baselines must stay baselines: with compile sharing off
// or caching disabled the memo tier is bypassed entirely.
func TestMemoRespectsDegradedModes(t *testing.T) {
	for _, mode := range []string{"nosharing", "nocache"} {
		ms, err := memostore.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		eng := runner.New(2)
		eng.SetMemoStore(ms)
		switch mode {
		case "nosharing":
			eng.SetCompileSharing(false)
		case "nocache":
			eng.SetCacheCap(0)
		}
		runCorpus(t, eng)
		st := eng.Stats()
		if st.MemoHits != 0 || st.MemoMisses != 0 || st.MemoSpills != 0 {
			t.Fatalf("%s: memo tier active in a degraded mode: %+v", mode, st)
		}
		if st.Misses == 0 {
			t.Fatalf("%s: nothing executed", mode)
		}
		ms.Close()
	}
}

// A truncated (torn-tail) memo store stays correct: some keys re-execute,
// every result matches the cold reference bit for bit.
func TestMemoTruncatedStoreIdentical(t *testing.T) {
	dir := t.TempDir()
	ms, err := memostore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := runner.New(4)
	cold.SetMemoStore(ms)
	want := runCorpus(t, cold)
	ms.Flush()
	if err := ms.Compact(); err != nil { // compacted temperature, while at it
		t.Fatal(err)
	}
	ms.Close()

	// Chop bytes off the largest segment to fake a torn spill: the
	// checkpoint now promises more than the file holds, which recovery
	// treats as an index/segment mismatch and rescans.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments on disk: %v", err)
	}
	sort.Slice(segs, func(i, j int) bool {
		fi, _ := os.Stat(segs[i])
		fj, _ := os.Stat(segs[j])
		return fi.Size() > fj.Size()
	})
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	warm := runner.New(4)
	ms3, err := memostore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ms3.Close()
	warm.SetMemoStore(ms3)
	got := runCorpus(t, warm)
	if !sameOutcomes(want, got) {
		t.Fatal("results over a recovered store differ from cold")
	}
}

// MemoStore returns what SetMemoStore attached.
func TestMemoStoreAccessor(t *testing.T) {
	eng := runner.New(1)
	if eng.MemoStore() != nil {
		t.Fatal("fresh engine has a memo store")
	}
	ms, err := memostore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	eng.SetMemoStore(ms)
	if eng.MemoStore() != ms {
		t.Fatal("accessor mismatch")
	}
	// HitRate folds memo counters in: a pure-memo warm lookup counts.
	st := runner.Stats{MemoHits: 3, MemoMisses: 1, SingleflightHits: 1}
	if got := st.HitRate(); got != 1.0 {
		t.Fatalf("memo hit rate %v", got)
	}
}
