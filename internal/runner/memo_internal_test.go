package runner

import (
	"bytes"
	"runtime"
	"testing"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

// The memo keys must separate layers and content: equal content maps to
// equal keys, any field change to a different key, and the result/compile
// domains never collide.
func TestMemoKeyDerivation(t *testing.T) {
	m := testmod.Diamond()
	fp := m.Fingerprint()
	k1 := key{target: "Mesa\x00v1", mod: fp, w: 8, h: 8}
	if resultMemoKey(k1) != resultMemoKey(k1) {
		t.Fatal("resultMemoKey not deterministic")
	}
	variants := []key{
		{target: "Mesa\x00v2", mod: fp, w: 8, h: 8},
		{target: "Mesa\x00v1", mod: fp, w: 9, h: 8},
		{target: "Mesa\x00v1", mod: fp, w: 8, h: 9},
		{target: "Intel\x00v1", mod: fp, w: 8, h: 8},
	}
	for i, kv := range variants {
		if resultMemoKey(kv) == resultMemoKey(k1) {
			t.Fatalf("variant %d collides with base key", i)
		}
	}
	ck := ckey{mod: fp, mut: ""}
	if compileMemoKey(ck) == compileMemoKey(ckey{mod: fp, mut: "x"}) {
		t.Fatal("mutation fingerprint ignored by compile key")
	}
	// Cross-domain separation: a compile key whose content bytes happen to
	// echo a result key still hashes into a different domain.
	if memostore.Key(resultMemoKey(k1)) == memostore.Key(compileMemoKey(ck)) {
		t.Fatal("result and compile domains collide")
	}
}

// All three legal result shapes survive the payload codec exactly.
func TestMemoResultCodec(t *testing.T) {
	img := &interp.Image{W: 2, H: 2, Pix: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}}
	cases := []struct {
		img   *interp.Image
		crash *target.Crash
	}{
		{img: img},
		{crash: &target.Crash{Signature: "Mesa: device fault: boom"}},
		{}, // offline target, no crash
	}
	for i, c := range cases {
		data, ok := encodeResult(c.img, c.crash)
		if !ok {
			t.Fatalf("case %d: encode failed", i)
		}
		gotImg, gotCrash, ok := decodeResult(data)
		if !ok {
			t.Fatalf("case %d: decode failed", i)
		}
		switch {
		case c.crash != nil:
			if gotCrash == nil || gotCrash.Signature != c.crash.Signature || gotImg != nil {
				t.Fatalf("case %d: crash round trip: %+v %+v", i, gotImg, gotCrash)
			}
		case c.img != nil:
			if gotImg == nil || gotCrash != nil || gotImg.W != c.img.W || gotImg.H != c.img.H || !bytes.Equal(gotImg.Pix, c.img.Pix) {
				t.Fatalf("case %d: image round trip: %+v", i, gotImg)
			}
		default:
			if gotImg != nil || gotCrash != nil {
				t.Fatalf("case %d: nil/nil round trip: %+v %+v", i, gotImg, gotCrash)
			}
		}
	}
	// Corrupt payloads decode to !ok, never to a wrong result.
	for name, bad := range map[string][]byte{
		"empty payload":         nil,
		"unknown shape byte":    {9},
		"truncated image":       {2, 2, 0, 0, 0},
		"wrong-size pixels":     append([]byte{2, 2, 0, 0, 0, 2, 0, 0, 0}, 1, 2, 3),
		"trailing offline junk": {0, 0},
	} {
		if _, _, ok := decodeResult(bad); ok {
			t.Fatalf("decodeResult accepted %s", name)
		}
	}
}

// The compile payload stores only the module's canonical encoding; the
// fingerprint is recomputed on decode. That is sound only if the
// encoding round-trips exactly — pinned here against every corpus-shaped
// module the compile path actually produces.
func TestMemoCompileRoundTrip(t *testing.T) {
	for name, m := range testmod.All() {
		compiled, err := target.SharedCompile(m, nil)
		if err != nil {
			continue
		}
		data, ok := encodeCompile(compiled, "")
		if !ok {
			t.Fatalf("%s: encode failed", name)
		}
		got, fp, errMsg, ok := decodeCompile(data)
		if !ok || errMsg != "" || got == nil {
			t.Fatalf("%s: decode failed (%v, %q)", name, ok, errMsg)
		}
		if fp != compiled.Fingerprint() {
			t.Fatalf("%s: fingerprint changed across the codec — the memo would desync the render layer", name)
		}
		if !bytes.Equal(got.EncodeBytes(), compiled.EncodeBytes()) {
			t.Fatalf("%s: encoding not a fixed point", name)
		}
	}
	// Error-shaped payloads round trip too.
	data, ok := encodeCompile(nil, "opt: pass exploded")
	if !ok {
		t.Fatal("encode of error payload failed")
	}
	if _, _, errMsg, ok := decodeCompile(data); !ok || errMsg != "opt: pass exploded" {
		t.Fatalf("error payload round trip: %q %v", errMsg, ok)
	}
	for name, bad := range map[string][]byte{
		"empty payload":        nil,
		"unknown tag byte":     {7},
		"garbage module bytes": {1, 0xde, 0xad},
		"empty error text":     {0},
	} {
		if _, _, _, ok := decodeCompile(bad); ok {
			t.Fatalf("decodeCompile accepted %s", name)
		}
	}
}

// A run that arrives while another engine's execution of the same key is
// in flight on the shared store must wait for it and count a
// singleflight hit instead of executing again.
func TestMemoSingleflightAcrossEngines(t *testing.T) {
	ref := New(1)
	tg := target.ByName("Mesa")
	m := testmod.Diamond()

	// Retry with distinct keys until the follower provably joined the
	// leader's flight (pointer-shared image); each attempt has a tiny
	// benign race where the engine wins the flight instead.
	for attempt := 0; attempt < 8; attempt++ {
		in := interp.Inputs{W: 4 + attempt, H: 4}
		img, crash := ref.Run(tg, m, in)
		if crash != nil {
			t.Fatalf("reference run crashed: %v", crash)
		}
		ms, err := memostore.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		eng := New(1)
		eng.SetMemoStore(ms)
		mk := resultMemoKey(eng.keyFor(tg, m, in))

		started := make(chan struct{})
		release := make(chan struct{})
		leaderDone := make(chan struct{})
		go func() {
			ms.Do(mk, func() any {
				close(started)
				<-release
				return memoOutcome{img: img, crash: nil}
			})
			close(leaderDone)
		}()
		<-started

		runDone := make(chan struct{})
		var got *interp.Image
		go func() {
			got, _ = eng.Run(tg, m, in)
			close(runDone)
		}()
		// The engine either joins the flight (memo miss counted first) or
		// loses the race after the leader drains; wait for the counter,
		// then let the leader finish.
		for eng.Stats().MemoMisses == 0 {
			runtime.Gosched()
		}
		close(release)
		<-leaderDone
		<-runDone
		ms.Close()

		if got == img { // pointer-shared: the follower path ran
			st := eng.Stats()
			if st.SingleflightHits != 1 {
				t.Fatalf("singleflight hits %d, want 1 (%+v)", st.SingleflightHits, st)
			}
			if st.Misses != 0 {
				t.Fatalf("follower executed anyway: %+v", st)
			}
			return
		}
		// Raced: the engine executed fresh. Its result must still match.
		if !bytes.Equal(got.Pix, img.Pix) {
			t.Fatal("raced execution produced different pixels")
		}
	}
	t.Fatal("follower never joined a flight in 8 attempts")
}
