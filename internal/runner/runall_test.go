package runner_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
	"spirvfuzz/internal/testmod"
)

// fuzzedVariant is one generated test case for the batching property tests.
type fuzzedVariant struct {
	mod *spirv.Module
	in  interp.Inputs
}

// fuzzVariants generates n variants from the reference corpus, spanning
// clean modules, crashing shapes and miscompiling shapes across the targets.
func fuzzVariants(t *testing.T, n int) []fuzzedVariant {
	t.Helper()
	refs := corpus.References()
	donors := corpus.Donors()
	out := make([]fuzzedVariant, 0, n)
	for i := 0; i < n; i++ {
		item := refs[i%len(refs)]
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:                  int64(7000 + i),
			Donors:                donors,
			EnableRecommendations: true,
			MinPasses:             3,
			MaxPasses:             10,
		})
		if err != nil {
			t.Fatalf("fuzz %d: %v", i, err)
		}
		out = append(out, fuzzedVariant{mod: res.Variant, in: res.Inputs})
	}
	return out
}

// TestRunAllMatchesPerTarget is the batching property test: for fuzzed
// variants, RunAllCtx over all nine targets must byte-equal the per-target
// RunCtx results of an engine with compile sharing disabled (the monolithic
// pre-phase-split path), at 1 and 4 workers. Crashes are compared by
// signature, images by content.
func TestRunAllMatchesPerTarget(t *testing.T) {
	targets := target.All()
	variants := fuzzVariants(t, 50)
	ctx := context.Background()

	for _, workers := range []int{1, 4} {
		batched := runner.New(workers)
		unbatched := runner.New(workers)
		unbatched.SetCompileSharing(false)
		for vi, v := range variants {
			all, err := batched.RunAllCtx(ctx, targets, v.mod, v.in)
			if err != nil {
				t.Fatalf("workers=%d variant=%d: RunAllCtx: %v", workers, vi, err)
			}
			if len(all) != len(targets) {
				t.Fatalf("workers=%d variant=%d: %d results for %d targets", workers, vi, len(all), len(targets))
			}
			for ti, tg := range targets {
				img, crash, err := unbatched.RunCtx(ctx, tg, v.mod, v.in)
				if err != nil {
					t.Fatalf("workers=%d variant=%d %s: RunCtx: %v", workers, vi, tg.Name, err)
				}
				got := all[ti]
				switch {
				case (crash == nil) != (got.Crash == nil):
					t.Fatalf("workers=%d variant=%d %s: crash mismatch: %v vs %v", workers, vi, tg.Name, crash, got.Crash)
				case crash != nil && crash.Signature != got.Crash.Signature:
					t.Fatalf("workers=%d variant=%d %s: signature %q vs %q", workers, vi, tg.Name, crash.Signature, got.Crash.Signature)
				case (img == nil) != (got.Img == nil):
					t.Fatalf("workers=%d variant=%d %s: image presence mismatch", workers, vi, tg.Name)
				case img != nil && !img.Equal(got.Img):
					t.Fatalf("workers=%d variant=%d %s: images differ", workers, vi, tg.Name)
				}
			}
		}
		bst, ust := batched.Stats(), unbatched.Stats()
		if bst.CompileHits == 0 {
			t.Fatalf("workers=%d: batched engine never shared a compile: %+v", workers, bst)
		}
		if ust.CompileHits != 0 || ust.CompileMisses != 0 {
			t.Fatalf("workers=%d: sharing-disabled engine touched the compile layer: %+v", workers, ust)
		}
	}
}

// TestRunAllMatchesDirectRun spot-checks RunAllCtx against raw tg.Run — the
// uncached, unshared ground truth — so the whole engine stack, not just the
// sharing toggle, is anchored to target semantics.
func TestRunAllMatchesDirectRun(t *testing.T) {
	targets := target.All()
	variants := fuzzVariants(t, 10)
	eng := runner.New(4)
	for vi, v := range variants {
		all, err := eng.RunAllCtx(context.Background(), targets, v.mod, v.in)
		if err != nil {
			t.Fatal(err)
		}
		for ti, tg := range targets {
			img, crash := tg.Run(v.mod, v.in)
			got := all[ti]
			switch {
			case (crash == nil) != (got.Crash == nil):
				t.Fatalf("variant=%d %s: crash mismatch: %v vs %v", vi, tg.Name, crash, got.Crash)
			case crash != nil && crash.Signature != got.Crash.Signature:
				t.Fatalf("variant=%d %s: signature %q vs %q", vi, tg.Name, crash.Signature, got.Crash.Signature)
			case (img == nil) != (got.Img == nil):
				t.Fatalf("variant=%d %s: image presence mismatch", vi, tg.Name)
			case img != nil && !img.Equal(got.Img):
				t.Fatalf("variant=%d %s: images differ", vi, tg.Name)
			}
		}
	}
}

// TestRunAllHammer drives RunAllCtx from many goroutines over a small cache
// so the shared-compile layer's insertion, in-flight waiting and eviction
// interleave; run with -race. Every call's results are checked against a
// precomputed reference.
func TestRunAllHammer(t *testing.T) {
	eng := runner.New(8)
	eng.SetCacheCap(32) // force constant eviction in every layer
	targets := target.All()

	var mods []*spirv.Module
	for i := 0; i < 8; i++ {
		m := testmod.Diamond()
		m.EnsureConstantWord(m.EnsureTypeInt(32, true), uint32(2000+i))
		mods = append(mods, m)
	}
	want := make([]*interp.Image, len(mods))
	for i, m := range mods {
		var err error
		want[i], err = interp.Render(m, interp.Inputs{})
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				mi := (g*5 + i) % len(mods)
				all, err := eng.RunAllCtx(context.Background(), targets, mods[mi], interp.Inputs{})
				if err != nil {
					errCh <- err
					return
				}
				for ti, tg := range targets {
					if all[ti].Crash != nil {
						errCh <- fmt.Errorf("%s crashed on clean module: %v", tg.Name, all[ti].Crash)
						return
					}
					if tg.CanRender && !all[ti].Img.Equal(want[mi]) {
						errCh <- fmt.Errorf("%s returned a wrong image under contention", tg.Name)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CompileHits == 0 || st.CompileMisses == 0 {
		t.Fatalf("hammer did not exercise the compile cache: %+v", st)
	}
}
