package runner

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
)

// Stats mixes two kinds of counters: the cache/worker fields are owned by one
// Engine, but OptPasses and the Lane* counters are process-wide profiles that
// every Engine.Stats call in the same process re-reads from shared package
// state. Summing snapshots from two engines in one process — or two snapshots
// of the same engine taken as a shard stream progresses — therefore
// double-counts the shared fields (and, for repeated snapshots, everything).
// MergeStats is the aggregation that gets this right; cluster metrics use it.

// AddEngine accumulates the per-engine cache and worker counters of o into s,
// leaving the process-wide fields (OptPasses, LaneGroups, LaneDivergences,
// ScalarFallbacks) untouched. Use it to combine engines that share a process.
func (s *Stats) AddEngine(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.CompileHits += o.CompileHits
	s.CompileMisses += o.CompileMisses
	s.RenderHits += o.RenderHits
	s.RenderMisses += o.RenderMisses
	s.PlanHits += o.PlanHits
	s.PlanMisses += o.PlanMisses
	s.PlanCompileNanos += o.PlanCompileNanos
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Workers += o.Workers
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.MemoSpills += o.MemoSpills
	s.SingleflightHits += o.SingleflightHits
}

// mergeShared folds the process-wide fields of o into s element-wise by max.
// Counters only grow, so the max of several snapshots from one process is the
// latest reading rather than a multiple of it.
func (s *Stats) mergeShared(o Stats) {
	s.LaneGroups = max(s.LaneGroups, o.LaneGroups)
	s.LaneDivergences = max(s.LaneDivergences, o.LaneDivergences)
	s.ScalarFallbacks = max(s.ScalarFallbacks, o.ScalarFallbacks)
	byName := make(map[string]int, len(s.OptPasses))
	for i := range s.OptPasses {
		byName[s.OptPasses[i].Name] = i
	}
	for _, p := range o.OptPasses {
		i, ok := byName[p.Name]
		if !ok {
			s.OptPasses = append(s.OptPasses, p)
			continue
		}
		q := &s.OptPasses[i]
		q.Runs = max(q.Runs, p.Runs)
		q.Changed = max(q.Changed, p.Changed)
		q.Nanos = max(q.Nanos, p.Nanos)
	}
}

// addShared folds the process-wide fields of o into s by summation — correct
// across distinct processes, whose shared counters are independent.
func (s *Stats) addShared(o Stats) {
	s.LaneGroups += o.LaneGroups
	s.LaneDivergences += o.LaneDivergences
	s.ScalarFallbacks += o.ScalarFallbacks
	byName := make(map[string]int, len(s.OptPasses))
	for i := range s.OptPasses {
		byName[s.OptPasses[i].Name] = i
	}
	for _, p := range o.OptPasses {
		i, ok := byName[p.Name]
		if !ok {
			s.OptPasses = append(s.OptPasses, p)
			continue
		}
		q := &s.OptPasses[i]
		q.Runs += p.Runs
		q.Changed += p.Changed
		q.Nanos += p.Nanos
	}
}

// MergeStats aggregates engine snapshots grouped by the process that produced
// them (key = ProcessToken of the reporting process). Within one group the
// per-engine counters sum and the process-wide profiles take the latest
// (element-wise max) reading; across groups everything sums. The result is an
// honest cluster-wide view: plan-cache hits from N engines in one worker
// process are each counted once, and the shared optimizer/lane profile of
// that process appears once no matter how many shard snapshots it reported.
func MergeStats(groups map[string][]Stats) Stats {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out Stats
	for _, k := range keys {
		var g Stats
		for _, st := range groups[k] {
			g.AddEngine(st)
			g.mergeShared(st)
		}
		out.AddEngine(g)
		out.addShared(g)
	}
	sort.Slice(out.OptPasses, func(i, j int) bool {
		return out.OptPasses[i].Name < out.OptPasses[j].Name
	})
	return out
}

var (
	procTokenOnce sync.Once
	procToken     string
)

// ProcessToken returns a random identifier minted once per process. Workers
// report it alongside Stats snapshots so an aggregator can tell which
// snapshots share process-wide counters and group them for MergeStats.
func ProcessToken() string {
	procTokenOnce.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to a fixed token; grouping degrades to "one process",
			// which over-merges (undercounts) rather than double-counts.
			procToken = "proc-fallback"
			return
		}
		procToken = "proc-" + hex.EncodeToString(b[:])
	})
	return procToken
}
