// Package glslfuzz simulates the glsl-fuzz baseline of the paper's
// evaluation (Section 4). The real glsl-fuzz transforms OpenGL shader source
// and reaches SPIR-V targets through cross-compilation; this simulation
// applies the same *style* of transformations directly to the SPIR-V subset,
// preserving the design contrasts the paper attributes to the tool:
//
//   - transformations are coarse-grained: one application makes many
//     related edits at once (a wrapped conditional with its loads, compares
//     and identity arithmetic; a dead conditional with a junk body; a
//     single-iteration loop), so reduction cannot strip the parts of a
//     transformation that are unnecessary for triggering a bug;
//   - fresh ids are obtained on the fly while applying, so instances are
//     not independent — removing an earlier instance can invalidate a later
//     one (the fuzzer/reducer synchronisation fragility of Section 6);
//   - the reducer is hand-crafted: it reverts whole instances greedily
//     rather than delta-debugging subsequences.
package glslfuzz

import (
	"math/rand"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
)

// Instance is one applied coarse transformation, with enough recorded
// parameters to re-apply it during reduction.
type Instance struct {
	Kind  string   `json:"kind"`
	Block spirv.ID `json:"block,omitempty"` // target block label
	Value spirv.ID `json:"value,omitempty"` // target instruction / operand anchor
	Extra uint32   `json:"extra,omitempty"` // kind-specific knob
}

// Instance kinds.
const (
	KindWrapConditional  = "WrapConditional"  // if (u_one > 0.0) { body }
	KindInjectDeadCode   = "InjectDeadCode"   // if (u_half > 0.6) { junk }
	KindIdentityChain    = "IdentityChain"    // x -> (x*1.0)/1.0 or (x+0)*1
	KindSingleIterLoop   = "SingleIterLoop"   // loop executed exactly once
	KindSwizzleRoundTrip = "SwizzleRoundTrip" // v -> shuffle(v, v, identity)
)

// Result of a fuzzing run.
type Result struct {
	Variant   *spirv.Module
	Instances []Instance
}

// Options configures the baseline fuzzer.
type Options struct {
	Seed         int64
	MaxInstances int // default 12
}

// Fuzz applies randomized coarse transformations to a copy of original.
func Fuzz(original *spirv.Module, inputs interp.Inputs, opts Options) *Result {
	if opts.MaxInstances == 0 {
		opts.MaxInstances = 12
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m := original.Clone()
	var applied []Instance
	kinds := []string{KindWrapConditional, KindInjectDeadCode, KindIdentityChain, KindSingleIterLoop, KindSwizzleRoundTrip}
	attempts := opts.MaxInstances * 4
	for len(applied) < opts.MaxInstances && attempts > 0 {
		attempts--
		inst := pickInstance(m, rng, kinds[rng.Intn(len(kinds))])
		if inst == nil {
			continue
		}
		if apply(m, inputs, *inst) {
			applied = append(applied, *inst)
		}
	}
	return &Result{Variant: m, Instances: applied}
}

// Replay applies instances to a fresh copy of the original, skipping any
// that are no longer applicable. This is what the hand-crafted reducer uses
// when reverting instances.
func Replay(original *spirv.Module, inputs interp.Inputs, instances []Instance) *spirv.Module {
	m := original.Clone()
	for _, inst := range instances {
		apply(m, inputs, inst)
	}
	return m
}

// Reduce is the hand-crafted reducer: it repeatedly sweeps the instance list
// from the back, reverting any instance whose removal keeps the variant
// interesting. Unlike delta debugging over fine-grained transformations, a
// retained instance keeps all of its edits.
func Reduce(original *spirv.Module, inputs interp.Inputs, instances []Instance,
	interesting func(*spirv.Module) bool) ([]Instance, *spirv.Module) {
	current := append([]Instance(nil), instances...)
	for {
		removedAny := false
		for i := len(current) - 1; i >= 0; i-- {
			candidate := append(append([]Instance{}, current[:i]...), current[i+1:]...)
			if interesting(Replay(original, inputs, candidate)) {
				current = candidate
				removedAny = true
			}
		}
		if !removedAny {
			break
		}
	}
	return current, Replay(original, inputs, current)
}

// pickInstance chooses parameters for a new instance against the current
// module state.
func pickInstance(m *spirv.Module, rng *rand.Rand, kind string) *Instance {
	fn := m.EntryPointFunction()
	if fn == nil {
		return nil
	}
	switch kind {
	case KindWrapConditional, KindInjectDeadCode, KindSingleIterLoop:
		b := fn.Blocks[rng.Intn(len(fn.Blocks))]
		return &Instance{Kind: kind, Block: b.Label}
	case KindIdentityChain, KindSwizzleRoundTrip:
		var candidates []spirv.ID
		for _, b := range fn.Blocks {
			for _, ins := range b.Body {
				if ins.Result != 0 {
					candidates = append(candidates, ins.Result)
				}
			}
		}
		if len(candidates) == 0 {
			return nil
		}
		return &Instance{Kind: kind, Value: candidates[rng.Intn(len(candidates))]}
	}
	return nil
}

// uniformNamed finds a uniform variable by debug name.
func uniformNamed(m *spirv.Module, name string) spirv.ID {
	for _, n := range m.Names {
		if n.Op != spirv.OpName {
			continue
		}
		s, _ := spirv.DecodeString(n.Operands[1:])
		if s != name {
			continue
		}
		id := spirv.ID(n.Operands[0])
		def := m.Def(id)
		if def != nil && def.Op == spirv.OpVariable {
			return id
		}
	}
	return 0
}
