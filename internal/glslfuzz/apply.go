package glslfuzz

import (
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
)

// apply performs one instance against m, returning false when the instance
// is not (or no longer) applicable. Fresh ids are allocated on the fly —
// deliberately, to model glsl-fuzz's lack of transformation independence.
func apply(m *spirv.Module, inputs interp.Inputs, inst Instance) bool {
	fn := m.EntryPointFunction()
	if fn == nil {
		return false
	}
	switch inst.Kind {
	case KindWrapConditional:
		return applyWrapConditional(m, inputs, fn, inst)
	case KindInjectDeadCode:
		return applyInjectDeadCode(m, inputs, fn, inst)
	case KindIdentityChain:
		return applyIdentityChain(m, fn, inst)
	case KindSingleIterLoop:
		return applySingleIterLoop(m, fn, inst)
	case KindSwizzleRoundTrip:
		return applySwizzleRoundTrip(m, fn, inst)
	}
	return false
}

// bodyDefsEscape reports whether any id defined in b's body is used outside
// b's body (wrapping kinds move the body into a block that no longer
// dominates the join).
func bodyDefsEscape(fn *spirv.Function, b *spirv.Block) bool {
	defined := make(map[spirv.ID]bool)
	for _, ins := range b.Body {
		if ins.Result != 0 {
			defined[ins.Result] = true
		}
	}
	if len(defined) == 0 {
		return false
	}
	escapes := false
	for _, ob := range fn.Blocks {
		if ob == b {
			continue
		}
		ob.Instructions(func(ins *spirv.Instruction) {
			ins.Uses(func(id spirv.ID) {
				if defined[id] {
					escapes = true
				}
			})
		})
	}
	return escapes
}

func retargetPhis(b *spirv.Block, old, new spirv.ID) {
	for _, phi := range b.Phis {
		for i := 1; i < len(phi.Operands); i += 2 {
			if spirv.ID(phi.Operands[i]) == old {
				phi.Operands[i] = uint32(new)
			}
		}
	}
}

func insertBlockAfter(fn *spirv.Function, after *spirv.Block, blocks ...*spirv.Block) {
	for i, blk := range fn.Blocks {
		if blk == after {
			rest := append(append([]*spirv.Block{}, blocks...), fn.Blocks[i+1:]...)
			fn.Blocks = append(fn.Blocks[:i+1:i+1], rest...)
			return
		}
	}
	fn.Blocks = append(fn.Blocks, blocks...)
}

// uniformFloatOver checks that the module has a float uniform with the given
// name whose input value makes (value > threshold) equal to want, and
// returns the variable id. This is how the simulated glsl-fuzz knows its
// injected conditions are tautological (GraphicsFuzz's injectionSwitch).
func uniformFloatOver(m *spirv.Module, inputs interp.Inputs, name string, threshold float32, want bool) (spirv.ID, bool) {
	v := uniformNamed(m, name)
	if v == 0 {
		return 0, false
	}
	val, ok := inputs.Uniforms[name]
	if !ok || val.Kind != interp.KindFloat || (val.F > threshold) != want {
		return 0, false
	}
	def := m.Def(v)
	if _, pointee, ok := m.PointerInfo(def.Type); !ok || !m.IsFloatType(pointee) {
		return 0, false
	}
	return v, true
}

// applyWrapConditional wraps the body of a block in "if (u_one > 0.0)",
// loading the uniform, comparing, and sprinkling identity arithmetic inside
// the wrapped region — one coarse edit of ~10 instructions.
func applyWrapConditional(m *spirv.Module, inputs interp.Inputs, fn *spirv.Function, inst Instance) bool {
	b := fn.Block(inst.Block)
	if b == nil || b.Merge != nil || b.Term == nil || bodyDefsEscape(fn, b) {
		return false
	}
	if b.Term.Op != spirv.OpBranch && b.Term.Op != spirv.OpReturn {
		return false
	}
	uni, ok := uniformFloatOver(m, inputs, "u_one", 0, true)
	if !ok {
		return false
	}
	f32 := m.EnsureTypeFloat(32)
	boolT := m.EnsureTypeBool()
	zero := m.EnsureConstantFloat(0)
	one := m.EnsureConstantFloat(1)
	succ := branchTarget(b.Term)

	load := spirv.NewInstr(spirv.OpLoad, f32, m.FreshID(), uint32(uni))
	cmp := spirv.NewInstr(spirv.OpFOrdGreaterThan, boolT, m.FreshID(), uint32(load.Result), uint32(zero))
	inner := &spirv.Block{Label: m.FreshID()}
	mergeB := &spirv.Block{Label: m.FreshID(), Term: b.Term}

	// The wrapped body, prefixed with identity arithmetic on the loaded
	// uniform (junk the real glsl-fuzz scatters into injected regions).
	junk1 := spirv.NewInstr(spirv.OpFMul, f32, m.FreshID(), uint32(load.Result), uint32(one))
	junk2 := spirv.NewInstr(spirv.OpFDiv, f32, m.FreshID(), uint32(junk1.Result), uint32(one))
	inner.Body = append([]*spirv.Instruction{junk1, junk2}, b.Body...)
	inner.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(mergeB.Label))

	b.Body = []*spirv.Instruction{load, cmp}
	b.Merge = spirv.NewInstr(spirv.OpSelectionMerge, 0, 0, uint32(mergeB.Label), spirv.SelectionControlNone)
	b.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, uint32(cmp.Result), uint32(inner.Label), uint32(mergeB.Label))
	insertBlockAfter(fn, b, inner, mergeB)
	if sb := fn.Block(succ); succ != 0 && sb != nil {
		retargetPhis(sb, b.Label, mergeB.Label)
	}
	return true
}

// applyInjectDeadCode appends "if (u_half > 0.6) { junk stores }" to a
// block: the condition is false at runtime, so the junk never executes.
func applyInjectDeadCode(m *spirv.Module, inputs interp.Inputs, fn *spirv.Function, inst Instance) bool {
	b := fn.Block(inst.Block)
	if b == nil || b.Merge != nil || b.Term == nil {
		return false
	}
	if b.Term.Op != spirv.OpBranch && b.Term.Op != spirv.OpReturn {
		return false
	}
	uni, ok := uniformFloatOver(m, inputs, "u_half", 0.6, false)
	if !ok {
		return false
	}
	f32 := m.EnsureTypeFloat(32)
	boolT := m.EnsureTypeBool()
	thr := m.EnsureConstantFloat(0.6)
	two := m.EnsureConstantFloat(2)
	succ := branchTarget(b.Term)

	// A fresh private scratch variable the junk stores to; nothing reads it.
	scratchPtr := m.EnsureTypePointer(spirv.StoragePrivate, f32)
	scratch := m.FreshID()
	m.TypesGlobals = append(m.TypesGlobals, spirv.NewInstr(spirv.OpVariable, scratchPtr, scratch, spirv.StoragePrivate))

	load := spirv.NewInstr(spirv.OpLoad, f32, m.FreshID(), uint32(uni))
	cmp := spirv.NewInstr(spirv.OpFOrdGreaterThan, boolT, m.FreshID(), uint32(load.Result), uint32(thr))
	junkBlk := &spirv.Block{Label: m.FreshID()}
	mergeB := &spirv.Block{Label: m.FreshID(), Term: b.Term}

	j1 := spirv.NewInstr(spirv.OpFAdd, f32, m.FreshID(), uint32(load.Result), uint32(thr))
	j2 := spirv.NewInstr(spirv.OpFMul, f32, m.FreshID(), uint32(j1.Result), uint32(two))
	st := spirv.NewInstr(spirv.OpStore, 0, 0, uint32(scratch), uint32(j2.Result))
	junkBlk.Body = []*spirv.Instruction{j1, j2, st}
	junkBlk.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(mergeB.Label))

	b.Body = append(b.Body, load, cmp)
	b.Merge = spirv.NewInstr(spirv.OpSelectionMerge, 0, 0, uint32(mergeB.Label), spirv.SelectionControlNone)
	b.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, uint32(cmp.Result), uint32(junkBlk.Label), uint32(mergeB.Label))
	insertBlockAfter(fn, b, junkBlk, mergeB)
	if sb := fn.Block(succ); succ != 0 && sb != nil {
		retargetPhis(sb, b.Label, mergeB.Label)
	}
	return true
}

// branchTarget returns the target of an unconditional branch, or 0 for
// other terminators (whose blocks have no successor to repair).
func branchTarget(term *spirv.Instruction) spirv.ID {
	if term.Op == spirv.OpBranch {
		return term.IDOperand(0)
	}
	return 0
}

// replaceUsesExcept rewrites uses of old to new across the function, except
// in the instructions listed in skip.
func replaceUsesExcept(fn *spirv.Function, old, new spirv.ID, skip map[*spirv.Instruction]bool) {
	for _, b := range fn.Blocks {
		b.Instructions(func(ins *spirv.Instruction) {
			if skip[ins] {
				return
			}
			ins.MapUses(func(id spirv.ID) spirv.ID {
				if id == old {
					return new
				}
				return id
			})
		})
	}
}

// applyIdentityChain rewrites uses of a scalar value v to (v*1.0)/1.0 (or
// (v+0)*1 for integers), inserting the chain right after v's definition.
func applyIdentityChain(m *spirv.Module, fn *spirv.Function, inst Instance) bool {
	for _, b := range fn.Blocks {
		for i, ins := range b.Body {
			if ins.Result != inst.Value {
				continue
			}
			typ := ins.Type
			var c1, c2 *spirv.Instruction
			switch {
			case m.IsFloatType(typ):
				one := m.EnsureConstantFloat(1)
				c1 = spirv.NewInstr(spirv.OpFMul, typ, m.FreshID(), uint32(ins.Result), uint32(one))
				c2 = spirv.NewInstr(spirv.OpFDiv, typ, m.FreshID(), uint32(c1.Result), uint32(one))
			case m.IsIntType(typ):
				zero := m.EnsureConstantWord(typ, 0)
				oneI := m.EnsureConstantWord(typ, 1)
				c1 = spirv.NewInstr(spirv.OpIAdd, typ, m.FreshID(), uint32(ins.Result), uint32(zero))
				c2 = spirv.NewInstr(spirv.OpIMul, typ, m.FreshID(), uint32(c1.Result), uint32(oneI))
			default:
				return false
			}
			b.Body = append(b.Body[:i+1:i+1], append([]*spirv.Instruction{c1, c2}, b.Body[i+1:]...)...)
			replaceUsesExcept(fn, ins.Result, c2.Result, map[*spirv.Instruction]bool{ins: true, c1: true, c2: true})
			return true
		}
	}
	return false
}

// applySwizzleRoundTrip rewrites uses of a vector value v to an identity
// VectorShuffle of v with itself.
func applySwizzleRoundTrip(m *spirv.Module, fn *spirv.Function, inst Instance) bool {
	for _, b := range fn.Blocks {
		for i, ins := range b.Body {
			if ins.Result != inst.Value {
				continue
			}
			elemN, n, ok := m.VectorInfo(ins.Type)
			if !ok || !m.IsFloatType(elemN) && !m.IsIntType(elemN) && !m.IsBoolType(elemN) {
				return false
			}
			ops := []uint32{uint32(ins.Result), uint32(ins.Result)}
			for c := 0; c < n; c++ {
				ops = append(ops, uint32(c))
			}
			sh := spirv.NewInstr(spirv.OpVectorShuffle, ins.Type, m.FreshID(), ops...)
			b.Body = append(b.Body[:i+1:i+1], append([]*spirv.Instruction{sh}, b.Body[i+1:]...)...)
			replaceUsesExcept(fn, ins.Result, sh.Result, map[*spirv.Instruction]bool{ins: true, sh: true})
			return true
		}
	}
	return false
}

// applySingleIterLoop wraps a block's body in a loop that executes exactly
// once — the classic GLFuzz transformation.
func applySingleIterLoop(m *spirv.Module, fn *spirv.Function, inst Instance) bool {
	b := fn.Block(inst.Block)
	if b == nil || b.Merge != nil || b.Term == nil || bodyDefsEscape(fn, b) {
		return false
	}
	if b.Term.Op != spirv.OpBranch && b.Term.Op != spirv.OpReturn {
		return false
	}
	i32 := m.EnsureTypeInt(32, true)
	boolT := m.EnsureTypeBool()
	zero := m.EnsureConstantInt(0)
	oneI := m.EnsureConstantInt(1)
	succ := branchTarget(b.Term)

	header := &spirv.Block{Label: m.FreshID()}
	check := &spirv.Block{Label: m.FreshID()}
	inner := &spirv.Block{Label: m.FreshID()}
	cont := &spirv.Block{Label: m.FreshID()}
	mergeB := &spirv.Block{Label: m.FreshID(), Term: b.Term}

	iPhi := m.FreshID()
	iNext := m.FreshID()
	header.Phis = []*spirv.Instruction{
		spirv.NewInstr(spirv.OpPhi, i32, iPhi, uint32(zero), uint32(b.Label), uint32(iNext), uint32(cont.Label)),
	}
	header.Merge = spirv.NewInstr(spirv.OpLoopMerge, 0, 0, uint32(mergeB.Label), uint32(cont.Label), spirv.LoopControlNone)
	header.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(check.Label))

	cmp := spirv.NewInstr(spirv.OpSLessThan, boolT, m.FreshID(), uint32(iPhi), uint32(oneI))
	check.Body = []*spirv.Instruction{cmp}
	check.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, uint32(cmp.Result), uint32(inner.Label), uint32(mergeB.Label))

	inner.Body = b.Body
	inner.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(cont.Label))

	cont.Body = []*spirv.Instruction{spirv.NewInstr(spirv.OpIAdd, i32, iNext, uint32(iPhi), uint32(oneI))}
	cont.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(header.Label))

	b.Body = nil
	b.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(header.Label))
	insertBlockAfter(fn, b, header, check, inner, cont, mergeB)
	if sb := fn.Block(succ); succ != 0 && sb != nil {
		retargetPhis(sb, b.Label, mergeB.Label)
	}
	return true
}
