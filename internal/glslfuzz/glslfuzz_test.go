package glslfuzz_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/glslfuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
)

func TestBaselinePreservesSemantics(t *testing.T) {
	for _, item := range corpus.References() {
		want, err := interp.Render(item.Mod, item.Inputs)
		if err != nil {
			t.Fatalf("%s: %v", item.Name, err)
		}
		for seed := int64(0); seed < 4; seed++ {
			res := glslfuzz.Fuzz(item.Mod, item.Inputs, glslfuzz.Options{Seed: seed})
			if err := validate.Module(res.Variant); err != nil {
				t.Fatalf("%s seed %d: invalid variant: %v\n%s", item.Name, seed, err, res.Variant)
			}
			got, err := interp.Render(res.Variant, item.Inputs)
			if err != nil {
				t.Fatalf("%s seed %d: variant faults: %v", item.Name, seed, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s seed %d: image changed after %d instances", item.Name, seed, len(res.Instances))
			}
		}
	}
}

func TestBaselineAppliesCoarseInstances(t *testing.T) {
	item := corpus.References()[0]
	res := glslfuzz.Fuzz(item.Mod, item.Inputs, glslfuzz.Options{Seed: 1})
	if len(res.Instances) == 0 {
		t.Fatal("no instances applied")
	}
	grown := res.Variant.InstructionCount() - item.Mod.InstructionCount()
	perInstance := float64(grown) / float64(len(res.Instances))
	if perInstance < 2 {
		t.Fatalf("instances too fine-grained for the baseline: %.1f instructions each", perInstance)
	}
}

func TestBaselineReplayMatches(t *testing.T) {
	item := corpus.References()[5]
	res := glslfuzz.Fuzz(item.Mod, item.Inputs, glslfuzz.Options{Seed: 9})
	replayed := glslfuzz.Replay(item.Mod, item.Inputs, res.Instances)
	if replayed.String() != res.Variant.String() {
		t.Fatal("replay diverged")
	}
}

func TestBaselineReducer(t *testing.T) {
	item := corpus.References()[0]
	res := glslfuzz.Fuzz(item.Mod, item.Inputs, glslfuzz.Options{Seed: 2, MaxInstances: 8})
	if len(res.Instances) < 3 {
		t.Skip("not enough instances")
	}
	// Interestingness: the variant contains a loop (OpLoopMerge) — only
	// instances that build loops are needed.
	interesting := func(m *spirv.Module) bool {
		found := false
		m.ForEachInstruction(func(ins *spirv.Instruction) {
			if ins.Op == spirv.OpLoopMerge {
				found = true
			}
		})
		return found
	}
	if !interesting(res.Variant) {
		t.Skip("seed produced no loop instance")
	}
	reduced, variant := glslfuzz.Reduce(item.Mod, item.Inputs, res.Instances, interesting)
	if len(reduced) >= len(res.Instances) {
		t.Fatalf("reducer removed nothing (%d instances)", len(reduced))
	}
	if !interesting(variant) {
		t.Fatal("reduced variant no longer interesting")
	}
	for _, inst := range reduced {
		if inst.Kind != glslfuzz.KindSingleIterLoop {
			t.Fatalf("unnecessary instance kind %s retained", inst.Kind)
		}
	}
}

func TestBaselineSubsetsStayValid(t *testing.T) {
	item := corpus.References()[3]
	want, err := interp.Render(item.Mod, item.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	res := glslfuzz.Fuzz(item.Mod, item.Inputs, glslfuzz.Options{Seed: 4, MaxInstances: 10})
	n := len(res.Instances)
	for drop := 0; drop < n; drop++ {
		subset := append(append([]glslfuzz.Instance{}, res.Instances[:drop]...), res.Instances[drop+1:]...)
		m := glslfuzz.Replay(item.Mod, item.Inputs, subset)
		if err := validate.Module(m); err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		got, err := interp.Render(m, item.Inputs)
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		if !got.Equal(want) {
			t.Fatalf("drop %d: image changed", drop)
		}
	}
}
