package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

// Coordinator journal record types. Like the single-node service, the
// journal is the sole source of truth: shard results are journaled before
// they count, so a coordinator killed at any point replays the journal and
// re-dispatches exactly the shards that never landed.
const (
	recCampaignCreated = "cluster_campaign_created" // data: CampaignSpec (normalized)
	recShardDone       = "cluster_shard_done"       // data: shardDoneRec
	recCampaignDone    = "cluster_campaign_done"    // data: campaignDoneRec
	recCampaignFailed  = "cluster_campaign_failed"  // data: campaignFailedRec
	// Bisection-job records; journaled — like the job's shard results — under
	// the job's own ID ("b001", ...).
	recBisectCreated = "cluster_bisect_created" // data: bisectCreatedRec
	recBisectDone    = "cluster_bisect_done"    // data: bisectDoneRec
	recBisectFailed  = "cluster_bisect_failed"  // data: campaignFailedRec
)

// shardDoneRec journals one merged shard result.
type shardDoneRec struct {
	Phase   string                  `json:"phase"`
	Index   int                     `json:"index"`
	Node    string                  `json:"node,omitempty"`
	Tests   []TestResult            `json:"tests,omitempty"`
	Reduced []service.ReducedRec    `json:"reduced,omitempty"`
	Bisects []service.BisectOutcome `json:"bisects,omitempty"`
}

type bisectCreatedRec struct {
	Campaign string `json:"campaign"`
}

type bisectDoneRec struct {
	BisectBuckets int `json:"bisect_buckets"`
}

type campaignDoneRec struct {
	Buckets int `json:"buckets"`
}

type campaignFailedRec struct {
	Error string `json:"error"`
}

// Options configures a Coordinator.
type Options struct {
	// ShardTests is the maximum number of tests per fuzz shard; <= 0 selects
	// 4. With AdaptiveShards off every shard is cut at exactly this size;
	// with it on the coordinator sizes shards dynamically up to this bound.
	// Merged results are identical either way: completeness is derived from
	// the merged records, never from shard geometry.
	ShardTests int
	// ShardCases is the maximum number of reduction (and bisect) cases per
	// shard; <= 0 selects 2.
	ShardCases int
	// AdaptiveShards lets the coordinator resize shards at dispatch time from
	// an EWMA of observed per-unit service time vs per-shard sync time,
	// targeting shards large enough that sync overhead stays below
	// SyncFraction of shard wall time. Bounded above by ShardTests /
	// ShardCases, below by 1.
	AdaptiveShards bool
	// SyncFraction is the sync-overhead budget adaptive sizing aims for, as a
	// fraction of total shard time; <= 0 selects 0.2.
	SyncFraction float64
	// LeaseTTL is how long a dispatched shard may go without a heartbeat
	// before it is re-queued for another node; <= 0 selects 5s.
	LeaseTTL time.Duration
	// Memo, when non-nil, makes the coordinator the cluster's memo-sync
	// hub: workers with their own memo stores pull records they lack (at
	// join, and before each shard) and push new ones back after each shard,
	// so a cold-rejoining node warm-starts from the cluster's accumulated
	// execution history. The caller keeps ownership (and Close) of the
	// store, like the blob store.
	Memo *memostore.Store
}

func (o *Options) normalize() {
	if o.ShardTests <= 0 {
		o.ShardTests = 4
	}
	if o.ShardCases <= 0 {
		o.ShardCases = 2
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 5 * time.Second
	}
	if o.SyncFraction <= 0 || o.SyncFraction >= 1 {
		o.SyncFraction = 0.2
	}
}

// phaseSizer is the adaptive shard-sizing state of one phase: EWMAs of
// per-unit service nanos and per-shard sync nanos, and the current target
// size. The policy: a shard of n units costs roughly sync + n·unit, so
// keeping sync below fraction f of the total needs
// n ≥ sync·(1−f)/(f·unit). Sizes only move on observed results, so a quiet
// cluster keeps its last estimate.
type phaseSizer struct {
	unitNanos float64
	syncNanos float64
	size      int
	resizes   uint64
}

// sizerAlpha is the EWMA weight of each new observation.
const sizerAlpha = 0.3

func (ps *phaseSizer) observe(units int, serviceNanos, syncNanos int64) {
	if units <= 0 || serviceNanos <= 0 {
		return
	}
	unit := float64(serviceNanos) / float64(units)
	if ps.unitNanos == 0 {
		ps.unitNanos = unit
	} else {
		ps.unitNanos += sizerAlpha * (unit - ps.unitNanos)
	}
	sn := float64(syncNanos)
	if ps.syncNanos == 0 {
		ps.syncNanos = sn
	} else {
		ps.syncNanos += sizerAlpha * (sn - ps.syncNanos)
	}
}

func (ps *phaseSizer) retarget(f float64, maxSize int) {
	if ps.unitNanos <= 0 {
		return
	}
	want := int(ps.syncNanos*(1-f)/(f*ps.unitNanos)) + 1
	if want < 1 {
		want = 1
	}
	if want > maxSize {
		want = maxSize
	}
	if ps.size == 0 {
		ps.size = want
		return
	}
	if want != ps.size {
		ps.size = want
		ps.resizes++
	}
}

// ShardSizing is one phase's adaptive-sizing snapshot in /metrics: the
// current target size against its configured maximum, the EWMAs behind it,
// and how often the target moved. These are the worker auto-scaling hints —
// a size pinned at max with a deep queue says "add nodes"; sync-dominated
// tiny units say "the transport, not compute, is the bottleneck".
type ShardSizing struct {
	Phase   string  `json:"phase"`
	Size    int     `json:"size"`
	MaxSize int     `json:"max_size"`
	UnitMS  float64 `json:"unit_ms"`
	SyncMS  float64 `json:"sync_ms"`
	Resizes uint64  `json:"resizes"`
}

// clusterCampaign is the coordinator's in-memory state of one campaign,
// derived from the journal exactly like the single-node service's campaign.
type clusterCampaign struct {
	id     string
	spec   service.CampaignSpec
	state  string
	corpus []BlobRef // ordered manifest; index i is reference i

	testsDone map[int][]service.BugRef

	cases    []service.ReduceCase // set when the fuzz phase completes
	caseNode map[string]string    // case -> node that fuzzed its test (locality hint)
	reduced  map[string]service.ReducedRec

	buckets []service.Bucket
	errMsg  string

	skippedTests      int
	skippedReductions int
}

// clusterBisect is the coordinator's in-memory state of one bisection job.
// Its case list is derived from the finished campaign's merged records in
// the canonical selection order, so sharding is deterministic and the merged
// result set is bitwise-identical to a single-node run's.
type clusterBisect struct {
	id    string
	camp  *clusterCampaign
	state string

	recs     []service.ReducedRec // case group source, selection order
	cases    []service.ReduceCase
	outcomes map[string]service.BisectOutcome
	set      *service.BisectSet
	errMsg   string
	skipped  int
}

func (b *clusterBisect) status() service.BisectStatus {
	st := service.BisectStatus{
		ID:           b.id,
		Campaign:     b.camp.id,
		State:        b.state,
		CasesTotal:   len(b.recs),
		CasesDone:    len(b.outcomes),
		SkippedCases: b.skipped,
		Error:        b.errMsg,
	}
	if b.set != nil {
		// Recovered from the checkpoint without re-listing the cases.
		st.CasesTotal = len(b.set.Outcomes)
		st.CasesDone = len(b.set.Outcomes)
	}
	return st
}

func (c *clusterCampaign) status() service.CampaignStatus {
	st := service.CampaignStatus{
		ID:                c.id,
		State:             c.state,
		Spec:              c.spec,
		TestsDone:         len(c.testsDone),
		ReduceTotal:       len(c.cases),
		Reduced:           len(c.reduced),
		Buckets:           len(c.buckets),
		SkippedTests:      c.skippedTests,
		SkippedReductions: c.skippedReductions,
		Error:             c.errMsg,
	}
	for _, bugs := range c.testsDone {
		st.Bugs += len(bugs)
	}
	return st
}

// workUnit is the queue's granularity: one fuzz test index, one reduction
// case, or one bisect case group. The queue is unit-granular so shard
// boundaries are a *dispatch-time* decision — adaptive sizing can cut
// differently-sized shards from the same queue, and an expired lease's units
// simply rejoin it. Completeness is always derived from merged records, so
// no geometry choice can change the merged result.
type workUnit struct {
	c     *clusterCampaign
	b     *clusterBisect
	phase string
	// index is the fuzz test index, or the position of the case in the
	// canonical selection order for reduce/bisect units.
	index    int
	locality string // preferred node, best-effort
}

func (u *workUnit) ownerID() string {
	if u.b != nil {
		return u.b.id
	}
	return u.c.id
}

// shardState is a leased in-flight shard: the units it was cut from, who
// holds it, and when the lease expires.
type shardState struct {
	c        *clusterCampaign
	b        *clusterBisect
	phase    string
	index    int // first unit's index; the wire Shard.Index and key suffix
	units    []*workUnit
	node     string    // leased to
	deadline time.Time // lease expiry
}

// ownerID is the job ID shard keys and wire shards carry: the bisection
// job's for bisect shards, the campaign's otherwise.
func (ss *shardState) ownerID() string {
	if ss.b != nil {
		return ss.b.id
	}
	return ss.c.id
}

func (ss *shardState) key() string {
	return fmt.Sprintf("%s/%s/%d", ss.ownerID(), ss.phase, ss.index)
}

// ClusterStats is the cluster block of coordinator /metrics.
type ClusterStats struct {
	Nodes             int       `json:"nodes"`
	ShardsDispatched  uint64    `json:"shards_dispatched"`
	ShardsCompleted   uint64    `json:"shards_completed"`
	ShardsRequeued    uint64    `json:"shards_requeued"`
	ShardsDuplicate   uint64    `json:"shards_duplicate"`
	Sync              SyncStats `json:"sync"`
	BlobDedupFraction float64   `json:"blob_dedup_fraction"`
	// QueueDepth and LeasedShards snapshot the dispatch queue (in work
	// units) and in-flight shard count; with Sizing they are the
	// auto-scaling hints: deep queue + sizes pinned at max → add workers.
	QueueDepth   int           `json:"queue_depth"`
	LeasedShards int           `json:"leased_shards"`
	Sizing       []ShardSizing `json:"sizing,omitempty"`
}

// Metrics is the coordinator-wide counter snapshot (GET /metrics), shaped
// like the single-node service's with an extra cluster block. Runner is the
// MergeStats aggregate of the latest per-node engine snapshots; Bisect is
// the sum of per-node bisection-engine snapshots.
type Metrics struct {
	Campaigns      int          `json:"campaigns"`
	CampaignsDone  int          `json:"campaigns_done"`
	BisectJobs     int          `json:"bisect_jobs"`
	BisectJobsDone int          `json:"bisect_jobs_done"`
	JobsSkipped    uint64       `json:"jobs_skipped"`
	Runner         runner.Stats `json:"runner"`
	Replay         replay.Stats `json:"replay"`
	Bisect         bisect.Stats `json:"bisect"`
	Store          store.Stats  `json:"store"`
	Cluster        ClusterStats `json:"cluster"`
	// Memo is the coordinator memo-sync hub's snapshot (its Pulled/Pushed
	// are the hub's side of worker sync traffic); nil without a memo store.
	Memo *memostore.Stats `json:"memo,omitempty"`
}

// nodeState tracks one joined worker.
type nodeState struct {
	procToken string
	lastSeen  time.Time
	runner    runner.Stats // latest cumulative snapshot
	replay    replay.Stats
	bisect    bisect.Stats
}

// Coordinator owns the authoritative store and campaign state of a cluster
// and serves both the campaign API and the worker protocol. It executes
// nothing itself: all fuzzing and reduction happens on workers; the
// coordinator shards, dispatches, journals, and merges.
type Coordinator struct {
	st   *store.Store
	opts Options
	memo *memostore.Store // nil without Options.Memo

	mu           sync.Mutex
	campaigns    map[string]*clusterCampaign
	order        []string
	nextID       int
	bisects      map[string]*clusterBisect
	bisectOrder  []string
	nextBisectID int
	nodes        map[string]*nodeState
	queue        []*workUnit            // pending units, FIFO
	leased       map[string]*shardState // shard key -> in flight
	sizers       map[string]*phaseSizer // phase -> adaptive sizing state

	shardsDispatched uint64
	shardsCompleted  uint64
	shardsRequeued   uint64
	shardsDuplicate  uint64
	skipped          uint64
	sync             SyncStats
}

// NewCoordinator builds a coordinator over an open store, replays the
// journal, and re-queues every shard of every unfinished campaign that has
// no journaled result. The caller keeps ownership of the store until Close.
func NewCoordinator(st *store.Store, opts Options) (*Coordinator, error) {
	opts.normalize()
	co := &Coordinator{
		st:           st,
		opts:         opts,
		memo:         opts.Memo,
		campaigns:    make(map[string]*clusterCampaign),
		nextID:       1,
		bisects:      make(map[string]*clusterBisect),
		nextBisectID: 1,
		nodes:        make(map[string]*nodeState),
		leased:       make(map[string]*shardState),
		sizers:       make(map[string]*phaseSizer),
	}
	if err := co.recover(); err != nil {
		return nil, err
	}
	return co, nil
}

// Close syncs the journal. The store itself stays open for the caller.
func (co *Coordinator) Close() error {
	return co.st.Journal().Sync()
}

func newClusterCampaign(id string, spec service.CampaignSpec) *clusterCampaign {
	return &clusterCampaign{
		id:        id,
		spec:      spec,
		state:     service.StatePending,
		testsDone: make(map[int][]service.BugRef),
		caseNode:  make(map[string]string),
		reduced:   make(map[string]service.ReducedRec),
	}
}

// recover rebuilds campaign and shard state from the journal, then
// re-activates unfinished campaigns: journaled shards are counted as
// skipped work, the rest re-enters the dispatch queue.
func (co *Coordinator) recover() error {
	err := co.st.Journal().Replay(func(r store.Record) error {
		switch r.Type {
		case recBisectCreated, recBisectDone, recBisectFailed:
			return co.recoverBisect(r)
		case recShardDone:
			// Bisect shard results are journaled under the job's ID.
			if j := co.bisects[r.Campaign]; j != nil {
				var rec shardDoneRec
				if err := json.Unmarshal(r.Data, &rec); err != nil {
					return err
				}
				for _, out := range rec.Bisects {
					j.outcomes[out.Case] = out
				}
				return nil
			}
		}
		c := co.campaigns[r.Campaign]
		if c == nil && r.Type != recCampaignCreated {
			return fmt.Errorf("cluster: journal references unknown campaign %q", r.Campaign)
		}
		switch r.Type {
		case recCampaignCreated:
			if c != nil {
				return fmt.Errorf("cluster: campaign %q created twice", r.Campaign)
			}
			var spec service.CampaignSpec
			if err := json.Unmarshal(r.Data, &spec); err != nil {
				return fmt.Errorf("cluster: campaign %q spec: %w", r.Campaign, err)
			}
			c = newClusterCampaign(r.Campaign, spec)
			co.campaigns[r.Campaign] = c
			co.order = append(co.order, r.Campaign)
		case recShardDone:
			var rec shardDoneRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				return err
			}
			co.applyShard(c, rec)
		case recCampaignDone:
			// The bucket checkpoint is saved before campaign_done is
			// journaled; if it is nonetheless missing, the campaign stays
			// pending and the bucket build re-runs from the journaled shards.
			var set service.BucketSet
			ok, err := co.st.LoadCheckpoint("buckets-"+r.Campaign, &set)
			if err != nil || !ok {
				break
			}
			c.buckets = set.Buckets
			c.state = service.StateDone
		case recCampaignFailed:
			var rec campaignFailedRec
			if err := json.Unmarshal(r.Data, &rec); err != nil {
				return err
			}
			c.state = service.StateFailed
			c.errMsg = rec.Error
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, id := range co.order {
		var n int
		if _, scanErr := fmt.Sscanf(id, "c%d", &n); scanErr == nil && n >= co.nextID {
			co.nextID = n + 1
		}
	}
	for _, id := range co.bisectOrder {
		var n int
		if _, scanErr := fmt.Sscanf(id, "b%d", &n); scanErr == nil && n >= co.nextBisectID {
			co.nextBisectID = n + 1
		}
	}
	// Re-activate unfinished campaigns. Journal-satisfied steps become skip
	// counters (the cluster analogue of the service's checkpoint-reuse
	// metric); everything else re-enters the queue.
	for _, id := range co.order {
		c := co.campaigns[id]
		if c.state != service.StatePending {
			continue
		}
		c.skippedTests = len(c.testsDone)
		c.skippedReductions = len(c.reduced)
		co.skipped += uint64(c.skippedTests + c.skippedReductions)
		if err := co.activate(c); err != nil {
			return err
		}
	}
	// Re-activate unfinished bisect jobs the same way.
	for _, id := range co.bisectOrder {
		j := co.bisects[id]
		if j.state != service.StatePending {
			continue
		}
		j.skipped = len(j.outcomes)
		co.skipped += uint64(j.skipped)
		if err := co.activateBisect(j); err != nil {
			return err
		}
	}
	return nil
}

// recoverBisect applies one bisect-job journal record during recovery.
func (co *Coordinator) recoverBisect(r store.Record) error {
	j := co.bisects[r.Campaign]
	if j == nil && r.Type != recBisectCreated {
		return fmt.Errorf("cluster: journal references unknown bisect job %q", r.Campaign)
	}
	switch r.Type {
	case recBisectCreated:
		if j != nil {
			return fmt.Errorf("cluster: bisect job %q created twice", r.Campaign)
		}
		var rec bisectCreatedRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return fmt.Errorf("cluster: bisect job %q spec: %w", r.Campaign, err)
		}
		camp := co.campaigns[rec.Campaign]
		if camp == nil {
			return fmt.Errorf("cluster: bisect job %q references unknown campaign %q", r.Campaign, rec.Campaign)
		}
		j = &clusterBisect{
			id:       r.Campaign,
			camp:     camp,
			state:    service.StatePending,
			outcomes: make(map[string]service.BisectOutcome),
		}
		co.bisects[r.Campaign] = j
		co.bisectOrder = append(co.bisectOrder, r.Campaign)
	case recBisectDone:
		var set service.BisectSet
		ok, err := co.st.LoadCheckpoint("bisect-"+r.Campaign, &set)
		if err != nil || !ok {
			break // stays pending; recovery rebuilds from journaled verdicts
		}
		j.set = &set
		j.state = service.StateDone
	case recBisectFailed:
		var rec campaignFailedRec
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			return err
		}
		j.state = service.StateFailed
		j.errMsg = rec.Error
	}
	return nil
}

// applyShard merges one journaled or freshly-reported shard result into the
// campaign state. Records are deterministic, so merging a duplicate is
// idempotent. Caller holds co.mu (or is in single-threaded recovery).
func (co *Coordinator) applyShard(c *clusterCampaign, rec shardDoneRec) {
	switch rec.Phase {
	case PhaseFuzz:
		for _, tr := range rec.Tests {
			c.testsDone[tr.Index] = tr.Bugs
			for _, bug := range tr.Bugs {
				c.caseNode[service.CaseName(c.id, bug)] = rec.Node
			}
		}
	case PhaseReduce:
		for _, rr := range rec.Reduced {
			c.reduced[rr.Case] = rr
		}
	}
}

// ensureCorpus builds (or idempotently rebuilds, after a restart) the
// campaign's ordered corpus manifest: every reference item encoded and
// stored as a blob. Encoding is deterministic, so the manifest — and with it
// every shard payload — is identical across coordinator restarts.
func (co *Coordinator) ensureCorpus(c *clusterCampaign) error {
	if c.corpus != nil {
		return nil
	}
	refs := corpus.References()
	manifest := make([]BlobRef, 0, len(refs))
	for _, it := range refs {
		data, err := encodeCorpusItem(it)
		if err != nil {
			return err
		}
		hash, err := co.st.PutBlob(data)
		if err != nil {
			return err
		}
		manifest = append(manifest, BlobRef{Hash: hash, Size: int64(len(data))})
	}
	c.corpus = manifest
	return nil
}

// activate moves a pending campaign to its current phase and enqueues every
// unit without a journaled result. Caller holds co.mu (or recovery).
func (co *Coordinator) activate(c *clusterCampaign) error {
	if err := co.ensureCorpus(c); err != nil {
		return err
	}
	if len(c.testsDone) < c.spec.Tests {
		c.state = service.StateFuzzing
		for i := 0; i < c.spec.Tests; i++ {
			if _, ok := c.testsDone[i]; !ok {
				co.enqueue(&workUnit{c: c, phase: PhaseFuzz, index: i})
			}
		}
		return nil
	}
	return co.enterReduce(c)
}

// enterReduce runs the deterministic selection over the merged fuzz records
// and enqueues the missing reduction cases; with nothing left to reduce it
// goes straight to bucketing.
func (co *Coordinator) enterReduce(c *clusterCampaign) error {
	c.cases = service.SelectReductions(c.id, c.spec, c.testsDone)
	if len(c.reduced) >= len(c.cases) {
		return co.finish(c)
	}
	c.state = service.StateReducing
	for i, rc := range c.cases {
		if _, ok := c.reduced[rc.Name]; ok {
			continue
		}
		// Prefer the node that fuzzed the case: it already holds the
		// sequence blob, so the sync manifest dedupes fully.
		co.enqueue(&workUnit{c: c, phase: PhaseReduce, index: i, locality: c.caseNode[rc.Name]})
	}
	return nil
}

// finish builds the merged buckets, checkpoints them, and journals
// completion — the same build the single-node service runs, over records in
// the same canonical order.
func (co *Coordinator) finish(c *clusterCampaign) error {
	c.state = service.StateBucketing
	buckets, err := service.BuildBuckets(c.id, c.spec, c.cases, c.reduced)
	if err != nil {
		return err
	}
	set := service.BucketSet{Campaign: c.id, Buckets: buckets}
	if err := co.st.SaveCheckpoint("buckets-"+c.id, set); err != nil {
		return err
	}
	if _, err := co.st.Journal().Append(c.id, recCampaignDone, campaignDoneRec{Buckets: len(buckets)}); err != nil {
		return err
	}
	if err := co.st.Journal().Sync(); err != nil {
		return err
	}
	c.buckets = buckets
	c.state = service.StateDone
	return nil
}

// activateBisect lists the finished campaign's reduced cases in canonical
// selection order and enqueues every bisect shard (one per case group)
// without journaled verdicts. Caller holds co.mu (or recovery).
func (co *Coordinator) activateBisect(j *clusterBisect) error {
	c := j.camp
	if len(c.testsDone) < c.spec.Tests {
		return fmt.Errorf("cluster: bisect job %s: campaign %s has unmerged tests", j.id, c.id)
	}
	j.cases = service.SelectReductions(c.id, c.spec, c.testsDone)
	j.recs = make([]service.ReducedRec, len(j.cases))
	for i, rc := range j.cases {
		rec, ok := c.reduced[rc.Name]
		if !ok {
			return fmt.Errorf("cluster: bisect job %s: campaign %s case %s not reduced", j.id, c.id, rc.Name)
		}
		j.recs[i] = rec
	}
	if len(j.outcomes) >= len(j.recs) {
		return co.finishBisect(j)
	}
	j.state = service.StateBisecting
	for i, rec := range j.recs {
		if _, ok := j.outcomes[rec.Case]; ok {
			continue
		}
		// Prefer the node that fuzzed the case: its store already holds the
		// campaign corpus and likely the report blob.
		co.enqueue(&workUnit{c: c, b: j, phase: PhaseBisect, index: i, locality: c.caseNode[rec.Case]})
	}
	return nil
}

// finishBisect assembles the merged result set, checkpoints it, and journals
// completion — the same BuildBisectSet the single-node service runs, over
// records in the same canonical order, so the sharded set is bitwise-
// identical to a standalone run's. The transform-signal bucket count is
// rebuilt from the merged records rather than read off the campaign.
func (co *Coordinator) finishBisect(j *clusterBisect) error {
	c := j.camp
	buckets, err := service.BuildBuckets(c.id, c.spec, j.cases, c.reduced)
	if err != nil {
		return err
	}
	set, err := service.BuildBisectSet(j.id, c.id, j.cases, c.reduced, j.outcomes, len(buckets))
	if err != nil {
		return err
	}
	if err := co.st.SaveCheckpoint("bisect-"+j.id, set); err != nil {
		return err
	}
	if _, err := co.st.Journal().Append(j.id, recBisectDone, bisectDoneRec{BisectBuckets: set.BisectBuckets}); err != nil {
		return err
	}
	if err := co.st.Journal().Sync(); err != nil {
		return err
	}
	j.set = &set
	j.state = service.StateDone
	return nil
}

// failBisect marks a bisect job failed, journals it, and drops its shards.
func (co *Coordinator) failBisect(j *clusterBisect, msg string) {
	j.state = service.StateFailed
	j.errMsg = msg
	co.st.Journal().Append(j.id, recBisectFailed, campaignFailedRec{Error: msg})
	kept := co.queue[:0]
	for _, u := range co.queue {
		if u.b != j {
			kept = append(kept, u)
		}
	}
	co.queue = kept
	for k, ss := range co.leased {
		if ss.b == j {
			delete(co.leased, k)
		}
	}
}

// fail marks a campaign failed, journals it, and drops its queued shards.
func (co *Coordinator) fail(c *clusterCampaign, msg string) {
	c.state = service.StateFailed
	c.errMsg = msg
	// Best-effort: an unjournaled failure leaves the campaign resumable,
	// which is the safer outcome.
	co.st.Journal().Append(c.id, recCampaignFailed, campaignFailedRec{Error: msg})
	kept := co.queue[:0]
	for _, u := range co.queue {
		if u.c != c {
			kept = append(kept, u)
		}
	}
	co.queue = kept
	for k, ss := range co.leased {
		if ss.c == c {
			delete(co.leased, k)
		}
	}
}

func (co *Coordinator) enqueue(u *workUnit) {
	co.queue = append(co.queue, u)
}

// sweepLeases re-queues the units of every leased shard whose deadline
// passed — the work-stealing path for killed or wedged nodes. Caller holds
// co.mu.
func (co *Coordinator) sweepLeases(now time.Time) {
	var expired []string
	for k, ss := range co.leased {
		if now.After(ss.deadline) {
			expired = append(expired, k)
		}
	}
	sort.Strings(expired)
	for _, k := range expired {
		ss := co.leased[k]
		delete(co.leased, k)
		co.shardsRequeued++
		co.queue = append(co.queue, ss.units...)
	}
}

// Join registers (or refreshes) a worker node.
func (co *Coordinator) Join(node, procToken string) time.Duration {
	co.mu.Lock()
	defer co.mu.Unlock()
	ns := co.nodes[node]
	if ns == nil {
		ns = &nodeState{}
		co.nodes[node] = ns
	}
	ns.procToken = procToken
	ns.lastSeen = time.Now()
	return co.opts.LeaseTTL
}

// Heartbeat renews the leases held by a node.
func (co *Coordinator) Heartbeat(node string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := time.Now()
	if ns := co.nodes[node]; ns != nil {
		ns.lastSeen = now
	}
	for _, ss := range co.leased {
		if ss.node == node {
			ss.deadline = now.Add(co.opts.LeaseTTL)
		}
	}
	co.sweepLeases(now)
}

// targetShardSize is how many units the next shard of a phase should carry:
// the configured per-phase maximum, or — with adaptive sizing on and
// observations in — the sizer's current target, never above the maximum.
func (co *Coordinator) targetShardSize(phase string) int {
	max := co.opts.ShardCases
	if phase == PhaseFuzz {
		max = co.opts.ShardTests
	}
	if !co.opts.AdaptiveShards {
		return max
	}
	if ps := co.sizers[phase]; ps != nil && ps.size > 0 && ps.size < max {
		return ps.size
	}
	return max
}

// Next cuts a shard from the unit queue and leases it to a node, preferring
// units whose locality hint names it. The shard gathers queue-adjacent units
// of the same job and phase up to the target size (fuzz units must also be
// index-consecutive, since the wire shard is a [Lo, Hi) range). The second
// return is false when no work is pending (the worker backs off and polls
// again).
func (co *Coordinator) Next(node string) (Shard, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := time.Now()
	if ns := co.nodes[node]; ns != nil {
		ns.lastSeen = now
	}
	co.sweepLeases(now)
	if len(co.queue) == 0 {
		return Shard{}, false
	}
	pick := 0
	for i, u := range co.queue {
		if u.locality == node {
			pick = i
			break
		}
	}
	first := co.queue[pick]
	units := []*workUnit{first}
	co.queue = append(co.queue[:pick], co.queue[pick+1:]...)
	target := co.targetShardSize(first.phase)
	for len(units) < target && pick < len(co.queue) {
		u := co.queue[pick]
		if u.c != first.c || u.b != first.b || u.phase != first.phase {
			break
		}
		if u.phase == PhaseFuzz && u.index != units[len(units)-1].index+1 {
			break
		}
		units = append(units, u)
		co.queue = append(co.queue[:pick], co.queue[pick+1:]...)
	}
	ss := &shardState{
		c:        first.c,
		b:        first.b,
		phase:    first.phase,
		index:    first.index,
		units:    units,
		node:     node,
		deadline: now.Add(co.opts.LeaseTTL),
	}
	co.leased[ss.key()] = ss
	co.shardsDispatched++

	sh := Shard{
		Campaign: ss.ownerID(),
		Phase:    ss.phase,
		Index:    ss.index,
		Spec:     ss.c.spec,
		Corpus:   ss.c.corpus,
	}
	switch ss.phase {
	case PhaseFuzz:
		sh.Lo = units[0].index
		sh.Hi = units[len(units)-1].index + 1
	case PhaseReduce:
		for _, u := range units {
			rc := ss.c.cases[u.index]
			sh.Cases = append(sh.Cases, rc)
			if size, ok := co.st.StatBlob(rc.Bug.SeqHash); ok {
				sh.Needs = append(sh.Needs, BlobRef{Hash: rc.Bug.SeqHash, Size: size})
			}
		}
	case PhaseBisect:
		for _, u := range units {
			rec := ss.b.recs[u.index]
			sh.Recs = append(sh.Recs, rec)
			if size, ok := co.st.StatBlob(rec.ReportHash); ok {
				sh.Needs = append(sh.Needs, BlobRef{Hash: rec.ReportHash, Size: size})
			}
		}
	}
	return sh, true
}

// observeShard feeds one merged shard result into the phase's adaptive
// sizer. Observations are recorded (and surfaced in /metrics) even with
// AdaptiveShards off — only dispatch consults the flag — so the sizing
// hints are available before anyone opts in. Caller holds co.mu.
func (co *Coordinator) observeShard(res ShardResult, units int) {
	if units <= 0 {
		return
	}
	ps := co.sizers[res.Phase]
	if ps == nil {
		ps = &phaseSizer{}
		co.sizers[res.Phase] = ps
	}
	ps.observe(units, res.ServiceNanos, res.Sync.Nanos)
	max := co.opts.ShardCases
	if res.Phase == PhaseFuzz {
		max = co.opts.ShardTests
	}
	ps.retarget(co.opts.SyncFraction, max)
}

// Result merges a worker's shard result: journal first, then apply, then
// advance the campaign phase if the shard completed it. Duplicate results —
// a slow or prefetching node finishing a shard that was re-queued and
// completed elsewhere — are acknowledged and dropped; both executions
// produced identical records, so either journaling order yields the same
// campaign. Because shard geometry is a dispatch-time decision, duplicates
// are detected against the merged records (is every unit of this result
// already merged?), never against shard indices.
func (co *Coordinator) Result(res ShardResult) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := time.Now()
	if ns := co.nodes[res.Node]; ns != nil {
		ns.lastSeen = now
		ns.procToken = res.ProcToken
		ns.runner = res.Runner
		ns.replay = res.Replay
		ns.bisect = res.Bisect
	}
	co.sync.add(res.Sync)
	if j := co.bisects[res.Campaign]; j != nil {
		return co.bisectResult(j, res)
	}
	c := co.campaigns[res.Campaign]
	if c == nil {
		return fmt.Errorf("cluster: result for unknown campaign %q", res.Campaign)
	}
	key := fmt.Sprintf("%s/%s/%d", res.Campaign, res.Phase, res.Index)
	delete(co.leased, key)
	dup := false
	switch res.Phase {
	case PhaseFuzz:
		dup = len(res.Tests) > 0
		for _, tr := range res.Tests {
			if _, ok := c.testsDone[tr.Index]; !ok {
				dup = false
				break
			}
		}
	case PhaseReduce:
		dup = len(res.Reduced) > 0 && len(c.cases) > 0
		for _, rr := range res.Reduced {
			if _, ok := c.reduced[rr.Case]; !ok {
				dup = false
				break
			}
		}
	default:
		return fmt.Errorf("cluster: result with unknown phase %q", res.Phase)
	}
	if dup || c.state == service.StateDone || c.state == service.StateFailed {
		co.shardsDuplicate++
		return nil
	}
	if res.Error != "" {
		co.fail(c, fmt.Sprintf("shard %s on %s: %s", key, res.Node, res.Error))
		return nil
	}
	rec := shardDoneRec{Phase: res.Phase, Index: res.Index, Node: res.Node, Tests: res.Tests, Reduced: res.Reduced}
	if _, err := co.st.Journal().Append(c.id, recShardDone, rec); err != nil {
		return err
	}
	co.applyShard(c, rec)
	co.shardsCompleted++
	co.observeShard(res, len(res.Tests)+len(res.Reduced))

	switch res.Phase {
	case PhaseFuzz:
		if len(c.testsDone) >= c.spec.Tests {
			if err := co.enterReduce(c); err != nil {
				co.fail(c, err.Error())
			}
		}
	case PhaseReduce:
		if len(c.reduced) >= len(c.cases) {
			if err := co.finish(c); err != nil {
				co.fail(c, err.Error())
			}
		}
	}
	return nil
}

// bisectResult merges one bisect shard result under the job's ID: journal
// first, then apply verdicts, then finish the job when every case is merged.
// Caller holds co.mu.
func (co *Coordinator) bisectResult(j *clusterBisect, res ShardResult) error {
	key := fmt.Sprintf("%s/%s/%d", res.Campaign, res.Phase, res.Index)
	delete(co.leased, key)
	if res.Phase != PhaseBisect {
		return fmt.Errorf("cluster: bisect job %s: result with phase %q", j.id, res.Phase)
	}
	dup := len(res.Bisects) > 0
	for _, out := range res.Bisects {
		if _, ok := j.outcomes[out.Case]; !ok {
			dup = false
			break
		}
	}
	if dup || j.state == service.StateDone || j.state == service.StateFailed {
		co.shardsDuplicate++
		return nil
	}
	if res.Error != "" {
		co.failBisect(j, fmt.Sprintf("shard %s on %s: %s", key, res.Node, res.Error))
		return nil
	}
	rec := shardDoneRec{Phase: res.Phase, Index: res.Index, Node: res.Node, Bisects: res.Bisects}
	if _, err := co.st.Journal().Append(j.id, recShardDone, rec); err != nil {
		return err
	}
	for _, out := range rec.Bisects {
		j.outcomes[out.Case] = out
	}
	co.shardsCompleted++
	co.observeShard(res, len(res.Bisects))
	if len(j.outcomes) >= len(j.recs) {
		if err := co.finishBisect(j); err != nil {
			co.failBisect(j, err.Error())
		}
	}
	return nil
}

// CreateBisect validates, journals, and activates a bisection job over a
// finished campaign. IDs follow the single-node service's scheme (b001,
// b002, ...).
func (co *Coordinator) CreateBisect(spec service.BisectSpec) (service.BisectStatus, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if spec.Campaign == "" {
		return service.BisectStatus{}, fmt.Errorf("cluster: bisect needs a campaign ID")
	}
	c := co.campaigns[spec.Campaign]
	if c == nil {
		return service.BisectStatus{}, fmt.Errorf("cluster: no campaign %q", spec.Campaign)
	}
	if c.state != service.StateDone {
		return service.BisectStatus{}, fmt.Errorf("cluster: campaign %s is %s; bisection needs a finished campaign", c.id, c.state)
	}
	id := fmt.Sprintf("b%03d", co.nextBisectID)
	co.nextBisectID++
	j := &clusterBisect{
		id:       id,
		camp:     c,
		state:    service.StatePending,
		outcomes: make(map[string]service.BisectOutcome),
	}
	co.bisects[id] = j
	co.bisectOrder = append(co.bisectOrder, id)
	if _, err := co.st.Journal().Append(id, recBisectCreated, bisectCreatedRec{Campaign: c.id}); err != nil {
		return service.BisectStatus{}, err
	}
	if err := co.st.Journal().Sync(); err != nil {
		return service.BisectStatus{}, err
	}
	if err := co.activateBisect(j); err != nil {
		return service.BisectStatus{}, err
	}
	return j.status(), nil
}

// BisectJob returns the status of one bisection job.
func (co *Coordinator) BisectJob(id string) (service.BisectStatus, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j := co.bisects[id]
	if j == nil {
		return service.BisectStatus{}, false
	}
	return j.status(), true
}

// BisectJobs returns all bisection-job statuses in creation order.
func (co *Coordinator) BisectJobs() []service.BisectStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]service.BisectStatus, 0, len(co.bisectOrder))
	for _, id := range co.bisectOrder {
		out = append(out, co.bisects[id].status())
	}
	return out
}

// BisectResult returns the merged result set of a finished bisection job.
func (co *Coordinator) BisectResult(id string) (service.BisectSet, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j := co.bisects[id]
	if j == nil {
		return service.BisectSet{}, fmt.Errorf("cluster: no bisect job %q", id)
	}
	if j.set == nil {
		return service.BisectSet{}, fmt.Errorf("cluster: bisect job %s is %s, not done", id, j.state)
	}
	return *j.set, nil
}

// CreateCampaign validates, journals, and activates a new campaign. IDs
// follow the single-node service's scheme (c001, c002, ...), so case names
// — which embed the campaign ID — match a single-node run of the same spec.
func (co *Coordinator) CreateCampaign(spec service.CampaignSpec) (service.CampaignStatus, error) {
	if err := spec.Normalize(); err != nil {
		return service.CampaignStatus{}, err
	}
	if spec.CrossBucketPrecheck {
		// Each pre-check verdict depends on every minimized variant before it
		// in selection order — inherently serial, so sharding it would break
		// the bitwise-identical-merge guarantee.
		return service.CampaignStatus{}, fmt.Errorf("cluster: cross_bucket_precheck is serial and not cluster-shardable")
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	id := fmt.Sprintf("c%03d", co.nextID)
	co.nextID++
	c := newClusterCampaign(id, spec)
	co.campaigns[id] = c
	co.order = append(co.order, id)
	if _, err := co.st.Journal().Append(id, recCampaignCreated, spec); err != nil {
		return service.CampaignStatus{}, err
	}
	if err := co.st.Journal().Sync(); err != nil {
		return service.CampaignStatus{}, err
	}
	if err := co.activate(c); err != nil {
		return service.CampaignStatus{}, err
	}
	return c.status(), nil
}

// Campaign returns the status of one campaign.
func (co *Coordinator) Campaign(id string) (service.CampaignStatus, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[id]
	if c == nil {
		return service.CampaignStatus{}, false
	}
	return c.status(), true
}

// Campaigns returns all campaign statuses in creation order.
func (co *Coordinator) Campaigns() []service.CampaignStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]service.CampaignStatus, 0, len(co.order))
	for _, id := range co.order {
		out = append(out, co.campaigns[id].status())
	}
	return out
}

// Buckets mirrors service.Buckets: the merged recommended reports of every
// finished campaign, or of one campaign when id is non-empty.
func (co *Coordinator) Buckets(id string) ([]service.BucketSet, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	ids := co.order
	if id != "" {
		if co.campaigns[id] == nil {
			return nil, fmt.Errorf("cluster: no campaign %q", id)
		}
		ids = []string{id}
	}
	var out []service.BucketSet
	for _, cid := range ids {
		c := co.campaigns[cid]
		set := service.BucketSet{Campaign: cid, Buckets: append([]service.Bucket(nil), c.buckets...)}
		if id != "" || len(set.Buckets) > 0 {
			out = append(out, set)
		}
	}
	return out, nil
}

// ReportBlob returns the raw reduced-report blob stored under hash.
func (co *Coordinator) ReportBlob(hash string) ([]byte, error) {
	return co.st.GetBlob(hash)
}

// Metrics returns the cluster-wide counter snapshot. Engine stats are the
// latest cumulative snapshot per node, merged with runner.MergeStats grouped
// by process token — N in-process simulated nodes share their process-wide
// optimizer/lane profiles, which MergeStats counts once instead of N times.
func (co *Coordinator) Metrics() Metrics {
	co.mu.Lock()
	defer co.mu.Unlock()
	groups := make(map[string][]runner.Stats)
	var rep replay.Stats
	var bis bisect.Stats
	names := make([]string, 0, len(co.nodes))
	for name := range co.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns := co.nodes[name]
		groups[ns.procToken] = append(groups[ns.procToken], ns.runner)
		bis.Add(ns.bisect)
		rep.Queries += ns.replay.Queries
		rep.Hits += ns.replay.Hits
		rep.FullHits += ns.replay.FullHits
		rep.Misses += ns.replay.Misses
		rep.Applied += ns.replay.Applied
		rep.Requested += ns.replay.Requested
		rep.Snapshots += ns.replay.Snapshots
		rep.Bytes += ns.replay.Bytes
		rep.Evictions += ns.replay.Evictions
		rep.Sessions += ns.replay.Sessions
	}
	m := Metrics{
		JobsSkipped: co.skipped,
		Runner:      runner.MergeStats(groups),
		Replay:      rep,
		Bisect:      bis,
		Store:       co.st.Stats(),
		Cluster: ClusterStats{
			Nodes:             len(co.nodes),
			ShardsDispatched:  co.shardsDispatched,
			ShardsCompleted:   co.shardsCompleted,
			ShardsRequeued:    co.shardsRequeued,
			ShardsDuplicate:   co.shardsDuplicate,
			Sync:              co.sync,
			BlobDedupFraction: co.sync.DedupFraction(),
			QueueDepth:        len(co.queue),
			LeasedShards:      len(co.leased),
		},
	}
	phases := make([]string, 0, len(co.sizers))
	for phase := range co.sizers {
		phases = append(phases, phase)
	}
	sort.Strings(phases)
	for _, phase := range phases {
		ps := co.sizers[phase]
		max := co.opts.ShardCases
		if phase == PhaseFuzz {
			max = co.opts.ShardTests
		}
		size := ps.size
		if size <= 0 || size > max {
			size = max
		}
		m.Cluster.Sizing = append(m.Cluster.Sizing, ShardSizing{
			Phase:   phase,
			Size:    size,
			MaxSize: max,
			UnitMS:  ps.unitNanos / 1e6,
			SyncMS:  ps.syncNanos / 1e6,
			Resizes: ps.resizes,
		})
	}
	for _, id := range co.order {
		m.Campaigns++
		if co.campaigns[id].state == service.StateDone {
			m.CampaignsDone++
		}
	}
	for _, id := range co.bisectOrder {
		m.BisectJobs++
		if co.bisects[id].state == service.StateDone {
			m.BisectJobsDone++
		}
	}
	if co.memo != nil {
		ms := co.memo.Stats()
		m.Memo = &ms
	}
	return m
}

// MemoStore returns the coordinator's memo-sync hub store, nil without one.
func (co *Coordinator) MemoStore() *memostore.Store { return co.memo }

// SyncBatch serves one batched /cluster/sync exchange: pushes land first
// (blobs, then memo records), then the folded shard result — so merged
// records always find their blobs already in the store — then the node's
// leases renew (a batched exchange doubles as a heartbeat), then the
// queries answer. Every leg is optional; the legacy per-endpoint protocol
// remains served for mixed-version clusters.
func (co *Coordinator) SyncBatch(req syncRequest) (syncResponse, error) {
	var resp syncResponse
	if len(req.BlobPush) > 0 {
		if _, err := co.st.PutBatch(req.BlobPush); err != nil {
			return resp, err
		}
	}
	if len(req.MemoPush) > 0 {
		// Memo records are an optimization; a bad record drops rather than
		// failing the exchange (which carries the shard result).
		co.memoPush(req.MemoPush)
	}
	if req.Result != nil {
		if err := co.Result(*req.Result); err != nil {
			return resp, err
		}
	}
	if req.Node != "" {
		co.Heartbeat(req.Node)
	}
	if len(req.BlobFetch) > 0 {
		blobs, err := co.st.GetBatch(req.BlobFetch)
		if err != nil {
			return resp, err
		}
		resp.Blobs = blobs
	}
	if len(req.BlobOffer) > 0 {
		hashes := make([]string, len(req.BlobOffer))
		for i, ref := range req.BlobOffer {
			hashes[i] = ref.Hash
		}
		has := co.st.HasBatch(hashes)
		resp.BlobWant = make([]bool, len(has))
		for i, h := range has {
			resp.BlobWant[i] = !h
		}
	}
	if req.MemoSince != nil {
		kr := co.memoKeys(*req.MemoSince)
		resp.MemoOK = kr.OK
		resp.MemoKeys = kr.Keys
		resp.MemoMark = kr.Mark
	}
	if len(req.MemoFetch) > 0 {
		fr, err := co.memoFetch(req.MemoFetch)
		if err != nil {
			return resp, err
		}
		resp.MemoRecords = fr.Records
	}
	if len(req.MemoOffer) > 0 {
		hr := co.memoHas(req.MemoOffer)
		resp.MemoWant = make([]bool, len(hr.Has))
		for i, h := range hr.Has {
			resp.MemoWant[i] = !h
		}
	}
	resp.OK = true
	return resp, nil
}
