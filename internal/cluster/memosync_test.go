package cluster

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

// TestClusterMemoSyncMatchesSingleNode is the nodes {1,3} leg of the memo
// temperature property: with a coordinator memo hub and per-node memo
// stores, a 1-node cluster over a cold hub and a 3-node cluster over the
// warm hub both produce buckets bitwise-identical to the single-node,
// memo-less reference run — and the warm cluster actually serves
// executions from synced records instead of re-running them.
func TestClusterMemoSyncMatchesSingleNode(t *testing.T) {
	want := referenceBuckets(t)
	hubDir := filepath.Join(t.TempDir(), "memo-hub")

	for _, nodes := range []int{1, 3} {
		hub, err := memostore.Open(hubDir, 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts := testOpts()
		opts.Memo = hub
		co, err := NewCoordinator(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := StartSim(co, nodes, t.TempDir(), 2)
		if err != nil {
			t.Fatal(err)
		}
		status, err := co.CreateCampaign(testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		if got := clusterBuckets(t, co, status.ID); !bytes.Equal(got, want) {
			t.Fatalf("%d-node memo cluster buckets differ from single-node run:\n got %s\nwant %s", nodes, got, want)
		}
		m := co.Metrics()
		if m.Memo == nil || m.Memo.Records == 0 {
			t.Fatalf("%d nodes: memo hub never received records: %+v", nodes, m.Memo)
		}
		if nodes == 1 && m.Cluster.Sync.MemoPushed == 0 {
			// Only the cold-hub leg must push: over the warm hub the
			// workers can pull every record they need and legitimately
			// have nothing new to offer.
			t.Fatalf("%d nodes: no worker pushed memo records: %+v", nodes, m.Cluster.Sync)
		}
		if nodes > 1 {
			// Second pass over a warm hub: cold-joining workers must pull
			// records and serve repeat executions from them.
			if m.Cluster.Sync.MemoPulled == 0 {
				t.Fatalf("warm hub but no worker pulled records: %+v", m.Cluster.Sync)
			}
			if m.Runner.MemoHits == 0 {
				t.Fatalf("warm cluster never hit the memo: %+v", m.Runner)
			}
		}
		sim.Stop()
		co.Close()
		st.Close()
		hub.Close()
	}
}

// TestClusterMemoColdRejoinWarmStart kills a worker and lets a brand-new
// node (fresh blob cache AND fresh memo store) rejoin: the newcomer must
// warm-start by pulling the hub's accumulated records at join, and a repeat
// campaign on the warmed cluster must be served from the memo.
func TestClusterMemoColdRejoinWarmStart(t *testing.T) {
	hub, err := memostore.Open(filepath.Join(t.TempDir(), "memo-hub"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := testOpts()
	opts.Memo = hub
	co, err := NewCoordinator(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	sim, err := StartSim(co, 2, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()

	status, err := co.CreateCampaign(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	hubLen := hub.Len()
	if hubLen == 0 {
		t.Fatal("campaign finished but the hub holds no records")
	}

	// Replace a node with a completely cold newcomer.
	sim.mu.Lock()
	victim := ""
	for name := range sim.workers {
		victim = name
		break
	}
	sim.mu.Unlock()
	sim.KillWorker(victim)
	fresh, err := sim.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	sim.mu.Lock()
	w := sim.workers[fresh]
	sim.mu.Unlock()
	if w == nil || w.memo == nil {
		t.Fatalf("fresh sim worker %s has no memo store", fresh)
	}
	deadline := time.Now().Add(30 * time.Second)
	for w.memo.Stats().Pulled == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if pulled := w.memo.Stats().Pulled; pulled == 0 {
		t.Fatalf("cold rejoiner never pulled from the hub (hub holds %d records)", hubLen)
	}
	if got := w.memo.Len(); got < hubLen {
		t.Fatalf("cold rejoiner warm-started %d of %d hub records", got, hubLen)
	}

	// A repeat campaign (same spec → same seeds → same executions) on the
	// warmed cluster is answered from the memo tier.
	status2, err := co.CreateCampaign(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status2.ID) }); err != nil {
		t.Fatal(err)
	}
	if m := co.Metrics(); m.Runner.MemoHits == 0 {
		t.Fatalf("repeat campaign on a warm cluster never hit the memo: %+v", m.Runner)
	}
}
