package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Sim is a simulated in-process cluster: one coordinator served over a real
// loopback listener plus N worker goroutines, each with its own local store
// under Dir. It is the substrate of the cluster tests, of
// BenchmarkClusterCampaign, and of `spirvd -role coordinator -nodes N`.
// Workers are real protocol clients — everything crosses the HTTP boundary
// exactly as it would between machines; only the network is loopback.
type Sim struct {
	Coordinator *Coordinator
	URL         string

	dir        string
	workersPer int
	worker     func(*WorkerOptions)
	srv        *http.Server
	ln         net.Listener

	mu      sync.Mutex
	nextID  int
	cancels map[string]context.CancelFunc
	wg      sync.WaitGroup
	workers map[string]*Worker
}

// SimConfig parameterizes a simulated cluster beyond the StartSim defaults.
type SimConfig struct {
	// Nodes is the initial worker count.
	Nodes int
	// Dir roots the per-worker store (and memo) directories.
	Dir string
	// WorkersPer sizes each worker's engine pool (0 = GOMAXPROCS).
	WorkersPer int
	// Latency, when > 0, is injected into every worker-protocol request
	// (/cluster/, /blobs/, /memo/ paths) before it is served — a loopback
	// stand-in for a real network round trip. Campaign-API requests are not
	// delayed, so tests polling for completion stay fast.
	Latency time.Duration
	// Worker, when non-nil, edits each worker's options before it starts
	// (e.g. to turn the pipelined transport off for a baseline leg).
	Worker func(*WorkerOptions)
}

// StartSim serves co on a loopback listener and spawns n workers against it
// with the pipelined transport on (prefetch + batched, compressed sync) —
// the production default.
func StartSim(co *Coordinator, n int, dir string, workersPer int) (*Sim, error) {
	return StartSimCfg(co, SimConfig{Nodes: n, Dir: dir, WorkersPer: workersPer})
}

// StartSimCfg serves co on a loopback listener per cfg.
func StartSimCfg(co *Coordinator, cfg SimConfig) (*Sim, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var handler http.Handler = co.Mux()
	if cfg.Latency > 0 {
		handler = latencyMiddleware(handler, cfg.Latency)
	}
	s := &Sim{
		Coordinator: co,
		URL:         "http://" + ln.Addr().String(),
		dir:         cfg.Dir,
		workersPer:  cfg.WorkersPer,
		worker:      cfg.Worker,
		ln:          ln,
		srv:         &http.Server{Handler: handler},
		cancels:     make(map[string]context.CancelFunc),
		workers:     make(map[string]*Worker),
	}
	go s.srv.Serve(ln)
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := s.AddWorker(); err != nil {
			s.Stop()
			return nil, err
		}
	}
	return s, nil
}

// latencyMiddleware sleeps d before serving worker-protocol requests,
// simulating wire latency on the shard/blob/memo exchanges without slowing
// the campaign API the tests poll.
func latencyMiddleware(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		if strings.HasPrefix(p, "/cluster/") || strings.HasPrefix(p, "/blobs/") || strings.HasPrefix(p, "/memo/") {
			time.Sleep(d)
		}
		next.ServeHTTP(w, r)
	})
}

// AddWorker spawns one more worker node and returns its name. Each worker
// gets a fresh name and store directory, so a worker added after KillWorker
// models a *new* node rejoining the cluster with a cold blob cache.
func (s *Sim) AddWorker() (string, error) {
	s.mu.Lock()
	s.nextID++
	name := fmt.Sprintf("sim%d", s.nextID)
	s.mu.Unlock()
	opts := WorkerOptions{
		Node:        name,
		Coordinator: s.URL,
		StoreDir:    filepath.Join(s.dir, "node-"+name),
		Workers:     s.workersPer,
		Prefetch:    true,
		Compress:    true,
		Batch:       true,
	}
	// When the coordinator is a memo hub, give every simulated node its own
	// memo store so the sync protocol runs for real (a rejoining node gets a
	// fresh, cold directory and must warm-start over the wire).
	if s.Coordinator.MemoStore() != nil {
		opts.MemoDir = filepath.Join(s.dir, "memo-"+name)
	}
	if s.worker != nil {
		s.worker(&opts)
	}
	w, err := NewWorker(opts)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.cancels[name] = cancel
	s.workers[name] = w
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		w.Run(ctx)
		w.Close()
	}()
	return name, nil
}

// KillWorker cancels a worker's context mid-whatever-it-was-doing — the
// in-process stand-in for SIGKILL. The worker reports nothing; its leased
// shards expire and re-queue on the coordinator.
func (s *Sim) KillWorker(name string) {
	s.mu.Lock()
	cancel := s.cancels[name]
	delete(s.cancels, name)
	delete(s.workers, name)
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stop kills every worker and closes the listener. The coordinator (and its
// store) stay usable — Stop models the compute layer going away, not the
// control plane.
func (s *Sim) Stop() {
	s.mu.Lock()
	for name, cancel := range s.cancels {
		delete(s.cancels, name)
		delete(s.workers, name)
		cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.srv.Close()
	s.ln.Close()
}
