package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
)

// Sim is a simulated in-process cluster: one coordinator served over a real
// loopback listener plus N worker goroutines, each with its own local store
// under Dir. It is the substrate of the cluster tests, of
// BenchmarkClusterCampaign, and of `spirvd -role coordinator -nodes N`.
// Workers are real protocol clients — everything crosses the HTTP boundary
// exactly as it would between machines; only the network is loopback.
type Sim struct {
	Coordinator *Coordinator
	URL         string

	dir        string
	workersPer int
	srv        *http.Server
	ln         net.Listener

	mu      sync.Mutex
	nextID  int
	cancels map[string]context.CancelFunc
	wg      sync.WaitGroup
	workers map[string]*Worker
}

// StartSim serves co on a loopback listener and spawns n workers against it.
// dir roots the per-worker stores; workersPer sizes each worker's engine
// pool (0 = GOMAXPROCS).
func StartSim(co *Coordinator, n int, dir string, workersPer int) (*Sim, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Sim{
		Coordinator: co,
		URL:         "http://" + ln.Addr().String(),
		dir:         dir,
		workersPer:  workersPer,
		ln:          ln,
		srv:         &http.Server{Handler: co.Mux()},
		cancels:     make(map[string]context.CancelFunc),
		workers:     make(map[string]*Worker),
	}
	go s.srv.Serve(ln)
	for i := 0; i < n; i++ {
		if _, err := s.AddWorker(); err != nil {
			s.Stop()
			return nil, err
		}
	}
	return s, nil
}

// AddWorker spawns one more worker node and returns its name. Each worker
// gets a fresh name and store directory, so a worker added after KillWorker
// models a *new* node rejoining the cluster with a cold blob cache.
func (s *Sim) AddWorker() (string, error) {
	s.mu.Lock()
	s.nextID++
	name := fmt.Sprintf("sim%d", s.nextID)
	s.mu.Unlock()
	opts := WorkerOptions{
		Node:        name,
		Coordinator: s.URL,
		StoreDir:    filepath.Join(s.dir, "node-"+name),
		Workers:     s.workersPer,
	}
	// When the coordinator is a memo hub, give every simulated node its own
	// memo store so the sync protocol runs for real (a rejoining node gets a
	// fresh, cold directory and must warm-start over the wire).
	if s.Coordinator.MemoStore() != nil {
		opts.MemoDir = filepath.Join(s.dir, "memo-"+name)
	}
	w, err := NewWorker(opts)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.cancels[name] = cancel
	s.workers[name] = w
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		w.Run(ctx)
		w.Close()
	}()
	return name, nil
}

// KillWorker cancels a worker's context mid-whatever-it-was-doing — the
// in-process stand-in for SIGKILL. The worker reports nothing; its leased
// shards expire and re-queue on the coordinator.
func (s *Sim) KillWorker(name string) {
	s.mu.Lock()
	cancel := s.cancels[name]
	delete(s.cancels, name)
	delete(s.workers, name)
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stop kills every worker and closes the listener. The coordinator (and its
// store) stay usable — Stop models the compute layer going away, not the
// control plane.
func (s *Sim) Stop() {
	s.mu.Lock()
	for name, cancel := range s.cancels {
		delete(s.cancels, name)
		delete(s.workers, name)
		cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.srv.Close()
	s.ln.Close()
}
