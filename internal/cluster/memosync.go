package cluster

import (
	"context"
	"fmt"

	"spirvfuzz/internal/memostore"
)

// Memo-sync wire bodies. The protocol has the same shape as blob sync —
// hash negotiation in both directions — but over memo records instead of
// blobs: /memo/keys lists the coordinator's record keys appended after a
// cursor, a worker fetches only the ones its local store lacks, and pushes
// back only new records the coordinator does not have. Records are
// content-addressed by execution key and their payloads deterministic, so
// put-if-absent merging is conflict-free by construction.
type (
	memoRecord struct {
		K string `json:"k"` // hex execution key
		T uint8  `json:"t"` // record kind
		D []byte `json:"d"` // payload (base64 on the wire)
	}
	memoKeysRequest struct {
		Since uint64 `json:"since"`
	}
	memoKeysResponse struct {
		// OK is false when the coordinator runs without a memo store; the
		// worker then disables sync for the session.
		OK   bool     `json:"ok"`
		Keys []string `json:"keys,omitempty"`
		Mark uint64   `json:"mark"`
	}
	memoHasRequest struct {
		Keys []string `json:"keys"`
	}
	memoHasResponse struct {
		Has []bool `json:"has"`
	}
	memoFetchRequest struct {
		Keys []string `json:"keys"`
	}
	memoFetchResponse struct {
		Records []memoRecord `json:"records"`
	}
	memoPushRequest struct {
		Records []memoRecord `json:"records"`
	}
)

// memoKeys lists the coordinator's record keys appended after since, plus
// the new cursor. Nil-safe: without a memo store it reports OK=false.
func (co *Coordinator) memoKeys(since uint64) memoKeysResponse {
	if co.memo == nil {
		return memoKeysResponse{}
	}
	keys, mark := co.memo.KeysSince(since)
	resp := memoKeysResponse{OK: true, Mark: mark}
	for _, k := range keys {
		resp.Keys = append(resp.Keys, k.String())
	}
	return resp
}

// memoHas answers which of the named records the coordinator already holds.
// Unparseable keys report false (the worker's push will surface the error).
func (co *Coordinator) memoHas(keys []string) memoHasResponse {
	has := make([]bool, len(keys))
	if co.memo == nil {
		return memoHasResponse{Has: has}
	}
	for i, s := range keys {
		if k, err := memostore.ParseKey(s); err == nil {
			has[i] = co.memo.Has(k)
		}
	}
	return memoHasResponse{Has: has}
}

// memoFetch returns the requested records. Keys the store no longer holds
// (evicted between the keys listing and the fetch) are silently omitted;
// the worker matches records by key, not by index.
func (co *Coordinator) memoFetch(keys []string) (memoFetchResponse, error) {
	var resp memoFetchResponse
	if co.memo == nil {
		return resp, nil
	}
	for _, s := range keys {
		k, err := memostore.ParseKey(s)
		if err != nil {
			return resp, fmt.Errorf("cluster: memo fetch key %q: %w", s, err)
		}
		if rec, ok := co.memo.GetRecord(k); ok {
			resp.Records = append(resp.Records, memoRecord{K: rec.Key.String(), T: rec.Kind, D: rec.Data})
		}
	}
	co.memo.AddPushed(len(resp.Records))
	return resp, nil
}

// memoPush merges worker-pushed records put-if-absent and returns how many
// were new. A coordinator without a memo store accepts and drops them.
func (co *Coordinator) memoPush(wrecs []memoRecord) (int, error) {
	if co.memo == nil {
		return 0, nil
	}
	recs := make([]memostore.Record, 0, len(wrecs))
	for _, wr := range wrecs {
		k, err := memostore.ParseKey(wr.K)
		if err != nil {
			return 0, fmt.Errorf("cluster: memo push key %q: %w", wr.K, err)
		}
		if co.memo.Has(k) {
			continue
		}
		recs = append(recs, memostore.Record{Key: k, Kind: wr.T, Data: wr.D})
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if err := co.memo.PutBatch(recs); err != nil {
		return 0, err
	}
	co.memo.AddPulled(len(recs))
	return len(recs), nil
}

// pullMemo syncs coordinator memo records into the worker's local store:
// list keys since the last pull cursor, fetch only the locally-missing
// ones, merge put-if-absent. Called at join (warm start for a cold node)
// and before each shard (picks up records other workers pushed meanwhile).
// Batched mode folds both legs into /cluster/sync bodies. Sync errors are
// swallowed — the memo is an optimization; every record it would have saved
// simply re-executes. Traffic accrues into sync.
func (w *Worker) pullMemo(ctx context.Context, sync *SyncStats) {
	if w.memo == nil || !w.memoSync {
		return
	}
	var kr memoKeysResponse
	if w.opts.Batch {
		since := w.pullMark
		var sr syncResponse
		if err := w.post(ctx, "/cluster/sync", syncRequest{Node: w.opts.Node, MemoSince: &since}, &sr, sync); err != nil {
			return
		}
		kr = memoKeysResponse{OK: sr.MemoOK, Keys: sr.MemoKeys, Mark: sr.MemoMark}
	} else {
		if err := w.post(ctx, "/memo/keys", memoKeysRequest{Since: w.pullMark}, &kr, sync); err != nil {
			return
		}
	}
	if !kr.OK {
		w.memoSync = false
		return
	}
	w.pullMark = kr.Mark
	var missing []string
	for _, s := range kr.Keys {
		k, err := memostore.ParseKey(s)
		if err != nil {
			return
		}
		if !w.memo.Has(k) {
			missing = append(missing, s)
		}
	}
	if len(missing) == 0 {
		return
	}
	var records []memoRecord
	if w.opts.Batch {
		var sr syncResponse
		if err := w.post(ctx, "/cluster/sync", syncRequest{Node: w.opts.Node, MemoFetch: missing}, &sr, sync); err != nil {
			return
		}
		records = sr.MemoRecords
	} else {
		var fr memoFetchResponse
		if err := w.post(ctx, "/memo/fetch", memoFetchRequest{Keys: missing}, &fr, sync); err != nil {
			return
		}
		records = fr.Records
	}
	recs := make([]memostore.Record, 0, len(records))
	for _, wr := range records {
		k, err := memostore.ParseKey(wr.K)
		if err != nil {
			return
		}
		recs = append(recs, memostore.Record{Key: k, Kind: wr.T, Data: wr.D})
	}
	if err := w.memo.PutBatch(recs); err != nil {
		return
	}
	w.memo.AddPulled(len(recs))
	sync.MemoPulled += uint64(len(recs))
	// Pulled records advanced the local seq counter; move the push cursor
	// past them so they are not offered straight back to the coordinator.
	if _, mark := w.memo.KeysSince(w.pushMark); mark > w.pushMark {
		w.pushMark = mark
	}
}

// pushMemo offers the coordinator every record appended locally since the
// last push cursor, transferring only the ones it lacks — the outbound half
// of the negotiation. Called after each shard, once the shard's executions
// have spilled (legacy protocol path; batched reporting folds the offer and
// push into the result round trips instead).
func (w *Worker) pushMemo(ctx context.Context, sync *SyncStats) {
	if w.memo == nil || !w.memoSync {
		return
	}
	w.memo.Flush()
	keys, mark := w.memo.KeysSince(w.pushMark)
	if len(keys) == 0 {
		w.pushMark = mark
		return
	}
	manifest := make([]string, len(keys))
	for i, k := range keys {
		manifest[i] = k.String()
	}
	var hr memoHasResponse
	if err := w.post(ctx, "/memo/has", memoHasRequest{Keys: manifest}, &hr, sync); err != nil {
		return
	}
	if len(hr.Has) != len(manifest) {
		return
	}
	var recs []memoRecord
	for i, k := range keys {
		if hr.Has[i] {
			continue
		}
		if rec, ok := w.memo.GetRecord(k); ok {
			recs = append(recs, memoRecord{K: rec.Key.String(), T: rec.Kind, D: rec.Data})
		}
	}
	if len(recs) > 0 {
		if err := w.post(ctx, "/memo/push", memoPushRequest{Records: recs}, nil, sync); err != nil {
			return
		}
		w.memo.AddPushed(len(recs))
		sync.MemoPushed += uint64(len(recs))
	}
	w.pushMark = mark
}
