package cluster

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// The worker↔coordinator transport. One tuned http.Transport is shared by
// every worker client in the process: connections are kept alive and reused
// across shards (the per-shard protocol is many small JSON posts to one
// host, the worst case for connection churn), and the per-request bodies are
// gzip-negotiated above a size floor. Both sides of every exchange are
// counted — raw JSON bytes vs bytes on the wire, and round trips — so the
// batching and compression wins are observable in SyncStats and /metrics
// rather than asserted.

// gzipMinBytes is the smallest body worth compressing: below it the gzip
// header overhead and the CPU both lose. JSON shard payloads and blob
// batches are far above it; heartbeats and join requests stay identity.
const gzipMinBytes = 512

// sharedTransport is the process-wide tuned transport. MaxIdleConnsPerHost
// is raised from the default 2 — a worker talks to exactly one host and the
// prefetch goroutine posts concurrently with execution and heartbeats, so
// the default would re-dial on almost every overlapped request.
var sharedTransport = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	TLSHandshakeTimeout:   5 * time.Second,
	ResponseHeaderTimeout: 60 * time.Second,
	MaxIdleConns:          64,
	MaxIdleConnsPerHost:   16,
	IdleConnTimeout:       90 * time.Second,
	// Compression is negotiated explicitly (and counted); the transport's
	// transparent mode would hide the wire bytes from the counters.
	DisableCompression: true,
}

// newWorkerClient returns an http.Client over the shared transport. There is
// deliberately no Client.Timeout: shard-scoped contexts bound every request,
// and a whole-request timeout would sever long blob batches on slow links
// while doing nothing a context does not already do.
func newWorkerClient() *http.Client {
	return &http.Client{Transport: sharedTransport}
}

// WireStats is the process-wide transport counter snapshot: every worker
// request this process made, including heartbeats and result posts that are
// not attributed to any one shard's SyncStats. Surfaced in gfauto -json and
// usable as a before/after delta around a campaign.
type WireStats struct {
	RoundTrips   uint64 `json:"round_trips"`
	WireBytesOut uint64 `json:"wire_bytes_out"`
	WireBytesIn  uint64 `json:"wire_bytes_in"`
	RawBytesOut  uint64 `json:"raw_bytes_out"`
	RawBytesIn   uint64 `json:"raw_bytes_in"`
	// CompressedBodies counts request/response bodies that crossed the wire
	// gzip-coded (0 when compression is off or every body was tiny).
	CompressedBodies uint64 `json:"compressed_bodies"`
}

var procWire struct {
	roundTrips, wireOut, wireIn, rawOut, rawIn, compressed atomic.Uint64
}

// SnapshotWire returns the process-wide transport totals.
func SnapshotWire() WireStats {
	return WireStats{
		RoundTrips:       procWire.roundTrips.Load(),
		WireBytesOut:     procWire.wireOut.Load(),
		WireBytesIn:      procWire.wireIn.Load(),
		RawBytesOut:      procWire.rawOut.Load(),
		RawBytesIn:       procWire.rawIn.Load(),
		CompressedBodies: procWire.compressed.Load(),
	}
}

// Sub returns the counter delta s - o (for before/after measurements).
func (s WireStats) Sub(o WireStats) WireStats {
	return WireStats{
		RoundTrips:       s.RoundTrips - o.RoundTrips,
		WireBytesOut:     s.WireBytesOut - o.WireBytesOut,
		WireBytesIn:      s.WireBytesIn - o.WireBytesIn,
		RawBytesOut:      s.RawBytesOut - o.RawBytesOut,
		RawBytesIn:       s.RawBytesIn - o.RawBytesIn,
		CompressedBodies: s.CompressedBodies - o.CompressedBodies,
	}
}

// WireFraction is bytes-on-wire over raw JSON bytes (both directions);
// 1 means compression bought nothing, 0 before any traffic.
func (s WireStats) WireFraction() float64 {
	raw := s.RawBytesOut + s.RawBytesIn
	if raw == 0 {
		return 0
	}
	return float64(s.WireBytesOut+s.WireBytesIn) / float64(raw)
}

// postWire is the counting, compression-negotiating JSON round trip every
// worker request goes through. The request body is gzip-coded when compress
// is set and the body clears the size floor; Accept-Encoding advertises
// whether a gzip response is welcome. Counters accrue into sync (when
// non-nil) and always into the process-wide totals. Returns the HTTP status
// (with out decoded on 200) so callers can special-case 204 no-work.
func postWire(ctx context.Context, hc *http.Client, base, path string, body, out any, compress bool, sync *SyncStats) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	wire := raw
	encoding := ""
	if compress && len(raw) >= gzipMinBytes {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(raw); err != nil {
			return 0, err
		}
		if err := zw.Close(); err != nil {
			return 0, err
		}
		wire = buf.Bytes()
		encoding = "gzip"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(wire))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	if compress {
		req.Header.Set("Accept-Encoding", "gzip")
	} else {
		// Pin the uncompressed protocol end to end: without this the Go
		// transport would negotiate gzip transparently and the "serial,
		// uncompressed" baseline would silently get compression for free.
		req.Header.Set("Accept-Encoding", "identity")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	respWire, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	respRaw := respWire
	if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(bytes.NewReader(respWire))
		if err != nil {
			return 0, fmt.Errorf("cluster: %s: bad gzip response: %w", path, err)
		}
		respRaw, err = io.ReadAll(zr)
		if err != nil {
			return 0, fmt.Errorf("cluster: %s: bad gzip response: %w", path, err)
		}
		procWire.compressed.Add(1)
	}
	if encoding != "" {
		procWire.compressed.Add(1)
	}
	procWire.roundTrips.Add(1)
	procWire.wireOut.Add(uint64(len(wire)))
	procWire.wireIn.Add(uint64(len(respWire)))
	procWire.rawOut.Add(uint64(len(raw)))
	procWire.rawIn.Add(uint64(len(respRaw)))
	if sync != nil {
		sync.RoundTrips++
		sync.WireBytesOut += uint64(len(wire))
		sync.WireBytesIn += uint64(len(respWire))
		sync.RawBytesOut += uint64(len(raw))
		sync.RawBytesIn += uint64(len(respRaw))
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated:
		if out == nil {
			return resp.StatusCode, nil
		}
		return resp.StatusCode, json.Unmarshal(respRaw, out)
	case http.StatusNoContent:
		return resp.StatusCode, nil
	default:
		if len(respRaw) > 1024 {
			respRaw = respRaw[:1024]
		}
		return resp.StatusCode, fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, respRaw)
	}
}
