package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

// WorkerOptions configures a worker node.
type WorkerOptions struct {
	// Node is the worker's cluster-unique name.
	Node string
	// Coordinator is the coordinator's base URL (e.g. "http://127.0.0.1:8080").
	Coordinator string
	// StoreDir roots the worker's local content-addressed store (its blob
	// cache; workers keep no journal).
	StoreDir string
	// Workers sizes the local runner engine's pool; <= 0 selects GOMAXPROCS.
	Workers int
	// ReplayBudget bounds the replay snapshot cache; <= 0 selects the
	// replay.DefaultBudget.
	ReplayBudget int64
	// MemoDir, when non-empty, attaches a persistent execution memo store
	// at that directory and syncs it with the coordinator's hub (pull
	// missing records at join and before each shard, push new ones after
	// each shard). Memoized results are bitwise-identical to re-execution,
	// so shard results are unaffected — a warm node just skips work.
	MemoDir string
	// MemoMaxBytes bounds the memo store's segment bytes; <= 0 selects
	// memostore.DefaultMaxBytes. Ignored without MemoDir.
	MemoMaxBytes int64
	// Poll is the initial idle backoff between work requests; <= 0 selects
	// 10ms. Idle sleeps are jittered and double up to PollMax, resetting
	// whenever work arrives.
	Poll time.Duration
	// PollMax caps the idle backoff; <= 0 selects 500ms.
	PollMax time.Duration
	// Prefetch pipelines the transport: while a shard executes, the worker
	// concurrently requests and blob-syncs the next one, so dispatch and
	// sync latency hide behind compute. Each in-flight shard holds its own
	// lease (heartbeats are node-wide and renew both); a prefetched shard
	// the worker never reports simply expires and re-queues, and a
	// duplicate execution is dropped by the coordinator — merged results
	// are bitwise-identical to the serial loop either way.
	Prefetch bool
	// Compress negotiates gzip content-coding per request (bodies above a
	// size floor, both directions).
	Compress bool
	// Batch collapses per-shard has/fetch/push chatter into multi-key
	// /cluster/sync round trips, folding the shard result into the final
	// one. Off, the worker speaks the per-endpoint protocol unchanged —
	// a mixed cluster needs no handshake.
	Batch bool
}

// prefetched is a shard whose lease and blob sync already happened, plus the
// sync traffic that cost; the Run loop hands it straight to execution.
type prefetched struct {
	shard Shard
	sync  SyncStats
}

// Worker is one pull-model cluster node: it loops requesting shards from the
// coordinator, syncs the blobs each shard references into its local store
// (fetching only what it lacks — the hash negotiation), executes the shard
// on its local runner/replay/plan caches via the shared service step
// functions, pushes result blobs the coordinator lacks, and reports the
// merged-ready records. Workers are stateless above their blob cache: kill
// one at any point and its leased shards re-queue on the coordinator.
type Worker struct {
	opts     WorkerOptions
	st       *store.Store
	eng      *runner.Engine
	reng     *replay.Engine
	beng     *bisect.Engine
	hc       *http.Client
	leaseTTL time.Duration

	// Idle-backoff state (Run loop only): current delay and the jitter rng.
	idle time.Duration
	rng  *rand.Rand

	// pendingSync accumulates transport traffic that has no shard to bill
	// yet — the join exchange, the warm memo pull, the round trip that
	// carried the previous result — and drains into the next shard's
	// report. Run loop only.
	pendingSync SyncStats

	// inFlight is the outcome channel of the one asynchronous report the
	// pipelined loop may have outstanding; nil when none. Run loop only.
	inFlight chan reportOutcome

	// Memo-sync state (nil/zero without WorkerOptions.MemoDir). The marks
	// are the incremental cursors of the two sync directions. All are
	// touched only from the Run loop.
	memo     *memostore.Store
	memoSync bool
	pullMark uint64
	pushMark uint64

	// Decoded reference-corpus cache, keyed by the manifest's joined hashes
	// (content-addressed, so a perfect cache key).
	refsKey string
	refs    []corpus.Item
}

// NewWorker builds a worker over a local store directory.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Node == "" {
		return nil, fmt.Errorf("cluster: worker needs a node name")
	}
	if opts.Poll <= 0 {
		opts.Poll = 10 * time.Millisecond
	}
	if opts.PollMax <= 0 {
		opts.PollMax = 500 * time.Millisecond
	}
	if opts.PollMax < opts.Poll {
		opts.PollMax = opts.Poll
	}
	budget := opts.ReplayBudget
	if budget <= 0 {
		budget = replay.DefaultBudget
	}
	st, err := store.Open(opts.StoreDir)
	if err != nil {
		return nil, err
	}
	eng := runner.New(opts.Workers)
	w := &Worker{
		opts:     opts,
		st:       st,
		eng:      eng,
		reng:     replay.NewEngine(budget),
		beng:     bisect.New(eng),
		hc:       newWorkerClient(),
		leaseTTL: 5 * time.Second,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if opts.MemoDir != "" {
		memo, err := memostore.Open(opts.MemoDir, opts.MemoMaxBytes)
		if err != nil {
			st.Close()
			return nil, err
		}
		w.memo = memo
		w.memoSync = true
		eng.SetMemoStore(memo)
	}
	return w, nil
}

// Close releases the worker's local store and memo store.
func (w *Worker) Close() error {
	err := w.st.Close()
	if w.memo != nil {
		if merr := w.memo.Close(); err == nil {
			err = merr
		}
	}
	return err
}

// Run joins the cluster and processes shards until ctx is canceled. Errors
// talking to the coordinator (down, restarting) are retried with jittered
// exponential backoff; deterministic shard failures are reported so the
// coordinator can fail the campaign rather than re-dispatch forever.
func (w *Worker) Run(ctx context.Context) error {
	for ctx.Err() == nil {
		var jr joinResponse
		err := w.post(ctx, "/cluster/join", joinRequest{Node: w.opts.Node, ProcToken: runner.ProcessToken()}, &jr, &w.pendingSync)
		if err == nil {
			if jr.LeaseTTLMS > 0 {
				w.leaseTTL = time.Duration(jr.LeaseTTLMS) * time.Millisecond
			}
			w.gotWork()
			// Warm-start: pull the cluster's accumulated execution memo
			// before taking any work. A rejoining cold node skips every
			// execution the cluster has already done.
			w.pullMemo(ctx, &w.pendingSync)
			break
		}
		if !w.idleSleep(ctx) {
			return ctx.Err()
		}
	}
	// Before returning, collect any report still in flight so Close never
	// races a goroutine still reading the store (it exits promptly once ctx
	// is canceled).
	defer w.joinReport()
	// pending is the shard the previous iteration prefetched, if any.
	var pending *prefetched
	for ctx.Err() == nil {
		var cur *prefetched
		if pending != nil {
			cur, pending = pending, nil
			cur.sync.Prefetched++
		} else {
			p := &prefetched{}
			start := time.Now()
			ok, err := w.next(ctx, &p.shard, &p.sync)
			if err != nil || !ok {
				if !w.idleSleep(ctx) {
					break
				}
				continue
			}
			if err := w.syncShardBlobs(ctx, &p.shard, &p.sync); err != nil {
				// Sync failed (coordinator blip): don't execute on partial
				// inputs; the lease expires and the shard re-queues.
				if !w.idleSleep(ctx) {
					break
				}
				continue
			}
			p.sync.Nanos += time.Since(start).Nanoseconds()
			cur = p
		}
		w.gotWork()
		// Pipeline: lease + sync the next shard while this one executes.
		// The execute loop's heartbeats are node-wide, so they keep every
		// in-flight lease alive — the executing shard, the prefetched one,
		// and an unacknowledged report's.
		var pf chan *prefetched
		if w.opts.Prefetch {
			pf = make(chan *prefetched, 1)
			go func() { pf <- w.prefetch(ctx) }()
		}
		res, produced := w.execute(ctx, &cur.shard, cur.sync)
		if ctx.Err() != nil {
			// Killed mid-shard: report nothing; the leases expire and the
			// coordinator re-queues every in-flight shard.
			break
		}
		if w.opts.Prefetch && w.opts.Batch {
			// Fully pipelined: the report's round trips overlap the next
			// shard's execution. At most one report is outstanding, joined
			// before the next one starts (and before any memo-cursor use),
			// so the Run loop's state never races the sender.
			w.joinReport()
			rep := w.prepareReport(&res, produced)
			ch := make(chan reportOutcome, 1)
			go func() { ch <- w.sendReport(ctx, rep) }()
			w.inFlight = ch
		} else {
			w.report(ctx, &res, produced)
		}
		if pf != nil {
			pending = <-pf
		}
	}
	return ctx.Err()
}

// reportOutcome is what an asynchronous report hands back to the Run loop:
// traffic to bill to the next shard and the memo push cursor to commit.
type reportOutcome struct {
	sync     SyncStats
	pushMark uint64
	pushed   int
}

// joinReport blocks until the in-flight report (if any) lands and applies
// its outcome to the Run loop's state.
func (w *Worker) joinReport() {
	if w.inFlight == nil {
		return
	}
	w.applyReport(<-w.inFlight)
	w.inFlight = nil
}

// tryJoinReport applies the in-flight report's outcome if it already landed.
// Returns true when no report remains outstanding afterwards.
func (w *Worker) tryJoinReport() bool {
	if w.inFlight == nil {
		return true
	}
	select {
	case o := <-w.inFlight:
		w.applyReport(o)
		w.inFlight = nil
		return true
	default:
		return false
	}
}

func (w *Worker) applyReport(o reportOutcome) {
	w.pendingSync.add(o.sync)
	if o.pushMark > w.pushMark {
		w.pushMark = o.pushMark
	}
	if o.pushed > 0 && w.memo != nil {
		w.memo.AddPushed(o.pushed)
	}
}

// prefetch leases and blob-syncs one shard ahead of execution. A nil return
// means no work was pending or the sync failed; an abandoned lease expires
// and re-queues, so dropping a prefetch is always safe.
func (w *Worker) prefetch(ctx context.Context) *prefetched {
	p := &prefetched{}
	start := time.Now()
	ok, err := w.next(ctx, &p.shard, &p.sync)
	if err != nil || !ok {
		return nil
	}
	if err := w.syncShardBlobs(ctx, &p.shard, &p.sync); err != nil {
		return nil
	}
	p.sync.Nanos += time.Since(start).Nanoseconds()
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// idleSleep sleeps the current backoff (jittered to [d/2, d)) and doubles it
// toward PollMax, so an idle fleet's /cluster/next polls thin out and spread
// instead of arriving in lockstep. Returns false when ctx ended.
func (w *Worker) idleSleep(ctx context.Context) bool {
	d := w.idle
	if d <= 0 {
		d = w.opts.Poll
	}
	jittered := d/2 + time.Duration(w.rng.Int63n(int64(d/2)+1))
	if !sleepCtx(ctx, jittered) {
		return false
	}
	w.idle = d * 2
	if w.idle > w.opts.PollMax {
		w.idle = w.opts.PollMax
	}
	return true
}

// gotWork resets the idle backoff to its floor.
func (w *Worker) gotWork() { w.idle = 0 }

// speculativePushMax bounds how many produced bytes a batched report will
// push without a has-negotiation round trip first.
const speculativePushMax = 64 << 10

// next asks the coordinator for a shard; false means no work is pending.
func (w *Worker) next(ctx context.Context, sh *Shard, sync *SyncStats) (bool, error) {
	status, err := postWire(ctx, w.hc, w.opts.Coordinator, "/cluster/next", nodeRequest{Node: w.opts.Node}, sh, w.opts.Compress, sync)
	if err != nil {
		return false, err
	}
	return status == http.StatusOK, nil
}

// post sends a JSON request body and decodes a JSON response into out,
// negotiating compression and accounting the traffic into sync (nil for
// unattributed requests like heartbeats, which still count process-wide).
func (w *Worker) post(ctx context.Context, path string, body, out any, sync *SyncStats) error {
	_, err := postWire(ctx, w.hc, w.opts.Coordinator, path, body, out, w.opts.Compress, sync)
	return err
}

// syncShardBlobs pulls every blob the shard references (corpus manifest and
// extra needs) that the local store lacks. Batched mode collapses it into a
// single multi-key round trip; otherwise the legacy per-manifest /blobs/fetch
// exchanges run unchanged.
func (w *Worker) syncShardBlobs(ctx context.Context, sh *Shard, sync *SyncStats) error {
	if !w.opts.Batch {
		if err := w.ensureBlobs(ctx, sh.Corpus, sync); err != nil {
			return err
		}
		return w.ensureBlobs(ctx, sh.Needs, sync)
	}
	var missing []string
	seen := map[string]bool{}
	for _, refs := range [][]BlobRef{sh.Corpus, sh.Needs} {
		for _, ref := range refs {
			sync.BlobsReferenced++
			sync.BytesReferenced += uint64(ref.Size)
			if !w.st.HasBlob(ref.Hash) && !seen[ref.Hash] {
				seen[ref.Hash] = true
				missing = append(missing, ref.Hash)
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	var sr syncResponse
	if err := w.post(ctx, "/cluster/sync", syncRequest{Node: w.opts.Node, BlobFetch: missing}, &sr, sync); err != nil {
		return err
	}
	if len(sr.Blobs) != len(missing) {
		return fmt.Errorf("cluster: sync fetch returned %d blobs for %d hashes", len(sr.Blobs), len(missing))
	}
	hashes, err := w.st.PutBatch(sr.Blobs)
	if err != nil {
		return err
	}
	for i, h := range hashes {
		if h != missing[i] {
			return fmt.Errorf("cluster: fetched blob %s hashes to %s", missing[i], h)
		}
		sync.BlobsTransferred++
		sync.BytesTransferred += uint64(len(sr.Blobs[i]))
	}
	return nil
}

// execute runs one already-synced shard and assembles its result. The
// heartbeat goroutine keeps the node's leases alive — this shard's and any
// concurrently prefetched one — for shards that outlast the TTL (long
// reductions). Returns the result and the produced blob hashes for report
// to upload.
func (w *Worker) execute(ctx context.Context, sh *Shard, pre SyncStats) (ShardResult, []string) {
	res := ShardResult{
		Campaign:  sh.Campaign,
		Phase:     sh.Phase,
		Index:     sh.Index,
		Node:      w.opts.Node,
		ProcToken: runner.ProcessToken(),
		Sync:      pre,
	}
	// Traffic with no shard of its own (join, warm pull, the previous
	// result's round trip) bills to this shard.
	res.Sync.add(w.pendingSync)
	w.pendingSync = SyncStats{}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(w.leaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				w.post(hbCtx, "/cluster/heartbeat", nodeRequest{Node: w.opts.Node}, nil, nil)
			}
		}
	}()
	if w.tryJoinReport() {
		// Pick up records other workers pushed meanwhile — but never while
		// a report is still in flight (the memo cursors belong to it until
		// it lands; skipping a pull costs nothing but a few re-executions).
		start := time.Now()
		w.pullMemo(ctx, &res.Sync)
		res.Sync.Nanos += time.Since(start).Nanoseconds()
	}
	start := time.Now()
	produced, err := w.executeInner(ctx, sh, &res)
	res.ServiceNanos = time.Since(start).Nanoseconds()
	if err != nil && ctx.Err() == nil {
		res.Error = err.Error()
	}
	res.Runner = w.eng.Stats()
	res.Replay = w.reng.Stats()
	res.Bisect = w.beng.Stats()
	return res, produced
}

// report delivers a shard result: upload the produced blobs the coordinator
// lacks, push new memo records, and post the result — as three legacy
// exchanges, or folded into two batched round trips (offers, then pushes +
// result). Delivery retries until it lands or ctx ends; re-delivery is safe
// because the coordinator drops results whose units are already merged.
func (w *Worker) report(ctx context.Context, res *ShardResult, produced []string) {
	if w.opts.Batch {
		w.reportBatch(ctx, res, produced)
		return
	}
	start := time.Now()
	if err := w.push(ctx, produced, &res.Sync); err != nil && ctx.Err() == nil && res.Error == "" {
		res.Error = err.Error()
	}
	w.pushMemo(ctx, &res.Sync)
	res.Sync.Nanos += time.Since(start).Nanoseconds()
	for ctx.Err() == nil {
		var ok okResponse
		// The result round trip itself can't be billed to the result it
		// carries; it accrues to the next shard via pendingSync.
		if err := w.post(ctx, "/cluster/result", *res, &ok, &w.pendingSync); err == nil {
			return
		}
		sleepCtx(ctx, w.opts.Poll)
	}
}

// reportBatch is the synchronous batched delivery (Batch without Prefetch):
// prepare, send, apply in place.
func (w *Worker) reportBatch(ctx context.Context, res *ShardResult, produced []string) {
	w.applyReport(w.sendReport(ctx, w.prepareReport(res, produced)))
}

// reportPrep is a report snapshot the Run loop assembles before handing the
// delivery to a goroutine: after prepareReport, sending touches no Run-loop
// state (the blob store and memo store are safe for concurrent readers).
type reportPrep struct {
	res       *ShardResult
	offer     []BlobRef
	memoKeys  []memostore.Key
	memoOffer []string
	memoMark  uint64
	start     time.Time
}

// prepareReport snapshots everything a batched report needs: the produced
// blob manifest (with sizes) and the memo keys appended since the last push
// cursor. Run loop only.
func (w *Worker) prepareReport(res *ShardResult, produced []string) reportPrep {
	rep := reportPrep{res: res, start: time.Now()}
	for _, h := range dedupeHashes(produced) {
		size, ok := w.st.StatBlob(h)
		if !ok {
			if res.Error == "" {
				res.Error = fmt.Sprintf("cluster: produced blob %s missing locally", h)
			}
			continue
		}
		rep.offer = append(rep.offer, BlobRef{Hash: h, Size: size})
		res.Sync.BlobsReferenced++
		res.Sync.BytesReferenced += uint64(size)
	}
	if w.memo != nil && w.memoSync {
		w.memo.Flush()
		rep.memoKeys, rep.memoMark = w.memo.KeysSince(w.pushMark)
		for _, k := range rep.memoKeys {
			rep.memoOffer = append(rep.memoOffer, k.String())
		}
	}
	return rep
}

// sendReport delivers a prepared report: round trip 1 offers the produced
// blob manifest and new memo keys (accounted into the result's own sync
// stats, since the result has not been marshaled yet); round trip 2 pushes
// the wanted bodies with the shard result folded in, retrying until it lands
// or ctx ends. Safe to run concurrently with the Run loop — it touches only
// the prep snapshot, the (concurrency-safe) stores, and its own outcome.
func (w *Worker) sendReport(ctx context.Context, rep reportPrep) reportOutcome {
	var out reportOutcome
	res := rep.res
	// Speculative push: produced blobs are almost always new to the
	// coordinator (fresh reduction reports, fresh bug sequences), so when
	// the whole payload is small the offer round trip costs more latency
	// than the negotiation could ever save in bytes. Push unconditionally
	// in that case — the coordinator's put-if-absent store makes a
	// redundant body harmless, and the size gate bounds the waste. Memo
	// offers always negotiate: other nodes routinely hold the same keys.
	speculative := len(rep.memoOffer) == 0
	if speculative {
		total := uint64(0)
		for _, ref := range rep.offer {
			total += uint64(ref.Size)
		}
		speculative = total <= speculativePushMax
	}
	var sr syncResponse
	if speculative {
		sr.BlobWant = make([]bool, len(rep.offer))
		for i := range sr.BlobWant {
			sr.BlobWant[i] = true
		}
	} else if len(rep.offer) > 0 || len(rep.memoOffer) > 0 {
		for ctx.Err() == nil {
			err := w.post(ctx, "/cluster/sync", syncRequest{Node: w.opts.Node, BlobOffer: rep.offer, MemoOffer: rep.memoOffer}, &sr, &res.Sync)
			if err == nil {
				break
			}
			sleepCtx(ctx, w.opts.Poll)
		}
		if ctx.Err() != nil {
			return out
		}
	}
	push := syncRequest{Node: w.opts.Node, Result: res}
	for i, want := range sr.BlobWant {
		if !want || i >= len(rep.offer) {
			continue
		}
		data, err := w.st.GetBlob(rep.offer[i].Hash)
		if err != nil {
			continue
		}
		push.BlobPush = append(push.BlobPush, data)
		res.Sync.BlobsTransferred++
		res.Sync.BytesTransferred += uint64(len(data))
	}
	for i, want := range sr.MemoWant {
		if !want || i >= len(rep.memoKeys) {
			continue
		}
		if rec, ok := w.memo.GetRecord(rep.memoKeys[i]); ok {
			push.MemoPush = append(push.MemoPush, memoRecord{K: rec.Key.String(), T: rec.Kind, D: rec.Data})
		}
	}
	res.Sync.MemoPushed += uint64(len(push.MemoPush))
	res.Sync.Nanos += time.Since(rep.start).Nanoseconds()
	for ctx.Err() == nil {
		var resp syncResponse
		// This round trip carries the result, so its own bytes bill to the
		// next shard via the outcome.
		if err := w.post(ctx, "/cluster/sync", push, &resp, &out.sync); err == nil {
			// Commit the push cursor only after delivery; a retry after a
			// failed attempt re-offers idempotently.
			out.pushMark = rep.memoMark
			out.pushed = len(push.MemoPush)
			return out
		}
		sleepCtx(ctx, w.opts.Poll)
	}
	return out
}

func dedupeHashes(hashes []string) []string {
	uniq := map[string]bool{}
	var manifest []string
	for _, h := range hashes {
		if h == "" || uniq[h] {
			continue
		}
		uniq[h] = true
		manifest = append(manifest, h)
	}
	sort.Strings(manifest)
	return manifest
}

// executeInner runs the shard's units (blobs already synced) and returns the
// produced blob hashes for the report to upload.
func (w *Worker) executeInner(ctx context.Context, sh *Shard, res *ShardResult) ([]string, error) {
	refs, err := w.decodeRefs(sh)
	if err != nil {
		return nil, err
	}
	env := service.Env{Eng: w.eng, Reng: w.reng, Blobs: w.st}
	switch sh.Phase {
	case PhaseFuzz:
		targets, err := service.ResolveTargets(sh.Spec.Targets)
		if err != nil {
			return nil, err
		}
		donors := corpus.Donors()
		var produced []string
		for i := sh.Lo; i < sh.Hi; i++ {
			bugs, err := service.FuzzStep(ctx, env, sh.Spec, targets, refs, donors, i)
			if err != nil {
				return produced, err
			}
			res.Tests = append(res.Tests, TestResult{Index: i, Bugs: bugs})
			for _, bug := range bugs {
				produced = append(produced, bug.SeqHash, bug.VariantHash)
			}
		}
		return produced, nil
	case PhaseReduce:
		var produced []string
		for _, rc := range sh.Cases {
			rec, err := service.ReduceStep(ctx, env, sh.Campaign, sh.Spec, refs, rc)
			if err != nil {
				return produced, err
			}
			res.Reduced = append(res.Reduced, rec)
			produced = append(produced, rec.ReportHash)
		}
		return produced, nil
	case PhaseBisect:
		for _, rec := range sh.Recs {
			out, err := service.BisectStep(ctx, env, w.beng, refs, rec)
			if err != nil {
				return nil, err
			}
			res.Bisects = append(res.Bisects, out)
		}
		// Verdicts travel in the result record itself; no blobs to push.
		return nil, nil
	default:
		return nil, fmt.Errorf("cluster: unknown shard phase %q", sh.Phase)
	}
}

// decodeRefs decodes the shard's (already-synced) corpus manifest to
// reference items, memoizing the decode across shards of the same campaign
// (the manifest is content-addressed, so the joined hash is a perfect cache
// key). Run loop only — the prefetch goroutine syncs blobs but never touches
// this cache.
func (w *Worker) decodeRefs(sh *Shard) ([]corpus.Item, error) {
	key := ""
	for _, ref := range sh.Corpus {
		key += ref.Hash
	}
	if key == w.refsKey {
		return w.refs, nil
	}
	refs := make([]corpus.Item, 0, len(sh.Corpus))
	for _, ref := range sh.Corpus {
		data, err := w.st.GetBlob(ref.Hash)
		if err != nil {
			return nil, err
		}
		it, err := decodeCorpusItem(data)
		if err != nil {
			return nil, err
		}
		refs = append(refs, it)
	}
	w.refsKey, w.refs = key, refs
	return refs, nil
}

// ensureBlobs pulls the referenced blobs the local store lacks: every ref
// counts as referenced bytes, only the locally-missing ones transfer. This
// is the inbound half of the hash-negotiated sync (legacy protocol).
func (w *Worker) ensureBlobs(ctx context.Context, refs []BlobRef, sync *SyncStats) error {
	var missing []string
	for _, ref := range refs {
		sync.BlobsReferenced++
		sync.BytesReferenced += uint64(ref.Size)
		if !w.st.HasBlob(ref.Hash) {
			missing = append(missing, ref.Hash)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	var fr fetchResponse
	if err := w.post(ctx, "/blobs/fetch", fetchRequest{Hashes: missing}, &fr, sync); err != nil {
		return err
	}
	if len(fr.Blobs) != len(missing) {
		return fmt.Errorf("cluster: fetch returned %d blobs for %d hashes", len(fr.Blobs), len(missing))
	}
	hashes, err := w.st.PutBatch(fr.Blobs)
	if err != nil {
		return err
	}
	for i, h := range hashes {
		if h != missing[i] {
			return fmt.Errorf("cluster: fetched blob %s hashes to %s", missing[i], h)
		}
		sync.BlobsTransferred++
		sync.BytesTransferred += uint64(len(fr.Blobs[i]))
	}
	return nil
}

// push uploads the produced blobs the coordinator lacks: the outbound half
// of the sync (legacy protocol). Re-executed shards (after a rejoin or a
// lease steal) re-push nothing — the coordinator already has every hash.
func (w *Worker) push(ctx context.Context, hashes []string, sync *SyncStats) error {
	manifest := dedupeHashes(hashes)
	if len(manifest) == 0 {
		return nil
	}
	for _, h := range manifest {
		size, ok := w.st.StatBlob(h)
		if !ok {
			return fmt.Errorf("cluster: produced blob %s missing locally", h)
		}
		sync.BlobsReferenced++
		sync.BytesReferenced += uint64(size)
	}
	var hr hasResponse
	if err := w.post(ctx, "/blobs/has", hasRequest{Hashes: manifest}, &hr, sync); err != nil {
		return err
	}
	if len(hr.Has) != len(manifest) {
		return fmt.Errorf("cluster: has returned %d bits for %d hashes", len(hr.Has), len(manifest))
	}
	var blobs [][]byte
	for i, h := range manifest {
		if hr.Has[i] {
			continue
		}
		data, err := w.st.GetBlob(h)
		if err != nil {
			return err
		}
		blobs = append(blobs, data)
		sync.BlobsTransferred++
		sync.BytesTransferred += uint64(len(data))
	}
	if len(blobs) == 0 {
		return nil
	}
	var pr putResponse
	return w.post(ctx, "/blobs/put", putRequest{Blobs: blobs}, &pr, sync)
}
