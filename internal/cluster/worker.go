package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

// WorkerOptions configures a worker node.
type WorkerOptions struct {
	// Node is the worker's cluster-unique name.
	Node string
	// Coordinator is the coordinator's base URL (e.g. "http://127.0.0.1:8080").
	Coordinator string
	// StoreDir roots the worker's local content-addressed store (its blob
	// cache; workers keep no journal).
	StoreDir string
	// Workers sizes the local runner engine's pool; <= 0 selects GOMAXPROCS.
	Workers int
	// ReplayBudget bounds the replay snapshot cache; <= 0 selects the
	// replay.DefaultBudget.
	ReplayBudget int64
	// MemoDir, when non-empty, attaches a persistent execution memo store
	// at that directory and syncs it with the coordinator's hub (pull
	// missing records at join and before each shard, push new ones after
	// each shard). Memoized results are bitwise-identical to re-execution,
	// so shard results are unaffected — a warm node just skips work.
	MemoDir string
	// MemoMaxBytes bounds the memo store's segment bytes; <= 0 selects
	// memostore.DefaultMaxBytes. Ignored without MemoDir.
	MemoMaxBytes int64
	// Poll is the idle backoff between work requests; <= 0 selects 10ms.
	Poll time.Duration
}

// Worker is one pull-model cluster node: it loops requesting shards from the
// coordinator, syncs the blobs each shard references into its local store
// (fetching only what it lacks — the hash negotiation), executes the shard
// on its local runner/replay/plan caches via the shared service step
// functions, pushes result blobs the coordinator lacks, and reports the
// merged-ready records. Workers are stateless above their blob cache: kill
// one at any point and its leased shards re-queue on the coordinator.
type Worker struct {
	opts     WorkerOptions
	st       *store.Store
	eng      *runner.Engine
	reng     *replay.Engine
	beng     *bisect.Engine
	hc       *http.Client
	leaseTTL time.Duration

	// Memo-sync state (nil/zero without WorkerOptions.MemoDir). The marks
	// are the incremental cursors of the two sync directions; the pending
	// counters accumulate between shard reports and drain into the next
	// ShardResult.Sync. All are touched only from the Run loop.
	memo          *memostore.Store
	memoSync      bool
	pullMark      uint64
	pushMark      uint64
	pendingPulled uint64
	pendingPushed uint64

	// Decoded reference-corpus cache, keyed by the manifest's joined hashes
	// (content-addressed, so a perfect cache key).
	refsKey string
	refs    []corpus.Item
}

// NewWorker builds a worker over a local store directory.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Node == "" {
		return nil, fmt.Errorf("cluster: worker needs a node name")
	}
	if opts.Poll <= 0 {
		opts.Poll = 10 * time.Millisecond
	}
	budget := opts.ReplayBudget
	if budget <= 0 {
		budget = replay.DefaultBudget
	}
	st, err := store.Open(opts.StoreDir)
	if err != nil {
		return nil, err
	}
	eng := runner.New(opts.Workers)
	w := &Worker{
		opts:     opts,
		st:       st,
		eng:      eng,
		reng:     replay.NewEngine(budget),
		beng:     bisect.New(eng),
		hc:       &http.Client{Timeout: 30 * time.Second},
		leaseTTL: 5 * time.Second,
	}
	if opts.MemoDir != "" {
		memo, err := memostore.Open(opts.MemoDir, opts.MemoMaxBytes)
		if err != nil {
			st.Close()
			return nil, err
		}
		w.memo = memo
		w.memoSync = true
		eng.SetMemoStore(memo)
	}
	return w, nil
}

// Close releases the worker's local store and memo store.
func (w *Worker) Close() error {
	err := w.st.Close()
	if w.memo != nil {
		if merr := w.memo.Close(); err == nil {
			err = merr
		}
	}
	return err
}

// Run joins the cluster and processes shards until ctx is canceled. Errors
// talking to the coordinator (down, restarting) are retried with backoff;
// deterministic shard failures are reported so the coordinator can fail the
// campaign rather than re-dispatch forever.
func (w *Worker) Run(ctx context.Context) error {
	for ctx.Err() == nil {
		var jr joinResponse
		err := w.post(ctx, "/cluster/join", joinRequest{Node: w.opts.Node, ProcToken: runner.ProcessToken()}, &jr)
		if err == nil {
			if jr.LeaseTTLMS > 0 {
				w.leaseTTL = time.Duration(jr.LeaseTTLMS) * time.Millisecond
			}
			// Warm-start: pull the cluster's accumulated execution memo
			// before taking any work. A rejoining cold node skips every
			// execution the cluster has already done.
			w.pullMemo(ctx)
			break
		}
		if !sleepCtx(ctx, w.opts.Poll) {
			return ctx.Err()
		}
	}
	for ctx.Err() == nil {
		var sh Shard
		ok, err := w.next(ctx, &sh)
		if err != nil || !ok {
			if !sleepCtx(ctx, w.opts.Poll) {
				break
			}
			continue
		}
		res := w.execute(ctx, &sh)
		if ctx.Err() != nil {
			// Killed mid-shard: report nothing; the lease expires and the
			// coordinator re-queues the shard.
			break
		}
		for ctx.Err() == nil {
			var ok okResponse
			if err := w.post(ctx, "/cluster/result", res, &ok); err == nil {
				break
			}
			sleepCtx(ctx, w.opts.Poll)
		}
	}
	return ctx.Err()
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// next asks the coordinator for a shard; false means no work is pending.
func (w *Worker) next(ctx context.Context, sh *Shard) (bool, error) {
	req, err := json.Marshal(nodeRequest{Node: w.opts.Node})
	if err != nil {
		return false, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+"/cluster/next", bytes.NewReader(req))
	if err != nil {
		return false, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(httpReq)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return false, fmt.Errorf("cluster: next: %s: %s", resp.Status, body)
	}
	return true, json.NewDecoder(resp.Body).Decode(sh)
}

// post sends a JSON request body and decodes a JSON response into out.
func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, msg)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// execute runs one shard and assembles its result. The heartbeat goroutine
// keeps the lease alive for shards that outlast the TTL (long reductions).
func (w *Worker) execute(ctx context.Context, sh *Shard) ShardResult {
	res := ShardResult{
		Campaign:  sh.Campaign,
		Phase:     sh.Phase,
		Index:     sh.Index,
		Node:      w.opts.Node,
		ProcToken: runner.ProcessToken(),
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(w.leaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				w.post(hbCtx, "/cluster/heartbeat", nodeRequest{Node: w.opts.Node}, nil)
			}
		}
	}()
	w.pullMemo(ctx) // pick up records other workers pushed meanwhile
	err := w.executeInner(ctx, sh, &res)
	if err != nil && ctx.Err() == nil {
		res.Error = err.Error()
	}
	// Push the shard's freshly-spilled memo records, then attribute the
	// accumulated sync traffic (including a join-time warm pull) to this
	// shard's report.
	w.pushMemo(ctx)
	res.Sync.MemoPulled += w.pendingPulled
	res.Sync.MemoPushed += w.pendingPushed
	w.pendingPulled, w.pendingPushed = 0, 0
	res.Runner = w.eng.Stats()
	res.Replay = w.reng.Stats()
	res.Bisect = w.beng.Stats()
	return res
}

func (w *Worker) executeInner(ctx context.Context, sh *Shard, res *ShardResult) error {
	refs, err := w.ensureRefs(ctx, sh, &res.Sync)
	if err != nil {
		return err
	}
	env := service.Env{Eng: w.eng, Reng: w.reng, Blobs: w.st}
	switch sh.Phase {
	case PhaseFuzz:
		targets, err := service.ResolveTargets(sh.Spec.Targets)
		if err != nil {
			return err
		}
		donors := corpus.Donors()
		var produced []string
		for i := sh.Lo; i < sh.Hi; i++ {
			bugs, err := service.FuzzStep(ctx, env, sh.Spec, targets, refs, donors, i)
			if err != nil {
				return err
			}
			res.Tests = append(res.Tests, TestResult{Index: i, Bugs: bugs})
			for _, bug := range bugs {
				produced = append(produced, bug.SeqHash, bug.VariantHash)
			}
		}
		return w.push(ctx, produced, &res.Sync)
	case PhaseReduce:
		if err := w.ensureBlobs(ctx, sh.Needs, &res.Sync); err != nil {
			return err
		}
		var produced []string
		for _, rc := range sh.Cases {
			rec, err := service.ReduceStep(ctx, env, sh.Campaign, sh.Spec, refs, rc)
			if err != nil {
				return err
			}
			res.Reduced = append(res.Reduced, rec)
			produced = append(produced, rec.ReportHash)
		}
		return w.push(ctx, produced, &res.Sync)
	case PhaseBisect:
		if err := w.ensureBlobs(ctx, sh.Needs, &res.Sync); err != nil {
			return err
		}
		for _, rec := range sh.Recs {
			out, err := service.BisectStep(ctx, env, w.beng, refs, rec)
			if err != nil {
				return err
			}
			res.Bisects = append(res.Bisects, out)
		}
		// Verdicts travel in the result record itself; no blobs to push.
		return nil
	default:
		return fmt.Errorf("cluster: unknown shard phase %q", sh.Phase)
	}
}

// ensureRefs syncs the shard's corpus manifest into the local store and
// decodes it to reference items, memoizing the decode across shards of the
// same campaign (the manifest is content-addressed, so the joined hash is a
// perfect cache key).
func (w *Worker) ensureRefs(ctx context.Context, sh *Shard, sync *SyncStats) ([]corpus.Item, error) {
	if err := w.ensureBlobs(ctx, sh.Corpus, sync); err != nil {
		return nil, err
	}
	key := ""
	for _, ref := range sh.Corpus {
		key += ref.Hash
	}
	if key == w.refsKey {
		return w.refs, nil
	}
	refs := make([]corpus.Item, 0, len(sh.Corpus))
	for _, ref := range sh.Corpus {
		data, err := w.st.GetBlob(ref.Hash)
		if err != nil {
			return nil, err
		}
		it, err := decodeCorpusItem(data)
		if err != nil {
			return nil, err
		}
		refs = append(refs, it)
	}
	w.refsKey, w.refs = key, refs
	return refs, nil
}

// ensureBlobs pulls the referenced blobs the local store lacks: every ref
// counts as referenced bytes, only the locally-missing ones transfer. This
// is the inbound half of the hash-negotiated sync.
func (w *Worker) ensureBlobs(ctx context.Context, refs []BlobRef, sync *SyncStats) error {
	var missing []string
	for _, ref := range refs {
		sync.BlobsReferenced++
		sync.BytesReferenced += uint64(ref.Size)
		if !w.st.HasBlob(ref.Hash) {
			missing = append(missing, ref.Hash)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	var fr fetchResponse
	if err := w.post(ctx, "/blobs/fetch", fetchRequest{Hashes: missing}, &fr); err != nil {
		return err
	}
	if len(fr.Blobs) != len(missing) {
		return fmt.Errorf("cluster: fetch returned %d blobs for %d hashes", len(fr.Blobs), len(missing))
	}
	hashes, err := w.st.PutBatch(fr.Blobs)
	if err != nil {
		return err
	}
	for i, h := range hashes {
		if h != missing[i] {
			return fmt.Errorf("cluster: fetched blob %s hashes to %s", missing[i], h)
		}
		sync.BlobsTransferred++
		sync.BytesTransferred += uint64(len(fr.Blobs[i]))
	}
	return nil
}

// push uploads the produced blobs the coordinator lacks: the outbound half
// of the sync. Re-executed shards (after a rejoin or a lease steal) re-push
// nothing — the coordinator already has every hash.
func (w *Worker) push(ctx context.Context, hashes []string, sync *SyncStats) error {
	// Dedupe and order the manifest.
	uniq := map[string]bool{}
	var manifest []string
	for _, h := range hashes {
		if h == "" || uniq[h] {
			continue
		}
		uniq[h] = true
		manifest = append(manifest, h)
	}
	sort.Strings(manifest)
	if len(manifest) == 0 {
		return nil
	}
	sizes := make([]int64, len(manifest))
	for i, h := range manifest {
		size, ok := w.st.StatBlob(h)
		if !ok {
			return fmt.Errorf("cluster: produced blob %s missing locally", h)
		}
		sizes[i] = size
		sync.BlobsReferenced++
		sync.BytesReferenced += uint64(size)
	}
	var hr hasResponse
	if err := w.post(ctx, "/blobs/has", hasRequest{Hashes: manifest}, &hr); err != nil {
		return err
	}
	if len(hr.Has) != len(manifest) {
		return fmt.Errorf("cluster: has returned %d bits for %d hashes", len(hr.Has), len(manifest))
	}
	var blobs [][]byte
	for i, h := range manifest {
		if hr.Has[i] {
			continue
		}
		data, err := w.st.GetBlob(h)
		if err != nil {
			return err
		}
		blobs = append(blobs, data)
		sync.BlobsTransferred++
		sync.BytesTransferred += uint64(len(data))
	}
	if len(blobs) == 0 {
		return nil
	}
	var pr putResponse
	return w.post(ctx, "/blobs/put", putRequest{Blobs: blobs}, &pr)
}
