package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

// TestClusterPipelineIdentityMatrix is the transport property test: every
// combination of prefetch × compression/batching × node count must produce
// buckets bitwise-identical to the single-node service. The transport layers
// move bytes and overlap waits; they are never allowed to change results.
func TestClusterPipelineIdentityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster test")
	}
	want := referenceBuckets(t)
	configs := []struct {
		name                      string
		prefetch, compress, batch bool
	}{
		{"legacy", false, false, false},
		{"prefetch", true, false, false},
		{"compress-batch", false, true, true},
		{"pipelined", true, true, true},
	}
	for _, cfg := range configs {
		for _, nodes := range []int{1, 3} {
			cfg, nodes := cfg, nodes
			t.Run(fmt.Sprintf("%s-%dnode", cfg.name, nodes), func(t *testing.T) {
				t.Parallel()
				st, err := store.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				opts := testOpts()
				opts.AdaptiveShards = true
				co, err := NewCoordinator(st, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer co.Close()
				sim, err := StartSimCfg(co, SimConfig{
					Nodes: nodes, Dir: t.TempDir(), WorkersPer: 2,
					Worker: func(w *WorkerOptions) {
						w.Prefetch, w.Compress, w.Batch = cfg.prefetch, cfg.compress, cfg.batch
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer sim.Stop()
				status, err := co.CreateCampaign(testSpec())
				if err != nil {
					t.Fatal(err)
				}
				if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
					t.Fatal(err)
				}
				if got := clusterBuckets(t, co, status.ID); !bytes.Equal(got, want) {
					t.Fatalf("%s/%d-node buckets differ from single-node run:\n got %s\nwant %s", cfg.name, nodes, got, want)
				}
				m := co.Metrics()
				if m.Cluster.Sync.RoundTrips == 0 {
					t.Fatalf("no round trips counted: %+v", m.Cluster.Sync)
				}
				if cfg.prefetch && m.Cluster.Sync.Prefetched == 0 {
					t.Fatalf("prefetch enabled but no shard arrived prefetched: %+v", m.Cluster.Sync)
				}
				if len(m.Cluster.Sizing) == 0 {
					t.Fatalf("adaptive sizing reported no phases: %+v", m.Cluster)
				}
				for _, sz := range m.Cluster.Sizing {
					if sz.Size < 1 || sz.Size > sz.MaxSize {
						t.Fatalf("sizing out of bounds: %+v", sz)
					}
				}
			})
		}
	}
}

// TestClusterKillRejoinMidPrefetch kills a worker at a moment it provably
// holds two leases — the executing shard and a prefetched one — then adds a
// fresh node. Both in-flight shards must expire, re-queue, re-execute, and
// the final buckets must stay bitwise-identical to the single-node run.
func TestClusterKillRejoinMidPrefetch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster test")
	}
	want := referenceBuckets(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	sim, err := StartSim(co, 2, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()

	spec := testSpec()
	// Stretch both phases so executions outlast the kill window and the
	// prefetched shard is still unreported when the victim dies.
	spec.FuzzSlowdownMS = 20
	spec.ReduceSlowdownMS = 20
	status, err := co.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until some node holds at least two leases (one executing, one
	// prefetched), then kill exactly that node.
	victim := ""
	deadline := time.Now().Add(120 * time.Second)
	for victim == "" && time.Now().Before(deadline) {
		co.mu.Lock()
		held := map[string]int{}
		for _, ss := range co.leased {
			held[ss.node]++
		}
		for node, n := range held {
			if n >= 2 {
				victim = node
				break
			}
		}
		co.mu.Unlock()
		if victim == "" {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if victim == "" {
		t.Fatalf("no node ever held two leases before timeout")
	}
	sim.KillWorker(victim)
	if _, err := sim.AddWorker(); err != nil {
		t.Fatal(err)
	}

	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	if got := clusterBuckets(t, co, status.ID); !bytes.Equal(got, want) {
		t.Fatalf("buckets after mid-prefetch kill differ from single-node run:\n got %s\nwant %s", got, want)
	}
	m := co.Metrics()
	if m.Cluster.ShardsRequeued == 0 {
		t.Fatalf("killed a double-leased node but nothing re-queued: %+v", m.Cluster)
	}
	if m.Cluster.Sync.Prefetched == 0 {
		t.Fatalf("prefetch on but no shard arrived prefetched: %+v", m.Cluster.Sync)
	}
}

// TestClusterLeaseStealDuplicateDropped force-expires a reduce lease while
// the owner is mid-execution, so the shard is stolen and executed twice. The
// coordinator must drop the extra result (records already merged) and the
// buckets must stay bitwise-identical.
func TestClusterLeaseStealDuplicateDropped(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster test")
	}
	want := referenceBuckets(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	sim, err := StartSim(co, 2, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()

	spec := testSpec()
	spec.ReduceSlowdownMS = 30 // keep the owner busy while the lease is stolen
	status, err := co.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Find a live reduce lease and expire it in place: the sweep re-queues
	// the shard while its owner is still executing it.
	stolen := false
	deadline := time.Now().Add(120 * time.Second)
	for !stolen && time.Now().Before(deadline) {
		co.mu.Lock()
		for _, ss := range co.leased {
			if ss.phase == PhaseReduce {
				ss.deadline = time.Now().Add(-time.Second)
				co.sweepLeases(time.Now())
				stolen = true
				break
			}
		}
		co.mu.Unlock()
		if !stolen {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !stolen {
		t.Fatalf("no reduce lease observed before timeout")
	}

	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	if got := clusterBuckets(t, co, status.ID); !bytes.Equal(got, want) {
		t.Fatalf("buckets after lease steal differ from single-node run:\n got %s\nwant %s", got, want)
	}
	if m := co.Metrics(); m.Cluster.ShardsRequeued == 0 {
		t.Fatalf("stole a lease but nothing re-queued: %+v", m.Cluster)
	}
	// The robbed owner may still be mid-reduction when the campaign
	// finishes; its late report is the duplicate, so wait for it.
	dupDeadline := time.Now().Add(60 * time.Second)
	for {
		m := co.Metrics()
		if m.Cluster.ShardsDuplicate > 0 {
			break
		}
		if time.Now().After(dupDeadline) {
			t.Fatalf("shard executed twice but no duplicate result dropped: %+v", m.Cluster)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerIdleBackoff checks the jittered exponential idle backoff: delays
// grow from Poll toward PollMax, each sleep is jittered into [d/2, d), and
// work resets the ladder.
func TestWorkerIdleBackoff(t *testing.T) {
	w, err := NewWorker(WorkerOptions{
		Node: "backoff", Coordinator: "http://127.0.0.1:0",
		StoreDir: t.TempDir(),
		Poll:     4 * time.Millisecond, PollMax: 16 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx := context.Background()
	wantNext := []time.Duration{8, 16, 16, 16} // ms: doubling from Poll, capped
	for i, want := range wantNext {
		start := time.Now()
		if !w.idleSleep(ctx) {
			t.Fatal("idleSleep returned false with a live context")
		}
		slept := time.Since(start)
		prev := want * time.Millisecond / 2
		if i == 0 {
			prev = 4 * time.Millisecond
		}
		if slept < prev/2 {
			t.Fatalf("sleep %d: slept %v, want at least half of %v", i, slept, prev)
		}
		if w.idle != want*time.Millisecond {
			t.Fatalf("sleep %d: next delay %v, want %v", i, w.idle, want*time.Millisecond)
		}
	}
	w.gotWork()
	if w.idle != 0 {
		t.Fatalf("gotWork did not reset backoff: %v", w.idle)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if w.idleSleep(canceled) {
		t.Fatal("idleSleep returned true with a canceled context")
	}
}

// TestTransportGzipRoundTrip drives postWire against a real coordinator mux
// and checks the negotiated compression and its accounting: compressible
// bodies shrink on the wire in both directions, and with compression off the
// wire bytes equal the raw bytes (the transport must not gzip behind the
// counters' back).
func TestTransportGzipRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(co.Mux())
	defer srv.Close()

	hc := newWorkerClient()
	ctx := context.Background()
	blob := bytes.Repeat([]byte("spirv-transform-sequence "), 1024) // highly compressible, ~25 KiB

	var put putResponse
	var upSync SyncStats
	if _, err := postWire(ctx, hc, srv.URL, "/blobs/put", putRequest{Blobs: [][]byte{blob}}, &put, true, &upSync); err != nil {
		t.Fatal(err)
	}
	if len(put.Hashes) != 1 {
		t.Fatalf("put returned %d hashes", len(put.Hashes))
	}
	if upSync.WireBytesOut >= upSync.RawBytesOut {
		t.Fatalf("compressible request did not shrink: wire %d raw %d", upSync.WireBytesOut, upSync.RawBytesOut)
	}

	var fetch fetchResponse
	var downSync SyncStats
	if _, err := postWire(ctx, hc, srv.URL, "/blobs/fetch", fetchRequest{Hashes: put.Hashes}, &fetch, true, &downSync); err != nil {
		t.Fatal(err)
	}
	if len(fetch.Blobs) != 1 || !bytes.Equal(fetch.Blobs[0], blob) {
		t.Fatalf("fetched blob differs from stored blob")
	}
	if downSync.WireBytesIn >= downSync.RawBytesIn {
		t.Fatalf("compressible response did not shrink: wire %d raw %d", downSync.WireBytesIn, downSync.RawBytesIn)
	}

	var plain fetchResponse
	var plainSync SyncStats
	if _, err := postWire(ctx, hc, srv.URL, "/blobs/fetch", fetchRequest{Hashes: put.Hashes}, &plain, false, &plainSync); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Blobs[0], blob) {
		t.Fatalf("uncompressed fetch differs from stored blob")
	}
	if plainSync.WireBytesIn != plainSync.RawBytesIn || plainSync.WireBytesOut != plainSync.RawBytesOut {
		t.Fatalf("compression off but wire != raw: %+v", plainSync)
	}
}
