package cluster

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"spirvfuzz/internal/service"
)

// readJSON decodes a request body that may carry Content-Encoding: gzip —
// the worker protocol negotiates compression per request, and every handler
// must accept both codings so mixed clusters (compressing and legacy
// workers against one coordinator) need no handshake.
func readJSON(r *http.Request, v any) error {
	body := r.Body
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(body)
		if err != nil {
			return fmt.Errorf("bad gzip request body: %w", err)
		}
		defer zr.Close()
		return json.NewDecoder(zr).Decode(v)
	}
	return json.NewDecoder(body).Decode(v)
}

// acceptsGzip reports whether the client explicitly asked for gzip
// responses. Workers send Accept-Encoding explicitly either way, so this is
// the negotiation bit, not a heuristic.
func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

// Mux returns the coordinator's complete HTTP API: the same campaign
// endpoints spirvd serves in standalone mode (so the spirvd client and the
// e2e harness work unchanged against a coordinator), plus the worker
// protocol (/cluster/*) and the blob-sync endpoints (/blobs/*). All
// payloads are JSON; errors are {"error": "..."} with a matching status.
func (co *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()

	// Campaign API, mirroring cmd/spirvd's standalone mux.
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec service.CampaignSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		status, err := co.CreateCampaign(spec)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusCreated, status)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		clusterJSON(w, http.StatusOK, co.Campaigns())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, ok := co.Campaign(r.PathValue("id"))
		if !ok {
			clusterError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
			return
		}
		clusterJSON(w, http.StatusOK, status)
	})
	mux.HandleFunc("GET /buckets", func(w http.ResponseWriter, r *http.Request) {
		sets, err := co.Buckets(r.URL.Query().Get("campaign"))
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		if sets == nil {
			sets = []service.BucketSet{}
		}
		clusterJSON(w, http.StatusOK, sets)
	})
	mux.HandleFunc("GET /reports/{hash}", func(w http.ResponseWriter, r *http.Request) {
		blob, err := co.ReportBlob(r.PathValue("hash"))
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
	})
	mux.HandleFunc("POST /bisect", func(w http.ResponseWriter, r *http.Request) {
		var spec service.BisectSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		status, err := co.CreateBisect(spec)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusCreated, status)
	})
	mux.HandleFunc("GET /bisect", func(w http.ResponseWriter, r *http.Request) {
		clusterJSON(w, http.StatusOK, co.BisectJobs())
	})
	mux.HandleFunc("GET /bisect/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, ok := co.BisectJob(r.PathValue("id"))
		if !ok {
			clusterError(w, http.StatusNotFound, fmt.Errorf("no bisect job %q", r.PathValue("id")))
			return
		}
		clusterJSON(w, http.StatusOK, status)
	})
	mux.HandleFunc("GET /bisect/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		set, err := co.BisectResult(r.PathValue("id"))
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		clusterJSON(w, http.StatusOK, set)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		clusterJSON(w, http.StatusOK, co.Metrics())
	})

	// Worker protocol.
	mux.HandleFunc("POST /cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if err := readJSON(r, &req); err != nil || req.Node == "" {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("join needs a node name"))
			return
		}
		ttl := co.Join(req.Node, req.ProcToken)
		clusterJSONN(w, r, http.StatusOK, joinResponse{OK: true, LeaseTTLMS: ttl.Milliseconds()})
	})
	mux.HandleFunc("POST /cluster/next", func(w http.ResponseWriter, r *http.Request) {
		var req nodeRequest
		if err := readJSON(r, &req); err != nil || req.Node == "" {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("next needs a node name"))
			return
		}
		sh, ok := co.Next(req.Node)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		clusterJSONN(w, r, http.StatusOK, sh)
	})
	mux.HandleFunc("POST /cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req nodeRequest
		if err := readJSON(r, &req); err != nil || req.Node == "" {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("heartbeat needs a node name"))
			return
		}
		co.Heartbeat(req.Node)
		clusterJSONN(w, r, http.StatusOK, okResponse{OK: true})
	})
	mux.HandleFunc("POST /cluster/result", func(w http.ResponseWriter, r *http.Request) {
		var res ShardResult
		if err := readJSON(r, &res); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		if err := co.Result(res); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, okResponse{OK: true})
	})
	// Batched protocol: one round trip folds blob pushes/fetches/offers,
	// memo sync legs, and optionally the shard result itself. Responses are
	// compact JSON with negotiated gzip.
	mux.HandleFunc("POST /cluster/sync", func(w http.ResponseWriter, r *http.Request) {
		var req syncRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := co.SyncBatch(req)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSONC(w, r, http.StatusOK, resp)
	})

	// Blob-sync protocol against the coordinator's authoritative store.
	mux.HandleFunc("POST /blobs/has", func(w http.ResponseWriter, r *http.Request) {
		var req hasRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, hasResponse{Has: co.st.HasBatch(req.Hashes)})
	})
	mux.HandleFunc("POST /blobs/put", func(w http.ResponseWriter, r *http.Request) {
		var req putRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		hashes, err := co.st.PutBatch(req.Blobs)
		if err != nil {
			clusterError(w, http.StatusInternalServerError, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, putResponse{Hashes: hashes})
	})
	mux.HandleFunc("POST /blobs/fetch", func(w http.ResponseWriter, r *http.Request) {
		var req fetchRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		blobs, err := co.st.GetBatch(req.Hashes)
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, fetchResponse{Blobs: blobs})
	})

	// Memo-sync protocol against the coordinator's memo hub. All four
	// endpoints are nil-safe: a coordinator without a memo store answers
	// /memo/keys with ok=false (the worker disables sync) and degrades the
	// rest to no-ops, so mixed deployments need no configuration handshake.
	mux.HandleFunc("POST /memo/keys", func(w http.ResponseWriter, r *http.Request) {
		var req memoKeysRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, co.memoKeys(req.Since))
	})
	mux.HandleFunc("POST /memo/has", func(w http.ResponseWriter, r *http.Request) {
		var req memoHasRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, co.memoHas(req.Keys))
	})
	mux.HandleFunc("POST /memo/fetch", func(w http.ResponseWriter, r *http.Request) {
		var req memoFetchRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := co.memoFetch(req.Keys)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /memo/push", func(w http.ResponseWriter, r *http.Request) {
		var req memoPushRequest
		if err := readJSON(r, &req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		if _, err := co.memoPush(req.Records); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSONN(w, r, http.StatusOK, okResponse{OK: true})
	})
	return mux
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clusterJSONN is clusterJSON with negotiated response compression: the
// same indented encoding the protocol has always used (so a legacy worker
// sees byte-identical responses), gzip-coded only when the client asked for
// it and the body clears the size floor.
func clusterJSONN(w http.ResponseWriter, r *http.Request, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	data = append(data, '\n')
	writeNegotiated(w, r, status, data)
}

// clusterJSONC is the batched endpoint's encoder: compact JSON (the batched
// protocol is new, so there is no byte image to preserve and no reason to
// ship indentation), gzip negotiated the same way.
func clusterJSONC(w http.ResponseWriter, r *http.Request, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	writeNegotiated(w, r, status, data)
}

func writeNegotiated(w http.ResponseWriter, r *http.Request, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	if acceptsGzip(r) && len(data) >= gzipMinBytes {
		w.Header().Set("Content-Encoding", "gzip")
		w.WriteHeader(status)
		zw := gzip.NewWriter(w)
		zw.Write(data)
		zw.Close()
		return
	}
	w.WriteHeader(status)
	w.Write(data)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	clusterJSON(w, status, map[string]string{"error": err.Error()})
}
