package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"spirvfuzz/internal/service"
)

// Mux returns the coordinator's complete HTTP API: the same campaign
// endpoints spirvd serves in standalone mode (so the spirvd client and the
// e2e harness work unchanged against a coordinator), plus the worker
// protocol (/cluster/*) and the blob-sync endpoints (/blobs/*). All
// payloads are JSON; errors are {"error": "..."} with a matching status.
func (co *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()

	// Campaign API, mirroring cmd/spirvd's standalone mux.
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec service.CampaignSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		status, err := co.CreateCampaign(spec)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusCreated, status)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		clusterJSON(w, http.StatusOK, co.Campaigns())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, ok := co.Campaign(r.PathValue("id"))
		if !ok {
			clusterError(w, http.StatusNotFound, fmt.Errorf("no campaign %q", r.PathValue("id")))
			return
		}
		clusterJSON(w, http.StatusOK, status)
	})
	mux.HandleFunc("GET /buckets", func(w http.ResponseWriter, r *http.Request) {
		sets, err := co.Buckets(r.URL.Query().Get("campaign"))
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		if sets == nil {
			sets = []service.BucketSet{}
		}
		clusterJSON(w, http.StatusOK, sets)
	})
	mux.HandleFunc("GET /reports/{hash}", func(w http.ResponseWriter, r *http.Request) {
		blob, err := co.ReportBlob(r.PathValue("hash"))
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
	})
	mux.HandleFunc("POST /bisect", func(w http.ResponseWriter, r *http.Request) {
		var spec service.BisectSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		status, err := co.CreateBisect(spec)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusCreated, status)
	})
	mux.HandleFunc("GET /bisect", func(w http.ResponseWriter, r *http.Request) {
		clusterJSON(w, http.StatusOK, co.BisectJobs())
	})
	mux.HandleFunc("GET /bisect/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, ok := co.BisectJob(r.PathValue("id"))
		if !ok {
			clusterError(w, http.StatusNotFound, fmt.Errorf("no bisect job %q", r.PathValue("id")))
			return
		}
		clusterJSON(w, http.StatusOK, status)
	})
	mux.HandleFunc("GET /bisect/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		set, err := co.BisectResult(r.PathValue("id"))
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		clusterJSON(w, http.StatusOK, set)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		clusterJSON(w, http.StatusOK, co.Metrics())
	})

	// Worker protocol.
	mux.HandleFunc("POST /cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Node == "" {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("join needs a node name"))
			return
		}
		ttl := co.Join(req.Node, req.ProcToken)
		clusterJSON(w, http.StatusOK, joinResponse{OK: true, LeaseTTLMS: ttl.Milliseconds()})
	})
	mux.HandleFunc("POST /cluster/next", func(w http.ResponseWriter, r *http.Request) {
		var req nodeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Node == "" {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("next needs a node name"))
			return
		}
		sh, ok := co.Next(req.Node)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		clusterJSON(w, http.StatusOK, sh)
	})
	mux.HandleFunc("POST /cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req nodeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Node == "" {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("heartbeat needs a node name"))
			return
		}
		co.Heartbeat(req.Node)
		clusterJSON(w, http.StatusOK, okResponse{OK: true})
	})
	mux.HandleFunc("POST /cluster/result", func(w http.ResponseWriter, r *http.Request) {
		var res ShardResult
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		if err := co.Result(res); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusOK, okResponse{OK: true})
	})

	// Blob-sync protocol against the coordinator's authoritative store.
	mux.HandleFunc("POST /blobs/has", func(w http.ResponseWriter, r *http.Request) {
		var req hasRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusOK, hasResponse{Has: co.st.HasBatch(req.Hashes)})
	})
	mux.HandleFunc("POST /blobs/put", func(w http.ResponseWriter, r *http.Request) {
		var req putRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		hashes, err := co.st.PutBatch(req.Blobs)
		if err != nil {
			clusterError(w, http.StatusInternalServerError, err)
			return
		}
		clusterJSON(w, http.StatusOK, putResponse{Hashes: hashes})
	})
	mux.HandleFunc("POST /blobs/fetch", func(w http.ResponseWriter, r *http.Request) {
		var req fetchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		blobs, err := co.st.GetBatch(req.Hashes)
		if err != nil {
			clusterError(w, http.StatusNotFound, err)
			return
		}
		clusterJSON(w, http.StatusOK, fetchResponse{Blobs: blobs})
	})

	// Memo-sync protocol against the coordinator's memo hub. All four
	// endpoints are nil-safe: a coordinator without a memo store answers
	// /memo/keys with ok=false (the worker disables sync) and degrades the
	// rest to no-ops, so mixed deployments need no configuration handshake.
	mux.HandleFunc("POST /memo/keys", func(w http.ResponseWriter, r *http.Request) {
		var req memoKeysRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusOK, co.memoKeys(req.Since))
	})
	mux.HandleFunc("POST /memo/has", func(w http.ResponseWriter, r *http.Request) {
		var req memoHasRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusOK, co.memoHas(req.Keys))
	})
	mux.HandleFunc("POST /memo/fetch", func(w http.ResponseWriter, r *http.Request) {
		var req memoFetchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := co.memoFetch(req.Keys)
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /memo/push", func(w http.ResponseWriter, r *http.Request) {
		var req memoPushRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		if _, err := co.memoPush(req.Records); err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		clusterJSON(w, http.StatusOK, okResponse{OK: true})
	})
	return mux
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	clusterJSON(w, status, map[string]string{"error": err.Error()})
}
