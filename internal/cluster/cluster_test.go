package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/store"
)

// testSpec is the canonical campaign every cluster test runs: small enough
// to finish in seconds, large enough to produce bugs on several targets and
// exercise both phases across multiple shards.
func testSpec() service.CampaignSpec {
	return service.CampaignSpec{Tests: 12}
}

// testOpts shards finely and leases briefly, so a handful of tests exercise
// dispatch, locality, and requeue for real.
func testOpts() Options {
	return Options{ShardTests: 2, ShardCases: 1, LeaseTTL: 300 * time.Millisecond}
}

var (
	refOnce    sync.Once
	refBuckets []byte
	refErr     error
)

// referenceBuckets runs testSpec once on the single-node service and returns
// the canonical bucket JSON every cluster configuration must reproduce
// bitwise. Computed lazily and shared across tests.
func referenceBuckets(t *testing.T) []byte {
	t.Helper()
	refOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cluster-ref-*")
		if err != nil {
			refErr = err
			return
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir)
		if err != nil {
			refErr = err
			return
		}
		svc, err := service.New(st, service.Options{Workers: 4})
		if err != nil {
			refErr = err
			return
		}
		defer svc.Close(context.Background())
		status, err := svc.CreateCampaign(testSpec())
		if err != nil {
			refErr = err
			return
		}
		if err := waitDone(func() (service.CampaignStatus, bool) { return svc.Campaign(status.ID) }); err != nil {
			refErr = err
			return
		}
		sets, err := svc.Buckets(status.ID)
		if err != nil {
			refErr = err
			return
		}
		refBuckets, refErr = json.Marshal(sets)
	})
	if refErr != nil {
		t.Fatalf("single-node reference run: %v", refErr)
	}
	return refBuckets
}

type statusFn func() (service.CampaignStatus, bool)

// waitDone polls a campaign status until done (or failed / timed out).
func waitDone(get statusFn) error {
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := get()
		if ok {
			switch st.State {
			case service.StateDone:
				return nil
			case service.StateFailed:
				return errAsFailure(st)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return context.DeadlineExceeded
}

func errAsFailure(st service.CampaignStatus) error {
	return &campaignFailedError{st.Error}
}

type campaignFailedError struct{ msg string }

func (e *campaignFailedError) Error() string { return "campaign failed: " + e.msg }

func clusterBuckets(t *testing.T, co *Coordinator, id string) []byte {
	t.Helper()
	sets, err := co.Buckets(id)
	if err != nil {
		t.Fatalf("Buckets: %v", err)
	}
	data, err := json.Marshal(sets)
	if err != nil {
		t.Fatalf("marshal buckets: %v", err)
	}
	return data
}

// TestCorpusBlobRoundtrip pins the workers' view of the corpus: every
// reference item survives encode→blob→decode with its module binary and
// canonical inputs intact, which is what entitles a worker to fuzz from
// synced blobs and reach bit-identical variants.
func TestCorpusBlobRoundtrip(t *testing.T) {
	for _, it := range corpus.References() {
		data, err := encodeCorpusItem(it)
		if err != nil {
			t.Fatalf("%s: encode: %v", it.Name, err)
		}
		back, err := decodeCorpusItem(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", it.Name, err)
		}
		if back.Name != it.Name {
			t.Fatalf("%s: name round-tripped to %q", it.Name, back.Name)
		}
		if !bytes.Equal(back.Mod.EncodeBytes(), it.Mod.EncodeBytes()) {
			t.Fatalf("%s: module binary changed across round-trip", it.Name)
		}
		again, err := encodeCorpusItem(back)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", it.Name, err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("%s: corpus blob not canonical (re-encode differs)", it.Name)
		}
	}
}

// TestClusterMatchesSingleNode is the core merge-soundness claim: a 3-node
// simulated cluster produces buckets bitwise-identical to a single-node run
// of the same campaign, with most referenced blob bytes deduplicated by the
// hash negotiation.
func TestClusterMatchesSingleNode(t *testing.T) {
	want := referenceBuckets(t)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	sim, err := StartSim(co, 3, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()

	status, err := co.CreateCampaign(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	if got := clusterBuckets(t, co, status.ID); !bytes.Equal(got, want) {
		t.Fatalf("3-node buckets differ from single-node run:\n got %s\nwant %s", got, want)
	}
	m := co.Metrics()
	if m.Cluster.ShardsCompleted == 0 || m.Cluster.ShardsDispatched < m.Cluster.ShardsCompleted {
		t.Fatalf("implausible shard counters: %+v", m.Cluster)
	}
	if m.Cluster.Sync.BlobsTransferred == 0 || m.Cluster.Sync.BytesReferenced == 0 {
		t.Fatalf("no blob sync traffic recorded: %+v", m.Cluster.Sync)
	}
	if frac := m.Cluster.BlobDedupFraction; frac < 0.5 {
		t.Fatalf("blob dedup fraction %.2f, want >= 0.5 (sync %+v)", frac, m.Cluster.Sync)
	}
	if m.Runner.Misses == 0 {
		t.Fatalf("merged runner stats show no executions: %+v", m.Runner)
	}
	if m.CampaignsDone != 1 {
		t.Fatalf("CampaignsDone = %d, want 1", m.CampaignsDone)
	}
}

// TestClusterKillRejoin SIGKILLs (in-process: hard-cancels) a worker that
// holds a reduce-shard lease, lets a cold new node join, and requires the
// converged buckets to still be bitwise-identical to the single-node run —
// the degraded-cluster half of the acceptance criteria.
func TestClusterKillRejoin(t *testing.T) {
	want := referenceBuckets(t)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	sim, err := StartSim(co, 3, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()

	spec := testSpec()
	spec.ReduceSlowdownMS = 25 // stretch reductions so the kill lands mid-shard
	status, err := co.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until some node is mid-reduction (holds a reduce lease), then
	// kill exactly that node.
	victim := ""
	deadline := time.Now().Add(120 * time.Second)
	for victim == "" && time.Now().Before(deadline) {
		co.mu.Lock()
		for _, ss := range co.leased {
			if ss.phase == PhaseReduce {
				victim = ss.node
				break
			}
		}
		co.mu.Unlock()
		if victim == "" {
			if cst, _ := co.Campaign(status.ID); cst.State == service.StateDone {
				t.Fatalf("campaign finished before a reduce lease was observed; slow down the spec")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if victim == "" {
		t.Fatalf("no reduce lease observed before timeout")
	}
	sim.KillWorker(victim)
	if _, err := sim.AddWorker(); err != nil {
		t.Fatal(err)
	}

	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	if got := clusterBuckets(t, co, status.ID); !bytes.Equal(got, want) {
		t.Fatalf("post-kill buckets differ from single-node run:\n got %s\nwant %s", got, want)
	}
	if m := co.Metrics(); m.Cluster.ShardsRequeued == 0 {
		t.Fatalf("killed a leased node but no shard was requeued: %+v", m.Cluster)
	}
}

// TestCoordinatorResumeTornTail kills the whole cluster mid-campaign,
// corrupts the journal with a torn trailing record (the on-disk state a
// SIGKILL mid-append leaves), and restarts the coordinator with fresh
// workers: journaled shards must be skipped, the torn record discarded, and
// the converged buckets bitwise-identical to the single-node run.
func TestCoordinatorResumeTornTail(t *testing.T) {
	want := referenceBuckets(t)

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := StartSim(co, 3, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}

	spec := testSpec()
	spec.ReduceSlowdownMS = 25
	status, err := co.CreateCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the campaign get partway: all fuzz shards plus at least one
	// reduction journaled.
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		cst, _ := co.Campaign(status.ID)
		if cst.Reduced >= 1 {
			break
		}
		if cst.State == service.StateDone {
			t.Fatalf("campaign finished before the interruption point")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill everything, then tear the journal tail.
	sim.Stop()
	co.Close()
	st.Close()
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999999,"campaign":"c001","type":"cluster_shard_done","data":{"phase":"redu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	co2, err := NewCoordinator(st2, testOpts())
	if err != nil {
		t.Fatalf("reopen over torn journal: %v", err)
	}
	defer co2.Close()
	cst, ok := co2.Campaign(status.ID)
	if !ok {
		t.Fatalf("campaign lost across restart")
	}
	if cst.SkippedTests == 0 && cst.SkippedReductions == 0 {
		t.Fatalf("restart skipped nothing; journal replay is not reusing shards: %+v", cst)
	}
	sim2, err := StartSim(co2, 3, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sim2.Stop()
	if err := waitDone(func() (service.CampaignStatus, bool) { return co2.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	if got := clusterBuckets(t, co2, status.ID); !bytes.Equal(got, want) {
		t.Fatalf("resumed buckets differ from single-node run:\n got %s\nwant %s", got, want)
	}
	if m := co2.Metrics(); m.JobsSkipped == 0 {
		t.Fatalf("resume reported no skipped steps")
	}
}

// TestCoordinatorKilledMidMerge models a coordinator killed between the last
// shard result and the campaign_done record: every shard is journaled, the
// bucket checkpoint and completion record are gone, and the tail is torn.
// Recovery must rebuild the identical buckets from the journal alone,
// without any workers.
func TestCoordinatorKilledMidMerge(t *testing.T) {
	want := referenceBuckets(t)

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := StartSim(co, 3, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	status, err := co.CreateCampaign(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	sim.Stop()
	co.Close()
	st.Close()

	// Strip the campaign_done record, delete the checkpoint, tear the tail.
	jpath := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	kept := lines[:0]
	for _, ln := range lines {
		if strings.Contains(ln, recCampaignDone) {
			continue
		}
		kept = append(kept, ln)
	}
	out := strings.Join(kept, "\n") + "\n" + `{"seq":999999,"campaign":"c001","type":"cluster_camp`
	if err := os.WriteFile(jpath, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "checkpoints", "buckets-"+status.ID+".json")); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	co2, err := NewCoordinator(st2, testOpts())
	if err != nil {
		t.Fatalf("reopen after mid-merge kill: %v", err)
	}
	defer co2.Close()
	cst, ok := co2.Campaign(status.ID)
	if !ok || cst.State != service.StateDone {
		t.Fatalf("campaign did not re-merge from the journal: %+v", cst)
	}
	if got := clusterBuckets(t, co2, status.ID); !bytes.Equal(got, want) {
		t.Fatalf("re-merged buckets differ from single-node run:\n got %s\nwant %s", got, want)
	}
}

// referenceBisect runs testSpec plus a bisection job once on the single-node
// service and returns the canonical BisectSet JSON. Shared like
// referenceBuckets.
var (
	refBisectOnce sync.Once
	refBisect     []byte
	refBisectErr  error
)

func referenceBisect(t *testing.T) []byte {
	t.Helper()
	refBisectOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cluster-bisect-ref-*")
		if err != nil {
			refBisectErr = err
			return
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir)
		if err != nil {
			refBisectErr = err
			return
		}
		svc, err := service.New(st, service.Options{Workers: 4})
		if err != nil {
			refBisectErr = err
			return
		}
		defer svc.Close(context.Background())
		status, err := svc.CreateCampaign(testSpec())
		if err != nil {
			refBisectErr = err
			return
		}
		if err := waitDone(func() (service.CampaignStatus, bool) { return svc.Campaign(status.ID) }); err != nil {
			refBisectErr = err
			return
		}
		job, err := svc.CreateBisect(service.BisectSpec{Campaign: status.ID})
		if err != nil {
			refBisectErr = err
			return
		}
		if err := waitBisectDone(func() (service.BisectStatus, bool) { return svc.BisectJob(job.ID) }); err != nil {
			refBisectErr = err
			return
		}
		set, err := svc.BisectResult(job.ID)
		if err != nil {
			refBisectErr = err
			return
		}
		refBisect, refBisectErr = json.Marshal(set)
	})
	if refBisectErr != nil {
		t.Fatalf("single-node reference bisection: %v", refBisectErr)
	}
	return refBisect
}

// waitBisectDone polls a bisect-job status until done (or failed/timed out).
func waitBisectDone(get func() (service.BisectStatus, bool)) error {
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := get()
		if ok {
			switch st.State {
			case service.StateDone:
				return nil
			case service.StateFailed:
				return &campaignFailedError{st.Error}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return context.DeadlineExceeded
}

// TestClusterBisectMatchesSingleNode extends the merge-soundness claim to the
// second dedup signal: a bisection job sharded one case group at a time over
// a 3-node cluster converges on a BisectSet bitwise-identical to the
// single-node service's, and the coordinator surfaces the jobs and probe
// counters in its metrics.
func TestClusterBisectMatchesSingleNode(t *testing.T) {
	want := referenceBisect(t)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	sim, err := StartSim(co, 3, t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()

	status, err := co.CreateCampaign(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// A bisect job cannot target a campaign that is still running.
	if _, err := co.CreateBisect(service.BisectSpec{Campaign: status.ID}); err == nil {
		t.Fatal("bisect of a running campaign accepted")
	}
	if err := waitDone(func() (service.CampaignStatus, bool) { return co.Campaign(status.ID) }); err != nil {
		t.Fatal(err)
	}
	job, err := co.CreateBisect(service.BisectSpec{Campaign: status.ID})
	if err != nil {
		t.Fatal(err)
	}
	if err := waitBisectDone(func() (service.BisectStatus, bool) { return co.BisectJob(job.ID) }); err != nil {
		t.Fatal(err)
	}
	set, err := co.BisectResult(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("3-node bisect set differs from single-node run:\n got %s\nwant %s", got, want)
	}
	m := co.Metrics()
	if m.BisectJobs != 1 || m.BisectJobsDone != 1 {
		t.Fatalf("bisect job counters: %+v", m)
	}
	if m.Bisect.Bisections == 0 || m.Bisect.Queries == 0 {
		t.Fatalf("no bisection probes recorded: %+v", m.Bisect)
	}
	if m.Bisect.HitFraction() < 0.5 {
		t.Fatalf("cluster bisect cache-hit fraction %.2f, want >= 0.5 (%+v)", m.Bisect.HitFraction(), m.Bisect)
	}
}

// TestCoordinatorRejectsPrecheck: the cross-bucket pre-check is serial by
// design, so the coordinator must refuse it rather than shard it unsoundly.
func TestCoordinatorRejectsPrecheck(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	co, err := NewCoordinator(st, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	spec := testSpec()
	spec.CrossBucketPrecheck = true
	if _, err := co.CreateCampaign(spec); err == nil || !strings.Contains(err.Error(), "not cluster-shardable") {
		t.Fatalf("precheck campaign accepted by coordinator: %v", err)
	}
}
