// Package cluster distributes spirvd campaigns across worker nodes: a
// coordinator shards each campaign's seed range into jobs, dispatches them
// over HTTP/JSON to pull-model workers, and merges the returned records into
// one campaign result.
//
// The design leans entirely on two properties the single-node pipeline
// already has:
//
//   - Every pipeline step is deterministic in (spec, step index), and the
//     coordinator and workers run the *same* step functions
//     (internal/service.FuzzStep, ReduceStep, SelectReductions,
//     BuildBuckets). Fuzz shards are contiguous test-index ranges whose
//     boundaries do not depend on the node count; reduction selection and
//     bucket deduplication run centrally on the coordinator over the merged
//     per-test records, in the same canonical order a single node uses. So a
//     3-node campaign — including one where a worker was SIGKILL'd and its
//     shards re-dispatched — produces buckets bitwise-identical to a
//     single-node run.
//
//   - Artifacts are content-addressed (internal/store), so blob transfer is
//     a hash negotiation: each shard carries a (hash, size) manifest of the
//     blobs it needs, a worker fetches only the ones its local store lacks,
//     and pushes back only result blobs the coordinator does not already
//     have. Repeated references — the shared reference corpus, sequences
//     that reduce on the node that fuzzed them, re-pushed artifacts after a
//     rejoin — cost nothing on the wire. The dedup fraction (1 −
//     transferred/referenced bytes) is tracked per shard and reported in
//     coordinator /metrics.
//
// Workers hold no durable campaign state: the coordinator journals every
// completed shard in its write-ahead journal, re-queues shards whose lease
// expired (node killed mid-shard), and on restart replays the journal and
// re-dispatches only the missing shards.
package cluster

import (
	"encoding/json"
	"fmt"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/service"
	"spirvfuzz/internal/spirv"
)

// Shard phases, in pipeline order. PhaseBisect shards belong to bisection
// jobs (one shard per case group), not campaigns.
const (
	PhaseFuzz   = "fuzz"
	PhaseReduce = "reduce"
	PhaseBisect = "bisect"
)

// BlobRef names a blob by content hash and size. Manifests of BlobRefs are
// how shards describe their inputs: the size lets both sides account
// referenced bytes without transferring anything.
type BlobRef struct {
	Hash string `json:"hash"`
	Size int64  `json:"size"`
}

// Shard is one dispatchable unit of campaign work. A fuzz shard covers the
// contiguous test range [Lo, Hi); a reduce shard carries its selected cases
// explicitly. Both embed the normalized spec and the campaign's corpus
// manifest (ordered — index i of the manifest is reference i of the
// campaign), so a worker needs no out-of-band configuration.
type Shard struct {
	// Campaign is the owning job's ID: a campaign ID for fuzz/reduce shards,
	// a bisection-job ID ("b001", ...) for bisect shards.
	Campaign string               `json:"campaign"`
	Phase    string               `json:"phase"`
	Index    int                  `json:"index"`
	Spec     service.CampaignSpec `json:"spec"`
	Lo       int                  `json:"lo,omitempty"`
	Hi       int                  `json:"hi,omitempty"`
	Cases    []service.ReduceCase `json:"cases,omitempty"`
	// Recs carries a bisect shard's case group: the reduction records whose
	// report blobs (listed in Needs) the worker replays and bisects.
	Recs   []service.ReducedRec `json:"recs,omitempty"`
	Corpus []BlobRef            `json:"corpus"`
	// Needs lists extra input blobs beyond the corpus (for reduce shards the
	// journaled transformation sequences, for bisect shards the reduced
	// report blobs of the cases).
	Needs []BlobRef `json:"needs,omitempty"`
}

// Key identifies a shard uniquely within a coordinator.
func (s *Shard) Key() string {
	return fmt.Sprintf("%s/%s/%d", s.Campaign, s.Phase, s.Index)
}

// TestResult is one fuzz-phase step result: test Index was generated and
// classified, finding Bugs (artifacts pushed to the coordinator by hash).
type TestResult struct {
	Index int              `json:"index"`
	Bugs  []service.BugRef `json:"bugs,omitempty"`
}

// ShardResult is a worker's report for one executed shard.
type ShardResult struct {
	Campaign  string `json:"campaign"`
	Phase     string `json:"phase"`
	Index     int    `json:"index"`
	Node      string `json:"node"`
	ProcToken string `json:"proc_token"`
	// Error marks a deterministic shard failure; re-dispatching would fail
	// identically, so the coordinator fails the campaign.
	Error   string                  `json:"error,omitempty"`
	Tests   []TestResult            `json:"tests,omitempty"`
	Reduced []service.ReducedRec    `json:"reduced,omitempty"`
	Bisects []service.BisectOutcome `json:"bisects,omitempty"`
	// Sync is this shard's blob-sync delta (both directions, as accounted by
	// the worker); Runner, Replay and Bisect are the node's cumulative engine
	// snapshots, aggregated coordinator-side (runner.MergeStats for Runner)
	// so process-wide counters are never double-counted.
	Sync   SyncStats    `json:"sync"`
	Runner runner.Stats `json:"runner"`
	Replay replay.Stats `json:"replay"`
	Bisect bisect.Stats `json:"bisect"`
	// ServiceNanos is the wall time the worker spent executing the shard's
	// units (excluding sync), the numerator of the coordinator's adaptive
	// shard-sizing EWMA.
	ServiceNanos int64 `json:"service_nanos,omitempty"`
}

// SyncStats accounts blob-sync traffic: how many bytes shard manifests
// referenced versus how many actually crossed the wire. The gap is the
// content-address dedup the protocol gets for free.
type SyncStats struct {
	BlobsReferenced  uint64 `json:"blobs_referenced"`
	BytesReferenced  uint64 `json:"bytes_referenced"`
	BlobsTransferred uint64 `json:"blobs_transferred"`
	BytesTransferred uint64 `json:"bytes_transferred"`
	// MemoPulled and MemoPushed count execution-memo records the worker
	// received from / sent to the coordinator around this shard (the
	// join-time warm pull is attributed to the node's first shard). Zero
	// when either side runs without a memo store.
	MemoPulled uint64 `json:"memo_pulled,omitempty"`
	MemoPushed uint64 `json:"memo_pushed,omitempty"`
	// Transport accounting: coordinator round trips made for this shard, and
	// the body bytes that crossed the wire versus their raw (pre-gzip) JSON
	// size, both directions. The raw/wire gap is the compression win; the
	// round-trip count is what batching collapses.
	RoundTrips   uint64 `json:"round_trips,omitempty"`
	WireBytesOut uint64 `json:"wire_bytes_out,omitempty"`
	WireBytesIn  uint64 `json:"wire_bytes_in,omitempty"`
	RawBytesOut  uint64 `json:"raw_bytes_out,omitempty"`
	RawBytesIn   uint64 `json:"raw_bytes_in,omitempty"`
	// Prefetched counts shards whose lease+sync were pipelined behind the
	// previous shard's execution; Nanos is the wall time spent syncing
	// (wherever it ran), the denominator of the adaptive-sizing EWMA.
	Prefetched uint64 `json:"prefetched,omitempty"`
	Nanos      int64  `json:"nanos,omitempty"`
}

func (s *SyncStats) add(o SyncStats) {
	s.BlobsReferenced += o.BlobsReferenced
	s.BytesReferenced += o.BytesReferenced
	s.BlobsTransferred += o.BlobsTransferred
	s.BytesTransferred += o.BytesTransferred
	s.MemoPulled += o.MemoPulled
	s.MemoPushed += o.MemoPushed
	s.RoundTrips += o.RoundTrips
	s.WireBytesOut += o.WireBytesOut
	s.WireBytesIn += o.WireBytesIn
	s.RawBytesOut += o.RawBytesOut
	s.RawBytesIn += o.RawBytesIn
	s.Prefetched += o.Prefetched
	s.Nanos += o.Nanos
}

// DedupFraction returns the fraction of referenced bytes that did NOT need
// transferring; 0 before any reference.
func (s SyncStats) DedupFraction() float64 {
	if s.BytesReferenced == 0 {
		return 0
	}
	return 1 - float64(s.BytesTransferred)/float64(s.BytesReferenced)
}

// Wire bodies of the coordinator's cluster endpoints. [][]byte fields
// marshal as arrays of base64 strings, which is the blob encoding on the
// wire.
type (
	joinRequest struct {
		Node      string `json:"node"`
		ProcToken string `json:"proc_token"`
	}
	joinResponse struct {
		OK         bool  `json:"ok"`
		LeaseTTLMS int64 `json:"lease_ttl_ms"`
	}
	nodeRequest struct {
		Node string `json:"node"`
	}
	hasRequest struct {
		Hashes []string `json:"hashes"`
	}
	hasResponse struct {
		Has []bool `json:"has"`
	}
	putRequest struct {
		Blobs [][]byte `json:"blobs"`
	}
	putResponse struct {
		Hashes []string `json:"hashes"`
	}
	fetchRequest struct {
		Hashes []string `json:"hashes"`
	}
	fetchResponse struct {
		Blobs [][]byte `json:"blobs"`
	}
	okResponse struct {
		OK bool `json:"ok"`
	}

	// syncRequest/syncResponse are the batched protocol: one POST
	// /cluster/sync round trip folds together what the legacy protocol
	// spreads over /blobs/has+put+fetch, /memo/keys+has+fetch+push and
	// /cluster/result. Every field is optional; the coordinator processes
	// pushes before the folded Result (so merged records always see their
	// blobs) and queries last. Any /cluster/sync request also renews the
	// node's leases, so a batched exchange doubles as a heartbeat.
	syncRequest struct {
		Node string `json:"node"`
		// Blob legs: fetch by hash, offer refs (response says which to push
		// next time), push bodies.
		BlobFetch []string  `json:"blob_fetch,omitempty"`
		BlobOffer []BlobRef `json:"blob_offer,omitempty"`
		BlobPush  [][]byte  `json:"blob_push,omitempty"`
		// Memo legs, mirroring /memo/keys|fetch|has|push.
		MemoSince *uint64      `json:"memo_since,omitempty"`
		MemoFetch []string     `json:"memo_fetch,omitempty"`
		MemoOffer []string     `json:"memo_offer,omitempty"`
		MemoPush  []memoRecord `json:"memo_push,omitempty"`
		// Result, when set, is the shard report folded into this round trip.
		Result *ShardResult `json:"result,omitempty"`
	}
	syncResponse struct {
		OK          bool         `json:"ok"`
		Blobs       [][]byte     `json:"blobs,omitempty"`
		BlobWant    []bool       `json:"blob_want,omitempty"`
		MemoOK      bool         `json:"memo_ok,omitempty"`
		MemoKeys    []string     `json:"memo_keys,omitempty"`
		MemoMark    uint64       `json:"memo_mark,omitempty"`
		MemoRecords []memoRecord `json:"memo_records,omitempty"`
		MemoWant    []bool       `json:"memo_want,omitempty"`
	}
)

// corpusBlob is the blob encoding of one reference corpus item: the module
// in its deterministic SPIR-V binary form and the inputs in their canonical
// JSON form. Decoding round-trips exactly (both codecs are pinned by tests),
// so a worker fuzzing from a synced blob draws the same module walk — and
// therefore the same variants and signatures — as the coordinator would.
type corpusBlob struct {
	Name   string          `json:"name"`
	Module []byte          `json:"module"`
	Inputs json.RawMessage `json:"inputs"`
}

func encodeCorpusItem(it corpus.Item) ([]byte, error) {
	inputs, err := interp.EncodeInputs(it.Inputs)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode corpus item %s: %w", it.Name, err)
	}
	return json.Marshal(corpusBlob{Name: it.Name, Module: it.Mod.EncodeBytes(), Inputs: inputs})
}

func decodeCorpusItem(data []byte) (corpus.Item, error) {
	var cb corpusBlob
	if err := json.Unmarshal(data, &cb); err != nil {
		return corpus.Item{}, fmt.Errorf("cluster: corpus blob: %w", err)
	}
	mod, err := spirv.DecodeBytes(cb.Module)
	if err != nil {
		return corpus.Item{}, fmt.Errorf("cluster: corpus blob %s: %w", cb.Name, err)
	}
	in, err := interp.ParseInputs(cb.Inputs)
	if err != nil {
		return corpus.Item{}, fmt.Errorf("cluster: corpus blob %s: %w", cb.Name, err)
	}
	return corpus.Item{Name: cb.Name, Mod: mod, Inputs: in}, nil
}
