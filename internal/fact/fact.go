// Package fact implements the fact manager of Section 3.2. Transformations
// establish facts as they rewrite a module, and later transformations'
// preconditions take those facts on trust:
//
//   - DeadBlock(b): block b will never be executed;
//   - Synonymous(u[i⃗], v[j⃗]): the values agree wherever both are available;
//   - Irrelevant(i): the value of id i does not affect the final result;
//   - IrrelevantPointee(p): the data pointed to by p does not affect the
//     final result;
//   - LiveSafe(f): calling f from anywhere does not affect the final result
//     so long as IrrelevantPointee pointers are passed for pointer args.
//
// Facts are never serialized: a transformation sequence replayed from the
// original context re-establishes exactly the facts it needs.
package fact

import (
	"fmt"
	"sort"
	"strings"

	"spirvfuzz/internal/spirv"
)

// Access names a value or a component of a composite value: the id plus a
// vector of literal indices (empty for the whole value). Synonymous facts
// relate accesses.
type Access struct {
	ID   spirv.ID
	Path []uint32
}

// A returns a whole-value access.
func A(id spirv.ID) Access { return Access{ID: id} }

// At returns a component access.
func At(id spirv.ID, path ...uint32) Access { return Access{ID: id, Path: path} }

// Key returns a canonical string for map keys.
func (a Access) Key() string {
	if len(a.Path) == 0 {
		return fmt.Sprintf("%%%d", a.ID)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%%%d", a.ID)
	for _, i := range a.Path {
		fmt.Fprintf(&sb, "[%d]", i)
	}
	return sb.String()
}

// Set is a fact set. The zero value is not usable; call NewSet.
type Set struct {
	dead              map[spirv.ID]bool
	irrelevant        map[spirv.ID]bool
	irrelevantPointee map[spirv.ID]bool
	liveSafe          map[spirv.ID]bool

	// Synonym equivalence classes: union-find over access keys.
	parent map[string]string
	access map[string]Access
}

// NewSet returns an empty fact set.
func NewSet() *Set {
	return &Set{
		dead:              make(map[spirv.ID]bool),
		irrelevant:        make(map[spirv.ID]bool),
		irrelevantPointee: make(map[spirv.ID]bool),
		liveSafe:          make(map[spirv.ID]bool),
		parent:            make(map[string]string),
		access:            make(map[string]Access),
	}
}

// Clone deep-copies the set. Maps are presized from the source: replay-heavy
// reduction clones fact sets on every ddmin query, so avoiding rehash growth
// matters.
func (s *Set) Clone() *Set {
	c := &Set{
		dead:              make(map[spirv.ID]bool, len(s.dead)),
		irrelevant:        make(map[spirv.ID]bool, len(s.irrelevant)),
		irrelevantPointee: make(map[spirv.ID]bool, len(s.irrelevantPointee)),
		liveSafe:          make(map[spirv.ID]bool, len(s.liveSafe)),
		parent:            make(map[string]string, len(s.parent)),
		access:            make(map[string]Access, len(s.access)),
	}
	for k := range s.dead {
		c.dead[k] = true
	}
	for k := range s.irrelevant {
		c.irrelevant[k] = true
	}
	for k := range s.irrelevantPointee {
		c.irrelevantPointee[k] = true
	}
	for k := range s.liveSafe {
		c.liveSafe[k] = true
	}
	for k, v := range s.parent {
		c.parent[k] = v
	}
	for k, v := range s.access {
		c.access[k] = v
	}
	return c
}

// ApproxBytes estimates the retained size of the set, for cache accounting
// (internal/replay budgets context snapshots by bytes). Rough is fine: the
// estimate only steers eviction order, never semantics.
func (s *Set) ApproxBytes() int {
	n := 96 + 16*(len(s.dead)+len(s.irrelevant)+len(s.irrelevantPointee)+len(s.liveSafe))
	for k := range s.parent {
		n += 48 + 2*len(k)
	}
	for k, a := range s.access {
		n += 48 + len(k) + 4*len(a.Path)
	}
	return n
}

// MarkDeadBlock records DeadBlock(b).
func (s *Set) MarkDeadBlock(b spirv.ID) { s.dead[b] = true }

// IsDeadBlock reports DeadBlock(b).
func (s *Set) IsDeadBlock(b spirv.ID) bool { return s.dead[b] }

// MarkIrrelevant records Irrelevant(id).
func (s *Set) MarkIrrelevant(id spirv.ID) { s.irrelevant[id] = true }

// IsIrrelevant reports Irrelevant(id).
func (s *Set) IsIrrelevant(id spirv.ID) bool { return s.irrelevant[id] }

// MarkIrrelevantPointee records IrrelevantPointee(p).
func (s *Set) MarkIrrelevantPointee(p spirv.ID) { s.irrelevantPointee[p] = true }

// IsIrrelevantPointee reports IrrelevantPointee(p).
func (s *Set) IsIrrelevantPointee(p spirv.ID) bool { return s.irrelevantPointee[p] }

// MarkLiveSafe records LiveSafe(f).
func (s *Set) MarkLiveSafe(f spirv.ID) { s.liveSafe[f] = true }

// IsLiveSafe reports LiveSafe(f).
func (s *Set) IsLiveSafe(f spirv.ID) bool { return s.liveSafe[f] }

func (s *Set) find(k string) string {
	p, ok := s.parent[k]
	if !ok || p == k {
		return k
	}
	root := s.find(p)
	s.parent[k] = root
	return root
}

// AddSynonym records Synonymous(a, b), merging their equivalence classes.
func (s *Set) AddSynonym(a, b Access) {
	ka, kb := a.Key(), b.Key()
	s.access[ka], s.access[kb] = a, b
	if _, ok := s.parent[ka]; !ok {
		s.parent[ka] = ka
	}
	if _, ok := s.parent[kb]; !ok {
		s.parent[kb] = kb
	}
	ra, rb := s.find(ka), s.find(kb)
	if ra != rb {
		s.parent[ra] = rb
	}
}

// AreSynonymous reports whether Synonymous(a, b) is known.
func (s *Set) AreSynonymous(a, b Access) bool {
	ka, kb := a.Key(), b.Key()
	if ka == kb {
		return true
	}
	if _, ok := s.parent[ka]; !ok {
		return false
	}
	if _, ok := s.parent[kb]; !ok {
		return false
	}
	return s.find(ka) == s.find(kb)
}

// SynonymsOf returns every known access synonymous with a (excluding a
// itself), ordered by access key. Deterministic ordering matters: fuzzer
// passes sample from this list, and campaigns must be reproducible.
func (s *Set) SynonymsOf(a Access) []Access {
	ka := a.Key()
	if _, ok := s.parent[ka]; !ok {
		return nil
	}
	root := s.find(ka)
	var keys []string
	for k := range s.parent {
		if k != ka && s.find(k) == root {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Access, len(keys))
	for i, k := range keys {
		out[i] = s.access[k]
	}
	return out
}

// WholeSynonymsOf returns the ids known synonymous with the whole value of
// id (path-free accesses only) — the candidates ReplaceIdWithSynonym can
// substitute directly.
func (s *Set) WholeSynonymsOf(id spirv.ID) []spirv.ID {
	var out []spirv.ID
	for _, a := range s.SynonymsOf(A(id)) {
		if len(a.Path) == 0 {
			out = append(out, a.ID)
		}
	}
	return out
}

// DeadBlocks returns all ids with DeadBlock facts, in ascending id order
// (fuzzer passes scan these; campaigns must be reproducible).
func (s *Set) DeadBlocks() []spirv.ID { return sortedIDs(s.dead) }

// IrrelevantIDs returns all ids with Irrelevant facts, in ascending order.
func (s *Set) IrrelevantIDs() []spirv.ID { return sortedIDs(s.irrelevant) }

// IrrelevantPointees returns all ids with IrrelevantPointee facts, in
// ascending order.
func (s *Set) IrrelevantPointees() []spirv.ID { return sortedIDs(s.irrelevantPointee) }

func sortedIDs(set map[spirv.ID]bool) []spirv.ID {
	out := make([]spirv.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
