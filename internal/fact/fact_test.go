package fact_test

import (
	"testing"
	"testing/quick"

	"spirvfuzz/internal/fact"
	"spirvfuzz/internal/spirv"
)

func TestSimpleFacts(t *testing.T) {
	s := fact.NewSet()
	if s.IsDeadBlock(5) || s.IsIrrelevant(5) || s.IsIrrelevantPointee(5) || s.IsLiveSafe(5) {
		t.Fatal("empty set must hold no facts")
	}
	s.MarkDeadBlock(5)
	s.MarkIrrelevant(6)
	s.MarkIrrelevantPointee(7)
	s.MarkLiveSafe(8)
	if !s.IsDeadBlock(5) || !s.IsIrrelevant(6) || !s.IsIrrelevantPointee(7) || !s.IsLiveSafe(8) {
		t.Fatal("facts not recorded")
	}
	if s.IsDeadBlock(6) {
		t.Fatal("fact kinds must not bleed into each other")
	}
	if got := s.DeadBlocks(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("DeadBlocks = %v", got)
	}
	if got := s.IrrelevantIDs(); len(got) != 1 || got[0] != 6 {
		t.Fatalf("IrrelevantIDs = %v", got)
	}
	if got := s.IrrelevantPointees(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("IrrelevantPointees = %v", got)
	}
}

func TestSynonymClasses(t *testing.T) {
	s := fact.NewSet()
	a, b, c := fact.A(1), fact.A(2), fact.A(3)
	if s.AreSynonymous(a, b) {
		t.Fatal("no facts yet")
	}
	if !s.AreSynonymous(a, a) {
		t.Fatal("synonymy is reflexive")
	}
	s.AddSynonym(a, b)
	s.AddSynonym(b, c)
	if !s.AreSynonymous(a, c) {
		t.Fatal("synonymy is transitive")
	}
	if !s.AreSynonymous(c, a) {
		t.Fatal("synonymy is symmetric")
	}
	d := fact.A(9)
	if s.AreSynonymous(a, d) {
		t.Fatal("unrelated access")
	}
	syns := s.WholeSynonymsOf(1)
	if len(syns) != 2 {
		t.Fatalf("WholeSynonymsOf(1) = %v", syns)
	}
}

func TestComponentSynonyms(t *testing.T) {
	s := fact.NewSet()
	// Synonymous(v[0], x): component accesses are distinct from whole-value
	// accesses of the same id.
	s.AddSynonym(fact.At(10, 0), fact.A(11))
	if s.AreSynonymous(fact.A(10), fact.A(11)) {
		t.Fatal("whole value must not inherit component synonymy")
	}
	if !s.AreSynonymous(fact.At(10, 0), fact.A(11)) {
		t.Fatal("component synonym lost")
	}
	if s.AreSynonymous(fact.At(10, 1), fact.A(11)) {
		t.Fatal("wrong component")
	}
	// Matrix-style nested paths: Synonymous(a, m[0][1]).
	s.AddSynonym(fact.A(20), fact.At(21, 0, 1))
	if !s.AreSynonymous(fact.At(21, 0, 1), fact.A(20)) {
		t.Fatal("nested path synonym lost")
	}
	if got := s.WholeSynonymsOf(10); len(got) != 0 {
		t.Fatalf("WholeSynonymsOf(10) = %v; component synonyms are not whole", got)
	}
	// SynonymsOf includes components.
	if got := s.SynonymsOf(fact.A(11)); len(got) != 1 || got[0].Key() != "%10[0]" {
		t.Fatalf("SynonymsOf = %v", got)
	}
}

func TestAccessKey(t *testing.T) {
	if fact.A(3).Key() != "%3" {
		t.Fatalf("key = %q", fact.A(3).Key())
	}
	if fact.At(3, 1, 2).Key() != "%3[1][2]" {
		t.Fatalf("key = %q", fact.At(3, 1, 2).Key())
	}
}

func TestCloneIndependence(t *testing.T) {
	s := fact.NewSet()
	s.MarkDeadBlock(1)
	s.AddSynonym(fact.A(2), fact.A(3))
	c := s.Clone()
	c.MarkDeadBlock(4)
	c.AddSynonym(fact.A(3), fact.A(5))
	if s.IsDeadBlock(4) {
		t.Fatal("clone shares dead-block state")
	}
	if s.AreSynonymous(fact.A(2), fact.A(5)) {
		t.Fatal("clone shares synonym state")
	}
	if !c.AreSynonymous(fact.A(2), fact.A(5)) {
		t.Fatal("clone lost its own synonym")
	}
}

// TestSynonymUnionFindProperty: any chain of AddSynonym calls produces an
// equivalence relation (symmetric, transitive, reflexive).
func TestSynonymUnionFindProperty(t *testing.T) {
	prop := func(pairs []uint8) bool {
		s := fact.NewSet()
		for i := 0; i+1 < len(pairs); i += 2 {
			s.AddSynonym(fact.A(spirv.ID(pairs[i]%16+1)), fact.A(spirv.ID(pairs[i+1]%16+1)))
		}
		// Check symmetry and transitivity over the small id universe.
		for x := spirv.ID(1); x <= 16; x++ {
			for y := spirv.ID(1); y <= 16; y++ {
				if s.AreSynonymous(fact.A(x), fact.A(y)) != s.AreSynonymous(fact.A(y), fact.A(x)) {
					return false
				}
				for z := spirv.ID(1); z <= 16; z++ {
					if s.AreSynonymous(fact.A(x), fact.A(y)) && s.AreSynonymous(fact.A(y), fact.A(z)) &&
						!s.AreSynonymous(fact.A(x), fact.A(z)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
