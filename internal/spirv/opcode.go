// Package spirv implements a faithful subset of the SPIR-V intermediate
// representation (Khronos SPIR-V specification, unified 1.x): modules of
// types, constants and global variables followed by functions made of basic
// blocks in SSA form, together with the binary word encoding, ID management
// and structural helpers that the fuzzer, reducer, optimizer and interpreter
// build on.
//
// The subset covers the instructions exercised by the transformations of the
// paper: scalar/vector/matrix/struct/array/pointer types, constants,
// arithmetic, logical and comparison instructions, composites, memory access
// through pointers, structured control flow (selection and loop merges, ϕ
// instructions, OpKill) and function definition/call/inlining machinery.
package spirv

import "fmt"

// Opcode is a SPIR-V instruction opcode. Values match the SPIR-V
// specification so that encoded binaries use real opcode numbers.
type Opcode uint16

// The supported opcodes.
const (
	OpNop                  Opcode = 0
	OpUndef                Opcode = 1
	OpName                 Opcode = 5
	OpMemberName           Opcode = 6
	OpMemoryModel          Opcode = 14
	OpEntryPoint           Opcode = 15
	OpExecutionMode        Opcode = 16
	OpCapability           Opcode = 17
	OpTypeVoid             Opcode = 19
	OpTypeBool             Opcode = 20
	OpTypeInt              Opcode = 21
	OpTypeFloat            Opcode = 22
	OpTypeVector           Opcode = 23
	OpTypeMatrix           Opcode = 24
	OpTypeArray            Opcode = 28
	OpTypeStruct           Opcode = 30
	OpTypePointer          Opcode = 32
	OpTypeFunction         Opcode = 33
	OpConstantTrue         Opcode = 41
	OpConstantFalse        Opcode = 42
	OpConstant             Opcode = 43
	OpConstantComposite    Opcode = 44
	OpConstantNull         Opcode = 46
	OpFunction             Opcode = 54
	OpFunctionParameter    Opcode = 55
	OpFunctionEnd          Opcode = 56
	OpFunctionCall         Opcode = 57
	OpVariable             Opcode = 59
	OpLoad                 Opcode = 61
	OpStore                Opcode = 62
	OpAccessChain          Opcode = 65
	OpDecorate             Opcode = 71
	OpMemberDecorate       Opcode = 72
	OpVectorShuffle        Opcode = 79
	OpCompositeConstruct   Opcode = 80
	OpCompositeExtract     Opcode = 81
	OpCompositeInsert      Opcode = 82
	OpCopyObject           Opcode = 83
	OpConvertFToS          Opcode = 110
	OpConvertSToF          Opcode = 111
	OpBitcast              Opcode = 124
	OpSNegate              Opcode = 126
	OpFNegate              Opcode = 127
	OpIAdd                 Opcode = 128
	OpFAdd                 Opcode = 129
	OpISub                 Opcode = 130
	OpFSub                 Opcode = 131
	OpIMul                 Opcode = 132
	OpFMul                 Opcode = 133
	OpUDiv                 Opcode = 134
	OpSDiv                 Opcode = 135
	OpFDiv                 Opcode = 136
	OpUMod                 Opcode = 137
	OpSRem                 Opcode = 138
	OpSMod                 Opcode = 139
	OpFMod                 Opcode = 141
	OpVectorTimesScalar    Opcode = 142
	OpMatrixTimesVector    Opcode = 145
	OpDot                  Opcode = 148
	OpLogicalOr            Opcode = 166
	OpLogicalAnd           Opcode = 167
	OpLogicalNot           Opcode = 168
	OpSelect               Opcode = 169
	OpIEqual               Opcode = 170
	OpINotEqual            Opcode = 171
	OpSGreaterThan         Opcode = 173
	OpSGreaterThanEqual    Opcode = 175
	OpSLessThan            Opcode = 177
	OpSLessThanEqual       Opcode = 179
	OpFOrdEqual            Opcode = 180
	OpFOrdNotEqual         Opcode = 182
	OpFOrdLessThan         Opcode = 184
	OpFOrdGreaterThan      Opcode = 186
	OpFOrdLessThanEqual    Opcode = 188
	OpFOrdGreaterThanEqual Opcode = 190
	OpBitwiseOr            Opcode = 197
	OpBitwiseXor           Opcode = 198
	OpBitwiseAnd           Opcode = 199
	OpNot                  Opcode = 200
	OpPhi                  Opcode = 245
	OpLoopMerge            Opcode = 246
	OpSelectionMerge       Opcode = 247
	OpLabel                Opcode = 248
	OpBranch               Opcode = 249
	OpBranchConditional    Opcode = 250
	OpSwitch               Opcode = 251
	OpKill                 Opcode = 252
	OpReturn               Opcode = 253
	OpReturnValue          Opcode = 254
	OpUnreachable          Opcode = 255
)

// OperandKind describes one operand slot in an instruction's word layout
// (after the optional result-type and result-id words).
type OperandKind int

// Operand kinds.
const (
	KindID      OperandKind = iota // a single <id> reference word
	KindLiteral                    // a single literal word (number or enum)
	KindString                     // a nul-terminated UTF-8 string packed into words
)

// Signature describes the word layout of an opcode.
type Signature struct {
	Name      string
	HasType   bool // instruction has a result-type <id> word
	HasResult bool // instruction has a result <id> word
	Fixed     []OperandKind
	// Variadic describes the layout of trailing operands, repeated zero or
	// more times (nil if the instruction takes no trailing operands).
	Variadic []OperandKind
}

var signatures = map[Opcode]Signature{
	OpNop:                  {Name: "OpNop"},
	OpUndef:                {Name: "OpUndef", HasType: true, HasResult: true},
	OpName:                 {Name: "OpName", Fixed: []OperandKind{KindID, KindString}},
	OpMemberName:           {Name: "OpMemberName", Fixed: []OperandKind{KindID, KindLiteral, KindString}},
	OpMemoryModel:          {Name: "OpMemoryModel", Fixed: []OperandKind{KindLiteral, KindLiteral}},
	OpEntryPoint:           {Name: "OpEntryPoint", Fixed: []OperandKind{KindLiteral, KindID, KindString}, Variadic: []OperandKind{KindID}},
	OpExecutionMode:        {Name: "OpExecutionMode", Fixed: []OperandKind{KindID, KindLiteral}, Variadic: []OperandKind{KindLiteral}},
	OpCapability:           {Name: "OpCapability", Fixed: []OperandKind{KindLiteral}},
	OpTypeVoid:             {Name: "OpTypeVoid", HasResult: true},
	OpTypeBool:             {Name: "OpTypeBool", HasResult: true},
	OpTypeInt:              {Name: "OpTypeInt", HasResult: true, Fixed: []OperandKind{KindLiteral, KindLiteral}},
	OpTypeFloat:            {Name: "OpTypeFloat", HasResult: true, Fixed: []OperandKind{KindLiteral}},
	OpTypeVector:           {Name: "OpTypeVector", HasResult: true, Fixed: []OperandKind{KindID, KindLiteral}},
	OpTypeMatrix:           {Name: "OpTypeMatrix", HasResult: true, Fixed: []OperandKind{KindID, KindLiteral}},
	OpTypeArray:            {Name: "OpTypeArray", HasResult: true, Fixed: []OperandKind{KindID, KindID}},
	OpTypeStruct:           {Name: "OpTypeStruct", HasResult: true, Variadic: []OperandKind{KindID}},
	OpTypePointer:          {Name: "OpTypePointer", HasResult: true, Fixed: []OperandKind{KindLiteral, KindID}},
	OpTypeFunction:         {Name: "OpTypeFunction", HasResult: true, Fixed: []OperandKind{KindID}, Variadic: []OperandKind{KindID}},
	OpConstantTrue:         {Name: "OpConstantTrue", HasType: true, HasResult: true},
	OpConstantFalse:        {Name: "OpConstantFalse", HasType: true, HasResult: true},
	OpConstant:             {Name: "OpConstant", HasType: true, HasResult: true, Variadic: []OperandKind{KindLiteral}},
	OpConstantComposite:    {Name: "OpConstantComposite", HasType: true, HasResult: true, Variadic: []OperandKind{KindID}},
	OpConstantNull:         {Name: "OpConstantNull", HasType: true, HasResult: true},
	OpFunction:             {Name: "OpFunction", HasType: true, HasResult: true, Fixed: []OperandKind{KindLiteral, KindID}},
	OpFunctionParameter:    {Name: "OpFunctionParameter", HasType: true, HasResult: true},
	OpFunctionEnd:          {Name: "OpFunctionEnd"},
	OpFunctionCall:         {Name: "OpFunctionCall", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}, Variadic: []OperandKind{KindID}},
	OpVariable:             {Name: "OpVariable", HasType: true, HasResult: true, Fixed: []OperandKind{KindLiteral}, Variadic: []OperandKind{KindID}},
	OpLoad:                 {Name: "OpLoad", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}},
	OpStore:                {Name: "OpStore", Fixed: []OperandKind{KindID, KindID}},
	OpAccessChain:          {Name: "OpAccessChain", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}, Variadic: []OperandKind{KindID}},
	OpDecorate:             {Name: "OpDecorate", Fixed: []OperandKind{KindID, KindLiteral}, Variadic: []OperandKind{KindLiteral}},
	OpMemberDecorate:       {Name: "OpMemberDecorate", Fixed: []OperandKind{KindID, KindLiteral, KindLiteral}, Variadic: []OperandKind{KindLiteral}},
	OpVectorShuffle:        {Name: "OpVectorShuffle", HasType: true, HasResult: true, Fixed: []OperandKind{KindID, KindID}, Variadic: []OperandKind{KindLiteral}},
	OpCompositeConstruct:   {Name: "OpCompositeConstruct", HasType: true, HasResult: true, Variadic: []OperandKind{KindID}},
	OpCompositeExtract:     {Name: "OpCompositeExtract", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}, Variadic: []OperandKind{KindLiteral}},
	OpCompositeInsert:      {Name: "OpCompositeInsert", HasType: true, HasResult: true, Fixed: []OperandKind{KindID, KindID}, Variadic: []OperandKind{KindLiteral}},
	OpCopyObject:           {Name: "OpCopyObject", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}},
	OpConvertFToS:          {Name: "OpConvertFToS", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}},
	OpConvertSToF:          {Name: "OpConvertSToF", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}},
	OpBitcast:              {Name: "OpBitcast", HasType: true, HasResult: true, Fixed: []OperandKind{KindID}},
	OpSNegate:              unarySig("OpSNegate"),
	OpFNegate:              unarySig("OpFNegate"),
	OpIAdd:                 binarySig("OpIAdd"),
	OpFAdd:                 binarySig("OpFAdd"),
	OpISub:                 binarySig("OpISub"),
	OpFSub:                 binarySig("OpFSub"),
	OpIMul:                 binarySig("OpIMul"),
	OpFMul:                 binarySig("OpFMul"),
	OpUDiv:                 binarySig("OpUDiv"),
	OpSDiv:                 binarySig("OpSDiv"),
	OpFDiv:                 binarySig("OpFDiv"),
	OpUMod:                 binarySig("OpUMod"),
	OpSRem:                 binarySig("OpSRem"),
	OpSMod:                 binarySig("OpSMod"),
	OpFMod:                 binarySig("OpFMod"),
	OpVectorTimesScalar:    binarySig("OpVectorTimesScalar"),
	OpMatrixTimesVector:    binarySig("OpMatrixTimesVector"),
	OpDot:                  binarySig("OpDot"),
	OpLogicalOr:            binarySig("OpLogicalOr"),
	OpLogicalAnd:           binarySig("OpLogicalAnd"),
	OpLogicalNot:           unarySig("OpLogicalNot"),
	OpSelect:               {Name: "OpSelect", HasType: true, HasResult: true, Fixed: []OperandKind{KindID, KindID, KindID}},
	OpIEqual:               binarySig("OpIEqual"),
	OpINotEqual:            binarySig("OpINotEqual"),
	OpSGreaterThan:         binarySig("OpSGreaterThan"),
	OpSGreaterThanEqual:    binarySig("OpSGreaterThanEqual"),
	OpSLessThan:            binarySig("OpSLessThan"),
	OpSLessThanEqual:       binarySig("OpSLessThanEqual"),
	OpFOrdEqual:            binarySig("OpFOrdEqual"),
	OpFOrdNotEqual:         binarySig("OpFOrdNotEqual"),
	OpFOrdLessThan:         binarySig("OpFOrdLessThan"),
	OpFOrdGreaterThan:      binarySig("OpFOrdGreaterThan"),
	OpFOrdLessThanEqual:    binarySig("OpFOrdLessThanEqual"),
	OpFOrdGreaterThanEqual: binarySig("OpFOrdGreaterThanEqual"),
	OpBitwiseOr:            binarySig("OpBitwiseOr"),
	OpBitwiseXor:           binarySig("OpBitwiseXor"),
	OpBitwiseAnd:           binarySig("OpBitwiseAnd"),
	OpNot:                  unarySig("OpNot"),
	OpPhi:                  {Name: "OpPhi", HasType: true, HasResult: true, Variadic: []OperandKind{KindID, KindID}},
	OpLoopMerge:            {Name: "OpLoopMerge", Fixed: []OperandKind{KindID, KindID, KindLiteral}},
	OpSelectionMerge:       {Name: "OpSelectionMerge", Fixed: []OperandKind{KindID, KindLiteral}},
	OpLabel:                {Name: "OpLabel", HasResult: true},
	OpBranch:               {Name: "OpBranch", Fixed: []OperandKind{KindID}},
	OpBranchConditional:    {Name: "OpBranchConditional", Fixed: []OperandKind{KindID, KindID, KindID}},
	OpSwitch:               {Name: "OpSwitch", Fixed: []OperandKind{KindID, KindID}, Variadic: []OperandKind{KindLiteral, KindID}},
	OpKill:                 {Name: "OpKill"},
	OpReturn:               {Name: "OpReturn"},
	OpReturnValue:          {Name: "OpReturnValue", Fixed: []OperandKind{KindID}},
	OpUnreachable:          {Name: "OpUnreachable"},
}

func unarySig(name string) Signature {
	return Signature{Name: name, HasType: true, HasResult: true, Fixed: []OperandKind{KindID}}
}

func binarySig(name string) Signature {
	return Signature{Name: name, HasType: true, HasResult: true, Fixed: []OperandKind{KindID, KindID}}
}

var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(signatures))
	for op, sig := range signatures {
		m[sig.Name] = op
	}
	return m
}()

// Sig returns the signature of op; ok is false for unsupported opcodes.
func Sig(op Opcode) (Signature, bool) {
	s, ok := signatures[op]
	return s, ok
}

// OpcodeByName returns the opcode with the given "OpXxx" name.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodeByName[name]
	return op, ok
}

// String returns the "OpXxx" name of the opcode.
func (op Opcode) String() string {
	if s, ok := signatures[op]; ok {
		return s.Name
	}
	return fmt.Sprintf("Op?%d", uint16(op))
}

// IsType reports whether op declares a type.
func (op Opcode) IsType() bool { return op >= OpTypeVoid && op <= OpTypeFunction }

// IsConstant reports whether op declares a constant.
func (op Opcode) IsConstant() bool { return op >= OpConstantTrue && op <= OpConstantNull }

// IsTerminator reports whether op terminates a block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case OpBranch, OpBranchConditional, OpSwitch, OpKill, OpReturn, OpReturnValue, OpUnreachable:
		return true
	}
	return false
}

// HasSideEffects reports whether an instruction with this opcode may not be
// freely removed when its result is unused.
func (op Opcode) HasSideEffects() bool {
	switch op {
	case OpStore, OpFunctionCall, OpVariable:
		return true
	}
	return op.IsTerminator()
}

// Enumerant values used by the subset (matching the SPIR-V specification).
const (
	// Addressing / memory models.
	AddressingLogical  uint32 = 0
	MemoryModelGLSL450 uint32 = 1
	// Execution models.
	ExecutionModelFragment uint32 = 4
	// Execution modes.
	ExecutionModeOriginUpperLeft uint32 = 7
	// Capabilities.
	CapabilityShader uint32 = 1
	// Storage classes.
	StorageUniformConstant uint32 = 0
	StorageInput           uint32 = 1
	StorageUniform         uint32 = 2
	StorageOutput          uint32 = 3
	StoragePrivate         uint32 = 6
	StorageFunction        uint32 = 7
	// Function control masks.
	FunctionControlNone       uint32 = 0
	FunctionControlInline     uint32 = 1
	FunctionControlDontInline uint32 = 2
	// Selection control.
	SelectionControlNone uint32 = 0
	// Loop control.
	LoopControlNone uint32 = 0
	// Decorations.
	DecorationBlock         uint32 = 2
	DecorationBuiltIn       uint32 = 11
	DecorationLocation      uint32 = 30
	DecorationBinding       uint32 = 33
	DecorationDescriptorSet uint32 = 34
)
