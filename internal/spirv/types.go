package spirv

import (
	"fmt"
	"math"
)

// This file provides type and constant introspection and lookup over a
// module's TypesGlobals section. SPIR-V requires non-aggregate types to be
// unique within a module, so lookups are by structural shape.

// TypeOf returns the result-type id of the instruction defining id, or 0.
func (m *Module) TypeOf(id ID) ID {
	if def := m.Def(id); def != nil {
		return def.Type
	}
	return 0
}

// typeDef returns the defining instruction of a type id if it is a type.
func (m *Module) typeDef(t ID) *Instruction {
	for _, ins := range m.TypesGlobals {
		if ins.Result == t && ins.Op.IsType() {
			return ins
		}
	}
	return nil
}

// TypeOp returns the opcode of the type definition, or OpNop if t does not
// name a type.
func (m *Module) TypeOp(t ID) Opcode {
	if def := m.typeDef(t); def != nil {
		return def.Op
	}
	return OpNop
}

// IsBoolType reports whether t is OpTypeBool.
func (m *Module) IsBoolType(t ID) bool { return m.TypeOp(t) == OpTypeBool }

// IsIntType reports whether t is OpTypeInt.
func (m *Module) IsIntType(t ID) bool { return m.TypeOp(t) == OpTypeInt }

// IsFloatType reports whether t is OpTypeFloat.
func (m *Module) IsFloatType(t ID) bool { return m.TypeOp(t) == OpTypeFloat }

// IsNumericScalarType reports whether t is an int or float scalar.
func (m *Module) IsNumericScalarType(t ID) bool { return m.IsIntType(t) || m.IsFloatType(t) }

// VectorInfo returns the component type and count of vector type t;
// ok is false if t is not a vector.
func (m *Module) VectorInfo(t ID) (elem ID, n int, ok bool) {
	def := m.typeDef(t)
	if def == nil || def.Op != OpTypeVector {
		return 0, 0, false
	}
	return ID(def.Operands[0]), int(def.Operands[1]), true
}

// MatrixInfo returns the column type and column count of matrix type t.
func (m *Module) MatrixInfo(t ID) (col ID, cols int, ok bool) {
	def := m.typeDef(t)
	if def == nil || def.Op != OpTypeMatrix {
		return 0, 0, false
	}
	return ID(def.Operands[0]), int(def.Operands[1]), true
}

// ArrayInfo returns the element type and length-constant id of array type t.
func (m *Module) ArrayInfo(t ID) (elem ID, lengthConst ID, ok bool) {
	def := m.typeDef(t)
	if def == nil || def.Op != OpTypeArray {
		return 0, 0, false
	}
	return ID(def.Operands[0]), ID(def.Operands[1]), true
}

// StructMembers returns the member type ids of struct type t, or nil.
func (m *Module) StructMembers(t ID) []ID {
	def := m.typeDef(t)
	if def == nil || def.Op != OpTypeStruct {
		return nil
	}
	out := make([]ID, len(def.Operands))
	for i, w := range def.Operands {
		out[i] = ID(w)
	}
	return out
}

// PointerInfo returns the storage class and pointee type of pointer type t.
func (m *Module) PointerInfo(t ID) (storage uint32, pointee ID, ok bool) {
	def := m.typeDef(t)
	if def == nil || def.Op != OpTypePointer {
		return 0, 0, false
	}
	return def.Operands[0], ID(def.Operands[1]), true
}

// FunctionTypeInfo returns the return type and parameter types of function
// type t.
func (m *Module) FunctionTypeInfo(t ID) (ret ID, params []ID, ok bool) {
	def := m.typeDef(t)
	if def == nil || def.Op != OpTypeFunction {
		return 0, nil, false
	}
	ret = ID(def.Operands[0])
	for _, w := range def.Operands[1:] {
		params = append(params, ID(w))
	}
	return ret, params, true
}

// CompositeMemberCount returns the number of direct members of composite
// type t (vector components, matrix columns, array length, struct members),
// with ok=false for non-composites. Array lengths must be integer constants.
func (m *Module) CompositeMemberCount(t ID) (int, bool) {
	if _, n, ok := m.VectorInfo(t); ok {
		return n, true
	}
	if _, n, ok := m.MatrixInfo(t); ok {
		return n, true
	}
	if _, lc, ok := m.ArrayInfo(t); ok {
		if v, ok := m.ConstantIntValue(lc); ok {
			return int(v), true
		}
		return 0, false
	}
	if members := m.StructMembers(t); members != nil {
		return len(members), true
	}
	return 0, false
}

// CompositeMemberType returns the type of member i of composite type t.
func (m *Module) CompositeMemberType(t ID, i int) (ID, bool) {
	if elem, n, ok := m.VectorInfo(t); ok {
		if i < n {
			return elem, true
		}
		return 0, false
	}
	if col, n, ok := m.MatrixInfo(t); ok {
		if i < n {
			return col, true
		}
		return 0, false
	}
	if elem, lc, ok := m.ArrayInfo(t); ok {
		if v, ok := m.ConstantIntValue(lc); ok && i < int(v) {
			return elem, true
		}
		return 0, false
	}
	if members := m.StructMembers(t); members != nil {
		if i < len(members) {
			return members[i], true
		}
	}
	return 0, false
}

// findType searches for a type with the given opcode and operand words.
func (m *Module) findType(op Opcode, operands ...uint32) ID {
	for _, ins := range m.TypesGlobals {
		if ins.Op != op || len(ins.Operands) != len(operands) {
			continue
		}
		match := true
		for i := range operands {
			if ins.Operands[i] != operands[i] {
				match = false
				break
			}
		}
		if match {
			return ins.Result
		}
	}
	return 0
}

// FindTypeVoid returns the OpTypeVoid id, or 0.
func (m *Module) FindTypeVoid() ID { return m.findType(OpTypeVoid) }

// FindTypeBool returns the OpTypeBool id, or 0.
func (m *Module) FindTypeBool() ID { return m.findType(OpTypeBool) }

// FindTypeInt returns the OpTypeInt id with the given width/signedness, or 0.
func (m *Module) FindTypeInt(width uint32, signed bool) ID {
	s := uint32(0)
	if signed {
		s = 1
	}
	return m.findType(OpTypeInt, width, s)
}

// FindTypeFloat returns the OpTypeFloat id with the given width, or 0.
func (m *Module) FindTypeFloat(width uint32) ID { return m.findType(OpTypeFloat, width) }

// FindTypeVector returns the OpTypeVector id, or 0.
func (m *Module) FindTypeVector(elem ID, n int) ID {
	return m.findType(OpTypeVector, uint32(elem), uint32(n))
}

// FindTypePointer returns the OpTypePointer id, or 0.
func (m *Module) FindTypePointer(storage uint32, pointee ID) ID {
	return m.findType(OpTypePointer, storage, uint32(pointee))
}

// FindTypeFunction returns the OpTypeFunction id, or 0.
func (m *Module) FindTypeFunction(ret ID, params ...ID) ID {
	ops := make([]uint32, 0, 1+len(params))
	ops = append(ops, uint32(ret))
	for _, p := range params {
		ops = append(ops, uint32(p))
	}
	return m.findType(OpTypeFunction, ops...)
}

// ensure appends a new type/constant instruction if no structural duplicate
// exists, returning the (existing or new) id.
func (m *Module) ensure(op Opcode, typ ID, operands ...uint32) ID {
	for _, ins := range m.TypesGlobals {
		if ins.Op != op || ins.Type != typ || len(ins.Operands) != len(operands) {
			continue
		}
		match := true
		for i := range operands {
			if ins.Operands[i] != operands[i] {
				match = false
				break
			}
		}
		if match {
			return ins.Result
		}
	}
	id := m.FreshID()
	m.TypesGlobals = append(m.TypesGlobals, NewInstr(op, typ, id, operands...))
	return id
}

// EnsureTypeVoid returns the OpTypeVoid id, creating it if needed.
func (m *Module) EnsureTypeVoid() ID { return m.ensure(OpTypeVoid, 0) }

// EnsureTypeBool returns the OpTypeBool id, creating it if needed.
func (m *Module) EnsureTypeBool() ID { return m.ensure(OpTypeBool, 0) }

// EnsureTypeInt returns an OpTypeInt id, creating it if needed.
func (m *Module) EnsureTypeInt(width uint32, signed bool) ID {
	s := uint32(0)
	if signed {
		s = 1
	}
	return m.ensure(OpTypeInt, 0, width, s)
}

// EnsureTypeFloat returns an OpTypeFloat id, creating it if needed.
func (m *Module) EnsureTypeFloat(width uint32) ID { return m.ensure(OpTypeFloat, 0, width) }

// EnsureTypeVector returns an OpTypeVector id, creating it if needed.
func (m *Module) EnsureTypeVector(elem ID, n int) ID {
	return m.ensure(OpTypeVector, 0, uint32(elem), uint32(n))
}

// EnsureTypeMatrix returns an OpTypeMatrix id, creating it if needed.
func (m *Module) EnsureTypeMatrix(col ID, cols int) ID {
	return m.ensure(OpTypeMatrix, 0, uint32(col), uint32(cols))
}

// EnsureTypeArray returns an OpTypeArray id, creating it if needed.
func (m *Module) EnsureTypeArray(elem ID, lengthConst ID) ID {
	return m.ensure(OpTypeArray, 0, uint32(elem), uint32(lengthConst))
}

// EnsureTypeStruct returns an OpTypeStruct id, creating it if needed.
func (m *Module) EnsureTypeStruct(members ...ID) ID {
	ops := make([]uint32, len(members))
	for i, t := range members {
		ops[i] = uint32(t)
	}
	return m.ensure(OpTypeStruct, 0, ops...)
}

// EnsureTypePointer returns an OpTypePointer id, creating it if needed.
func (m *Module) EnsureTypePointer(storage uint32, pointee ID) ID {
	return m.ensure(OpTypePointer, 0, storage, uint32(pointee))
}

// EnsureTypeFunction returns an OpTypeFunction id, creating it if needed.
func (m *Module) EnsureTypeFunction(ret ID, params ...ID) ID {
	ops := make([]uint32, 0, 1+len(params))
	ops = append(ops, uint32(ret))
	for _, p := range params {
		ops = append(ops, uint32(p))
	}
	return m.ensure(OpTypeFunction, 0, ops...)
}

// EnsureConstantBool returns an OpConstantTrue/False id, creating it if
// needed (and the bool type with it).
func (m *Module) EnsureConstantBool(v bool) ID {
	t := m.EnsureTypeBool()
	if v {
		return m.ensure(OpConstantTrue, t)
	}
	return m.ensure(OpConstantFalse, t)
}

// EnsureConstantInt returns an OpConstant id of 32-bit signed int type.
func (m *Module) EnsureConstantInt(v int32) ID {
	t := m.EnsureTypeInt(32, true)
	return m.ensure(OpConstant, t, uint32(v))
}

// EnsureConstantUint returns an OpConstant id of 32-bit unsigned int type.
func (m *Module) EnsureConstantUint(v uint32) ID {
	t := m.EnsureTypeInt(32, false)
	return m.ensure(OpConstant, t, v)
}

// EnsureConstantFloat returns an OpConstant id of 32-bit float type.
func (m *Module) EnsureConstantFloat(v float32) ID {
	t := m.EnsureTypeFloat(32)
	return m.ensure(OpConstant, t, math.Float32bits(v))
}

// EnsureConstantWord returns an OpConstant of the given scalar type holding
// the raw word, creating it if needed.
func (m *Module) EnsureConstantWord(typ ID, word uint32) ID {
	return m.ensure(OpConstant, typ, word)
}

// EnsureConstantComposite returns an OpConstantComposite id.
func (m *Module) EnsureConstantComposite(typ ID, members ...ID) ID {
	ops := make([]uint32, len(members))
	for i, c := range members {
		ops[i] = uint32(c)
	}
	return m.ensure(OpConstantComposite, typ, ops...)
}

// EnsureConstantNull returns an OpConstantNull id for the given type.
func (m *Module) EnsureConstantNull(typ ID) ID { return m.ensure(OpConstantNull, typ) }

// ConstantIntValue returns the integer value of id if it is an integer
// OpConstant.
func (m *Module) ConstantIntValue(id ID) (int64, bool) {
	def := m.Def(id)
	if def == nil || def.Op != OpConstant || len(def.Operands) != 1 {
		return 0, false
	}
	tdef := m.typeDef(def.Type)
	if tdef == nil || tdef.Op != OpTypeInt {
		return 0, false
	}
	if tdef.Operands[1] == 1 {
		return int64(int32(def.Operands[0])), true
	}
	return int64(def.Operands[0]), true
}

// ConstantFloatValue returns the float value of id if it is a float
// OpConstant.
func (m *Module) ConstantFloatValue(id ID) (float32, bool) {
	def := m.Def(id)
	if def == nil || def.Op != OpConstant || len(def.Operands) != 1 {
		return 0, false
	}
	if !m.IsFloatType(def.Type) {
		return 0, false
	}
	return math.Float32frombits(def.Operands[0]), true
}

// ConstantBoolValue returns the value of id if it is a boolean constant.
func (m *Module) ConstantBoolValue(id ID) (bool, bool) {
	def := m.Def(id)
	if def == nil {
		return false, false
	}
	switch def.Op {
	case OpConstantTrue:
		return true, true
	case OpConstantFalse:
		return false, true
	}
	return false, false
}

// TypeKey returns a canonical structural description of type t, used for
// stable type identity across modules (e.g. when donating functions between
// modules).
func (m *Module) TypeKey(t ID) string {
	def := m.typeDef(t)
	if def == nil {
		return fmt.Sprintf("?%d", t)
	}
	switch def.Op {
	case OpTypeVoid:
		return "void"
	case OpTypeBool:
		return "bool"
	case OpTypeInt:
		return fmt.Sprintf("int%d_%d", def.Operands[0], def.Operands[1])
	case OpTypeFloat:
		return fmt.Sprintf("float%d", def.Operands[0])
	case OpTypeVector:
		return fmt.Sprintf("vec%d<%s>", def.Operands[1], m.TypeKey(ID(def.Operands[0])))
	case OpTypeMatrix:
		return fmt.Sprintf("mat%d<%s>", def.Operands[1], m.TypeKey(ID(def.Operands[0])))
	case OpTypeArray:
		n, _ := m.ConstantIntValue(ID(def.Operands[1]))
		return fmt.Sprintf("arr%d<%s>", n, m.TypeKey(ID(def.Operands[0])))
	case OpTypeStruct:
		key := "struct{"
		for i, w := range def.Operands {
			if i > 0 {
				key += ","
			}
			key += m.TypeKey(ID(w))
		}
		return key + "}"
	case OpTypePointer:
		return fmt.Sprintf("ptr%d<%s>", def.Operands[0], m.TypeKey(ID(def.Operands[1])))
	case OpTypeFunction:
		key := "fn("
		for i, w := range def.Operands[1:] {
			if i > 0 {
				key += ","
			}
			key += m.TypeKey(ID(w))
		}
		return key + ")" + m.TypeKey(ID(def.Operands[0]))
	}
	return def.Op.String()
}
