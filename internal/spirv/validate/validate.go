// Package validate checks well-formedness of SPIR-V subset modules — the
// analogue of spirv-val. It enforces single static assignment, id
// availability (dominance), instruction typing, block ordering, ϕ coherence
// and a simplified form of the structured control-flow rules.
//
// The fuzzer validates every variant it produces; a transformation that
// yields an invalid module indicates a bug in the transformation, and the
// spirv-opt simulated targets report emitted-invalid-SPIR-V defects through
// this package (the "spirv-opt emits illegal SPIR-V" bug class of Section 5).
package validate

import (
	"fmt"

	"spirvfuzz/internal/spirv"
)

// Error describes a validation failure.
type Error struct {
	Rule string // short rule identifier, e.g. "ssa.duplicate-id"
	Msg  string
}

// Error renders the violation with its rule identifier.
func (e *Error) Error() string { return fmt.Sprintf("validate: [%s] %s", e.Rule, e.Msg) }

func errf(rule, format string, args ...any) *Error {
	return &Error{Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// Module validates m, returning the first violation found or nil.
func Module(m *spirv.Module) error {
	v := &validator{m: m}
	return v.run()
}

type validator struct {
	m    *spirv.Module
	defs map[spirv.ID]*spirv.Instruction
}

func (v *validator) run() error {
	if err := v.checkHeaderAndIDs(); err != nil {
		return err
	}
	if err := v.checkTypesGlobals(); err != nil {
		return err
	}
	if err := v.checkEntryPoints(); err != nil {
		return err
	}
	for _, fn := range v.m.Functions {
		if err := v.checkFunction(fn); err != nil {
			return err
		}
	}
	return nil
}

// checkHeaderAndIDs checks capabilities, the memory model, id uniqueness and
// the bound.
func (v *validator) checkHeaderAndIDs() error {
	if len(v.m.Capabilities) == 0 {
		return errf("module.capability", "module declares no capabilities")
	}
	if v.m.MemoryModel == nil {
		return errf("module.memory-model", "module has no OpMemoryModel")
	}
	v.defs = make(map[spirv.ID]*spirv.Instruction)
	var dup error
	record := func(ins *spirv.Instruction) {
		if ins.Result == 0 {
			return
		}
		if dup == nil {
			if _, ok := v.defs[ins.Result]; ok {
				dup = errf("ssa.duplicate-id", "id %%%d defined more than once", ins.Result)
			}
			if ins.Result >= v.m.Bound {
				dup = errf("module.bound", "id %%%d exceeds bound %d", ins.Result, v.m.Bound)
			}
		}
		v.defs[ins.Result] = ins
	}
	v.m.ForEachInstruction(record)
	for _, fn := range v.m.Functions {
		for _, b := range fn.Blocks {
			record(spirv.NewInstr(spirv.OpLabel, 0, b.Label))
		}
	}
	return dup
}

func (v *validator) def(id spirv.ID) *spirv.Instruction { return v.defs[id] }

func (v *validator) isType(id spirv.ID) bool {
	d := v.def(id)
	return d != nil && d.Op.IsType()
}

// checkTypesGlobals validates the module-scope section: types, constants,
// global variables and module-scope OpUndef.
func (v *validator) checkTypesGlobals() error {
	seen := make(map[spirv.ID]bool)
	for _, ins := range v.m.TypesGlobals {
		// Forward references are not allowed in the types/globals section.
		var ferr error
		ins.Uses(func(id spirv.ID) {
			if ferr == nil && !seen[id] {
				ferr = errf("module.forward-ref", "%s %%%d uses %%%d before its definition", ins.Op, ins.Result, id)
			}
		})
		if ferr != nil {
			return ferr
		}
		if ins.Result != 0 {
			seen[ins.Result] = true
		}
		switch ins.Op {
		case spirv.OpTypeVector:
			comp := spirv.ID(ins.Operands[0])
			if !v.m.IsNumericScalarType(comp) && !v.m.IsBoolType(comp) {
				return errf("type.vector-component", "OpTypeVector %%%d component %%%d is not a scalar", ins.Result, comp)
			}
			if n := ins.Operands[1]; n < 2 || n > 4 {
				return errf("type.vector-size", "OpTypeVector %%%d has %d components", ins.Result, n)
			}
		case spirv.OpTypeMatrix:
			col := spirv.ID(ins.Operands[0])
			if elem, _, ok := v.m.VectorInfo(col); !ok || !v.m.IsFloatType(elem) {
				return errf("type.matrix-column", "OpTypeMatrix %%%d column %%%d is not a float vector", ins.Result, col)
			}
		case spirv.OpTypeArray:
			if !v.isType(spirv.ID(ins.Operands[0])) {
				return errf("type.array-element", "OpTypeArray %%%d element %%%d is not a type", ins.Result, ins.Operands[0])
			}
			if n, ok := v.m.ConstantIntValue(spirv.ID(ins.Operands[1])); !ok || n <= 0 {
				return errf("type.array-length", "OpTypeArray %%%d length %%%d is not a positive integer constant", ins.Result, ins.Operands[1])
			}
		case spirv.OpTypeStruct:
			for _, w := range ins.Operands {
				if !v.isType(spirv.ID(w)) {
					return errf("type.struct-member", "OpTypeStruct %%%d member %%%d is not a type", ins.Result, w)
				}
			}
		case spirv.OpTypePointer:
			if !v.isType(spirv.ID(ins.Operands[1])) {
				return errf("type.pointer-pointee", "OpTypePointer %%%d pointee %%%d is not a type", ins.Result, ins.Operands[1])
			}
		case spirv.OpTypeFunction:
			for _, w := range ins.Operands {
				if !v.isType(spirv.ID(w)) {
					return errf("type.function", "OpTypeFunction %%%d refers to non-type %%%d", ins.Result, w)
				}
			}
		case spirv.OpConstantTrue, spirv.OpConstantFalse:
			if !v.m.IsBoolType(ins.Type) {
				return errf("const.bool-type", "%s %%%d must have bool type", ins.Op, ins.Result)
			}
		case spirv.OpConstant:
			if !v.m.IsNumericScalarType(ins.Type) {
				return errf("const.scalar-type", "OpConstant %%%d must have numeric scalar type", ins.Result)
			}
			if len(ins.Operands) != 1 {
				return errf("const.words", "OpConstant %%%d must carry one 32-bit word", ins.Result)
			}
		case spirv.OpConstantComposite:
			n, ok := v.m.CompositeMemberCount(ins.Type)
			if !ok {
				return errf("const.composite-type", "OpConstantComposite %%%d type %%%d is not a composite", ins.Result, ins.Type)
			}
			if len(ins.Operands) != n {
				return errf("const.composite-arity", "OpConstantComposite %%%d has %d members, type wants %d", ins.Result, len(ins.Operands), n)
			}
			for i, w := range ins.Operands {
				want, _ := v.m.CompositeMemberType(ins.Type, i)
				if got := v.m.TypeOf(spirv.ID(w)); got != want {
					return errf("const.composite-member", "OpConstantComposite %%%d member %d has type %%%d, want %%%d", ins.Result, i, got, want)
				}
			}
		case spirv.OpConstantNull, spirv.OpUndef:
			if !v.isType(ins.Type) {
				return errf("const.null-type", "%s %%%d type %%%d is not a type", ins.Op, ins.Result, ins.Type)
			}
		case spirv.OpVariable:
			storage, pointee, ok := v.m.PointerInfo(ins.Type)
			if !ok {
				return errf("var.pointer-type", "OpVariable %%%d type %%%d is not a pointer", ins.Result, ins.Type)
			}
			if storage != ins.Operands[0] {
				return errf("var.storage-mismatch", "OpVariable %%%d storage %d does not match pointer storage %d", ins.Result, ins.Operands[0], storage)
			}
			if ins.Operands[0] == spirv.StorageFunction {
				return errf("var.function-storage", "module-scope OpVariable %%%d cannot have Function storage", ins.Result)
			}
			if len(ins.Operands) > 1 {
				init := spirv.ID(ins.Operands[1])
				if v.m.TypeOf(init) != pointee {
					return errf("var.initializer", "OpVariable %%%d initializer %%%d does not match pointee", ins.Result, init)
				}
			}
		default:
			if !ins.Op.IsType() {
				return errf("module.section", "%s is not valid in the types/globals section", ins.Op)
			}
		}
	}
	return nil
}

// checkEntryPoints validates entry point declarations.
func (v *validator) checkEntryPoints() error {
	for _, ep := range v.m.EntryPoints {
		fnID := spirv.ID(ep.Operands[1])
		fn := v.m.Function(fnID)
		if fn == nil {
			return errf("entry.missing-function", "OpEntryPoint names missing function %%%d", fnID)
		}
		if len(fn.Params) != 0 {
			return errf("entry.params", "entry point %%%d must take no parameters", fnID)
		}
		if v.m.TypeOp(fn.ReturnType()) != spirv.OpTypeVoid {
			return errf("entry.return", "entry point %%%d must return void", fnID)
		}
	}
	return nil
}
