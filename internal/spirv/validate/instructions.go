package validate

import "spirvfuzz/internal/spirv"

// shape describes a scalar-or-vector type for arithmetic checking.
type shape struct {
	base  spirv.Opcode // OpTypeInt / OpTypeFloat / OpTypeBool
	elem  spirv.ID     // scalar element type
	lanes int          // 1 for scalars
}

func (v *validator) shapeOf(t spirv.ID) (shape, bool) {
	if elem, n, ok := v.m.VectorInfo(t); ok {
		return shape{base: v.m.TypeOp(elem), elem: elem, lanes: n}, true
	}
	switch v.m.TypeOp(t) {
	case spirv.OpTypeInt, spirv.OpTypeFloat, spirv.OpTypeBool:
		return shape{base: v.m.TypeOp(t), elem: t, lanes: 1}, true
	}
	return shape{}, false
}

// checkInstructionTypes validates the typing of a single body instruction.
func (v *validator) checkInstructionTypes(fn *spirv.Function, ins *spirv.Instruction) error {
	m := v.m
	opnd := func(i int) spirv.ID { return ins.IDOperand(i) }
	typeOf := func(i int) spirv.ID { return m.TypeOf(opnd(i)) }

	binSame := func(base ...spirv.Opcode) error {
		s, ok := v.shapeOf(ins.Type)
		if !ok {
			return errf("type.arith", "%s %%%d result type %%%d is not scalar/vector", ins.Op, ins.Result, ins.Type)
		}
		baseOK := false
		for _, b := range base {
			if s.base == b {
				baseOK = true
			}
		}
		if !baseOK {
			return errf("type.arith-base", "%s %%%d result type has wrong base", ins.Op, ins.Result)
		}
		for i := 0; i < 2; i++ {
			if typeOf(i) != ins.Type {
				return errf("type.arith-operand", "%s %%%d operand %d has type %%%d, want %%%d", ins.Op, ins.Result, i, typeOf(i), ins.Type)
			}
		}
		return nil
	}
	unarySame := func(base spirv.Opcode) error {
		s, ok := v.shapeOf(ins.Type)
		if !ok || s.base != base {
			return errf("type.unary", "%s %%%d result type %%%d has wrong base", ins.Op, ins.Result, ins.Type)
		}
		if typeOf(0) != ins.Type {
			return errf("type.unary-operand", "%s %%%d operand has type %%%d, want %%%d", ins.Op, ins.Result, typeOf(0), ins.Type)
		}
		return nil
	}
	compare := func(base ...spirv.Opcode) error {
		rs, ok := v.shapeOf(ins.Type)
		if !ok || rs.base != spirv.OpTypeBool {
			return errf("type.compare-result", "%s %%%d result must be bool-shaped", ins.Op, ins.Result)
		}
		os, ok := v.shapeOf(typeOf(0))
		if !ok || os.lanes != rs.lanes {
			return errf("type.compare-shape", "%s %%%d operand shape mismatch", ins.Op, ins.Result)
		}
		baseOK := false
		for _, b := range base {
			if os.base == b {
				baseOK = true
			}
		}
		if !baseOK {
			return errf("type.compare-base", "%s %%%d operand has wrong base type", ins.Op, ins.Result)
		}
		if typeOf(1) != typeOf(0) {
			return errf("type.compare-operands", "%s %%%d operands differ: %%%d vs %%%d", ins.Op, ins.Result, typeOf(0), typeOf(1))
		}
		return nil
	}

	switch ins.Op {
	case spirv.OpIAdd, spirv.OpISub, spirv.OpIMul, spirv.OpUDiv, spirv.OpSDiv,
		spirv.OpUMod, spirv.OpSRem, spirv.OpSMod,
		spirv.OpBitwiseOr, spirv.OpBitwiseXor, spirv.OpBitwiseAnd:
		return binSame(spirv.OpTypeInt)
	case spirv.OpFAdd, spirv.OpFSub, spirv.OpFMul, spirv.OpFDiv, spirv.OpFMod:
		return binSame(spirv.OpTypeFloat)
	case spirv.OpLogicalOr, spirv.OpLogicalAnd:
		return binSame(spirv.OpTypeBool)
	case spirv.OpSNegate, spirv.OpNot:
		return unarySame(spirv.OpTypeInt)
	case spirv.OpFNegate:
		return unarySame(spirv.OpTypeFloat)
	case spirv.OpLogicalNot:
		return unarySame(spirv.OpTypeBool)
	case spirv.OpIEqual, spirv.OpINotEqual, spirv.OpSGreaterThan, spirv.OpSGreaterThanEqual,
		spirv.OpSLessThan, spirv.OpSLessThanEqual:
		return compare(spirv.OpTypeInt)
	case spirv.OpFOrdEqual, spirv.OpFOrdNotEqual, spirv.OpFOrdLessThan, spirv.OpFOrdGreaterThan,
		spirv.OpFOrdLessThanEqual, spirv.OpFOrdGreaterThanEqual:
		return compare(spirv.OpTypeFloat)

	case spirv.OpSelect:
		cs, ok := v.shapeOf(typeOf(0))
		if !ok || cs.base != spirv.OpTypeBool {
			return errf("type.select-cond", "OpSelect %%%d condition is not bool-shaped", ins.Result)
		}
		if typeOf(1) != ins.Type || typeOf(2) != ins.Type {
			return errf("type.select-operands", "OpSelect %%%d operand types do not match result", ins.Result)
		}
		if rs, ok := v.shapeOf(ins.Type); ok && cs.lanes != 1 && cs.lanes != rs.lanes {
			return errf("type.select-shape", "OpSelect %%%d condition lanes mismatch", ins.Result)
		}

	case spirv.OpVectorTimesScalar:
		elem, _, ok := m.VectorInfo(ins.Type)
		if !ok || !m.IsFloatType(elem) {
			return errf("type.vts", "OpVectorTimesScalar %%%d result is not a float vector", ins.Result)
		}
		if typeOf(0) != ins.Type || typeOf(1) != elem {
			return errf("type.vts-operands", "OpVectorTimesScalar %%%d operand types wrong", ins.Result)
		}

	case spirv.OpMatrixTimesVector:
		col, cols, ok := m.MatrixInfo(typeOf(0))
		if !ok {
			return errf("type.mtv", "OpMatrixTimesVector %%%d first operand is not a matrix", ins.Result)
		}
		velem, vn, ok := m.VectorInfo(typeOf(1))
		if !ok || vn != cols {
			return errf("type.mtv-vec", "OpMatrixTimesVector %%%d vector size must equal column count", ins.Result)
		}
		celem, _, _ := m.VectorInfo(col)
		if velem != celem || ins.Type != col {
			return errf("type.mtv-result", "OpMatrixTimesVector %%%d result must be the matrix column type", ins.Result)
		}

	case spirv.OpDot:
		if typeOf(0) != typeOf(1) {
			return errf("type.dot", "OpDot %%%d operands differ", ins.Result)
		}
		elem, _, ok := m.VectorInfo(typeOf(0))
		if !ok || !m.IsFloatType(elem) || ins.Type != elem {
			return errf("type.dot-result", "OpDot %%%d must map float vectors to their element type", ins.Result)
		}

	case spirv.OpConvertFToS:
		fs, ok1 := v.shapeOf(typeOf(0))
		is, ok2 := v.shapeOf(ins.Type)
		if !ok1 || !ok2 || fs.base != spirv.OpTypeFloat || is.base != spirv.OpTypeInt || fs.lanes != is.lanes {
			return errf("type.convert", "OpConvertFToS %%%d shape mismatch", ins.Result)
		}
	case spirv.OpConvertSToF:
		is, ok1 := v.shapeOf(typeOf(0))
		fs, ok2 := v.shapeOf(ins.Type)
		if !ok1 || !ok2 || is.base != spirv.OpTypeInt || fs.base != spirv.OpTypeFloat || is.lanes != fs.lanes {
			return errf("type.convert", "OpConvertSToF %%%d shape mismatch", ins.Result)
		}
	case spirv.OpBitcast:
		a, ok1 := v.shapeOf(typeOf(0))
		b, ok2 := v.shapeOf(ins.Type)
		if !ok1 || !ok2 || a.lanes != b.lanes || a.base == spirv.OpTypeBool || b.base == spirv.OpTypeBool {
			return errf("type.bitcast", "OpBitcast %%%d must convert between same-width numeric shapes", ins.Result)
		}

	case spirv.OpCopyObject:
		if typeOf(0) != ins.Type {
			return errf("type.copy", "OpCopyObject %%%d operand type %%%d differs from result type %%%d", ins.Result, typeOf(0), ins.Type)
		}

	case spirv.OpCompositeConstruct:
		n, ok := m.CompositeMemberCount(ins.Type)
		if !ok {
			return errf("type.construct", "OpCompositeConstruct %%%d result %%%d is not a composite", ins.Result, ins.Type)
		}
		if len(ins.Operands) != n {
			return errf("type.construct-arity", "OpCompositeConstruct %%%d has %d members, want %d", ins.Result, len(ins.Operands), n)
		}
		for i := range ins.Operands {
			want, _ := m.CompositeMemberType(ins.Type, i)
			if typeOf(i) != want {
				return errf("type.construct-member", "OpCompositeConstruct %%%d member %d has type %%%d, want %%%d", ins.Result, i, typeOf(i), want)
			}
		}

	case spirv.OpCompositeExtract:
		t := typeOf(0)
		for _, idx := range ins.Operands[1:] {
			mt, ok := m.CompositeMemberType(t, int(idx))
			if !ok {
				return errf("type.extract-index", "OpCompositeExtract %%%d index %d out of range for type %%%d", ins.Result, idx, t)
			}
			t = mt
		}
		if t != ins.Type {
			return errf("type.extract-result", "OpCompositeExtract %%%d result type %%%d, want %%%d", ins.Result, ins.Type, t)
		}

	case spirv.OpCompositeInsert:
		if typeOf(1) != ins.Type {
			return errf("type.insert-base", "OpCompositeInsert %%%d composite type must equal result type", ins.Result)
		}
		t := ins.Type
		for _, idx := range ins.Operands[2:] {
			mt, ok := m.CompositeMemberType(t, int(idx))
			if !ok {
				return errf("type.insert-index", "OpCompositeInsert %%%d index %d out of range", ins.Result, idx)
			}
			t = mt
		}
		if typeOf(0) != t {
			return errf("type.insert-object", "OpCompositeInsert %%%d object type %%%d, want %%%d", ins.Result, typeOf(0), t)
		}

	case spirv.OpVectorShuffle:
		e1, n1, ok1 := m.VectorInfo(typeOf(0))
		e2, n2, ok2 := m.VectorInfo(typeOf(1))
		if !ok1 || !ok2 || e1 != e2 {
			return errf("type.shuffle-operands", "OpVectorShuffle %%%d operands must be vectors with one element type", ins.Result)
		}
		re, rn, ok := m.VectorInfo(ins.Type)
		if !ok || re != e1 || rn != len(ins.Operands)-2 {
			return errf("type.shuffle-result", "OpVectorShuffle %%%d result type mismatch", ins.Result)
		}
		for _, idx := range ins.Operands[2:] {
			if int(idx) >= n1+n2 {
				return errf("type.shuffle-index", "OpVectorShuffle %%%d component %d out of range", ins.Result, idx)
			}
		}

	case spirv.OpLoad:
		_, pointee, ok := m.PointerInfo(typeOf(0))
		if !ok {
			return errf("type.load-ptr", "OpLoad %%%d operand %%%d is not a pointer", ins.Result, opnd(0))
		}
		if pointee != ins.Type {
			return errf("type.load-result", "OpLoad %%%d result type %%%d, pointee is %%%d", ins.Result, ins.Type, pointee)
		}

	case spirv.OpStore:
		_, pointee, ok := m.PointerInfo(typeOf(0))
		if !ok {
			return errf("type.store-ptr", "OpStore target %%%d is not a pointer", opnd(0))
		}
		if typeOf(1) != pointee {
			return errf("type.store-object", "OpStore object %%%d has type %%%d, pointee is %%%d", opnd(1), typeOf(1), pointee)
		}

	case spirv.OpAccessChain:
		storage, pointee, ok := m.PointerInfo(typeOf(0))
		if !ok {
			return errf("type.chain-base", "OpAccessChain %%%d base %%%d is not a pointer", ins.Result, opnd(0))
		}
		t := pointee
		for _, w := range ins.Operands[1:] {
			idxID := spirv.ID(w)
			if m.TypeOp(t) == spirv.OpTypeStruct {
				iv, isConst := m.ConstantIntValue(idxID)
				if !isConst {
					return errf("type.chain-struct-index", "OpAccessChain %%%d indexes a struct with non-constant %%%d", ins.Result, idxID)
				}
				mt, ok := m.CompositeMemberType(t, int(iv))
				if !ok {
					return errf("type.chain-range", "OpAccessChain %%%d struct index %d out of range", ins.Result, iv)
				}
				t = mt
				continue
			}
			if !m.IsIntType(m.TypeOf(idxID)) {
				return errf("type.chain-index", "OpAccessChain %%%d index %%%d is not an integer", ins.Result, idxID)
			}
			var mt spirv.ID
			if elem, _, ok := m.VectorInfo(t); ok {
				mt = elem
			} else if col, _, ok := m.MatrixInfo(t); ok {
				mt = col
			} else if elem, _, ok := m.ArrayInfo(t); ok {
				mt = elem
			} else {
				return errf("type.chain-composite", "OpAccessChain %%%d indexes non-composite %%%d", ins.Result, t)
			}
			t = mt
		}
		rstorage, rpointee, ok := m.PointerInfo(ins.Type)
		if !ok || rpointee != t || rstorage != storage {
			return errf("type.chain-result", "OpAccessChain %%%d result must be ptr(storage %d)<%%%d>", ins.Result, storage, t)
		}

	case spirv.OpFunctionCall:
		callee := m.Function(opnd(0))
		if callee == nil {
			return errf("type.call-target", "OpFunctionCall %%%d calls non-function %%%d", ins.Result, opnd(0))
		}
		ret, params, _ := m.FunctionTypeInfo(callee.TypeID())
		if ins.Type != ret {
			return errf("type.call-result", "OpFunctionCall %%%d result type %%%d, callee returns %%%d", ins.Result, ins.Type, ret)
		}
		if len(ins.Operands)-1 != len(params) {
			return errf("type.call-arity", "OpFunctionCall %%%d passes %d args, callee wants %d", ins.Result, len(ins.Operands)-1, len(params))
		}
		for i, p := range params {
			if typeOf(i+1) != p {
				return errf("type.call-arg", "OpFunctionCall %%%d arg %d has type %%%d, want %%%d", ins.Result, i, typeOf(i+1), p)
			}
		}

	case spirv.OpVariable:
		storage, _, ok := m.PointerInfo(ins.Type)
		if !ok || storage != spirv.StorageFunction || ins.Operands[0] != spirv.StorageFunction {
			return errf("type.local-var", "in-function OpVariable %%%d must have Function storage pointer type", ins.Result)
		}

	case spirv.OpUndef, spirv.OpNop:
		// No constraints beyond the type existing.
	}
	return nil
}
