package validate_test

import (
	"strings"
	"testing"

	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
	"spirvfuzz/internal/testmod"
)

func TestCanonicalModulesValidate(t *testing.T) {
	for name, m := range testmod.All() {
		if err := validate.Module(m); err != nil {
			t.Errorf("%s: %v\n%s", name, err, m)
		}
	}
}

func TestBinaryRoundTripStillValidates(t *testing.T) {
	for name, m := range testmod.All() {
		back, err := spirv.DecodeBytes(m.EncodeBytes())
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if err := validate.Module(back); err != nil {
			t.Errorf("%s after round trip: %v", name, err)
		}
	}
}

// wantErr validates m and asserts the failure mentions rule.
func wantErr(t *testing.T, m *spirv.Module, rule string) {
	t.Helper()
	err := validate.Module(m)
	if err == nil {
		t.Fatalf("expected a %q violation, module validated\n%s", rule, m)
	}
	if !strings.Contains(err.Error(), rule) {
		t.Fatalf("expected rule %q, got %v", rule, err)
	}
}

func TestDetectsDuplicateID(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	// Give a body instruction the same result id as a constant.
	var victim *spirv.Instruction
	for _, ins := range fn.Blocks[0].Body {
		if ins.Result != 0 {
			victim = ins
		}
	}
	victim.Result = m.TypesGlobals[0].Result
	wantErr(t, m, "ssa.duplicate-id")
}

func TestDetectsBoundViolation(t *testing.T) {
	m := testmod.Diamond()
	m.Bound = 2
	wantErr(t, m, "module.bound")
}

func TestDetectsUseBeforeDef(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	// Move the entry block's condition computation after the terminator is
	// impossible structurally; instead, make the left block's CopyObject use
	// the right block's result (sibling, not dominating).
	var leftCopy, rightResult *spirv.Instruction
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpCopyObject {
				if leftCopy == nil {
					leftCopy = ins
				} else {
					rightResult = ins
				}
			}
		}
	}
	leftCopy.Operands[0] = uint32(rightResult.Result)
	wantErr(t, m, "ssa.dominance")
}

func TestDetectsUndefinedID(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	for _, ins := range fn.Blocks[0].Body {
		if ins.Op == spirv.OpFOrdLessThan {
			ins.Operands[0] = 9999
		}
	}
	wantErr(t, m, "ssa.undefined")
}

func TestDetectsMissingMergeInstruction(t *testing.T) {
	m := testmod.Diamond()
	m.Functions[0].Blocks[0].Merge = nil
	wantErr(t, m, "struct.selection-merge")
}

func TestLoopExitBranchesNeedNoMerge(t *testing.T) {
	// The loop's check block ends in OpBranchConditional without its own
	// merge instruction; that must be accepted.
	if err := validate.Module(testmod.Loop()); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsPhiParentNotPredecessor(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	merge := fn.Blocks[len(fn.Blocks)-1]
	phi := merge.Phis[0]
	phi.Operands[1] = uint32(fn.Blocks[0].Label) // entry is not a direct pred
	wantErr(t, m, "phi.non-pred")
}

func TestDetectsPhiCoverageGap(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	merge := fn.Blocks[len(fn.Blocks)-1]
	phi := merge.Phis[0]
	phi.Operands = phi.Operands[:2] // drop one incoming edge
	wantErr(t, m, "phi.coverage")
}

func TestDetectsPhiTypeMismatch(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	merge := fn.Blocks[len(fn.Blocks)-1]
	phi := merge.Phis[0]
	phi.Operands[0] = uint32(m.EnsureConstantInt(3)) // int into float ϕ
	wantErr(t, m, "phi.value-type")
}

func TestDetectsBadBlockOrder(t *testing.T) {
	m := testmod.Loop()
	fn := m.Functions[0]
	// Move the loop header after the check block it dominates.
	fn.Blocks[1], fn.Blocks[2] = fn.Blocks[2], fn.Blocks[1]
	wantErr(t, m, "block.order")
}

func TestDetectsBranchOutOfFunction(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	fn.Blocks[1].Term.Operands[0] = 9999
	wantErr(t, m, "block.bad-successor")
}

func TestDetectsNonBoolCondition(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	c := m.EnsureConstantInt(1)
	fn.Blocks[0].Term.Operands[0] = uint32(c)
	wantErr(t, m, "term.cond-type")
}

func TestDetectsArithTypeMismatch(t *testing.T) {
	m := testmod.Caller()
	// Change the helper's FAdd second operand to an int constant.
	helper := m.Functions[0]
	for _, ins := range helper.Blocks[0].Body {
		if ins.Op == spirv.OpFAdd {
			ins.Operands[1] = uint32(m.EnsureConstantInt(1))
		}
	}
	wantErr(t, m, "type.arith-operand")
}

func TestDetectsCallArityMismatch(t *testing.T) {
	m := testmod.Caller()
	main := m.EntryPointFunction()
	for _, b := range main.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpFunctionCall {
				ins.Operands = ins.Operands[:1] // drop the argument
			}
		}
	}
	wantErr(t, m, "type.call-arity")
}

func TestDetectsStoreTypeMismatch(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	merge := fn.Blocks[len(fn.Blocks)-1]
	for _, ins := range merge.Body {
		if ins.Op == spirv.OpStore {
			ins.Operands[1] = uint32(m.EnsureConstantFloat(0)) // float into vec4
		}
	}
	wantErr(t, m, "type.store-object")
}

func TestDetectsBadAccessChain(t *testing.T) {
	m := testmod.LocalVars()
	fn := m.EntryPointFunction()
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if ins.Op == spirv.OpAccessChain && len(ins.Operands) == 2 {
				// Struct index must be a constant; swap in the loaded coord.
				ins.Operands[1] = uint32(fn.Blocks[0].Body[1].Result)
			}
		}
	}
	if err := validate.Module(m); err == nil {
		t.Fatal("expected access-chain violation")
	}
}

func TestDetectsEntryPointErrors(t *testing.T) {
	m := testmod.Diamond()
	m.EntryPoints[0].Operands[1] = 9999
	wantErr(t, m, "entry.missing-function")

	m2 := testmod.Caller()
	// Point the entry point at the float-returning helper.
	m2.EntryPoints[0].Operands[1] = uint32(m2.Functions[0].ID())
	wantErr(t, m2, "entry.")
}

func TestDetectsMissingCapability(t *testing.T) {
	m := testmod.Diamond()
	m.Capabilities = nil
	wantErr(t, m, "module.capability")
}

func TestDetectsForwardReferenceInGlobals(t *testing.T) {
	m := testmod.Diamond()
	// Move the first type after everything else; something references it.
	tg := m.TypesGlobals
	m.TypesGlobals = append(append([]*spirv.Instruction{}, tg[1:]...), tg[0])
	if err := validate.Module(m); err == nil {
		t.Fatal("expected forward-reference violation")
	}
}

func TestDetectsEntryBlockPhi(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	merge := fn.Blocks[len(fn.Blocks)-1]
	fn.Blocks[0].Phis = append(fn.Blocks[0].Phis, merge.Phis[0].Clone())
	if err := validate.Module(m); err == nil {
		t.Fatal("expected entry-phi violation")
	}
}

func TestDetectsCompositeExtractOutOfRange(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	for _, ins := range fn.Blocks[0].Body {
		if ins.Op == spirv.OpCompositeExtract {
			ins.Operands[1] = 7 // vec2 has components 0 and 1
		}
	}
	wantErr(t, m, "type.extract-index")
}

func TestDetectsReturnValueInVoidFunction(t *testing.T) {
	m := testmod.Diamond()
	fn := m.Functions[0]
	c := m.EnsureConstantFloat(1)
	last := fn.Blocks[len(fn.Blocks)-1]
	last.Term = spirv.NewInstr(spirv.OpReturnValue, 0, 0, uint32(c))
	wantErr(t, m, "term.return-type")
}
