package validate

import (
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/cfa"
)

// checkFunction validates one function: signature coherence, block
// structure, block ordering, id availability, ϕ coherence, per-instruction
// typing and the simplified structured control-flow rules.
func (v *validator) checkFunction(fn *spirv.Function) error {
	m := v.m
	ret, params, ok := m.FunctionTypeInfo(fn.TypeID())
	if !ok {
		return errf("fn.type", "function %%%d has non-function type %%%d", fn.ID(), fn.TypeID())
	}
	if ret != fn.ReturnType() {
		return errf("fn.return-type", "function %%%d return type %%%d does not match type %%%d", fn.ID(), fn.ReturnType(), ret)
	}
	if len(params) != len(fn.Params) {
		return errf("fn.param-count", "function %%%d has %d parameters, type wants %d", fn.ID(), len(fn.Params), len(params))
	}
	for i, p := range fn.Params {
		if p.Type != params[i] {
			return errf("fn.param-type", "function %%%d parameter %d has type %%%d, want %%%d", fn.ID(), i, p.Type, params[i])
		}
	}
	if len(fn.Blocks) == 0 {
		return errf("fn.no-blocks", "function %%%d has no blocks", fn.ID())
	}
	for _, b := range fn.Blocks {
		if b.Term == nil {
			return errf("block.no-terminator", "block %%%d has no terminator", b.Label)
		}
		for _, ins := range b.Body {
			if ins.Op.IsTerminator() || ins.Op == spirv.OpPhi || ins.Op == spirv.OpSelectionMerge || ins.Op == spirv.OpLoopMerge {
				return errf("block.misplaced", "%s cannot appear in a block body", ins.Op)
			}
			if ins.Op.IsType() || ins.Op.IsConstant() {
				return errf("block.module-scope-op", "%s must be at module scope", ins.Op)
			}
		}
		for _, s := range b.Successors() {
			if fn.Block(s) == nil {
				return errf("block.bad-successor", "block %%%d branches to %%%d which is not a block of function %%%d", b.Label, s, fn.ID())
			}
		}
	}
	if len(fn.Entry().Phis) != 0 {
		return errf("block.entry-phi", "entry block %%%d has ϕ instructions", fn.Entry().Label)
	}
	g := cfa.Build(fn)
	if len(g.Preds[fn.Entry().Label]) != 0 {
		return errf("block.entry-pred", "entry block %%%d has predecessors", fn.Entry().Label)
	}
	if !cfa.BlockOrderRespectsDominance(fn) {
		return errf("block.order", "block order of function %%%d violates dominance ordering", fn.ID())
	}
	info := cfa.Analyze(m, fn)
	if err := v.checkPhis(fn, g, info); err != nil {
		return err
	}
	if err := v.checkAvailability(fn, info); err != nil {
		return err
	}
	if err := v.checkStructured(fn, g, info); err != nil {
		return err
	}
	for _, b := range fn.Blocks {
		for _, ins := range b.Body {
			if err := v.checkInstructionTypes(fn, ins); err != nil {
				return err
			}
		}
		if err := v.checkTerminator(fn, b); err != nil {
			return err
		}
	}
	return nil
}

// checkPhis verifies each ϕ covers exactly the block's predecessors, with
// values of the ϕ's type that are available at the end of each predecessor.
func (v *validator) checkPhis(fn *spirv.Function, g *cfa.CFG, info *cfa.Info) error {
	reach := g.Reachable()
	for _, b := range fn.Blocks {
		for _, phi := range b.Phis {
			if len(phi.Operands)%2 != 0 {
				return errf("phi.pairs", "ϕ %%%d has odd operand count", phi.Result)
			}
			parents := make(map[spirv.ID]bool)
			for i := 0; i+1 < len(phi.Operands); i += 2 {
				val, parent := spirv.ID(phi.Operands[i]), spirv.ID(phi.Operands[i+1])
				if parents[parent] {
					return errf("phi.duplicate-parent", "ϕ %%%d lists parent %%%d twice", phi.Result, parent)
				}
				parents[parent] = true
				isPred := false
				for _, p := range g.Preds[b.Label] {
					if p == parent {
						isPred = true
						break
					}
				}
				if !isPred {
					return errf("phi.non-pred", "ϕ %%%d parent %%%d is not a predecessor of %%%d", phi.Result, parent, b.Label)
				}
				if got := v.m.TypeOf(val); got != phi.Type {
					return errf("phi.value-type", "ϕ %%%d value %%%d has type %%%d, want %%%d", phi.Result, val, got, phi.Type)
				}
				// The value must be available at the end of the parent block.
				pb := fn.Block(parent)
				if reach[parent] && !info.AvailableAt(val, parent, len(pb.Phis)+len(pb.Body)) {
					return errf("phi.value-avail", "ϕ %%%d value %%%d is not available at end of parent %%%d", phi.Result, val, parent)
				}
			}
			if reach[b.Label] && len(parents) != len(g.Preds[b.Label]) {
				return errf("phi.coverage", "ϕ %%%d covers %d parents, block %%%d has %d predecessors", phi.Result, len(parents), b.Label, len(g.Preds[b.Label]))
			}
		}
	}
	return nil
}

// checkAvailability verifies every id use in reachable blocks respects SSA
// dominance (ϕ uses were checked separately).
func (v *validator) checkAvailability(fn *spirv.Function, info *cfa.Info) error {
	reach := cfa.Build(fn).Reachable()
	for _, b := range fn.Blocks {
		if !reach[b.Label] {
			// Uses in unreachable blocks still need definitions to exist,
			// but dominance is vacuous there (SPIR-V shares this rule).
			var missing error
			check := func(ins *spirv.Instruction) {
				ins.Uses(func(id spirv.ID) {
					if missing == nil && v.def(id) == nil {
						missing = errf("ssa.undefined", "use of undefined id %%%d in unreachable block %%%d", id, b.Label)
					}
				})
			}
			b.Instructions(check)
			if missing != nil {
				return missing
			}
			continue
		}
		pos := len(b.Phis)
		var verr error
		checkUse := func(ins *spirv.Instruction, pos int) {
			ins.Uses(func(id spirv.ID) {
				if verr != nil {
					return
				}
				if v.def(id) == nil {
					verr = errf("ssa.undefined", "use of undefined id %%%d by %s", id, ins)
					return
				}
				// Types, constants, globals, functions, labels-as-branch-
				// targets and merge operands are module/structural refs.
				d := v.def(id)
				if d.Op.IsType() || d.Op.IsConstant() || d.Op == spirv.OpLabel || d.Op == spirv.OpUndef ||
					d.Op == spirv.OpFunction || info.ModuleScope[id] {
					return
				}
				if !info.AvailableAt(id, b.Label, pos) {
					verr = errf("ssa.dominance", "id %%%d is not available at its use by %s in block %%%d", id, ins, b.Label)
				}
			})
		}
		for _, ins := range b.Body {
			checkUse(ins, pos)
			pos++
		}
		if b.Merge != nil {
			checkUse(b.Merge, pos)
		}
		checkUse(b.Term, pos)
		if verr != nil {
			return verr
		}
	}
	return nil
}

// checkStructured enforces the simplified structured control-flow rules of
// this subset:
//   - merge and continue targets of OpLoopMerge/OpSelectionMerge must be
//     blocks of the same function;
//   - a block ending in OpBranchConditional or OpSwitch must either carry a
//     merge instruction, or target (as a structured exit) the merge or
//     continue block of some loop header that dominates it.
func (v *validator) checkStructured(fn *spirv.Function, g *cfa.CFG, info *cfa.Info) error {
	loopExits := make(map[spirv.ID][]spirv.ID) // loop header -> {merge, continue}
	for _, b := range fn.Blocks {
		if b.Merge == nil {
			continue
		}
		mb := spirv.ID(b.Merge.Operands[0])
		if fn.Block(mb) == nil {
			return errf("struct.merge-target", "merge target %%%d of block %%%d is not a block", mb, b.Label)
		}
		if b.Merge.Op == spirv.OpLoopMerge {
			cb := spirv.ID(b.Merge.Operands[1])
			if fn.Block(cb) == nil {
				return errf("struct.continue-target", "continue target %%%d of block %%%d is not a block", cb, b.Label)
			}
			loopExits[b.Label] = []spirv.ID{mb, cb}
		}
	}
	reach := g.Reachable()
	for _, b := range fn.Blocks {
		if !reach[b.Label] {
			continue
		}
		op := b.Term.Op
		if op != spirv.OpBranchConditional && op != spirv.OpSwitch {
			continue
		}
		if b.Merge != nil {
			continue
		}
		// Permitted if a successor is a structured exit of a dominating loop.
		ok := false
		for header, exits := range loopExits {
			if !info.Dom.Dominates(header, b.Label) {
				continue
			}
			for _, s := range b.Successors() {
				for _, e := range exits {
					if s == e {
						ok = true
					}
				}
			}
		}
		if !ok {
			return errf("struct.selection-merge", "block %%%d has a conditional terminator but no merge instruction", b.Label)
		}
	}
	return nil
}

// checkTerminator validates terminator typing.
func (v *validator) checkTerminator(fn *spirv.Function, b *spirv.Block) error {
	t := b.Term
	switch t.Op {
	case spirv.OpBranchConditional:
		cond := t.IDOperand(0)
		if !v.m.IsBoolType(v.m.TypeOf(cond)) {
			return errf("term.cond-type", "OpBranchConditional in %%%d has non-bool condition %%%d", b.Label, cond)
		}
	case spirv.OpSwitch:
		sel := t.IDOperand(0)
		if !v.m.IsIntType(v.m.TypeOf(sel)) {
			return errf("term.switch-type", "OpSwitch in %%%d has non-integer selector %%%d", b.Label, sel)
		}
	case spirv.OpReturn:
		if v.m.TypeOp(fn.ReturnType()) != spirv.OpTypeVoid {
			return errf("term.return-void", "OpReturn in non-void function %%%d", fn.ID())
		}
	case spirv.OpReturnValue:
		got := v.m.TypeOf(t.IDOperand(0))
		if got != fn.ReturnType() {
			return errf("term.return-type", "OpReturnValue in %%%d returns %%%d, function wants %%%d", b.Label, got, fn.ReturnType())
		}
	}
	return nil
}
