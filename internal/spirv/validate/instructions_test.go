package validate_test

import (
	"strings"
	"testing"

	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
)

// brokenShader builds a minimal fragment shader, lets corrupt inject an
// ill-typed instruction into the entry block, and returns the module.
func brokenShader(corrupt func(b *spirv.Builder, s *spirv.FragmentShell)) *spirv.Module {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	corrupt(b, s)
	b.FinishFragmentShell(s)
	return b.Mod
}

func TestInstructionTypeRules(t *testing.T) {
	cases := []struct {
		name    string
		rule    string
		corrupt func(b *spirv.Builder, s *spirv.FragmentShell)
	}{
		{"dot result must be element type", "type.dot", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			v := m.EnsureConstantComposite(s.Vec2, one, one)
			b.Emit(spirv.OpDot, s.Int, v, v)
		}},
		{"dot operands must match", "type.dot", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			v2 := m.EnsureConstantComposite(s.Vec2, one, one)
			v4 := m.EnsureConstantComposite(s.Vec4, one, one, one, one)
			b.Emit(spirv.OpDot, s.Float, v2, v4)
		}},
		{"vts scalar type", "type.vts", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			i1 := m.EnsureConstantInt(1)
			v := m.EnsureConstantComposite(s.Vec2, one, one)
			b.Emit(spirv.OpVectorTimesScalar, s.Vec2, v, i1)
		}},
		{"mtv needs matrix", "type.mtv", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			v := m.EnsureConstantComposite(s.Vec2, one, one)
			b.Emit(spirv.OpMatrixTimesVector, s.Vec2, v, v)
		}},
		{"mtv vector arity", "type.mtv-vec", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			mat2 := m.EnsureTypeMatrix(s.Vec2, 2)
			col := m.EnsureConstantComposite(s.Vec2, one, one)
			mat := m.EnsureConstantComposite(mat2, col, col)
			v4 := m.EnsureConstantComposite(s.Vec4, one, one, one, one)
			b.Emit(spirv.OpMatrixTimesVector, s.Vec2, mat, v4)
		}},
		{"shuffle result arity", "type.shuffle-result", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			v := m.EnsureConstantComposite(s.Vec2, one, one)
			b.EmitWords(spirv.OpVectorShuffle, s.Vec4, uint32(v), uint32(v), 0, 1) // 2 literals, vec4 result
		}},
		{"shuffle index range", "type.shuffle-index", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			v := m.EnsureConstantComposite(s.Vec2, one, one)
			b.EmitWords(spirv.OpVectorShuffle, s.Vec2, uint32(v), uint32(v), 0, 9)
		}},
		{"insert base type", "type.insert-base", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			v2 := m.EnsureConstantComposite(s.Vec2, one, one)
			b.EmitWords(spirv.OpCompositeInsert, s.Vec4, uint32(one), uint32(v2), 0)
		}},
		{"insert object type", "type.insert-object", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			i1 := m.EnsureConstantInt(1)
			v2 := m.EnsureConstantComposite(s.Vec2, one, one)
			b.EmitWords(spirv.OpCompositeInsert, s.Vec2, uint32(i1), uint32(v2), 0)
		}},
		{"convert shape", "type.convert", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			i1 := m.EnsureConstantInt(1)
			b.Emit(spirv.OpConvertFToS, s.Int, i1) // operand is int, not float
		}},
		{"bitcast bool", "type.bitcast", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			tr := m.EnsureConstantBool(true)
			b.Emit(spirv.OpBitcast, s.Int, tr)
		}},
		{"select condition", "type.select-cond", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			b.Emit(spirv.OpSelect, s.Float, one, one, one)
		}},
		{"select operands", "type.select-operands", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			i1 := m.EnsureConstantInt(1)
			tr := m.EnsureConstantBool(true)
			b.Emit(spirv.OpSelect, s.Float, tr, one, i1)
		}},
		{"copy type mismatch", "type.copy", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			b.Emit(spirv.OpCopyObject, s.Int, one)
		}},
		{"logical not base", "type.unary", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			b.Emit(spirv.OpLogicalNot, s.Float, one)
		}},
		{"compare result base", "type.compare-result", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			i1 := m.EnsureConstantInt(1)
			b.Emit(spirv.OpIEqual, s.Int, i1, i1)
		}},
		{"compare operand base", "type.compare-base", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			b.Emit(spirv.OpIEqual, s.Bool, one, one)
		}},
		{"load of non-pointer", "type.load-ptr", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			b.Emit(spirv.OpLoad, s.Float, one)
		}},
		{"construct arity", "type.construct-arity", func(b *spirv.Builder, s *spirv.FragmentShell) {
			m := b.Mod
			one := m.EnsureConstantFloat(1)
			b.Emit(spirv.OpCompositeConstruct, s.Vec4, one, one)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := brokenShader(tc.corrupt)
			err := validate.Module(m)
			if err == nil {
				t.Fatalf("module validated despite %s violation\n%s", tc.rule, m)
			}
			if !strings.Contains(err.Error(), tc.rule) {
				t.Fatalf("err = %v, want rule %q", err, tc.rule)
			}
		})
	}
}
