package cfa_test

import (
	"reflect"
	"testing"

	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/cfa"
)

// fn builds a function skeleton from (label, successor-list) pairs. The
// first block is the entry. Terminators are OpBranch/OpBranchConditional/
// OpReturn depending on successor count (conditions use a dummy id).
func fnOf(t *testing.T, blocks ...[]spirv.ID) *spirv.Function {
	t.Helper()
	f := &spirv.Function{Def: spirv.NewInstr(spirv.OpFunction, 1, 100, spirv.FunctionControlNone, 2)}
	for _, spec := range blocks {
		b := &spirv.Block{Label: spec[0]}
		switch len(spec) - 1 {
		case 0:
			b.Term = spirv.NewInstr(spirv.OpReturn, 0, 0)
		case 1:
			b.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(spec[1]))
		case 2:
			b.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, 999, uint32(spec[1]), uint32(spec[2]))
		default:
			t.Fatalf("too many successors")
		}
		f.Blocks = append(f.Blocks, b)
	}
	return f
}

func TestCFGAndReachability(t *testing.T) {
	// 1 -> (2, 3); 2 -> 4; 3 -> 4; 4 halt; 5 orphan.
	f := fnOf(t, []spirv.ID{1, 2, 3}, []spirv.ID{2, 4}, []spirv.ID{3, 4}, []spirv.ID{4}, []spirv.ID{5, 4})
	g := cfa.Build(f)
	if !reflect.DeepEqual(g.Succs[1], []spirv.ID{2, 3}) {
		t.Fatalf("succs(1) = %v", g.Succs[1])
	}
	preds := g.Preds[4]
	if len(preds) != 3 { // 2, 3 and the orphan 5
		t.Fatalf("preds(4) = %v", preds)
	}
	reach := g.Reachable()
	for _, b := range []spirv.ID{1, 2, 3, 4} {
		if !reach[b] {
			t.Errorf("block %d should be reachable", b)
		}
	}
	if reach[5] {
		t.Error("orphan block 5 must be unreachable")
	}
}

func TestDominators(t *testing.T) {
	// Classic diamond with a loop back-edge:
	// 1 -> 2; 2 -> (3,4); 3 -> 5; 4 -> 5; 5 -> (2, 6); 6 halt.
	f := fnOf(t,
		[]spirv.ID{1, 2},
		[]spirv.ID{2, 3, 4},
		[]spirv.ID{3, 5},
		[]spirv.ID{4, 5},
		[]spirv.ID{5, 2, 6},
		[]spirv.ID{6},
	)
	d := cfa.Dominators(cfa.Build(f))
	want := map[spirv.ID]spirv.ID{2: 1, 3: 2, 4: 2, 5: 2, 6: 5}
	for b, idom := range want {
		if d.Idom[b] != idom {
			t.Errorf("idom(%d) = %d, want %d", b, d.Idom[b], idom)
		}
	}
	if !d.Dominates(1, 6) || !d.Dominates(2, 6) || !d.Dominates(5, 6) {
		t.Error("1, 2, 5 must dominate 6")
	}
	if d.Dominates(3, 5) || d.Dominates(4, 5) {
		t.Error("3 and 4 must not dominate 5")
	}
	if !d.Dominates(3, 3) {
		t.Error("dominance is reflexive")
	}
	if d.StrictlyDominates(3, 3) {
		t.Error("strict dominance is irreflexive")
	}
	// Unreachable blocks are dominated by nothing else.
	f2 := fnOf(t, []spirv.ID{1}, []spirv.ID{9})
	d2 := cfa.Dominators(cfa.Build(f2))
	if d2.Dominates(1, 9) {
		t.Error("unreachable block must not be dominated by entry")
	}
}

func TestReversePostOrder(t *testing.T) {
	f := fnOf(t, []spirv.ID{1, 2, 3}, []spirv.ID{2, 4}, []spirv.ID{3, 4}, []spirv.ID{4})
	rpo := cfa.Build(f).ReversePostOrder()
	if rpo[0] != 1 || rpo[len(rpo)-1] != 4 {
		t.Fatalf("rpo = %v", rpo)
	}
	pos := map[spirv.ID]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	if !(pos[1] < pos[2] && pos[1] < pos[3] && pos[2] < pos[4] && pos[3] < pos[4]) {
		t.Fatalf("rpo order violated: %v", rpo)
	}
}

func TestAvailability(t *testing.T) {
	// Build: entry(1): %10 = CopyObject %c ; cond branch (3,4)
	// 3: %11 = CopyObject %10; branch 5.  4: branch 5.  5: ret.
	m := spirv.NewModule()
	f32 := m.EnsureTypeFloat(32)
	c := m.EnsureConstantFloat(2)
	void := m.EnsureTypeVoid()
	fnType := m.EnsureTypeFunction(void)
	cond := m.EnsureConstantBool(true)
	fn := &spirv.Function{Def: spirv.NewInstr(spirv.OpFunction, void, m.FreshID(), spirv.FunctionControlNone, uint32(fnType))}
	b1 := &spirv.Block{Label: m.FreshID()}
	b3 := &spirv.Block{Label: m.FreshID()}
	b4 := &spirv.Block{Label: m.FreshID()}
	b5 := &spirv.Block{Label: m.FreshID()}
	v10 := m.FreshID()
	b1.Body = append(b1.Body, spirv.NewInstr(spirv.OpCopyObject, f32, v10, uint32(c)))
	b1.Merge = spirv.NewInstr(spirv.OpSelectionMerge, 0, 0, uint32(b5.Label), spirv.SelectionControlNone)
	b1.Term = spirv.NewInstr(spirv.OpBranchConditional, 0, 0, uint32(cond), uint32(b3.Label), uint32(b4.Label))
	v11 := m.FreshID()
	b3.Body = append(b3.Body, spirv.NewInstr(spirv.OpCopyObject, f32, v11, uint32(v10)))
	b3.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(b5.Label))
	b4.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(b5.Label))
	b5.Term = spirv.NewInstr(spirv.OpReturn, 0, 0)
	fn.Blocks = []*spirv.Block{b1, b3, b4, b5}
	m.Functions = append(m.Functions, fn)

	info := cfa.Analyze(m, fn)
	if !info.AvailableAt(v10, b3.Label, 0) {
		t.Error("v10 (entry) must be available in b3")
	}
	if !info.AvailableAt(v10, b5.Label, 0) {
		t.Error("v10 (entry) must be available in b5 (entry dominates all)")
	}
	if info.AvailableAt(v11, b5.Label, 0) {
		t.Error("v11 (defined in b3) must NOT be available in b5 (b3 does not dominate)")
	}
	if info.AvailableAt(v11, b4.Label, 0) {
		t.Error("v11 must not be available in sibling b4")
	}
	if !info.AvailableAt(v11, b3.Label, 1) {
		t.Error("v11 available after its own definition")
	}
	if info.AvailableAt(v10, b1.Label, 0) {
		t.Error("v10 not available before its own definition")
	}
	if !info.AvailableAt(c, b4.Label, 0) {
		t.Error("constants are available everywhere")
	}
	if info.AvailableAt(b3.Label, b5.Label, 0) {
		t.Error("labels are not values")
	}
}

func TestBlockOrderRespectsDominance(t *testing.T) {
	// Order 1,2,3,4 with 1->(2,3), 2->4, 3->4 is fine; 4 before 2 is fine
	// too (4's idom is 1); but a dominated block before its idom is not.
	f := fnOf(t, []spirv.ID{1, 2, 3}, []spirv.ID{2, 4}, []spirv.ID{3, 4}, []spirv.ID{4})
	if !cfa.BlockOrderRespectsDominance(f) {
		t.Fatal("valid order rejected")
	}
	// Swap 4 (idom 1) before 2 and 3: still valid.
	f.Blocks[1], f.Blocks[3] = f.Blocks[3], f.Blocks[1]
	if !cfa.BlockOrderRespectsDominance(f) {
		t.Fatal("reorder of siblings rejected (Figure 8b shape)")
	}
	// 1 -> 2 -> 3 chain with 3 placed before 2: 3's idom is 2, invalid.
	g := fnOf(t, []spirv.ID{1, 2}, []spirv.ID{2, 3}, []spirv.ID{3})
	g.Blocks[1], g.Blocks[2] = g.Blocks[2], g.Blocks[1]
	if cfa.BlockOrderRespectsDominance(g) {
		t.Fatal("dominated block before dominator accepted")
	}
}
