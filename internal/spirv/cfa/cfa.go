// Package cfa provides control-flow analyses over SPIR-V functions: the
// control-flow graph, reachability, dominator trees (Cooper-Harvey-Kennedy),
// and availability of ids at use sites. These are the analyses the
// validator, optimizer and transformations all share.
package cfa

import "spirvfuzz/internal/spirv"

// CFG is the control-flow graph of one function.
type CFG struct {
	Fn    *spirv.Function
	Succs map[spirv.ID][]spirv.ID
	Preds map[spirv.ID][]spirv.ID
}

// Build computes the CFG of fn.
func Build(fn *spirv.Function) *CFG {
	g := &CFG{
		Fn:    fn,
		Succs: make(map[spirv.ID][]spirv.ID, len(fn.Blocks)),
		Preds: make(map[spirv.ID][]spirv.ID, len(fn.Blocks)),
	}
	for _, b := range fn.Blocks {
		succs := b.Successors()
		g.Succs[b.Label] = succs
		if _, ok := g.Preds[b.Label]; !ok {
			g.Preds[b.Label] = nil
		}
		for _, s := range succs {
			g.Preds[s] = append(g.Preds[s], b.Label)
		}
	}
	return g
}

// Reachable returns the set of blocks reachable from the entry block.
func (g *CFG) Reachable() map[spirv.ID]bool {
	seen := make(map[spirv.ID]bool, len(g.Fn.Blocks))
	if len(g.Fn.Blocks) == 0 {
		return seen
	}
	stack := []spirv.ID{g.Fn.Entry().Label}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, s := range g.Succs[b] {
			if !seen[s] {
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// ReversePostOrder returns the reachable blocks in reverse post-order. The
// DFS visits successors in reverse declaration order, which yields the
// conventional layout order (then-arm before else-arm before merge) — the
// order builders and compilers naturally emit, so a module laid out
// naturally is already in RPO.
func (g *CFG) ReversePostOrder() []spirv.ID {
	var post []spirv.ID
	seen := make(map[spirv.ID]bool)
	var dfs func(b spirv.ID)
	dfs = func(b spirv.ID) {
		seen[b] = true
		succs := g.Succs[b]
		for i := len(succs) - 1; i >= 0; i-- {
			if s := succs[i]; !seen[s] && g.Fn.Block(s) != nil {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if len(g.Fn.Blocks) > 0 {
		dfs(g.Fn.Entry().Label)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree is the dominator tree of a function's reachable blocks.
type DomTree struct {
	// Idom maps each reachable non-entry block to its immediate dominator.
	Idom map[spirv.ID]spirv.ID
	// Entry is the function's entry block label.
	Entry spirv.ID
	// rpoIndex orders blocks for the CHK intersection walk.
	rpoIndex map[spirv.ID]int
}

// Dominators computes the dominator tree with the Cooper-Harvey-Kennedy
// iterative algorithm over reverse post-order.
func Dominators(g *CFG) *DomTree {
	rpo := g.ReversePostOrder()
	idx := make(map[spirv.ID]int, len(rpo))
	for i, b := range rpo {
		idx[b] = i
	}
	d := &DomTree{Idom: make(map[spirv.ID]spirv.ID, len(rpo)), rpoIndex: idx}
	if len(rpo) == 0 {
		return d
	}
	entry := rpo[0]
	d.Entry = entry
	d.Idom[entry] = entry
	intersect := func(a, b spirv.ID) spirv.ID {
		for a != b {
			for idx[a] > idx[b] {
				a = d.Idom[a]
			}
			for idx[b] > idx[a] {
				b = d.Idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom spirv.ID
			for _, p := range g.Preds[b] {
				if _, ok := d.Idom[p]; !ok {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Dominates reports whether block a dominates block b (reflexively).
// Unreachable blocks dominate nothing and are dominated only by themselves.
func (d *DomTree) Dominates(a, b spirv.ID) bool {
	if a == b {
		return true
	}
	cur, ok := d.Idom[b]
	if !ok {
		return false
	}
	for {
		if cur == a {
			return true
		}
		if cur == d.Entry {
			return false
		}
		next, ok := d.Idom[cur]
		if !ok || next == cur {
			return false
		}
		cur = next
	}
}

// StrictlyDominates reports whether a strictly dominates b.
func (d *DomTree) StrictlyDominates(a, b spirv.ID) bool {
	return a != b && d.Dominates(a, b)
}

// Info bundles the per-function analyses needed to answer availability
// queries: where each id is defined and whether a definition reaches a use.
type Info struct {
	Mod *spirv.Module
	Fn  *spirv.Function
	G   *CFG
	Dom *DomTree
	// DefBlock maps a result id defined inside the function to its block.
	DefBlock map[spirv.ID]spirv.ID
	// DefPos maps a result id to its position within its block; ϕs come
	// first, then body instructions. Labels have position -1.
	DefPos map[spirv.ID]int
	// ModuleScope holds ids defined at module scope (types, constants,
	// globals, all functions' ids) plus this function's parameters, which
	// are available everywhere in the function.
	ModuleScope map[spirv.ID]bool
}

// Analyze computes Info for fn within m.
func Analyze(m *spirv.Module, fn *spirv.Function) *Info {
	info := &Info{
		Mod:         m,
		Fn:          fn,
		DefBlock:    make(map[spirv.ID]spirv.ID),
		DefPos:      make(map[spirv.ID]int),
		ModuleScope: make(map[spirv.ID]bool),
	}
	info.G = Build(fn)
	info.Dom = Dominators(info.G)
	for _, ins := range m.TypesGlobals {
		if ins.Result != 0 {
			info.ModuleScope[ins.Result] = true
		}
	}
	for _, f := range m.Functions {
		info.ModuleScope[f.ID()] = true
	}
	for _, p := range fn.Params {
		info.ModuleScope[p.Result] = true
	}
	for _, b := range fn.Blocks {
		info.DefBlock[b.Label] = b.Label
		info.DefPos[b.Label] = -1
		pos := 0
		for _, p := range b.Phis {
			info.DefBlock[p.Result] = b.Label
			info.DefPos[p.Result] = pos
			pos++
		}
		for _, ins := range b.Body {
			if ins.Result != 0 {
				info.DefBlock[ins.Result] = b.Label
				info.DefPos[ins.Result] = pos
			}
			pos++
		}
	}
	return info
}

// PosOf returns the position of the instruction at index i of block b's
// Body in the block-wide numbering used by DefPos.
func (info *Info) PosOf(b *spirv.Block, bodyIndex int) int {
	return len(b.Phis) + bodyIndex
}

// AvailableAt reports whether id may be used by the instruction at position
// pos of block blk: id is at module scope or a parameter, or defined earlier
// in the same block, or defined in a block that strictly dominates blk.
func (info *Info) AvailableAt(id spirv.ID, blk spirv.ID, pos int) bool {
	if info.ModuleScope[id] {
		return true
	}
	db, ok := info.DefBlock[id]
	if !ok {
		return false
	}
	if db == blk {
		if info.DefPos[id] == -1 { // the block's own label: never a value
			return false
		}
		return info.DefPos[id] < pos
	}
	return info.Dom.StrictlyDominates(db, blk)
}

// BlockOrderRespectsDominance reports whether the function's syntactic block
// order satisfies the SPIR-V rule: the entry block appears first, and every
// block appears before all blocks it dominates... i.e. each block appears
// after every block that strictly dominates it. Unreachable blocks may
// appear anywhere after the entry.
func BlockOrderRespectsDominance(fn *spirv.Function) bool {
	g := Build(fn)
	dom := Dominators(g)
	seen := make(map[spirv.ID]bool, len(fn.Blocks))
	for i, b := range fn.Blocks {
		if i == 0 && len(fn.Blocks) > 0 && b.Label != fn.Entry().Label {
			return false
		}
		idom, reachable := dom.Idom[b.Label]
		if reachable && b.Label != dom.Entry && !seen[idom] {
			return false
		}
		seen[b.Label] = true
	}
	return true
}
