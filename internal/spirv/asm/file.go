package asm

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"

	"spirvfuzz/internal/spirv"
)

// LoadModule reads a module from disk, auto-detecting the format: files
// starting with the SPIR-V magic word (either byte order) are decoded as
// binaries, anything else is parsed as a textual listing.
func LoadModule(path string) (*spirv.Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 4 {
		word := binary.LittleEndian.Uint32(data)
		if word == spirv.Magic {
			return spirv.DecodeBytes(data)
		}
		if binary.BigEndian.Uint32(data) == spirv.Magic {
			return nil, fmt.Errorf("asm: %s is big-endian SPIR-V; only little-endian is supported", path)
		}
	}
	return Parse(string(data))
}

// SaveModule writes a module to disk: paths ending in .spv get the binary
// encoding, everything else the textual listing.
func SaveModule(m *spirv.Module, path string) error {
	var data []byte
	if strings.HasSuffix(path, ".spv") {
		data = m.EncodeBytes()
	} else {
		data = []byte(Disassemble(m))
	}
	return os.WriteFile(path, data, 0o644)
}
