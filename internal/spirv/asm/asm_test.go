package asm_test

import (
	"reflect"
	"strings"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/asm"
	"spirvfuzz/internal/spirv/validate"
	"spirvfuzz/internal/testmod"
)

func TestRoundTripCanonicalModules(t *testing.T) {
	for name, m := range testmod.All() {
		text := asm.Disassemble(m)
		back, err := asm.Parse(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, text)
		}
		if got := asm.Disassemble(back); got != text {
			t.Fatalf("%s: listing not stable:\n--- first\n%s\n--- second\n%s", name, text, got)
		}
		if err := validate.Module(back); err != nil {
			t.Fatalf("%s: parsed module invalid: %v", name, err)
		}
		// The binary encodings must agree too (bound may legitimately
		// differ if the original had gaps at the top; compare per-word from
		// the instruction stream by re-encoding the parsed module's text).
		if back.InstructionCount() != m.InstructionCount() {
			t.Fatalf("%s: instruction count %d != %d", name, back.InstructionCount(), m.InstructionCount())
		}
	}
}

func TestRoundTripCorpusAndVariants(t *testing.T) {
	refs := corpus.References()
	donors := corpus.Donors()
	for i, item := range refs {
		if i%4 != 0 {
			continue
		}
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: int64(i), Donors: donors, EnableRecommendations: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []*spirv.Module{item.Mod, res.Variant} {
			text := asm.Disassemble(m)
			back, err := asm.Parse(text)
			if err != nil {
				t.Fatalf("%s: %v", item.Name, err)
			}
			if asm.Disassemble(back) != text {
				t.Fatalf("%s: round trip unstable", item.Name)
			}
		}
	}
}

func TestParseAcceptsCommentsAndBlanks(t *testing.T) {
	text := `
; a comment
OpCapability 1

OpMemoryModel 0 1
%1 = OpTypeVoid
%2 = OpTypeFunction %1
%3 = OpFunction %1 0 %2
%4 = OpLabel
OpReturn
OpFunctionEnd
`
	m, err := asm.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Functions) != 1 || m.Functions[0].ID() != 3 {
		t.Fatalf("parsed %d functions", len(m.Functions))
	}
	if m.Bound != 5 {
		t.Fatalf("bound = %d, want 5", m.Bound)
	}
}

func TestParseStringsWithSpaces(t *testing.T) {
	m := spirv.NewModule()
	b := &spirv.Builder{Mod: m}
	b.Name(7, `hello "world" \ two`)
	text := m.String()
	back, err := asm.Parse(text)
	if err != nil {
		t.Fatalf("%v in\n%s", err, text)
	}
	s, _ := spirv.DecodeString(back.Names[0].Operands[1:])
	if s != `hello "world" \ two` {
		t.Fatalf("string mangled: %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"unknown opcode", "OpBogus", "unknown opcode"},
		{"missing result", "OpTypeVoid", "requires a result id"},
		{"unexpected result", "%3 = OpReturn", "takes no result id"},
		{"bad id", "%1 = OpTypeVector %x 2", "bad id"},
		{"bad literal", "%1 = OpTypeInt abc 1", "bad literal"},
		{"nested function", "%1 = OpTypeVoid\n%2 = OpTypeFunction %1\n%3 = OpFunction %1 0 %2\n%4 = OpFunction %1 0 %2", "nested OpFunction"},
		{"missing end", "%1 = OpTypeVoid\n%2 = OpTypeFunction %1\n%3 = OpFunction %1 0 %2", "missing OpFunctionEnd"},
		{"param after block", "%1 = OpTypeVoid\n%2 = OpTypeFunction %1\n%3 = OpFunction %1 0 %2\n%4 = OpLabel\nOpReturn\n%5 = OpFunctionParameter %1", "outside function preamble"},
		{"unterminated string", `OpName %1 "oops`, "unterminated string"},
		{"missing equals", "%1 OpTypeVoid", "missing '='"},
		{"trailing operands", "OpReturn %1", "trailing operands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := asm.Parse(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestBinaryAndTextAgree(t *testing.T) {
	m := testmod.Loop()
	viaText, err := asm.Parse(asm.Disassemble(m))
	if err != nil {
		t.Fatal(err)
	}
	viaBinary, err := spirv.DecodeBytes(m.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaText.EncodeWords()[5:], viaBinary.EncodeWords()[5:]) {
		t.Fatal("text and binary round trips disagree on the instruction stream")
	}
}
