// Package asm provides the textual SPIR-V assembly format: Disassemble
// renders a module as a spirv-dis-style listing (one instruction per line,
// "%id = OpXxx operands..."), and Parse reads such a listing back. The two
// functions round-trip: Parse(Disassemble(m)) reproduces m.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"spirvfuzz/internal/spirv"
)

// Disassemble renders the module as a textual listing.
func Disassemble(m *spirv.Module) string { return m.String() }

// Parse reads a textual listing produced by Disassemble and reconstructs
// the module. The module bound is set to one past the largest id.
func Parse(text string) (*spirv.Module, error) {
	m := &spirv.Module{Version: spirv.Version15}
	var curFn *spirv.Function
	var curBlk *spirv.Block
	maxID := spirv.ID(0)
	note := func(id spirv.ID) {
		if id > maxID {
			maxID = id
		}
	}

	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		ins, err := parseInstruction(line)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineNo+1, err)
		}
		note(ins.Result)
		note(ins.Type)
		ins.Uses(note)

		switch {
		case ins.Op == spirv.OpCapability:
			m.Capabilities = append(m.Capabilities, ins)
		case ins.Op == spirv.OpMemoryModel:
			m.MemoryModel = ins
		case ins.Op == spirv.OpEntryPoint:
			m.EntryPoints = append(m.EntryPoints, ins)
		case ins.Op == spirv.OpExecutionMode:
			m.ExecModes = append(m.ExecModes, ins)
		case ins.Op == spirv.OpName || ins.Op == spirv.OpMemberName:
			m.Names = append(m.Names, ins)
		case ins.Op == spirv.OpDecorate || ins.Op == spirv.OpMemberDecorate:
			m.Decorations = append(m.Decorations, ins)
		case ins.Op == spirv.OpFunction:
			if curFn != nil {
				return nil, fmt.Errorf("asm: line %d: nested OpFunction", lineNo+1)
			}
			curFn = &spirv.Function{Def: ins}
		case ins.Op == spirv.OpFunctionParameter:
			if curFn == nil || len(curFn.Blocks) > 0 {
				return nil, fmt.Errorf("asm: line %d: OpFunctionParameter outside function preamble", lineNo+1)
			}
			curFn.Params = append(curFn.Params, ins)
		case ins.Op == spirv.OpLabel:
			if curFn == nil {
				return nil, fmt.Errorf("asm: line %d: OpLabel outside function", lineNo+1)
			}
			curBlk = &spirv.Block{Label: ins.Result}
			curFn.Blocks = append(curFn.Blocks, curBlk)
		case ins.Op == spirv.OpFunctionEnd:
			if curFn == nil {
				return nil, fmt.Errorf("asm: line %d: OpFunctionEnd outside function", lineNo+1)
			}
			m.Functions = append(m.Functions, curFn)
			curFn, curBlk = nil, nil
		case curBlk != nil:
			switch {
			case ins.Op == spirv.OpPhi:
				curBlk.Phis = append(curBlk.Phis, ins)
			case ins.Op == spirv.OpSelectionMerge || ins.Op == spirv.OpLoopMerge:
				curBlk.Merge = ins
			case ins.Op.IsTerminator():
				curBlk.Term = ins
				curBlk = nil
			default:
				curBlk.Body = append(curBlk.Body, ins)
			}
		case curFn != nil:
			return nil, fmt.Errorf("asm: line %d: %s inside function but outside block", lineNo+1, ins.Op)
		default:
			m.TypesGlobals = append(m.TypesGlobals, ins)
		}
	}
	if curFn != nil {
		return nil, fmt.Errorf("asm: missing OpFunctionEnd")
	}
	m.Bound = maxID + 1
	return m, nil
}

// parseInstruction parses a single listing line.
func parseInstruction(line string) (*spirv.Instruction, error) {
	var result spirv.ID
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("%q: missing '=' after result id", line)
		}
		id, err := parseID(strings.TrimSpace(line[:eq]))
		if err != nil {
			return nil, err
		}
		result = id
		line = strings.TrimSpace(line[eq+1:])
	}
	toks, err := tokenize(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty instruction")
	}
	op, ok := spirv.OpcodeByName(toks[0])
	if !ok {
		return nil, fmt.Errorf("unknown opcode %q", toks[0])
	}
	sig, _ := spirv.Sig(op)
	toks = toks[1:]
	ins := &spirv.Instruction{Op: op, Result: result}
	if sig.HasType {
		if len(toks) == 0 {
			return nil, fmt.Errorf("%s: missing result type", op)
		}
		t, err := parseID(toks[0])
		if err != nil {
			return nil, err
		}
		ins.Type = t
		toks = toks[1:]
	}
	if sig.HasResult && result == 0 {
		return nil, fmt.Errorf("%s requires a result id", op)
	}
	if !sig.HasResult && result != 0 {
		return nil, fmt.Errorf("%s takes no result id", op)
	}

	i := 0
	consume := func(kind spirv.OperandKind) error {
		if i >= len(toks) {
			return fmt.Errorf("%s: missing operand %d", op, i)
		}
		tok := toks[i]
		i++
		switch kind {
		case spirv.KindID:
			id, err := parseID(tok)
			if err != nil {
				return err
			}
			ins.Operands = append(ins.Operands, uint32(id))
		case spirv.KindLiteral:
			v, err := strconv.ParseUint(tok, 10, 32)
			if err != nil {
				return fmt.Errorf("%s: bad literal %q", op, tok)
			}
			ins.Operands = append(ins.Operands, uint32(v))
		case spirv.KindString:
			s, err := strconv.Unquote(tok)
			if err != nil {
				return fmt.Errorf("%s: bad string %q", op, tok)
			}
			ins.Operands = append(ins.Operands, spirv.EncodeString(s)...)
		}
		return nil
	}
	for _, kind := range sig.Fixed {
		if err := consume(kind); err != nil {
			return nil, err
		}
	}
	if len(sig.Variadic) > 0 {
		for i < len(toks) {
			for _, kind := range sig.Variadic {
				if err := consume(kind); err != nil {
					return nil, err
				}
			}
		}
	}
	if i != len(toks) {
		return nil, fmt.Errorf("%s: %d trailing operands", op, len(toks)-i)
	}
	return ins, nil
}

func parseID(tok string) (spirv.ID, error) {
	if !strings.HasPrefix(tok, "%") {
		return 0, fmt.Errorf("expected id, got %q", tok)
	}
	v, err := strconv.ParseUint(tok[1:], 10, 32)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("bad id %q", tok)
	}
	return spirv.ID(v), nil
}

// tokenize splits a line into tokens, keeping quoted strings intact.
func tokenize(line string) ([]string, error) {
	var toks []string
	for i := 0; i < len(line); {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string in %q", line)
			}
			toks = append(toks, line[i:j+1])
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			j++
		}
		toks = append(toks, line[i:j])
		i = j
	}
	return toks, nil
}
