package spirv

import (
	"encoding/binary"
	"fmt"
)

// This file implements the SPIR-V binary module layout: a five-word header
// (magic, version, generator, bound, schema) followed by a stream of
// instructions, each led by a word whose high 16 bits give the word count
// and low 16 bits the opcode.

// EncodeWords serialises the module to SPIR-V words.
func (m *Module) EncodeWords() []uint32 {
	words := []uint32{Magic, m.Version, Generator, uint32(m.Bound), 0}
	emit := func(ins *Instruction) {
		n := 1 + len(ins.Operands)
		if ins.Type != 0 {
			n++
		}
		if ins.Result != 0 {
			n++
		}
		words = append(words, uint32(n)<<16|uint32(ins.Op))
		if ins.Type != 0 {
			words = append(words, uint32(ins.Type))
		}
		if ins.Result != 0 {
			words = append(words, uint32(ins.Result))
		}
		words = append(words, ins.Operands...)
	}
	for _, ins := range m.Capabilities {
		emit(ins)
	}
	if m.MemoryModel != nil {
		emit(m.MemoryModel)
	}
	for _, ins := range m.EntryPoints {
		emit(ins)
	}
	for _, ins := range m.ExecModes {
		emit(ins)
	}
	for _, ins := range m.Names {
		emit(ins)
	}
	for _, ins := range m.Decorations {
		emit(ins)
	}
	for _, ins := range m.TypesGlobals {
		emit(ins)
	}
	for _, fn := range m.Functions {
		emit(fn.Def)
		for _, p := range fn.Params {
			emit(p)
		}
		for _, b := range fn.Blocks {
			emit(NewInstr(OpLabel, 0, b.Label))
			b.Instructions(emit)
		}
		emit(NewInstr(OpFunctionEnd, 0, 0))
	}
	return words
}

// EncodeBytes serialises the module to little-endian bytes (the on-disk
// .spv format).
func (m *Module) EncodeBytes() []byte {
	words := m.EncodeWords()
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	return buf
}

// DecodeBytes parses a little-endian .spv binary.
func DecodeBytes(data []byte) (*Module, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("spirv: binary length %d is not a multiple of 4", len(data))
	}
	words := make([]uint32, len(data)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	return DecodeWords(words)
}

// DecodeWords parses a module from SPIR-V words.
func DecodeWords(words []uint32) (*Module, error) {
	if len(words) < 5 {
		return nil, fmt.Errorf("spirv: module too short (%d words)", len(words))
	}
	if words[0] != Magic {
		return nil, fmt.Errorf("spirv: bad magic word %#08x", words[0])
	}
	m := &Module{Version: words[1], Bound: ID(words[3])}
	var curFn *Function
	var curBlk *Block
	pos := 5
	for pos < len(words) {
		first := words[pos]
		wc := int(first >> 16)
		op := Opcode(first & 0xFFFF)
		if wc == 0 || pos+wc > len(words) {
			return nil, fmt.Errorf("spirv: instruction at word %d has bad word count %d", pos, wc)
		}
		sig, ok := Sig(op)
		if !ok {
			return nil, fmt.Errorf("spirv: unsupported opcode %d at word %d", op, pos)
		}
		body := words[pos+1 : pos+wc]
		ins := &Instruction{Op: op}
		i := 0
		if sig.HasType {
			if i >= len(body) {
				return nil, fmt.Errorf("spirv: %s at word %d missing result type", op, pos)
			}
			ins.Type = ID(body[i])
			i++
		}
		if sig.HasResult {
			if i >= len(body) {
				return nil, fmt.Errorf("spirv: %s at word %d missing result id", op, pos)
			}
			ins.Result = ID(body[i])
			i++
		}
		ins.Operands = append([]uint32(nil), body[i:]...)
		pos += wc

		switch {
		case op == OpCapability:
			m.Capabilities = append(m.Capabilities, ins)
		case op == OpMemoryModel:
			m.MemoryModel = ins
		case op == OpEntryPoint:
			m.EntryPoints = append(m.EntryPoints, ins)
		case op == OpExecutionMode:
			m.ExecModes = append(m.ExecModes, ins)
		case op == OpName || op == OpMemberName:
			m.Names = append(m.Names, ins)
		case op == OpDecorate || op == OpMemberDecorate:
			m.Decorations = append(m.Decorations, ins)
		case op == OpFunction:
			if curFn != nil {
				return nil, fmt.Errorf("spirv: nested OpFunction %%%d", ins.Result)
			}
			curFn = &Function{Def: ins}
		case op == OpFunctionParameter:
			if curFn == nil || len(curFn.Blocks) > 0 {
				return nil, fmt.Errorf("spirv: OpFunctionParameter outside function preamble")
			}
			curFn.Params = append(curFn.Params, ins)
		case op == OpLabel:
			if curFn == nil {
				return nil, fmt.Errorf("spirv: OpLabel outside function")
			}
			curBlk = &Block{Label: ins.Result}
			curFn.Blocks = append(curFn.Blocks, curBlk)
		case op == OpFunctionEnd:
			if curFn == nil {
				return nil, fmt.Errorf("spirv: OpFunctionEnd outside function")
			}
			m.Functions = append(m.Functions, curFn)
			curFn, curBlk = nil, nil
		case curBlk != nil:
			switch {
			case op == OpPhi:
				if len(curBlk.Body) > 0 || curBlk.Merge != nil {
					return nil, fmt.Errorf("spirv: OpPhi %%%d not at start of block %%%d", ins.Result, curBlk.Label)
				}
				curBlk.Phis = append(curBlk.Phis, ins)
			case op == OpSelectionMerge || op == OpLoopMerge:
				curBlk.Merge = ins
			case op.IsTerminator():
				curBlk.Term = ins
				curBlk = nil
			default:
				curBlk.Body = append(curBlk.Body, ins)
			}
		case curFn != nil:
			return nil, fmt.Errorf("spirv: %s in function %%%d outside any block", op, curFn.ID())
		case op == OpVariable, op.IsType(), op.IsConstant(), op == OpUndef:
			m.TypesGlobals = append(m.TypesGlobals, ins)
		default:
			return nil, fmt.Errorf("spirv: %s not valid at module scope", op)
		}
	}
	if curFn != nil {
		return nil, fmt.Errorf("spirv: missing OpFunctionEnd for function %%%d", curFn.ID())
	}
	return m, nil
}
