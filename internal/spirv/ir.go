package spirv

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync/atomic"
)

// ID is a SPIR-V result id. Id 0 is invalid and doubles as "absent".
type ID uint32

// Instruction is a single SPIR-V instruction. Type and Result hold the
// optional result-type and result ids; Operands holds the remaining operand
// words exactly as they would be encoded (ids, literals and packed strings),
// laid out according to the opcode's Signature.
type Instruction struct {
	Op       Opcode
	Type     ID
	Result   ID
	Operands []uint32
}

// NewInstr builds an instruction from operand words.
func NewInstr(op Opcode, typ, result ID, operands ...uint32) *Instruction {
	return &Instruction{Op: op, Type: typ, Result: result, Operands: operands}
}

// Clone returns a deep copy of the instruction.
func (ins *Instruction) Clone() *Instruction {
	c := *ins
	c.Operands = append([]uint32(nil), ins.Operands...)
	return &c
}

// IDOperand returns the id stored at operand word index i.
func (ins *Instruction) IDOperand(i int) ID { return ID(ins.Operands[i]) }

// idOperandIndices returns the operand word indices that are <id>
// references, resolved against the opcode signature (strings consume a
// variable number of words).
func (ins *Instruction) idOperandIndices() []int {
	sig, ok := Sig(ins.Op)
	if !ok {
		return nil
	}
	var ids []int
	i := 0
	consume := func(kind OperandKind) bool {
		if i >= len(ins.Operands) {
			return false
		}
		switch kind {
		case KindID:
			ids = append(ids, i)
			i++
		case KindLiteral:
			i++
		case KindString:
			_, n := DecodeString(ins.Operands[i:])
			i += n
		}
		return true
	}
	for _, kind := range sig.Fixed {
		if !consume(kind) {
			return ids
		}
	}
	if len(sig.Variadic) > 0 {
		for i < len(ins.Operands) {
			for _, kind := range sig.Variadic {
				if !consume(kind) {
					return ids
				}
			}
		}
	}
	return ids
}

// IDOperandIndices returns the operand word indices holding <id> references,
// resolved against the opcode signature.
func (ins *Instruction) IDOperandIndices() []int { return ins.idOperandIndices() }

// Uses calls f for every id the instruction uses (result type and id
// operands; not the result id).
func (ins *Instruction) Uses(f func(ID)) {
	if ins.Type != 0 {
		f(ins.Type)
	}
	for _, i := range ins.idOperandIndices() {
		f(ID(ins.Operands[i]))
	}
}

// UsesID reports whether the instruction uses id (as type or operand).
func (ins *Instruction) UsesID(id ID) bool {
	found := false
	ins.Uses(func(u ID) {
		if u == id {
			found = true
		}
	})
	return found
}

// MapUses rewrites every used id through f (result type and id operands;
// the result id is left unchanged).
func (ins *Instruction) MapUses(f func(ID) ID) {
	if ins.Type != 0 {
		ins.Type = f(ins.Type)
	}
	for _, i := range ins.idOperandIndices() {
		ins.Operands[i] = uint32(f(ID(ins.Operands[i])))
	}
}

// MapAllIDs rewrites every id in the instruction, including the result.
func (ins *Instruction) MapAllIDs(f func(ID) ID) {
	ins.MapUses(f)
	if ins.Result != 0 {
		ins.Result = f(ins.Result)
	}
}

// String renders the instruction in spirv-dis style ("%3 = OpIAdd %2 %1 %1").
func (ins *Instruction) String() string {
	var sb strings.Builder
	if ins.Result != 0 {
		fmt.Fprintf(&sb, "%%%d = ", ins.Result)
	}
	sb.WriteString(ins.Op.String())
	if ins.Type != 0 {
		fmt.Fprintf(&sb, " %%%d", ins.Type)
	}
	sig, _ := Sig(ins.Op)
	i := 0
	emit := func(kind OperandKind) bool {
		if i >= len(ins.Operands) {
			return false
		}
		switch kind {
		case KindID:
			fmt.Fprintf(&sb, " %%%d", ins.Operands[i])
			i++
		case KindLiteral:
			fmt.Fprintf(&sb, " %d", ins.Operands[i])
			i++
		case KindString:
			s, n := DecodeString(ins.Operands[i:])
			fmt.Fprintf(&sb, " %q", s)
			i += n
		}
		return true
	}
	for _, kind := range sig.Fixed {
		if !emit(kind) {
			break
		}
	}
	if len(sig.Variadic) > 0 {
		for i < len(ins.Operands) {
			progressed := false
			for _, kind := range sig.Variadic {
				if emit(kind) {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
	}
	return sb.String()
}

// EncodeString packs a string into SPIR-V words: UTF-8 bytes, four per
// little-endian word, with a nul terminator (and zero padding).
func EncodeString(s string) []uint32 {
	b := append([]byte(s), 0)
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	words := make([]uint32, len(b)/4)
	for i := range words {
		words[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
	}
	return words
}

// DecodeString unpacks a SPIR-V string starting at words[0], returning the
// string and the number of words consumed.
func DecodeString(words []uint32) (string, int) {
	var b []byte
	for n, w := range words {
		for shift := 0; shift < 32; shift += 8 {
			c := byte(w >> shift)
			if c == 0 {
				return string(b), n + 1
			}
			b = append(b, c)
		}
	}
	return string(b), len(words)
}

// Block is a basic block: an OpLabel id, ϕ instructions, body instructions,
// an optional merge instruction (OpSelectionMerge/OpLoopMerge), and a
// terminator.
type Block struct {
	Label ID
	Phis  []*Instruction
	Body  []*Instruction
	Merge *Instruction // nil when the block heads no structured construct
	Term  *Instruction
}

// NewBlock returns a block with the given label and terminator OpReturn.
func NewBlock(label ID) *Block {
	return &Block{Label: label, Term: NewInstr(OpReturn, 0, 0)}
}

// cloneInstrList deep-copies a slice of instructions with two bulk
// allocations: one arena for the Instruction structs and one word pool for
// all operand slices. Each cloned instruction gets a full-capacity sub-slice
// of the pool, so in-place operand writes stay private to it and any append
// reallocates — identical semantics to per-instruction copies, far fewer
// allocations. Replay-driven reduction clones modules on every ddmin query,
// which makes this the hottest allocation site in the repo.
func cloneInstrList(list []*Instruction) []*Instruction {
	if len(list) == 0 {
		return nil
	}
	arena := make([]Instruction, len(list))
	words := 0
	for _, ins := range list {
		words += len(ins.Operands)
	}
	pool := make([]uint32, words)
	out := make([]*Instruction, len(list))
	off := 0
	for i, ins := range list {
		arena[i] = *ins
		if n := len(ins.Operands); n > 0 {
			dst := pool[off : off+n : off+n]
			copy(dst, ins.Operands)
			arena[i].Operands = dst
			off += n
		}
		out[i] = &arena[i]
	}
	return out
}

// Clone deep-copies the block.
func (b *Block) Clone() *Block {
	nb := &Block{Label: b.Label}
	nb.Phis = cloneInstrList(b.Phis)
	nb.Body = cloneInstrList(b.Body)
	if b.Merge != nil {
		nb.Merge = b.Merge.Clone()
	}
	if b.Term != nil {
		nb.Term = b.Term.Clone()
	}
	return nb
}

// Successors returns the ids of the blocks this block branches to.
func (b *Block) Successors() []ID {
	if b.Term == nil {
		return nil
	}
	switch b.Term.Op {
	case OpBranch:
		return []ID{b.Term.IDOperand(0)}
	case OpBranchConditional:
		return []ID{b.Term.IDOperand(1), b.Term.IDOperand(2)}
	case OpSwitch:
		succs := []ID{b.Term.IDOperand(1)}
		for i := 2; i+1 < len(b.Term.Operands); i += 2 {
			succs = append(succs, ID(b.Term.Operands[i+1]))
		}
		return succs
	}
	return nil
}

// Instructions calls f over every instruction in the block in order
// (ϕs, merge, body, terminator). Iteration order matches encoding order.
func (b *Block) Instructions(f func(*Instruction)) {
	for _, p := range b.Phis {
		f(p)
	}
	for _, ins := range b.Body {
		f(ins)
	}
	if b.Merge != nil {
		f(b.Merge)
	}
	if b.Term != nil {
		f(b.Term)
	}
}

// FindBody returns the index in Body of the instruction with the given
// result id, or -1.
func (b *Block) FindBody(id ID) int {
	for i, ins := range b.Body {
		if ins.Result == id {
			return i
		}
	}
	return -1
}

// Function is a SPIR-V function: its OpFunction instruction, parameters,
// and blocks (the first block is the entry block).
type Function struct {
	Def    *Instruction // OpFunction
	Params []*Instruction
	Blocks []*Block
}

// ID returns the function's result id.
func (f *Function) ID() ID { return f.Def.Result }

// TypeID returns the function's OpTypeFunction id.
func (f *Function) TypeID() ID { return f.Def.IDOperand(1) }

// ReturnType returns the function's return type id.
func (f *Function) ReturnType() ID { return f.Def.Type }

// Control returns the function control mask (None/Inline/DontInline).
func (f *Function) Control() uint32 { return f.Def.Operands[0] }

// SetControl sets the function control mask.
func (f *Function) SetControl(mask uint32) { f.Def.Operands[0] = mask }

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// Block returns the block with the given label id, or nil.
func (f *Function) Block(label ID) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// BlockIndex returns the position of the block with the given label, or -1.
func (f *Function) BlockIndex(label ID) int {
	for i, b := range f.Blocks {
		if b.Label == label {
			return i
		}
	}
	return -1
}

// Clone deep-copies the function.
func (f *Function) Clone() *Function {
	nf := &Function{Def: f.Def.Clone(), Params: cloneInstrList(f.Params)}
	if len(f.Blocks) > 0 {
		nf.Blocks = make([]*Block, len(f.Blocks))
		for i, b := range f.Blocks {
			nf.Blocks[i] = b.Clone()
		}
	}
	return nf
}

// Instructions calls f over every instruction of the function in encoding
// order.
func (f *Function) Instructions(fn func(*Instruction)) {
	fn(f.Def)
	for _, p := range f.Params {
		fn(p)
	}
	for _, b := range f.Blocks {
		fn(NewInstr(OpLabel, 0, b.Label)) // synthesised label marker
		b.Instructions(fn)
	}
}

// Module is a SPIR-V module.
type Module struct {
	Version      uint32 // version word of the header (e.g. 0x00010500)
	Bound        ID     // one more than the largest id in use
	Capabilities []*Instruction
	MemoryModel  *Instruction
	EntryPoints  []*Instruction
	ExecModes    []*Instruction
	Names        []*Instruction // OpName / OpMemberName
	Decorations  []*Instruction // OpDecorate / OpMemberDecorate
	TypesGlobals []*Instruction // types, constants, global variables, in order
	Functions    []*Function

	// fp caches the SHA-256 of the canonical encoding (Fingerprint). Module
	// mutator methods clear it; Clone deliberately does not copy it, so a
	// clone always recomputes from its own content. See fingerprint.go.
	fp atomic.Pointer[[sha256.Size]byte]
}

// SPIR-V binary constants.
const (
	Magic     uint32 = 0x07230203
	Version15 uint32 = 0x00010500
	// Generator is this tool's generator magic word in emitted binaries.
	Generator uint32 = 0x0000FA22
)

// NewModule returns an empty module with the standard shader preamble
// (Shader capability, Logical/GLSL450 memory model).
func NewModule() *Module {
	return &Module{
		Version:      Version15,
		Bound:        1,
		Capabilities: []*Instruction{NewInstr(OpCapability, 0, 0, CapabilityShader)},
		MemoryModel:  NewInstr(OpMemoryModel, 0, 0, AddressingLogical, MemoryModelGLSL450),
	}
}

// FreshID allocates a new id.
func (m *Module) FreshID() ID {
	id := m.Bound
	m.Bound++
	m.InvalidateFingerprint()
	return id
}

// ReserveIDs allocates n consecutive fresh ids and returns the first.
func (m *Module) ReserveIDs(n int) ID {
	id := m.Bound
	m.Bound += ID(n)
	m.InvalidateFingerprint()
	return id
}

// ForEachInstruction calls f over every instruction in module order.
func (m *Module) ForEachInstruction(f func(*Instruction)) {
	for _, ins := range m.Capabilities {
		f(ins)
	}
	if m.MemoryModel != nil {
		f(m.MemoryModel)
	}
	for _, ins := range m.EntryPoints {
		f(ins)
	}
	for _, ins := range m.ExecModes {
		f(ins)
	}
	for _, ins := range m.Names {
		f(ins)
	}
	for _, ins := range m.Decorations {
		f(ins)
	}
	for _, ins := range m.TypesGlobals {
		f(ins)
	}
	for _, fn := range m.Functions {
		f(fn.Def)
		for _, p := range fn.Params {
			f(p)
		}
		for _, b := range fn.Blocks {
			b.Instructions(f)
		}
	}
}

// Def returns the instruction defining id: a type, constant, global
// variable, function, parameter or an instruction inside a function body.
// Block labels resolve to a synthesised OpLabel instruction.
func (m *Module) Def(id ID) *Instruction {
	for _, ins := range m.TypesGlobals {
		if ins.Result == id {
			return ins
		}
	}
	for _, fn := range m.Functions {
		if fn.Def.Result == id {
			return fn.Def
		}
		for _, p := range fn.Params {
			if p.Result == id {
				return p
			}
		}
		for _, b := range fn.Blocks {
			if b.Label == id {
				return NewInstr(OpLabel, 0, b.Label)
			}
			var found *Instruction
			b.Instructions(func(ins *Instruction) {
				if ins.Result == id {
					found = ins
				}
			})
			if found != nil {
				return found
			}
		}
	}
	return nil
}

// Function returns the function with the given id, or nil.
func (m *Module) Function(id ID) *Function {
	for _, fn := range m.Functions {
		if fn.ID() == id {
			return fn
		}
	}
	return nil
}

// EntryPointFunction returns the function named by the first OpEntryPoint,
// or nil if the module declares no entry point.
func (m *Module) EntryPointFunction() *Function {
	if len(m.EntryPoints) == 0 {
		return nil
	}
	return m.Function(m.EntryPoints[0].IDOperand(1))
}

// cloneArena bulk-allocates the storage for one Module.Clone so the deep copy
// costs a handful of allocations instead of a few per block. Capacities are
// exact, so the backing arrays never grow and interior pointers stay valid.
type cloneArena struct {
	instrs []Instruction
	words  []uint32
	ptrs   []*Instruction
	blocks []Block
	bptrs  []*Block
	fns    []Function
}

func (a *cloneArena) instr(ins *Instruction) *Instruction {
	a.instrs = append(a.instrs, *ins)
	ni := &a.instrs[len(a.instrs)-1]
	if n := len(ins.Operands); n > 0 {
		off := len(a.words)
		a.words = append(a.words, ins.Operands...)
		ni.Operands = a.words[off : off+n : off+n]
	}
	return ni
}

func (a *cloneArena) list(l []*Instruction) []*Instruction {
	if len(l) == 0 {
		return nil
	}
	off := len(a.ptrs)
	for _, ins := range l {
		a.ptrs = append(a.ptrs, a.instr(ins))
	}
	return a.ptrs[off : off+len(l) : off+len(l)]
}

// Clone deep-copies the module.
func (m *Module) Clone() *Module {
	instrs, words, blocks := 0, 0, 0
	m.ForEachInstruction(func(ins *Instruction) {
		instrs++
		words += len(ins.Operands)
	})
	for _, fn := range m.Functions {
		blocks += len(fn.Blocks)
	}
	a := &cloneArena{
		instrs: make([]Instruction, 0, instrs),
		words:  make([]uint32, 0, words),
		ptrs:   make([]*Instruction, 0, instrs),
		blocks: make([]Block, 0, blocks),
		bptrs:  make([]*Block, 0, blocks),
		fns:    make([]Function, 0, len(m.Functions)),
	}
	nm := &Module{Version: m.Version, Bound: m.Bound}
	nm.Capabilities = a.list(m.Capabilities)
	if m.MemoryModel != nil {
		nm.MemoryModel = a.instr(m.MemoryModel)
	}
	nm.EntryPoints = a.list(m.EntryPoints)
	nm.ExecModes = a.list(m.ExecModes)
	nm.Names = a.list(m.Names)
	nm.Decorations = a.list(m.Decorations)
	nm.TypesGlobals = a.list(m.TypesGlobals)
	if len(m.Functions) > 0 {
		nm.Functions = make([]*Function, len(m.Functions))
		for i, fn := range m.Functions {
			a.fns = append(a.fns, Function{Def: a.instr(fn.Def), Params: a.list(fn.Params)})
			nf := &a.fns[len(a.fns)-1]
			if len(fn.Blocks) > 0 {
				boff := len(a.bptrs)
				for _, b := range fn.Blocks {
					a.blocks = append(a.blocks, Block{
						Label: b.Label,
						Phis:  a.list(b.Phis),
						Body:  a.list(b.Body),
					})
					nb := &a.blocks[len(a.blocks)-1]
					if b.Merge != nil {
						nb.Merge = a.instr(b.Merge)
					}
					if b.Term != nil {
						nb.Term = a.instr(b.Term)
					}
					a.bptrs = append(a.bptrs, nb)
				}
				nf.Blocks = a.bptrs[boff : boff+len(fn.Blocks) : boff+len(fn.Blocks)]
			}
			nm.Functions[i] = nf
		}
	}
	return nm
}

// InstructionCount returns the total number of instructions in the module,
// the size measure used for reduction-quality experiments (Section 4.2).
func (m *Module) InstructionCount() int {
	n := 0
	m.ForEachInstruction(func(*Instruction) { n++ })
	// Labels are not visited by ForEachInstruction; count them as
	// instructions, as spirv-dis listings do.
	for _, fn := range m.Functions {
		n += len(fn.Blocks) // one OpLabel per block
		n++                 // OpFunctionEnd
	}
	return n
}

// String renders the whole module as a disassembly listing.
func (m *Module) String() string {
	var sb strings.Builder
	m.writeListing(&sb)
	return sb.String()
}

func (m *Module) writeListing(sb *strings.Builder) {
	emit := func(ins *Instruction) { sb.WriteString(ins.String()); sb.WriteByte('\n') }
	for _, ins := range m.Capabilities {
		emit(ins)
	}
	if m.MemoryModel != nil {
		emit(m.MemoryModel)
	}
	for _, ins := range m.EntryPoints {
		emit(ins)
	}
	for _, ins := range m.ExecModes {
		emit(ins)
	}
	for _, ins := range m.Names {
		emit(ins)
	}
	for _, ins := range m.Decorations {
		emit(ins)
	}
	for _, ins := range m.TypesGlobals {
		emit(ins)
	}
	for _, fn := range m.Functions {
		emit(fn.Def)
		for _, p := range fn.Params {
			emit(p)
		}
		for _, b := range fn.Blocks {
			fmt.Fprintf(sb, "%%%d = OpLabel\n", b.Label)
			b.Instructions(emit)
		}
		sb.WriteString("OpFunctionEnd\n")
	}
}
