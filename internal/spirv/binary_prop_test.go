package spirv_test

import (
	"testing"
	"testing/quick"

	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/testmod"
)

// TestBinaryRoundTripProperty: random valid modules (corpus shapes with
// random fuzzing happens elsewhere; here, structurally random-but-wellformed
// instruction streams) encode and decode to identical words.
func TestBinaryRoundTripProperty(t *testing.T) {
	prop := func(seed uint32) bool {
		m := spirv.NewModule()
		// Build a random straight-line function from a small op menu with
		// correct shapes, driven by the seed.
		s := seed
		next := func(mod uint32) uint32 { s = s*1664525 + 1013904223; return s % mod }
		void := m.EnsureTypeVoid()
		f32 := m.EnsureTypeFloat(32)
		i32 := m.EnsureTypeInt(32, true)
		fnType := m.EnsureTypeFunction(void)
		consts := []spirv.ID{
			m.EnsureConstantFloat(1), m.EnsureConstantFloat(0.25),
		}
		ints := []spirv.ID{m.EnsureConstantInt(3), m.EnsureConstantInt(-9)}
		fn := &spirv.Function{Def: spirv.NewInstr(spirv.OpFunction, void, m.FreshID(), spirv.FunctionControlNone, uint32(fnType))}
		b := &spirv.Block{Label: m.FreshID()}
		floats := append([]spirv.ID{}, consts...)
		intsV := append([]spirv.ID{}, ints...)
		n := int(next(12)) + 1
		for i := 0; i < n; i++ {
			switch next(3) {
			case 0:
				id := m.FreshID()
				b.Body = append(b.Body, spirv.NewInstr(spirv.OpFAdd, f32, id,
					uint32(floats[next(uint32(len(floats)))]), uint32(floats[next(uint32(len(floats)))])))
				floats = append(floats, id)
			case 1:
				id := m.FreshID()
				b.Body = append(b.Body, spirv.NewInstr(spirv.OpIMul, i32, id,
					uint32(intsV[next(uint32(len(intsV)))]), uint32(intsV[next(uint32(len(intsV)))])))
				intsV = append(intsV, id)
			default:
				id := m.FreshID()
				b.Body = append(b.Body, spirv.NewInstr(spirv.OpCopyObject, f32, id,
					uint32(floats[next(uint32(len(floats)))])))
				floats = append(floats, id)
			}
		}
		b.Term = spirv.NewInstr(spirv.OpReturn, 0, 0)
		fn.Blocks = []*spirv.Block{b}
		m.Functions = append(m.Functions, fn)

		words := m.EncodeWords()
		back, err := spirv.DecodeWords(words)
		if err != nil {
			return false
		}
		words2 := back.EncodeWords()
		if len(words) != len(words2) {
			return false
		}
		for i := range words {
			if words[i] != words2[i] {
				return false
			}
		}
		return back.String() == m.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeAllCanonicalModulesStable: the byte encodings of the canonical
// modules are stable across clone and re-encode.
func TestEncodeAllCanonicalModulesStable(t *testing.T) {
	for name, m := range testmod.All() {
		a := m.EncodeBytes()
		b := m.Clone().EncodeBytes()
		if len(a) != len(b) {
			t.Fatalf("%s: clone encodes differently", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: clone encodes differently at byte %d", name, i)
			}
		}
	}
}
