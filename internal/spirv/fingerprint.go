package spirv

import "crypto/sha256"

// Fingerprint returns the SHA-256 of the module's canonical binary encoding
// (EncodeBytes), computed lazily and cached in the module. The execution
// engine keys every cache layer on module content, and ddmin interestingness
// queries look the same original module up thousands of times per reduction;
// the cache turns those repeated full-module encode+hash walks into a pointer
// load.
//
// Invalidation contract: mutating the module through its own methods
// (FreshID, ReserveIDs, and everything built on them — the Ensure* family)
// clears the cache, and opt.Pipeline clears it around a pass run. Code that
// rewrites the IR structurally by hand (appending instructions, editing
// operands in place) after a fingerprint may have been taken must call
// InvalidateFingerprint itself. In practice modules are frozen once they
// reach the engine — originals are immutable, fuzzed variants are finished
// before classification, and replay materializes a fresh module per query —
// and Clone starts with an empty cache, so a stale fingerprint requires
// hand-mutating a module between engine runs, which nothing in the repo does.
//
// Concurrent Fingerprint calls are safe on a module that is no longer being
// mutated: racing computations store identical hashes.
func (m *Module) Fingerprint() [sha256.Size]byte {
	if p := m.fp.Load(); p != nil {
		return *p
	}
	h := sha256.Sum256(m.EncodeBytes())
	m.fp.Store(&h)
	return h
}

// InvalidateFingerprint discards the cached fingerprint; the next
// Fingerprint call re-encodes and re-hashes the module.
func (m *Module) InvalidateFingerprint() {
	if m.fp.Load() != nil {
		m.fp.Store(nil)
	}
}
