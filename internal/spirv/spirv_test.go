package spirv_test

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"spirvfuzz/internal/spirv"
)

// buildDiamond constructs a small fragment shader with an if/else diamond
// and a ϕ at the merge, used across the spirv package tests:
//
//	entry:  c = Load coord; x = c.x; cond = x < 0.5
//	        SelectionMerge merge; BranchConditional cond, left, right
//	left:   v1 = 1.0; Branch merge
//	right:  v2 = 0.25; Branch merge
//	merge:  r = ϕ(v1←left, v2←right); Store color vec4(r,r,r,1); Return
func buildDiamond(t testing.TB) *spirv.Module {
	t.Helper()
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	half := m.EnsureConstantFloat(0.5)
	one := m.EnsureConstantFloat(1)
	quarter := m.EnsureConstantFloat(0.25)

	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	x := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
	cond := b.Emit(spirv.OpFOrdLessThan, s.Bool, x, half)
	left, right, merge := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.SelectionMerge(merge)
	b.BranchCond(cond, left, right)

	b.Begin(left)
	v1 := b.Emit(spirv.OpCopyObject, s.Float, one)
	b.Branch(merge)

	b.Begin(right)
	v2 := b.Emit(spirv.OpCopyObject, s.Float, quarter)
	b.Branch(merge)

	b.Begin(merge)
	r := b.Phi(s.Float, v1, left, v2, right)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, r, r, r, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)
	return m
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"", "a", "main", "coordinates", "exactly8", "ninechars"}
	for _, s := range cases {
		words := spirv.EncodeString(s)
		got, n := spirv.DecodeString(words)
		if got != s || n != len(words) {
			t.Errorf("round trip %q: got %q, consumed %d of %d words", s, got, n, len(words))
		}
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	prop := func(s string) bool {
		s = strings.ReplaceAll(s, "\x00", "") // SPIR-V strings are nul-terminated
		got, _ := spirv.DecodeString(spirv.EncodeString(s))
		return got == s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionUses(t *testing.T) {
	// OpEntryPoint Fragment %4 "main" %2 %3 — ids are %4 (fixed), %2 %3
	// (variadic), and the string must not be misread as ids.
	ops := []uint32{spirv.ExecutionModelFragment, 4}
	ops = append(ops, spirv.EncodeString("main")...)
	ops = append(ops, 2, 3)
	ins := spirv.NewInstr(spirv.OpEntryPoint, 0, 0, ops...)
	var uses []spirv.ID
	ins.Uses(func(id spirv.ID) { uses = append(uses, id) })
	if !reflect.DeepEqual(uses, []spirv.ID{4, 2, 3}) {
		t.Fatalf("uses = %v, want [4 2 3]", uses)
	}
}

func TestMapUsesPreservesLiterals(t *testing.T) {
	// OpCompositeExtract %f %c 0 2 — the literals 0 and 2 must survive an id
	// remap even when they collide with id numbers.
	ins := spirv.NewInstr(spirv.OpCompositeExtract, 7, 9, 5, 0, 2)
	ins.MapUses(func(id spirv.ID) spirv.ID { return id + 100 })
	if ins.Type != 107 || ins.Operands[0] != 105 {
		t.Fatalf("ids not remapped: %v", ins)
	}
	if ins.Operands[1] != 0 || ins.Operands[2] != 2 {
		t.Fatalf("literals corrupted: %v", ins.Operands)
	}
	if ins.Result != 9 {
		t.Fatalf("MapUses must not touch the result id")
	}
}

func TestPhiUses(t *testing.T) {
	phi := spirv.NewInstr(spirv.OpPhi, 6, 10, 7, 2, 8, 3)
	var uses []spirv.ID
	phi.Uses(func(id spirv.ID) { uses = append(uses, id) })
	if !reflect.DeepEqual(uses, []spirv.ID{6, 7, 2, 8, 3}) {
		t.Fatalf("phi uses = %v", uses)
	}
}

func TestBlockSuccessors(t *testing.T) {
	b := &spirv.Block{Label: 1, Term: spirv.NewInstr(spirv.OpBranchConditional, 0, 0, 9, 2, 3)}
	if got := b.Successors(); !reflect.DeepEqual(got, []spirv.ID{2, 3}) {
		t.Fatalf("successors = %v", got)
	}
	b.Term = spirv.NewInstr(spirv.OpSwitch, 0, 0, 9, 4, 0, 5, 1, 6)
	if got := b.Successors(); !reflect.DeepEqual(got, []spirv.ID{4, 5, 6}) {
		t.Fatalf("switch successors = %v", got)
	}
	b.Term = spirv.NewInstr(spirv.OpKill, 0, 0)
	if got := b.Successors(); got != nil {
		t.Fatalf("kill successors = %v", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := buildDiamond(t)
	data := m.EncodeBytes()
	if len(data)%4 != 0 || len(data) < 20 {
		t.Fatalf("bad binary size %d", len(data))
	}
	back, err := spirv.DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	// The decoded module must re-encode to identical bytes.
	data2 := back.EncodeBytes()
	if !reflect.DeepEqual(data, data2) {
		t.Fatal("binary round trip is not stable")
	}
	if back.String() != m.String() {
		t.Fatalf("listing mismatch:\n%s\nvs\n%s", back.String(), m.String())
	}
	if back.InstructionCount() != m.InstructionCount() {
		t.Fatalf("instruction count %d != %d", back.InstructionCount(), m.InstructionCount())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := spirv.DecodeBytes([]byte{1, 2, 3}); err == nil {
		t.Error("misaligned input accepted")
	}
	if _, err := spirv.DecodeBytes(make([]byte, 8)); err == nil {
		t.Error("short input accepted")
	}
	bad := buildDiamond(t).EncodeBytes()
	bad[0] = 0x42 // corrupt magic
	if _, err := spirv.DecodeBytes(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDecodeRejectsTruncatedInstruction(t *testing.T) {
	words := []uint32{spirv.Magic, spirv.Version15, 0, 10, 0, uint32(99) << 16}
	if _, err := spirv.DecodeWords(words); err == nil {
		t.Error("truncated instruction accepted")
	}
}

func TestEnsureTypesDeduplicate(t *testing.T) {
	m := spirv.NewModule()
	a := m.EnsureTypeInt(32, true)
	b := m.EnsureTypeInt(32, true)
	if a != b {
		t.Error("EnsureTypeInt must deduplicate")
	}
	if u := m.EnsureTypeInt(32, false); u == a {
		t.Error("signedness must distinguish types")
	}
	v1 := m.EnsureTypeVector(m.EnsureTypeFloat(32), 4)
	v2 := m.EnsureTypeVector(m.EnsureTypeFloat(32), 4)
	if v1 != v2 {
		t.Error("EnsureTypeVector must deduplicate")
	}
	c1 := m.EnsureConstantInt(42)
	c2 := m.EnsureConstantInt(42)
	if c1 != c2 {
		t.Error("EnsureConstantInt must deduplicate")
	}
	if n, ok := m.ConstantIntValue(c1); !ok || n != 42 {
		t.Errorf("ConstantIntValue = %d, %t", n, ok)
	}
	if c3 := m.EnsureConstantInt(-1); c3 == c1 {
		t.Error("distinct constants must differ")
	} else if n, ok := m.ConstantIntValue(c3); !ok || n != -1 {
		t.Errorf("ConstantIntValue(-1) = %d, %t", n, ok)
	}
	f := m.EnsureConstantFloat(1.5)
	if v, ok := m.ConstantFloatValue(f); !ok || v != 1.5 {
		t.Errorf("ConstantFloatValue = %v, %t", v, ok)
	}
	bt := m.EnsureConstantBool(true)
	if v, ok := m.ConstantBoolValue(bt); !ok || !v {
		t.Errorf("ConstantBoolValue = %v, %t", v, ok)
	}
}

func TestTypeIntrospection(t *testing.T) {
	m := spirv.NewModule()
	f32 := m.EnsureTypeFloat(32)
	vec3 := m.EnsureTypeVector(f32, 3)
	mat2 := m.EnsureTypeMatrix(m.EnsureTypeVector(f32, 2), 2)
	n4 := m.EnsureConstantInt(4)
	arr := m.EnsureTypeArray(vec3, n4)
	st := m.EnsureTypeStruct(f32, vec3)
	ptr := m.EnsureTypePointer(spirv.StorageFunction, st)

	if elem, n, ok := m.VectorInfo(vec3); !ok || elem != f32 || n != 3 {
		t.Errorf("VectorInfo = %v %v %v", elem, n, ok)
	}
	if _, cols, ok := m.MatrixInfo(mat2); !ok || cols != 2 {
		t.Errorf("MatrixInfo cols = %d, %t", cols, ok)
	}
	if elem, lc, ok := m.ArrayInfo(arr); !ok || elem != vec3 || lc != n4 {
		t.Errorf("ArrayInfo = %v %v %v", elem, lc, ok)
	}
	if members := m.StructMembers(st); len(members) != 2 || members[1] != vec3 {
		t.Errorf("StructMembers = %v", members)
	}
	if storage, pointee, ok := m.PointerInfo(ptr); !ok || storage != spirv.StorageFunction || pointee != st {
		t.Errorf("PointerInfo = %v %v %v", storage, pointee, ok)
	}
	if n, ok := m.CompositeMemberCount(arr); !ok || n != 4 {
		t.Errorf("CompositeMemberCount(arr) = %d, %t", n, ok)
	}
	if mt, ok := m.CompositeMemberType(st, 1); !ok || mt != vec3 {
		t.Errorf("CompositeMemberType(st, 1) = %v, %t", mt, ok)
	}
	key := m.TypeKey(st)
	if key != "struct{float32,vec3<float32>}" {
		t.Errorf("TypeKey = %q", key)
	}
}

func TestModuleCloneIsDeep(t *testing.T) {
	m := buildDiamond(t)
	c := m.Clone()
	// Mutate the clone heavily and check the original is untouched.
	before := m.String()
	c.Functions[0].Blocks[0].Body[0].Operands[0] = 999
	c.TypesGlobals[0].Result = 998
	c.Functions[0].Blocks = c.Functions[0].Blocks[:1]
	c.Bound += 50
	if m.String() != before {
		t.Fatal("Clone is not deep")
	}
}

func TestOpcodeByName(t *testing.T) {
	op, ok := spirv.OpcodeByName("OpIAdd")
	if !ok || op != spirv.OpIAdd {
		t.Fatalf("OpcodeByName(OpIAdd) = %v, %t", op, ok)
	}
	if _, ok := spirv.OpcodeByName("OpBogus"); ok {
		t.Fatal("unknown name accepted")
	}
	if spirv.OpIAdd.String() != "OpIAdd" {
		t.Fatalf("String = %q", spirv.OpIAdd.String())
	}
}

func TestDefAndTypeOf(t *testing.T) {
	m := buildDiamond(t)
	fn := m.EntryPointFunction()
	if fn == nil {
		t.Fatal("no entry point")
	}
	// The ϕ lives in the merge block and has float type.
	merge := fn.Blocks[len(fn.Blocks)-1]
	if len(merge.Phis) != 1 {
		t.Fatalf("merge block has %d phis", len(merge.Phis))
	}
	phi := merge.Phis[0]
	if def := m.Def(phi.Result); def != phi {
		t.Error("Def should find the ϕ instruction")
	}
	if m.TypeOf(phi.Result) != phi.Type {
		t.Error("TypeOf mismatch for ϕ")
	}
	if m.Def(9999) != nil {
		t.Error("Def of unknown id should be nil")
	}
}

func TestInstructionCountMatchesListing(t *testing.T) {
	m := buildDiamond(t)
	lines := strings.Count(strings.TrimRight(m.String(), "\n"), "\n") + 1
	if got := m.InstructionCount(); got != lines {
		t.Fatalf("InstructionCount = %d, listing has %d lines", got, lines)
	}
}

func TestFunctionAndBlockHelpers(t *testing.T) {
	m := buildDiamond(t)
	fn := m.EntryPointFunction()
	if fn.BlockIndex(fn.Blocks[2].Label) != 2 {
		t.Fatal("BlockIndex wrong")
	}
	if fn.BlockIndex(9999) != -1 {
		t.Fatal("BlockIndex should be -1 for missing label")
	}
	entry := fn.Entry()
	if got := entry.FindBody(entry.Body[1].Result); got != 1 {
		t.Fatalf("FindBody = %d", got)
	}
	if entry.FindBody(9999) != -1 {
		t.Fatal("FindBody should be -1 for missing id")
	}
	first := m.ReserveIDs(3)
	if m.Bound != first+3 {
		t.Fatalf("ReserveIDs: bound %d, first %d", m.Bound, first)
	}
	if fn.ReturnType() != fn.Def.Type || fn.Control() != spirv.FunctionControlNone {
		t.Fatal("function accessors broken")
	}
	fn.SetControl(spirv.FunctionControlInline)
	if fn.Control() != spirv.FunctionControlInline {
		t.Fatal("SetControl broken")
	}
	// Module without entry points.
	empty := spirv.NewModule()
	if empty.EntryPointFunction() != nil {
		t.Fatal("EntryPointFunction on empty module should be nil")
	}
	if empty.Function(4) != nil {
		t.Fatal("Function lookup on empty module should be nil")
	}
}

func TestNewBlockHasReturnTerminator(t *testing.T) {
	b := spirv.NewBlock(7)
	if b.Label != 7 || b.Term == nil || b.Term.Op != spirv.OpReturn {
		t.Fatalf("NewBlock = %+v", b)
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("Begin outside function", func() {
		b := spirv.NewBuilder()
		b.Begin(b.NewLabel())
	})
	expectPanic("Emit outside block", func() {
		b := spirv.NewBuilder()
		b.EmitWords(spirv.OpNop, 0)
	})
	expectPanic("EndFunction with open block", func() {
		b := spirv.NewBuilder()
		void := b.Mod.EnsureTypeVoid()
		b.BeginFunction("f", void, spirv.FunctionControlNone)
		b.BeginNew()
		b.EndFunction()
	})
	expectPanic("nested BeginFunction", func() {
		b := spirv.NewBuilder()
		void := b.Mod.EnsureTypeVoid()
		b.BeginFunction("f", void, spirv.FunctionControlNone)
		b.BeginFunction("g", void, spirv.FunctionControlNone)
	})
	expectPanic("terminator outside block", func() {
		b := spirv.NewBuilder()
		b.Return()
	})
	expectPanic("odd phi pairs", func() {
		b := spirv.NewBuilder()
		void := b.Mod.EnsureTypeVoid()
		b.BeginFunction("f", void, spirv.FunctionControlNone)
		b.BeginNew()
		b.Phi(void, 1)
	})
}
