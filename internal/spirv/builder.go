package spirv

import "fmt"

// Builder provides a convenient API for constructing modules in code, used
// by the reference/donor corpus and by tests. Transformations do not use the
// builder: they manipulate modules directly so that every change they make
// is explicit and replayable.
type Builder struct {
	Mod *Module
	Fn  *Function
	Blk *Block
}

// NewBuilder returns a builder over a fresh shader module.
func NewBuilder() *Builder { return &Builder{Mod: NewModule()} }

// --- module-level declarations ---

// GlobalVariable declares a module-scope OpVariable of pointer type
// (storage, pointee) with an optional initializer (0 for none), returning
// the variable id.
func (b *Builder) GlobalVariable(name string, storage uint32, pointee ID, init ID) ID {
	ptr := b.Mod.EnsureTypePointer(storage, pointee)
	id := b.Mod.FreshID()
	ops := []uint32{storage}
	if init != 0 {
		ops = append(ops, uint32(init))
	}
	b.Mod.TypesGlobals = append(b.Mod.TypesGlobals, NewInstr(OpVariable, ptr, id, ops...))
	if name != "" {
		b.Name(id, name)
	}
	return id
}

// Name attaches an OpName debug name to id.
func (b *Builder) Name(id ID, name string) {
	b.Mod.Names = append(b.Mod.Names, NewInstr(OpName, 0, 0, append([]uint32{uint32(id)}, EncodeString(name)...)...))
}

// Decorate attaches an OpDecorate to id.
func (b *Builder) Decorate(id ID, decoration uint32, extra ...uint32) {
	b.Mod.Decorations = append(b.Mod.Decorations,
		NewInstr(OpDecorate, 0, 0, append([]uint32{uint32(id), decoration}, extra...)...))
}

// EntryPoint declares a fragment-model OpEntryPoint for fn with the given
// interface variables, plus the OriginUpperLeft execution mode.
func (b *Builder) EntryPoint(name string, fn ID, iface ...ID) {
	ops := []uint32{ExecutionModelFragment, uint32(fn)}
	ops = append(ops, EncodeString(name)...)
	for _, v := range iface {
		ops = append(ops, uint32(v))
	}
	b.Mod.EntryPoints = append(b.Mod.EntryPoints, NewInstr(OpEntryPoint, 0, 0, ops...))
	b.Mod.ExecModes = append(b.Mod.ExecModes, NewInstr(OpExecutionMode, 0, 0, uint32(fn), ExecutionModeOriginUpperLeft))
}

// --- function construction ---

// BeginFunction starts a new function with the given name, return type,
// function control mask and parameter types. It returns the function id and
// the parameter ids. The caller must create at least one block and call
// EndFunction.
func (b *Builder) BeginFunction(name string, ret ID, control uint32, paramTypes ...ID) (ID, []ID) {
	if b.Fn != nil {
		panic("spirv: BeginFunction while a function is open")
	}
	fnType := b.Mod.EnsureTypeFunction(ret, paramTypes...)
	fnID := b.Mod.FreshID()
	b.Fn = &Function{Def: NewInstr(OpFunction, ret, fnID, control, uint32(fnType))}
	params := make([]ID, len(paramTypes))
	for i, pt := range paramTypes {
		params[i] = b.Mod.FreshID()
		b.Fn.Params = append(b.Fn.Params, NewInstr(OpFunctionParameter, pt, params[i]))
	}
	if name != "" {
		b.Name(fnID, name)
	}
	return fnID, params
}

// EndFunction finishes the open function and appends it to the module.
func (b *Builder) EndFunction() *Function {
	if b.Fn == nil {
		panic("spirv: EndFunction with no open function")
	}
	if b.Blk != nil {
		panic(fmt.Sprintf("spirv: EndFunction with unterminated block %%%d", b.Blk.Label))
	}
	fn := b.Fn
	b.Mod.Functions = append(b.Mod.Functions, fn)
	b.Fn = nil
	return fn
}

// NewLabel allocates a label id for a future block.
func (b *Builder) NewLabel() ID { return b.Mod.FreshID() }

// Begin starts a block with the given label inside the open function.
func (b *Builder) Begin(label ID) {
	if b.Fn == nil {
		panic("spirv: Begin outside function")
	}
	if b.Blk != nil {
		panic(fmt.Sprintf("spirv: Begin while block %%%d is unterminated", b.Blk.Label))
	}
	b.Blk = &Block{Label: label}
	b.Fn.Blocks = append(b.Fn.Blocks, b.Blk)
}

// BeginNew starts a block with a fresh label and returns the label.
func (b *Builder) BeginNew() ID {
	l := b.NewLabel()
	b.Begin(l)
	return l
}

// Emit appends a result-producing instruction to the current block and
// returns its fresh result id. Operand ids are passed as IDs.
func (b *Builder) Emit(op Opcode, typ ID, operands ...ID) ID {
	ops := make([]uint32, len(operands))
	for i, o := range operands {
		ops[i] = uint32(o)
	}
	return b.EmitWords(op, typ, ops...)
}

// EmitWords appends a result-producing instruction with raw operand words.
func (b *Builder) EmitWords(op Opcode, typ ID, operands ...uint32) ID {
	if b.Blk == nil {
		panic("spirv: Emit outside block")
	}
	id := b.Mod.FreshID()
	b.Blk.Body = append(b.Blk.Body, NewInstr(op, typ, id, operands...))
	return id
}

// Phi appends an OpPhi with (value, predecessor) pairs.
func (b *Builder) Phi(typ ID, pairs ...ID) ID {
	if len(pairs)%2 != 0 {
		panic("spirv: Phi needs (value, parent) pairs")
	}
	ops := make([]uint32, len(pairs))
	for i, p := range pairs {
		ops[i] = uint32(p)
	}
	id := b.Mod.FreshID()
	b.Blk.Phis = append(b.Blk.Phis, NewInstr(OpPhi, typ, id, ops...))
	return id
}

// Store appends an OpStore.
func (b *Builder) Store(ptr, val ID) {
	if b.Blk == nil {
		panic("spirv: Store outside block")
	}
	b.Blk.Body = append(b.Blk.Body, NewInstr(OpStore, 0, 0, uint32(ptr), uint32(val)))
}

// LocalVariable emits an OpVariable with Function storage in the current
// block (which should be the function's entry block).
func (b *Builder) LocalVariable(pointee ID) ID {
	ptr := b.Mod.EnsureTypePointer(StorageFunction, pointee)
	return b.EmitWords(OpVariable, ptr, StorageFunction)
}

// AccessChain emits an OpAccessChain into base with the given index ids.
func (b *Builder) AccessChain(resultPtrType ID, base ID, indices ...ID) ID {
	ops := []ID{base}
	ops = append(ops, indices...)
	return b.Emit(OpAccessChain, resultPtrType, ops...)
}

// --- terminators ---

func (b *Builder) terminate(ins *Instruction) {
	if b.Blk == nil {
		panic("spirv: terminator outside block")
	}
	b.Blk.Term = ins
	b.Blk = nil
}

// Branch terminates the block with OpBranch.
func (b *Builder) Branch(target ID) { b.terminate(NewInstr(OpBranch, 0, 0, uint32(target))) }

// BranchCond terminates the block with OpBranchConditional.
func (b *Builder) BranchCond(cond, onTrue, onFalse ID) {
	b.terminate(NewInstr(OpBranchConditional, 0, 0, uint32(cond), uint32(onTrue), uint32(onFalse)))
}

// SelectionMerge declares the current block as a selection header.
func (b *Builder) SelectionMerge(merge ID) {
	b.Blk.Merge = NewInstr(OpSelectionMerge, 0, 0, uint32(merge), SelectionControlNone)
}

// LoopMerge declares the current block as a loop header.
func (b *Builder) LoopMerge(merge, cont ID) {
	b.Blk.Merge = NewInstr(OpLoopMerge, 0, 0, uint32(merge), uint32(cont), LoopControlNone)
}

// Return terminates the block with OpReturn.
func (b *Builder) Return() { b.terminate(NewInstr(OpReturn, 0, 0)) }

// ReturnValue terminates the block with OpReturnValue.
func (b *Builder) ReturnValue(v ID) { b.terminate(NewInstr(OpReturnValue, 0, 0, uint32(v))) }

// Kill terminates the block with OpKill.
func (b *Builder) Kill() { b.terminate(NewInstr(OpKill, 0, 0)) }

// Unreachable terminates the block with OpUnreachable.
func (b *Builder) Unreachable() { b.terminate(NewInstr(OpUnreachable, 0, 0)) }

// --- common shader scaffolding ---

// FragmentShell creates the standard fragment-shader scaffolding used by the
// corpus: a vec2 coordinate input, a vec4 color output, and an open main
// function with its entry block begun. It returns the ids needed to build
// the body.
type FragmentShell struct {
	Main  ID // main function id
	Coord ID // Input vec2 variable (pixel coordinate in [0,1)²)
	Color ID // Output vec4 variable
	Float ID // float32 type
	Vec2  ID
	Vec4  ID
	Int   ID // int32 type
	Bool  ID
	Void  ID
}

// BeginFragmentShell builds the scaffolding and leaves the builder inside
// main's entry block. Call FinishFragmentShell (or terminate main yourself,
// then EndFunction) when done.
func (b *Builder) BeginFragmentShell() *FragmentShell {
	s := &FragmentShell{}
	m := b.Mod
	s.Void = m.EnsureTypeVoid()
	s.Bool = m.EnsureTypeBool()
	s.Int = m.EnsureTypeInt(32, true)
	s.Float = m.EnsureTypeFloat(32)
	s.Vec2 = m.EnsureTypeVector(s.Float, 2)
	s.Vec4 = m.EnsureTypeVector(s.Float, 4)
	s.Coord = b.GlobalVariable("coord", StorageInput, s.Vec2, 0)
	b.Decorate(s.Coord, DecorationLocation, 0)
	s.Color = b.GlobalVariable("color", StorageOutput, s.Vec4, 0)
	b.Decorate(s.Color, DecorationLocation, 0)
	main, _ := b.BeginFunction("main", s.Void, FunctionControlNone)
	s.Main = main
	b.BeginNew()
	return s
}

// FinishFragmentShell terminates main with OpReturn (if a block is open),
// ends the function, and declares the entry point.
func (b *Builder) FinishFragmentShell(s *FragmentShell) {
	if b.Blk != nil {
		b.Return()
	}
	b.EndFunction()
	b.EntryPoint("main", s.Main, s.Coord, s.Color)
}

// Uniform declares a uniform-constant scalar/vector input with the given
// debug name and location, which the execution environment initialises from
// the test's input file.
func (b *Builder) Uniform(name string, pointee ID, location uint32) ID {
	v := b.GlobalVariable(name, StorageUniformConstant, pointee, 0)
	b.Decorate(v, DecorationLocation, location)
	return v
}
