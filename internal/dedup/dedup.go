// Package dedup is the test-case deduplication front-end of Section 3.5: it
// applies the algorithm of Figure 6 (package core) to reduced test cases,
// ignoring the fixed list of supporting transformation types — the add-type/
// constant/variable transformations, SplitBlock and AddFunction (enablers
// for other transformations), and ReplaceIdWithSynonym (which reaps the
// benefits of prior transformations but is not interesting in isolation).
// The list was fixed before running the controlled experiments.
package dedup

import (
	"spirvfuzz/internal/core"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/target"
)

// Case is a reduced test case submitted for deduplication.
type Case struct {
	// Name identifies the test (e.g. "seed-1234/SwiftShader").
	Name string
	// Sequence is the minimized transformation sequence.
	Sequence []fuzz.Transformation
	// Signature is the known crash signature, used by experiments as ground
	// truth to score the heuristic (the algorithm itself never sees it).
	Signature string
}

// Key namespaces a signature for map keying: crash signatures and the
// miscompilation pseudo-signature live in disjoint namespaces, so a future
// crash whose text happens to match the miscompilation pseudo-signature —
// or a version-qualified key appended behind either — cannot collide across
// kinds. All signature-keyed maps in this package and the experiments go
// through Key rather than comparing raw strings.
func Key(sig string) string {
	if sig == target.MiscompilationSignature {
		return "miscomp:" + sig
	}
	return "crash:" + sig
}

// BisectCase couples a reduced case with its bisection verdict: the first
// release of Target that exhibits the bug.
type BisectCase struct {
	Case
	Target   string
	FirstBad string
}

// BisectKey is the bisection-signal bucket key: target × first-bad release.
// Two cases with equal keys were (very likely) broken by the same release,
// the dedup criterion of the bisection paper.
func BisectKey(targetName, firstBad string) string {
	return targetName + "@" + firstBad
}

// RecommendBisect buckets cases by BisectKey and returns one representative
// per bucket — the first in input order, so the recommendation is
// deterministic for a canonically ordered case list.
func RecommendBisect(cases []BisectCase) []BisectCase {
	seen := map[string]bool{}
	var out []BisectCase
	for _, c := range cases {
		k := BisectKey(c.Target, c.FirstBad)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// RecommendIntersection intersects the two partitions: cases are grouped by
// bisection bucket, and the transformation-type heuristic (Recommend) runs
// within each group. A report is filed per (bisect bucket × type bucket)
// cell, so a report is suppressed only when both signals agree it duplicates
// an earlier one — stricter than either signal alone, trading report count
// for precision. Output order is deterministic for a canonically ordered
// input: buckets in first-appearance order, the type heuristic's preference
// within each bucket.
func RecommendIntersection(cases []BisectCase) []BisectCase {
	groups := map[string][]Case{}
	var order []string
	for _, c := range cases {
		k := BisectKey(c.Target, c.FirstBad)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c.Case)
	}
	byName := make(map[string]int, len(cases))
	for i, c := range cases {
		if _, dup := byName[c.Name]; !dup {
			byName[c.Name] = i
		}
	}
	var out []BisectCase
	for _, k := range order {
		for _, rec := range Recommend(groups[k]) {
			out = append(out, cases[byName[rec.Name]])
		}
	}
	return out
}

// Recommend returns the subset of tests the heuristic suggests reporting:
// pairwise disjoint in (non-ignored) transformation types, smallest type
// sets first.
func Recommend(cases []Case) []Case {
	ignore := fuzz.SupportingTypes()
	reduced := make([]core.ReducedTest, len(cases))
	for i, c := range cases {
		reduced[i] = core.ReducedTest{
			Name:  c.Name,
			Types: core.TypeSet(c.Sequence, ignore),
		}
	}
	picked := core.Deduplicate(reduced)
	byName := make(map[string]int, len(cases))
	for i, c := range cases {
		if _, dup := byName[c.Name]; !dup {
			byName[c.Name] = i
		}
	}
	out := make([]Case, 0, len(picked))
	for _, p := range picked {
		out = append(out, cases[byName[p.Name]])
	}
	return out
}

// Score computes the Table 4 quality measures for a recommendation against
// ground-truth signatures: the number of distinct signatures covered by the
// recommended tests and the number of duplicates among them.
func Score(recommended []Case) (distinct, duplicates int) {
	seen := map[string]bool{}
	for _, c := range recommended {
		if seen[Key(c.Signature)] {
			duplicates++
		} else {
			seen[Key(c.Signature)] = true
			distinct++
		}
	}
	return distinct, duplicates
}

// SignatureCount returns the number of distinct ground-truth signatures in
// a full case set (Table 4's "Sigs" column).
func SignatureCount(cases []Case) int {
	seen := map[string]bool{}
	for _, c := range cases {
		seen[Key(c.Signature)] = true
	}
	return len(seen)
}
