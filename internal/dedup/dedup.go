// Package dedup is the test-case deduplication front-end of Section 3.5: it
// applies the algorithm of Figure 6 (package core) to reduced test cases,
// ignoring the fixed list of supporting transformation types — the add-type/
// constant/variable transformations, SplitBlock and AddFunction (enablers
// for other transformations), and ReplaceIdWithSynonym (which reaps the
// benefits of prior transformations but is not interesting in isolation).
// The list was fixed before running the controlled experiments.
package dedup

import (
	"spirvfuzz/internal/core"
	"spirvfuzz/internal/fuzz"
)

// Case is a reduced test case submitted for deduplication.
type Case struct {
	// Name identifies the test (e.g. "seed-1234/SwiftShader").
	Name string
	// Sequence is the minimized transformation sequence.
	Sequence []fuzz.Transformation
	// Signature is the known crash signature, used by experiments as ground
	// truth to score the heuristic (the algorithm itself never sees it).
	Signature string
}

// Recommend returns the subset of tests the heuristic suggests reporting:
// pairwise disjoint in (non-ignored) transformation types, smallest type
// sets first.
func Recommend(cases []Case) []Case {
	ignore := fuzz.SupportingTypes()
	reduced := make([]core.ReducedTest, len(cases))
	for i, c := range cases {
		reduced[i] = core.ReducedTest{
			Name:  c.Name,
			Types: core.TypeSet(c.Sequence, ignore),
		}
	}
	picked := core.Deduplicate(reduced)
	byName := make(map[string]int, len(cases))
	for i, c := range cases {
		if _, dup := byName[c.Name]; !dup {
			byName[c.Name] = i
		}
	}
	out := make([]Case, 0, len(picked))
	for _, p := range picked {
		out = append(out, cases[byName[p.Name]])
	}
	return out
}

// Score computes the Table 4 quality measures for a recommendation against
// ground-truth signatures: the number of distinct signatures covered by the
// recommended tests and the number of duplicates among them.
func Score(recommended []Case) (distinct, duplicates int) {
	seen := map[string]bool{}
	for _, c := range recommended {
		if seen[c.Signature] {
			duplicates++
		} else {
			seen[c.Signature] = true
			distinct++
		}
	}
	return distinct, duplicates
}

// SignatureCount returns the number of distinct ground-truth signatures in
// a full case set (Table 4's "Sigs" column).
func SignatureCount(cases []Case) int {
	seen := map[string]bool{}
	for _, c := range cases {
		seen[c.Signature] = true
	}
	return len(seen)
}
