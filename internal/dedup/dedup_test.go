package dedup_test

import (
	"testing"

	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/fuzz"
)

// seq builds a transformation sequence with the given concrete types.
func seq(kinds ...string) []fuzz.Transformation {
	var out []fuzz.Transformation
	for _, k := range kinds {
		switch k {
		case "dead":
			out = append(out, &fuzz.AddDeadBlock{})
		case "kill":
			out = append(out, &fuzz.ReplaceBranchWithKill{})
		case "move":
			out = append(out, &fuzz.MoveBlockDown{})
		case "split":
			out = append(out, &fuzz.SplitBlock{})
		case "syn":
			out = append(out, &fuzz.ReplaceIdWithSynonym{})
		case "ctrl":
			out = append(out, &fuzz.SetFunctionControl{})
		default:
			panic(k)
		}
	}
	return out
}

func TestRecommendIgnoresSupportingTypes(t *testing.T) {
	// Three cases: A and B differ only in supporting types (split/syn) and
	// share "dead" — same root cause, one report. C uses a disjoint
	// interesting type.
	cases := []dedup.Case{
		{Name: "A", Sequence: seq("split", "dead", "syn"), Signature: "bug-dead"},
		{Name: "B", Sequence: seq("dead", "split"), Signature: "bug-dead"},
		{Name: "C", Sequence: seq("split", "move"), Signature: "bug-move"},
	}
	got := dedup.Recommend(cases)
	if len(got) != 2 {
		t.Fatalf("recommended %d, want 2", len(got))
	}
	names := map[string]bool{}
	for _, c := range got {
		names[c.Name] = true
	}
	if !names["C"] {
		t.Fatal("C (disjoint type) must be recommended")
	}
	if names["A"] && names["B"] {
		t.Fatal("A and B share the interesting type and must collapse")
	}
	distinct, dups := dedup.Score(got)
	if distinct != 2 || dups != 0 {
		t.Fatalf("score = %d distinct, %d dups", distinct, dups)
	}
	if n := dedup.SignatureCount(cases); n != 2 {
		t.Fatalf("SignatureCount = %d", n)
	}
}

func TestRecommendDetectsDuplicates(t *testing.T) {
	// Two type-disjoint cases that actually trigger the SAME bug: both get
	// recommended (the heuristic cannot know), and Score reports the dup.
	cases := []dedup.Case{
		{Name: "X", Sequence: seq("dead"), Signature: "same-bug"},
		{Name: "Y", Sequence: seq("move"), Signature: "same-bug"},
	}
	got := dedup.Recommend(cases)
	if len(got) != 2 {
		t.Fatalf("recommended %d, want 2", len(got))
	}
	distinct, dups := dedup.Score(got)
	if distinct != 1 || dups != 1 {
		t.Fatalf("score = %d distinct, %d dups; want 1, 1", distinct, dups)
	}
}

func TestRecommendSupportingOnlyCasesDropped(t *testing.T) {
	// A case whose minimized sequence contains only supporting types has an
	// empty type set and is dropped (it cannot be meaningfully compared).
	cases := []dedup.Case{
		{Name: "onlysupport", Sequence: seq("split", "syn"), Signature: "s"},
		{Name: "real", Sequence: seq("kill"), Signature: "k"},
	}
	got := dedup.Recommend(cases)
	if len(got) != 1 || got[0].Name != "real" {
		t.Fatalf("got %v", got)
	}
}

func TestRecommendPrefersSmallTypeSets(t *testing.T) {
	cases := []dedup.Case{
		{Name: "big", Sequence: seq("dead", "move", "ctrl"), Signature: "b1"},
		{Name: "small", Sequence: seq("dead"), Signature: "b2"},
	}
	got := dedup.Recommend(cases)
	if len(got) != 1 || got[0].Name != "small" {
		t.Fatalf("got %v; the smaller type set must win", got)
	}
}
