package experiments_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spirvfuzz/internal/experiments"
)

// campaigns is shared across the tests in this package (building it is the
// expensive part).
var campaigns *experiments.Campaigns

func getCampaigns(t *testing.T) *experiments.Campaigns {
	t.Helper()
	if campaigns == nil {
		c, err := experiments.RunCampaigns(experiments.Config{Tests: 120, Groups: 6, CapPerSignature: 3})
		if err != nil {
			t.Fatal(err)
		}
		campaigns = c
	}
	return campaigns
}

func TestTable3Shape(t *testing.T) {
	c := getCampaigns(t)
	rows := experiments.Table3(c)
	if len(rows) != 10 { // 9 targets + All
		t.Fatalf("got %d rows", len(rows))
	}
	var all, spirvOpt *experiments.Table3Row
	for i := range rows {
		switch rows[i].Target {
		case "All":
			all = &rows[i]
		case "spirv-opt":
			spirvOpt = &rows[i]
		}
	}
	if all == nil || spirvOpt == nil {
		t.Fatal("missing rows")
	}
	// The paper's headline (RQ1): spirv-fuzz beats glsl-fuzz overall with
	// high confidence.
	if all.TotalFuzz <= all.TotalGlsl {
		t.Errorf("All: spirv-fuzz total %d should exceed glsl-fuzz total %d", all.TotalFuzz, all.TotalGlsl)
	}
	if all.ConfVsGlsl < 0.95 {
		t.Errorf("All: confidence vs glsl-fuzz = %.3f, want ≥ 0.95", all.ConfVsGlsl)
	}
	// glsl-fuzz finds nothing on spirv-opt (Table 3: 0 signatures).
	if spirvOpt.TotalGlsl != 0 {
		t.Errorf("spirv-opt: glsl-fuzz found %d signatures, want 0", spirvOpt.TotalGlsl)
	}
	if spirvOpt.TotalFuzz == 0 {
		t.Error("spirv-opt: spirv-fuzz found nothing")
	}
	text := experiments.RenderTable3(rows)
	if !strings.Contains(text, "All") || !strings.Contains(text, "spirv-opt") {
		t.Error("rendering incomplete")
	}
}

func TestFigure7Shape(t *testing.T) {
	c := getCampaigns(t)
	segs := experiments.Figure7(c)
	if segs[len(segs)-1].Target != "All" {
		t.Fatal("missing All segment")
	}
	all := segs[len(segs)-1].Counts
	// spirv-fuzz finds signatures the other configurations miss (F-only
	// segment nonzero), mirroring Figure 7.
	if all[1] == 0 {
		t.Error("no spirv-fuzz-only signatures")
	}
	// And there is a shared core found by all three.
	if all[7] == 0 {
		t.Error("no signatures common to all three configurations")
	}
	_ = experiments.RenderFigure7(segs)
}

func TestRQ2Shape(t *testing.T) {
	c := getCampaigns(t)
	r := experiments.RQ2(c)
	if len(r.FuzzDeltas) == 0 || len(r.GlslDeltas) == 0 {
		t.Fatalf("reductions missing: %d fuzz, %d glsl", len(r.FuzzDeltas), len(r.GlslDeltas))
	}
	// Both tools reduce effectively (deltas far below unreduced sizes)...
	if r.MedianFuzz >= r.MedianFuzzUnreduced {
		t.Errorf("spirv-fuzz reduction ineffective: %v vs unreduced %v", r.MedianFuzz, r.MedianFuzzUnreduced)
	}
	if r.MedianGlsl > r.MedianGlslUnreduced {
		t.Errorf("glsl-fuzz reduction grew deltas: %v vs %v", r.MedianGlsl, r.MedianGlslUnreduced)
	}
	// ...and the paper's RQ2 finding holds: the free spirv-fuzz reduction
	// yields smaller deltas than the hand-crafted glsl-fuzz reducer.
	if r.MedianFuzz >= r.MedianGlsl {
		t.Errorf("median deltas: spirv-fuzz %v should be below glsl-fuzz %v", r.MedianFuzz, r.MedianGlsl)
	}
	_ = experiments.RenderRQ2(r)
}

func TestTable4Shape(t *testing.T) {
	c := getCampaigns(t)
	rows := experiments.Table4(c)
	if len(rows) < 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	total := rows[len(rows)-1]
	if total.Target != "Total" {
		t.Fatal("missing Total row")
	}
	if total.Tests == 0 || total.Sigs == 0 || total.Reports == 0 {
		t.Fatalf("empty experiment: %+v", total)
	}
	if total.Distinct+total.Dups != total.Reports {
		t.Fatalf("accounting broken: %+v", total)
	}
	// The paper's RQ3 findings: a good share of distinct signatures is
	// covered with a low duplicate rate.
	if total.Distinct*2 < total.Sigs {
		t.Errorf("coverage too low: %d distinct of %d signatures", total.Distinct, total.Sigs)
	}
	if total.Dups*2 > total.Reports {
		t.Errorf("duplicate rate too high: %d of %d reports", total.Dups, total.Reports)
	}
	for _, r := range rows {
		if r.Target == "NVIDIA" {
			t.Error("NVIDIA must be excluded from the dedup experiment")
		}
	}
	_ = experiments.RenderTable4(rows)
}

func TestTable2Renders(t *testing.T) {
	text := experiments.Table2()
	for _, name := range []string{"AMD-LLPC", "Mesa-Old", "Pixel-5", "SwiftShader"} {
		if !strings.Contains(text, name) {
			t.Errorf("Table 2 missing %s", name)
		}
	}
}

func TestWildExport(t *testing.T) {
	c := getCampaigns(t)
	dir := t.TempDir()
	rep, err := experiments.ExportWildReports(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reports == 0 {
		t.Fatal("no reports exported")
	}
	if rep.Reports != rep.Miscompilations+rep.Crashes+rep.InvalidEmits {
		t.Fatalf("breakdown does not sum: %+v", rep)
	}
	if len(rep.Dirs) != rep.Reports {
		t.Fatalf("%d dirs for %d reports", len(rep.Dirs), rep.Reports)
	}
	// Spot-check the first bundle is complete.
	for _, f := range []string{"README.md", "original.spvasm", "reduced_variant.spvasm", "transformations.json"} {
		if _, err := os.Stat(filepath.Join(rep.Dirs[0], f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	if !strings.Contains(experiments.RenderWild(rep), "distinct issues") {
		t.Error("summary rendering broken")
	}
}
