package experiments

import (
	"fmt"
	"strings"

	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/target"
)

// Table4Row is one row of Table 4 (deduplication effectiveness, RQ3).
type Table4Row struct {
	Target   string
	Tests    int // reduced crash test cases submitted to the deduplicator
	Sigs     int // distinct ground-truth crash signatures among them
	Reports  int // test cases the heuristic recommends investigating
	Distinct int // distinct signatures covered by the recommendations
	Dups     int // recommended tests that duplicate an already-covered signature
}

// Table4 runs the deduplication experiment: crash-bug outcomes are reduced
// (capped per signature), grouped per target, and fed to the Figure 6
// algorithm; recommendations are scored against the ground-truth crash
// signatures. As in the paper, the NVIDIA target is excluded and only crash
// bugs are considered (crash signatures are the reliable ground truth).
func Table4(c *Campaigns) []Table4Row {
	capPer := c.Config.withDefaults().CapPerSignature
	eng := c.engine()
	perTarget := map[string][]dedup.Case{}
	perSig := map[string]int{}
	for i, o := range c.Fuzz.BugOutcomes {
		if o.Target == "NVIDIA" || o.Signature == target.MiscompilationSignature {
			continue
		}
		key := o.Target + "|" + o.Signature
		if perSig[key] >= capPer {
			continue
		}
		perSig[key]++
		tg := target.ByName(o.Target)
		interesting := reduce.ForOutcomeOn(eng, tg, o.Original, o.Inputs, o.Signature)
		r := reduce.ReduceParallelReplay(o.Original, o.Inputs, o.Transformations, interesting, eng.Workers(), c.replayEngine())
		perTarget[o.Target] = append(perTarget[o.Target], dedup.Case{
			Name:      fmt.Sprintf("%s/seed%d/%d", o.Target, o.Seed, i),
			Sequence:  r.Sequence,
			Signature: o.Signature,
		})
	}
	var rows []Table4Row
	total := Table4Row{Target: "Total"}
	for _, tg := range target.All() {
		cases := perTarget[tg.Name]
		if len(cases) == 0 {
			continue
		}
		recommended := dedup.Recommend(cases)
		distinct, dups := dedup.Score(recommended)
		row := Table4Row{
			Target:   tg.Name,
			Tests:    len(cases),
			Sigs:     dedup.SignatureCount(cases),
			Reports:  len(recommended),
			Distinct: distinct,
			Dups:     dups,
		}
		rows = append(rows, row)
		total.Tests += row.Tests
		total.Sigs += row.Sigs
		total.Reports += row.Reports
		total.Distinct += row.Distinct
		total.Dups += row.Dups
	}
	rows = append(rows, total)
	return rows
}

// RenderTable4 formats Table 4 as text.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: effectiveness of test-case deduplication\n")
	fmt.Fprintf(&sb, "%-14s %6s %6s %8s %9s %6s\n", "Target", "Tests", "Sigs", "Reports", "Distinct", "Dups")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %6d %6d %8d %9d %6d\n", r.Target, r.Tests, r.Sigs, r.Reports, r.Distinct, r.Dups)
	}
	sb.WriteString("(paper totals: 1467 tests, 78 sigs, 49 reports, 41 distinct, 8 dups)\n")
	return sb.String()
}

// Table2 renders the target inventory (Table 2).
func Table2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: the SPIR-V targets under test\n")
	fmt.Fprintf(&sb, "%-14s %-22s %-10s %s\n", "Target", "Version", "GPU type", "Renders")
	for _, tg := range target.All() {
		renders := "yes"
		if !tg.CanRender {
			renders = "no (crash/validity bugs only)"
		}
		fmt.Fprintf(&sb, "%-14s %-22s %-10s %s\n", tg.Name, tg.Version, tg.GPUType, renders)
	}
	return sb.String()
}
