package experiments

import (
	"fmt"
	"strings"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/dedup"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/target"
)

// BisectRQRow scores one dedup signal on the Table 4 corpus against the
// defect-set ground truth (the injected defects' signatures).
type BisectRQRow struct {
	Signal    string  // "transform", "bisect" or "intersection"
	Reports   int     // test cases the signal recommends filing
	Distinct  int     // distinct ground-truth defects covered by them
	Dups      int     // recommendations duplicating an already-covered defect
	Precision float64 // Distinct / Reports
	Coverage  float64 // Distinct / defects present in the corpus
}

// BisectRQResult is the versioned-target research question: how do the
// transformation-type signal, the bisection signal, and their intersection
// compare as deduplicators on the same reduced corpus?
type BisectRQResult struct {
	Tests   int // reduced test cases submitted to every signal
	Defects int // distinct ground-truth defects among them
	// Exact counts bisections whose FirstBad equals the release that
	// introduced the case's defect (ground truth from the version registry).
	// A miss means an older co-triggered defect masked the signature below
	// the true introduction — the same masking real git-bisect runs hit.
	Exact int
	Rows  []BisectRQRow
	Stats bisect.Stats
}

// BisectRQ reduces the Table 4 corpus (crash bugs, NVIDIA excluded, capped
// per signature), bisects every reduced case over its target's release
// history, and scores the three dedup signals on identical inputs. All three
// recommendations and every bisection verdict are deterministic, so the
// table is reproducible at any worker count or cache temperature.
func BisectRQ(c *Campaigns) (*BisectRQResult, error) {
	capPer := c.Config.withDefaults().CapPerSignature
	eng := c.engine()
	beng := c.bisectEngine()
	var cases []dedup.BisectCase
	exact := 0
	perSig := map[string]int{}
	for i, o := range c.Fuzz.BugOutcomes {
		if o.Target == "NVIDIA" || o.Signature == target.MiscompilationSignature {
			continue
		}
		key := o.Target + "|" + dedup.Key(o.Signature)
		if perSig[key] >= capPer {
			continue
		}
		perSig[key]++
		tg := target.ByName(o.Target)
		interesting := reduce.ForOutcomeOn(eng, tg, o.Original, o.Inputs, o.Signature)
		r := reduce.ReduceParallelReplay(o.Original, o.Inputs, o.Transformations, interesting, eng.Workers(), c.replayEngine())
		res, err := beng.Bisect(bisect.Case{
			Target:         o.Target,
			Signature:      o.Signature,
			Original:       o.Original,
			OriginalInputs: o.Inputs,
			Variant:        r.Variant,
			Inputs:         r.Inputs,
		})
		if err != nil {
			return nil, fmt.Errorf("bisect RQ: case %d: %w", i, err)
		}
		if res.FirstBad == target.IntroductionOf(o.Target, o.Signature) {
			exact++
		}
		cases = append(cases, dedup.BisectCase{
			Case: dedup.Case{
				Name:      fmt.Sprintf("%s/seed%d/%d", o.Target, o.Seed, i),
				Sequence:  r.Sequence,
				Signature: o.Signature,
			},
			Target:   o.Target,
			FirstBad: res.FirstBad,
		})
	}

	plain := make([]dedup.Case, len(cases))
	for i, bc := range cases {
		plain[i] = bc.Case
	}
	defects := dedup.SignatureCount(plain)
	score := func(signal string, rec []dedup.Case) BisectRQRow {
		distinct, dups := dedup.Score(rec)
		row := BisectRQRow{Signal: signal, Reports: len(rec), Distinct: distinct, Dups: dups}
		if row.Reports > 0 {
			row.Precision = float64(distinct) / float64(row.Reports)
		}
		if defects > 0 {
			row.Coverage = float64(distinct) / float64(defects)
		}
		return row
	}
	toPlain := func(rec []dedup.BisectCase) []dedup.Case {
		out := make([]dedup.Case, len(rec))
		for i, bc := range rec {
			out[i] = bc.Case
		}
		return out
	}
	return &BisectRQResult{
		Tests:   len(cases),
		Defects: defects,
		Exact:   exact,
		Rows: []BisectRQRow{
			score("transform", dedup.Recommend(plain)),
			score("bisect", toPlain(dedup.RecommendBisect(cases))),
			score("intersection", toPlain(dedup.RecommendIntersection(cases))),
		},
		Stats: beng.Stats(),
	}, nil
}

// RenderBisectRQ formats the signal comparison as text.
func RenderBisectRQ(r *BisectRQResult) string {
	var sb strings.Builder
	sb.WriteString("Bisection RQ: dedup signals on the Table 4 corpus (ground truth: injected defect sets)\n")
	fmt.Fprintf(&sb, "%d reduced tests covering %d defects; %d/%d bisections hit the exact introducing release\n",
		r.Tests, r.Defects, r.Exact, int(r.Stats.Bisections))
	fmt.Fprintf(&sb, "%-14s %8s %9s %6s %10s %9s\n", "Signal", "Reports", "Distinct", "Dups", "Precision", "Coverage")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %8d %9d %6d %9.0f%% %8.0f%%\n",
			row.Signal, row.Reports, row.Distinct, row.Dups, 100*row.Precision, 100*row.Coverage)
	}
	fmt.Fprintf(&sb, "bisection probes: %d over %d bisections, %.0f%% answered without a fresh compile (%d compiles)\n",
		r.Stats.Queries, r.Stats.Bisections, 100*r.Stats.HitFraction(), r.Stats.Compiles)
	return sb.String()
}
