// Package experiments regenerates the paper's tables and figures (Section
// 4): Table 3 and Figure 7 (bug-finding ability, RQ1), the reduction-quality
// medians (RQ2), and Table 4 (deduplication effectiveness, RQ3). The
// absolute numbers depend on the simulated targets' injected defects; the
// comparative shape is what reproduces the paper's findings.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/memostore"
	"spirvfuzz/internal/replay"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/stats"
	"spirvfuzz/internal/target"
)

// Config scales the experiments. The paper uses 10,000 tests per tool in 10
// groups of 1,000; the default here is laptop-scale and adjustable.
type Config struct {
	Tests  int // tests per tool configuration (default 300)
	Groups int // disjoint groups for medians/MWU (default 10)
	// CapPerSignature caps reductions per bug signature (paper: 100 for
	// RQ2, 20 for the extra RQ3 targets; default 6).
	CapPerSignature int
	// Workers sizes the execution engine's worker pool (0: GOMAXPROCS).
	Workers int
	// ReplayCacheMB budgets the shared prefix-snapshot replay cache used by
	// the reduction experiments, in MiB. 0 selects the replay.DefaultBudget;
	// negative disables incremental replay (the honest baseline).
	ReplayCacheMB int
	// MemoDir, when non-empty, attaches a persistent execution memo store:
	// a repeat run of the same experiments warm-starts from it, serving
	// previously-executed (module, target, inputs) results from disk.
	// Results are bitwise-identical with or without it.
	MemoDir string
	// MemoMaxMB bounds the memo store in MiB; <= 0 selects the default.
	MemoMaxMB int
}

// replayBudget maps the config field to an engine byte budget.
func (c Config) replayBudget() int64 {
	switch {
	case c.ReplayCacheMB < 0:
		return 0
	case c.ReplayCacheMB == 0:
		return replay.DefaultBudget
	default:
		return int64(c.ReplayCacheMB) << 20
	}
}

func (c Config) withDefaults() Config {
	if c.Tests == 0 {
		c.Tests = 300
	}
	if c.Groups == 0 {
		c.Groups = 10
	}
	if c.CapPerSignature == 0 {
		c.CapPerSignature = 6
	}
	return c
}

// Campaigns runs the three tool configurations over all targets.
type Campaigns struct {
	Config Config
	// Engine is the shared execution engine; downstream experiments (RQ2,
	// Table 4, report export) reuse it so reductions hit the campaign's
	// result cache.
	Engine *runner.Engine
	// Replay is the shared prefix-snapshot replay engine; reductions across
	// all experiments share its byte budget and statistics.
	Replay *replay.Engine
	// Bisect is the shared bisection engine (lazy; probes route through
	// Engine so bisections hit the campaign's caches).
	Bisect *bisect.Engine
	// Memo is the persistent execution memo store attached to Engine when
	// Config.MemoDir is set; nil otherwise. The caller that finished with
	// the campaigns closes it (gfauto does).
	Memo   *memostore.Store
	Fuzz   *harness.CampaignResult // spirv-fuzz
	Simple *harness.CampaignResult // spirv-fuzz-simple
	Glsl   *harness.CampaignResult // glsl-fuzz
}

// engine returns the shared engine, falling back to a fresh one when the
// Campaigns value was assembled by hand (tests do this).
func (c *Campaigns) engine() *runner.Engine {
	if c.Engine == nil {
		c.Engine = runner.New(c.Config.Workers)
	}
	return c.Engine
}

// replayEngine returns the shared replay engine, building it from the config
// on first use (hand-assembled Campaigns values included).
func (c *Campaigns) replayEngine() *replay.Engine {
	if c.Replay == nil {
		c.Replay = replay.NewEngine(c.Config.replayBudget())
	}
	return c.Replay
}

// bisectEngine returns the shared bisection engine, building it over the
// shared runner engine on first use.
func (c *Campaigns) bisectEngine() *bisect.Engine {
	if c.Bisect == nil {
		c.Bisect = bisect.New(c.engine())
	}
	return c.Bisect
}

// BisectStats reports the bisection counters accumulated so far (zero if no
// bisection RQ ran); gfauto -json embeds them.
func (c *Campaigns) BisectStats() bisect.Stats {
	if c.Bisect == nil {
		return bisect.Stats{}
	}
	return c.Bisect.Stats()
}

// RunCampaigns executes the three campaigns of Section 4.1. The campaigns are
// independent (disjoint seed ranges) and run concurrently on one shared
// engine, whose content-addressed cache also deduplicates the work they share
// — every campaign runs the same reference originals on the same targets.
func RunCampaigns(cfg Config) (*Campaigns, error) {
	cfg = cfg.withDefaults()
	refs := corpus.References()
	targets := target.All()
	donors := corpus.Donors()
	eng := runner.New(cfg.Workers)
	c := &Campaigns{Config: cfg, Engine: eng, Replay: replay.NewEngine(cfg.replayBudget())}
	if cfg.MemoDir != "" {
		memo, err := memostore.Open(cfg.MemoDir, int64(cfg.MemoMaxMB)<<20)
		if err != nil {
			return nil, err
		}
		c.Memo = memo
		eng.SetMemoStore(memo)
	}
	results := []struct {
		tool harness.Tool
		into **harness.CampaignResult
	}{
		{harness.ToolSpirvFuzz, &c.Fuzz},
		{harness.ToolSpirvFuzzSimple, &c.Simple},
		{harness.ToolGlslFuzz, &c.Glsl},
	}
	errs := make([]error, len(results))
	var wg sync.WaitGroup
	for i, r := range results {
		wg.Add(1)
		go func(i int, tool harness.Tool, into **harness.CampaignResult) {
			defer wg.Done()
			*into, errs[i] = harness.CampaignEngine(eng, tool, cfg.Tests, cfg.Groups, refs, targets, donors)
		}(i, r.tool, r.into)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Table3Row is one row of Table 3.
type Table3Row struct {
	Target                            string
	TotalFuzz, TotalSimple, TotalGlsl int
	MedFuzz, MedSimple, MedGlsl       float64
	// ConfVsSimple and ConfVsGlsl are MWU confidences (in [0,1]) that
	// spirv-fuzz finds more distinct signatures per group.
	ConfVsSimple, ConfVsGlsl float64
}

// Table3 computes Table 3 from campaign data, including the "All" row.
func Table3(c *Campaigns) []Table3Row {
	var rows []Table3Row
	totalFuzz, totalSimple, totalGlsl := map[string]bool{}, map[string]bool{}, map[string]bool{}
	names := targetNames(c)
	groups := len(c.Fuzz.GroupSignatures[names[0]])
	allGroupFuzz := make([]float64, groups)
	allGroupSimple := make([]float64, groups)
	allGroupGlsl := make([]float64, groups)
	for _, name := range names {
		gf := toF(c.Fuzz.GroupSignatures[name])
		gs := toF(c.Simple.GroupSignatures[name])
		gg := toF(c.Glsl.GroupSignatures[name])
		for i := range gf {
			allGroupFuzz[i] += gf[i]
			allGroupSimple[i] += gs[i]
			allGroupGlsl[i] += gg[i]
		}
		_, confSimple := stats.MannWhitneyU(gf, gs)
		_, confGlsl := stats.MannWhitneyU(gf, gg)
		rows = append(rows, Table3Row{
			Target:       name,
			TotalFuzz:    len(c.Fuzz.Signatures[name]),
			TotalSimple:  len(c.Simple.Signatures[name]),
			TotalGlsl:    len(c.Glsl.Signatures[name]),
			MedFuzz:      stats.Median(gf),
			MedSimple:    stats.Median(gs),
			MedGlsl:      stats.Median(gg),
			ConfVsSimple: confSimple,
			ConfVsGlsl:   confGlsl,
		})
		for s := range c.Fuzz.Signatures[name] {
			totalFuzz[name+"|"+s] = true
		}
		for s := range c.Simple.Signatures[name] {
			totalSimple[name+"|"+s] = true
		}
		for s := range c.Glsl.Signatures[name] {
			totalGlsl[name+"|"+s] = true
		}
	}
	_, confSimple := stats.MannWhitneyU(allGroupFuzz, allGroupSimple)
	_, confGlsl := stats.MannWhitneyU(allGroupFuzz, allGroupGlsl)
	rows = append(rows, Table3Row{
		Target:       "All",
		TotalFuzz:    len(totalFuzz),
		TotalSimple:  len(totalSimple),
		TotalGlsl:    len(totalGlsl),
		MedFuzz:      stats.Median(allGroupFuzz),
		MedSimple:    stats.Median(allGroupSimple),
		MedGlsl:      stats.Median(allGroupGlsl),
		ConfVsSimple: confSimple,
		ConfVsGlsl:   confGlsl,
	})
	return rows
}

// RenderTable3 formats Table 3 as text.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: distinct bug signatures (totals and per-group medians)\n")
	fmt.Fprintf(&sb, "%-14s %22s %22s %22s  %s\n", "Target",
		"spirv-fuzz(tot/med)", "simple(tot/med)", "glsl-fuzz(tot/med)", "beats simple? / glsl?")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %15d/%5.1f %16d/%5.1f %16d/%5.1f  %s(%5.2f%%) / %s(%5.2f%%)\n",
			r.Target,
			r.TotalFuzz, r.MedFuzz, r.TotalSimple, r.MedSimple, r.TotalGlsl, r.MedGlsl,
			yesNo(r.ConfVsSimple), 100*r.ConfVsSimple,
			yesNo(r.ConfVsGlsl), 100*r.ConfVsGlsl)
	}
	return sb.String()
}

func yesNo(conf float64) string {
	if conf > 0.5 {
		return "Yes"
	}
	return "No"
}

// Figure7Segment is one target's Venn segment counts, masks as in
// stats.VennCounts3 with bit0=spirv-fuzz, bit1=spirv-fuzz-simple,
// bit2=glsl-fuzz.
type Figure7Segment struct {
	Target string
	Counts map[int]int
}

// Figure7 computes the Venn complementarity data.
func Figure7(c *Campaigns) []Figure7Segment {
	var out []Figure7Segment
	allF, allS, allG := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, name := range targetNames(c) {
		f, s, g := c.Fuzz.Signatures[name], c.Simple.Signatures[name], c.Glsl.Signatures[name]
		out = append(out, Figure7Segment{Target: name, Counts: stats.VennCounts3(f, s, g)})
		for k := range f {
			allF[name+"|"+k] = true
		}
		for k := range s {
			allS[name+"|"+k] = true
		}
		for k := range g {
			allG[name+"|"+k] = true
		}
	}
	out = append(out, Figure7Segment{Target: "All", Counts: stats.VennCounts3(allF, allS, allG)})
	return out
}

// RenderFigure7 formats the Venn data as text.
func RenderFigure7(segs []Figure7Segment) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: bug-signature complementarity (F=spirv-fuzz, S=simple, G=glsl-fuzz)\n")
	fmt.Fprintf(&sb, "%-14s %6s %6s %6s %6s %6s %6s %6s\n", "Target",
		"F", "S", "G", "F∩S", "F∩G", "S∩G", "F∩S∩G")
	for _, seg := range segs {
		fmt.Fprintf(&sb, "%-14s %6d %6d %6d %6d %6d %6d %6d\n", seg.Target,
			seg.Counts[1], seg.Counts[2], seg.Counts[4],
			seg.Counts[3], seg.Counts[5], seg.Counts[6], seg.Counts[7])
	}
	return sb.String()
}

func targetNames(c *Campaigns) []string {
	names := make([]string, 0, len(c.Fuzz.Signatures))
	for _, tg := range target.All() {
		if _, ok := c.Fuzz.Signatures[tg.Name]; ok {
			names = append(names, tg.Name)
		}
	}
	return names // already in Table 2 order
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
