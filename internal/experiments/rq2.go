package experiments

import (
	"fmt"
	"strings"

	"spirvfuzz/internal/spirv"

	"spirvfuzz/internal/glslfuzz"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/stats"
	"spirvfuzz/internal/target"
)

// RQ2Result is the reduction-quality comparison of Section 4.2: reductions
// are run for the AMD-LLPC, spirv-opt, spirv-opt-old and SwiftShader targets
// (those not requiring a GPU in the paper), and the quality measure is the
// instruction-count delta between the original module and the reduced
// variant.
type RQ2Result struct {
	FuzzDeltas []int // per reduction, spirv-fuzz
	GlslDeltas []int // per reduction, glsl-fuzz
	// Unreduced deltas, to show both tools start from large variants.
	FuzzUnreduced       []int
	GlslUnreduced       []int
	MedianFuzz          float64
	MedianGlsl          float64
	MedianFuzzUnreduced float64
	MedianGlslUnreduced float64
}

// rq2Targets are the targets used for the reduction experiments.
var rq2Targets = map[string]bool{
	"AMD-LLPC": true, "spirv-opt": true, "spirv-opt-old": true, "SwiftShader": true,
}

// RQ2 reduces the crash-bug outcomes of both tools and compares delta sizes.
// Reductions run on the campaigns' shared engine: ddmin probes are evaluated
// in parallel and memoized, so outcomes of the same signature — whose
// reductions revisit many identical intermediate variants — get cheaper as
// the experiment proceeds.
func RQ2(c *Campaigns) *RQ2Result {
	res := &RQ2Result{}
	capPer := c.Config.withDefaults().CapPerSignature
	eng := c.engine()

	perSig := map[string]int{}
	for _, o := range c.Fuzz.BugOutcomes {
		if !rq2Targets[o.Target] || o.Signature == target.MiscompilationSignature {
			continue
		}
		key := o.Target + "|" + o.Signature
		if perSig[key] >= capPer {
			continue
		}
		perSig[key]++
		tg := target.ByName(o.Target)
		interesting := reduce.ForOutcomeOn(eng, tg, o.Original, o.Inputs, o.Signature)
		r := reduce.ReduceParallelReplay(o.Original, o.Inputs, o.Transformations, interesting, eng.Workers(), c.replayEngine())
		res.FuzzDeltas = append(res.FuzzDeltas, r.Delta)
		res.FuzzUnreduced = append(res.FuzzUnreduced, o.Variant.InstructionCount()-o.Original.InstructionCount())
	}

	perSig = map[string]int{}
	for _, o := range c.Glsl.BugOutcomes {
		if !rq2Targets[o.Target] || o.Signature == target.MiscompilationSignature {
			continue
		}
		key := o.Target + "|" + o.Signature
		if perSig[key] >= capPer {
			continue
		}
		perSig[key]++
		tg := target.ByName(o.Target)
		check := reduce.CrashInterestingnessOn(eng, tg, o.Inputs, o.Signature)
		// glsl-fuzz never modifies inputs, so adapt the two-argument test.
		_, variant := glslfuzz.Reduce(o.Original, o.Inputs, o.Instances,
			func(m *spirv.Module) bool { return check(m, o.Inputs) })
		res.GlslDeltas = append(res.GlslDeltas, variant.InstructionCount()-o.Original.InstructionCount())
		res.GlslUnreduced = append(res.GlslUnreduced, o.Variant.InstructionCount()-o.Original.InstructionCount())
	}

	res.MedianFuzz = stats.MedianInts(res.FuzzDeltas)
	res.MedianGlsl = stats.MedianInts(res.GlslDeltas)
	res.MedianFuzzUnreduced = stats.MedianInts(res.FuzzUnreduced)
	res.MedianGlslUnreduced = stats.MedianInts(res.GlslUnreduced)
	return res
}

// RenderRQ2 formats the RQ2 findings.
func RenderRQ2(r *RQ2Result) string {
	var sb strings.Builder
	sb.WriteString("RQ2: reduction quality (instruction-count delta, original vs reduced variant)\n")
	fmt.Fprintf(&sb, "  spirv-fuzz: %4d reductions, median delta %6.1f (unreduced median %6.1f)\n",
		len(r.FuzzDeltas), r.MedianFuzz, r.MedianFuzzUnreduced)
	fmt.Fprintf(&sb, "  glsl-fuzz : %4d reductions, median delta %6.1f (unreduced median %6.1f)\n",
		len(r.GlslDeltas), r.MedianGlsl, r.MedianGlslUnreduced)
	fmt.Fprintf(&sb, "  (paper: medians 8 vs 29, unreduced in the thousands)\n")
	return sb.String()
}
