package experiments

import (
	"fmt"
	"path/filepath"
	"strings"

	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/reduce"
	"spirvfuzz/internal/target"
)

// WildReport summarises a Section 5-style external-testing session: one
// reduced, exported bug report per distinct signature found by spirv-fuzz,
// broken down by bug class as the paper reports its 74 issues
// (miscompilations, crashes/internal errors, invalid-SPIR-V emissions).
type WildReport struct {
	Reports         int
	Miscompilations int
	Crashes         int
	InvalidEmits    int
	Dirs            []string
}

// ExportWildReports reduces the first outcome of every distinct (target,
// signature) pair in the spirv-fuzz campaign and writes a bug-report bundle
// for each under dir/<target>/<n>/.
func ExportWildReports(c *Campaigns, dir string) (*WildReport, error) {
	rep := &WildReport{}
	seen := map[string]bool{}
	perTarget := map[string]int{}
	eng := c.engine()
	for _, o := range c.Fuzz.BugOutcomes {
		key := o.Target + "|" + o.Signature
		if seen[key] {
			continue
		}
		seen[key] = true
		tg := target.ByName(o.Target)
		interesting := reduce.ForOutcomeOn(eng, tg, o.Original, o.Inputs, o.Signature)
		r := reduce.ReduceParallelReplay(o.Original, o.Inputs, o.Transformations, interesting, eng.Workers(), c.replayEngine())
		perTarget[o.Target]++
		out := filepath.Join(dir, o.Target, fmt.Sprintf("bug%02d", perTarget[o.Target]))
		if err := harness.ExportBugReport(out, o, r); err != nil {
			return nil, err
		}
		rep.Dirs = append(rep.Dirs, out)
		rep.Reports++
		switch {
		case o.Signature == target.MiscompilationSignature:
			rep.Miscompilations++
		case strings.Contains(o.Signature, "invalid SPIR-V"):
			rep.InvalidEmits++
		default:
			rep.Crashes++
		}
	}
	return rep, nil
}

// RenderWild formats the session summary, mirroring the Section 5 breakdown.
func RenderWild(r *WildReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 5 (in the wild): %d distinct issues exported as bug-report bundles\n", r.Reports)
	fmt.Fprintf(&sb, "  %d miscompilations, %d crashes/internal errors, %d invalid-SPIR-V emissions\n",
		r.Miscompilations, r.Crashes, r.InvalidEmits)
	fmt.Fprintf(&sb, "  (paper: 74 issues — 14 miscompilations, 49 crashes, 7 invalid emissions, 3 validator false rejections, 1 spec issue)\n")
	return sb.String()
}
