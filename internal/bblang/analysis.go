package bblang

// DefinitelyAssigned computes, for every (block, instruction offset) point,
// the set of variables guaranteed to be assigned on every path from the
// entry to that point (input variables are assigned from the start). The
// AddLoad transformation uses this to establish that reading a variable at
// an arbitrary program point cannot fault.
//
// The result maps a block name to a slice of length len(instrs)+1: entry[i]
// is the set holding immediately before instruction i, and entry[len] the
// set at the terminator.
func DefinitelyAssigned(p *Program, input Input) map[string][]map[string]bool {
	// Forward must-analysis: in(b) = ∩ out(preds), with the entry seeded by
	// the input variables. Unreachable blocks converge to the universe; they
	// are dead, so any answer is sound there, but we keep the fixpoint exact
	// by starting unvisited blocks at ⊤ (nil sentinel).
	preds := make(map[string][]string)
	for _, b := range p.Blocks {
		for _, s := range b.Successors() {
			preds[s] = append(preds[s], b.Name)
		}
	}
	in := make(map[string]map[string]bool)  // ⊤ when absent
	out := make(map[string]map[string]bool) // ⊤ when absent
	seed := make(map[string]bool, len(input))
	for k := range input {
		seed[k] = true
	}
	in[p.Entry] = seed

	transfer := func(b *Block, start map[string]bool) map[string]bool {
		cur := copySet(start)
		for _, instr := range b.Instrs {
			if instr.Kind != Print && instr.Dst != "" {
				cur[instr.Dst] = true
			}
		}
		return cur
	}

	changed := true
	for changed {
		changed = false
		for _, b := range p.Blocks {
			var newIn map[string]bool
			if b.Name == p.Entry {
				newIn = copySet(seed)
			} else {
				first := true
				for _, pr := range preds[b.Name] {
					o, ok := out[pr]
					if !ok {
						continue // predecessor still ⊤: contributes nothing to ∩ yet
					}
					if first {
						newIn = copySet(o)
						first = false
					} else {
						newIn = intersect(newIn, o)
					}
				}
				if first {
					continue // all predecessors ⊤ (or no predecessors): stay ⊤
				}
			}
			if prev, ok := in[b.Name]; !ok || !sameSet(prev, newIn) {
				in[b.Name] = newIn
				changed = true
			}
			newOut := transfer(b, in[b.Name])
			if prev, ok := out[b.Name]; !ok || !sameSet(prev, newOut) {
				out[b.Name] = newOut
				changed = true
			}
		}
	}

	result := make(map[string][]map[string]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		points := make([]map[string]bool, len(b.Instrs)+1)
		start, ok := in[b.Name]
		if !ok {
			// Unreachable block: every variable in the program is "definitely
			// assigned" vacuously; use the full variable set plus inputs.
			start = p.Variables()
			for k := range input {
				start[k] = true
			}
		}
		cur := copySet(start)
		points[0] = copySet(cur)
		for i, instr := range b.Instrs {
			if instr.Kind != Print && instr.Dst != "" {
				cur[instr.Dst] = true
			}
			points[i+1] = copySet(cur)
		}
		result[b.Name] = points
	}
	return result
}

func copySet(s map[string]bool) map[string]bool {
	t := make(map[string]bool, len(s))
	for k := range s {
		t[k] = true
	}
	return t
}

func intersect(a, b map[string]bool) map[string]bool {
	t := make(map[string]bool)
	for k := range a {
		if b[k] {
			t[k] = true
		}
	}
	return t
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
