package bblang_test

import (
	"math/rand"
	"reflect"
	"testing"

	"spirvfuzz/internal/bblang"
	"spirvfuzz/internal/core"
)

// checkEquivalent asserts that applying ts to a fresh Figure 4 context
// preserves the printed output after every single transformation.
func checkEquivalent(t *testing.T, ts []bblang.Transformation) *bblang.Context {
	t.Helper()
	c := figure4Ctx()
	want := mustRun(t, c)
	for i, tr := range ts {
		if !tr.Precondition(c) {
			t.Fatalf("T%d (%s): precondition does not hold", i+1, tr.Type())
		}
		tr.Apply(c)
		got := mustRun(t, c)
		if !bblang.OutputsEqual(got, want) {
			t.Fatalf("after T%d (%s): output %v, want %v\n%s", i+1, tr.Type(), got, want, c.Prog)
		}
	}
	return c
}

func TestFigure4SequencePreservesOutput(t *testing.T) {
	c := checkEquivalent(t, bblang.Figure4Sequence())

	// Structural checks against the final program of Figure 4.
	p := c.Prog
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (a, c, b)\n%s", len(p.Blocks), p)
	}
	a, b, cBlk := p.Block("a"), p.Block("b"), p.Block("c")
	if a == nil || b == nil || cBlk == nil {
		t.Fatalf("missing blocks:\n%s", p)
	}
	// a: s := i + j; u := k  — T5 rewrote u := true into u := k.
	if got := a.Instrs[1].String(); got != "u := k" {
		t.Errorf("a[1] = %q, want \"u := k\"", got)
	}
	if a.CondVar != "u" || a.True != "b" || a.False != "c" {
		t.Errorf("a terminator = %s ? %s : %s", a.CondVar, a.True, a.False)
	}
	// c: s := i — the store added by T3 into the dead block.
	if got := cBlk.Instrs[0].String(); got != "s := i" {
		t.Errorf("c[0] = %q, want \"s := i\"", got)
	}
	// b: v := s; t := s + s; print(t) — the load added by T4.
	if got := b.Instrs[0].String(); got != "v := s" {
		t.Errorf("b[0] = %q, want \"v := s\"", got)
	}
	if !c.Facts.DeadBlocks["c"] {
		t.Error("fact \"c is dead\" not recorded")
	}
}

func TestSubsequenceSkipsDependents(t *testing.T) {
	// Section 2.1: applying T1,T3,T4,T5 leads to only T1 and T4 applying —
	// T3 needs block c (from T2), T5 needs the u := true assignment.
	ts := bblang.Figure4Sequence()
	c := figure4Ctx()
	applied := core.ApplySubsequence(c, ts, []int{0, 2, 3, 4})
	if !reflect.DeepEqual(applied, []int{0, 3}) {
		t.Fatalf("applied = %v, want [0 3] (T1 and T4)", applied)
	}
	out := mustRun(t, c)
	if !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("output = %v", out)
	}
}

func TestFigure5Reduction(t *testing.T) {
	// Reduce T1..T5 against the Figure 5 bug; the 1-minimal subsequence is
	// T1, T2, T5 (indices 0, 1, 4).
	ts := bblang.Figure4Sequence()
	interesting := func(keep []int) bool {
		c := figure4Ctx()
		core.ApplySubsequence(c, ts, keep)
		return bblang.Figure5Bug(c.Prog)
	}
	got, stats := core.Reduce(len(ts), interesting)
	if !reflect.DeepEqual(got, []int{0, 1, 4}) {
		t.Fatalf("Reduce = %v, want [0 1 4] (T1, T2, T5)", got)
	}
	if stats.Final != 3 {
		t.Fatalf("stats = %+v", stats)
	}

	// The reduced variant is the program P3 of Figure 5: three blocks, no
	// store in c, no load in b.
	c := figure4Ctx()
	core.ApplySubsequence(c, ts, got)
	p := c.Prog
	if len(p.Block("c").Instrs) != 0 {
		t.Errorf("dead block c should be empty in P3:\n%s", p)
	}
	if got := p.Block("b").Instrs[0].String(); got != "t := s + s" {
		t.Errorf("b[0] = %q, want \"t := s + s\"", got)
	}
	out := mustRun(t, c)
	if !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("reduced variant output = %v", out)
	}
}

func TestSplitBlockPreconditions(t *testing.T) {
	c := figure4Ctx()
	cases := []struct {
		name string
		tr   bblang.SplitBlock
		ok   bool
	}{
		{"valid", bblang.SplitBlock{Block: "a", Offset: 1, Fresh: "b"}, true},
		{"offset at end", bblang.SplitBlock{Block: "a", Offset: 3, Fresh: "b"}, true},
		{"offset beyond end", bblang.SplitBlock{Block: "a", Offset: 4, Fresh: "b"}, false},
		{"negative offset", bblang.SplitBlock{Block: "a", Offset: -1, Fresh: "b"}, false},
		{"missing block", bblang.SplitBlock{Block: "zz", Offset: 0, Fresh: "b"}, false},
		{"non-fresh name", bblang.SplitBlock{Block: "a", Offset: 1, Fresh: "a"}, false},
		{"empty fresh name", bblang.SplitBlock{Block: "a", Offset: 1, Fresh: ""}, false},
	}
	for _, tc := range cases {
		if got := tc.tr.Precondition(c); got != tc.ok {
			t.Errorf("%s: Precondition = %t, want %t", tc.name, got, tc.ok)
		}
	}
}

func TestSplitBlockPropagatesDeadFact(t *testing.T) {
	c := figure4Ctx()
	seq := []bblang.Transformation{
		bblang.SplitBlock{Block: "a", Offset: 1, Fresh: "b"},
		bblang.AddDeadBlock{Block: "a", FreshBlock: "c", FreshVar: "u"},
		bblang.AddStore{Block: "c", Offset: 0, Dst: "s", Src: "i"},
		bblang.SplitBlock{Block: "c", Offset: 1, Fresh: "c2"},
	}
	for _, tr := range seq {
		if err := core.CheckedApply[*bblang.Context](c, tr); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Facts.DeadBlocks["c2"] {
		t.Error("splitting a dead block must mark the tail dead")
	}
	out := mustRun(t, c)
	if !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("output = %v", out)
	}
}

func TestAddDeadBlockPreconditions(t *testing.T) {
	c := figure4Ctx()
	// Original block a halts: no single successor, so AddDeadBlock fails.
	tr := bblang.AddDeadBlock{Block: "a", FreshBlock: "c", FreshVar: "u"}
	if tr.Precondition(c) {
		t.Fatal("AddDeadBlock should require a single-successor block")
	}
	bblang.SplitBlock{Block: "a", Offset: 1, Fresh: "b"}.Apply(c)
	if !tr.Precondition(c) {
		t.Fatal("AddDeadBlock applicable after split")
	}
	if (bblang.AddDeadBlock{Block: "a", FreshBlock: "x", FreshVar: "x"}).Precondition(c) {
		t.Error("fresh block and var must be distinct")
	}
	if (bblang.AddDeadBlock{Block: "a", FreshBlock: "b", FreshVar: "u"}).Precondition(c) {
		t.Error("block name must be fresh")
	}
	if (bblang.AddDeadBlock{Block: "a", FreshBlock: "c", FreshVar: "s"}).Precondition(c) {
		t.Error("variable name must be fresh")
	}
	if (bblang.AddDeadBlock{Block: "a", FreshBlock: "c", FreshVar: "i"}).Precondition(c) {
		t.Error("input names are not fresh")
	}
}

func TestAddLoadRequiresDefiniteAssignment(t *testing.T) {
	c := figure4Ctx()
	// Loading t at a[0] would read an undefined variable: rejected.
	if (bblang.AddLoad{Block: "a", Offset: 0, Fresh: "v", Src: "t"}).Precondition(c) {
		t.Error("load of not-yet-assigned variable must be rejected")
	}
	// Loading input i at a[0] is fine.
	tr := bblang.AddLoad{Block: "a", Offset: 0, Fresh: "v", Src: "i"}
	if !tr.Precondition(c) {
		t.Fatal("load of input variable should be accepted")
	}
	tr.Apply(c)
	out := mustRun(t, c)
	if !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("output = %v", out)
	}
}

func TestAddStoreRequiresDeadFact(t *testing.T) {
	c := figure4Ctx()
	if (bblang.AddStore{Block: "a", Offset: 0, Dst: "s", Src: "i"}).Precondition(c) {
		t.Error("store into a live block must be rejected")
	}
	bblang.SplitBlock{Block: "a", Offset: 1, Fresh: "b"}.Apply(c)
	bblang.AddDeadBlock{Block: "a", FreshBlock: "c", FreshVar: "u"}.Apply(c)
	st := bblang.AddStore{Block: "c", Offset: 0, Dst: "s", Src: "i"}
	if !st.Precondition(c) {
		t.Fatal("store into dead block should be accepted")
	}
	if (bblang.AddStore{Block: "c", Offset: 0, Dst: "nosuch", Src: "i"}).Precondition(c) {
		t.Error("destination variable must exist")
	}
	if (bblang.AddStore{Block: "c", Offset: 5, Dst: "s", Src: "i"}).Precondition(c) {
		t.Error("offset beyond block must be rejected")
	}
}

func TestChangeRHSPreconditions(t *testing.T) {
	c := figure4Ctx()
	bblang.SplitBlock{Block: "a", Offset: 1, Fresh: "b"}.Apply(c)
	bblang.AddDeadBlock{Block: "a", FreshBlock: "c", FreshVar: "u"}.Apply(c)
	// a[1] is u := true; input k is true: applicable.
	tr := bblang.ChangeRHS{Block: "a", Offset: 1, NewVar: "k"}
	if !tr.Precondition(c) {
		t.Fatal("ChangeRHS(a,1,k) should hold")
	}
	// i = 1 is an int, not true: not equal.
	if (bblang.ChangeRHS{Block: "a", Offset: 1, NewVar: "i"}).Precondition(c) {
		t.Error("value mismatch must be rejected")
	}
	// a[0] is s := i + j, not a plain assignment.
	if (bblang.ChangeRHS{Block: "a", Offset: 0, NewVar: "k"}).Precondition(c) {
		t.Error("non-assignment instruction must be rejected")
	}
	tr.Apply(c)
	if got := c.Prog.Block("a").Instrs[1].String(); got != "u := k" {
		t.Fatalf("a[1] = %q", got)
	}
	out := mustRun(t, c)
	if !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("output = %v", out)
	}
}

func TestChangeRHSRejectsReassignedInput(t *testing.T) {
	// If the program assigns to k anywhere, the "guaranteed equal" condition
	// is conservatively rejected.
	p := bblang.Figure4Program()
	p.Blocks[0].Instrs = append(p.Blocks[0].Instrs,
		bblang.Instr{Kind: bblang.Assign, Dst: "k", A: bblang.LitBool(false)},
		bblang.Instr{Kind: bblang.Assign, Dst: "u", A: bblang.LitBool(true)},
	)
	c := bblang.NewContext(p, bblang.Figure4Input())
	if (bblang.ChangeRHS{Block: "a", Offset: 4, NewVar: "k"}).Precondition(c) {
		t.Error("reassigned input variable must be rejected")
	}
}

// TestRandomSequencesPreserveSemantics is the central invariant of the whole
// approach (Definition 2.4): any sequence of transformations whose
// preconditions hold preserves the program's output. It applies hundreds of
// randomly parameterised transformations to the Figure 4 program via
// ApplySequence and checks the output after the fact.
func TestRandomSequencesPreserveSemantics(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := figure4Ctx()
		want := mustRun(t, c)
		var applied int
		for step := 0; step < 120; step++ {
			tr := randomTransformation(rng, c, step)
			if tr.Precondition(c) {
				tr.Apply(c)
				applied++
			}
		}
		got, err := bblang.Execute(c.Prog, c.Input)
		if err != nil {
			t.Fatalf("seed %d: variant faults after %d transformations: %v\n%s", seed, applied, err, c.Prog)
		}
		if !bblang.OutputsEqual(got, want) {
			t.Fatalf("seed %d: output %v, want %v after %d transformations\n%s", seed, got, want, applied, c.Prog)
		}
		if applied == 0 {
			t.Fatalf("seed %d: no transformations applied", seed)
		}
	}
}

// randomTransformation builds a transformation with random parameters drawn
// from the current program. Parameters may be invalid; the precondition
// filters them, exactly as the fuzzer's probabilistic passes do.
func randomTransformation(rng *rand.Rand, c *bblang.Context, step int) bblang.Transformation {
	blocks := c.Prog.Blocks
	pick := func() *bblang.Block { return blocks[rng.Intn(len(blocks))] }
	freshB := func() string { return "fb" + itoa(step) }
	freshV := func() string { return "fv" + itoa(step) }
	varNames := []string{"s", "t", "i", "j", "k", "u"}
	anyVar := func() string { return varNames[rng.Intn(len(varNames))] }
	switch rng.Intn(5) {
	case 0:
		b := pick()
		return bblang.SplitBlock{Block: b.Name, Offset: rng.Intn(len(b.Instrs) + 1), Fresh: freshB()}
	case 1:
		return bblang.AddDeadBlock{Block: pick().Name, FreshBlock: freshB(), FreshVar: freshV()}
	case 2:
		b := pick()
		return bblang.AddLoad{Block: b.Name, Offset: rng.Intn(len(b.Instrs) + 1), Fresh: freshV(), Src: anyVar()}
	case 3:
		b := pick()
		return bblang.AddStore{Block: b.Name, Offset: rng.Intn(len(b.Instrs) + 1), Dst: anyVar(), Src: anyVar()}
	default:
		b := pick()
		off := 0
		if len(b.Instrs) > 0 {
			off = rng.Intn(len(b.Instrs))
		}
		return bblang.ChangeRHS{Block: b.Name, Offset: off, NewVar: []string{"i", "j", "k"}[rng.Intn(3)]}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
