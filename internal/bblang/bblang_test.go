package bblang_test

import (
	"strings"
	"testing"

	"spirvfuzz/internal/bblang"
)

func figure4Ctx() *bblang.Context {
	return bblang.NewContext(bblang.Figure4Program(), bblang.Figure4Input())
}

func mustRun(t *testing.T, c *bblang.Context) []bblang.Value {
	t.Helper()
	out, err := bblang.Execute(c.Prog, c.Input)
	if err != nil {
		t.Fatalf("Execute: %v\nprogram:\n%s", err, c.Prog)
	}
	return out
}

func TestFigure4OriginalPrintsSix(t *testing.T) {
	out := mustRun(t, figure4Ctx())
	if len(out) != 1 || !out[0].Equal(bblang.Int(6)) {
		t.Fatalf("output = %v, want [6]", out)
	}
}

func TestExecuteFaults(t *testing.T) {
	cases := []struct {
		name string
		prog *bblang.Program
		want string
	}{
		{
			"undefined variable",
			&bblang.Program{Entry: "a", Blocks: []*bblang.Block{{
				Name:   "a",
				Instrs: []bblang.Instr{{Kind: bblang.Print, A: bblang.V("nope")}},
			}}},
			"undefined variable",
		},
		{
			"missing entry",
			&bblang.Program{Entry: "zzz"},
			"entry block",
		},
		{
			"branch to missing block",
			&bblang.Program{Entry: "a", Blocks: []*bblang.Block{{Name: "a", Succ: "gone"}}},
			"missing block",
		},
		{
			"branch on non-boolean",
			&bblang.Program{Entry: "a", Blocks: []*bblang.Block{{
				Name:    "a",
				Instrs:  []bblang.Instr{{Kind: bblang.Assign, Dst: "x", A: bblang.LitInt(1)}},
				CondVar: "x", True: "a", False: "a",
			}}},
			"non-boolean",
		},
		{
			"boolean addition",
			&bblang.Program{Entry: "a", Blocks: []*bblang.Block{{
				Name:   "a",
				Instrs: []bblang.Instr{{Kind: bblang.Add, Dst: "x", A: bblang.LitBool(true), B: bblang.LitInt(1)}},
			}}},
			"boolean operands",
		},
		{
			"infinite loop hits step limit",
			&bblang.Program{Entry: "a", Blocks: []*bblang.Block{{Name: "a", Succ: "a"}}},
			"step limit",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := bblang.Execute(tc.prog, bblang.Input{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestProgramStringAndClone(t *testing.T) {
	p := bblang.Figure4Program()
	s := p.String()
	for _, want := range []string{"a:", "s := i + j", "print(t)", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
	q := p.Clone()
	q.Blocks[0].Instrs[0].Dst = "zz"
	q.Blocks[0].Name = "changed"
	if p.Blocks[0].Instrs[0].Dst != "s" || p.Blocks[0].Name != "a" {
		t.Fatal("Clone is not deep")
	}
}

func TestVariables(t *testing.T) {
	p := bblang.Figure4Program()
	vars := p.Variables()
	for _, v := range []string{"s", "t", "i", "j"} {
		if !vars[v] {
			t.Errorf("Variables missing %q", v)
		}
	}
	if vars["k"] {
		t.Error("k is input-only and should not appear in program variables")
	}
}

func TestDefinitelyAssigned(t *testing.T) {
	// a: x := 1;  br c ? b : d   (c from input)
	// b: y := 2;  br e
	// d: br e
	// e: print(x)
	p := &bblang.Program{Entry: "a", Blocks: []*bblang.Block{
		{Name: "a", Instrs: []bblang.Instr{{Kind: bblang.Assign, Dst: "x", A: bblang.LitInt(1)}}, CondVar: "c", True: "b", False: "d"},
		{Name: "b", Instrs: []bblang.Instr{{Kind: bblang.Assign, Dst: "y", A: bblang.LitInt(2)}}, Succ: "e"},
		{Name: "d", Succ: "e"},
		{Name: "e", Instrs: []bblang.Instr{{Kind: bblang.Print, A: bblang.V("x")}}},
	}}
	in := bblang.Input{"c": bblang.Bool(true)}
	da := bblang.DefinitelyAssigned(p, in)
	if !da["a"][0]["c"] {
		t.Error("input variable c should be assigned at entry")
	}
	if da["a"][0]["x"] {
		t.Error("x not yet assigned before a[0]")
	}
	if !da["a"][1]["x"] {
		t.Error("x assigned after a[0]")
	}
	if !da["e"][0]["x"] {
		t.Error("x definitely assigned at e (assigned in a, dominates e)")
	}
	if da["e"][0]["y"] {
		t.Error("y only assigned on the b path; not definite at e")
	}
	if !da["b"][1]["y"] {
		t.Error("y assigned after b[0]")
	}
}

func TestDefinitelyAssignedUnreachableBlock(t *testing.T) {
	p := &bblang.Program{Entry: "a", Blocks: []*bblang.Block{
		{Name: "a", Instrs: []bblang.Instr{{Kind: bblang.Assign, Dst: "x", A: bblang.LitInt(1)}}},
		{Name: "orphan", Instrs: []bblang.Instr{{Kind: bblang.Print, A: bblang.V("x")}}},
	}}
	da := bblang.DefinitelyAssigned(p, bblang.Input{})
	// Unreachable blocks are vacuously fine: x counts as assigned there.
	if !da["orphan"][0]["x"] {
		t.Error("unreachable block should treat all program variables as assigned")
	}
}

func TestDefinitelyAssignedLoop(t *testing.T) {
	// a: i0 := 0; br b
	// b: br c ? b : d    (c input; loop)
	// d: print(i0)
	p := &bblang.Program{Entry: "a", Blocks: []*bblang.Block{
		{Name: "a", Instrs: []bblang.Instr{{Kind: bblang.Assign, Dst: "i0", A: bblang.LitInt(0)}}, Succ: "b"},
		{Name: "b", CondVar: "c", True: "b", False: "d"},
		{Name: "d", Instrs: []bblang.Instr{{Kind: bblang.Print, A: bblang.V("i0")}}},
	}}
	da := bblang.DefinitelyAssigned(p, bblang.Input{"c": bblang.Bool(false)})
	if !da["b"][0]["i0"] {
		t.Error("i0 definite at loop header: assigned before entry on all paths")
	}
	if !da["d"][0]["i0"] {
		t.Error("i0 definite at loop exit")
	}
}
