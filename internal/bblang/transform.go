package bblang

import "spirvfuzz/internal/core"

// Transformation is the basic-blocks instantiation of the generic engine.
type Transformation = core.Transformation[*Context]

// Template type identifiers (Table 1).
const (
	TypeSplitBlock   = "SplitBlock"
	TypeAddDeadBlock = "AddDeadBlock"
	TypeAddLoad      = "AddLoad"
	TypeAddStore     = "AddStore"
	TypeChangeRHS    = "ChangeRHS"
)

// freshBlock reports whether name is unused as a block name.
func freshBlock(c *Context, name string) bool {
	return name != "" && c.Prog.Block(name) == nil
}

// freshVar reports whether name is unused as a variable (in the program or
// the input).
func freshVar(c *Context, name string) bool {
	if name == "" {
		return false
	}
	if _, ok := c.Input[name]; ok {
		return false
	}
	return !c.Prog.Variables()[name]
}

// SplitBlock splits block Block after Offset instructions: instructions
// Block[Offset:] are placed in a new block Fresh, Fresh inherits Block's
// successors, and Block branches to Fresh (Table 1).
//
// This template deliberately identifies the split point by (block, offset),
// reproducing the independence flaw discussed in Section 2.3: two splits of
// what was originally one block cannot be reduced independently.
type SplitBlock struct {
	Block  string
	Offset int
	Fresh  string
}

// Type returns the template identifier.
func (t SplitBlock) Type() string { return TypeSplitBlock }

// Precondition: Block exists with at least Offset instructions, Fresh is a
// fresh block identifier.
func (t SplitBlock) Precondition(c *Context) bool {
	b := c.Prog.Block(t.Block)
	return b != nil && t.Offset >= 0 && len(b.Instrs) >= t.Offset && freshBlock(c, t.Fresh)
}

// Apply performs the split.
func (t SplitBlock) Apply(c *Context) {
	b := c.Prog.Block(t.Block)
	nb := &Block{
		Name:    t.Fresh,
		Instrs:  append([]Instr(nil), b.Instrs[t.Offset:]...),
		Succ:    b.Succ,
		CondVar: b.CondVar,
		True:    b.True,
		False:   b.False,
	}
	b.Instrs = b.Instrs[:t.Offset:t.Offset]
	b.Succ, b.CondVar, b.True, b.False = t.Fresh, "", "", ""
	// Insert the new block immediately after the split block.
	for i, blk := range c.Prog.Blocks {
		if blk == b {
			rest := append([]*Block{nb}, c.Prog.Blocks[i+1:]...)
			c.Prog.Blocks = append(c.Prog.Blocks[:i+1:i+1], rest...)
			break
		}
	}
	// If the split block was dead, the carved-off tail is dead too.
	if c.Facts.DeadBlocks[t.Block] {
		c.Facts.DeadBlocks[t.Fresh] = true
	}
}

// AddDeadBlock introduces a dynamically-unreachable block (Table 1). Block
// must have a single successor c; a new block FreshBlock branching to c is
// added, FreshVar := true is appended to Block, and Block branches to c when
// FreshVar holds and to FreshBlock otherwise. The fact "FreshBlock is dead"
// is recorded.
type AddDeadBlock struct {
	Block      string
	FreshBlock string
	FreshVar   string
}

// Type returns the template identifier.
func (t AddDeadBlock) Type() string { return TypeAddDeadBlock }

// Precondition: Block exists with a single unconditional successor;
// FreshBlock and FreshVar are fresh and distinct.
func (t AddDeadBlock) Precondition(c *Context) bool {
	b := c.Prog.Block(t.Block)
	if b == nil || !b.HasSingleSuccessor() {
		return false
	}
	return freshBlock(c, t.FreshBlock) && freshVar(c, t.FreshVar) && t.FreshBlock != t.FreshVar
}

// Apply performs the insertion.
func (t AddDeadBlock) Apply(c *Context) {
	b := c.Prog.Block(t.Block)
	succ := b.Succ
	nb := &Block{Name: t.FreshBlock, Succ: succ}
	b.Instrs = append(b.Instrs, Instr{Kind: Assign, Dst: t.FreshVar, A: LitBool(true)})
	b.Succ, b.CondVar, b.True, b.False = "", t.FreshVar, succ, t.FreshBlock
	for i, blk := range c.Prog.Blocks {
		if blk == b {
			rest := append([]*Block{nb}, c.Prog.Blocks[i+1:]...)
			c.Prog.Blocks = append(c.Prog.Blocks[:i+1:i+1], rest...)
			break
		}
	}
	c.Facts.DeadBlocks[t.FreshBlock] = true
}

// AddLoad inserts Fresh := Src at index Offset of Block (Table 1). Loading
// an existing variable into a fresh one is safe at any point where Src is
// definitely assigned; the precondition checks this with a must-analysis so
// the inserted read can never fault at runtime.
type AddLoad struct {
	Block  string
	Offset int
	Fresh  string
	Src    string
}

// Type returns the template identifier.
func (t AddLoad) Type() string { return TypeAddLoad }

// Precondition: Block exists with at least Offset instructions, Fresh is a
// fresh variable, and Src is definitely assigned at (Block, Offset).
func (t AddLoad) Precondition(c *Context) bool {
	b := c.Prog.Block(t.Block)
	if b == nil || t.Offset < 0 || len(b.Instrs) < t.Offset || !freshVar(c, t.Fresh) {
		return false
	}
	points := DefinitelyAssigned(c.Prog, c.Input)[t.Block]
	return points[t.Offset][t.Src]
}

// Apply inserts the load.
func (t AddLoad) Apply(c *Context) {
	b := c.Prog.Block(t.Block)
	in := Instr{Kind: Assign, Dst: t.Fresh, A: V(t.Src)}
	b.Instrs = append(b.Instrs[:t.Offset:t.Offset], append([]Instr{in}, b.Instrs[t.Offset:]...)...)
}

// AddStore inserts Dst := Src at index Offset of Block (Table 1). A store to
// an existing variable would in general change the program's semantics, so
// the precondition requires the fact "Block is dead".
type AddStore struct {
	Block  string
	Offset int
	Dst    string
	Src    string
}

// Type returns the template identifier.
func (t AddStore) Type() string { return TypeAddStore }

// Precondition: the fact "Block is dead" holds, Block has at least Offset
// instructions, and Dst and Src are existing variables.
func (t AddStore) Precondition(c *Context) bool {
	if !c.Facts.DeadBlocks[t.Block] {
		return false
	}
	b := c.Prog.Block(t.Block)
	if b == nil || t.Offset < 0 || len(b.Instrs) < t.Offset {
		return false
	}
	exists := func(v string) bool {
		if _, ok := c.Input[v]; ok {
			return true
		}
		return c.Prog.Variables()[v]
	}
	return exists(t.Dst) && exists(t.Src)
}

// Apply inserts the store.
func (t AddStore) Apply(c *Context) {
	b := c.Prog.Block(t.Block)
	in := Instr{Kind: Assign, Dst: t.Dst, A: V(t.Src)}
	b.Instrs = append(b.Instrs[:t.Offset:t.Offset], append([]Instr{in}, b.Instrs[t.Offset:]...)...)
}

// ChangeRHS replaces the right-hand side z of an assignment y := z with a
// variable guaranteed to hold the same value at that point (Table 1). The
// equality guarantee implemented here is the one Figure 4's T5 exploits: z
// is a literal and NewVar is an input variable whose (fixed, known) input
// value equals that literal, with no intervening reassignment of NewVar.
type ChangeRHS struct {
	Block  string
	Offset int
	NewVar string
}

// Type returns the template identifier.
func (t ChangeRHS) Type() string { return TypeChangeRHS }

// Precondition: Block[Offset] has the form y := literal, NewVar is an input
// variable never reassigned anywhere in the program, and its input value
// equals the literal.
func (t ChangeRHS) Precondition(c *Context) bool {
	b := c.Prog.Block(t.Block)
	if b == nil || t.Offset < 0 || t.Offset >= len(b.Instrs) {
		return false
	}
	in := b.Instrs[t.Offset]
	if in.Kind != Assign || in.A.Var != "" {
		return false
	}
	val, ok := c.Input[t.NewVar]
	if !ok || !val.Equal(in.A.Lit) {
		return false
	}
	// NewVar must still hold its input value at the use: conservatively
	// require that the program never assigns to it.
	for _, blk := range c.Prog.Blocks {
		for _, instr := range blk.Instrs {
			if instr.Kind != Print && instr.Dst == t.NewVar {
				return false
			}
		}
	}
	return true
}

// Apply replaces the literal with the variable.
func (t ChangeRHS) Apply(c *Context) {
	b := c.Prog.Block(t.Block)
	b.Instrs[t.Offset].A = V(t.NewVar)
}

var (
	_ Transformation = SplitBlock{}
	_ Transformation = AddDeadBlock{}
	_ Transformation = AddLoad{}
	_ Transformation = AddStore{}
	_ Transformation = ChangeRHS{}
)
