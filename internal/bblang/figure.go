package bblang

// This file reconstructs the running example of Section 2.1: the program of
// Figure 4, its input, and the transformation sequence T1..T5. Tests,
// examples and benchmarks replay these to reproduce Figures 4 and 5.

// Figure4Program returns the original program of Figure 4: a single block
//
//	a: s := i + j; t := s + s; print(t)
//
// which prints 6 on the input of Figure4Input.
func Figure4Program() *Program {
	return &Program{
		Entry: "a",
		Blocks: []*Block{{
			Name: "a",
			Instrs: []Instr{
				{Kind: Add, Dst: "s", A: V("i"), B: V("j")},
				{Kind: Add, Dst: "t", A: V("s"), B: V("s")},
				{Kind: Print, A: V("t")},
			},
		}},
	}
}

// Figure4Input returns the input of Figure 4: i = 1, j = 2, k = true.
func Figure4Input() Input {
	return Input{"i": Int(1), "j": Int(2), "k": Bool(true)}
}

// Figure4Sequence returns the transformation sequence T1..T5 of Figure 4:
//
//	T1 = SplitBlock(a, 1, b)
//	T2 = AddDeadBlock(a, c, u)
//	T3 = AddStore(c, 0, s, i)
//	T4 = AddLoad(b, 0, v, s)
//	T5 = ChangeRHS(a, 1, k)
func Figure4Sequence() []Transformation {
	return []Transformation{
		SplitBlock{Block: "a", Offset: 1, Fresh: "b"},
		AddDeadBlock{Block: "a", FreshBlock: "c", FreshVar: "u"},
		AddStore{Block: "c", Offset: 0, Dst: "s", Src: "i"},
		AddLoad{Block: "b", Offset: 0, Fresh: "v", Src: "s"},
		ChangeRHS{Block: "a", Offset: 1, NewVar: "k"},
	}
}

// Figure5Bug is the hypothetical compiler bug of Figure 5: it suffices to
// add a dead block and obfuscate the fact that it is dead. Concretely the
// bug triggers on any program containing a conditional branch whose
// condition variable is assigned from a *variable* (rather than a literal)
// within the branching block — the shape produced by AddDeadBlock followed
// by ChangeRHS. A "compiler" affected by this bug would be exercised through
// an Impl; for reduction experiments the trigger predicate is all that is
// needed.
func Figure5Bug(p *Program) bool {
	for _, b := range p.Blocks {
		if b.CondVar == "" {
			continue
		}
		for _, in := range b.Instrs {
			if in.Kind == Assign && in.Dst == b.CondVar && in.A.Var != "" {
				return true
			}
		}
	}
	return false
}
