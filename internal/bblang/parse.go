package bblang

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a basic-blocks program in the textual format produced by
// Program.String:
//
//	a:
//	  s := i + j
//	  t := s + s
//	  print(t)
//	  br u ? b : c        (conditional branch)
//	  br b                (unconditional branch)
//	  halt                (program end)
//
// The first block is the entry. Literals are integers or true/false;
// anything else is a variable name.
func Parse(text string) (*Program, error) {
	p := &Program{}
	var cur *Block
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("bblang: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			name := strings.TrimSuffix(line, ":")
			if name == "" {
				return nil, fail("empty block name")
			}
			if p.Block(name) != nil {
				return nil, fail("duplicate block %q", name)
			}
			cur = &Block{Name: name}
			p.Blocks = append(p.Blocks, cur)
			if p.Entry == "" {
				p.Entry = name
			}
			continue
		}
		if cur == nil {
			return nil, fail("statement before any block label")
		}
		switch {
		case line == "halt":
			// Terminators leave the zero-valued block shape.
		case strings.HasPrefix(line, "br "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "br "))
			if strings.Contains(rest, "?") {
				var cond, targets string
				parts := strings.SplitN(rest, "?", 2)
				cond, targets = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
				tb := strings.SplitN(targets, ":", 2)
				if len(tb) != 2 {
					return nil, fail("conditional branch needs 'br c ? t : f'")
				}
				cur.CondVar = cond
				cur.True = strings.TrimSpace(tb[0])
				cur.False = strings.TrimSpace(tb[1])
			} else {
				cur.Succ = rest
			}
		case strings.HasPrefix(line, "print(") && strings.HasSuffix(line, ")"):
			arg := strings.TrimSuffix(strings.TrimPrefix(line, "print("), ")")
			op, err := parseOperand(strings.TrimSpace(arg))
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Instrs = append(cur.Instrs, Instr{Kind: Print, A: op})
		case strings.Contains(line, ":="):
			parts := strings.SplitN(line, ":=", 2)
			dst := strings.TrimSpace(parts[0])
			rhs := strings.TrimSpace(parts[1])
			if dst == "" {
				return nil, fail("missing destination")
			}
			if strings.Contains(rhs, "+") {
				ab := strings.SplitN(rhs, "+", 2)
				a, err := parseOperand(strings.TrimSpace(ab[0]))
				if err != nil {
					return nil, fail("%v", err)
				}
				b, err := parseOperand(strings.TrimSpace(ab[1]))
				if err != nil {
					return nil, fail("%v", err)
				}
				cur.Instrs = append(cur.Instrs, Instr{Kind: Add, Dst: dst, A: a, B: b})
			} else {
				a, err := parseOperand(rhs)
				if err != nil {
					return nil, fail("%v", err)
				}
				cur.Instrs = append(cur.Instrs, Instr{Kind: Assign, Dst: dst, A: a})
			}
		default:
			return nil, fail("cannot parse %q", line)
		}
	}
	if len(p.Blocks) == 0 {
		return nil, fmt.Errorf("bblang: empty program")
	}
	return p, nil
}

func parseOperand(tok string) (Operand, error) {
	switch {
	case tok == "":
		return Operand{}, fmt.Errorf("empty operand")
	case tok == "true":
		return LitBool(true), nil
	case tok == "false":
		return LitBool(false), nil
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return LitInt(n), nil
	}
	for _, r := range tok {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return Operand{}, fmt.Errorf("bad operand %q", tok)
		}
	}
	return V(tok), nil
}
