package bblang_test

import (
	"strings"
	"testing"

	"spirvfuzz/internal/bblang"
	"spirvfuzz/internal/core"
)

func TestParseRoundTripFigure4(t *testing.T) {
	p := bblang.Figure4Program()
	text := p.String()
	back, err := bblang.Parse(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.String() != text {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", text, back.String())
	}
	out, err := bblang.Execute(back, bblang.Figure4Input())
	if err != nil || !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("parsed program output %v (%v)", out, err)
	}
}

func TestParseRoundTripTransformedPrograms(t *testing.T) {
	// The fully-transformed Figure 4 program (with conditional branches and
	// dead blocks) must round trip too.
	c := figure4Ctx()
	core.ApplySequence(c, bblang.Figure4Sequence())
	text := c.Prog.String()
	back, err := bblang.Parse(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.String() != text {
		t.Fatal("round trip unstable for transformed program")
	}
	out, err := bblang.Execute(back, bblang.Figure4Input())
	if err != nil || !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("output %v (%v)", out, err)
	}
}

func TestParseHandwritten(t *testing.T) {
	text := `
# Figure 4's P3, hand-written
a:
  s := i + j
  u := k
  br u ? b : c
c:
  br b
b:
  t := s + s
  print(t)
  halt
`
	p, err := bblang.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "a" || len(p.Blocks) != 3 {
		t.Fatalf("entry %q, %d blocks", p.Entry, len(p.Blocks))
	}
	out, err := bblang.Execute(p, bblang.Figure4Input())
	if err != nil || !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(6)}) {
		t.Fatalf("output %v (%v)", out, err)
	}
	if !bblang.Figure5Bug(p) {
		t.Fatal("hand-written P3 should trigger the Figure 5 bug predicate")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"empty", "", "empty program"},
		{"statement before block", "x := 1", "before any block"},
		{"duplicate block", "a:\na:", "duplicate block"},
		{"bad operand", "a:\n  x := @", "bad operand"},
		{"bad conditional", "a:\n  br c ? x", "conditional branch needs"},
		{"garbage", "a:\n  what is this", "cannot parse"},
		{"empty destination", "a:\n   := 1", "missing destination"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := bblang.Parse(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestParseLiterals(t *testing.T) {
	p, err := bblang.Parse("a:\n  x := -5\n  y := true\n  z := false\n  print(x)\n  halt")
	if err != nil {
		t.Fatal(err)
	}
	out, err := bblang.Execute(p, bblang.Input{})
	if err != nil || !bblang.OutputsEqual(out, []bblang.Value{bblang.Int(-5)}) {
		t.Fatalf("output %v (%v)", out, err)
	}
}
