// Package bblang implements the "basic blocks" language of Section 2.1 of
// the paper: a deliberately tiny language used to explain transformation-
// based testing. Every block contains instructions of the form x := y,
// x := y1 + y2 or print(y1), and ends either by halting, branching
// unconditionally to a single successor, or branching conditionally on a
// boolean variable.
//
// The package provides the language, a reference interpreter, and the five
// transformation templates of Table 1 (SplitBlock, AddDeadBlock, AddLoad,
// AddStore, ChangeRHS), instantiating the generic engine in package core.
// It exists both as a self-contained test bed for the engine and to
// reproduce Figures 4 and 5.
package bblang

import (
	"fmt"
	"strings"
)

// Value is a runtime value: an integer or a boolean.
type Value struct {
	IsBool bool
	B      bool
	N      int64
}

// Int returns an integer value.
func Int(n int64) Value { return Value{N: n} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{IsBool: true, B: b} }

// String renders the value as it appears in program listings.
func (v Value) String() string {
	if v.IsBool {
		return fmt.Sprintf("%t", v.B)
	}
	return fmt.Sprintf("%d", v.N)
}

// Equal reports whether two values are identical in kind and content.
func (v Value) Equal(w Value) bool { return v == w }

// Operand is either a variable reference or a literal.
type Operand struct {
	Var string // non-empty for a variable reference
	Lit Value  // used when Var is empty
}

// V returns a variable operand.
func V(name string) Operand { return Operand{Var: name} }

// L returns a literal operand.
func L(v Value) Operand { return Operand{Lit: v} }

// LitInt returns an integer literal operand.
func LitInt(n int64) Operand { return L(Int(n)) }

// LitBool returns a boolean literal operand.
func LitBool(b bool) Operand { return L(Bool(b)) }

// String renders the operand (variable name or literal).
func (o Operand) String() string {
	if o.Var != "" {
		return o.Var
	}
	return o.Lit.String()
}

// InstrKind discriminates the three instruction forms.
type InstrKind int

// The instruction forms of the basic blocks language.
const (
	Assign InstrKind = iota // Dst := A
	Add                     // Dst := A + B
	Print                   // print(A)
)

// Instr is a single instruction.
type Instr struct {
	Kind InstrKind
	Dst  string
	A, B Operand
}

// String renders the instruction as it appears in listings.
func (in Instr) String() string {
	switch in.Kind {
	case Assign:
		return fmt.Sprintf("%s := %s", in.Dst, in.A)
	case Add:
		return fmt.Sprintf("%s := %s + %s", in.Dst, in.A, in.B)
	case Print:
		return fmt.Sprintf("print(%s)", in.A)
	default:
		return "<invalid>"
	}
}

// Block is a basic block. Exactly one of the terminator shapes is active:
// if CondVar is non-empty the block branches to True when CondVar holds and
// to False otherwise; else if Succ is non-empty the block branches
// unconditionally to Succ; else the block halts the program.
type Block struct {
	Name    string
	Instrs  []Instr
	Succ    string
	CondVar string
	True    string
	False   string
}

// HasSingleSuccessor reports whether the block unconditionally branches to
// exactly one successor (the precondition shape AddDeadBlock requires).
func (b *Block) HasSingleSuccessor() bool { return b.CondVar == "" && b.Succ != "" }

// Successors returns the block's successor names in order.
func (b *Block) Successors() []string {
	if b.CondVar != "" {
		return []string{b.True, b.False}
	}
	if b.Succ != "" {
		return []string{b.Succ}
	}
	return nil
}

// Program is an ordered collection of blocks with a designated entry block.
type Program struct {
	Entry  string
	Blocks []*Block
}

// Block returns the named block, or nil if absent.
func (p *Program) Block(name string) *Block {
	for _, b := range p.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := &Program{Entry: p.Entry, Blocks: make([]*Block, len(p.Blocks))}
	for i, b := range p.Blocks {
		nb := *b
		nb.Instrs = append([]Instr(nil), b.Instrs...)
		q.Blocks[i] = &nb
	}
	return q
}

// Variables returns the set of variable names mentioned anywhere in the
// program (destinations, operands, and branch conditions).
func (p *Program) Variables() map[string]bool {
	vars := make(map[string]bool)
	use := func(o Operand) {
		if o.Var != "" {
			vars[o.Var] = true
		}
	}
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != "" {
				vars[in.Dst] = true
			}
			use(in.A)
			use(in.B)
		}
		if b.CondVar != "" {
			vars[b.CondVar] = true
		}
	}
	return vars
}

// String renders the program as a readable listing, blocks in order.
func (p *Program) String() string {
	var sb strings.Builder
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		switch {
		case b.CondVar != "":
			fmt.Fprintf(&sb, "  br %s ? %s : %s\n", b.CondVar, b.True, b.False)
		case b.Succ != "":
			fmt.Fprintf(&sb, "  br %s\n", b.Succ)
		default:
			sb.WriteString("  halt\n")
		}
	}
	return sb.String()
}

// Input maps input variable names to their values. Input variables are in
// scope from the start of execution.
type Input map[string]Value

// Clone returns a copy of the input.
func (in Input) Clone() Input {
	out := make(Input, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Facts is the fact set of a transformation context. The only fact kind the
// basic blocks language needs is "block b is dead" (dynamically unreachable).
type Facts struct {
	DeadBlocks map[string]bool
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts { return &Facts{DeadBlocks: make(map[string]bool)} }

// Clone returns a copy of the facts.
func (f *Facts) Clone() *Facts {
	g := NewFacts()
	for k := range f.DeadBlocks {
		g.DeadBlocks[k] = true
	}
	return g
}

// Context is the transformation context (Definition 2.3) for the basic
// blocks language: a program, an input on which it is well-defined, and
// facts established by earlier transformations.
type Context struct {
	Prog  *Program
	Input Input
	Facts *Facts
}

// NewContext returns a context with an empty fact set.
func NewContext(p *Program, in Input) *Context {
	return &Context{Prog: p, Input: in, Facts: NewFacts()}
}

// Clone deep-copies the context so a transformation sequence can be replayed
// from scratch during reduction.
func (c *Context) Clone() *Context {
	return &Context{Prog: c.Prog.Clone(), Input: c.Input.Clone(), Facts: c.Facts.Clone()}
}

// MaxSteps bounds interpretation so that a (buggy) transformation that
// introduced an infinite loop faults instead of hanging the test harness.
const MaxSteps = 100000

// Execute runs the program on the input and returns the sequence of printed
// values. A program that reads an undefined variable, branches on a
// non-boolean, adds booleans, jumps to a missing block, or exceeds MaxSteps
// faults with a non-nil error.
func Execute(p *Program, input Input) ([]Value, error) {
	env := make(map[string]Value, len(input))
	for k, v := range input {
		env[k] = v
	}
	read := func(o Operand) (Value, error) {
		if o.Var == "" {
			return o.Lit, nil
		}
		v, ok := env[o.Var]
		if !ok {
			return Value{}, fmt.Errorf("bblang: read of undefined variable %q", o.Var)
		}
		return v, nil
	}
	var output []Value
	cur := p.Block(p.Entry)
	if cur == nil {
		return nil, fmt.Errorf("bblang: entry block %q does not exist", p.Entry)
	}
	steps := 0
	for {
		for _, in := range cur.Instrs {
			steps++
			if steps > MaxSteps {
				return nil, fmt.Errorf("bblang: step limit exceeded")
			}
			switch in.Kind {
			case Assign:
				v, err := read(in.A)
				if err != nil {
					return nil, err
				}
				env[in.Dst] = v
			case Add:
				a, err := read(in.A)
				if err != nil {
					return nil, err
				}
				b, err := read(in.B)
				if err != nil {
					return nil, err
				}
				if a.IsBool || b.IsBool {
					return nil, fmt.Errorf("bblang: addition of boolean operands in %q", cur.Name)
				}
				env[in.Dst] = Int(a.N + b.N)
			case Print:
				v, err := read(in.A)
				if err != nil {
					return nil, err
				}
				output = append(output, v)
			}
		}
		steps++
		if steps > MaxSteps {
			return nil, fmt.Errorf("bblang: step limit exceeded")
		}
		var next string
		switch {
		case cur.CondVar != "":
			v, ok := env[cur.CondVar]
			if !ok {
				return nil, fmt.Errorf("bblang: branch on undefined variable %q", cur.CondVar)
			}
			if !v.IsBool {
				return nil, fmt.Errorf("bblang: branch on non-boolean variable %q", cur.CondVar)
			}
			if v.B {
				next = cur.True
			} else {
				next = cur.False
			}
		case cur.Succ != "":
			next = cur.Succ
		default:
			return output, nil
		}
		cur = p.Block(next)
		if cur == nil {
			return nil, fmt.Errorf("bblang: branch to missing block %q", next)
		}
	}
}

// OutputsEqual reports whether two print sequences are identical.
func OutputsEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
