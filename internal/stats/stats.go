// Package stats implements the statistical machinery of the evaluation:
// the Mann-Whitney U test (used in Table 3 to compare bug-finding ability
// with confidence percentages), medians, and the Venn segment counts of
// Figure 7.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs (the paper reports medians of per-group
// distinct-signature counts and of reduction delta sizes).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MedianInts is Median over integers.
func MedianInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Median(fs)
}

// MannWhitneyU performs a one-sided Mann-Whitney U test of the hypothesis
// that population a is stochastically larger than population b, returning
// the confidence (1 - p) as a fraction in [0, 1], computed with the normal
// approximation with tie correction and continuity correction. The paper
// reports "the certainty with which spirv-fuzz is (or is not) more
// effective according to MWU" as a percentage.
func MannWhitneyU(a, b []float64) (u float64, confidence float64) {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 0, 0.5
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating tie-correction term Σ(t³ - t).
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u = r1 - n1*(n1+1)/2 // U statistic for group a

	mean := n1 * n2 / 2
	n := n1 + n2
	variance := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		// All observations tied: no evidence either way.
		return u, 0.5
	}
	// Continuity correction toward the mean.
	z := (u - mean - 0.5) / math.Sqrt(variance)
	confidence = normalCDF(z)
	return u, confidence
}

// normalCDF is Φ(z) via the complementary error function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// VennCounts3 computes the seven segment sizes of a three-set Venn diagram
// (Figure 7). Keys are bitmasks over the three sets: bit 0 = a, bit 1 = b,
// bit 2 = c; e.g. counts[0b011] is |a ∩ b \ c|.
func VennCounts3(a, b, c map[string]bool) map[int]int {
	counts := make(map[int]int, 7)
	union := map[string]bool{}
	for k := range a {
		union[k] = true
	}
	for k := range b {
		union[k] = true
	}
	for k := range c {
		union[k] = true
	}
	for k := range union {
		mask := 0
		if a[k] {
			mask |= 1
		}
		if b[k] {
			mask |= 2
		}
		if c[k] {
			mask |= 4
		}
		counts[mask]++
	}
	return counts
}
