package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"spirvfuzz/internal/stats"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range cases {
		if got := stats.Median(tc.in); got != tc.want {
			t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if !math.IsNaN(stats.Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
	if got := stats.MedianInts([]int{8, 29, 8}); got != 8 {
		t.Errorf("MedianInts = %v", got)
	}
}

func TestMannWhitneyUClearSeparation(t *testing.T) {
	a := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 0}
	_, conf := stats.MannWhitneyU(a, b)
	if conf < 0.999 {
		t.Fatalf("confidence = %v, want near 1 for clearly larger population", conf)
	}
	_, conf = stats.MannWhitneyU(b, a)
	if conf > 0.001 {
		t.Fatalf("reverse confidence = %v, want near 0", conf)
	}
}

func TestMannWhitneyUIdenticalPopulations(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	_, conf := stats.MannWhitneyU(a, a)
	if conf != 0.5 {
		t.Fatalf("confidence = %v, want 0.5 for fully tied populations", conf)
	}
}

func TestMannWhitneyUWithTies(t *testing.T) {
	a := []float64{3, 3, 4, 5, 5, 6}
	b := []float64{2, 3, 3, 4, 4, 5}
	_, conf := stats.MannWhitneyU(a, b)
	if conf <= 0.5 || conf >= 1 {
		t.Fatalf("confidence = %v, want in (0.5, 1) for slightly larger population", conf)
	}
}

func TestMannWhitneyUSymmetryProperty(t *testing.T) {
	// Property: conf(a, b) + conf(b, a) ≈ 1 (up to continuity correction
	// asymmetry, which is bounded by the correction term itself).
	prop := func(seedA, seedB uint32) bool {
		ra, rb := seedA, seedB
		var a, b []float64
		for i := 0; i < 12; i++ {
			ra = ra*1664525 + 1013904223
			rb = rb*1664525 + 1013904223
			a = append(a, float64(ra%13))
			b = append(b, float64(rb%13))
		}
		_, c1 := stats.MannWhitneyU(a, b)
		_, c2 := stats.MannWhitneyU(b, a)
		return math.Abs(c1+c2-1) < 0.08
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVennCounts3(t *testing.T) {
	set := func(keys ...string) map[string]bool {
		m := map[string]bool{}
		for _, k := range keys {
			m[k] = true
		}
		return m
	}
	a := set("x", "y", "shared", "ab")
	b := set("z", "shared", "ab", "bc")
	c := set("w", "shared", "bc")
	counts := stats.VennCounts3(a, b, c)
	want := map[int]int{
		0b001: 2, // x, y
		0b010: 1, // z
		0b100: 1, // w
		0b011: 1, // ab
		0b110: 1, // bc
		0b111: 1, // shared
	}
	for mask, n := range want {
		if counts[mask] != n {
			t.Errorf("segment %03b = %d, want %d", mask, counts[mask], n)
		}
	}
	if counts[0b101] != 0 {
		t.Errorf("segment 101 = %d, want 0", counts[0b101])
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 7 {
		t.Errorf("union size = %d, want 7", total)
	}
}
