package bisect_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"spirvfuzz/internal/bisect"
	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/harness"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/target"
)

// collectCases fuzzes the reference corpus until n bug-triggering cases are
// found, classifying each variant against every target the way the campaign
// pipeline does. Deterministic: seeds are probed in order.
func collectCases(t *testing.T, n int) []bisect.Case {
	t.Helper()
	refs := corpus.References()
	donors := corpus.Donors()
	targets := target.All()
	eng := runner.New(4)
	var cases []bisect.Case
	for seed := int64(0); len(cases) < n && seed < 500; seed++ {
		item := refs[int(seed)%len(refs)]
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:                  seed,
			Donors:                donors,
			EnableRecommendations: true,
			MinPasses:             5,
			MaxPasses:             14,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sigs, err := harness.ClassifyAllCtx(context.Background(), eng, targets, item.Mod, res.Variant, item.Inputs, res.Inputs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for ti, tg := range targets {
			if sigs[ti] == "" || len(cases) >= n {
				continue
			}
			cases = append(cases, bisect.Case{
				Target:         tg.Name,
				Signature:      sigs[ti],
				Original:       item.Mod,
				OriginalInputs: item.Inputs,
				Variant:        res.Variant,
				Inputs:         res.Inputs,
			})
		}
	}
	if len(cases) < n {
		t.Fatalf("only %d bug cases found, want %d", len(cases), n)
	}
	return cases
}

// bisectAll runs every case through one engine configuration and returns the
// full results (verdict and self-relative probe counters).
func bisectAll(t *testing.T, cases []bisect.Case, workers, lanes int, warm bool) []bisect.Result {
	t.Helper()
	interp.SetLanes(lanes)
	defer interp.SetLanes(0)
	be := bisect.New(runner.New(workers))
	if warm {
		// Prime every engine cache with a full pass, then measure the repeat.
		for _, c := range cases {
			if _, err := be.Bisect(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	out := make([]bisect.Result, 0, len(cases))
	for _, c := range cases {
		res, err := be.Bisect(c)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestFirstBadDeterminism is the verdict-stability property the dedup signal
// rests on: the full bisection result — FirstBad and the self-relative
// Queries/CacheHits counters — is identical at 1, 4, and 16 workers, on cold
// and cache-warm engines, and at every lane width.
func TestFirstBadDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fuzz+bisect test")
	}
	cases := collectCases(t, 6)
	base := bisectAll(t, cases, 1, 0, false)
	for _, res := range base {
		if res.FirstBad == "" || res.Queries == 0 {
			t.Fatalf("empty verdict: %+v", res)
		}
		found := false
		for _, rel := range target.Releases(res.Target) {
			if rel == res.FirstBad {
				found = true
			}
		}
		if !found {
			t.Fatalf("FirstBad %q is not a release of %s", res.FirstBad, res.Target)
		}
	}
	configs := []struct {
		name    string
		workers int
		lanes   int
		warm    bool
	}{
		{"workers=4 cold scalar", 4, 0, false},
		{"workers=16 cold scalar", 16, 0, false},
		{"workers=1 warm scalar", 1, 0, true},
		{"workers=4 warm scalar", 4, 0, true},
		{"workers=4 cold lanes=8", 4, 8, false},
		{"workers=16 warm lanes=16", 16, 16, true},
	}
	for _, cfg := range configs {
		got := bisectAll(t, cases, cfg.workers, cfg.lanes, cfg.warm)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("%s: results diverged:\n got %+v\nwant %+v", cfg.name, got, base)
		}
	}
}

// TestBisectSharedCompiles pins the almost-for-free claim: probes either
// crash before compiling or share compile keys across releases, so a full
// bisection runs far fewer fresh compiles than release probes.
func TestBisectSharedCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fuzz+bisect test")
	}
	cases := collectCases(t, 6)
	be := bisect.New(runner.New(4))
	for _, c := range cases {
		if _, err := be.Bisect(c); err != nil {
			t.Fatal(err)
		}
	}
	st := be.Stats()
	if st.Bisections != uint64(len(cases)) || st.Queries == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Compiles >= st.Queries {
		t.Fatalf("no compile sharing: %d compiles for %d probes", st.Compiles, st.Queries)
	}
	if st.HitFraction() < 0.5 {
		t.Fatalf("cache-hit fraction %.2f, want >= 0.5 (%+v)", st.HitFraction(), st)
	}
}

// TestBisectRejectsNonReproducing: a signature the latest release does not
// exhibit is a contract violation, reported as an error rather than a bogus
// verdict.
func TestBisectRejectsNonReproducing(t *testing.T) {
	item := corpus.References()[0]
	be := bisect.New(nil)
	_, err := be.Bisect(bisect.Case{
		Target:    "Mesa",
		Signature: "no-such-crash",
		Variant:   item.Mod,
		Inputs:    item.Inputs,
	})
	if err == nil || !strings.Contains(err.Error(), "does not reproduce") {
		t.Fatalf("err = %v, want does-not-reproduce", err)
	}
	if _, err := be.Bisect(bisect.Case{Target: "NoSuchGPU", Signature: "x", Variant: item.Mod}); err == nil {
		t.Fatalf("unknown target accepted")
	}
}

// TestOriginalsCleanAtAllReleases guards the invariant both bisection
// predicates rest on: every reference-corpus module runs crash-free at every
// release of every target (defects only ever fire on fuzzed variants), so
// the miscompilation predicate's original-render baseline exists at every
// probe point.
func TestOriginalsCleanAtAllReleases(t *testing.T) {
	eng := runner.New(4)
	for _, tg := range target.All() {
		for _, rel := range target.Releases(tg.Name) {
			view := target.At(tg.Name, rel)
			for _, it := range corpus.References() {
				img, crash := eng.Run(view, it.Mod, it.Inputs)
				if crash != nil {
					t.Fatalf("%s@%s: original %s crashes: %v", tg.Name, rel, it.Name, crash)
				}
				if img == nil && tg.CanRender {
					t.Fatalf("%s@%s: original %s rendered no image", tg.Name, rel, it.Name)
				}
			}
		}
	}
}
