// Package bisect implements the second deduplication signal: given a reduced
// test case that triggers a bug at a target's latest release, binary-search
// the target's release history (internal/target version views) for the first
// release that exhibits the bug — the release that introduced the defect.
// Two cases that bisect to the same (target, first-bad release) pair very
// likely hit the same defect, which is the dedup criterion of "On the
// Feasibility of Deduplicating Compiler Bugs with Bisection" (PAPERS.md),
// complementary to the paper's transformation-type signal.
//
// Probes route through a shared runner.Engine, and the engine's compile
// cache is keyed on (module fingerprint, mutation fingerprint) with no
// version component: releases whose defect firing sets agree on a module
// share one compile, so a full bisection costs far fewer compiles than
// releases probed. Crash probes are cheaper still — the injected crash
// predicates run before any compile, so a release that crashes on the
// variant answers its probe without compiling at all.
//
// Verdicts are engine-independent: every probe is an ordinary deterministic
// target run, so FirstBad is identical at any worker count, lane width, or
// cache temperature, and under cluster sharding.
package bisect

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/runner"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/target"
)

// Result is one bisection verdict. Queries counts release probes; CacheHits
// counts the probes answered without a fresh compile — either the release
// crashed on the module before reaching its compiler (the phase-split win),
// or every compile key the probe touched had already been compiled earlier
// in this bisection (the shared-compile win). Both counts are self-relative
// to the bisection, so they are deterministic even on a warm engine shared
// with concurrent work.
type Result struct {
	Target    string `json:"target"`
	FirstBad  string `json:"first_bad"`
	Queries   int    `json:"queries"`
	CacheHits int    `json:"cache_hits"`
}

// Stats is the aggregated BisectStats block an engine accumulates across
// bisections; it surfaces in gfauto -json, spirvd /metrics and the cluster
// coordinator's merged metrics.
type Stats struct {
	Bisections uint64 `json:"bisections"`
	Queries    uint64 `json:"queries"`
	CacheHits  uint64 `json:"cache_hits"`
	Compiles   uint64 `json:"compiles"` // fresh compile keys probed
}

// HitFraction is the fraction of release probes that needed no fresh
// compile — the headline number behind "a bisection costs far fewer
// compiles than releases probed".
func (s Stats) HitFraction() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Queries)
}

// Add merges other into s (cluster metric merging).
func (s *Stats) Add(other Stats) {
	s.Bisections += other.Bisections
	s.Queries += other.Queries
	s.CacheHits += other.CacheHits
	s.Compiles += other.Compiles
}

// Predicate reports whether one release view of a target exhibits the bug
// under bisection. Implementations must be deterministic in the view alone.
type Predicate func(view *target.Target) (bool, error)

// Case is a concrete reduced test case to bisect: the variant module (on its
// inputs) triggers the bug with Signature on Target's latest release.
// Original and OriginalInputs name the unfuzzed reference the variant was
// derived from; they drive the image-pair comparison for miscompilation
// signatures and are ignored for crash signatures.
type Case struct {
	Target         string
	Signature      string
	Original       *spirv.Module
	OriginalInputs interp.Inputs
	Variant        *spirv.Module
	Inputs         interp.Inputs
}

// Engine runs bisections over a shared runner engine.
type Engine struct {
	eng *runner.Engine

	mu    sync.Mutex
	stats Stats
}

// New returns a bisection engine probing through eng; a nil eng gets a
// private single-worker runner (probes are sequential anyway).
func New(eng *runner.Engine) *Engine {
	if eng == nil {
		eng = runner.New(1)
	}
	return &Engine{eng: eng}
}

// Runner returns the underlying runner engine.
func (e *Engine) Runner() *runner.Engine { return e.eng }

// Stats returns a snapshot of the aggregated counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// compileKey mirrors the runner's compile-cache key: a compile is fully
// determined by the module and the mutation set the release applies to it.
type compileKey struct {
	mod [sha256.Size]byte
	mut string
}

// probeCost tracks, per bisection, which compile keys have been probed, so
// CacheHits stays self-relative and deterministic.
type probeCost struct {
	seen  map[compileKey]bool
	fresh int // compiles this probe would have to run cold
}

// charge records one target run of m at view: a run that crashes in the
// defect check never reaches the compiler and costs nothing; otherwise the
// run's compile key counts as fresh exactly once per bisection.
func (p *probeCost) charge(view *target.Target, m *spirv.Module) {
	if view.CheckCrashes(m) != nil {
		return
	}
	k := compileKey{mod: m.Fingerprint(), mut: view.MutationFingerprint(m)}
	if !p.seen[k] {
		p.seen[k] = true
		p.fresh++
	}
}

// Run binary-searches the named target's release sequence for the first
// release where pred holds. The bug must reproduce at the latest release
// (the search confirms this with its first probe); within that contract the
// search returns the canonical git-bisect answer — the smallest index whose
// probe is true when its upper neighbourhood is true — deterministically
// even if the history is not monotone (a defect fixed and reintroduced).
func (e *Engine) Run(name string, pred Predicate) (Result, error) {
	res, compiles, err := e.search(name, pred, nil)
	if err != nil {
		return res, err
	}
	e.record(res, compiles)
	return res, nil
}

// Bisect bisects a concrete case: the per-release predicate matches the
// harness's outcome classification. For a crash signature the release must
// crash on the variant with the same signature (signatures carry no version
// component, so one defect keeps one signature across releases); for the
// miscompilation pseudo-signature the release must render the variant
// successfully but differently from the original. An original that crashes
// at any release violates the target package's originals-are-clean
// invariant and is reported as an error.
func (e *Engine) Bisect(c Case) (Result, error) {
	if c.Variant == nil {
		return Result{}, fmt.Errorf("bisect: %s: case has no variant module", c.Target)
	}
	var pred Predicate
	if c.Signature == target.MiscompilationSignature {
		if c.Original == nil {
			return Result{}, fmt.Errorf("bisect: %s: miscompilation case has no original module", c.Target)
		}
		pred = func(view *target.Target) (bool, error) {
			origImg, origCrash := e.eng.Run(view, c.Original, c.OriginalInputs)
			if origCrash != nil {
				return false, fmt.Errorf("bisect: original crashes on %s at %s: %s", view.Name, view.Version, origCrash.Signature)
			}
			varImg, varCrash := e.eng.Run(view, c.Variant, c.Inputs)
			return varCrash == nil && varImg != nil && origImg != nil && !varImg.Equal(origImg), nil
		}
	} else {
		pred = func(view *target.Target) (bool, error) {
			_, crash := e.eng.Run(view, c.Variant, c.Inputs)
			return crash != nil && crash.Signature == c.Signature, nil
		}
	}
	charge := func(view *target.Target, cost *probeCost) {
		if c.Signature == target.MiscompilationSignature {
			cost.charge(view, c.Original)
		}
		cost.charge(view, c.Variant)
	}
	res, compiles, err := e.search(c.Target, pred, charge)
	if err != nil {
		return res, err
	}
	e.record(res, compiles)
	return res, nil
}

// search is the shared binary search. charge, if non-nil, is called before
// each probe to account the probe's compile cost against cost; a probe
// whose charge adds no fresh compile counts as a cache hit. The fresh
// compile total is returned alongside the result for the stats block.
func (e *Engine) search(name string, pred Predicate, charge func(view *target.Target, cost *probeCost)) (Result, int, error) {
	releases := target.Releases(name)
	if releases == nil {
		return Result{}, 0, fmt.Errorf("bisect: unknown target %q", name)
	}
	res := Result{Target: name}
	cost := &probeCost{seen: map[compileKey]bool{}}
	probe := func(i int) (bool, error) {
		view := target.At(name, releases[i])
		before := cost.fresh
		if charge != nil {
			charge(view, cost)
		}
		res.Queries++
		ok, err := pred(view)
		if err != nil {
			return false, err
		}
		if cost.fresh == before {
			res.CacheHits++
		}
		return ok, nil
	}

	latest := len(releases) - 1
	ok, err := probe(latest)
	if err != nil {
		return res, cost.fresh, err
	}
	if !ok {
		return res, cost.fresh, fmt.Errorf("bisect: %s: bug does not reproduce at latest release %s", name, releases[latest])
	}
	lo, hi := 0, latest
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := probe(mid)
		if err != nil {
			return res, cost.fresh, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	res.FirstBad = releases[lo]
	return res, cost.fresh, nil
}

// record folds one completed bisection into the engine counters.
func (e *Engine) record(res Result, compiles int) {
	e.mu.Lock()
	e.stats.Bisections++
	e.stats.Queries += uint64(res.Queries)
	e.stats.CacheHits += uint64(res.CacheHits)
	e.stats.Compiles += uint64(compiles)
	e.mu.Unlock()
}
