// Package corpus provides the reference and donor modules for the
// controlled experiments, mirroring the role of the GraphicsFuzz shader
// sets in the paper (Section 4): 21 reference shaders known to produce
// numerically-stable images, and 43 donor modules whose functions feed the
// AddFunction transformation. All modules are built procedurally and
// deterministically.
package corpus

import (
	"fmt"

	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv"
)

// Item is a reference shader with the inputs it executes on.
type Item struct {
	Name   string
	Mod    *spirv.Module
	Inputs interp.Inputs
}

// StandardUniforms returns the uniform values shared by all references: the
// fuzzer knows these (they are part of the input), letting
// ReplaceConstantWithUniform obfuscate equal-valued constants.
func StandardUniforms() map[string]interp.Value {
	return map[string]interp.Value{
		"u_one":  interp.FloatVal(1),
		"u_half": interp.FloatVal(0.5),
		"u_ten":  interp.IntVal(10),
	}
}

func stdInputs() interp.Inputs {
	return interp.Inputs{W: 8, H: 8, Uniforms: StandardUniforms()}
}

// shell extends the fragment scaffolding with the standard uniforms.
type shell struct {
	*spirv.FragmentShell
	b     *spirv.Builder
	uOne  spirv.ID // float uniform = 1.0
	uHalf spirv.ID // float uniform = 0.5
	uTen  spirv.ID // int uniform = 10
}

func newShell() (*spirv.Builder, *shell) {
	b := spirv.NewBuilder()
	// Uniforms are declared before main so they precede the function.
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	i32 := m.EnsureTypeInt(32, true)
	s := &shell{b: b}
	s.uOne = b.Uniform("u_one", f32, 1)
	s.uHalf = b.Uniform("u_half", f32, 2)
	s.uTen = b.Uniform("u_ten", i32, 3)
	s.FragmentShell = b.BeginFragmentShell()
	return b, s
}

// finish completes the module.
func (s *shell) finish() *spirv.Module {
	s.b.FinishFragmentShell(s.FragmentShell)
	return s.b.Mod
}

// coordXY loads the coordinate and extracts both components.
func (s *shell) coordXY() (x, y spirv.ID) {
	b := s.b
	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	x = b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 0)
	y = b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(c), 1)
	return x, y
}

// emitColor stores (r, g, b, 1).
func (s *shell) emitColor(r, g, bl spirv.ID) {
	one := s.b.Mod.EnsureConstantFloat(1)
	col := s.b.Emit(spirv.OpCompositeConstruct, s.Vec4, r, g, bl, one)
	s.b.Store(s.Color, col)
}

// --- reference builders ------------------------------------------------------

// refGradient: straight-line arithmetic over the coordinate.
func refGradient(k int) *spirv.Module {
	b, s := newShell()
	m := b.Mod
	x, y := s.coordXY()
	scale := m.EnsureConstantFloat(float32(k) * 0.25)
	half := m.EnsureConstantFloat(0.5)
	r := b.Emit(spirv.OpFMul, s.Float, x, scale)
	g := b.Emit(spirv.OpFMul, s.Float, y, half)
	t := b.Emit(spirv.OpFAdd, s.Float, x, y)
	bl := b.Emit(spirv.OpFMul, s.Float, t, half)
	s.emitColor(r, g, bl)
	return s.finish()
}

// refDiamond: k nested if/else diamonds over coordinate thresholds, joined
// with ϕs.
func refDiamond(k int) *spirv.Module {
	b, s := newShell()
	m := b.Mod
	x, y := s.coordXY()
	acc := m.EnsureConstantFloat(0.1)
	cur := b.Emit(spirv.OpFAdd, s.Float, x, acc)
	for i := 0; i < k; i++ {
		thr := m.EnsureConstantFloat(0.25 * float32(i+1))
		operand := x
		if i%2 == 1 {
			operand = y
		}
		cond := b.Emit(spirv.OpFOrdLessThan, s.Bool, operand, thr)
		left, right, merge := b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.SelectionMerge(merge)
		b.BranchCond(cond, left, right)
		b.Begin(left)
		lv := b.Emit(spirv.OpFAdd, s.Float, cur, thr)
		b.Branch(merge)
		b.Begin(right)
		rv := b.Emit(spirv.OpFMul, s.Float, cur, thr)
		b.Branch(merge)
		b.Begin(merge)
		cur = b.Phi(s.Float, lv, left, rv, right)
	}
	s.emitColor(cur, cur, x)
	return s.finish()
}

// refLoop: a structured loop accumulating n iterations of coordinate math.
func refLoop(n int32) *spirv.Module {
	b, s := newShell()
	m := b.Mod
	x, _ := s.coordXY()
	zero := m.EnsureConstantInt(0)
	oneI := m.EnsureConstantInt(1)
	limit := m.EnsureConstantInt(n)
	scale := m.EnsureConstantFloat(1 / float32(n))

	header, check, body, cont, merge := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	entry := b.Fn.Blocks[0].Label
	zeroF := m.EnsureConstantFloat(0)
	b.Branch(header)

	b.Begin(header)
	iPhi := m.FreshID()
	aPhi := m.FreshID()
	iNext := m.FreshID()
	aNext := m.FreshID()
	b.Blk.Phis = append(b.Blk.Phis,
		spirv.NewInstr(spirv.OpPhi, s.Int, iPhi, uint32(zero), uint32(entry), uint32(iNext), uint32(cont)),
		spirv.NewInstr(spirv.OpPhi, s.Float, aPhi, uint32(zeroF), uint32(entry), uint32(aNext), uint32(cont)),
	)
	b.LoopMerge(merge, cont)
	b.Branch(check)

	b.Begin(check)
	cond := b.Emit(spirv.OpSLessThan, s.Bool, iPhi, limit)
	b.BranchCond(cond, body, merge)

	b.Begin(body)
	step := b.Emit(spirv.OpFMul, s.Float, x, scale)
	b.Blk.Body = append(b.Blk.Body, spirv.NewInstr(spirv.OpFAdd, s.Float, aNext, uint32(aPhi), uint32(step)))
	b.Branch(cont)

	b.Begin(cont)
	b.Blk.Body = append(b.Blk.Body, spirv.NewInstr(spirv.OpIAdd, s.Int, iNext, uint32(iPhi), uint32(oneI)))
	b.Branch(header)

	b.Begin(merge)
	s.emitColor(aPhi, x, aPhi)
	return s.finish()
}

// refMatrix: matrix-vector math with uniform-scaled output.
func refMatrix(k int) *spirv.Module {
	b, s := newShell()
	m := b.Mod
	one := m.EnsureConstantFloat(1)
	q := m.EnsureConstantFloat(0.25 * float32(k))
	mat2 := m.EnsureTypeMatrix(s.Vec2, 2)
	col0 := m.EnsureConstantComposite(s.Vec2, one, q)
	col1 := m.EnsureConstantComposite(s.Vec2, q, one)
	matC := m.EnsureConstantComposite(mat2, col0, col1)
	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	mv := b.Emit(spirv.OpMatrixTimesVector, s.Vec2, matC, c)
	d := b.Emit(spirv.OpDot, s.Float, mv, c)
	r := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(mv), 0)
	g := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(mv), 1)
	s.emitColor(r, g, d)
	return s.finish()
}

// refStructArray: local struct and array traffic through access chains.
func refStructArray() *spirv.Module {
	b, s := newShell()
	m := b.Mod
	x, y := s.coordXY()
	n4 := m.EnsureConstantInt(4)
	arr := m.EnsureTypeArray(s.Float, n4)
	st := m.EnsureTypeStruct(s.Vec2, arr)
	ptrSt := m.EnsureTypePointer(spirv.StorageFunction, st)
	ptrV2 := m.EnsureTypePointer(spirv.StorageFunction, s.Vec2)
	ptrF := m.EnsureTypePointer(spirv.StorageFunction, s.Float)
	_ = ptrSt
	i0, i1 := m.EnsureConstantInt(0), m.EnsureConstantInt(1)
	i2 := m.EnsureConstantInt(2)
	local := b.LocalVariable(st)
	pv := b.AccessChain(ptrV2, local, i0)
	c := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	b.Store(pv, c)
	pa := b.AccessChain(ptrF, local, i1, i2)
	sum := b.Emit(spirv.OpFAdd, s.Float, x, y)
	b.Store(pa, sum)
	back := b.Emit(spirv.OpLoad, s.Float, pa)
	px := b.AccessChain(ptrF, local, i0, i0)
	xv := b.Emit(spirv.OpLoad, s.Float, px)
	s.emitColor(xv, back, y)
	return s.finish()
}

// refCalls: k chained helper functions.
func refCalls(k int) *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	var helpers []spirv.ID
	for i := 0; i < k; i++ {
		cst := m.EnsureConstantFloat(0.1 * float32(i+1))
		fn, params := b.BeginFunction(fmt.Sprintf("helper%d", i), f32, spirv.FunctionControlNone, f32)
		b.BeginNew()
		var v spirv.ID
		if i%2 == 0 {
			v = b.Emit(spirv.OpFAdd, f32, params[0], cst)
		} else {
			v = b.Emit(spirv.OpFMul, f32, params[0], cst)
		}
		b.ReturnValue(v)
		b.EndFunction()
		helpers = append(helpers, fn)
	}
	s := &shell{b: b}
	s.uOne = b.Uniform("u_one", f32, 1)
	s.uHalf = b.Uniform("u_half", f32, 2)
	s.uTen = b.Uniform("u_ten", m.EnsureTypeInt(32, true), 3)
	s.FragmentShell = b.BeginFragmentShell()
	x, y := s.coordXY()
	cur := x
	for _, h := range helpers {
		cur = b.Emit(spirv.OpFunctionCall, f32, h, cur)
	}
	s.emitColor(cur, y, cur)
	return s.finish()
}

// refSwitch: OpSwitch over a quantized coordinate.
func refSwitch() *spirv.Module {
	b, s := newShell()
	m := b.Mod
	x, y := s.coordXY()
	four := m.EnsureConstantFloat(4)
	one := m.EnsureConstantFloat(1)
	xi := b.Emit(spirv.OpFMul, s.Float, x, four)
	sel := b.Emit(spirv.OpConvertFToS, s.Int, xi)
	c0, c1, def, merge := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.SelectionMerge(merge)
	b.Blk.Term = spirv.NewInstr(spirv.OpSwitch, 0, 0, uint32(sel), uint32(def), 0, uint32(c0), 1, uint32(c1))
	b.Blk = nil
	b.Begin(c0)
	v0 := b.Emit(spirv.OpFMul, s.Float, y, one)
	b.Branch(merge)
	b.Begin(c1)
	half := m.EnsureConstantFloat(0.5)
	v1 := b.Emit(spirv.OpFMul, s.Float, y, half)
	b.Branch(merge)
	b.Begin(def)
	v2 := b.Emit(spirv.OpFAdd, s.Float, y, half)
	b.Branch(merge)
	b.Begin(merge)
	r := b.Phi(s.Float, v0, c0, v1, c1, v2, def)
	s.emitColor(r, x, r)
	return s.finish()
}

// refKill: discard the top-left corner.
func refKill() *spirv.Module {
	b, s := newShell()
	m := b.Mod
	x, y := s.coordXY()
	q := m.EnsureConstantFloat(0.25)
	cx := b.Emit(spirv.OpFOrdLessThan, s.Bool, x, q)
	cy := b.Emit(spirv.OpFOrdLessThan, s.Bool, y, q)
	both := b.Emit(spirv.OpLogicalAnd, s.Bool, cx, cy)
	killB, rest := b.NewLabel(), b.NewLabel()
	b.SelectionMerge(rest)
	b.BranchCond(both, killB, rest)
	b.Begin(killB)
	b.Kill()
	b.Begin(rest)
	s.emitColor(x, y, x)
	return s.finish()
}

// refSelects: branch-free data flow with OpSelect chains and integer math.
func refSelects(k int) *spirv.Module {
	b, s := newShell()
	m := b.Mod
	x, y := s.coordXY()
	ten := m.EnsureConstantInt(10)
	one := m.EnsureConstantInt(1)
	xi0 := b.Emit(spirv.OpFMul, s.Float, x, b.Mod.EnsureConstantFloat(10))
	xi := b.Emit(spirv.OpConvertFToS, s.Int, xi0)
	cur := xi
	for i := 0; i < k; i++ {
		cmp := b.Emit(spirv.OpSLessThan, s.Bool, cur, ten)
		inc := b.Emit(spirv.OpIAdd, s.Int, cur, one)
		dbl := b.Emit(spirv.OpIMul, s.Int, cur, m.EnsureConstantInt(2))
		cur = b.Emit(spirv.OpSelect, s.Int, cmp, inc, dbl)
		cur = b.Emit(spirv.OpSMod, s.Int, cur, m.EnsureConstantInt(16))
	}
	cf := b.Emit(spirv.OpConvertSToF, s.Float, cur)
	r := b.Emit(spirv.OpFMul, s.Float, cf, m.EnsureConstantFloat(1.0/16))
	s.emitColor(r, y, r)
	return s.finish()
}

// References returns the 21 reference shaders with their inputs.
func References() []Item {
	items := []Item{
		{"gradient1", refGradient(1), stdInputs()},
		{"gradient2", refGradient(2), stdInputs()},
		{"gradient3", refGradient(3), stdInputs()},
		{"diamond1", refDiamond(1), stdInputs()},
		{"diamond2", refDiamond(2), stdInputs()},
		{"diamond3", refDiamond(3), stdInputs()},
		{"diamond4", refDiamond(4), stdInputs()},
		{"loop4", refLoop(4), stdInputs()},
		{"loop10", refLoop(10), stdInputs()},
		{"loop16", refLoop(16), stdInputs()},
		{"matrix1", refMatrix(1), stdInputs()},
		{"matrix2", refMatrix(2), stdInputs()},
		{"structarray", refStructArray(), stdInputs()},
		{"calls1", refCalls(1), stdInputs()},
		{"calls2", refCalls(2), stdInputs()},
		{"calls4", refCalls(4), stdInputs()},
		{"switch", refSwitch(), stdInputs()},
		{"kill", refKill(), stdInputs()},
		{"selects2", refSelects(2), stdInputs()},
		{"selects5", refSelects(5), stdInputs()},
		{"selects8", refSelects(8), stdInputs()},
	}
	return items
}
