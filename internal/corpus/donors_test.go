package corpus_test

import (
	"bytes"
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
)

// TestDonorsDeterministic: the donor corpus is built procedurally and must
// be bitwise-identical on every call — donor bytes feed AddFunction, so any
// drift would silently break seed-reproducibility of whole campaigns.
func TestDonorsDeterministic(t *testing.T) {
	a := corpus.Donors()
	b := corpus.Donors()
	if len(a) != 43 || len(b) != 43 {
		t.Fatalf("donor count %d / %d, want 43 (Section 4.1)", len(a), len(b))
	}
	for i := range a {
		if a[i] == b[i] {
			t.Fatalf("donor %d shared between calls; mutation by one caller would corrupt the other", i)
		}
		if !bytes.Equal(a[i].EncodeBytes(), b[i].EncodeBytes()) {
			t.Fatalf("donor %d differs between calls", i)
		}
		if a[i].InstructionCount() == 0 || len(a[i].Functions) == 0 {
			t.Fatalf("donor %d has no donatable function", i)
		}
	}
}

// TestFuzzWithDonorsSeedReproducible: a fixed seed with the donor corpus
// yields identical sequences and variant bytes across independent runs —
// the property the spirvd journal relies on to resume campaigns.
func TestFuzzWithDonorsSeedReproducible(t *testing.T) {
	item := corpus.References()[3]
	opts := fuzz.Options{
		Seed:                  99,
		Donors:                corpus.Donors(),
		EnableRecommendations: true,
		MinPasses:             5,
		MaxPasses:             14,
	}
	r1, err := fuzz.Fuzz(item.Mod, item.Inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Donors = corpus.Donors() // fresh donor slice, same content
	r2, err := fuzz.Fuzz(item.Mod, item.Inputs, opts)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := fuzz.MarshalSequence(r1.Transformations)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fuzz.MarshalSequence(r2.Transformations)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("sequences differ under a fixed seed")
	}
	if !bytes.Equal(r1.Variant.EncodeBytes(), r2.Variant.EncodeBytes()) {
		t.Fatal("variants differ under a fixed seed")
	}
}

// TestFuzzWithoutDonors: an empty donor corpus is not an error — the fuzzer
// simply never applies AddFunction (it has nothing to donate), and the
// variant still renders like the reference on non-bug targets.
func TestFuzzWithoutDonors(t *testing.T) {
	item := corpus.References()[0]
	for seed := int64(1); seed <= 5; seed++ {
		res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{
			Seed:      seed,
			Donors:    nil,
			MinPasses: 5,
			MaxPasses: 14,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, tr := range res.Transformations {
			if tr.Type() == fuzz.TypeAddFunction {
				t.Fatalf("seed %d: AddFunction applied with no donors", seed)
			}
		}
		// Semantics preserved: the variant renders the reference image.
		want, err := interp.Render(item.Mod, item.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Render(res.Variant, res.Inputs)
		if err != nil {
			t.Fatalf("seed %d: variant render: %v", seed, err)
		}
		if !want.Equal(got) {
			t.Fatalf("seed %d: donor-free variant changed the image", seed)
		}
	}
}
