package corpus

import (
	"fmt"

	"spirvfuzz/internal/spirv"
)

// Donor modules: sources of functions for the AddFunction transformation.
// Every donor function is built to be live-safe by construction: pure
// (memory access only through locals and parameters), call-free, OpKill-free
// and terminating (loops have constant bounds), so calling it from anywhere
// cannot affect the results of computation.

// donorPoly builds f(x) = x*a + b over floats.
func donorPoly(a, bconst float32) *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	ca := m.EnsureConstantFloat(a)
	cb := m.EnsureConstantFloat(bconst)
	_, params := b.BeginFunction("poly", f32, spirv.FunctionControlNone, f32)
	b.BeginNew()
	t := b.Emit(spirv.OpFMul, f32, params[0], ca)
	r := b.Emit(spirv.OpFAdd, f32, t, cb)
	b.ReturnValue(r)
	b.EndFunction()
	return m
}

// donorIntMix builds f(n) = ((n*k) % 7) + (n & 3) over signed ints.
func donorIntMix(k int32) *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	i32 := m.EnsureTypeInt(32, true)
	ck := m.EnsureConstantInt(k)
	c7 := m.EnsureConstantInt(7)
	c3 := m.EnsureConstantInt(3)
	_, params := b.BeginFunction("intmix", i32, spirv.FunctionControlNone, i32)
	b.BeginNew()
	t := b.Emit(spirv.OpIMul, i32, params[0], ck)
	md := b.Emit(spirv.OpSMod, i32, t, c7)
	an := b.Emit(spirv.OpBitwiseAnd, i32, params[0], c3)
	r := b.Emit(spirv.OpIAdd, i32, md, an)
	b.ReturnValue(r)
	b.EndFunction()
	return m
}

// donorAbsSelect builds |x| via compare + select, plus a clampish helper.
func donorAbsSelect() *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	boolT := m.EnsureTypeBool()
	zero := m.EnsureConstantFloat(0)
	one := m.EnsureConstantFloat(1)
	_, params := b.BeginFunction("absf", f32, spirv.FunctionControlNone, f32)
	b.BeginNew()
	neg := b.Emit(spirv.OpFNegate, f32, params[0])
	lt := b.Emit(spirv.OpFOrdLessThan, boolT, params[0], zero)
	r := b.Emit(spirv.OpSelect, f32, lt, neg, params[0])
	b.ReturnValue(r)
	b.EndFunction()

	_, p2 := b.BeginFunction("clamp01", f32, spirv.FunctionControlNone, f32)
	b.BeginNew()
	lo := b.Emit(spirv.OpFOrdLessThan, boolT, p2[0], zero)
	c1 := b.Emit(spirv.OpSelect, f32, lo, zero, p2[0])
	hi := b.Emit(spirv.OpFOrdGreaterThan, boolT, c1, one)
	c2 := b.Emit(spirv.OpSelect, f32, hi, one, c1)
	b.ReturnValue(c2)
	b.EndFunction()
	return m
}

// donorBoundedLoop builds f(x) = x summed over n constant iterations using a
// structured loop with a constant bound, demonstrating live-safe loops.
func donorBoundedLoop(n int32) *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	i32 := m.EnsureTypeInt(32, true)
	boolT := m.EnsureTypeBool()
	zero := m.EnsureConstantInt(0)
	oneI := m.EnsureConstantInt(1)
	limit := m.EnsureConstantInt(n)
	zeroF := m.EnsureConstantFloat(0)

	_, params := b.BeginFunction("loopsum", f32, spirv.FunctionControlNone, f32)
	entry := b.BeginNew()
	header, check, body, cont, merge := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Branch(header)

	b.Begin(header)
	iPhi, aPhi := m.FreshID(), m.FreshID()
	iNext, aNext := m.FreshID(), m.FreshID()
	b.Blk.Phis = append(b.Blk.Phis,
		spirv.NewInstr(spirv.OpPhi, i32, iPhi, uint32(zero), uint32(entry), uint32(iNext), uint32(cont)),
		spirv.NewInstr(spirv.OpPhi, f32, aPhi, uint32(zeroF), uint32(entry), uint32(aNext), uint32(cont)),
	)
	b.LoopMerge(merge, cont)
	b.Branch(check)

	b.Begin(check)
	cond := b.Emit(spirv.OpSLessThan, boolT, iPhi, limit)
	b.BranchCond(cond, body, merge)

	b.Begin(body)
	b.Blk.Body = append(b.Blk.Body, spirv.NewInstr(spirv.OpFAdd, f32, aNext, uint32(aPhi), uint32(params[0])))
	b.Branch(cont)

	b.Begin(cont)
	b.Blk.Body = append(b.Blk.Body, spirv.NewInstr(spirv.OpIAdd, i32, iNext, uint32(iPhi), uint32(oneI)))
	b.Branch(header)

	b.Begin(merge)
	b.ReturnValue(aPhi)
	b.EndFunction()
	return m
}

// donorVecOps builds a vector helper: f(x) = dot((x, 2x), (0.5, 0.25)).
func donorVecOps(scale float32) *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	vec2 := m.EnsureTypeVector(f32, 2)
	cs := m.EnsureConstantFloat(scale)
	ch := m.EnsureConstantFloat(0.5)
	cq := m.EnsureConstantFloat(0.25)
	w := m.EnsureConstantComposite(vec2, ch, cq)
	_, params := b.BeginFunction("vecdot", f32, spirv.FunctionControlNone, f32)
	b.BeginNew()
	x2 := b.Emit(spirv.OpFMul, f32, params[0], cs)
	v := b.Emit(spirv.OpCompositeConstruct, vec2, params[0], x2)
	d := b.Emit(spirv.OpDot, f32, v, w)
	b.ReturnValue(d)
	b.EndFunction()
	return m
}

// donorLocalMemory builds a helper that round-trips its argument through a
// local variable and an extra scratch slot.
func donorLocalMemory() *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	_, params := b.BeginFunction("localmem", f32, spirv.FunctionControlNone, f32)
	b.BeginNew()
	v := b.LocalVariable(f32)
	b.Store(v, params[0])
	back := b.Emit(spirv.OpLoad, f32, v)
	doubled := b.Emit(spirv.OpFAdd, f32, back, back)
	b.Store(v, doubled)
	final := b.Emit(spirv.OpLoad, f32, v)
	b.ReturnValue(final)
	b.EndFunction()
	return m
}

// donorBoolChain builds a boolean helper used for branchy donations.
func donorBoolChain(thr float32) *spirv.Module {
	b := spirv.NewBuilder()
	m := b.Mod
	f32 := m.EnsureTypeFloat(32)
	boolT := m.EnsureTypeBool()
	ct := m.EnsureConstantFloat(thr)
	one := m.EnsureConstantFloat(1)
	zero := m.EnsureConstantFloat(0)
	_, params := b.BeginFunction("step", f32, spirv.FunctionControlNone, f32)
	b.BeginNew()
	lt := b.Emit(spirv.OpFOrdLessThan, boolT, params[0], ct)
	ge := b.Emit(spirv.OpFOrdGreaterThanEqual, boolT, params[0], zero)
	both := b.Emit(spirv.OpLogicalAnd, boolT, lt, ge)
	r := b.Emit(spirv.OpSelect, f32, both, one, zero)
	b.ReturnValue(r)
	b.EndFunction()
	return m
}

// Donors returns the 43 donor modules.
func Donors() []*spirv.Module {
	var out []*spirv.Module
	for i := 0; i < 8; i++ {
		out = append(out, donorPoly(0.25*float32(i+1), 0.1*float32(i)))
	}
	for i := 0; i < 7; i++ {
		out = append(out, donorIntMix(int32(i+2)))
	}
	for i := 0; i < 6; i++ {
		out = append(out, donorAbsSelect())
	}
	for i := 0; i < 6; i++ {
		out = append(out, donorBoundedLoop(int32(2+i*2)))
	}
	for i := 0; i < 6; i++ {
		out = append(out, donorVecOps(0.5*float32(i+1)))
	}
	for i := 0; i < 5; i++ {
		out = append(out, donorLocalMemory())
	}
	for i := 0; i < 5; i++ {
		out = append(out, donorBoolChain(0.2*float32(i+1)))
	}
	if len(out) != 43 {
		panic(fmt.Sprintf("corpus: expected 43 donors, built %d", len(out)))
	}
	return out
}
