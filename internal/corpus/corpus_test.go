package corpus_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/spirv/validate"
)

func TestCorpusShape(t *testing.T) {
	refs := corpus.References()
	if len(refs) != 21 {
		t.Fatalf("references = %d, want 21 (as in the paper)", len(refs))
	}
	names := map[string]bool{}
	for _, item := range refs {
		if names[item.Name] {
			t.Errorf("duplicate reference name %q", item.Name)
		}
		names[item.Name] = true
		if item.Inputs.W == 0 || item.Inputs.H == 0 {
			t.Errorf("%s: missing grid size", item.Name)
		}
		if err := validate.Module(item.Mod); err != nil {
			t.Errorf("%s: %v", item.Name, err)
		}
	}
	donors := corpus.Donors()
	if len(donors) != 43 {
		t.Fatalf("donors = %d, want 43 (as in the paper)", len(donors))
	}
}

// TestCorpusDeterministic: builders are pure — two calls produce identical
// modules (campaign reproducibility depends on this).
func TestCorpusDeterministic(t *testing.T) {
	a, b := corpus.References(), corpus.References()
	for i := range a {
		if a[i].Mod.String() != b[i].Mod.String() {
			t.Fatalf("%s differs across builds", a[i].Name)
		}
	}
	da, db := corpus.Donors(), corpus.Donors()
	for i := range da {
		if da[i].String() != db[i].String() {
			t.Fatalf("donor %d differs across builds", i)
		}
	}
}

// TestEveryDonorHasADonatableFunction: the donation pipeline must accept at
// least one function from every donor module.
func TestEveryDonorHasADonatableFunction(t *testing.T) {
	item := corpus.References()[0]
	for i, d := range corpus.Donors() {
		c := fuzz.NewContext(item.Mod.Clone(), item.Inputs)
		ok := false
		for _, fn := range d.Functions {
			if ts := fuzz.Donate(c, d, fn, true); ts != nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("donor %d has no donatable function", i)
		}
	}
}

// TestReferencesAreNumericallyStable: quantized images are stable under
// repeated rendering and nontrivial (not all-black).
func TestReferencesAreNumericallyStable(t *testing.T) {
	for _, item := range corpus.References() {
		img1, err := interp.Render(item.Mod, item.Inputs)
		if err != nil {
			t.Fatalf("%s: %v", item.Name, err)
		}
		img2, _ := interp.Render(item.Mod, item.Inputs)
		if !img1.Equal(img2) {
			t.Errorf("%s: unstable image", item.Name)
		}
		nonzero := false
		for _, px := range img1.Pix {
			if px != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			t.Errorf("%s: all-black image carries no signal", item.Name)
		}
	}
}
