package opt

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PassStat is a cumulative, process-wide counter row for one optimizer pass:
// how often Pipeline ran it, how often it reported a change, and its total
// wall time. Pipeline is a free function called from every simulated target,
// so the counters are global rather than per-engine; runner.Stats attaches a
// snapshot, which surfaces them in gfauto -json and spirvd /metrics.
type PassStat struct {
	Name    string `json:"name"`
	Runs    uint64 `json:"runs"`
	Changed uint64 `json:"changed"`
	Nanos   int64  `json:"nanos"`
}

// passCounters is the live atomic backing of one PassStat.
type passCounters struct {
	runs    atomic.Uint64
	changed atomic.Uint64
	nanos   atomic.Int64
}

var (
	passMu    sync.Mutex
	passStats = map[string]*passCounters{}
)

// countersFor returns the counter row for a pass name, creating it on first
// use. Registration takes the lock; the per-run hot path below reuses the
// pointer it returns.
func countersFor(name string) *passCounters {
	passMu.Lock()
	defer passMu.Unlock()
	c, ok := passStats[name]
	if !ok {
		c = &passCounters{}
		passStats[name] = c
	}
	return c
}

func observePass(c *passCounters, changed bool, d time.Duration) {
	c.runs.Add(1)
	if changed {
		c.changed.Add(1)
	}
	c.nanos.Add(int64(d))
}

// PassStats returns a snapshot of every pass Pipeline has run since process
// start (or the last ResetPassStats), sorted by pass name for deterministic
// output.
func PassStats() []PassStat {
	passMu.Lock()
	defer passMu.Unlock()
	out := make([]PassStat, 0, len(passStats))
	for name, c := range passStats {
		out = append(out, PassStat{
			Name:    name,
			Runs:    c.runs.Load(),
			Changed: c.changed.Load(),
			Nanos:   c.nanos.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResetPassStats zeroes the per-pass counters (test isolation).
func ResetPassStats() {
	passMu.Lock()
	defer passMu.Unlock()
	passStats = map[string]*passCounters{}
}
