// Package opt is the optimizer substrate shared by the simulated SPIR-V
// targets (the spirv-opt analogue): inlining, constant folding, copy
// propagation, dead-code and dead-block elimination, local CSE and block
// layout. The passes here are correct; the simulated compiler defects of
// package target are injected as separate passes wrapped around these.
package opt

import (
	"fmt"
	"time"

	"spirvfuzz/internal/spirv"
)

// Pass is one optimizer pass. Run mutates m in place and reports whether it
// changed anything; a non-nil error is a compiler crash (with the error text
// as the crash message).
type Pass struct {
	Name string
	Run  func(m *spirv.Module) (bool, error)
}

// Pipeline runs passes cyclically until a fixpoint or maxRounds full rounds,
// mimicking a -O pass schedule. It returns the first crash error encountered.
//
// The loop stops as soon as len(passes) consecutive pass runs report no
// change: at that point every pass has run on the current module and left it
// alone, so the module is a fixpoint and any further run is provably a no-op
// (passes are deterministic). This produces modules bitwise-identical to the
// naive round loop while skipping the full no-op round that loop would run
// after converging mid-round with maxRounds headroom left.
//
// Pipeline invalidates m's cached fingerprint on entry and exit: passes
// rewrite the IR in place without going through Module mutator methods.
func Pipeline(m *spirv.Module, passes []Pass, maxRounds int) error {
	if maxRounds <= 0 {
		maxRounds = 4
	}
	if len(passes) == 0 {
		return nil
	}
	m.InvalidateFingerprint()
	defer m.InvalidateFingerprint()
	counters := make([]*passCounters, len(passes))
	for i, p := range passes {
		counters[i] = countersFor(p.Name)
	}
	clean := 0
	for run := 0; run < maxRounds*len(passes) && clean < len(passes); run++ {
		i := run % len(passes)
		p := passes[i]
		start := time.Now()
		ch, err := p.Run(m)
		observePass(counters[i], ch, time.Since(start))
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		if ch {
			clean = 0
		} else {
			clean++
		}
	}
	return nil
}

// Standard returns the default -O pipeline. EliminateRedundantPhis is
// available but not scheduled by default: the simulated targets' ϕ-handling
// defects live exactly in that corner (single-arm and hoisted ϕs), so the
// default pipeline leaves those shapes for the injected backends to
// mishandle, as the real drivers did.
func Standard() []Pass {
	return []Pass{
		Inline(),
		CopyPropagate(),
		ConstantFold(),
		EliminateDeadBlocks(),
		MergeBlocks(),
		CSELocal(),
		DCE(),
		BlockLayout(),
	}
}

// --- inlining ----------------------------------------------------------------

// Inline inlines calls to single-block functions, honouring the function
// control mask: DontInline suppresses inlining, Inline forces it even for
// larger single-block bodies.
func Inline() Pass {
	return Pass{Name: "inline", Run: func(m *spirv.Module) (bool, error) {
		changed := false
		for _, fn := range m.Functions {
			for _, b := range fn.Blocks {
				for i := 0; i < len(b.Body); i++ {
					ins := b.Body[i]
					if ins.Op != spirv.OpFunctionCall {
						continue
					}
					callee := m.Function(ins.IDOperand(0))
					if callee == nil || len(callee.Blocks) != 1 {
						continue
					}
					if callee.Control()&spirv.FunctionControlDontInline != 0 {
						continue
					}
					body := callee.Blocks[0]
					if body.Term.Op != spirv.OpReturn && body.Term.Op != spirv.OpReturnValue {
						continue
					}
					small := len(body.Body) <= 24
					if !small && callee.Control()&spirv.FunctionControlInline == 0 {
						continue
					}
					inlineCall(m, b, i, callee)
					changed = true
					i-- // re-examine the spliced region start
				}
			}
		}
		return changed, nil
	}}
}

// inlineCall splices callee's single block in place of the call at b.Body[i].
func inlineCall(m *spirv.Module, b *spirv.Block, i int, callee *spirv.Function) {
	call := b.Body[i]
	remap := make(map[spirv.ID]spirv.ID)
	for pi, p := range callee.Params {
		remap[p.Result] = call.IDOperand(pi + 1)
	}
	body := callee.Blocks[0]
	for _, ins := range body.Body {
		if ins.Result != 0 {
			remap[ins.Result] = m.FreshID()
		}
	}
	apply := func(id spirv.ID) spirv.ID {
		if n, ok := remap[id]; ok {
			return n
		}
		return id
	}
	spliced := make([]*spirv.Instruction, 0, len(body.Body)+1)
	for _, ins := range body.Body {
		cl := ins.Clone()
		cl.MapAllIDs(apply)
		spliced = append(spliced, cl)
	}
	if body.Term.Op == spirv.OpReturnValue {
		spliced = append(spliced,
			spirv.NewInstr(spirv.OpCopyObject, call.Type, call.Result, uint32(apply(body.Term.IDOperand(0)))))
	}
	b.Body = append(b.Body[:i:i], append(spliced, b.Body[i+1:]...)...)
}

// --- copy propagation ---------------------------------------------------------

// CopyPropagate replaces uses of OpCopyObject results with their sources and
// removes the copies.
func CopyPropagate() Pass {
	return Pass{Name: "copy-propagate", Run: func(m *spirv.Module) (bool, error) {
		repl := make(map[spirv.ID]spirv.ID)
		for _, fn := range m.Functions {
			for _, b := range fn.Blocks {
				for _, ins := range b.Body {
					if ins.Op == spirv.OpCopyObject {
						repl[ins.Result] = ins.IDOperand(0)
					}
				}
			}
		}
		if len(repl) == 0 {
			return false, nil
		}
		// Resolve chains.
		resolve := func(id spirv.ID) spirv.ID {
			for {
				n, ok := repl[id]
				if !ok {
					return id
				}
				id = n
			}
		}
		for _, fn := range m.Functions {
			for _, b := range fn.Blocks {
				b.Instructions(func(ins *spirv.Instruction) {
					if ins.Op == spirv.OpCopyObject {
						return
					}
					ins.MapUses(resolve)
				})
				kept := b.Body[:0]
				for _, ins := range b.Body {
					if ins.Op != spirv.OpCopyObject {
						kept = append(kept, ins)
					}
				}
				b.Body = kept
			}
		}
		return true, nil
	}}
}

// --- constant folding ---------------------------------------------------------

// ConstantFold folds integer and boolean operations over constants and
// simplifies conditional branches on constant conditions (removing the
// merge instruction and pruning ϕ edges of the untaken successor). Floats
// are left alone, as real optimizers are wary of FP folding differences.
func ConstantFold() Pass {
	return Pass{Name: "constant-fold", Run: func(m *spirv.Module) (bool, error) {
		changed := false
		for _, fn := range m.Functions {
			for _, b := range fn.Blocks {
				for _, ins := range b.Body {
					if folded, ok := foldInstr(m, ins); ok {
						*ins = *spirv.NewInstr(spirv.OpCopyObject, ins.Type, ins.Result, uint32(folded))
						changed = true
					}
				}
			}
			// Branch simplification.
			for _, b := range fn.Blocks {
				t := b.Term
				if t.Op != spirv.OpBranchConditional {
					continue
				}
				val, isConst := m.ConstantBoolValue(t.IDOperand(0))
				if !isConst {
					continue
				}
				taken, untaken := t.IDOperand(1), t.IDOperand(2)
				if !val {
					taken, untaken = untaken, taken
				}
				b.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(taken))
				b.Merge = nil
				if taken != untaken {
					if ub := fn.Block(untaken); ub != nil {
						removePhiEdges(ub, b.Label)
					}
				}
				changed = true
			}
		}
		return changed, nil
	}}
}

func removePhiEdges(b *spirv.Block, pred spirv.ID) {
	for _, phi := range b.Phis {
		ops := phi.Operands[:0]
		for i := 0; i+1 < len(phi.Operands); i += 2 {
			if spirv.ID(phi.Operands[i+1]) != pred {
				ops = append(ops, phi.Operands[i], phi.Operands[i+1])
			}
		}
		phi.Operands = ops
	}
}

// foldInstr returns the id of an existing or new constant equal to ins's
// result, when both operands are integer/bool constants.
func foldInstr(m *spirv.Module, ins *spirv.Instruction) (spirv.ID, bool) {
	intOf := func(i int) (int64, bool) { return m.ConstantIntValue(ins.IDOperand(i)) }
	makeInt := func(v int64) (spirv.ID, bool) {
		tdef := m.Def(ins.Type)
		if tdef == nil || tdef.Op != spirv.OpTypeInt {
			return 0, false
		}
		return m.EnsureConstantWord(ins.Type, uint32(int32(v))), true
	}
	switch ins.Op {
	case spirv.OpIAdd, spirv.OpISub, spirv.OpIMul, spirv.OpSDiv, spirv.OpSMod:
		a, ok1 := intOf(0)
		bv, ok2 := intOf(1)
		if !ok1 || !ok2 {
			return 0, false
		}
		var r int64
		switch ins.Op {
		case spirv.OpIAdd:
			r = a + bv
		case spirv.OpISub:
			r = a - bv
		case spirv.OpIMul:
			r = a * bv
		case spirv.OpSDiv:
			if bv == 0 {
				return 0, false
			}
			r = a / bv
		case spirv.OpSMod:
			if bv == 0 {
				return 0, false
			}
			r = a % bv
			if r != 0 && (r < 0) != (bv < 0) {
				r += bv
			}
		}
		return makeInt(r)
	case spirv.OpSLessThan, spirv.OpSGreaterThan, spirv.OpIEqual, spirv.OpINotEqual,
		spirv.OpSLessThanEqual, spirv.OpSGreaterThanEqual:
		a, ok1 := intOf(0)
		bv, ok2 := intOf(1)
		if !ok1 || !ok2 {
			return 0, false
		}
		var r bool
		switch ins.Op {
		case spirv.OpSLessThan:
			r = a < bv
		case spirv.OpSGreaterThan:
			r = a > bv
		case spirv.OpSLessThanEqual:
			r = a <= bv
		case spirv.OpSGreaterThanEqual:
			r = a >= bv
		case spirv.OpIEqual:
			r = a == bv
		case spirv.OpINotEqual:
			r = a != bv
		}
		return m.EnsureConstantBool(r), true
	case spirv.OpLogicalAnd, spirv.OpLogicalOr, spirv.OpLogicalNot:
		a, ok1 := m.ConstantBoolValue(ins.IDOperand(0))
		if !ok1 {
			return 0, false
		}
		if ins.Op == spirv.OpLogicalNot {
			return m.EnsureConstantBool(!a), true
		}
		bv, ok2 := m.ConstantBoolValue(ins.IDOperand(1))
		if !ok2 {
			return 0, false
		}
		if ins.Op == spirv.OpLogicalAnd {
			return m.EnsureConstantBool(a && bv), true
		}
		return m.EnsureConstantBool(a || bv), true
	}
	return 0, false
}
