package opt_test

import (
	"testing"

	"spirvfuzz/internal/corpus"
	"spirvfuzz/internal/fuzz"
	"spirvfuzz/internal/interp"
	"spirvfuzz/internal/opt"
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/validate"
	"spirvfuzz/internal/testmod"
)

// TestStandardPipelinePreservesSemantics optimizes every corpus reference
// and checks validity and image equality — the optimizer must itself be a
// correct compiler, since the simulated targets are built from it.
func TestStandardPipelinePreservesSemantics(t *testing.T) {
	for _, item := range corpus.References() {
		want, err := interp.Render(item.Mod, item.Inputs)
		if err != nil {
			t.Fatalf("%s: %v", item.Name, err)
		}
		o := item.Mod.Clone()
		if err := opt.Pipeline(o, opt.Standard(), 0); err != nil {
			t.Fatalf("%s: pipeline: %v", item.Name, err)
		}
		if err := validate.Module(o); err != nil {
			t.Fatalf("%s: invalid after optimization: %v\n%s", item.Name, err, o)
		}
		got, err := interp.Render(o, item.Inputs)
		if err != nil {
			t.Fatalf("%s: optimized module faults: %v", item.Name, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: optimization changed the image (%d pixels)", item.Name, got.DiffCount(want))
		}
	}
}

// TestPipelineOnFuzzedVariants runs the optimizer over transformed variants,
// which exhibit much weirder shapes than the references.
func TestPipelineOnFuzzedVariants(t *testing.T) {
	donors := corpus.Donors()
	for i, item := range corpus.References() {
		if i%3 != 0 {
			continue // subset for speed
		}
		want, err := interp.Render(item.Mod, item.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 3; seed++ {
			res, err := fuzz.Fuzz(item.Mod, item.Inputs, fuzz.Options{Seed: seed, Donors: donors, EnableRecommendations: true})
			if err != nil {
				t.Fatal(err)
			}
			o := res.Variant.Clone()
			if err := opt.Pipeline(o, opt.Standard(), 0); err != nil {
				t.Fatalf("%s seed %d: pipeline: %v", item.Name, seed, err)
			}
			if err := validate.Module(o); err != nil {
				t.Fatalf("%s seed %d: invalid after optimization: %v\n%s", item.Name, seed, err, o)
			}
			got, err := interp.Render(o, res.Inputs)
			if err != nil {
				t.Fatalf("%s seed %d: %v", item.Name, seed, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s seed %d: optimization changed the image", item.Name, seed)
			}
		}
	}
}

func TestInlineRespectsDontInline(t *testing.T) {
	m := testmod.Caller()
	m.Functions[0].SetControl(spirv.FunctionControlDontInline)
	if _, err := opt.Inline().Run(m); err != nil {
		t.Fatal(err)
	}
	calls := countOps(m, spirv.OpFunctionCall)
	if calls != 1 {
		t.Fatalf("DontInline ignored: %d calls remain", calls)
	}
	m2 := testmod.Caller()
	if _, err := opt.Inline().Run(m2); err != nil {
		t.Fatal(err)
	}
	if countOps(m2, spirv.OpFunctionCall) != 0 {
		t.Fatal("small single-block callee should be inlined")
	}
}

func TestConstantFoldFoldsBranches(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	// Replace the data-dependent condition with constant true.
	fn.Blocks[0].Term.Operands[0] = uint32(m.EnsureConstantBool(true))
	if _, err := opt.ConstantFold().Run(m); err != nil {
		t.Fatal(err)
	}
	if fn.Blocks[0].Term.Op != spirv.OpBranch {
		t.Fatal("constant conditional branch not folded")
	}
	if fn.Blocks[0].Merge != nil {
		t.Fatal("merge instruction must be dropped with the fold")
	}
	// The right block is now unreachable; ϕ edges must have been pruned and
	// the module must clean up into a valid one.
	if _, err := opt.EliminateDeadBlocks().Run(m); err != nil {
		t.Fatal(err)
	}
	if err := validate.Module(m); err != nil {
		t.Fatalf("after fold+elim: %v\n%s", err, m)
	}
}

func TestConstantFoldArithmetic(t *testing.T) {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	c2 := m.EnsureConstantInt(2)
	c3 := m.EnsureConstantInt(3)
	sum := b.Emit(spirv.OpIAdd, s.Int, c2, c3)
	prod := b.Emit(spirv.OpIMul, s.Int, sum, c2)
	f := b.Emit(spirv.OpConvertSToF, s.Float, prod)
	one := m.EnsureConstantFloat(1)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, f, f, f, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)

	if err := opt.Pipeline(m, []opt.Pass{opt.ConstantFold(), opt.CopyPropagate(), opt.DCE()}, 0); err != nil {
		t.Fatal(err)
	}
	if n := countOps(m, spirv.OpIAdd) + countOps(m, spirv.OpIMul); n != 0 {
		t.Fatalf("%d arithmetic instructions survive folding", n)
	}
	if _, ok := findIntConst(m, 10); !ok {
		t.Fatal("folded constant 10 missing")
	}
}

func TestCopyPropagateResolvesChains(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	// diamond's left/right blocks hold CopyObjects feeding the ϕ.
	if _, err := opt.CopyPropagate().Run(m); err != nil {
		t.Fatal(err)
	}
	if countOps(m, spirv.OpCopyObject) != 0 {
		t.Fatal("copies not removed")
	}
	if err := validate.Module(m); err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
	_ = fn
}

func TestDCERemovesUnusedChain(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	entry := fn.Blocks[0]
	f32 := m.EnsureTypeFloat(32)
	c := m.EnsureConstantFloat(3)
	a := m.FreshID()
	bID := m.FreshID()
	entry.Body = append(entry.Body,
		spirv.NewInstr(spirv.OpFAdd, f32, a, uint32(c), uint32(c)),
		spirv.NewInstr(spirv.OpFMul, f32, bID, uint32(a), uint32(c)),
	)
	before := m.InstructionCount()
	if _, err := opt.DCE().Run(m); err != nil {
		t.Fatal(err)
	}
	if m.InstructionCount() >= before {
		t.Fatal("DCE removed nothing")
	}
	if err := validate.Module(m); err != nil {
		t.Fatal(err)
	}
}

func TestCSELocalDeduplicates(t *testing.T) {
	b := spirv.NewBuilder()
	s := b.BeginFragmentShell()
	m := b.Mod
	x := b.Emit(spirv.OpLoad, s.Vec2, s.Coord)
	e1 := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(x), 0)
	e2 := b.EmitWords(spirv.OpCompositeExtract, s.Float, uint32(x), 0) // duplicate
	sum := b.Emit(spirv.OpFAdd, s.Float, e1, e2)
	one := m.EnsureConstantFloat(1)
	col := b.Emit(spirv.OpCompositeConstruct, s.Vec4, sum, sum, sum, one)
	b.Store(s.Color, col)
	b.FinishFragmentShell(s)

	changed, err := opt.CSELocal().Run(m)
	if err != nil || !changed {
		t.Fatalf("changed=%t err=%v", changed, err)
	}
	if countOps(m, spirv.OpCopyObject) != 1 {
		t.Fatal("duplicate extract should become a copy")
	}
	if err := validate.Module(m); err != nil {
		t.Fatal(err)
	}
}

func TestBlockLayoutRestoresRPO(t *testing.T) {
	// The diamond's natural order is already RPO; swapping the sibling arms
	// (valid, Figure 8b-style) makes layout restore the canonical order.
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	if changed, _ := opt.BlockLayout().Run(m); changed {
		t.Fatal("natural order should already be RPO")
	}
	fn.Blocks[1], fn.Blocks[2] = fn.Blocks[2], fn.Blocks[1]
	if err := validate.Module(m); err != nil {
		t.Fatalf("swap should be valid: %v", err)
	}
	changed, err := opt.BlockLayout().Run(m)
	if err != nil || !changed {
		t.Fatalf("changed=%t err=%v", changed, err)
	}
	if err := validate.Module(m); err != nil {
		t.Fatal(err)
	}
	// Idempotent afterwards.
	changed, _ = opt.BlockLayout().Run(m)
	if changed {
		t.Fatal("second layout run should be a no-op")
	}
}

func countOps(m *spirv.Module, op spirv.Opcode) int {
	n := 0
	m.ForEachInstruction(func(ins *spirv.Instruction) {
		if ins.Op == op {
			n++
		}
	})
	return n
}

func findIntConst(m *spirv.Module, v int64) (spirv.ID, bool) {
	for _, ins := range m.TypesGlobals {
		if ins.Op == spirv.OpConstant {
			if got, ok := m.ConstantIntValue(ins.Result); ok && got == v {
				return ins.Result, true
			}
		}
	}
	return 0, false
}

func TestMergeBlocksUndoesSplit(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	merge := fn.Blocks[len(fn.Blocks)-1]
	// Split the merge block by hand: tail gets the store+return.
	tail := &spirv.Block{Label: m.FreshID(), Body: merge.Body[1:], Term: merge.Term}
	merge.Body = merge.Body[:1]
	merge.Term = spirv.NewInstr(spirv.OpBranch, 0, 0, uint32(tail.Label))
	fn.Blocks = append(fn.Blocks, tail)
	if err := validate.Module(m); err != nil {
		t.Fatalf("split setup invalid: %v", err)
	}
	nBlocks := len(fn.Blocks)
	changed, err := opt.MergeBlocks().Run(m)
	if err != nil || !changed {
		t.Fatalf("changed=%t err=%v", changed, err)
	}
	if len(fn.Blocks) != nBlocks-1 {
		t.Fatalf("blocks = %d, want %d", len(fn.Blocks), nBlocks-1)
	}
	if err := validate.Module(m); err != nil {
		t.Fatalf("after merge: %v\n%s", err, m)
	}
	img, err := interp.Render(m, interp.Inputs{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := interp.Render(testmod.Diamond(), interp.Inputs{W: 4, H: 4})
	if !img.Equal(want) {
		t.Fatal("merge changed semantics")
	}
}

func TestMergeBlocksKeepsStructuredTargets(t *testing.T) {
	// The loop's merge/continue blocks must not be merged away even when
	// they have single predecessors.
	m := testmod.Loop()
	before := len(m.EntryPointFunction().Blocks)
	if _, err := opt.MergeBlocks().Run(m); err != nil {
		t.Fatal(err)
	}
	after := len(m.EntryPointFunction().Blocks)
	if after < before-1 {
		t.Fatalf("merged too aggressively: %d -> %d", before, after)
	}
	if err := validate.Module(m); err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
	img, err := interp.Render(m, interp.Inputs{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := interp.Render(testmod.Loop(), interp.Inputs{W: 4, H: 4})
	if !img.Equal(want) {
		t.Fatal("merge changed loop semantics")
	}
}

func TestEliminateRedundantPhis(t *testing.T) {
	m := testmod.Diamond()
	fn := m.EntryPointFunction()
	merge := fn.Blocks[len(fn.Blocks)-1]
	phi := merge.Phis[0]
	// Make both incoming values the same id (a constant): the ϕ becomes
	// redundant.
	c := m.EnsureConstantFloat(0.5)
	phi.Operands[0] = uint32(c)
	phi.Operands[2] = uint32(c)
	changed, err := opt.EliminateRedundantPhis().Run(m)
	if err != nil || !changed {
		t.Fatalf("changed=%t err=%v", changed, err)
	}
	if len(merge.Phis) != 0 {
		t.Fatal("redundant ϕ not removed")
	}
	if merge.Body[0].Op != spirv.OpCopyObject {
		t.Fatal("copy replacement missing")
	}
	if err := validate.Module(m); err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
	// A genuinely two-valued ϕ stays (fresh diamond).
	m2 := testmod.Diamond()
	changed, _ = opt.EliminateRedundantPhis().Run(m2)
	if changed {
		t.Fatal("non-redundant ϕ removed")
	}
	// Loop ϕs (self-referencing back edges with distinct values) stay.
	m3 := testmod.Loop()
	opt.EliminateRedundantPhis().Run(m3)
	if err := validate.Module(m3); err != nil {
		t.Fatal(err)
	}
	img, err := interp.Render(m3, interp.Inputs{W: 2, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := interp.Render(testmod.Loop(), interp.Inputs{W: 2, H: 2})
	if !img.Equal(want) {
		t.Fatal("phi elimination changed loop semantics")
	}
}
