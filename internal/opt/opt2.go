package opt

import (
	"spirvfuzz/internal/spirv"
	"spirvfuzz/internal/spirv/cfa"
)

// EliminateDeadBlocks removes statically unreachable blocks and prunes ϕ
// edges that referenced them.
func EliminateDeadBlocks() Pass {
	return Pass{Name: "eliminate-dead-blocks", Run: func(m *spirv.Module) (bool, error) {
		changed := false
		for _, fn := range m.Functions {
			reach := cfa.Build(fn).Reachable()
			if len(reach) == len(fn.Blocks) {
				continue
			}
			removed := make(map[spirv.ID]bool)
			kept := fn.Blocks[:0]
			for _, b := range fn.Blocks {
				if reach[b.Label] {
					kept = append(kept, b)
				} else {
					removed[b.Label] = true
				}
			}
			fn.Blocks = kept
			for _, b := range fn.Blocks {
				for _, phi := range b.Phis {
					ops := phi.Operands[:0]
					for i := 0; i+1 < len(phi.Operands); i += 2 {
						if !removed[spirv.ID(phi.Operands[i+1])] {
							ops = append(ops, phi.Operands[i], phi.Operands[i+1])
						}
					}
					phi.Operands = ops
				}
			}
			changed = true
		}
		return changed, nil
	}}
}

// DCE removes side-effect-free instructions whose results are unused,
// iterating to a fixpoint, and drops debug names and decorations that refer
// to ids that no longer exist.
func DCE() Pass {
	return Pass{Name: "dce", Run: func(m *spirv.Module) (bool, error) {
		changedAny := false
		for {
			uses := make(map[spirv.ID]int)
			m.ForEachInstruction(func(ins *spirv.Instruction) {
				switch ins.Op {
				case spirv.OpName, spirv.OpMemberName, spirv.OpDecorate, spirv.OpMemberDecorate:
					return // debug info does not keep values alive
				}
				ins.Uses(func(id spirv.ID) { uses[id]++ })
			})
			changed := false
			for _, fn := range m.Functions {
				for _, b := range fn.Blocks {
					kept := b.Body[:0]
					for _, ins := range b.Body {
						dead := ins.Result != 0 && uses[ins.Result] == 0 &&
							!ins.Op.HasSideEffects() && ins.Op != spirv.OpVariable
						if dead {
							changed = true
							continue
						}
						kept = append(kept, ins)
					}
					b.Body = kept
					// ϕs with unused results are removable too.
					keptPhis := b.Phis[:0]
					for _, phi := range b.Phis {
						if uses[phi.Result] == 0 {
							changed = true
							continue
						}
						keptPhis = append(keptPhis, phi)
					}
					b.Phis = keptPhis
				}
			}
			changedAny = changedAny || changed
			if !changed {
				break
			}
		}
		if changedAny {
			// Drop names/decorations for ids that no longer exist.
			exists := make(map[spirv.ID]bool)
			m.ForEachInstruction(func(ins *spirv.Instruction) {
				if ins.Result != 0 {
					exists[ins.Result] = true
				}
			})
			for _, fn := range m.Functions {
				for _, b := range fn.Blocks {
					exists[b.Label] = true
				}
			}
			filter := func(list []*spirv.Instruction) []*spirv.Instruction {
				kept := list[:0]
				for _, ins := range list {
					if exists[spirv.ID(ins.Operands[0])] {
						kept = append(kept, ins)
					}
				}
				return kept
			}
			m.Names = filter(m.Names)
			m.Decorations = filter(m.Decorations)
		}
		return changedAny, nil
	}}
}

// cseKey builds a structural key for a pure instruction.
func cseKey(ins *spirv.Instruction) (string, bool) {
	switch ins.Op {
	case spirv.OpLoad, spirv.OpVariable, spirv.OpFunctionCall, spirv.OpPhi, spirv.OpCopyObject:
		return "", false
	}
	if ins.Result == 0 || ins.Op.HasSideEffects() {
		return "", false
	}
	key := make([]byte, 0, 8+4*len(ins.Operands))
	key = append(key, byte(ins.Op), byte(ins.Op>>8), byte(ins.Type), byte(ins.Type>>8), byte(ins.Type>>16), byte(ins.Type>>24))
	for _, w := range ins.Operands {
		key = append(key, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return string(key), true
}

// CSELocal replaces repeated identical pure computations within a block by
// copies of the first occurrence.
func CSELocal() Pass {
	return Pass{Name: "cse-local", Run: func(m *spirv.Module) (bool, error) {
		changed := false
		for _, fn := range m.Functions {
			for _, b := range fn.Blocks {
				seen := make(map[string]spirv.ID)
				for _, ins := range b.Body {
					key, ok := cseKey(ins)
					if !ok {
						continue
					}
					if first, dup := seen[key]; dup {
						*ins = *spirv.NewInstr(spirv.OpCopyObject, ins.Type, ins.Result, uint32(first))
						changed = true
						continue
					}
					seen[key] = ins.Result
				}
			}
		}
		return changed, nil
	}}
}

// BlockLayout reorders each function's blocks into reverse post-order
// (entry first), appending unreachable blocks in their original order. The
// result always satisfies the dominance ordering rule.
func BlockLayout() Pass {
	return Pass{Name: "block-layout", Run: func(m *spirv.Module) (bool, error) {
		changed := false
		for _, fn := range m.Functions {
			rpo := cfa.Build(fn).ReversePostOrder()
			pos := make(map[spirv.ID]int, len(rpo))
			for i, l := range rpo {
				pos[l] = i
			}
			inOrder := true
			prev := -1
			for _, b := range fn.Blocks {
				p, reachable := pos[b.Label]
				if !reachable {
					continue
				}
				if p < prev {
					inOrder = false
					break
				}
				prev = p
			}
			if inOrder {
				continue
			}
			var reachableBlocks, orphans []*spirv.Block
			byLabel := make(map[spirv.ID]*spirv.Block, len(fn.Blocks))
			for _, b := range fn.Blocks {
				byLabel[b.Label] = b
				if _, ok := pos[b.Label]; !ok {
					orphans = append(orphans, b)
				}
			}
			for _, l := range rpo {
				reachableBlocks = append(reachableBlocks, byLabel[l])
			}
			fn.Blocks = append(reachableBlocks, orphans...)
			changed = true
		}
		return changed, nil
	}}
}

// MergeBlocks merges a block into its unconditional successor when the
// successor has exactly one predecessor and no ϕs, and neither block heads a
// structured construct or serves as a merge/continue target. This undoes
// gratuitous SplitBlocks, as spirv-opt's block-merge pass does.
func MergeBlocks() Pass {
	return Pass{Name: "merge-blocks", Run: func(m *spirv.Module) (bool, error) {
		changed := false
		for _, fn := range m.Functions {
			// Collect structural targets that must remain distinct blocks.
			reserved := map[spirv.ID]bool{}
			for _, b := range fn.Blocks {
				if b.Merge != nil {
					reserved[spirv.ID(b.Merge.Operands[0])] = true
					if b.Merge.Op == spirv.OpLoopMerge {
						reserved[spirv.ID(b.Merge.Operands[1])] = true
					}
				}
			}
			for {
				g := cfa.Build(fn)
				merged := false
				for _, b := range fn.Blocks {
					if b.Term.Op != spirv.OpBranch || b.Merge != nil {
						continue
					}
					succ := b.Term.IDOperand(0)
					sb := fn.Block(succ)
					if sb == nil || sb == b || len(g.Preds[succ]) != 1 || len(sb.Phis) != 0 || reserved[succ] {
						continue
					}
					// Splice successor into b and drop it.
					b.Body = append(b.Body, sb.Body...)
					b.Merge = sb.Merge
					b.Term = sb.Term
					idx := fn.BlockIndex(succ)
					fn.Blocks = append(fn.Blocks[:idx], fn.Blocks[idx+1:]...)
					// ϕs in b's new successors referred to the dropped label.
					for _, s := range b.Successors() {
						if nb := fn.Block(s); nb != nil {
							for _, phi := range nb.Phis {
								for i := 1; i < len(phi.Operands); i += 2 {
									if spirv.ID(phi.Operands[i]) == succ {
										phi.Operands[i] = uint32(b.Label)
									}
								}
							}
						}
					}
					merged = true
					changed = true
					break
				}
				if !merged {
					break
				}
			}
		}
		return changed, nil
	}}
}

// EliminateRedundantPhis replaces ϕs whose incoming values are all identical
// (or the ϕ itself, for self-loops) with a copy of that value, as
// spirv-opt's ssa-rewriter cleanup does.
func EliminateRedundantPhis() Pass {
	return Pass{Name: "eliminate-redundant-phis", Run: func(m *spirv.Module) (bool, error) {
		changed := false
		for _, fn := range m.Functions {
			for _, b := range fn.Blocks {
				keptPhis := b.Phis[:0]
				for _, phi := range b.Phis {
					var unique spirv.ID
					redundant := true
					for i := 0; i+1 < len(phi.Operands); i += 2 {
						v := spirv.ID(phi.Operands[i])
						if v == phi.Result {
							continue // self-reference does not count
						}
						if unique == 0 {
							unique = v
						} else if unique != v {
							redundant = false
							break
						}
					}
					if !redundant || unique == 0 {
						keptPhis = append(keptPhis, phi)
						continue
					}
					// A value that flows in from every predecessor dominates
					// each predecessor's end; for it to be usable where the ϕ
					// was, it must dominate this block — true when it is not
					// defined in one of the predecessors on a back edge.
					// Conservatively require it to be available at position 0
					// of this block.
					info := cfa.Analyze(m, fn)
					if !info.AvailableAt(unique, b.Label, 0) {
						keptPhis = append(keptPhis, phi)
						continue
					}
					b.Body = append([]*spirv.Instruction{
						spirv.NewInstr(spirv.OpCopyObject, phi.Type, phi.Result, uint32(unique)),
					}, b.Body...)
					changed = true
				}
				b.Phis = keptPhis
			}
		}
		return changed, nil
	}}
}
